# Gnuplot script for the Fig. 8-style flight timeline from rpv_trace CSVs.
#
#   ./build/tools/rpv_trace out/ rural gcc 42
#   gnuplot -e "prefix='out/rural-p1-gcc-42'" scripts/plot_flight.gp
#
# Produces <prefix>_timeline.png with network latency, playback latency and
# the CC target bitrate over flight time, handover instants as impulses.
if (!exists("prefix")) prefix = "out/rural-p1-gcc-1"

set terminal pngcairo size 1400,700 font "DejaVu Sans,11"
set output sprintf("%s_timeline.png", prefix)

set datafile separator comma
set key top left
set xlabel "Flight time (s)"
set ytics nomirror
set y2tics
set ylabel "Latency (ms)"
set y2label "Target bitrate (Mbps)"
set yrange [0:1000]

plot sprintf("%s_owd.csv", prefix)              skip 1 using 1:2       with lines lw 1 lc rgb "#4477AA" title "network latency", \
     sprintf("%s_playback_latency.csv", prefix) skip 1 using 1:2       with lines lw 2 lc rgb "#EE6677" title "playback latency", \
     sprintf("%s_target_bitrate.csv", prefix)   skip 1 using 1:($2/1e6) axes x1y2 with lines lw 1 lc rgb "#228833" title "CC target (Mbps)", \
     sprintf("%s_handovers.csv", prefix)        skip 1 using 1:(900)   with impulses lw 1 lc rgb "#BBBBBB" title "handover"
