# Gnuplot script for Fig. 7-style CDFs from rpv_trace CSVs.
#
#   ./build/tools/rpv_trace out/ urban gcc 1
#   ./build/tools/rpv_trace out/ urban scream 1
#   ./build/tools/rpv_trace out/ urban static 1
#   gnuplot -e "dir='out'; env='urban'" scripts/plot_cdfs.gp
#
# Produces <dir>/<env>_cdfs.png with the SSIM distribution per method.
if (!exists("dir")) dir = "out"
if (!exists("env")) env = "urban"

set terminal pngcairo size 1200,500 font "DejaVu Sans,11"
set output sprintf("%s/%s_cdfs.png", dir, env)
set datafile separator comma
set key bottom right

set multiplot layout 1,2

set xlabel "SSIM"
set ylabel "CDF"
set xrange [0:1]
plot for [m in "gcc scream static"] \
  sprintf("%s/%s-%s-1_ssim.csv", dir, env eq "urban" ? "urban" : "rural-p1", m) \
  skip 1 using 2:(1.0) smooth cnorm with lines lw 2 title m

set xlabel "Goodput (Mbps)"
set xrange [*:*]
plot for [m in "gcc scream static"] \
  sprintf("%s/%s-%s-1_goodput.csv", dir, env eq "urban" ? "urban" : "rural-p1", m) \
  skip 1 using 2:(1.0) smooth cnorm with lines lw 2 title m

unset multiplot
