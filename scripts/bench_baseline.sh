#!/usr/bin/env bash
# Regenerate the committed perf baselines (bench_out/BENCH_*.json): the core
# event-queue microbench, the fleet contention sweep and the sat 3-way
# bonding bench.
#
# Run this on the CI reference machine class after any change that is
# *supposed* to move simulator throughput, then commit the refreshed files;
# the perf gate (scripts/perf_gate.sh) fails CI when events_per_second drops
# more than 20% below these numbers.
#
# Usage: scripts/bench_baseline.sh [--quick]
#   --quick   small sizes only (smoke-test the script itself, not a baseline)
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

sizes="1,4,16,64,256,1000"
horizon=60
sat_runs=4
queue_events=4000000
[[ "${1:-}" == "--quick" ]] && {
  sizes="1,4,16"; horizon=20; sat_runs=1; queue_events=500000; }

cmake -S "$repo" -B "$repo/build" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$repo/build" -j "$jobs" \
  --target bench_ext_fleet bench_ext_sat bench_core_queue

mkdir -p "$repo/bench_out"
echo "== core queue baseline ($queue_events events/workload) =="
"$repo/build/bench/bench_core_queue" --events "$queue_events" \
  --bench-json "$repo/bench_out/BENCH_core_queue.json"
echo
for env in urban rural-p1; do
  out="$repo/bench_out/BENCH_fleet_${env//-/_}.json"
  echo "== fleet baseline: $env (sizes $sizes, horizon ${horizon}s) =="
  "$repo/build/bench/bench_ext_fleet" \
    --env "$env" --sizes "$sizes" --horizon "$horizon" \
    --bench-json "$out"
  echo
done

echo "== sat baseline: 2-path vs 3-way bonding ($sat_runs runs/arm) =="
"$repo/build/bench/bench_ext_sat" --runs "$sat_runs" \
  --bench-json "$repo/bench_out/BENCH_sat.json"
echo

echo "baselines written; commit the bench_out/BENCH_*.json files"
