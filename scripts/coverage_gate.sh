#!/usr/bin/env bash
# Line-coverage gate over the tier-1 test suite (see docs/TESTING.md).
#
#   scripts/coverage_gate.sh [build-dir]       # default: build-cov
#
# Configures an instrumented build (-DRPV_COVERAGE=ON), runs rpv_tests,
# aggregates per-subsystem line coverage from gcov's JSON output, and fails
# when a subsystem drops below its floor. Needs only gcov (ships with gcc)
# and the python3 standard library — no gcovr/lcov install.
#
# The floors are ratchets against regressions, set a few points below the
# coverage measured when the gate was introduced — not aspirations. Raise a
# floor when a subsystem's coverage durably improves; never lower one to
# make a PR pass.
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-cov}"

cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Debug -DRPV_COVERAGE=ON >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target rpv_tests
(cd "$BUILD_DIR" && ./tests/rpv_tests --gtest_brief=1)

# One JSON per object file, emitted next to its .gcda. Test objects are
# included on purpose: header-inline code (e.g. sim/event_queue.hpp)
# instantiates in the test translation units; the report below filters to
# src/ sources, so test code itself is never counted.
find "$BUILD_DIR" -name '*.gcda' -print0 | while IFS= read -r -d '' f; do
  (cd "$(dirname "$f")" &&
   gcov --json-format "$(basename "$f")" >/dev/null 2>&1) || true
done

python3 - "$BUILD_DIR" <<'PY'
import collections
import gzip
import json
import pathlib
import sys

build = pathlib.Path(sys.argv[1])
FLOORS = {"src/sim": 90.0, "src/bond": 80.0, "src/radiomap": 90.0}

# A line is covered if ANY translation unit executed it; union across the
# per-object gcov reports before computing percentages.
hit = collections.defaultdict(set)
total = collections.defaultdict(set)
for gz in build.rglob("*.gcov.json.gz"):
    data = json.loads(gzip.open(gz).read())
    for f in data.get("files", []):
        idx = f["file"].find("src/")
        if idx < 0:
            continue
        rel = f["file"][idx:]
        sub = "/".join(rel.split("/")[:2])
        if sub not in FLOORS:
            continue
        for line in f["lines"]:
            key = (rel, line["line_number"])
            total[sub].add(key)
            if line["count"] > 0:
                hit[sub].add(key)

ok = True
print("coverage gate (tier-1 line coverage):")
for sub, floor in sorted(FLOORS.items()):
    t, h = len(total[sub]), len(hit[sub])
    pct = 100.0 * h / t if t else 0.0
    below = pct < floor
    ok = ok and not below
    mark = "FAIL" if below else "  ok"
    print(f"  {mark} {sub:14s} {pct:6.2f}%  (floor {floor:.0f}%, {h}/{t} lines)")
if not ok:
    print("coverage gate: FAILED")
    sys.exit(1)
print("coverage gate: PASSED")
PY
