#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite, then
# repeat the suite under AddressSanitizer + UndefinedBehaviorSanitizer, and
# finally run the parallel-execution tests under ThreadSanitizer.
#
# Usage: scripts/check.sh [--no-sanitize]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
sanitize=1
[[ "${1:-}" == "--no-sanitize" ]] && sanitize=0

echo "== plain build + ctest =="
cmake -S "$repo" -B "$repo/build" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

if [[ "$sanitize" == 1 ]]; then
  echo "== ASan+UBSan build + ctest =="
  cmake -S "$repo" -B "$repo/build-san" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DRPV_SANITIZE=address,undefined >/dev/null
  cmake --build "$repo/build-san" -j "$jobs"
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$repo/build-san" --output-on-failure -j "$jobs"

  echo "== TSan build + exec tests =="
  # TSan is incompatible with ASan/UBSan, so it gets its own tree; only the
  # suites that actually spin up the thread pool are worth the ~10x slowdown.
  cmake -S "$repo" -B "$repo/build-tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DRPV_SANITIZE=thread >/dev/null
  cmake --build "$repo/build-tsan" -j "$jobs" --target rpv_tests
  TSAN_OPTIONS=halt_on_error=1 "$repo/build-tsan/tests/rpv_tests" \
    --gtest_filter='ThreadPool*:ParallelFor*:CampaignEngine*:RunArtifact*'
fi

echo "All checks passed."
