#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite, then
# repeat the suite under AddressSanitizer + UndefinedBehaviorSanitizer.
#
# Usage: scripts/check.sh [--no-sanitize]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
sanitize=1
[[ "${1:-}" == "--no-sanitize" ]] && sanitize=0

echo "== plain build + ctest =="
cmake -S "$repo" -B "$repo/build" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

if [[ "$sanitize" == 1 ]]; then
  echo "== ASan+UBSan build + ctest =="
  cmake -S "$repo" -B "$repo/build-san" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DRPV_SANITIZE=address,undefined >/dev/null
  cmake --build "$repo/build-san" -j "$jobs"
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$repo/build-san" --output-on-failure -j "$jobs"
fi

echo "All checks passed."
