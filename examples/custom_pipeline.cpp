// Lower-level API tour: build a custom trajectory and cell deployment, tune
// the congestion controller and jitter buffer, and wire a Session by hand —
// the path a researcher extending the pipeline (e.g. new CC, new HO policy)
// would take.
//
//   $ ./examples/custom_pipeline
#include <iostream>

#include "cellular/base_station.hpp"
#include "experiment/scenario.hpp"
#include "geo/trajectory.hpp"
#include "metrics/cdf.hpp"
#include "metrics/text_table.hpp"
#include "pipeline/session.hpp"

int main() {
  using namespace rpv;

  // 1. A custom inspection mission: climb to 60 m, fly a 300 m square,
  //    return. (The stock Appendix A.2 profile lives in geo::flight_profiles.)
  geo::Trajectory mission;
  mission.move_to({0, 0, 0}, 0.0)
      .hover(sim::Duration::seconds(3.0))
      .move_to({0, 0, 60}, 2.5)
      .move_to({300, 0, 60}, 8.0)
      .move_to({300, 300, 60}, 8.0)
      .move_to({0, 300, 60}, 8.0)
      .move_to({0, 0, 60}, 8.0)
      .move_to({0, 0, 0}, 2.5);
  std::cout << "Mission duration: "
            << metrics::TextTable::num(mission.duration().sec(), 0) << " s\n";

  // 2. A bespoke suburban deployment: 8 cells on a ring around the site.
  cellular::CellLayout layout;
  layout.name = "suburban-ring";
  for (int i = 0; i < 8; ++i) {
    const double angle = i * 2.0 * M_PI / 8.0;
    cellular::BaseStation bs;
    bs.cell_id = static_cast<std::uint32_t>(i + 1);
    bs.pos = {900.0 * std::cos(angle), 900.0 * std::sin(angle), 35.0};
    bs.downtilt_deg = 6.0;
    layout.cells.push_back(bs);
  }

  // 3. Pipeline configuration: GCC with a faster ramp, a shallower jitter
  //    buffer (100 ms), and the Appendix A.4 drop-on-latency player policy.
  pipeline::SessionConfig cfg;
  cfg.cc = pipeline::CcKind::kGcc;
  cfg.seed = 7;
  cfg.gcc.aimd.multiplicative_ramp_per_sec = 1.35;
  cfg.receiver.jitter.latency = sim::Duration::millis(100);
  cfg.receiver.jitter.drop_on_latency = true;
  cfg.link.radio.peak_capacity_mbps = 30.0;

  pipeline::Session session{cfg, layout, &mission, "suburban-ring/custom"};
  const auto report = session.run();

  metrics::Cdf latency, ssim;
  latency.add_all(report.playback_latency_ms);
  ssim.add_all(report.ssim_samples);

  metrics::TextTable t({"metric", "value"});
  t.add_row({"frames played", std::to_string(report.frames_played)});
  t.add_row({"avg goodput (Mbps)", metrics::TextTable::num(report.avg_goodput_mbps)});
  t.add_row({"playback latency median (ms)",
             metrics::TextTable::num(latency.median(), 0)});
  t.add_row({"latency < 250 ms (%)",
             metrics::TextTable::num(100.0 * latency.fraction_below(250.0), 1)});
  t.add_row({"SSIM median", metrics::TextTable::num(ssim.median(), 3)});
  t.add_row({"handovers", std::to_string(report.handovers.count())});
  t.add_row({"GCC ramp to 20 Mbps (s)",
             metrics::TextTable::num(report.ramp_up_seconds(20e6), 1)});
  std::cout << "\n" << t.render();

  std::cout << "\nSwap in your own RateController, HO policy, or layout by\n"
               "adjusting SessionConfig / CellLayout — every module above is\n"
               "independently replaceable.\n";
  return 0;
}
