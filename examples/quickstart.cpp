// Quickstart: stream one simulated UAV flight over LTE with GCC and print
// the headline video-delivery metrics the paper reports.
//
//   $ ./examples/quickstart [urban|rural] [gcc|scream|static] [seed]
#include <cstdint>
#include <iostream>
#include <string>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "metrics/cdf.hpp"
#include "metrics/text_table.hpp"

int main(int argc, char** argv) {
  using namespace rpv;

  experiment::Scenario s;
  s.env = experiment::Environment::kUrban;
  s.cc = pipeline::CcKind::kGcc;
  s.mobility = experiment::Mobility::kAir;
  s.seed = 42;

  if (argc > 1) {
    const std::string env = argv[1];
    if (env == "rural") s.env = experiment::Environment::kRuralP1;
  }
  if (argc > 2) {
    const std::string cc = argv[2];
    if (cc == "scream") s.cc = pipeline::CcKind::kScream;
    else if (cc == "static") s.cc = pipeline::CcKind::kStatic;
  }
  if (argc > 3) s.seed = static_cast<std::uint64_t>(std::stoull(argv[3]));

  std::cout << "Flying the Appendix A.2 trajectory over the "
            << experiment::environment_name(s.env) << " layout with "
            << pipeline::cc_name(s.cc) << " ...\n\n";

  const auto report = experiment::run_scenario(s);

  metrics::Cdf owd, fps, ssim, latency, goodput;
  owd.add_all(report.owd_ms);
  fps.add_all(report.fps_windows);
  ssim.add_all(report.ssim_samples);
  latency.add_all(report.playback_latency_ms);
  goodput.add_all(report.goodput_mbps_windows);

  metrics::TextTable t({"metric", "value"});
  t.add_row({"flight duration (s)", metrics::TextTable::num(report.duration.sec(), 0)});
  t.add_row({"frames encoded", std::to_string(report.frames_encoded)});
  t.add_row({"frames played", std::to_string(report.frames_played)});
  t.add_row({"avg goodput (Mbps)", metrics::TextTable::num(report.avg_goodput_mbps)});
  t.add_row({"median FPS", metrics::TextTable::num(fps.median(), 1)});
  t.add_row({"FPS >= 29 (%)", metrics::TextTable::num(100.0 * fps.fraction_at_least(29.0), 1)});
  t.add_row({"median playback latency (ms)", metrics::TextTable::num(latency.median(), 0)});
  t.add_row({"playback latency < 300 ms (%)",
             metrics::TextTable::num(100.0 * latency.fraction_below(300.0), 1)});
  t.add_row({"median one-way latency (ms)", metrics::TextTable::num(owd.median(), 1)});
  t.add_row({"OWD < 100 ms (%)", metrics::TextTable::num(100.0 * owd.fraction_below(100.0), 1)});
  t.add_row({"median SSIM", metrics::TextTable::num(ssim.median(), 3)});
  t.add_row({"SSIM < 0.5 (%)", metrics::TextTable::num(100.0 * (1.0 - ssim.fraction_at_least(0.5)), 2)});
  t.add_row({"stalls/min", metrics::TextTable::num(report.stalls_per_minute, 2)});
  t.add_row({"PER (%)", metrics::TextTable::num(100.0 * report.per, 3)});
  t.add_row({"handovers", std::to_string(report.handovers.count())});
  t.add_row({"HO frequency (/s)", metrics::TextTable::num(report.ho_frequency_per_s, 3)});
  t.add_row({"cells seen", std::to_string(report.cells_seen)});
  t.add_row({"queue discards (SCReAM)", std::to_string(report.queue_discard_events)});
  if (report.cc_name != "static") {
    t.add_row({"ramp-up to 90% of peak (s)",
               metrics::TextTable::num(report.ramp_up_seconds(
                   report.cc_name == "gcc" ? 22.5e6 : 22.5e6), 1)});
  }
  std::cout << t.render() << "\n";
  return 0;
}
