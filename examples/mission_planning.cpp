// Mission planning: which delivery method should a remote-piloting operator
// use at a given site? Runs all three methods over repeated flights in both
// environments and prints a decision matrix against the RP requirements the
// paper derives (<300 ms playback latency, SSIM >= 0.5, stable FPS).
//
//   $ ./examples/mission_planning [runs]
#include <iostream>
#include <string>

#include "experiment/runner.hpp"
#include "pipeline/qoe.hpp"
#include "metrics/text_table.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  const int runs = argc > 1 ? std::stoi(argv[1]) : 4;

  std::cout << "Evaluating delivery methods for remote-piloting missions ("
            << runs << " flights per cell)...\n\n";

  metrics::TextTable table({"site", "method", "goodput (Mbps)",
                            "latency<300ms (%)", "SSIM>=0.5 (%)",
                            "stalls/min", "QoE (1-5)", "verdict"});

  for (const auto env :
       {experiment::Environment::kUrban, experiment::Environment::kRuralP1}) {
    for (const auto cc : {pipeline::CcKind::kStatic, pipeline::CcKind::kGcc,
                          pipeline::CcKind::kScream}) {
      experiment::Campaign c;
      c.scenario.env = env;
      c.scenario.cc = cc;
      c.scenario.seed = 77;
      c.runs = runs;
      const auto reports = experiment::run_campaign(c);

      const auto goodput = experiment::pool_goodput(reports);
      const auto latency = experiment::pool_playback_latency(reports);
      const auto ssim = experiment::pool_ssim(reports);
      const double lat_ok = 100.0 * latency.fraction_below(300.0);
      const double ssim_ok = 100.0 * ssim.fraction_at_least(0.5);
      const double stalls = experiment::mean_stalls_per_minute(reports);

      // Mean QoE across runs plus a simple operator verdict against the
      // paper's RP requirements.
      double mos = 0.0;
      for (const auto& r : reports) mos += pipeline::score_qoe(r).mos;
      mos /= static_cast<double>(reports.size());
      std::string verdict = "usable";
      if (lat_ok < 50.0 || ssim_ok < 90.0) verdict = "unsafe";
      else if (lat_ok > 85.0 && ssim_ok > 97.0 && stalls < 1.0) verdict = "good";

      table.add_row({experiment::environment_name(env), pipeline::cc_name(cc),
                     metrics::TextTable::num(goodput.median(), 1),
                     metrics::TextTable::num(lat_ok, 1),
                     metrics::TextTable::num(ssim_ok, 1),
                     metrics::TextTable::num(stalls, 2),
                     metrics::TextTable::num(mos, 2), verdict});
    }
  }

  std::cout << table.render();
  std::cout << "\nPaper guidance: with abundant urban capacity, static bitrate "
               "maximizes quality; in capacity-limited rural areas adaptive "
               "streaming (SCReAM) becomes advantageous.\n";
  return 0;
}
