// Aerial coverage survey: probe-only flights characterizing the cellular
// network before committing to video operations — RTT by altitude, handover
// exposure, and capacity along the flight path. This is the tooling a UAV
// operator would run on a new site, built on the same public API.
//
//   $ ./examples/aerial_coverage_survey [urban|rural|rural-p2]
#include <iostream>
#include <string>

#include "experiment/runner.hpp"
#include "metrics/summary.hpp"
#include "metrics/text_table.hpp"

int main(int argc, char** argv) {
  using namespace rpv;

  experiment::Environment env = experiment::Environment::kUrban;
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "rural") env = experiment::Environment::kRuralP1;
    if (arg == "rural-p2") env = experiment::Environment::kRuralP2;
  }

  std::cout << "Surveying aerial cellular coverage over the "
            << experiment::environment_name(env) << " site...\n\n";

  experiment::Campaign c;
  c.scenario.env = env;
  c.scenario.cc = pipeline::CcKind::kNone;
  c.scenario.probe_interval = sim::Duration::millis(100);
  c.scenario.seed = 404;
  c.runs = 6;
  const auto reports = experiment::run_campaign(c);

  // RTT by altitude band.
  metrics::TextTable rtt_table({"altitude (m)", "probes", "RTT med (ms)",
                                "RTT p99 (ms)", "outage risk (RTT>500ms %)"});
  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {0, 20}, {21, 60}, {61, 100}, {101, 140}}) {
    const auto rtt = experiment::pool_rtt_in_band(reports, lo, hi);
    rtt_table.add_row(
        {metrics::TextTable::num(lo, 0) + "-" + metrics::TextTable::num(hi, 0),
         std::to_string(rtt.count()), metrics::TextTable::num(rtt.median(), 1),
         metrics::TextTable::num(rtt.quantile(0.99), 0),
         metrics::TextTable::num(100.0 * (1.0 - rtt.fraction_below(500.0)), 2)});
  }
  std::cout << "Latency vs altitude:\n" << rtt_table.render();

  // Handover exposure.
  const auto freq = experiment::pool_ho_frequency(reports);
  const auto het = experiment::pool_het(reports);
  const auto het_sum = metrics::Summary::of(het);
  double freq_mean = 0.0;
  for (const double f : freq) freq_mean += f;
  freq_mean /= static_cast<double>(freq.size());
  std::size_t ping_pongs = 0, cells = 0;
  for (const auto& r : reports) {
    ping_pongs += r.ping_pong_handovers;
    cells = std::max(cells, r.cells_seen);
  }
  std::cout << "\nHandover exposure: " << metrics::TextTable::num(freq_mean, 3)
            << " HO/s, HET median " << metrics::TextTable::num(het_sum.median, 1)
            << " ms (max " << metrics::TextTable::num(het_sum.max, 0)
            << " ms), " << ping_pongs << " ping-pong HOs, up to " << cells
            << " distinct cells per flight.\n";

  // Capacity along the path.
  metrics::Cdf cap;
  for (const auto& r : reports) cap.add_all(r.capacity_trace_mbps.values());
  std::cout << "\nUplink capacity along the trajectory: median "
            << metrics::TextTable::num(cap.median(), 1) << " Mbps, p10 "
            << metrics::TextTable::num(cap.quantile(0.10), 1) << " Mbps, p90 "
            << metrics::TextTable::num(cap.quantile(0.90), 1) << " Mbps.\n";

  const double supportable = cap.quantile(0.10);
  std::cout << "\nRecommendation: a static stream should stay below ~"
            << metrics::TextTable::num(supportable, 0)
            << " Mbps (10th-percentile capacity) for stable delivery;\n"
            << "above that, use adaptive streaming (GCC/SCReAM).\n";
  return 0;
}
