// Chaos sweep (Section 5 resilience extension): inject WAN outages of
// growing duration into the rural-P1 flight and measure how long each
// congestion controller takes to restore healthy playback, with the
// resilience stack (sender feedback watchdog + degradation ladder, receiver
// PLI keyframe recovery) off vs on. Reference-loss modeling is enabled in
// BOTH arms so the comparison is fair.
#include "bench_common.hpp"

#include "experiment/scenario.hpp"
#include "fault/fault_schedule.hpp"

namespace {

struct ArmResult {
  double mean_recovery_ms = 0.0;
  double mean_stalls = 0.0;
};

ArmResult run_arm(rpv::pipeline::CcKind cc, double outage_sec, bool resilience,
                  const std::vector<std::uint64_t>& seeds) {
  using namespace rpv;
  // All of an arm's seeds run in parallel through the campaign engine.
  std::vector<experiment::Scenario> scenarios;
  for (const auto seed : seeds) {
    experiment::Scenario s;
    s.env = experiment::Environment::kRuralP1;
    s.mobility = experiment::Mobility::kAir;
    s.cc = cc;
    s.seed = seed;
    s.resilience = resilience;
    s.model_reference_loss = true;
    s.faults.wan_outage(150.0, outage_sec);
    scenarios.push_back(s);
  }
  ArmResult a;
  int outcomes = 0;
  for (const auto& r : bench::run_scenarios(scenarios)) {
    for (const auto& o : r.fault_outcomes) {
      const auto fault_end = o.event.at + o.effective_duration;
      // Never-recovered counts as "down until the run drained".
      const double rec =
          o.recovery_ms >= 0.0
              ? o.recovery_ms
              : (r.duration + sim::Duration::seconds(2.0) -
                 (fault_end - sim::TimePoint::origin()))
                    .ms();
      a.mean_recovery_ms += rec;
      a.mean_stalls += static_cast<double>(o.stalls_attributed);
      ++outcomes;
    }
  }
  if (outcomes > 0) {
    a.mean_recovery_ms /= outcomes;
    a.mean_stalls /= outcomes;
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Extension — fault injection & resilience (chaos sweep)",
                      "IMC'22 Section 5: outage recovery per CC");

  std::vector<std::uint64_t> seeds;
  for (std::uint64_t k = 0; k < static_cast<std::uint64_t>(bench::runs_or(3));
       ++k) {
    seeds.push_back(bench::seed_or(9101) + k);
  }
  const double outages[] = {1.0, 2.0, 4.0};
  const pipeline::CcKind ccs[] = {pipeline::CcKind::kStatic,
                                  pipeline::CcKind::kGcc,
                                  pipeline::CcKind::kScream};

  metrics::TextTable table{{"method", "outage (s)", "recovery off (ms)",
                            "recovery on (ms)", "stalls off", "stalls on"}};
  bool all_improved = true;
  for (const auto cc : ccs) {
    double off_sum = 0.0;
    double on_sum = 0.0;
    for (const double outage : outages) {
      const auto off = run_arm(cc, outage, /*resilience=*/false, seeds);
      const auto on = run_arm(cc, outage, /*resilience=*/true, seeds);
      off_sum += off.mean_recovery_ms;
      on_sum += on.mean_recovery_ms;
      table.add_row({pipeline::cc_name(cc),
                     metrics::TextTable::num(outage, 0),
                     metrics::TextTable::num(off.mean_recovery_ms, 0),
                     metrics::TextTable::num(on.mean_recovery_ms, 0),
                     metrics::TextTable::num(off.mean_stalls, 1),
                     metrics::TextTable::num(on.mean_stalls, 1)});
    }
    const bool improved = on_sum < off_sum;
    all_improved = all_improved && improved;
    std::cout << pipeline::cc_name(cc) << ": mean recovery "
              << metrics::TextTable::num(off_sum / 3.0, 0) << " ms -> "
              << metrics::TextTable::num(on_sum / 3.0, 0) << " ms "
              << (improved ? "(improved)" : "(NOT improved)") << "\n";
  }

  std::cout << "\n" << table.render();
  std::cout << "\nExpected shape: with resilience on, the receiver's PLI "
               "forces an IDR right after the outage heals instead of "
               "waiting out the GoP, and the sender's watchdog flushes its "
               "stale queue and decays the rate, so post-outage recovery "
               "shortens for every controller.\n";
  std::cout << (all_improved ? "VERDICT: resilience shortens recovery for all "
                               "controllers.\n"
                             : "VERDICT: regression — some controller did not "
                               "improve.\n");
  return all_improved ? 0 : 1;
}
