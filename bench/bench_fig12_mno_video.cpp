// Figure 12 (Appendix A.3): video delivery performance by operator in the
// rural environment — goodput, FPS, playback latency, and SSIM per method
// over P1 vs P2. Paper: larger P2 capacity improves goodput and SSIM, but
// SCReAM performs significantly poorer with P2 at higher bitrates (the ack-
// window limitation), so latency/FPS do not simply improve.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Figure 12 — MNO comparison of video delivery (rural)",
                      "IMC'22 Fig. 12(a)-(d), Appendix A.3");

  metrics::TextTable table{{"method-operator", "goodput med (Mbps)",
                            "30FPS time (%)", "latency<300ms (%)",
                            "SSIM med", "SSIM>=0.5 (%)"}};

  for (const auto cc : {pipeline::CcKind::kGcc, pipeline::CcKind::kScream,
                        pipeline::CcKind::kStatic}) {
    for (const auto env : {experiment::Environment::kRuralP1,
                           experiment::Environment::kRuralP2}) {
      const std::string op =
          env == experiment::Environment::kRuralP1 ? "P1" : "P2";
      auto campaign = bench::video_campaign(env, cc, 4);
      // The paper observed SCReAM's ack-window pathology especially at P2's
      // higher bitrates; the campaign default of 256 already mitigates — use
      // the library default of 64 here, as the A.3 measurements did.
      campaign.scenario.rfc8888_ack_window = 64;
      const auto reports = experiment::run_campaign(campaign);
      const auto goodput = experiment::pool_goodput(reports);
      const auto fps = experiment::pool_fps(reports);
      const auto latency = experiment::pool_playback_latency(reports);
      const auto ssim = experiment::pool_ssim(reports);
      table.add_row(
          {pipeline::cc_name(cc) + " - " + op,
           metrics::TextTable::num(goodput.median(), 2),
           metrics::TextTable::num(100.0 * fps.fraction_at_least(29.0), 1),
           metrics::TextTable::num(100.0 * latency.fraction_below(300.0), 1),
           metrics::TextTable::num(ssim.median(), 3),
           metrics::TextTable::num(100.0 * ssim.fraction_at_least(0.5), 2)});
    }
  }

  std::cout << "\n" << table.render();
  std::cout << "\nPaper shape: P2's extra rural capacity lifts goodput and "
               "received-frame quality (SSIM), but SCReAM's playback latency "
               "and FPS worsen at P2's higher bitrates (RFC 8888 ack-window "
               "limitation, Section 4.2.1).\n";
  return 0;
}
