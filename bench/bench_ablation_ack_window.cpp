// Ablation (Section 4.2.1): SCReAM's RFC 8888 acknowledgment window — the
// Ericsson library default of 64 packets vs the paper's mitigation of 256.
// Post-handover arrival bursts larger than the window leave received packets
// unacknowledged; SCReAM misreads them as losses and cuts its rate.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Ablation — SCReAM RFC 8888 ack window 64 vs 256",
                      "IMC'22 Section 4.2.1 (implementation discussion)");

  metrics::TextTable table{{"ack window", "environment", "goodput med (Mbps)",
                            "misloss pkts/run", "queue discards/run",
                            "latency<300ms (%)"}};

  for (const int window : {64, 256}) {
    for (const auto env :
         {experiment::Environment::kUrban, experiment::Environment::kRuralP1}) {
      auto campaign =
          bench::video_campaign(env, pipeline::CcKind::kScream, 5);
      campaign.scenario.rfc8888_ack_window = window;
      const auto reports = experiment::run_campaign(campaign);
      const auto goodput = experiment::pool_goodput(reports);
      const auto latency = experiment::pool_playback_latency(reports);
      double misloss = 0.0, discards = 0.0;
      for (const auto& r : reports) {
        misloss += static_cast<double>(r.scream_misloss_packets);
        discards += static_cast<double>(r.queue_discard_events);
      }
      misloss /= static_cast<double>(reports.size());
      discards /= static_cast<double>(reports.size());
      table.add_row({std::to_string(window), experiment::environment_name(env),
                     metrics::TextTable::num(goodput.median(), 2),
                     metrics::TextTable::num(misloss, 0),
                     metrics::TextTable::num(discards, 1),
                     metrics::TextTable::num(
                         100.0 * latency.fraction_below(300.0), 1)});
    }
  }

  std::cout << "\n" << table.render();
  std::cout << "\nPaper shape: the 64-packet window mislabels received packets "
               "as lost during arrival bursts, needlessly lowering SCReAM's "
               "bitrate; widening to 256 reduces those events.\n";
  return 0;
}
