// Core engine microbench: raw sim::EventQueue throughput, isolated from any
// scenario logic, so the perf gate can tell "the calendar queue regressed"
// apart from "a handler got slower".
//
// Three workloads, each a pattern the simulator actually produces:
//   steady    self-clocking timer population — K outstanding timers, every
//             handler re-arms itself 0.1–50 ms ahead (pacing/pump/service
//             timers). Lives almost entirely in the calendar wheel.
//   cancel    retransmit-timer churn — schedule two, cancel one, fire one;
//             half the scheduled events die as generation-checked tombstones.
//   overflow  far-horizon timers 0.1–10 s ahead (watchdogs, keyframe guards,
//             mission epochs) — exercises the overflow heap and the window
//             rebase/migration path instead of the wheel fast path.
//
// Exit status encodes the acceptance verdict: 0 when a mixed 200k-event run
// pops in exactly the (timestamp, FIFO seq) order of a std::priority_queue
// reference fed the same schedule, 1 otherwise.
//
//   bench_core_queue [--events N] [--outstanding K] [--seed S]
//                    [--bench-json PATH]
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "json/json.hpp"
#include "metrics/text_table.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/validate.hpp"

namespace {

using namespace rpv;

double peak_rss_mb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct WorkloadResult {
  std::uint64_t executed = 0;
  double wall_seconds = 0.0;
};

// K self-rescheduling timers, delays uniform in [100 us, 50 ms] — inside the
// 262 ms calendar window, so this is the wheel fast path plus cursor
// advances across mostly-empty buckets.
WorkloadResult run_steady(std::uint64_t target, std::size_t outstanding,
                          std::uint64_t seed) {
  sim::EventQueue q;
  sim::Rng rng{seed};
  sim::TimePoint clock = sim::TimePoint::origin();
  std::uint64_t executed = 0;

  struct Timer {
    sim::EventQueue* q;
    sim::Rng* rng;
    sim::TimePoint* clock;
    std::uint64_t* executed;
    void fire() {
      ++*executed;
      const auto delay =
          sim::Duration::micros(rng->uniform_int(100, 50'000));
      q->schedule(*clock + delay, [this] { fire(); });
    }
  };
  Timer timer{&q, &rng, &clock, &executed};

  for (std::size_t i = 0; i < outstanding; ++i) {
    const auto delay = sim::Duration::micros(rng.uniform_int(100, 50'000));
    q.schedule(clock + delay, [&timer] { timer.fire(); });
  }

  const double t0 = now_seconds();
  while (executed < target && q.run_one(sim::TimePoint::never(), &clock)) {
  }
  const double wall = now_seconds() - t0;
  return {executed, wall};
}

// Each fired event schedules two successors and cancels one of them, so half
// the schedule() calls become tombstones the calendar must skip lazily —
// the retransmit/watchdog pattern where most timers never fire.
WorkloadResult run_cancel(std::uint64_t target, std::size_t outstanding,
                          std::uint64_t seed) {
  sim::EventQueue q;
  sim::Rng rng{seed};
  sim::TimePoint clock = sim::TimePoint::origin();
  std::uint64_t executed = 0;

  struct Churn {
    sim::EventQueue* q;
    sim::Rng* rng;
    sim::TimePoint* clock;
    std::uint64_t* executed;
    void fire() {
      ++*executed;
      const auto d1 = sim::Duration::micros(rng->uniform_int(100, 50'000));
      const auto d2 = sim::Duration::micros(rng->uniform_int(100, 50'000));
      q->schedule(*clock + d1, [this] { fire(); });
      const auto doomed = q->schedule(*clock + d2, [this] { fire(); });
      q->cancel(doomed);
    }
  };
  Churn churn{&q, &rng, &clock, &executed};

  for (std::size_t i = 0; i < outstanding; ++i) {
    const auto delay = sim::Duration::micros(rng.uniform_int(100, 50'000));
    q.schedule(clock + delay, [&churn] { churn.fire(); });
  }

  const double t0 = now_seconds();
  while (executed < target && q.run_one(sim::TimePoint::never(), &clock)) {
  }
  const double wall = now_seconds() - t0;
  return {executed, wall};
}

// Far-horizon timers: every delay lands beyond the 1024-bucket window, so
// each event takes the overflow-heap path and the wheel is refilled through
// rebase migrations once the window drains.
WorkloadResult run_overflow(std::uint64_t target, std::size_t outstanding,
                            std::uint64_t seed) {
  sim::EventQueue q;
  sim::Rng rng{seed};
  sim::TimePoint clock = sim::TimePoint::origin();
  std::uint64_t executed = 0;

  struct Horizon {
    sim::EventQueue* q;
    sim::Rng* rng;
    sim::TimePoint* clock;
    std::uint64_t* executed;
    void fire() {
      ++*executed;
      const auto delay =
          sim::Duration::micros(rng->uniform_int(300'000, 10'000'000));
      q->schedule(*clock + delay, [this] { fire(); });
    }
  };
  Horizon horizon{&q, &rng, &clock, &executed};

  for (std::size_t i = 0; i < outstanding; ++i) {
    const auto delay =
        sim::Duration::micros(rng.uniform_int(300'000, 10'000'000));
    q.schedule(clock + delay, [&horizon] { horizon.fire(); });
  }

  const double t0 = now_seconds();
  while (executed < target && q.run_one(sim::TimePoint::never(), &clock)) {
  }
  const double wall = now_seconds() - t0;
  return {executed, wall};
}

// Cross-check: a mixed schedule (near, far, and equal timestamps) must pop
// from EventQueue in exactly the (timestamp, FIFO seq) order of a binary
// heap fed the same events. This is the determinism contract the simulator
// builds on; the unit tests cover it too, but the bench re-asserts it on
// every gate run at zero extra cost.
bool reference_order_check(std::uint64_t events, std::uint64_t seed) {
  sim::EventQueue q;
  sim::Rng rng{seed};
  // (at_us, seq) pairs; the reference pops the lexicographic minimum.
  using Ref = std::pair<std::int64_t, std::uint64_t>;
  std::priority_queue<Ref, std::vector<Ref>, std::greater<>> ref;

  std::vector<std::uint64_t> order;
  order.reserve(events);
  std::int64_t base = 0;
  for (std::uint64_t i = 0; i < events; ++i) {
    // Mix of short, long, and deliberately colliding timestamps.
    std::int64_t at = base + rng.uniform_int(0, 400'000);
    if (rng.chance(0.1)) at = base;                        // FIFO collision
    if (rng.chance(0.05)) at = base + 5'000'000;           // overflow path
    const std::uint64_t id = i;
    q.schedule(sim::TimePoint::from_us(at),
               [&order, id] { order.push_back(id); });
    ref.emplace(at, i);
    if (i % 64 == 0) base += rng.uniform_int(0, 1'000);
  }

  sim::TimePoint clock = sim::TimePoint::origin();
  while (q.run_one(sim::TimePoint::never(), &clock)) {
  }
  if (order.size() != events) return false;
  for (std::uint64_t i = 0; i < events; ++i) {
    if (order[i] != ref.top().second) return false;
    ref.pop();
  }
  return true;
}

void print_usage(const char* prog) {
  std::cout << "usage: " << prog
            << " [--events N] [--outstanding K] [--seed S]\n"
               "                 [--bench-json PATH]\n"
               "  --events N        events per workload (default 4000000)\n"
               "  --outstanding K   concurrent timers (default 4096)\n"
               "  --seed S          rng seed (default 42)\n"
               "  --bench-json PATH write the perf baseline rows as "
               "canonical JSON\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t events = 4'000'000;
  std::size_t outstanding = 4096;
  std::uint64_t seed = 42;
  std::optional<std::string> bench_json;

  auto value_of = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << flag << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--events") events = std::stoull(value_of(i, arg));
      else if (arg == "--outstanding")
        outstanding = std::stoull(value_of(i, arg));
      else if (arg == "--seed") seed = std::stoull(value_of(i, arg));
      else if (arg == "--bench-json") bench_json = value_of(i, arg);
      else if (arg == "--help" || arg == "-h") {
        print_usage(argv[0]);
        return 0;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        print_usage(argv[0]);
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "bad value for " << arg << ": " << e.what() << "\n\n";
      print_usage(argv[0]);
      return 2;
    }
  }
  rpv::validate(events > 0, "--events must be positive");
  rpv::validate(outstanding > 0, "--outstanding must be positive");

  std::cout
      << "==============================================================\n"
      << "Core engine — sim::EventQueue microbench\n"
      << "==============================================================\n"
      << events << " events/workload, " << outstanding
      << " outstanding timers, seed " << seed << "\n\n";

  metrics::TextTable table{
      {"workload", "events", "wall (s)", "events/s", "RSS (MB)"}};
  json::Value rows = json::Value::array();

  struct Case {
    const char* name;
    WorkloadResult (*run)(std::uint64_t, std::size_t, std::uint64_t);
  };
  const Case cases[] = {
      {"steady", run_steady}, {"cancel", run_cancel}, {"overflow", run_overflow}};

  for (const Case& c : cases) {
    const WorkloadResult r = c.run(events, outstanding, seed);
    const double rate =
        r.wall_seconds > 0.0
            ? static_cast<double>(r.executed) / r.wall_seconds
            : 0.0;
    const double rss = peak_rss_mb();
    table.add_row({c.name, std::to_string(r.executed),
                   metrics::TextTable::num(r.wall_seconds, 2),
                   metrics::TextTable::num(rate, 0),
                   metrics::TextTable::num(rss, 0)});
    json::Value row = json::Value::object();
    row.set("workload", std::string{c.name})
        .set("events", r.executed)
        .set("wall_seconds", r.wall_seconds)
        .set("events_per_second", rate)
        .set("peak_rss_mb", rss);
    rows.push_back(std::move(row));
  }

  std::cout << table.render();

  const bool order_ok = reference_order_check(200'000, seed);
  std::cout << "\nreference pop-order check (200k mixed events vs binary "
               "heap): "
            << (order_ok ? "IDENTICAL" : "MISMATCH") << "\n";

  if (bench_json) {
    json::Value doc = json::Value::object();
    doc.set("bench", std::string{"core_queue"})
        .set("events", events)
        .set("outstanding", std::uint64_t{outstanding})
        .set("seed", seed)
        .set("rows", std::move(rows));
    std::ofstream out{*bench_json};
    out << doc.dump(2) << "\n";
    std::cout << "\nperf baseline written to " << *bench_json << "\n";
  }

  return order_ok ? 0 : 1;
}
