// Extension (rpv::bond): named bonding policies vs the legacy multipath
// modes under injected fault schedules. The question the table answers is
// the robustness tradeoff — how much stall time each policy buys back and
// what it pays in airtime (duplicate ships every packet twice; the bonded
// policies duplicate selectively and lean on adaptive FEC instead).
//
// Exit status encodes the acceptance verdict: 0 when kHighReliability both
// stalls less than legacy failover and spends less airtime than legacy
// duplicate on every fault schedule, 1 otherwise.
#include "bench_common.hpp"

#include "experiment/scenario.hpp"

namespace {

struct Arm {
  double stall_ms_per_run = 0.0;   // summed frozen-video time, mean per run
  double airtime_mb = 0.0;         // bond_airtime_bytes, mean per run
  double overhead_pct = 0.0;       // airtime over raw media bytes
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Extension — bonded reliability policies vs legacy modes",
                      "rpv::bond; IMC'22 Fig. 10 operator pair under faults");

  metrics::TextTable table{{"fault", "policy", "stall ms/run", "stalls/min",
                            "airtime (MB/run)", "overhead (%)", "FEC rec",
                            "path sw", "dup supp"}};

  const std::vector<std::pair<experiment::Multipath, std::string>> arms = {
      {experiment::Multipath::kFailover, "failover (legacy)"},
      {experiment::Multipath::kDuplicate, "duplicate (legacy)"},
      {experiment::Multipath::kBondLowLatency, "bond low-latency"},
      {experiment::Multipath::kBondBalanced, "bond balanced"},
      {experiment::Multipath::kBondHighReliability, "bond high-reliability"},
  };

  bool verdict = true;
  for (const auto preset : {experiment::FaultPreset::kRlfStorm,
                            experiment::FaultPreset::kChaos}) {
    Arm failover, duplicate, high_rel;
    for (const auto& [multipath, label] : arms) {
      std::vector<experiment::Scenario> scenarios;
      for (std::uint64_t k = 0;
           k < static_cast<std::uint64_t>(bench::runs_or(4)); ++k) {
        experiment::Scenario s;
        s.env = experiment::Environment::kRuralP1;  // the paper's P1/P2 pair
        s.cc = pipeline::CcKind::kStatic;
        s.c2 = true;
        s.multipath = multipath;
        s.fault_preset = preset;
        s.seed = bench::seed_or(13000) + k;
        scenarios.push_back(s);
      }
      const auto rs = bench::run_scenarios(scenarios);
      const double n = static_cast<double>(rs.size());
      Arm arm;
      double fec_recovered = 0.0, path_switches = 0.0, dup_suppressed = 0.0;
      double media_mb = 0.0;
      for (const auto& r : rs) {
        for (const double ms : r.stall_duration_ms) arm.stall_ms_per_run += ms;
        arm.airtime_mb += static_cast<double>(r.bond_airtime_bytes) / 1e6;
        media_mb += static_cast<double>(r.bond_media_bytes) / 1e6;
        fec_recovered += static_cast<double>(r.bond_fec_recovered);
        path_switches += static_cast<double>(r.bond_path_switches);
        dup_suppressed += static_cast<double>(r.bond_duplicates_suppressed);
      }
      arm.stall_ms_per_run /= n;
      arm.airtime_mb /= n;
      media_mb /= n;
      arm.overhead_pct =
          media_mb > 0.0 ? 100.0 * (arm.airtime_mb / media_mb - 1.0) : 0.0;

      table.add_row(
          {experiment::fault_preset_name(preset), label,
           metrics::TextTable::num(arm.stall_ms_per_run, 0),
           metrics::TextTable::num(experiment::mean_stalls_per_minute(rs), 2),
           metrics::TextTable::num(arm.airtime_mb, 1),
           metrics::TextTable::num(arm.overhead_pct, 1),
           metrics::TextTable::num(fec_recovered / n, 0),
           metrics::TextTable::num(path_switches / n, 1),
           metrics::TextTable::num(dup_suppressed / n, 0)});

      if (multipath == experiment::Multipath::kFailover) failover = arm;
      if (multipath == experiment::Multipath::kDuplicate) duplicate = arm;
      if (multipath == experiment::Multipath::kBondHighReliability)
        high_rel = arm;
    }
    const bool less_stall = high_rel.stall_ms_per_run < failover.stall_ms_per_run;
    const bool less_airtime = high_rel.airtime_mb < duplicate.airtime_mb;
    std::cout << "  [" << experiment::fault_preset_name(preset)
              << "] high-reliability vs failover stall: "
              << (less_stall ? "LOWER" : "NOT LOWER")
              << "; vs duplicate airtime: "
              << (less_airtime ? "LOWER" : "NOT LOWER") << "\n";
    verdict = verdict && less_stall && less_airtime;
  }

  std::cout << "\n" << table.render();
  std::cout << "\nExpected shape: legacy duplicate buys its robustness with "
               "~2x airtime; the bonded high-reliability policy duplicates "
               "only C2 and keyframes and carries the rest on adaptive FEC, "
               "stalling less than failover at a fraction of duplicate's "
               "overhead.\n";
  std::cout << "verdict: " << (verdict ? "PASS" : "FAIL") << "\n";
  return verdict ? 0 : 1;
}
