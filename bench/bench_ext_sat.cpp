// Extension (rpv::sat): 2-path operator bonding vs 3-way multi-connectivity
// with the LEO satellite path, under the rlf-storm fault schedule. The table
// answers the ROADMAP item 4 question — what the high-latency, high-capacity
// satellite path buys when both cellular operators degrade at once, and what
// it costs in airtime (every sat byte rides a ~27 ms propagation floor).
//
// Exit status encodes the acceptance verdict: 0 when the 3-way
// kHighReliability arm stalls less than the 2-path kHighReliability arm
// while the satellite outage process is active (pass handovers + obstruction
// windows observed), 1 otherwise.
//
//   bench_ext_sat [--runs N] [--seed S] [--jobs J] [--bench-json FILE]
#include <chrono>
#include <fstream>
#include <optional>

#include "bench_common.hpp"

#include "experiment/scenario.hpp"
#include "json/json.hpp"

namespace {

using namespace rpv;

struct Arm {
  double stall_ms_per_run = 0.0;  // summed frozen-video time, mean per run
  double airtime_mb = 0.0;        // bond_airtime_bytes, mean per run
  double sat_share_pct = 0.0;     // sat path share of delivered packets
  double sat_hos = 0.0;           // pass handovers, mean per run
  double sat_outages = 0.0;       // obstruction/rain-fade windows, mean per run
};

void print_usage(const char* prog) {
  std::cout << "usage: " << prog
            << " [--runs N] [--seed S] [--jobs J] [--bench-json FILE]\n"
               "  --runs N          campaign size per arm (default 4)\n"
               "  --seed S          base seed (default 17000)\n"
               "  --jobs J          worker threads (0 = all hardware threads)\n"
               "  --bench-json FILE write machine-readable rows (perf gate)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<std::string> bench_json;
  {
    // Peel off --bench-json, hand the rest to the shared bench parser.
    std::vector<char*> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--bench-json") {
        if (i + 1 >= argc) {
          std::cerr << "--bench-json needs a value\n\n";
          print_usage(argv[0]);
          return 2;
        }
        bench_json = argv[++i];
      } else if (arg == "--help" || arg == "-h") {
        print_usage(argv[0]);
        return 0;
      } else {
        rest.push_back(argv[i]);
      }
    }
    bench::parse_args(static_cast<int>(rest.size()), rest.data());
  }
  bench::print_header(
      "Extension — 2-path operator bonding vs 3-way (+LEO satellite)",
      "rpv::sat; IMC'22 Section 5 multi-connectivity outlook, ROADMAP item 4");

  metrics::TextTable table{{"paths", "policy", "stall ms/run", "stalls/min",
                            "airtime (MB/run)", "sat share (%)", "sat HO",
                            "sat outages", "events/s"}};

  const std::vector<std::pair<experiment::Multipath, std::string>> policies = {
      {experiment::Multipath::kFailover, "failover (legacy)"},
      {experiment::Multipath::kBondBalanced, "bond balanced"},
      {experiment::Multipath::kBondHighReliability, "bond high-reliability"},
  };
  const std::vector<std::pair<experiment::PathSet, std::string>> path_sets = {
      {experiment::PathSet::kOperatorPair, "2-path"},
      {experiment::PathSet::kThreeWay, "3-way"},
  };

  json::Value rows = json::Value::array();
  Arm hr_two, hr_three;
  for (const auto& [path_set, ps_label] : path_sets) {
    for (const auto& [multipath, label] : policies) {
      std::vector<experiment::Scenario> scenarios;
      for (std::uint64_t k = 0;
           k < static_cast<std::uint64_t>(bench::runs_or(4)); ++k) {
        experiment::Scenario s;
        s.env = experiment::Environment::kRuralP1;  // the paper's P1/P2 pair
        s.cc = pipeline::CcKind::kStatic;
        s.c2 = true;
        s.multipath = multipath;
        s.path_set = path_set;
        s.fault_preset = experiment::FaultPreset::kRlfStorm;
        // Both operators take the storm: the cellular-only bond has nowhere
        // clean to run, which is exactly the case the sat path targets.
        s.faults_on_both_operators = true;
        s.seed = bench::seed_or(17000) + k;
        scenarios.push_back(s);
      }
      const auto t0 = std::chrono::steady_clock::now();
      const auto rs = bench::run_scenarios(scenarios);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const double n = static_cast<double>(rs.size());

      Arm arm;
      double sim_events = 0.0;
      for (const auto& r : rs) {
        for (const double ms : r.stall_duration_ms) arm.stall_ms_per_run += ms;
        arm.airtime_mb += static_cast<double>(r.bond_airtime_bytes) / 1e6;
        arm.sat_hos += static_cast<double>(r.sat_pass_handovers);
        arm.sat_outages += static_cast<double>(r.sat_obstructions);
        sim_events += static_cast<double>(r.sim_events);
        double delivered = 0.0, sat_delivered = 0.0;
        for (const auto& pb : r.bond_paths) {
          delivered += static_cast<double>(pb.delivered_packets);
          if (pb.kind == "satellite")
            sat_delivered += static_cast<double>(pb.delivered_packets);
        }
        if (delivered > 0.0)
          arm.sat_share_pct += 100.0 * sat_delivered / delivered;
      }
      arm.stall_ms_per_run /= n;
      arm.airtime_mb /= n;
      arm.sat_share_pct /= n;
      arm.sat_hos /= n;
      arm.sat_outages /= n;
      const double events_per_s = wall > 0.0 ? sim_events / wall : 0.0;

      table.add_row(
          {ps_label, label, metrics::TextTable::num(arm.stall_ms_per_run, 0),
           metrics::TextTable::num(experiment::mean_stalls_per_minute(rs), 2),
           metrics::TextTable::num(arm.airtime_mb, 1),
           metrics::TextTable::num(arm.sat_share_pct, 1),
           metrics::TextTable::num(arm.sat_hos, 1),
           metrics::TextTable::num(arm.sat_outages, 1),
           metrics::TextTable::num(events_per_s, 0)});

      json::Value row = json::Value::object();
      row.set("multipath", experiment::multipath_name(multipath))
          .set("path_set", experiment::path_set_name(path_set))
          .set("stall_ms_per_run", arm.stall_ms_per_run)
          .set("airtime_mb_per_run", arm.airtime_mb)
          .set("sat_share_pct", arm.sat_share_pct)
          .set("sat_pass_handovers", arm.sat_hos)
          .set("sat_obstructions", arm.sat_outages)
          .set("wall_seconds", wall)
          .set("events_per_second", events_per_s);
      rows.push_back(std::move(row));

      if (multipath == experiment::Multipath::kBondHighReliability) {
        if (path_set == experiment::PathSet::kOperatorPair) hr_two = arm;
        if (path_set == experiment::PathSet::kThreeWay) hr_three = arm;
      }
    }
  }

  std::cout << "\n" << table.render();

  if (bench_json) {
    json::Value doc = json::Value::object();
    doc.set("bench", std::string{"sat"})
        .set("env", std::string{"rural-p1"})
        .set("fault_preset", std::string{"rlf-storm"})
        .set("seed", bench::seed_or(17000))
        .set("rows", std::move(rows));
    std::ofstream out{*bench_json};
    out << doc.dump(2) << "\n";
    std::cout << "\nperf baseline written to " << *bench_json << "\n";
  }

  const bool less_stall = hr_three.stall_ms_per_run < hr_two.stall_ms_per_run;
  const bool sat_active = hr_three.sat_hos > 0.0 && hr_three.sat_outages > 0.0;
  std::cout << "\n3-way vs 2-path high-reliability stall: "
            << (less_stall ? "LOWER" : "NOT LOWER")
            << "; satellite outage process "
            << (sat_active ? "ACTIVE" : "INACTIVE") << " ("
            << metrics::TextTable::num(hr_three.sat_hos, 1) << " pass HOs, "
            << metrics::TextTable::num(hr_three.sat_outages, 1)
            << " outage windows/run)\n";
  std::cout << "Expected shape: the satellite path is immune to the cellular "
               "fault schedule, so during simultaneous operator degradation "
               "the 3-way bond keeps draining video over the ~27 ms-floor "
               "path instead of freezing.\n";
  const bool verdict = less_stall && sat_active;
  std::cout << "verdict: " << (verdict ? "PASS" : "FAIL") << "\n";
  return verdict ? 0 : 1;
}
