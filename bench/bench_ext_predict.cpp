// Prediction extension (rpv::predict): reactive vs. proactive adaptation.
//
// The paper shows the latency spikes and stalls cluster around handovers —
// damage GCC/SCReAM only react to after the fact. The proactive arm runs the
// same flights with the HO-aware adapter on: the HandoverPredictor arms
// "HO imminent" from the serving/neighbor RSRP trend, the sender dips its
// bitrate to a fraction of the forecast capacity and defers keyframes
// through the predicted HET window, and flushes its stale queue once the
// bearer is back. Sweeps GCC/SCReAM/static x urban/rural-P1 and reports
// stall-duration and P95 one-way-delay deltas plus the predictor's own
// quality (precision/recall, lead time, capacity-forecast MAE).
#include "bench_common.hpp"

#include <algorithm>

#include "experiment/scenario.hpp"

namespace {

using namespace rpv;

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

struct ArmResult {
  double mean_stall_ms = 0.0;   // mean frozen-gap length (0 when stall-free)
  double stall_ms_per_run = 0.0;  // mean total frozen time per flight
  double stalls_per_min = 0.0;
  double p95_owd_ms = 0.0;
  double precision = 1.0;
  double recall = 1.0;
  double mean_lead_ms = 0.0;
  double capacity_mae = 0.0;
  std::uint64_t dips = 0;
  std::uint64_t deferrals = 0;
  std::uint64_t flushes = 0;
};

ArmResult run_arm(experiment::Environment env, pipeline::CcKind cc,
                  experiment::Policy policy,
                  const std::vector<std::uint64_t>& seeds) {
  std::vector<experiment::Scenario> scenarios;
  for (const auto seed : seeds) {
    experiment::Scenario s;
    s.env = env;
    s.mobility = experiment::Mobility::kAir;
    s.cc = cc;
    s.seed = seed;
    s.policy = policy;
    scenarios.push_back(s);
  }

  ArmResult a;
  std::vector<double> stall_ms;
  std::vector<double> owd_ms;
  std::vector<double> lead_ms;
  std::uint64_t tp = 0, fp = 0, missed = 0;
  double mae_sum = 0.0;
  for (const auto& r : bench::run_scenarios(scenarios)) {
    stall_ms.insert(stall_ms.end(), r.stall_duration_ms.begin(),
                    r.stall_duration_ms.end());
    owd_ms.insert(owd_ms.end(), r.owd_ms.begin(), r.owd_ms.end());
    lead_ms.insert(lead_ms.end(), r.prediction.ho_lead_time_ms.begin(),
                   r.prediction.ho_lead_time_ms.end());
    a.stalls_per_min += r.stalls_per_minute;
    tp += r.prediction.ho_true_positives;
    fp += r.prediction.ho_false_positives;
    missed += r.prediction.ho_missed;
    mae_sum += r.prediction.capacity_mae_mbps;
    a.dips += r.prediction.dip_windows;
    a.deferrals += r.prediction.keyframes_deferred;
    a.flushes += r.prediction.proactive_flushes;
  }
  const auto n = static_cast<double>(seeds.size());
  a.stalls_per_min /= n;
  a.capacity_mae = mae_sum / n;
  if (!stall_ms.empty()) {
    double sum = 0.0;
    for (const double x : stall_ms) sum += x;
    a.mean_stall_ms = sum / static_cast<double>(stall_ms.size());
    a.stall_ms_per_run = sum / n;
  }
  a.p95_owd_ms = percentile(owd_ms, 0.95);
  a.precision = (tp + fp) == 0
                    ? 1.0
                    : static_cast<double>(tp) / static_cast<double>(tp + fp);
  a.recall = (tp + missed) == 0
                 ? 1.0
                 : static_cast<double>(tp) / static_cast<double>(tp + missed);
  if (!lead_ms.empty()) {
    double sum = 0.0;
    for (const double x : lead_ms) sum += x;
    a.mean_lead_ms = sum / static_cast<double>(lead_ms.size());
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::print_header(
      "Extension — link-quality prediction & proactive HO adaptation",
      "IMC'22 Section 5 outlook; predictability per 'A Vertical Look at UAV "
      "Connectivity in the Wild'");

  std::vector<std::uint64_t> seeds;
  for (std::uint64_t k = 0; k < static_cast<std::uint64_t>(bench::runs_or(3));
       ++k) {
    seeds.push_back(bench::seed_or(7301) + k * 7919);
  }

  const experiment::Environment envs[] = {experiment::Environment::kUrban,
                                          experiment::Environment::kRuralP1};
  const pipeline::CcKind ccs[] = {pipeline::CcKind::kGcc,
                                  pipeline::CcKind::kScream,
                                  pipeline::CcKind::kStatic};

  metrics::TextTable table{{"env", "method", "stall s/run re/pro",
                            "mean stall ms re/pro", "p95 owd re/pro (ms)",
                            "stalls/min re/pro", "prec", "recall", "lead (ms)",
                            "cap MAE", "dips", "defer", "flush"}};
  int urban_improved = 0;
  for (const auto env : envs) {
    for (const auto cc : ccs) {
      const auto re =
          run_arm(env, cc, experiment::Policy::kReactive, seeds);
      const auto pro =
          run_arm(env, cc, experiment::Policy::kProactive, seeds);
      table.add_row(
          {experiment::environment_name(env), pipeline::cc_name(cc),
           metrics::TextTable::num(re.stall_ms_per_run / 1000.0, 2) + "/" +
               metrics::TextTable::num(pro.stall_ms_per_run / 1000.0, 2),
           metrics::TextTable::num(re.mean_stall_ms, 0) + "/" +
               metrics::TextTable::num(pro.mean_stall_ms, 0),
           metrics::TextTable::num(re.p95_owd_ms, 1) + "/" +
               metrics::TextTable::num(pro.p95_owd_ms, 1),
           metrics::TextTable::num(re.stalls_per_min, 2) + "/" +
               metrics::TextTable::num(pro.stalls_per_min, 2),
           metrics::TextTable::num(pro.precision, 2),
           metrics::TextTable::num(pro.recall, 2),
           metrics::TextTable::num(pro.mean_lead_ms, 0),
           metrics::TextTable::num(pro.capacity_mae, 2),
           std::to_string(pro.dips), std::to_string(pro.deferrals),
           std::to_string(pro.flushes)});
      if (env == experiment::Environment::kUrban) {
        // Improved = strictly lower P95 one-way delay AND no-worse mean
        // stall time per flight. The per-run total is the honest stall
        // aggregate: the proactive arm removes the short queue-pressure
        // stalls entirely, which *raises* the per-event mean (the survivors
        // are the irreducible HET gaps) even as the pilot spends strictly
        // less time frozen.
        const bool improved = pro.p95_owd_ms < re.p95_owd_ms &&
                              pro.stall_ms_per_run <= re.stall_ms_per_run;
        if (improved) ++urban_improved;
        std::cout << "urban/" << pipeline::cc_name(cc) << ": p95 OWD "
                  << metrics::TextTable::num(re.p95_owd_ms, 1) << " -> "
                  << metrics::TextTable::num(pro.p95_owd_ms, 1)
                  << " ms, stall time "
                  << metrics::TextTable::num(re.stall_ms_per_run / 1000.0, 2)
                  << " -> "
                  << metrics::TextTable::num(pro.stall_ms_per_run / 1000.0, 2)
                  << " s/run "
                  << (improved ? "(improved)" : "(NOT improved)") << "\n";
      }
    }
  }

  std::cout << "\n" << table.render();
  std::cout << "\nExpected shape: the predictor arms before the A3 trigger "
               "(positive lead time, high recall), the pre-HO dip keeps the "
               "deep uplink queue shallow through the HET window, and the "
               "post-HO flush drops stale backlog — so the proactive arm "
               "cuts the HO-driven tail of one-way delay and the total time "
               "the pilot's view is frozen, most visibly in the HO-dense "
               "urban environment. (The per-event stall mean can move the "
               "other way: proactive removes the short queue-pressure stalls "
               "outright, leaving only the irreducible HET gaps.)\n";
  const bool pass = urban_improved >= 2;
  std::cout << (pass ? "VERDICT: proactive adaptation improves at least two "
                       "of three urban CC workloads.\n"
                     : "VERDICT: regression — proactive adaptation improved "
                       "fewer than two urban CC workloads.\n");
  return pass ? 0 : 1;
}
