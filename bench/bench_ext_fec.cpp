// Extension (paper Section 5 / reference [9]): XOR forward error correction
// on the media stream. One parity packet per group lets the receiver rebuild
// a single lost packet, converting loss-burst artifacts into clean frames at
// a fixed rate overhead of 1/group.
#include "bench_common.hpp"

#include "experiment/scenario.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Extension — XOR FEC on the video stream",
                      "IMC'22 Section 5 / reference [9]");

  metrics::TextTable table{{"FEC", "method", "path", "SSIM>=0.5 (%)",
                            "SSIM med", "corrupted frames/run",
                            "goodput med (Mbps)", "FEC rec/run"}};

  // The bonded arm routes the same stream through the rpv::bond LinkManager
  // (high-reliability policy over the operator pair), where the adaptive FEC
  // controller re-bases its parity ladder on the configured group size.
  for (const auto multipath : {experiment::Multipath::kNone,
                               experiment::Multipath::kBondHighReliability}) {
    const bool bonded = multipath != experiment::Multipath::kNone;
    for (const int group : {0, 10, 5}) {
      for (const auto cc : {pipeline::CcKind::kStatic, pipeline::CcKind::kGcc}) {
        if (bonded && cc != pipeline::CcKind::kStatic) continue;
        std::vector<experiment::Scenario> scenarios;
        for (std::uint64_t k = 0;
             k < static_cast<std::uint64_t>(bench::runs_or(4)); ++k) {
          experiment::Scenario s;
          s.env = experiment::Environment::kUrban;  // the lossy environment
          s.cc = cc;
          s.seed = bench::seed_or(9000) + k;
          s.fec_group_size = group;
          s.multipath = multipath;
          scenarios.push_back(s);
        }
        const auto rs = bench::run_scenarios(scenarios);
        const auto ssim = experiment::pool_ssim(rs);
        const auto goodput = experiment::pool_goodput(rs);
        double corrupted = 0.0, recovered = 0.0;
        for (const auto& r : rs) {
          corrupted += static_cast<double>(r.frames_corrupted);
          recovered += static_cast<double>(r.bond_fec_recovered);
        }
        corrupted /= static_cast<double>(rs.size());
        recovered /= static_cast<double>(rs.size());
        table.add_row(
            {group == 0 ? "off" : ("1/" + std::to_string(group)),
             pipeline::cc_name(cc), bonded ? "bond-hr" : "single",
             metrics::TextTable::num(100.0 * ssim.fraction_at_least(0.5), 2),
             metrics::TextTable::num(ssim.median(), 3),
             metrics::TextTable::num(corrupted, 0),
             metrics::TextTable::num(goodput.median(), 1),
             bonded ? metrics::TextTable::num(recovered, 0) : "-"});
      }
    }
  }

  std::cout << "\n" << table.render();
  std::cout << "\nExpected shape: FEC repairs most single-packet losses, "
               "cutting corrupted frames and the SSIM<0.5 tail; the static "
               "stream (largest loss exposure) benefits most. The cost is "
               "the parity overhead riding on the same bearer.\n";
  return 0;
}
