// Figure 10: competing operators in the rural region — (a) achievable
// throughput and (b) HO frequency for the default operator P1 vs the denser
// competitor P2. Paper: P2 offers more capacity but also more handovers.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Figure 10 — rural operators P1 vs P2",
                      "IMC'22 Fig. 10(a)/(b), Section 5");

  auto tp_table = bench::summary_table("throughput (Mbps)");
  auto ho_table = bench::summary_table("HO frequency (HO/s)");

  for (const auto env :
       {experiment::Environment::kRuralP1, experiment::Environment::kRuralP2}) {
    const std::string op =
        env == experiment::Environment::kRuralP1 ? "P1" : "P2";
    // Throughput: what SCReAM (the best rural utilizer) extracts.
    const auto video = experiment::run_campaign(
        bench::video_campaign(env, pipeline::CcKind::kScream, 5));
    bench::add_summary_row(tp_table, op + " (rural)",
                           experiment::pool_goodput(video).samples());
    // HO frequency from dedicated probe flights.
    const auto probes = experiment::run_campaign(
        bench::probe_campaign(env, experiment::Mobility::kAir, 8));
    bench::add_summary_row(ho_table, op + " air",
                           experiment::pool_ho_frequency(probes), 3);
  }

  std::cout << "\n(a) Achievable throughput\n" << tp_table.render();
  std::cout << "\n(b) HO frequency in the air\n" << ho_table.render();
  std::cout << "\nPaper shape: P2's denser rural deployment gives higher "
               "throughput and more frequent handovers than P1.\n";
  return 0;
}
