// Extension: the command-and-control side of the RP scenario (Fig. 1).
// Related work the paper discusses ([34], [51], [61]) consistently finds
// control-signal latency far below video latency — control packets are tiny
// and (downlink) bypass the video-bloated uplink queue, while telemetry
// shares the uplink with the video stream.
#include "bench_common.hpp"

#include "experiment/scenario.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Extension — command/telemetry vs video latency",
                      "IMC'22 Fig. 1 scenario; related work [34][51][61]");

  metrics::TextTable table{{"flow", "with video?", "path", "median (ms)",
                            "p95 (ms)", "p99 (ms)", "P(<100ms) %"}};

  // Single-path arms reproduce the related-work finding; the bonded arm
  // routes C2 through the rpv::bond LinkManager (high-reliability policy
  // duplicates every command across the operator pair) under an RLF storm,
  // where the second copy is what keeps the control channel responsive.
  struct ArmConfig {
    bool with_video;
    experiment::Multipath multipath;
  };
  for (const auto& arm :
       {ArmConfig{true, experiment::Multipath::kNone},
        ArmConfig{false, experiment::Multipath::kNone},
        ArmConfig{true, experiment::Multipath::kBondHighReliability}}) {
    const bool bonded = arm.multipath != experiment::Multipath::kNone;
    metrics::Cdf command, telemetry, video_owd;
    std::vector<experiment::Scenario> scenarios;
    for (std::uint64_t k = 0; k < static_cast<std::uint64_t>(bench::runs_or(4));
         ++k) {
      experiment::Scenario s;
      s.env = experiment::Environment::kUrban;
      s.cc = arm.with_video ? pipeline::CcKind::kStatic : pipeline::CcKind::kNone;
      s.c2 = true;
      s.multipath = arm.multipath;
      if (bonded) s.fault_preset = experiment::FaultPreset::kRlfStorm;
      s.seed = bench::seed_or(11000) + k;
      scenarios.push_back(s);
    }
    for (const auto& r : bench::run_scenarios(scenarios)) {
      command.add_all(r.command_latency_ms);
      telemetry.add_all(r.telemetry_latency_ms);
      video_owd.add_all(r.owd_ms);
    }
    const std::string path = bonded ? "bond-hr" : "single";
    auto add = [&](const std::string& name, const metrics::Cdf& c) {
      if (c.empty()) return;
      table.add_row({name, arm.with_video ? "yes" : "no", path,
                     metrics::TextTable::num(c.median(), 1),
                     metrics::TextTable::num(c.quantile(0.95), 1),
                     metrics::TextTable::num(c.quantile(0.99), 1),
                     metrics::TextTable::num(100.0 * c.fraction_below(100.0), 1)});
    };
    add("command (DL)", command);
    add("telemetry (UL)", telemetry);
    if (arm.with_video) add("video (UL)", video_owd);
  }

  std::cout << "\n" << table.render();
  std::cout << "\nExpected shape: commands stay fast (tiny, downlink); "
               "telemetry inherits the video stream's uplink queueing — the "
               "related-work finding that video latency is far worse than "
               "control latency.\n";
  return 0;
}
