// Figure 4: handover performance in the air vs on the ground.
//  (a) HO frequency (HO/s) — air roughly an order of magnitude above ground,
//      urban above rural;
//  (b) HET distribution — bulk below the 49.5 ms 3GPP threshold, heavy
//      outlier tail in the air reaching seconds.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Figure 4 — HO frequency and HET, air vs ground",
                      "IMC'22 Fig. 4(a)/(b), Section 4.1");

  struct Row {
    experiment::Environment env;
    experiment::Mobility mobility;
  };
  const std::vector<Row> rows = {
      {experiment::Environment::kUrban, experiment::Mobility::kAir},
      {experiment::Environment::kUrban, experiment::Mobility::kGround},
      {experiment::Environment::kRuralP1, experiment::Mobility::kAir},
      {experiment::Environment::kRuralP1, experiment::Mobility::kGround},
  };

  metrics::TextTable freq_ci{{"scenario", "HO/s mean [95% CI]"}};
  auto freq_table = bench::summary_table("HO frequency (HO/s)");
  auto het_table = bench::summary_table("HET (ms)");
  metrics::TextTable het_extra{
      {"scenario", "HET<=49.5ms (%)", "outliers>100ms", "outliers>500ms", "max (ms)"}};

  for (const auto& row : rows) {
    const auto label = experiment::environment_name(row.env) + " " +
                       experiment::mobility_name(row.mobility);
    const auto reports =
        experiment::run_campaign(bench::probe_campaign(row.env, row.mobility, 8));
    const auto freqs = experiment::pool_ho_frequency(reports);
    bench::add_summary_row(freq_table, label, freqs, 3);
    freq_ci.add_row({label, bench::mean_with_ci(freqs, 3)});
    const auto het = experiment::pool_het(reports);
    bench::add_summary_row(het_table, label, het, 1);

    int ok = 0, over100 = 0, over500 = 0;
    double max_ms = 0.0;
    for (const double h : het) {
      if (h <= 49.5) ++ok;
      if (h > 100.0) ++over100;
      if (h > 500.0) ++over500;
      max_ms = std::max(max_ms, h);
    }
    het_extra.add_row(
        {label,
         metrics::TextTable::num(het.empty() ? 0.0 : 100.0 * ok / het.size(), 1),
         std::to_string(over100), std::to_string(over500),
         metrics::TextTable::num(max_ms, 0)});
  }

  std::cout << "\n(a) Handover frequency\n" << freq_table.render();
  std::cout << "\n(a) Per-run means with bootstrap confidence\n" << freq_ci.render();
  std::cout << "\n(b) Handover execution time\n" << het_table.render();
  std::cout << "\n(b) HET threshold compliance (3GPP success: <= 49.5 ms)\n"
            << het_extra.render();
  std::cout << "\nPaper shape: air HO frequency ~an order of magnitude above "
               "ground; urban > rural; HET bulk < 49.5 ms with air outliers "
               "up to ~4 s.\n";
  return 0;
}
