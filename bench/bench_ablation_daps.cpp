// Ablation (paper Section 5): the Dual Active Protocol Stack (DAPS)
// make-before-break handover of 3GPP Release 16. The paper argues DAPS
// "could remove the observed latency spikes" by avoiding the bearer
// interruption; this bench toggles it and measures the around-HO latency
// ratios of Fig. 9 plus the end-to-end latency tail.
#include "bench_common.hpp"

#include "exec/thread_pool.hpp"
#include "experiment/scenario.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Ablation — break-before-make vs DAPS handover",
                      "IMC'22 Section 5 (HO mitigation discussion)");

  metrics::TextTable table{{"handover", "ratio before HO (mean)",
                            "ratio after HO (mean)", "OWD p99 (ms)",
                            "latency<300ms (%)", "stalls/min"}};

  for (const bool daps : {false, true}) {
    // Custom per-run session config (DAPS toggle): shard runs through the
    // exec pool directly instead of via a Campaign.
    std::vector<pipeline::SessionReport> rs(
        static_cast<std::size_t>(bench::runs_or(5)));
    exec::parallel_for_index(rs.size(), bench::options().jobs,
                             [&](std::size_t k) {
      experiment::Scenario s;
      s.env = experiment::Environment::kUrban;
      s.cc = pipeline::CcKind::kGcc;
      s.seed = bench::seed_or(7000) + k;
      auto cfg = experiment::make_session_config(s);
      cfg.link.handover.make_before_break = daps;
      sim::Rng rng{s.seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
      auto layout = experiment::make_layout(s, rng);
      auto traj = experiment::make_trajectory(s, rng);
      pipeline::Session session{cfg, std::move(layout), &traj, "urban-daps"};
      rs[k] = session.run();
    });
    const auto before = experiment::pool_latency_ratio_before(rs);
    const auto after = experiment::pool_latency_ratio_after(rs);
    const auto owd = experiment::pool_owd(rs);
    const auto latency = experiment::pool_playback_latency(rs);
    const auto b = metrics::Summary::of(before);
    const auto a = metrics::Summary::of(after);
    table.add_row({daps ? "DAPS (make-before-break)" : "break-before-make",
                   metrics::TextTable::num(b.mean, 2),
                   metrics::TextTable::num(a.mean, 2),
                   metrics::TextTable::num(owd.quantile(0.99), 0),
                   metrics::TextTable::num(100.0 * latency.fraction_below(300.0), 1),
                   metrics::TextTable::num(
                       experiment::mean_stalls_per_minute(rs), 2)});
  }

  std::cout << "\n" << table.render();
  std::cout << "\nExpected shape: DAPS removes the execution-time interruption "
               "so the after-HO ratio and the OWD tail shrink; the pre-HO "
               "cell-edge degradation remains (it precedes the trigger).\n";
  return 0;
}
