// Extension (paper Section 5): LTE vs a 5G stand-alone deployment. The
// paper cites measurements ([43], [44], [49]) showing the around-HO latency
// spikes are largely absent in 5G SA, and defers its own 5G campaign to
// future work; this bench runs that comparison on the simulator.
#include "bench_common.hpp"

#include "experiment/scenario.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Extension — LTE vs 5G stand-alone",
                      "IMC'22 Section 5 (future-work outlook)");

  metrics::TextTable table{{"tech", "method", "goodput med (Mbps)",
                            "OWD med (ms)", "OWD p99 (ms)",
                            "latency<300ms (%)", "stalls/min"}};

  for (const auto tech : {experiment::AccessTech::kLte,
                          experiment::AccessTech::k5gSa}) {
    for (const auto cc : {pipeline::CcKind::kStatic, pipeline::CcKind::kGcc}) {
      std::vector<experiment::Scenario> scenarios;
      for (std::uint64_t k = 0;
           k < static_cast<std::uint64_t>(bench::runs_or(4)); ++k) {
        experiment::Scenario s;
        s.env = experiment::Environment::kUrban;
        s.cc = cc;
        s.tech = tech;
        s.seed = bench::seed_or(13000) + k;
        scenarios.push_back(s);
      }
      const auto rs = bench::run_scenarios(scenarios);
      const auto goodput = experiment::pool_goodput(rs);
      const auto owd = experiment::pool_owd(rs);
      const auto latency = experiment::pool_playback_latency(rs);
      table.add_row(
          {tech == experiment::AccessTech::kLte ? "LTE" : "5G-SA",
           pipeline::cc_name(cc), metrics::TextTable::num(goodput.median(), 1),
           metrics::TextTable::num(owd.median(), 1),
           metrics::TextTable::num(owd.quantile(0.99), 0),
           metrics::TextTable::num(100.0 * latency.fraction_below(300.0), 1),
           metrics::TextTable::num(experiment::mean_stalls_per_minute(rs), 2)});
    }
  }

  std::cout << "\n" << table.render();
  std::cout << "\nExpected shape: 5G-SA's make-before-break mobility and "
               "shorter access latency remove the HO spikes — a shorter OWD "
               "tail and near-universal sub-300 ms playback.\n";
  return 0;
}
