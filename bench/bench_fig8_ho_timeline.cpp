// Figure 8: timeline of one GCC flight — network latency, playback latency,
// packet losses, and handover instants. The paper shows network-latency
// spikes starting ~0.5 s before each handover, with playback latency
// following whenever the network latency exceeds the 150 ms jitter buffer.
#include "bench_common.hpp"

#include "experiment/scenario.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Figure 8 — HO / latency timeline of one GCC flight",
                      "IMC'22 Fig. 8(a)/(b), Section 4.2.2");

  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.cc = pipeline::CcKind::kGcc;
  s.seed = bench::seed_or(4242);
  const auto r = experiment::run_scenario(s);

  // 1-second resolution timeline rows.
  std::cout << "\ntime(s)\tnet_lat_ms\tplay_lat_ms\thandover\tlosses\n";
  const auto end = r.duration;
  for (double t = 0.0; t < end.sec(); t += 1.0) {
    const auto from = sim::TimePoint::origin() + sim::Duration::seconds(t);
    const auto to = from + sim::Duration::seconds(1.0);
    const auto net = r.owd_trace_ms.mean_in(from, to);
    const auto play = r.playback_latency_trace_ms.mean_in(from, to);
    int hos = 0;
    for (const auto& ev : r.handovers.events()) {
      if (ev.start >= from && ev.start < to) ++hos;
    }
    int losses = 0;
    for (const auto& lt : r.loss_times) {
      if (lt >= from && lt < to) ++losses;
    }
    std::cout << metrics::TextTable::num(t, 0) << "\t"
              << metrics::TextTable::num(net.value_or(0.0), 1) << "\t"
              << metrics::TextTable::num(play.value_or(0.0), 1) << "\t" << hos
              << "\t" << losses << "\n";
  }

  // Quantify the pre-HO spike the zoomed panel (a) shows.
  int spiking = 0;
  for (const auto& ev : r.handovers.events()) {
    const auto before = r.owd_trace_ms.max_in(ev.start - sim::Duration::seconds(1.0),
                                              ev.start);
    const auto baseline = r.owd_trace_ms.min_in(
        ev.start - sim::Duration::seconds(3.0), ev.start - sim::Duration::seconds(1.0));
    if (before && baseline && *before > 2.0 * *baseline) ++spiking;
  }
  std::cout << "\nHandovers preceded by a >2x network-latency spike: " << spiking
            << "/" << r.handovers.count() << "\n";
  std::cout << "Paper shape: spikes begin ~0.5 s before HOs and last ~1 s; "
               "playback latency rises when network latency exceeds the "
               "150 ms jitter buffer.\n";
  return 0;
}
