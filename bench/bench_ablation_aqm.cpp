// Ablation (paper Section 5): smart queue management in the cellular
// uplink. The paper attributes the large latency spikes to operator
// bufferbloat and points at AQM as a mitigation; this bench enables a
// CoDel-style AQM on the deep uplink buffer and measures its effect on
// latency and on the static stream's loss exposure.
#include "bench_common.hpp"

#include "exec/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Ablation — CoDel-style AQM on the uplink buffer",
                      "IMC'22 Section 5 (bufferbloat discussion)");

  metrics::TextTable table{{"queue", "method", "OWD med (ms)", "OWD p99 (ms)",
                            "latency<300ms (%)", "PER (%)", "goodput (Mbps)"}};

  for (const bool aqm : {false, true}) {
    for (const auto cc : {pipeline::CcKind::kStatic, pipeline::CcKind::kGcc}) {
      // Custom per-run session config (AQM toggle), so this arm shards runs
      // through the exec pool directly instead of via a Campaign.
      std::vector<pipeline::SessionReport> rs(
          static_cast<std::size_t>(bench::runs_or(4)));
      exec::parallel_for_index(rs.size(), bench::options().jobs,
                               [&](std::size_t k) {
        experiment::Scenario s;
        s.env = experiment::Environment::kUrban;
        s.cc = cc;
        s.seed = bench::seed_or(5000) + k;
        auto cfg = experiment::make_session_config(s);
        cfg.link.queue.aqm_enabled = aqm;
        sim::Rng rng{s.seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
        auto layout = experiment::make_layout(s, rng);
        auto traj = experiment::make_trajectory(s, rng);
        pipeline::Session session{cfg, std::move(layout), &traj, "urban-aqm"};
        rs[k] = session.run();
      });
      const auto owd = experiment::pool_owd(rs);
      const auto latency = experiment::pool_playback_latency(rs);
      const auto goodput = experiment::pool_goodput(rs);
      table.add_row(
          {aqm ? "CoDel" : "deep FIFO", pipeline::cc_name(cc),
           metrics::TextTable::num(owd.median(), 1),
           metrics::TextTable::num(owd.quantile(0.99), 0),
           metrics::TextTable::num(100.0 * latency.fraction_below(300.0), 1),
           metrics::TextTable::num(100.0 * experiment::mean_per(rs), 3),
           metrics::TextTable::num(goodput.median(), 1)});
    }
  }

  std::cout << "\n" << table.render();
  std::cout << "\nExpected shape: AQM shortens the OWD tail (late arrivals "
               "become drops that the CC reacts to), trading a higher PER — "
               "hardest on the non-adaptive static stream.\n";
  return 0;
}
