// Ablation (Appendix A.4): the proposed drop-on-latency jitter-buffer
// strategy — always show the pilot the newest frame instead of stretching
// playback. Compares playback-latency quantiles, stalls, and frame drops.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Ablation — rtpjitterbuffer drop-on-latency (A.4)",
                      "IMC'22 Appendix A.4");

  metrics::TextTable table{{"mode", "method", "latency med (ms)", "p95 (ms)",
                            "latency<300ms (%)", "frames played/run",
                            "stalls/min"}};

  for (const bool drop : {false, true}) {
    for (const auto cc : {pipeline::CcKind::kGcc, pipeline::CcKind::kScream}) {
      auto campaign =
          bench::video_campaign(experiment::Environment::kUrban, cc, 5);
      campaign.scenario.drop_on_latency = drop;
      const auto reports = experiment::run_campaign(campaign);
      const auto latency = experiment::pool_playback_latency(reports);
      double played = 0.0;
      for (const auto& r : reports) played += static_cast<double>(r.frames_played);
      played /= static_cast<double>(reports.size());
      table.add_row(
          {drop ? "drop-on-latency" : "default", pipeline::cc_name(cc),
           metrics::TextTable::num(latency.median(), 0),
           metrics::TextTable::num(latency.quantile(0.95), 0),
           metrics::TextTable::num(100.0 * latency.fraction_below(300.0), 1),
           metrics::TextTable::num(played, 0),
           metrics::TextTable::num(experiment::mean_stalls_per_minute(reports), 2)});
    }
  }

  std::cout << "\n" << table.render();
  std::cout << "\nExpected shape: drop-on-latency trades dropped frames for a "
               "faster return to baseline latency after spikes — the paper "
               "proposes it so the pilot always sees the newest picture.\n";
  return 0;
}
