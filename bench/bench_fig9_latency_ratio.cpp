// Figure 9: maximum-to-minimum one-way-latency ratio in the 1-second windows
// before and after each aerial handover. Paper: ~8x on average before, ~5x
// after, with outliers up to 37x before.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Figure 9 — latency ratio around aerial handovers",
                      "IMC'22 Fig. 9, Section 4.2.2");

  std::vector<double> before, after;
  for (const auto env :
       {experiment::Environment::kUrban, experiment::Environment::kRuralP1}) {
    for (const auto cc : {pipeline::CcKind::kStatic, pipeline::CcKind::kGcc,
                          pipeline::CcKind::kScream}) {
      const auto reports =
          experiment::run_campaign(bench::video_campaign(env, cc, 4));
      const auto b = experiment::pool_latency_ratio_before(reports);
      const auto a = experiment::pool_latency_ratio_after(reports);
      before.insert(before.end(), b.begin(), b.end());
      after.insert(after.end(), a.begin(), a.end());
    }
  }

  auto table = bench::summary_table("latency ratio (max/min)");
  bench::add_summary_row(table, "Before HO", before);
  bench::add_summary_row(table, "After HO", after);
  std::cout << "\n" << table.render();

  const auto b_sum = metrics::Summary::of(before);
  const auto a_sum = metrics::Summary::of(after);
  std::cout << "\nmean before / mean after = "
            << metrics::TextTable::num(b_sum.mean / std::max(a_sum.mean, 1e-9), 2)
            << "\n";
  std::cout << "Paper shape: before-HO ratio ~8x mean (outliers to 37x), "
               "after-HO ~5x mean — the spike precedes the handover.\n";
  return 0;
}
