// Figure 13 (Appendix): ICMP-style RTT measured at different altitude bands
// without cross traffic, urban and rural. Paper: no clear trend below 100 m;
// above that the proportion of high-RTT outliers increases.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Figure 13 — RTT by altitude band (no cross traffic)",
                      "IMC'22 Fig. 13(a)/(b), Appendix A.2");

  const std::vector<std::pair<double, double>> bands = {
      {0.0, 20.0}, {21.0, 60.0}, {61.0, 100.0}, {101.0, 140.0}};

  for (const auto env :
       {experiment::Environment::kUrban, experiment::Environment::kRuralP1}) {
    const auto reports = experiment::run_campaign(
        bench::probe_campaign(env, experiment::Mobility::kAir, 8));
    std::cout << "\n--- " << experiment::environment_name(env) << " ---\n";
    metrics::TextTable table{{"altitude band (m)", "n", "median (ms)",
                              "p95 (ms)", "p99 (ms)", "P(>100ms) %",
                              "P(>500ms) %"}};
    for (const auto& [lo, hi] : bands) {
      const auto rtt = experiment::pool_rtt_in_band(reports, lo, hi);
      table.add_row(
          {metrics::TextTable::num(lo, 0) + "-" + metrics::TextTable::num(hi, 0),
           std::to_string(rtt.count()), metrics::TextTable::num(rtt.median(), 1),
           metrics::TextTable::num(rtt.quantile(0.95), 1),
           metrics::TextTable::num(rtt.quantile(0.99), 1),
           metrics::TextTable::num(100.0 * (1.0 - rtt.fraction_below(100.0)), 2),
           metrics::TextTable::num(100.0 * (1.0 - rtt.fraction_below(500.0)), 2)});
    }
    std::cout << table.render();
  }

  std::cout << "\nPaper shape: medians stable across bands (min RTT ~35-45 ms); "
               "the 101-140 m band shows a clearly larger high-RTT outlier "
               "proportion.\n";
  return 0;
}
