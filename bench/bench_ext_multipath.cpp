// Extension (paper Section 5): multipath transport over two operators.
// The paper motivates multipath (MPTCP/MP-QUIC style, or redundant duplication
// as in its reference [9]) to mask single-operator outages; this bench
// compares single-link rural delivery (P1) against duplicated delivery over
// P1+P2 for every method.
#include "bench_common.hpp"

#include "exec/thread_pool.hpp"
#include "experiment/scenario.hpp"
#include "pipeline/multipath_session.hpp"
#include <string>

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Extension — multipath (P1+P2) vs single path (P1)",
                      "IMC'22 Section 5 discussion; reference [9]");

  metrics::TextTable table{{"method", "path", "latency<300ms (%)",
                            "OWD p99 (ms)", "stalls/min", "SSIM>=0.5 (%)",
                            "PER (%)"}};

  for (const auto cc : {pipeline::CcKind::kStatic, pipeline::CcKind::kGcc}) {
    const auto runs = static_cast<std::size_t>(bench::runs_or(4));
    const std::uint64_t seed0 = bench::seed_or(3000);

    std::vector<experiment::Scenario> scenarios;
    for (std::uint64_t k = 0; k < runs; ++k) {
      experiment::Scenario s;
      s.env = experiment::Environment::kRuralP1;
      s.cc = cc;
      s.seed = seed0 + k;
      scenarios.push_back(s);
    }
    const auto single = bench::run_scenarios(scenarios);

    // The multipath arms wire two layouts into one MultipathSession, which a
    // Campaign cannot express; shard (run, mode) pairs across the pool.
    std::vector<pipeline::SessionReport> dup(runs), sched(runs);
    exec::parallel_for_index(runs * 2, bench::options().jobs,
                             [&](std::size_t task) {
      const std::size_t k = task / 2;
      const auto mode = task % 2 == 0 ? pipeline::MultipathMode::kDuplicate
                                      : pipeline::MultipathMode::kScheduled;
      const experiment::Scenario& s = scenarios[k];
      sim::Rng rng{s.seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
      auto layout_a = experiment::make_layout(s, rng);
      experiment::Scenario s2 = s;
      s2.env = experiment::Environment::kRuralP2;
      auto layout_b = experiment::make_layout(s2, rng);
      auto traj = experiment::make_trajectory(s, rng);
      auto cfg = experiment::make_session_config(s);
      pipeline::MultipathSession mp{cfg,  std::move(layout_a),
                                    std::move(layout_b), &traj,
                                    "rural-mp", mode};
      (mode == pipeline::MultipathMode::kDuplicate ? dup : sched)[k] = mp.run();
    });

    for (const auto* label :
         {"single(P1)", "duplicate(P1+P2)", "scheduled(P1+P2)"}) {
      const std::string l = label;
      const auto& rs = l == "single(P1)" ? single
                       : l == "duplicate(P1+P2)" ? dup
                                                 : sched;
      const auto latency = experiment::pool_playback_latency(rs);
      const auto owd = experiment::pool_owd(rs);
      const auto ssim = experiment::pool_ssim(rs);
      table.add_row(
          {pipeline::cc_name(cc), label,
           metrics::TextTable::num(100.0 * latency.fraction_below(300.0), 1),
           metrics::TextTable::num(owd.quantile(0.99), 0),
           metrics::TextTable::num(experiment::mean_stalls_per_minute(rs), 2),
           metrics::TextTable::num(100.0 * ssim.fraction_at_least(0.5), 2),
           metrics::TextTable::num(100.0 * experiment::mean_per(rs), 3)});
    }
  }

  std::cout << "\n" << table.render();
  std::cout << "\nExpected shape: duplication over uncorrelated operators "
               "masks per-operator outages — fewer stalls, a shorter OWD "
               "tail, and near-zero effective loss (paper ref [9] reports up "
               "to 33% video-quality improvement from link diversity).\n";
  return 0;
}
