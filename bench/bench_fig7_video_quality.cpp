// Figure 7: adaptive video delivery performance in urban and rural tests —
// (a) FPS CDF, (b) SSIM CDF, (c) playback latency CDF, per delivery method.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header(
      "Figure 7 — FPS, SSIM and playback-latency CDFs per method",
      "IMC'22 Fig. 7(a)-(c), Sections 4.2.1-4.2.3");

  const std::vector<double> fps_xs = {1, 5, 10, 15, 20, 25, 29, 30, 33};
  const std::vector<double> ssim_xs = {0.1, 0.25, 0.5, 0.7, 0.8, 0.9, 0.95};
  const std::vector<double> lat_xs = {150, 200, 250, 300, 400, 600, 800, 1000};

  metrics::TextTable headline{{"scenario", "30FPS time (%)", "FPS<10 (%)",
                               "SSIM>=0.5 (%)", "SSIM>=0.9 (%)",
                               "latency<300ms (%)", "stalls/min"}};

  for (const auto env :
       {experiment::Environment::kUrban, experiment::Environment::kRuralP1}) {
    for (const auto cc : {pipeline::CcKind::kStatic, pipeline::CcKind::kScream,
                          pipeline::CcKind::kGcc}) {
      const auto label =
          pipeline::cc_name(cc) + " - " + experiment::environment_name(env);
      const auto reports =
          experiment::run_campaign(bench::video_campaign(env, cc, 5));

      const auto fps = experiment::pool_fps(reports);
      const auto ssim = experiment::pool_ssim(reports);
      const auto latency = experiment::pool_playback_latency(reports);

      bench::print_cdf_rows(label + " / FPS", fps, fps_xs, "frames per second");
      bench::print_cdf_rows(label + " / SSIM", ssim, ssim_xs, "SSIM");
      bench::print_cdf_rows(label + " / playback latency", latency, lat_xs,
                            "latency (ms)");

      headline.add_row(
          {label,
           metrics::TextTable::num(100.0 * fps.fraction_at_least(29.0), 1),
           metrics::TextTable::num(100.0 * fps.fraction_below(9.99), 2),
           metrics::TextTable::num(100.0 * ssim.fraction_at_least(0.5), 2),
           metrics::TextTable::num(100.0 * ssim.fraction_at_least(0.9), 1),
           metrics::TextTable::num(100.0 * latency.fraction_below(300.0), 1),
           metrics::TextTable::num(experiment::mean_stalls_per_minute(reports), 2)});
    }
  }

  std::cout << "\n" << headline.render();
  std::cout << "\nPaper shape: CCs hold 30 FPS ~90% urban but dip below 10 FPS "
               "(GCC ~3%, SCReAM ~1.5%) more than static; SSIM >= 0.5 between "
               "80.91% and 99.63% (SCReAM minimizes outliers, static urban "
               "worst); playback < 300 ms — urban: GCC/static ~90%, SCReAM "
               "~38%; rural: SCReAM ~85%, GCC lowest.\n";
  return 0;
}
