// Shared helpers for the figure-reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation: it runs the relevant measurement campaign on the simulator and
// prints the same rows/series the paper plots, so shapes can be compared
// side by side (see EXPERIMENTS.md for the paper-vs-measured record).
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "metrics/bootstrap.hpp"
#include "metrics/summary.hpp"
#include "metrics/text_table.hpp"

namespace rpv::bench {

inline constexpr int kDefaultRuns = 5;

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Paper reference: " << paper_ref << "\n"
            << "==============================================================\n";
}

// Boxplot-style row for a sample set.
inline void add_summary_row(metrics::TextTable& table, const std::string& label,
                            const std::vector<double>& samples, int precision = 2) {
  const auto s = metrics::Summary::of(samples);
  table.add_row({label, std::to_string(s.n), metrics::TextTable::num(s.min, precision),
                 metrics::TextTable::num(s.q1, precision),
                 metrics::TextTable::num(s.median, precision),
                 metrics::TextTable::num(s.q3, precision),
                 metrics::TextTable::num(s.max, precision),
                 metrics::TextTable::num(s.mean, precision),
                 std::to_string(s.outliers_hi)});
}

// "mean [lo, hi]" with a 95% bootstrap CI over the samples.
inline std::string mean_with_ci(const std::vector<double>& samples,
                                int precision = 2) {
  const auto ci = metrics::bootstrap_mean_ci(samples);
  return metrics::TextTable::num(ci.mean, precision) + " [" +
         metrics::TextTable::num(ci.lo, precision) + ", " +
         metrics::TextTable::num(ci.hi, precision) + "]";
}

inline metrics::TextTable summary_table(const std::string& value_name) {
  return metrics::TextTable{
      {value_name, "n", "min", "q1", "median", "q3", "max", "mean", "outliers"}};
}

// CDF series printed at fixed evaluation points.
inline void print_cdf_rows(const std::string& label, const metrics::Cdf& cdf,
                           const std::vector<double>& xs,
                           const std::string& x_name) {
  std::cout << "\n[" << label << "]  (" << x_name << " -> CDF)\n";
  for (const double x : xs) {
    std::cout << "  " << metrics::TextTable::num(x, 1) << "\t"
              << metrics::TextTable::num(cdf.fraction_below(x), 4) << "\n";
  }
}

inline experiment::Campaign video_campaign(experiment::Environment env,
                                           pipeline::CcKind cc,
                                           int runs = kDefaultRuns,
                                           std::uint64_t seed = 1000) {
  experiment::Campaign c;
  c.scenario.env = env;
  c.scenario.cc = cc;
  c.scenario.mobility = experiment::Mobility::kAir;
  c.scenario.seed = seed;
  c.runs = runs;
  return c;
}

inline experiment::Campaign probe_campaign(experiment::Environment env,
                                           experiment::Mobility mobility,
                                           int runs = kDefaultRuns,
                                           std::uint64_t seed = 2000) {
  experiment::Campaign c;
  c.scenario.env = env;
  c.scenario.mobility = mobility;
  c.scenario.cc = pipeline::CcKind::kNone;
  c.scenario.probe_interval = sim::Duration::millis(100);
  c.scenario.seed = seed;
  c.runs = runs;
  return c;
}

}  // namespace rpv::bench
