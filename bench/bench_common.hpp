// Shared helpers for the figure-reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation: it runs the relevant measurement campaign on the simulator and
// prints the same rows/series the paper plots, so shapes can be compared
// side by side (see EXPERIMENTS.md for the paper-vs-measured record).
#pragma once

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "exec/campaign_engine.hpp"
#include "experiment/runner.hpp"
#include "metrics/bootstrap.hpp"
#include "metrics/summary.hpp"
#include "metrics/text_table.hpp"
#include "sim/validate.hpp"

namespace rpv::bench {

// Fallback campaign size when a bench names no preference and the user
// passes no --runs (the seed repo hard-coded 5 everywhere).
inline constexpr int kFallbackRuns = 5;

// Shared CLI options: every bench binary accepts
//   --runs N   override the per-bench campaign size
//   --seed S   override the per-bench base seed
//   --jobs J   worker threads per campaign (0 = one per hardware thread)
struct Options {
  std::optional<int> runs;
  std::optional<std::uint64_t> seed;
  int jobs = 0;
};

inline Options& options() {
  static Options opts;
  return opts;
}

// Testable core of the CLI parser: consumes argv (minus the program name) and
// returns the parsed options, throwing std::invalid_argument via rpv::validate
// on malformed, unknown, or out-of-range flags. Negative counts and seeds are
// rejected here explicitly — std::stoull would otherwise wrap "--seed -5" to
// 18446744073709551611 and run a campaign nobody asked for.
[[nodiscard]] inline Options parse_options(const std::vector<std::string>& args) {
  Options opts;
  auto value_of = [&](std::size_t& i, const std::string& flag) -> std::string {
    validate(i + 1 < args.size(), flag + " needs a value");
    return args[++i];
  };
  auto to_i64 = [](const std::string& flag,
                   const std::string& text) -> std::int64_t {
    std::size_t used = 0;
    std::int64_t value = 0;
    try {
      value = std::stoll(text, &used);
    } catch (const std::exception&) {
      throw std::invalid_argument{"bad value for " + flag + ": '" + text + "'"};
    }
    validate(used == text.size() && !text.empty(),
             "bad value for " + flag + ": '" + text + "'");
    return value;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--runs") {
      const auto runs = to_i64(arg, value_of(i, arg));
      validate(runs > 0, "--runs must be > 0 (got " + std::to_string(runs) + ")");
      opts.runs = static_cast<int>(runs);
    } else if (arg == "--seed") {
      const auto seed = to_i64(arg, value_of(i, arg));
      validate(seed >= 0,
               "--seed must be >= 0 (got " + std::to_string(seed) + ")");
      opts.seed = static_cast<std::uint64_t>(seed);
    } else if (arg == "--jobs") {
      const auto jobs = to_i64(arg, value_of(i, arg));
      validate(jobs >= 0,
               "--jobs must be >= 0 (got " + std::to_string(jobs) +
                   "; 0 = one per hardware thread)");
      opts.jobs = static_cast<int>(jobs);
    } else {
      validate(false, "unknown argument: " + arg + " (try --help)");
    }
  }
  return opts;
}

inline void print_usage(const char* prog, std::ostream& out) {
  out << "usage: " << prog
      << " [--runs N] [--seed S] [--jobs J]\n"
         "  --runs N  campaign size per scenario cell (default: "
         "per-bench, usually 4-8)\n"
         "  --seed S  base seed (default: per-bench)\n"
         "  --jobs J  worker threads (default 0 = all hardware "
         "threads)\n";
}

inline void parse_args(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0], std::cout);
      std::exit(0);
    }
    args.push_back(arg);
  }
  try {
    options() = parse_options(args);
  } catch (const std::exception& e) {
    // A malformed or unknown flag gets the full usage text, not just the
    // one-line reason — the common failure is a typo'd flag name.
    std::cerr << e.what() << "\n";
    print_usage(argv[0], std::cerr);
    std::exit(2);
  }
}

// Per-bench defaults, overridable from the command line.
[[nodiscard]] inline int runs_or(int bench_default) {
  return options().runs.value_or(bench_default);
}
[[nodiscard]] inline std::uint64_t seed_or(std::uint64_t bench_default) {
  return options().seed.value_or(bench_default);
}

// Run a hand-built scenario list through the parallel campaign engine,
// honoring --jobs. Reports come back in input order.
[[nodiscard]] inline std::vector<pipeline::SessionReport> run_scenarios(
    const std::vector<experiment::Scenario>& scenarios) {
  const exec::CampaignEngine engine{{.jobs = options().jobs}};
  return engine.run_scenarios(scenarios);
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Paper reference: " << paper_ref << "\n"
            << "==============================================================\n";
}

// Boxplot-style row for a sample set.
inline void add_summary_row(metrics::TextTable& table, const std::string& label,
                            const std::vector<double>& samples, int precision = 2) {
  const auto s = metrics::Summary::of(samples);
  table.add_row({label, std::to_string(s.n), metrics::TextTable::num(s.min, precision),
                 metrics::TextTable::num(s.q1, precision),
                 metrics::TextTable::num(s.median, precision),
                 metrics::TextTable::num(s.q3, precision),
                 metrics::TextTable::num(s.max, precision),
                 metrics::TextTable::num(s.mean, precision),
                 std::to_string(s.outliers_hi)});
}

// "mean [lo, hi]" with a 95% bootstrap CI over the samples.
inline std::string mean_with_ci(const std::vector<double>& samples,
                                int precision = 2) {
  const auto ci = metrics::bootstrap_mean_ci(samples);
  return metrics::TextTable::num(ci.mean, precision) + " [" +
         metrics::TextTable::num(ci.lo, precision) + ", " +
         metrics::TextTable::num(ci.hi, precision) + "]";
}

inline metrics::TextTable summary_table(const std::string& value_name) {
  return metrics::TextTable{
      {value_name, "n", "min", "q1", "median", "q3", "max", "mean", "outliers"}};
}

// CDF series printed at fixed evaluation points.
inline void print_cdf_rows(const std::string& label, const metrics::Cdf& cdf,
                           const std::vector<double>& xs,
                           const std::string& x_name) {
  std::cout << "\n[" << label << "]  (" << x_name << " -> CDF)\n";
  for (const double x : xs) {
    std::cout << "  " << metrics::TextTable::num(x, 1) << "\t"
              << metrics::TextTable::num(cdf.fraction_below(x), 4) << "\n";
  }
}

inline experiment::Campaign video_campaign(experiment::Environment env,
                                           pipeline::CcKind cc,
                                           int runs = kFallbackRuns,
                                           std::uint64_t seed = 1000) {
  experiment::Campaign c;
  c.scenario.env = env;
  c.scenario.cc = cc;
  c.scenario.mobility = experiment::Mobility::kAir;
  c.scenario.seed = seed_or(seed);
  c.runs = runs_or(runs);
  c.jobs = options().jobs;
  return c;
}

inline experiment::Campaign probe_campaign(experiment::Environment env,
                                           experiment::Mobility mobility,
                                           int runs = kFallbackRuns,
                                           std::uint64_t seed = 2000) {
  experiment::Campaign c;
  c.scenario.env = env;
  c.scenario.mobility = mobility;
  c.scenario.cc = pipeline::CcKind::kNone;
  c.scenario.probe_interval = sim::Duration::millis(100);
  c.scenario.seed = seed_or(seed);
  c.runs = runs_or(runs);
  c.jobs = options().jobs;
  return c;
}

}  // namespace rpv::bench
