// Radio-map extension (rpv::radiomap + rpv::uav): connectivity memory and
// connectivity-aware flight planning.
//
// The paper's altitude study (§4.2.1) shows urban link quality degrades
// above ~80 m — packet loss rises and handover churn clusters in specific
// (x, y, altitude) regions. This bench builds a 3D radio map from warm-up
// survey sweeps of each environment, then flies the same missions four ways:
//
//   reactive        no prediction, no map (the paper's measured baseline)
//   proactive       HO predictor from the RSRP trend alone (PR 2 behavior)
//   proactive+map   the predictor additionally primed by map HO-risk ahead
//   planned         proactive+map plus the rpv::uav planner, which reroutes
//                   the mission (altitude caps / lateral shifts) to dodge
//                   high-stall voxels before take-off
//
// Reported per environment: total stall time per flight, stalls/min, p95
// OWD, and the predictor quality columns (precision, recall, mean lead
// time). Verdict (urban): planned cuts total stall vs reactive AND
// proactive, and the map prior raises mean lead time without reducing
// precision.
#include "bench_common.hpp"

#include <algorithm>
#include <memory>

#include "experiment/mapping.hpp"
#include "experiment/scenario.hpp"

namespace {

using namespace rpv;

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

struct ArmResult {
  double stall_ms_per_run = 0.0;  // mean total frozen time per flight
  double stalls_per_min = 0.0;
  double p95_owd_ms = 0.0;
  double goodput_mbps = 0.0;
  double precision = 1.0;
  double recall = 1.0;
  double mean_lead_ms = 0.0;
  std::uint64_t map_prior_arms = 0;
  std::uint64_t replans = 0;
  double deviation_m = 0.0;
};

ArmResult run_arm(experiment::Environment env, experiment::Policy policy,
                  std::shared_ptr<const radiomap::RadioMap> map,
                  const std::vector<std::uint64_t>& seeds) {
  std::vector<experiment::Scenario> scenarios;
  for (const auto seed : seeds) {
    experiment::Scenario s;
    s.env = env;
    s.mobility = experiment::Mobility::kAir;
    s.cc = pipeline::CcKind::kGcc;
    s.seed = seed;
    s.policy = policy;
    s.radio_map = map;
    scenarios.push_back(s);
  }

  ArmResult a;
  std::vector<double> owd_ms;
  std::vector<double> lead_ms;
  std::uint64_t tp = 0, fp = 0, missed = 0;
  for (const auto& r : bench::run_scenarios(scenarios)) {
    double stall_sum = 0.0;
    for (const double x : r.stall_duration_ms) stall_sum += x;
    a.stall_ms_per_run += stall_sum;
    owd_ms.insert(owd_ms.end(), r.owd_ms.begin(), r.owd_ms.end());
    lead_ms.insert(lead_ms.end(), r.prediction.ho_lead_time_ms.begin(),
                   r.prediction.ho_lead_time_ms.end());
    a.stalls_per_min += r.stalls_per_minute;
    a.goodput_mbps += r.avg_goodput_mbps;
    tp += r.prediction.ho_true_positives;
    fp += r.prediction.ho_false_positives;
    missed += r.prediction.ho_missed;
    a.map_prior_arms += r.prediction.map_prior_arms;
    if (r.plan_replanned) ++a.replans;
    a.deviation_m += r.plan_deviation_m;
  }
  const auto n = static_cast<double>(seeds.size());
  a.stall_ms_per_run /= n;
  a.stalls_per_min /= n;
  a.goodput_mbps /= n;
  a.deviation_m /= n;
  a.p95_owd_ms = percentile(owd_ms, 0.95);
  a.precision = (tp + fp) == 0
                    ? 1.0
                    : static_cast<double>(tp) / static_cast<double>(tp + fp);
  a.recall = (tp + missed) == 0
                 ? 1.0
                 : static_cast<double>(tp) / static_cast<double>(tp + missed);
  if (!lead_ms.empty()) {
    double sum = 0.0;
    for (const double x : lead_ms) sum += x;
    a.mean_lead_ms = sum / static_cast<double>(lead_ms.size());
  }
  return a;
}

std::string row_num(double v, int digits) {
  return metrics::TextTable::num(v, digits);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::print_header(
      "Extension — 3D radio-map memory & connectivity-aware flight planning",
      "IMC'22 §4.2.1 altitude study; 'A Vertical Look at UAV Connectivity' "
      "coverage maps");

  std::vector<std::uint64_t> seeds;
  for (std::uint64_t k = 0; k < static_cast<std::uint64_t>(bench::runs_or(3));
       ++k) {
    seeds.push_back(bench::seed_or(7301) + k * 7919);
  }

  const experiment::Environment envs[] = {experiment::Environment::kUrban,
                                          experiment::Environment::kRuralP1};

  metrics::TextTable table{{"env", "arm", "stall s/run", "stalls/min",
                            "p95 owd (ms)", "goodput (Mbps)", "prec", "recall",
                            "lead (ms)", "map arms", "replans", "dev (m)"}};

  bool planned_beats_both = false;
  bool lead_improves = false;
  bool precision_holds = false;

  for (const auto env : envs) {
    // Warm-up survey map from the same seed ladder the missions fly: the
    // operational "survey the area before the mission" workflow.
    experiment::Scenario base;
    base.env = env;
    base.seed = bench::seed_or(7301);
    auto map = std::make_shared<radiomap::RadioMap>(experiment::build_radio_map(
        base, experiment::default_map_spec()));
    std::cout << experiment::environment_name(env) << " map: "
              << map->observed_voxels() << " voxels, " << map->total_samples()
              << " samples\n";

    const auto re =
        run_arm(env, experiment::Policy::kReactive, nullptr, seeds);
    const auto pro =
        run_arm(env, experiment::Policy::kProactive, nullptr, seeds);
    const auto prm =
        run_arm(env, experiment::Policy::kProactive, map, seeds);
    const auto pln = run_arm(env, experiment::Policy::kPlanned, map, seeds);

    const struct { const char* name; const ArmResult* a; } arms[] = {
        {"reactive", &re},
        {"proactive", &pro},
        {"proactive+map", &prm},
        {"planned", &pln},
    };
    for (const auto& [name, a] : arms) {
      table.add_row({experiment::environment_name(env), name,
                     row_num(a->stall_ms_per_run / 1000.0, 2),
                     row_num(a->stalls_per_min, 2), row_num(a->p95_owd_ms, 1),
                     row_num(a->goodput_mbps, 2), row_num(a->precision, 2),
                     row_num(a->recall, 2), row_num(a->mean_lead_ms, 0),
                     std::to_string(a->map_prior_arms),
                     std::to_string(a->replans), row_num(a->deviation_m, 1)});
    }

    if (env == experiment::Environment::kUrban) {
      planned_beats_both = pln.stall_ms_per_run < re.stall_ms_per_run &&
                           pln.stall_ms_per_run < pro.stall_ms_per_run;
      lead_improves = prm.mean_lead_ms > pro.mean_lead_ms;
      precision_holds = prm.precision >= pro.precision;
      std::cout << "urban: stall time reactive "
                << row_num(re.stall_ms_per_run / 1000.0, 2) << " s, proactive "
                << row_num(pro.stall_ms_per_run / 1000.0, 2) << " s, planned "
                << row_num(pln.stall_ms_per_run / 1000.0, 2) << " s ("
                << pln.replans << "/" << seeds.size() << " flights replanned, "
                << "mean deviation " << row_num(pln.deviation_m, 1) << " m)\n"
                << "urban: mean HO lead time " << row_num(pro.mean_lead_ms, 0)
                << " -> " << row_num(prm.mean_lead_ms, 0)
                << " ms with the map prior (" << prm.map_prior_arms
                << " prior-only arms), precision "
                << row_num(pro.precision, 2) << " -> "
                << row_num(prm.precision, 2) << "\n";
    }
  }

  std::cout << "\n" << table.render();
  std::cout << "\nExpected shape: the urban map records the >80 m loss band "
               "and the HO-churn voxels along the leap corridor; the planner "
               "caps the mission below the band (cutting the stall budget "
               "the reactive and trend-only proactive arms pay), and the map "
               "prior arms the predictor earlier in learned HO zones without "
               "guessing on flat margins elsewhere.\n";

  const bool pass = planned_beats_both && lead_improves && precision_holds;
  if (!planned_beats_both) {
    std::cout << "VERDICT: regression — planned flight does not cut urban "
                 "stall time below both baselines.\n";
  }
  if (!lead_improves || !precision_holds) {
    std::cout << "VERDICT: regression — map prior fails to improve lead time "
                 "at held precision.\n";
  }
  if (pass) {
    std::cout << "VERDICT: planned flights cut urban stall time below both "
                 "baselines, and the map prior raises HO lead time at held "
                 "precision.\n";
  }
  return pass ? 0 : 1;
}
