// Section 4.2.1 in-text table: video stall rates and CC ramp-up times.
// Paper: static 0.11 stalls/min, SCReAM 0.89, GCC 1.37 (urban); ramp-up to
// 25 Mbps takes ~12 s for GCC and ~25 s for SCReAM.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Table — stall rates and CC ramp-up (Section 4.2.1)",
                      "IMC'22 Section 4.2.1 text");

  metrics::TextTable stalls{{"method", "stalls/min (urban)", "stalls/min (rural)"}};
  metrics::TextTable ramp{{"method", "ramp-up 2->22.5 Mbps (s), urban mean"}};

  for (const auto cc : {pipeline::CcKind::kStatic, pipeline::CcKind::kScream,
                        pipeline::CcKind::kGcc}) {
    const auto urban = experiment::run_campaign(
        bench::video_campaign(experiment::Environment::kUrban, cc, 6));
    const auto rural = experiment::run_campaign(
        bench::video_campaign(experiment::Environment::kRuralP1, cc, 6));
    stalls.add_row(
        {pipeline::cc_name(cc),
         metrics::TextTable::num(experiment::mean_stalls_per_minute(urban), 2),
         metrics::TextTable::num(experiment::mean_stalls_per_minute(rural), 2)});

    if (cc != pipeline::CcKind::kStatic) {
      double total = 0.0;
      int counted = 0;
      for (const auto& r : urban) {
        const double t = r.ramp_up_seconds(22.5e6);
        if (t > 0) {
          total += t;
          ++counted;
        }
      }
      ramp.add_row({pipeline::cc_name(cc),
                    counted > 0 ? metrics::TextTable::num(total / counted, 1)
                                : std::string("never reached")});
    }
  }

  std::cout << "\nStall rates (inter-frame gap > 300 ms)\n" << stalls.render();
  std::cout << "\nRamp-up to ~25 Mbps\n" << ramp.render();
  std::cout << "\nPaper shape: static 0.11, SCReAM 0.89, GCC 1.37 stalls/min; "
               "ramp-up ~12 s (GCC) and ~25 s (SCReAM).\n";
  return 0;
}
