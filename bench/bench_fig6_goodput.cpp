// Figure 6: achieved goodput of the three delivery methods in the urban and
// rural environments. Paper: urban 20-25 Mbps (static pinned at 25; SCReAM
// ~21; GCC ~19); rural 8-10.5 Mbps with SCReAM best at using the fluctuating
// capacity and both CCs above the 8 Mbps static pick.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Figure 6 — goodput by delivery method and environment",
                      "IMC'22 Fig. 6, Section 4.2.1");

  auto table = bench::summary_table("goodput (Mbps)");
  for (const auto env :
       {experiment::Environment::kUrban, experiment::Environment::kRuralP1}) {
    for (const auto cc : {pipeline::CcKind::kGcc, pipeline::CcKind::kScream,
                          pipeline::CcKind::kStatic}) {
      const auto reports =
          experiment::run_campaign(bench::video_campaign(env, cc, 5));
      const auto goodput = experiment::pool_goodput(reports);
      bench::add_summary_row(table,
                             experiment::environment_name(env) + " " +
                                 pipeline::cc_name(cc),
                             goodput.samples());
    }
  }
  std::cout << "\n" << table.render();
  std::cout << "\nPaper shape: urban static ~25 > SCReAM ~21 > GCC ~19 Mbps; "
               "rural SCReAM ~10.5 > GCC ~8.5 >= static 8 Mbps.\n";
  return 0;
}
