// Extension (rpv::fleet): shared-cell contention sweep — what happens to
// per-UAV video delivery when 1 → 1000 RPAVs share one deployment's cells.
//
// The paper measures a single UAV against the full cell budget (~40 Mbps
// urban); a real multi-UAV operation contends for PRBs on shared eNodeBs.
// Each row runs one fleet size through the FleetEngine's sharded epoch loop
// and streams every session's metrics through MetricsRegistry::merge — no
// per-session artifact is materialized — then reports per-UAV goodput/stall
// degradation next to the engine's own throughput (events/sec, realtime
// factor, peak RSS).
//
// Exit status encodes the acceptance verdict: 0 when (a) the fleet-of-one
// session report is byte-identical to the same mission run as a standalone
// pipeline::Session, and (b) mean per-UAV goodput at the largest fleet size
// is below the fleet-of-one value. 1 otherwise.
//
//   bench_ext_fleet [--sizes CSV] [--env E] [--horizon SEC] [--epoch SEC]
//                   [--seed S] [--jobs J] [--bench-json PATH]
#include <sys/resource.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "fleet/fleet_engine.hpp"
#include "json/json.hpp"
#include "metrics/text_table.hpp"
#include "pipeline/report_json.hpp"
#include "sim/validate.hpp"

namespace {

using namespace rpv;

double peak_rss_mb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

std::vector<int> parse_sizes(const std::string& csv) {
  std::vector<int> sizes;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const auto comma = csv.find(',', pos);
    const auto token = csv.substr(pos, comma == std::string::npos
                                           ? std::string::npos
                                           : comma - pos);
    const int v = std::stoi(token);
    rpv::validate(v > 0, "--sizes entries must be positive");
    sizes.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  rpv::validate(!sizes.empty(), "--sizes must name at least one fleet size");
  return sizes;
}

experiment::Environment parse_env(const std::string& name) {
  if (name == "urban") return experiment::Environment::kUrban;
  if (name == "rural-p1") return experiment::Environment::kRuralP1;
  if (name == "rural-p2") return experiment::Environment::kRuralP2;
  throw std::invalid_argument{"unknown --env '" + name +
                              "' (urban, rural-p1, rural-p2)"};
}

void print_usage(const char* prog) {
  std::cout
      << "usage: " << prog
      << " [--sizes CSV] [--env E] [--horizon SEC] [--epoch SEC]\n"
         "                [--seed S] [--jobs J] [--bench-json PATH]\n"
         "  --sizes CSV       fleet sizes to sweep (default "
         "1,4,16,64,256,1000)\n"
         "  --env E           urban | rural-p1 | rural-p2 (default urban)\n"
         "  --horizon SEC     mission length per UAV (default 60)\n"
         "  --epoch SEC       cell-load exchange tick (default 1)\n"
         "  --seed S          fleet base seed (default 42000)\n"
         "  --jobs J          worker threads (default 0 = all hardware)\n"
         "  --bench-json PATH write the perf baseline rows as canonical "
         "JSON\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes = {1, 4, 16, 64, 256, 1000};
  std::string env_name = "urban";
  double horizon_sec = 60.0;
  double epoch_sec = 1.0;
  std::uint64_t seed = 42000;
  int jobs = 0;
  std::optional<std::string> bench_json;

  auto value_of = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << flag << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--sizes") sizes = parse_sizes(value_of(i, arg));
      else if (arg == "--env") {
        env_name = value_of(i, arg);
        (void)parse_env(env_name);  // reject typos here, with usage, not later
      }
      else if (arg == "--horizon") horizon_sec = std::stod(value_of(i, arg));
      else if (arg == "--epoch") epoch_sec = std::stod(value_of(i, arg));
      else if (arg == "--seed") seed = std::stoull(value_of(i, arg));
      else if (arg == "--jobs") jobs = std::stoi(value_of(i, arg));
      else if (arg == "--bench-json") bench_json = value_of(i, arg);
      else if (arg == "--help" || arg == "-h") {
        print_usage(argv[0]);
        return 0;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        print_usage(argv[0]);
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "bad value for " << arg << ": " << e.what() << "\n\n";
      print_usage(argv[0]);
      return 2;
    }
  }

  std::cout
      << "==============================================================\n"
      << "Extension — shared-cell fleet contention sweep (rpv::fleet)\n"
      << "Paper reference: §4.1 cell goodput ceilings as *shared* budgets\n"
      << "==============================================================\n"
      << "env " << env_name << ", horizon "
      << metrics::TextTable::num(horizon_sec, 0) << " s, epoch "
      << metrics::TextTable::num(epoch_sec, 1) << " s, static hover missions\n";

  metrics::TextTable table{{"fleet", "goodput/UAV (Mbps)", "min", "max",
                            "stall ms/UAV", "peak cell load", "events",
                            "wall (s)", "events/s", "realtime x", "RSS (MB)"}};

  fleet::FleetScenario base;
  base.base.env = parse_env(env_name);
  base.base.mobility = experiment::Mobility::kStatic;
  base.base.cc = pipeline::CcKind::kGcc;
  base.base.seed = seed;
  base.horizon_sec = horizon_sec;
  base.epoch_sec = epoch_sec;

  json::Value rows = json::Value::array();
  double goodput_at_one = -1.0;
  double goodput_at_max = -1.0;
  int max_size = 0;
  bool baseline_identical = true;

  for (const int size : sizes) {
    fleet::FleetScenario s = base;
    s.sessions = size;
    const fleet::FleetEngine engine{{.jobs = jobs, .keep_reports = size == 1}};
    const auto result = engine.run(s);
    const auto& rep = result.report;

    if (size == 1) {
      // The acceptance bar: a fleet of one must reproduce the standalone
      // session byte for byte (same layout, trajectory, config, seed).
      auto mission = fleet::plan_fleet(s);
      pipeline::Session solo{mission.configs[0], mission.layout,
                             &mission.trajectories[0], mission.environment};
      const auto solo_json = pipeline::report_to_json(solo.run()).dump();
      const auto fleet_json =
          pipeline::report_to_json(result.session_reports.at(0)).dump();
      baseline_identical = solo_json == fleet_json;
      goodput_at_one = rep.mean_goodput_mbps;
    }
    if (size >= max_size) {
      max_size = size;
      goodput_at_max = rep.mean_goodput_mbps;
    }

    const double events_per_s =
        result.wall_seconds > 0.0
            ? static_cast<double>(rep.total_events) / result.wall_seconds
            : 0.0;
    const double realtime =
        result.wall_seconds > 0.0
            ? static_cast<double>(size) * horizon_sec / result.wall_seconds
            : 0.0;
    const double rss = peak_rss_mb();
    table.add_row({"n=" + std::to_string(size),
                   metrics::TextTable::num(rep.mean_goodput_mbps, 2),
                   metrics::TextTable::num(rep.min_goodput_mbps, 2),
                   metrics::TextTable::num(rep.max_goodput_mbps, 2),
                   metrics::TextTable::num(rep.mean_stall_ms_per_session, 0),
                   std::to_string(rep.peak_cell_load),
                   std::to_string(rep.total_events),
                   metrics::TextTable::num(result.wall_seconds, 1),
                   metrics::TextTable::num(events_per_s, 0),
                   metrics::TextTable::num(realtime, 1),
                   metrics::TextTable::num(rss, 0)});

    json::Value row = json::Value::object();
    row.set("sessions", std::int64_t{size})
        .set("total_events", rep.total_events)
        .set("wall_seconds", result.wall_seconds)
        .set("events_per_second", events_per_s)
        .set("realtime_factor", realtime)
        .set("peak_rss_mb", rss)
        .set("mean_goodput_mbps", rep.mean_goodput_mbps)
        .set("mean_stall_ms_per_session", rep.mean_stall_ms_per_session)
        .set("peak_cell_load", std::uint64_t{rep.peak_cell_load});
    rows.push_back(std::move(row));
  }

  std::cout << table.render();

  if (bench_json) {
    json::Value doc = json::Value::object();
    doc.set("bench", std::string{"fleet"})
        .set("env", env_name)
        .set("horizon_sec", horizon_sec)
        .set("epoch_sec", epoch_sec)
        .set("seed", seed)
        .set("rows", std::move(rows));
    std::ofstream out{*bench_json};
    out << doc.dump(2) << "\n";
    std::cout << "\nperf baseline written to " << *bench_json << "\n";
  }

  const bool contention_visible =
      goodput_at_one < 0.0 || max_size <= 1 || goodput_at_max < goodput_at_one;
  if (goodput_at_one >= 0.0) {
    std::cout << "\nN=1 fleet vs standalone session: "
              << (baseline_identical ? "byte-identical" : "DIVERGED") << "\n";
  }
  if (goodput_at_one >= 0.0 && max_size > 1) {
    std::cout << "per-UAV goodput n=1 -> n=" << max_size << ": "
              << metrics::TextTable::num(goodput_at_one, 2) << " -> "
              << metrics::TextTable::num(goodput_at_max, 2) << " Mbps\n";
  }
  const bool verdict = baseline_identical && contention_visible;
  std::cout << "verdict: " << (verdict ? "PASS" : "FAIL") << "\n";
  return verdict ? 0 : 1;
}
