// Figure 5: one-way latency CDF of RTP packets, ground vs air, urban vs
// rural. The paper finds ~99% of ground packets below 100 ms and ~96% in the
// air, with air outliers beyond 1 s.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  bench::parse_args(argc, argv);
  bench::print_header("Figure 5 — one-way latency CDF, ground vs air",
                      "IMC'22 Fig. 5, Section 4.1");

  const std::vector<double> xs = {20, 30, 40, 50, 75, 100, 200, 500, 1000, 2000};

  metrics::TextTable summary{{"scenario", "median (ms)", "mean (ms)",
                              "P(<100ms) %", "P(<500ms) %", "p99 (ms)"}};

  struct Row {
    experiment::Environment env;
    experiment::Mobility mobility;
  };
  for (const auto& row : std::vector<Row>{
           {experiment::Environment::kUrban, experiment::Mobility::kGround},
           {experiment::Environment::kRuralP1, experiment::Mobility::kGround},
           {experiment::Environment::kUrban, experiment::Mobility::kAir},
           {experiment::Environment::kRuralP1, experiment::Mobility::kAir}}) {
    const auto label = experiment::mobility_name(row.mobility) + " " +
                       experiment::environment_name(row.env);
    // Static-bitrate video is the transported workload, as in the paper's
    // packet-level analysis.
    auto campaign = bench::video_campaign(row.env, pipeline::CcKind::kStatic, 5);
    campaign.scenario.mobility = row.mobility;
    const auto reports = experiment::run_campaign(campaign);
    const auto owd = experiment::pool_owd(reports);
    bench::print_cdf_rows(label, owd, xs, "one-way latency (ms)");
    summary.add_row({label, metrics::TextTable::num(owd.median(), 1),
                     metrics::TextTable::num(owd.mean(), 1),
                     metrics::TextTable::num(100.0 * owd.fraction_below(100.0), 2),
                     metrics::TextTable::num(100.0 * owd.fraction_below(500.0), 2),
                     metrics::TextTable::num(owd.quantile(0.99), 0)});
  }

  std::cout << "\n" << summary.render();
  std::cout << "\nPaper shape: ground ~99% < 100 ms; air ~96% < 100 ms with "
               "outliers beyond 1 s; rural latencies above urban.\n";
  return 0;
}
