file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multipath.dir/bench_ext_multipath.cpp.o"
  "CMakeFiles/bench_ext_multipath.dir/bench_ext_multipath.cpp.o.d"
  "bench_ext_multipath"
  "bench_ext_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
