# Empty dependencies file for bench_ext_multipath.
# This may be replaced when dependencies are built.
