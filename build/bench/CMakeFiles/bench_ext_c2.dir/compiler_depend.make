# Empty compiler generated dependencies file for bench_ext_c2.
# This may be replaced when dependencies are built.
