# Empty compiler generated dependencies file for bench_ext_fec.
# This may be replaced when dependencies are built.
