# Empty dependencies file for bench_ablation_daps.
# This may be replaced when dependencies are built.
