file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_daps.dir/bench_ablation_daps.cpp.o"
  "CMakeFiles/bench_ablation_daps.dir/bench_ablation_daps.cpp.o.d"
  "bench_ablation_daps"
  "bench_ablation_daps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_daps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
