# Empty compiler generated dependencies file for bench_ablation_jitterbuffer.
# This may be replaced when dependencies are built.
