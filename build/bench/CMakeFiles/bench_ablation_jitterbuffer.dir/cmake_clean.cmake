file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_jitterbuffer.dir/bench_ablation_jitterbuffer.cpp.o"
  "CMakeFiles/bench_ablation_jitterbuffer.dir/bench_ablation_jitterbuffer.cpp.o.d"
  "bench_ablation_jitterbuffer"
  "bench_ablation_jitterbuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_jitterbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
