# Empty dependencies file for bench_fig4_handover.
# This may be replaced when dependencies are built.
