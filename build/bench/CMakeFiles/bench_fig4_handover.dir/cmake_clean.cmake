file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_handover.dir/bench_fig4_handover.cpp.o"
  "CMakeFiles/bench_fig4_handover.dir/bench_fig4_handover.cpp.o.d"
  "bench_fig4_handover"
  "bench_fig4_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
