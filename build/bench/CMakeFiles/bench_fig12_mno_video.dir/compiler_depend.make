# Empty compiler generated dependencies file for bench_fig12_mno_video.
# This may be replaced when dependencies are built.
