file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_mno_video.dir/bench_fig12_mno_video.cpp.o"
  "CMakeFiles/bench_fig12_mno_video.dir/bench_fig12_mno_video.cpp.o.d"
  "bench_fig12_mno_video"
  "bench_fig12_mno_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_mno_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
