# Empty dependencies file for bench_fig7_video_quality.
# This may be replaced when dependencies are built.
