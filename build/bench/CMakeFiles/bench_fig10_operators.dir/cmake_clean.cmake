file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_operators.dir/bench_fig10_operators.cpp.o"
  "CMakeFiles/bench_fig10_operators.dir/bench_fig10_operators.cpp.o.d"
  "bench_fig10_operators"
  "bench_fig10_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
