# Empty dependencies file for bench_fig10_operators.
# This may be replaced when dependencies are built.
