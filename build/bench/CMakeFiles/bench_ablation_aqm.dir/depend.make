# Empty dependencies file for bench_ablation_aqm.
# This may be replaced when dependencies are built.
