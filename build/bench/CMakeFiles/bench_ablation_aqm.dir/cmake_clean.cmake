file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aqm.dir/bench_ablation_aqm.cpp.o"
  "CMakeFiles/bench_ablation_aqm.dir/bench_ablation_aqm.cpp.o.d"
  "bench_ablation_aqm"
  "bench_ablation_aqm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aqm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
