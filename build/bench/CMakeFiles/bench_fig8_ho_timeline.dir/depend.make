# Empty dependencies file for bench_fig8_ho_timeline.
# This may be replaced when dependencies are built.
