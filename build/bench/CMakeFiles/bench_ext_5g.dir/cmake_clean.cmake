file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_5g.dir/bench_ext_5g.cpp.o"
  "CMakeFiles/bench_ext_5g.dir/bench_ext_5g.cpp.o.d"
  "bench_ext_5g"
  "bench_ext_5g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_5g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
