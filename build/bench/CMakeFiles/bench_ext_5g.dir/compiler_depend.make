# Empty compiler generated dependencies file for bench_ext_5g.
# This may be replaced when dependencies are built.
