# Empty dependencies file for bench_fig13_rtt_altitude.
# This may be replaced when dependencies are built.
