file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_rtt_altitude.dir/bench_fig13_rtt_altitude.cpp.o"
  "CMakeFiles/bench_fig13_rtt_altitude.dir/bench_fig13_rtt_altitude.cpp.o.d"
  "bench_fig13_rtt_altitude"
  "bench_fig13_rtt_altitude.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_rtt_altitude.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
