file(REMOVE_RECURSE
  "CMakeFiles/bench_table_stalls.dir/bench_table_stalls.cpp.o"
  "CMakeFiles/bench_table_stalls.dir/bench_table_stalls.cpp.o.d"
  "bench_table_stalls"
  "bench_table_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
