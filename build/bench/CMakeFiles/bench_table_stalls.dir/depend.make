# Empty dependencies file for bench_table_stalls.
# This may be replaced when dependencies are built.
