# Empty dependencies file for aerial_coverage_survey.
# This may be replaced when dependencies are built.
