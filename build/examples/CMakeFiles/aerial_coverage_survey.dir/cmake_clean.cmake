file(REMOVE_RECURSE
  "CMakeFiles/aerial_coverage_survey.dir/aerial_coverage_survey.cpp.o"
  "CMakeFiles/aerial_coverage_survey.dir/aerial_coverage_survey.cpp.o.d"
  "aerial_coverage_survey"
  "aerial_coverage_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerial_coverage_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
