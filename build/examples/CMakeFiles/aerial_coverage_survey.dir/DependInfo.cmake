
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/aerial_coverage_survey.cpp" "examples/CMakeFiles/aerial_coverage_survey.dir/aerial_coverage_survey.cpp.o" "gcc" "examples/CMakeFiles/aerial_coverage_survey.dir/aerial_coverage_survey.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiment/CMakeFiles/rpv_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rpv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/rpv_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/rpv_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rpv_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/rpv_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/rpv_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/rpv_video.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rpv_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rpv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
