# Empty dependencies file for mission_planning.
# This may be replaced when dependencies are built.
