file(REMOVE_RECURSE
  "CMakeFiles/mission_planning.dir/mission_planning.cpp.o"
  "CMakeFiles/mission_planning.dir/mission_planning.cpp.o.d"
  "mission_planning"
  "mission_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mission_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
