# Empty dependencies file for debug_capacity.
# This may be replaced when dependencies are built.
