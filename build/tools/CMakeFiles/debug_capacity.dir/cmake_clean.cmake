file(REMOVE_RECURSE
  "CMakeFiles/debug_capacity.dir/debug_capacity.cpp.o"
  "CMakeFiles/debug_capacity.dir/debug_capacity.cpp.o.d"
  "debug_capacity"
  "debug_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
