file(REMOVE_RECURSE
  "CMakeFiles/rpv_trace_cli.dir/rpv_trace.cpp.o"
  "CMakeFiles/rpv_trace_cli.dir/rpv_trace.cpp.o.d"
  "rpv_trace"
  "rpv_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpv_trace_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
