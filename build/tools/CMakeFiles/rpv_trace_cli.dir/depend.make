# Empty dependencies file for rpv_trace_cli.
# This may be replaced when dependencies are built.
