file(REMOVE_RECURSE
  "CMakeFiles/debug_cc.dir/debug_cc.cpp.o"
  "CMakeFiles/debug_cc.dir/debug_cc.cpp.o.d"
  "debug_cc"
  "debug_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
