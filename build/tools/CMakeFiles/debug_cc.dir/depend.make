# Empty dependencies file for debug_cc.
# This may be replaced when dependencies are built.
