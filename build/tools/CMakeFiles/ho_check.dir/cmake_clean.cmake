file(REMOVE_RECURSE
  "CMakeFiles/ho_check.dir/ho_check.cpp.o"
  "CMakeFiles/ho_check.dir/ho_check.cpp.o.d"
  "ho_check"
  "ho_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ho_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
