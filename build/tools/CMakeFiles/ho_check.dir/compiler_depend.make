# Empty compiler generated dependencies file for ho_check.
# This may be replaced when dependencies are built.
