
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cc_gcc.cpp" "tests/CMakeFiles/rpv_tests.dir/test_cc_gcc.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_cc_gcc.cpp.o.d"
  "/root/repo/tests/test_cc_scream.cpp" "tests/CMakeFiles/rpv_tests.dir/test_cc_scream.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_cc_scream.cpp.o.d"
  "/root/repo/tests/test_cc_static.cpp" "tests/CMakeFiles/rpv_tests.dir/test_cc_static.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_cc_static.cpp.o.d"
  "/root/repo/tests/test_cellular_handover.cpp" "tests/CMakeFiles/rpv_tests.dir/test_cellular_handover.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_cellular_handover.cpp.o.d"
  "/root/repo/tests/test_cellular_link.cpp" "tests/CMakeFiles/rpv_tests.dir/test_cellular_link.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_cellular_link.cpp.o.d"
  "/root/repo/tests/test_cellular_link_queue.cpp" "tests/CMakeFiles/rpv_tests.dir/test_cellular_link_queue.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_cellular_link_queue.cpp.o.d"
  "/root/repo/tests/test_cellular_loss.cpp" "tests/CMakeFiles/rpv_tests.dir/test_cellular_loss.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_cellular_loss.cpp.o.d"
  "/root/repo/tests/test_cellular_radio.cpp" "tests/CMakeFiles/rpv_tests.dir/test_cellular_radio.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_cellular_radio.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/rpv_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/rpv_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_geo.cpp" "tests/CMakeFiles/rpv_tests.dir/test_geo.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_geo.cpp.o.d"
  "/root/repo/tests/test_instrumentation.cpp" "tests/CMakeFiles/rpv_tests.dir/test_instrumentation.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_instrumentation.cpp.o.d"
  "/root/repo/tests/test_integration_session.cpp" "tests/CMakeFiles/rpv_tests.dir/test_integration_session.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_integration_session.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/rpv_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/rpv_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_pipeline_receiver.cpp" "tests/CMakeFiles/rpv_tests.dir/test_pipeline_receiver.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_pipeline_receiver.cpp.o.d"
  "/root/repo/tests/test_pipeline_sender.cpp" "tests/CMakeFiles/rpv_tests.dir/test_pipeline_sender.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_pipeline_sender.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/rpv_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rtp_fec.cpp" "tests/CMakeFiles/rpv_tests.dir/test_rtp_fec.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_rtp_fec.cpp.o.d"
  "/root/repo/tests/test_rtp_feedback.cpp" "tests/CMakeFiles/rpv_tests.dir/test_rtp_feedback.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_rtp_feedback.cpp.o.d"
  "/root/repo/tests/test_rtp_jitter_buffer.cpp" "tests/CMakeFiles/rpv_tests.dir/test_rtp_jitter_buffer.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_rtp_jitter_buffer.cpp.o.d"
  "/root/repo/tests/test_rtp_packetizer.cpp" "tests/CMakeFiles/rpv_tests.dir/test_rtp_packetizer.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_rtp_packetizer.cpp.o.d"
  "/root/repo/tests/test_rtp_sequence.cpp" "tests/CMakeFiles/rpv_tests.dir/test_rtp_sequence.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_rtp_sequence.cpp.o.d"
  "/root/repo/tests/test_session_features.cpp" "tests/CMakeFiles/rpv_tests.dir/test_session_features.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_session_features.cpp.o.d"
  "/root/repo/tests/test_sim_rng.cpp" "tests/CMakeFiles/rpv_tests.dir/test_sim_rng.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_sim_rng.cpp.o.d"
  "/root/repo/tests/test_sim_simulator.cpp" "tests/CMakeFiles/rpv_tests.dir/test_sim_simulator.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_sim_simulator.cpp.o.d"
  "/root/repo/tests/test_sim_time.cpp" "tests/CMakeFiles/rpv_tests.dir/test_sim_time.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_sim_time.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/rpv_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_video_encoder.cpp" "tests/CMakeFiles/rpv_tests.dir/test_video_encoder.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_video_encoder.cpp.o.d"
  "/root/repo/tests/test_video_player.cpp" "tests/CMakeFiles/rpv_tests.dir/test_video_player.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_video_player.cpp.o.d"
  "/root/repo/tests/test_video_source.cpp" "tests/CMakeFiles/rpv_tests.dir/test_video_source.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_video_source.cpp.o.d"
  "/root/repo/tests/test_video_ssim.cpp" "tests/CMakeFiles/rpv_tests.dir/test_video_ssim.cpp.o" "gcc" "tests/CMakeFiles/rpv_tests.dir/test_video_ssim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiment/CMakeFiles/rpv_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rpv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/rpv_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/rpv_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rpv_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/rpv_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/rpv_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/rpv_video.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rpv_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rpv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
