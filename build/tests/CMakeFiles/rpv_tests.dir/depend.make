# Empty dependencies file for rpv_tests.
# This may be replaced when dependencies are built.
