file(REMOVE_RECURSE
  "CMakeFiles/rpv_net.dir/wan_path.cpp.o"
  "CMakeFiles/rpv_net.dir/wan_path.cpp.o.d"
  "librpv_net.a"
  "librpv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
