file(REMOVE_RECURSE
  "librpv_net.a"
)
