# Empty compiler generated dependencies file for rpv_net.
# This may be replaced when dependencies are built.
