file(REMOVE_RECURSE
  "CMakeFiles/rpv_sim.dir/rng.cpp.o"
  "CMakeFiles/rpv_sim.dir/rng.cpp.o.d"
  "CMakeFiles/rpv_sim.dir/simulator.cpp.o"
  "CMakeFiles/rpv_sim.dir/simulator.cpp.o.d"
  "librpv_sim.a"
  "librpv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
