file(REMOVE_RECURSE
  "librpv_sim.a"
)
