# Empty dependencies file for rpv_sim.
# This may be replaced when dependencies are built.
