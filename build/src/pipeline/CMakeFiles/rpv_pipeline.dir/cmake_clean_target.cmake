file(REMOVE_RECURSE
  "librpv_pipeline.a"
)
