file(REMOVE_RECURSE
  "CMakeFiles/rpv_pipeline.dir/multipath_session.cpp.o"
  "CMakeFiles/rpv_pipeline.dir/multipath_session.cpp.o.d"
  "CMakeFiles/rpv_pipeline.dir/qoe.cpp.o"
  "CMakeFiles/rpv_pipeline.dir/qoe.cpp.o.d"
  "CMakeFiles/rpv_pipeline.dir/session.cpp.o"
  "CMakeFiles/rpv_pipeline.dir/session.cpp.o.d"
  "CMakeFiles/rpv_pipeline.dir/video_receiver.cpp.o"
  "CMakeFiles/rpv_pipeline.dir/video_receiver.cpp.o.d"
  "CMakeFiles/rpv_pipeline.dir/video_sender.cpp.o"
  "CMakeFiles/rpv_pipeline.dir/video_sender.cpp.o.d"
  "librpv_pipeline.a"
  "librpv_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpv_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
