# Empty dependencies file for rpv_pipeline.
# This may be replaced when dependencies are built.
