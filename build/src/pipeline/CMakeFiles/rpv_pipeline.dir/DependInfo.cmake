
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/multipath_session.cpp" "src/pipeline/CMakeFiles/rpv_pipeline.dir/multipath_session.cpp.o" "gcc" "src/pipeline/CMakeFiles/rpv_pipeline.dir/multipath_session.cpp.o.d"
  "/root/repo/src/pipeline/qoe.cpp" "src/pipeline/CMakeFiles/rpv_pipeline.dir/qoe.cpp.o" "gcc" "src/pipeline/CMakeFiles/rpv_pipeline.dir/qoe.cpp.o.d"
  "/root/repo/src/pipeline/session.cpp" "src/pipeline/CMakeFiles/rpv_pipeline.dir/session.cpp.o" "gcc" "src/pipeline/CMakeFiles/rpv_pipeline.dir/session.cpp.o.d"
  "/root/repo/src/pipeline/video_receiver.cpp" "src/pipeline/CMakeFiles/rpv_pipeline.dir/video_receiver.cpp.o" "gcc" "src/pipeline/CMakeFiles/rpv_pipeline.dir/video_receiver.cpp.o.d"
  "/root/repo/src/pipeline/video_sender.cpp" "src/pipeline/CMakeFiles/rpv_pipeline.dir/video_sender.cpp.o" "gcc" "src/pipeline/CMakeFiles/rpv_pipeline.dir/video_sender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rpv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rpv_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/rpv_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/rpv_video.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/rpv_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/rpv_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rpv_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
