file(REMOVE_RECURSE
  "CMakeFiles/rpv_trace.dir/trace_io.cpp.o"
  "CMakeFiles/rpv_trace.dir/trace_io.cpp.o.d"
  "librpv_trace.a"
  "librpv_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpv_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
