# Empty compiler generated dependencies file for rpv_trace.
# This may be replaced when dependencies are built.
