file(REMOVE_RECURSE
  "librpv_trace.a"
)
