file(REMOVE_RECURSE
  "CMakeFiles/rpv_metrics.dir/bootstrap.cpp.o"
  "CMakeFiles/rpv_metrics.dir/bootstrap.cpp.o.d"
  "CMakeFiles/rpv_metrics.dir/cdf.cpp.o"
  "CMakeFiles/rpv_metrics.dir/cdf.cpp.o.d"
  "CMakeFiles/rpv_metrics.dir/handover_log.cpp.o"
  "CMakeFiles/rpv_metrics.dir/handover_log.cpp.o.d"
  "CMakeFiles/rpv_metrics.dir/summary.cpp.o"
  "CMakeFiles/rpv_metrics.dir/summary.cpp.o.d"
  "CMakeFiles/rpv_metrics.dir/text_table.cpp.o"
  "CMakeFiles/rpv_metrics.dir/text_table.cpp.o.d"
  "CMakeFiles/rpv_metrics.dir/time_series.cpp.o"
  "CMakeFiles/rpv_metrics.dir/time_series.cpp.o.d"
  "librpv_metrics.a"
  "librpv_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpv_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
