file(REMOVE_RECURSE
  "librpv_metrics.a"
)
