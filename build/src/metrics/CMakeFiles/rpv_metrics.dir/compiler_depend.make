# Empty compiler generated dependencies file for rpv_metrics.
# This may be replaced when dependencies are built.
