
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/bootstrap.cpp" "src/metrics/CMakeFiles/rpv_metrics.dir/bootstrap.cpp.o" "gcc" "src/metrics/CMakeFiles/rpv_metrics.dir/bootstrap.cpp.o.d"
  "/root/repo/src/metrics/cdf.cpp" "src/metrics/CMakeFiles/rpv_metrics.dir/cdf.cpp.o" "gcc" "src/metrics/CMakeFiles/rpv_metrics.dir/cdf.cpp.o.d"
  "/root/repo/src/metrics/handover_log.cpp" "src/metrics/CMakeFiles/rpv_metrics.dir/handover_log.cpp.o" "gcc" "src/metrics/CMakeFiles/rpv_metrics.dir/handover_log.cpp.o.d"
  "/root/repo/src/metrics/summary.cpp" "src/metrics/CMakeFiles/rpv_metrics.dir/summary.cpp.o" "gcc" "src/metrics/CMakeFiles/rpv_metrics.dir/summary.cpp.o.d"
  "/root/repo/src/metrics/text_table.cpp" "src/metrics/CMakeFiles/rpv_metrics.dir/text_table.cpp.o" "gcc" "src/metrics/CMakeFiles/rpv_metrics.dir/text_table.cpp.o.d"
  "/root/repo/src/metrics/time_series.cpp" "src/metrics/CMakeFiles/rpv_metrics.dir/time_series.cpp.o" "gcc" "src/metrics/CMakeFiles/rpv_metrics.dir/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rpv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
