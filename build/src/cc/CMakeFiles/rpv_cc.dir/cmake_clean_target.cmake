file(REMOVE_RECURSE
  "librpv_cc.a"
)
