
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/gcc/aimd_controller.cpp" "src/cc/CMakeFiles/rpv_cc.dir/gcc/aimd_controller.cpp.o" "gcc" "src/cc/CMakeFiles/rpv_cc.dir/gcc/aimd_controller.cpp.o.d"
  "/root/repo/src/cc/gcc/arrival_filter.cpp" "src/cc/CMakeFiles/rpv_cc.dir/gcc/arrival_filter.cpp.o" "gcc" "src/cc/CMakeFiles/rpv_cc.dir/gcc/arrival_filter.cpp.o.d"
  "/root/repo/src/cc/gcc/gcc_controller.cpp" "src/cc/CMakeFiles/rpv_cc.dir/gcc/gcc_controller.cpp.o" "gcc" "src/cc/CMakeFiles/rpv_cc.dir/gcc/gcc_controller.cpp.o.d"
  "/root/repo/src/cc/gcc/loss_controller.cpp" "src/cc/CMakeFiles/rpv_cc.dir/gcc/loss_controller.cpp.o" "gcc" "src/cc/CMakeFiles/rpv_cc.dir/gcc/loss_controller.cpp.o.d"
  "/root/repo/src/cc/gcc/overuse_detector.cpp" "src/cc/CMakeFiles/rpv_cc.dir/gcc/overuse_detector.cpp.o" "gcc" "src/cc/CMakeFiles/rpv_cc.dir/gcc/overuse_detector.cpp.o.d"
  "/root/repo/src/cc/scream/scream_controller.cpp" "src/cc/CMakeFiles/rpv_cc.dir/scream/scream_controller.cpp.o" "gcc" "src/cc/CMakeFiles/rpv_cc.dir/scream/scream_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rpv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/rpv_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/rpv_video.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rpv_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
