file(REMOVE_RECURSE
  "CMakeFiles/rpv_cc.dir/gcc/aimd_controller.cpp.o"
  "CMakeFiles/rpv_cc.dir/gcc/aimd_controller.cpp.o.d"
  "CMakeFiles/rpv_cc.dir/gcc/arrival_filter.cpp.o"
  "CMakeFiles/rpv_cc.dir/gcc/arrival_filter.cpp.o.d"
  "CMakeFiles/rpv_cc.dir/gcc/gcc_controller.cpp.o"
  "CMakeFiles/rpv_cc.dir/gcc/gcc_controller.cpp.o.d"
  "CMakeFiles/rpv_cc.dir/gcc/loss_controller.cpp.o"
  "CMakeFiles/rpv_cc.dir/gcc/loss_controller.cpp.o.d"
  "CMakeFiles/rpv_cc.dir/gcc/overuse_detector.cpp.o"
  "CMakeFiles/rpv_cc.dir/gcc/overuse_detector.cpp.o.d"
  "CMakeFiles/rpv_cc.dir/scream/scream_controller.cpp.o"
  "CMakeFiles/rpv_cc.dir/scream/scream_controller.cpp.o.d"
  "librpv_cc.a"
  "librpv_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpv_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
