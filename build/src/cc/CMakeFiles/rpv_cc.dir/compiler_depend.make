# Empty compiler generated dependencies file for rpv_cc.
# This may be replaced when dependencies are built.
