file(REMOVE_RECURSE
  "CMakeFiles/rpv_cellular.dir/base_station.cpp.o"
  "CMakeFiles/rpv_cellular.dir/base_station.cpp.o.d"
  "CMakeFiles/rpv_cellular.dir/cellular_link.cpp.o"
  "CMakeFiles/rpv_cellular.dir/cellular_link.cpp.o.d"
  "CMakeFiles/rpv_cellular.dir/handover.cpp.o"
  "CMakeFiles/rpv_cellular.dir/handover.cpp.o.d"
  "CMakeFiles/rpv_cellular.dir/link_queue.cpp.o"
  "CMakeFiles/rpv_cellular.dir/link_queue.cpp.o.d"
  "CMakeFiles/rpv_cellular.dir/loss_model.cpp.o"
  "CMakeFiles/rpv_cellular.dir/loss_model.cpp.o.d"
  "CMakeFiles/rpv_cellular.dir/radio_model.cpp.o"
  "CMakeFiles/rpv_cellular.dir/radio_model.cpp.o.d"
  "CMakeFiles/rpv_cellular.dir/rrc_log.cpp.o"
  "CMakeFiles/rpv_cellular.dir/rrc_log.cpp.o.d"
  "librpv_cellular.a"
  "librpv_cellular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpv_cellular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
