
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellular/base_station.cpp" "src/cellular/CMakeFiles/rpv_cellular.dir/base_station.cpp.o" "gcc" "src/cellular/CMakeFiles/rpv_cellular.dir/base_station.cpp.o.d"
  "/root/repo/src/cellular/cellular_link.cpp" "src/cellular/CMakeFiles/rpv_cellular.dir/cellular_link.cpp.o" "gcc" "src/cellular/CMakeFiles/rpv_cellular.dir/cellular_link.cpp.o.d"
  "/root/repo/src/cellular/handover.cpp" "src/cellular/CMakeFiles/rpv_cellular.dir/handover.cpp.o" "gcc" "src/cellular/CMakeFiles/rpv_cellular.dir/handover.cpp.o.d"
  "/root/repo/src/cellular/link_queue.cpp" "src/cellular/CMakeFiles/rpv_cellular.dir/link_queue.cpp.o" "gcc" "src/cellular/CMakeFiles/rpv_cellular.dir/link_queue.cpp.o.d"
  "/root/repo/src/cellular/loss_model.cpp" "src/cellular/CMakeFiles/rpv_cellular.dir/loss_model.cpp.o" "gcc" "src/cellular/CMakeFiles/rpv_cellular.dir/loss_model.cpp.o.d"
  "/root/repo/src/cellular/radio_model.cpp" "src/cellular/CMakeFiles/rpv_cellular.dir/radio_model.cpp.o" "gcc" "src/cellular/CMakeFiles/rpv_cellular.dir/radio_model.cpp.o.d"
  "/root/repo/src/cellular/rrc_log.cpp" "src/cellular/CMakeFiles/rpv_cellular.dir/rrc_log.cpp.o" "gcc" "src/cellular/CMakeFiles/rpv_cellular.dir/rrc_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rpv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rpv_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rpv_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
