file(REMOVE_RECURSE
  "librpv_cellular.a"
)
