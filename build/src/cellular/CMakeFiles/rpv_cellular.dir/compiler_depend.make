# Empty compiler generated dependencies file for rpv_cellular.
# This may be replaced when dependencies are built.
