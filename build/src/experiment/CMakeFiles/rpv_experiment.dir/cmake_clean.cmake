file(REMOVE_RECURSE
  "CMakeFiles/rpv_experiment.dir/runner.cpp.o"
  "CMakeFiles/rpv_experiment.dir/runner.cpp.o.d"
  "CMakeFiles/rpv_experiment.dir/scenario.cpp.o"
  "CMakeFiles/rpv_experiment.dir/scenario.cpp.o.d"
  "librpv_experiment.a"
  "librpv_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpv_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
