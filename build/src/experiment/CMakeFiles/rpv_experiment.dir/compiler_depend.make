# Empty compiler generated dependencies file for rpv_experiment.
# This may be replaced when dependencies are built.
