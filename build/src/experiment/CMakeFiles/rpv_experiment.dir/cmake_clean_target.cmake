file(REMOVE_RECURSE
  "librpv_experiment.a"
)
