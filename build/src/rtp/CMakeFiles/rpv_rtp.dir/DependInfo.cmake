
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtp/fec.cpp" "src/rtp/CMakeFiles/rpv_rtp.dir/fec.cpp.o" "gcc" "src/rtp/CMakeFiles/rpv_rtp.dir/fec.cpp.o.d"
  "/root/repo/src/rtp/feedback.cpp" "src/rtp/CMakeFiles/rpv_rtp.dir/feedback.cpp.o" "gcc" "src/rtp/CMakeFiles/rpv_rtp.dir/feedback.cpp.o.d"
  "/root/repo/src/rtp/jitter_buffer.cpp" "src/rtp/CMakeFiles/rpv_rtp.dir/jitter_buffer.cpp.o" "gcc" "src/rtp/CMakeFiles/rpv_rtp.dir/jitter_buffer.cpp.o.d"
  "/root/repo/src/rtp/packetizer.cpp" "src/rtp/CMakeFiles/rpv_rtp.dir/packetizer.cpp.o" "gcc" "src/rtp/CMakeFiles/rpv_rtp.dir/packetizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rpv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/rpv_video.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rpv_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
