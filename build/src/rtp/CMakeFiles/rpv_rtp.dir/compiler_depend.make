# Empty compiler generated dependencies file for rpv_rtp.
# This may be replaced when dependencies are built.
