file(REMOVE_RECURSE
  "CMakeFiles/rpv_rtp.dir/fec.cpp.o"
  "CMakeFiles/rpv_rtp.dir/fec.cpp.o.d"
  "CMakeFiles/rpv_rtp.dir/feedback.cpp.o"
  "CMakeFiles/rpv_rtp.dir/feedback.cpp.o.d"
  "CMakeFiles/rpv_rtp.dir/jitter_buffer.cpp.o"
  "CMakeFiles/rpv_rtp.dir/jitter_buffer.cpp.o.d"
  "CMakeFiles/rpv_rtp.dir/packetizer.cpp.o"
  "CMakeFiles/rpv_rtp.dir/packetizer.cpp.o.d"
  "librpv_rtp.a"
  "librpv_rtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpv_rtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
