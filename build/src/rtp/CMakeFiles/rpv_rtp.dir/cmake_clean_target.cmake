file(REMOVE_RECURSE
  "librpv_rtp.a"
)
