file(REMOVE_RECURSE
  "CMakeFiles/rpv_video.dir/encoder_model.cpp.o"
  "CMakeFiles/rpv_video.dir/encoder_model.cpp.o.d"
  "CMakeFiles/rpv_video.dir/frame_source.cpp.o"
  "CMakeFiles/rpv_video.dir/frame_source.cpp.o.d"
  "CMakeFiles/rpv_video.dir/player_model.cpp.o"
  "CMakeFiles/rpv_video.dir/player_model.cpp.o.d"
  "CMakeFiles/rpv_video.dir/ssim_model.cpp.o"
  "CMakeFiles/rpv_video.dir/ssim_model.cpp.o.d"
  "librpv_video.a"
  "librpv_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpv_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
