file(REMOVE_RECURSE
  "librpv_video.a"
)
