
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/encoder_model.cpp" "src/video/CMakeFiles/rpv_video.dir/encoder_model.cpp.o" "gcc" "src/video/CMakeFiles/rpv_video.dir/encoder_model.cpp.o.d"
  "/root/repo/src/video/frame_source.cpp" "src/video/CMakeFiles/rpv_video.dir/frame_source.cpp.o" "gcc" "src/video/CMakeFiles/rpv_video.dir/frame_source.cpp.o.d"
  "/root/repo/src/video/player_model.cpp" "src/video/CMakeFiles/rpv_video.dir/player_model.cpp.o" "gcc" "src/video/CMakeFiles/rpv_video.dir/player_model.cpp.o.d"
  "/root/repo/src/video/ssim_model.cpp" "src/video/CMakeFiles/rpv_video.dir/ssim_model.cpp.o" "gcc" "src/video/CMakeFiles/rpv_video.dir/ssim_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rpv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rpv_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
