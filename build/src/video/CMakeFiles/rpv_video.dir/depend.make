# Empty dependencies file for rpv_video.
# This may be replaced when dependencies are built.
