file(REMOVE_RECURSE
  "CMakeFiles/rpv_geo.dir/flight_profiles.cpp.o"
  "CMakeFiles/rpv_geo.dir/flight_profiles.cpp.o.d"
  "CMakeFiles/rpv_geo.dir/trajectory.cpp.o"
  "CMakeFiles/rpv_geo.dir/trajectory.cpp.o.d"
  "librpv_geo.a"
  "librpv_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpv_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
