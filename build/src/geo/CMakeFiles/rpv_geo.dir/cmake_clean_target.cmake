file(REMOVE_RECURSE
  "librpv_geo.a"
)
