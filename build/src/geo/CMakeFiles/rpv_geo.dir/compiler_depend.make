# Empty compiler generated dependencies file for rpv_geo.
# This may be replaced when dependencies are built.
