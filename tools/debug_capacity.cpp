#include <iostream>
#include "experiment/scenario.hpp"
#include "metrics/summary.hpp"
#include "metrics/cdf.hpp"
using namespace rpv;
int main(int argc, char** argv) {
  experiment::Scenario s;
  s.env = argc > 1 && std::string(argv[1]) == "rural" ? experiment::Environment::kRuralP1 : experiment::Environment::kUrban;
  s.cc = pipeline::CcKind::kNone;
  s.probe_interval = sim::Duration::millis(100);
  s.seed = 7;
  auto r = experiment::run_scenario(s);
  // capacity stats by altitude-ish time buckets
  const auto& cap = r.capacity_trace_mbps.samples();
  std::vector<double> all;
  for (auto& x : cap) all.push_back(x.value);
  auto sum = metrics::Summary::of(all);
  std::cout << "capacity: " << sum.to_string() << "\n";
  // fraction below thresholds
  int below5=0, below10=0, below25=0;
  for (double v : all) { if (v<5) below5++; if (v<10) below10++; if (v<25) below25++; }
  std::cout << "frac<5: " << (double)below5/all.size() << " frac<10: " << (double)below10/all.size()
            << " frac<25: " << (double)below25/all.size() << "\n";
  std::cout << "HOs: " << r.handovers.count() << " freq " << r.ho_frequency_per_s << "\n";
  metrics::Cdf rtt;
  for (auto& [alt, ms] : r.rtt_by_altitude) rtt.add(ms);
  std::cout << "rtt med " << rtt.median() << " p99 " << rtt.quantile(0.99) << " min " << rtt.min() << "\n";

  // Run a GCC session and inspect pipeline internals.
  experiment::Scenario g = s; g.cc = pipeline::CcKind::kGcc; g.probe_interval = sim::Duration::zero();
  auto gr = experiment::run_scenario(g);
  std::cout << "gcc: corrupted=" << gr.frames_corrupted << "/" << gr.frames_played
            << " resyncs=" << gr.jitter_resyncs << " buffer_drops=" << gr.buffer_drops
            << " radio_losses=" << gr.radio_losses << "\n";
  metrics::Cdf pl; pl.add_all(gr.playback_latency_ms);
  std::cout << "gcc playback lat: med=" << pl.median() << " p10=" << pl.quantile(0.1)
            << " p90=" << pl.quantile(0.9) << " min=" << pl.min() << "\n";
  metrics::Cdf sm; sm.add_all(gr.ssim_samples);
  std::cout << "gcc ssim: med=" << sm.median() << " p10=" << sm.quantile(0.1) << " p90=" << sm.quantile(0.9) << "\n";

  for (auto k : {pipeline::CcKind::kStatic, pipeline::CcKind::kGcc, pipeline::CcKind::kScream}) {
    experiment::Scenario x = s; x.cc = k; x.probe_interval = sim::Duration::zero();
    auto r2 = experiment::run_scenario(x);
    int zeros=0, low=0;
    for (double v : r2.ssim_samples) { if (v==0.0) zeros++; else if (v<0.5) low++; }
    std::cout << pipeline::cc_name(k) << ": corrupted=" << r2.frames_corrupted
              << " zeros=" << zeros << " low(0,0.5)=" << low
              << " played=" << r2.frames_played
              << " radio_loss=" << r2.radio_losses << " bufdrop=" << r2.buffer_drops << "\n";
  }
  experiment::Scenario sc = s; sc.cc = pipeline::CcKind::kScream; sc.probe_interval = sim::Duration::zero();
  auto sr = experiment::run_scenario(sc);
  std::cout << "scream: misloss=" << sr.scream_misloss_packets << " discards=" << sr.queue_discard_events
            << " resyncs=" << sr.jitter_resyncs << " goodput=" << sr.avg_goodput_mbps << "\n";
  const auto& tt = sr.target_bitrate_trace_bps.samples();
  std::cout << "scream target Mbps over time:";
  for (size_t i = 0; i < tt.size(); i += tt.size()/25) std::cout << " " << (int)(tt[i].value/1e6);
  std::cout << "\n";
  const auto& gt = gr.target_bitrate_trace_bps.samples();
  std::cout << "gcc target Mbps over time:   ";
  for (size_t i = 0; i < gt.size(); i += gt.size()/25) std::cout << " " << (int)(gt[i].value/1e6);
  std::cout << "\n";
  return 0;
}
