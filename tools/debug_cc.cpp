#include <iostream>
#include "experiment/scenario.hpp"
#include "metrics/cdf.hpp"
using namespace rpv;
int main(int argc, char** argv) {
  experiment::Scenario s;
  s.env = experiment::Environment::kUrban;
  s.cc = (argc > 1 && std::string(argv[1]) == "scream") ? pipeline::CcKind::kScream : pipeline::CcKind::kGcc;
  s.mobility = (argc > 2 && std::string(argv[2]) == "air") ? experiment::Mobility::kAir : experiment::Mobility::kStatic;
  s.seed = 11;
  // Instrumented session: sample GCC internals each second.
  sim::Rng rng{s.seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
  auto layout = experiment::make_layout(s, rng);
  auto traj = experiment::make_trajectory(s, rng);
  auto cfg = experiment::make_session_config(s);
  pipeline::Session session{cfg, std::move(layout), &traj, "dbg"};
  if (s.cc == pipeline::CcKind::kGcc) {
    for (int t = 1; t < 330; t += 10) {
      session.simulator().schedule_at(sim::TimePoint::origin() + sim::Duration::seconds((double)t), [&session, t] {
        const auto* g = dynamic_cast<const cc::gcc::GccController*>(&session.sender()->controller());
        if (g) std::cerr << "t=" << t << " delay=" << (int)(g->delay_based_rate_bps()/1e6)
                         << " loss=" << (int)(g->loss_based_rate_bps()/1e6)
                         << " rhat=" << (int)(g->incoming_rate_bps()/1e6)
                         << " smloss=" << g->smoothed_loss()
                         << " cap=" << (int)session.link().current_capacity_mbps()
                         << " q=" << (int)session.link().queuing_delay_ms() << "\n";
      });
    }
  }
  auto r = session.run();
  const auto& tt = r.target_bitrate_trace_bps.samples();
  std::cout << "target Mbps:";
  for (size_t i = 0; i < tt.size(); i += std::max<size_t>(1, tt.size()/30)) std::cout << " " << (int)(tt[i].value/1e6);
  std::cout << "\ngoodput avg " << r.avg_goodput_mbps << " misloss " << r.scream_misloss_packets
            << " discards " << r.queue_discard_events << "\n";
  return 0;
}
