// rpv_trace — run a measurement scenario and export its traces as CSVs,
// the simulator's counterpart to the paper's released dataset and parsing
// scripts; or pretty-print a recorded rpv::obs event timeline.
//
//   $ rpv_trace <out_dir> [urban|rural|rural-p2] [gcc|scream|static] [seed]
//               [--observe]
//   $ rpv_trace events <file.jsonl> [--component C] [--kind K]
//               [--from SEC] [--to SEC]
//
// The `events` form reads an events.jsonl written by an observed run
// (Scenario::observe / rpv_campaign --observe) and renders one line per
// event, so a Fig.-8-style handover/stall timeline can be reconstructed from
// the recording alone — no re-simulation. Components cover every layer that
// publishes, including the 3-way bonding paths (`--component sat` isolates
// satellite pass handovers and obstruction/rain-fade windows).
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"
#include "obs/recorder.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace rpv;

int run_events(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: rpv_trace events <file.jsonl> [--component C] "
                 "[--kind K] [--from SEC] [--to SEC]\n";
    return 2;
  }
  const std::string path = argv[2];
  std::optional<obs::Component> component;
  std::optional<obs::EventKind> kind;
  std::optional<double> from_sec;
  std::optional<double> to_sec;
  auto value_of = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << flag << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--component") {
        const auto name = value_of(i, arg);
        component = obs::component_from_name(name);
        if (!component) {
          std::cerr << "unknown component '" << name << "' (one of:";
          for (int c = 0; c < obs::kComponentCount; ++c) {
            std::cerr << " "
                      << obs::component_name(static_cast<obs::Component>(c));
          }
          std::cerr << ")\n";
          return 2;
        }
      } else if (arg == "--kind") {
        const auto name = value_of(i, arg);
        kind = obs::event_kind_from_name(name);
        if (!kind) {
          std::cerr << "unknown event kind '" << name << "' (one of:";
          for (int k = 0; k < obs::kEventKindCount; ++k) {
            std::cerr << " "
                      << obs::event_kind_name(static_cast<obs::EventKind>(k));
          }
          std::cerr << ")\n";
          return 2;
        }
      } else if (arg == "--from") {
        from_sec = std::stod(value_of(i, arg));
      } else if (arg == "--to") {
        to_sec = std::stod(value_of(i, arg));
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return 2;
    }
  }

  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::vector<obs::Event> events;
  try {
    events = obs::read_jsonl(text.str());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  std::size_t shown = 0;
  for (const auto& e : events) {
    if (component && e.component != *component) continue;
    if (kind && e.kind != *kind) continue;
    const double t = static_cast<double>(e.t.us()) / 1e6;
    if (from_sec && t < *from_sec) continue;
    if (to_sec && t > *to_sec) continue;
    std::cout << obs::describe(e) << "\n";
    ++shown;
  }
  std::cerr << shown << " of " << events.size() << " events\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rpv;
  if (argc >= 2 && std::string{argv[1]} == "events") {
    return run_events(argc, argv);
  }
  if (argc < 2) {
    std::cerr << "usage: rpv_trace <out_dir> [urban|rural|rural-p2] "
                 "[gcc|scream|static] [seed] [--observe]\n"
                 "       rpv_trace events <file.jsonl> [--component C] "
                 "[--kind K] [--from SEC] [--to SEC]\n";
    return 2;
  }
  const std::string dir = argv[1];

  // Positional form, with --observe allowed anywhere after <out_dir>.
  std::vector<std::string> positional;
  bool observe = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--observe") {
      observe = true;
    } else {
      positional.push_back(arg);
    }
  }

  experiment::Scenario s;
  s.observe = observe;
  if (!positional.empty()) {
    const std::string& env = positional[0];
    if (env == "rural") s.env = experiment::Environment::kRuralP1;
    else if (env == "rural-p2") s.env = experiment::Environment::kRuralP2;
  }
  if (positional.size() > 1) {
    const std::string& cc = positional[1];
    if (cc == "scream") s.cc = pipeline::CcKind::kScream;
    else if (cc == "static") s.cc = pipeline::CcKind::kStatic;
  }
  s.seed = positional.size() > 2 ? std::stoull(positional[2]) : 1;

  std::cerr << "Running " << experiment::environment_name(s.env) << "/"
            << pipeline::cc_name(s.cc) << " flight (seed " << s.seed << ")...\n";
  const auto report = experiment::run_scenario(s);

  const std::string prefix = experiment::environment_name(s.env) + "-" +
                             pipeline::cc_name(s.cc) + "-" +
                             std::to_string(s.seed);
  const auto written = trace::export_session(report, dir, prefix);
  if (written.empty()) {
    std::cerr << "error: could not write traces to " << dir << "\n";
    return 1;
  }
  for (const auto& f : written) std::cout << f << "\n";
  if (observe) {
    const std::string events_path = dir + "/" + prefix + "_events.jsonl";
    if (!obs::write_jsonl(events_path, report.events)) {
      std::cerr << "error: could not write " << events_path << "\n";
      return 1;
    }
    std::cout << events_path << "\n";
  }
  return 0;
}
