// rpv_trace — run a measurement scenario and export its traces as CSVs,
// the simulator's counterpart to the paper's released dataset and parsing
// scripts.
//
//   $ rpv_trace <out_dir> [urban|rural|rural-p2] [gcc|scream|static] [seed]
#include <iostream>
#include <string>

#include "experiment/scenario.hpp"
#include "trace/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace rpv;
  if (argc < 2) {
    std::cerr << "usage: rpv_trace <out_dir> [urban|rural|rural-p2] "
                 "[gcc|scream|static] [seed]\n";
    return 2;
  }
  const std::string dir = argv[1];

  experiment::Scenario s;
  if (argc > 2) {
    const std::string env = argv[2];
    if (env == "rural") s.env = experiment::Environment::kRuralP1;
    else if (env == "rural-p2") s.env = experiment::Environment::kRuralP2;
  }
  if (argc > 3) {
    const std::string cc = argv[3];
    if (cc == "scream") s.cc = pipeline::CcKind::kScream;
    else if (cc == "static") s.cc = pipeline::CcKind::kStatic;
  }
  s.seed = argc > 4 ? std::stoull(argv[4]) : 1;

  std::cerr << "Running " << experiment::environment_name(s.env) << "/"
            << pipeline::cc_name(s.cc) << " flight (seed " << s.seed << ")...\n";
  const auto report = experiment::run_scenario(s);

  const std::string prefix = experiment::environment_name(s.env) + "-" +
                             pipeline::cc_name(s.cc) + "-" +
                             std::to_string(s.seed);
  const auto written = trace::export_session(report, dir, prefix);
  if (written.empty()) {
    std::cerr << "error: could not write traces to " << dir << "\n";
    return 1;
  }
  for (const auto& f : written) std::cout << f << "\n";
  return 0;
}
