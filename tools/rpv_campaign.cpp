// rpv_campaign — run a named scenario grid through the parallel campaign
// engine, optionally persist every run as a JSON artifact, and print the
// summary table; or re-aggregate a previously stored campaign without
// re-simulating anything.
//
//   rpv_campaign <grid> [--runs N] [--seed S] [--jobs J] [--out DIR] [--name NAME]
//   rpv_campaign fleet [--sessions N] [--env E] [--horizon SEC] ...
//   rpv_campaign --load DIR/NAME
//   rpv_campaign --list
//
// Named grids (cross products, one campaign of N runs per cell):
//   video      {urban, rural-p1, rural-p2} x air x {gcc, scream, static}
//   handover   {urban, rural-p1} x {air, ground} probe traffic (no video)
//   operators  {rural-p1, rural-p2} x air x {gcc, scream}
//   tech       urban x air x {gcc, static} x {lte, 5g-sa}
//   predict    {urban, rural-p1} x air x all CCs x {reactive, proactive}
//   bond       rural pair x {failover, duplicate, bond-*} x {rlf-storm, chaos}
//   sat        3-way multi-connectivity: operator pair vs +LEO satellite
//              x {failover, bond-bal, bond-hr} under rlf-storm
//   fleet      shared-cell multi-UAV sweep: size x {urban, rural-p1}; one
//              FleetEngine run per cell, streaming-merged fleet reports
//   plan       radio-map planning study: a warm-up survey map per
//              environment, then {reactive, proactive, planned} x
//              {urban, rural-p1} with the map attached; with --out the maps
//              are stored as campaign artifacts (maps/<env>.map.json)
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "exec/campaign_engine.hpp"
#include "exec/run_artifact.hpp"
#include "exec/thread_pool.hpp"
#include "experiment/mapping.hpp"
#include "fleet/fleet_engine.hpp"
#include "metrics/cdf.hpp"
#include "metrics/text_table.hpp"

namespace {

using namespace rpv;

struct NamedGrid {
  std::string name;
  std::string description;
  exec::GridAxes axes;
  experiment::Scenario base;
};

std::vector<NamedGrid> named_grids() {
  std::vector<NamedGrid> grids;
  {
    NamedGrid g;
    g.name = "video";
    g.description = "all environments x video congestion controllers (air)";
    g.axes.envs = {experiment::Environment::kUrban,
                   experiment::Environment::kRuralP1,
                   experiment::Environment::kRuralP2};
    g.axes.ccs = {pipeline::CcKind::kGcc, pipeline::CcKind::kScream,
                  pipeline::CcKind::kStatic};
    grids.push_back(std::move(g));
  }
  {
    NamedGrid g;
    g.name = "handover";
    g.description = "probe-only HO study: {urban, rural-p1} x {air, ground}";
    g.axes.envs = {experiment::Environment::kUrban,
                   experiment::Environment::kRuralP1};
    g.axes.mobilities = {experiment::Mobility::kAir,
                         experiment::Mobility::kGround};
    g.base.cc = pipeline::CcKind::kNone;
    g.base.probe_interval = sim::Duration::millis(100);
    grids.push_back(std::move(g));
  }
  {
    NamedGrid g;
    g.name = "operators";
    g.description = "rural operator comparison P1 vs P2 (air, adaptive CCs)";
    g.axes.envs = {experiment::Environment::kRuralP1,
                   experiment::Environment::kRuralP2};
    g.axes.ccs = {pipeline::CcKind::kGcc, pipeline::CcKind::kScream};
    grids.push_back(std::move(g));
  }
  {
    NamedGrid g;
    g.name = "tech";
    g.description = "LTE vs 5G stand-alone (urban air)";
    g.axes.envs = {experiment::Environment::kUrban};
    g.axes.ccs = {pipeline::CcKind::kGcc, pipeline::CcKind::kStatic};
    g.axes.techs = {experiment::AccessTech::kLte,
                    experiment::AccessTech::k5gSa};
    grids.push_back(std::move(g));
  }
  {
    NamedGrid g;
    g.name = "predict";
    g.description =
        "reactive vs proactive (rpv::predict) x {urban, rural-p1} x all CCs";
    g.axes.envs = {experiment::Environment::kUrban,
                   experiment::Environment::kRuralP1};
    g.axes.ccs = {pipeline::CcKind::kGcc, pipeline::CcKind::kScream,
                  pipeline::CcKind::kStatic};
    g.axes.policies = {experiment::Policy::kReactive,
                       experiment::Policy::kProactive};
    grids.push_back(std::move(g));
  }
  {
    NamedGrid g;
    g.name = "bond";
    g.description =
        "bonded operator pair: legacy modes vs rpv::bond policies x faults";
    g.axes.envs = {experiment::Environment::kRuralP1};
    g.axes.multipaths = {experiment::Multipath::kFailover,
                         experiment::Multipath::kDuplicate,
                         experiment::Multipath::kBondLowLatency,
                         experiment::Multipath::kBondBalanced,
                         experiment::Multipath::kBondHighReliability};
    g.axes.fault_presets = {experiment::FaultPreset::kRlfStorm,
                            experiment::FaultPreset::kChaos};
    g.base.cc = pipeline::CcKind::kStatic;
    g.base.c2 = true;
    grids.push_back(std::move(g));
  }
  {
    NamedGrid g;
    g.name = "sat";
    g.description =
        "2-path operator pair vs 3-way (+LEO sat) bonding under rlf-storm";
    g.axes.envs = {experiment::Environment::kRuralP1};
    g.axes.multipaths = {experiment::Multipath::kFailover,
                         experiment::Multipath::kBondBalanced,
                         experiment::Multipath::kBondHighReliability};
    g.axes.path_sets = {experiment::PathSet::kOperatorPair,
                        experiment::PathSet::kThreeWay};
    g.axes.fault_presets = {experiment::FaultPreset::kRlfStorm};
    g.base.mobility = experiment::Mobility::kStatic;
    g.base.cc = pipeline::CcKind::kStatic;
    g.base.c2 = true;
    g.base.faults_on_both_operators = true;
    grids.push_back(std::move(g));
  }
  return grids;
}

void print_usage() {
  std::cout
      << "usage: rpv_campaign <grid> [--runs N] [--seed S] [--jobs J]\n"
         "                    [--out DIR] [--name NAME]\n"
         "       rpv_campaign fleet [--sessions N] [--env E] [--horizon SEC]\n"
         "                    [--seed S] [--jobs J] [--out DIR] [--name NAME]\n"
         "       rpv_campaign --load DIR   (re-aggregate stored artifacts)\n"
         "       rpv_campaign --list       (show named grids)\n"
         "  --runs N   seeded repetitions per grid cell (default 5)\n"
         "  --seed S   base seed (default 1000)\n"
         "  --jobs J   worker threads (default 0 = all hardware threads)\n"
         "  --out DIR  artifact store root; writes DIR/<name>/manifest.json\n"
         "             plus one JSON report per run\n"
         "  --name N   campaign name under --out (default: the grid name)\n"
         "  --observe  attach the rpv::obs recorder to every run; with --out\n"
         "             each run also gets a runs/*.events.jsonl timeline\n"
         "fleet grid only (default sweep: {16, 64} x {urban, rural-p1}):\n"
         "  --sessions N    collapse the size axis to one fleet of N UAVs\n"
         "  --env E         collapse the environment axis (urban, rural-p1,\n"
         "                  rural-p2)\n"
         "  --horizon SEC   mission length per UAV (default 60)\n"
         "  with --out, each cell writes DIR/<name>/fleet_<label>.json\n"
         "plan grid: builds a warm-up survey radio map per environment, then\n"
         "  runs {reactive, proactive, planned} x {urban, rural-p1} with the\n"
         "  map attached; with --out, maps land in DIR/<name>/maps/\n";
}

experiment::Environment parse_env_name(const std::string& name) {
  if (name == "urban") return experiment::Environment::kUrban;
  if (name == "rural-p1") return experiment::Environment::kRuralP1;
  if (name == "rural-p2") return experiment::Environment::kRuralP2;
  throw std::invalid_argument{"unknown --env '" + name +
                              "' (urban, rural-p1, rural-p2)"};
}

struct FleetOptions {
  std::optional<int> sessions;
  std::optional<std::string> env;
  double horizon_sec = 60.0;
  std::uint64_t seed = 1000;
  int jobs = 0;
  std::optional<std::string> out_dir;
  std::optional<std::string> name;
};

int run_fleet_grid(const FleetOptions& opt) {
  fleet::FleetScenario base;
  base.base.mobility = experiment::Mobility::kStatic;
  base.base.cc = pipeline::CcKind::kGcc;
  base.base.seed = opt.seed;
  base.horizon_sec = opt.horizon_sec;

  fleet::FleetGridAxes axes;
  axes.sizes = opt.sessions ? std::vector<int>{*opt.sessions}
                            : std::vector<int>{16, 64};
  axes.envs = opt.env ? std::vector<experiment::Environment>{parse_env_name(
                            *opt.env)}
                      : std::vector<experiment::Environment>{
                            experiment::Environment::kUrban,
                            experiment::Environment::kRuralP1};
  const auto cells = fleet::expand_fleet_grid(axes, base);

  const fleet::FleetEngine engine{{.jobs = opt.jobs}};
  std::cout << "fleet grid: " << cells.size() << " cells, horizon "
            << metrics::TextTable::num(opt.horizon_sec, 0) << " s/UAV\n";

  std::optional<std::filesystem::path> dir;
  if (opt.out_dir) {
    dir = std::filesystem::path{*opt.out_dir} / opt.name.value_or("fleet");
    std::filesystem::create_directories(*dir);
  }

  metrics::TextTable table{{"cell", "goodput/UAV (Mbps)", "min",
                            "stall ms/UAV", "peak cell load", "events",
                            "wall (s)"}};
  double total_wall = 0.0;
  for (const auto& cell : cells) {
    const auto result = engine.run(cell.scenario);
    const auto& rep = result.report;
    total_wall += result.wall_seconds;
    table.add_row({cell.label,
                   metrics::TextTable::num(rep.mean_goodput_mbps, 2),
                   metrics::TextTable::num(rep.min_goodput_mbps, 2),
                   metrics::TextTable::num(rep.mean_stall_ms_per_session, 0),
                   std::to_string(rep.peak_cell_load),
                   std::to_string(rep.total_events),
                   metrics::TextTable::num(result.wall_seconds, 1)});
    if (dir) {
      std::ofstream out{*dir / ("fleet_" + cell.label + ".json")};
      out << fleet::fleet_report_to_json(rep).dump(2) << "\n";
    }
  }
  std::cout << "simulated " << cells.size() << " fleet cells in "
            << metrics::TextTable::num(total_wall, 1) << " s on "
            << exec::resolve_jobs(opt.jobs) << " worker(s)\n\n";
  std::cout << table.render();
  if (dir) std::cout << "\nfleet reports written to " << dir->string() << "\n";
  return 0;
}

struct PlanOptions {
  int runs = 5;
  std::uint64_t seed = 1000;
  int jobs = 0;
  std::optional<std::string> out_dir;
  std::optional<std::string> name;
  bool observe = false;
};

void print_summary(const std::vector<exec::GridCellResult>& cells);

// The radio-map planning study. Unlike the static named grids, each
// environment first flies warm-up survey sweeps to build its map, then the
// policy cells {reactive, proactive, planned} run with that map attached
// (the predictor prior reads it on every policy except reactive; the planner
// only under planned).
int run_plan_grid(const PlanOptions& opt) {
  const std::vector<experiment::Environment> envs = {
      experiment::Environment::kUrban, experiment::Environment::kRuralP1};
  const auto spec = experiment::default_map_spec();

  std::vector<exec::GridCell> cells;
  std::vector<std::pair<std::string, std::shared_ptr<const radiomap::RadioMap>>>
      maps;
  for (const auto env : envs) {
    experiment::Scenario base;
    base.env = env;
    base.seed = opt.seed;
    base.observe = opt.observe;
    auto map = std::make_shared<radiomap::RadioMap>(
        experiment::build_radio_map(base, spec));
    std::cout << "warm-up map (" << experiment::environment_name(env)
              << "): " << map->observed_voxels() << " voxels, "
              << map->total_samples() << " samples\n";
    maps.emplace_back(experiment::environment_name(env), map);
    base.radio_map = map;
    exec::GridAxes axes;
    axes.policies = {experiment::Policy::kReactive,
                     experiment::Policy::kProactive,
                     experiment::Policy::kPlanned};
    auto env_cells = exec::expand_grid(axes, base);
    cells.insert(cells.end(), std::make_move_iterator(env_cells.begin()),
                 std::make_move_iterator(env_cells.end()));
  }

  const exec::CampaignEngine engine{{.jobs = opt.jobs}};
  std::cout << "grid 'plan': " << cells.size() << " cells x " << opt.runs
            << " runs on " << engine.jobs() << " worker(s)\n";
  const auto result = engine.run_grid(cells, opt.runs, opt.seed);
  std::cout << "simulated "
            << cells.size() * static_cast<std::size_t>(opt.runs) << " runs in "
            << metrics::TextTable::num(result.wall_seconds, 1) << " s\n\n";
  print_summary(result.cells);

  if (opt.out_dir) {
    exec::CampaignManifest manifest;
    manifest.name = opt.name.value_or("plan");
    manifest.git_describe = exec::current_git_describe();
    manifest.runs_per_cell = opt.runs;
    manifest.jobs = result.jobs;
    manifest.wall_seconds = result.wall_seconds;
    const exec::RunArtifactStore store{*opt.out_dir};
    const auto dir = store.write_campaign(manifest, result);
    for (const auto& [env_name, map] : maps) {
      store.write_radio_map(manifest.name, env_name, *map);
    }
    std::cout << "\nartifacts written to " << dir.string()
              << " (including maps/<env>.map.json)\n";
  }
  return 0;
}

void print_summary(const std::vector<exec::GridCellResult>& cells) {
  metrics::TextTable table{{"cell", "runs", "goodput med (Mbps)",
                            "OWD med (ms)", "OWD p99 (ms)", "play p95 (ms)",
                            "stalls/min", "HO/s", "SSIM med"}};
  for (const auto& cell : cells) {
    const auto& rs = cell.reports;
    const auto goodput = experiment::pool_goodput(rs);
    const auto owd = experiment::pool_owd(rs);
    const auto play = experiment::pool_playback_latency(rs);
    const auto ssim = experiment::pool_ssim(rs);
    double ho = 0.0;
    for (const auto& r : rs) ho += r.ho_frequency_per_s;
    if (!rs.empty()) ho /= static_cast<double>(rs.size());
    auto med = [](const metrics::Cdf& c) {
      return c.empty() ? std::string{"-"} : metrics::TextTable::num(c.median(), 2);
    };
    table.add_row(
        {cell.cell.label, std::to_string(rs.size()), med(goodput), med(owd),
         owd.empty() ? "-" : metrics::TextTable::num(owd.quantile(0.99), 0),
         play.empty() ? "-" : metrics::TextTable::num(play.quantile(0.95), 0),
         metrics::TextTable::num(experiment::mean_stalls_per_minute(rs), 2),
         metrics::TextTable::num(ho, 3), med(ssim)});
  }
  std::cout << table.render();
}

}  // namespace

int main(int argc, char** argv) {
  std::string grid_name;
  std::optional<std::string> load_dir;
  std::optional<std::string> out_dir;
  std::optional<std::string> campaign_name;
  int runs = 5;
  std::uint64_t seed = 1000;
  int jobs = 0;
  bool observe = false;
  std::optional<int> fleet_sessions;
  std::optional<std::string> fleet_env;
  double fleet_horizon = 60.0;

  auto value_of = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << flag << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--runs") runs = std::stoi(value_of(i, arg));
      else if (arg == "--seed") seed = std::stoull(value_of(i, arg));
      else if (arg == "--jobs") jobs = std::stoi(value_of(i, arg));
      else if (arg == "--out") out_dir = value_of(i, arg);
      else if (arg == "--name") campaign_name = value_of(i, arg);
      else if (arg == "--load") load_dir = value_of(i, arg);
      else if (arg == "--observe") observe = true;
      else if (arg == "--sessions") fleet_sessions = std::stoi(value_of(i, arg));
      else if (arg == "--env") {
        // Validate eagerly so a typo fails with the full usage text instead
        // of surfacing later (or silently defaulting).
        fleet_env = value_of(i, arg);
        try {
          (void)parse_env_name(*fleet_env);
        } catch (const std::exception& e) {
          std::cerr << "error: " << e.what() << "\n\n";
          print_usage();
          return 2;
        }
      }
      else if (arg == "--horizon") fleet_horizon = std::stod(value_of(i, arg));
      else if (arg == "--list") {
        for (const auto& g : named_grids()) {
          const auto cells = exec::expand_grid(g.axes, g.base);
          std::cout << "  " << g.name << "\t(" << cells.size()
                    << " scenarios)\t" << g.description << "\n";
        }
        // The fleet grid expands through its own axes type; count it the
        // same way the run path does instead of hard-coding the number.
        {
          fleet::FleetGridAxes axes;
          axes.sizes = {16, 64};
          axes.envs = {experiment::Environment::kUrban,
                       experiment::Environment::kRuralP1};
          const auto fleet_cells = fleet::expand_fleet_grid(axes, {});
          std::cout << "  fleet\t(" << fleet_cells.size()
                    << " fleet cells)\tshared-cell multi-UAV sweep: "
                       "{16, 64} UAVs x {urban, rural-p1}\n";
        }
        std::cout << "  plan\t(6 scenarios)\tradio-map planning study: "
                     "{reactive, proactive, planned} x {urban, rural-p1} "
                     "with warm-up survey maps\n";
        return 0;
      } else if (arg == "--help" || arg == "-h") {
        print_usage();
        return 0;
      } else if (!arg.empty() && arg[0] != '-' && grid_name.empty()) {
        grid_name = arg;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return 2;
    }
  }

  if (load_dir) {
    try {
      const auto loaded = exec::RunArtifactStore::load_campaign(*load_dir);
      const auto& m = loaded.manifest;
      std::cout << "campaign: " << m.at("name").as_string() << "  (git "
                << m.at("git").as_string() << ", " << loaded.cells.size()
                << " cells, " << m.at("runs_per_cell").as_i64()
                << " runs/cell, simulated in "
                << metrics::TextTable::num(m.at("wall_seconds").as_double(), 1)
                << " s with " << m.at("jobs").as_i64() << " jobs)\n\n";
      print_summary(loaded.cells);
      std::cout << "\n(re-aggregated from stored artifacts; nothing was "
                   "re-simulated)\n";
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "failed to load " << *load_dir << ": " << e.what() << "\n";
      return 1;
    }
  }

  if (grid_name.empty()) {
    print_usage();
    return 2;
  }
  if (grid_name == "plan") {
    PlanOptions opt;
    opt.runs = runs;
    opt.seed = seed;
    opt.jobs = jobs;
    opt.out_dir = out_dir;
    opt.name = campaign_name;
    opt.observe = observe;
    try {
      return run_plan_grid(opt);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  if (grid_name == "fleet") {
    FleetOptions opt;
    opt.sessions = fleet_sessions;
    opt.env = fleet_env;
    opt.horizon_sec = fleet_horizon;
    opt.seed = seed;
    opt.jobs = jobs;
    opt.out_dir = out_dir;
    opt.name = campaign_name;
    try {
      return run_fleet_grid(opt);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  const auto grids = named_grids();
  const NamedGrid* grid = nullptr;
  for (const auto& g : grids) {
    if (g.name == grid_name) grid = &g;
  }
  if (grid == nullptr) {
    std::cerr << "unknown grid '" << grid_name << "' (see --list)\n";
    return 2;
  }

  try {
    const exec::CampaignEngine engine{{.jobs = jobs}};
    experiment::Scenario base = grid->base;
    base.observe = observe;
    const auto cells = exec::expand_grid(grid->axes, base);
    std::cout << "grid '" << grid->name << "': " << cells.size() << " cells x "
              << runs << " runs on " << engine.jobs() << " worker(s)\n";
    const auto result = engine.run_grid(cells, runs, seed);
    std::cout << "simulated "
              << cells.size() * static_cast<std::size_t>(runs) << " runs in "
              << metrics::TextTable::num(result.wall_seconds, 1) << " s\n\n";
    print_summary(result.cells);

    if (out_dir) {
      exec::CampaignManifest manifest;
      manifest.name = campaign_name.value_or(grid->name);
      manifest.git_describe = exec::current_git_describe();
      manifest.runs_per_cell = runs;
      manifest.jobs = result.jobs;
      manifest.wall_seconds = result.wall_seconds;
      const exec::RunArtifactStore store{*out_dir};
      const auto dir = store.write_campaign(manifest, result);
      std::cout << "\nartifacts written to " << dir.string()
                << " (re-aggregate with: rpv_campaign --load " << dir.string()
                << ")\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
