#include <iostream>
#include "experiment/runner.hpp"
using namespace rpv;
int main() {
  for (auto env : {experiment::Environment::kUrban, experiment::Environment::kRuralP1}) {
    for (auto mob : {experiment::Mobility::kAir, experiment::Mobility::kGround}) {
      experiment::Campaign c;
      c.scenario.env = env; c.scenario.mobility = mob;
      c.scenario.cc = pipeline::CcKind::kNone;
      c.scenario.probe_interval = sim::Duration::millis(200);
      c.scenario.seed = 11; c.runs = 6;
      auto rs = experiment::run_campaign(c);
      auto freq = experiment::pool_ho_frequency(rs);
      double m = 0; for (double f : freq) m += f; m /= freq.size();
      auto het = experiment::pool_het(rs);
      metrics::Summary hs = metrics::Summary::of(het);
      int over50 = 0, over500 = 0;
      for (double h : het) { if (h > 49.5) over50++; if (h > 500) over500++; }
      std::cout << experiment::environment_name(env) << " " << experiment::mobility_name(mob)
                << ": HOfreq=" << m << "/s  HET med=" << hs.median << "ms max=" << hs.max
                << " frac>49.5ms=" << (het.empty()?0.0:(double)over50/het.size())
                << " n>500ms=" << over500 << "/" << het.size() << "\n";
    }
  }
  return 0;
}
