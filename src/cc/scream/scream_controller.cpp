#include "cc/scream/scream_controller.hpp"

#include <algorithm>
#include <cmath>

#include "rtp/sequence.hpp"

namespace rpv::cc::scream {

ScreamController::ScreamController(ScreamConfig cfg)
    : cfg_{cfg},
      rate_bps_{cfg.initial_rate_bps},
      cwnd_{std::max<std::size_t>(cfg.min_cwnd_bytes, 20 * cfg.mss_bytes)} {}

void ScreamController::on_packet_sent(const SentPacket& p) {
  const std::int64_t seq = unwrapper_.unwrap(p.transport_seq);
  last_sent_seq_ = p.transport_seq;
  flights_.emplace(seq, Flight{p.size_bytes, p.send_time});
  bytes_in_flight_ += p.size_bytes;
}

void ScreamController::declare_lost(std::int64_t seq, sim::TimePoint now) {
  const auto it = flights_.find(seq);
  if (it == flights_.end()) return;
  bytes_in_flight_ -= std::min(bytes_in_flight_, it->second.size_bytes);
  flights_.erase(it);
  ++declared_lost_;
  pending_loss_ = true;
  maybe_loss_event(now);
}

void ScreamController::maybe_loss_event(sim::TimePoint now) {
  if (!pending_loss_) return;
  // At most one multiplicative backoff per guard interval (roughly one RTT).
  if (!last_loss_event_.is_never() &&
      now - last_loss_event_ < cfg_.loss_event_guard) {
    pending_loss_ = false;
    return;
  }
  last_loss_event_ = now;
  pending_loss_ = false;
  ++loss_events_;
  cwnd_ = std::max(cfg_.min_cwnd_bytes,
                   static_cast<std::size_t>(static_cast<double>(cwnd_) *
                                            cfg_.loss_beta_cwnd));
  rate_bps_ = std::max(cfg_.min_rate_bps, rate_bps_ * cfg_.loss_beta_rate);
}

void ScreamController::on_feedback(const rtp::FeedbackReport& report,
                                   sim::TimePoint now) {
  if (report.results.empty()) return;

  // Unwrap the report against the send-side numbering: the first result's
  // seq is located near the in-flight range.
  std::size_t bytes_newly_acked = 0;
  std::int64_t highest_reported = -1;

  for (const auto& r : report.results) {
    // Locate the unwrapped seq by searching the flights map; send-side
    // numbering is dense so reconstruct via the 16-bit offset from the
    // newest sent seq.
    const std::int64_t newest = unwrapper_.highest();
    const int back = rtp::seq_diff(last_sent_seq_, r.transport_seq);
    const std::int64_t seq = newest - back;
    highest_reported = std::max(highest_reported, seq);
    if (!r.received) continue;

    const auto it = flights_.find(seq);
    if (it == flights_.end()) continue;  // already acked or declared lost
    const double owd_ms = (r.arrival - it->second.send_time).ms();
    const double rtt_ms = (now - it->second.send_time).ms();
    srtt_ms_ = 0.9 * srtt_ms_ + 0.1 * rtt_ms;
    if (owd_ms < base_owd_ms_) base_owd_ms_ = owd_ms;
    window_min_owd_ms_ = std::min(window_min_owd_ms_, owd_ms);
    if (now - base_window_start_ > cfg_.base_refresh) {
      base_owd_ms_ = window_min_owd_ms_;
      window_min_owd_ms_ = 1e9;
      base_window_start_ = now;
    }
    last_qdelay_ms_ = std::max(0.0, owd_ms - base_owd_ms_);

    bytes_newly_acked += it->second.size_bytes;
    bytes_in_flight_ -= std::min(bytes_in_flight_, it->second.size_bytes);
    flights_.erase(it);
  }

  // RFC 8888 bounded-window loss detection: anything still unacked at or
  // below the bottom of the reported window can never be acknowledged by a
  // later report — the Ericsson implementation treats it as lost. During
  // post-handover arrival bursts this mislabels *received* packets.
  if (highest_reported >= 0 && !report.results.empty()) {
    const std::int64_t window_low =
        highest_reported - static_cast<std::int64_t>(report.results.size()) + 1;
    while (!flights_.empty() && flights_.begin()->first < window_low) {
      declare_lost(flights_.begin()->first, now);
    }
    // Explicitly-reported losses inside the window (genuine radio losses)
    // only count once the window has moved past them; handled above on the
    // next report. Reported-and-missing packets older than half the window
    // are treated as lost immediately.
    for (const auto& r : report.results) {
      if (r.received) continue;
      const std::int64_t newest = unwrapper_.highest();
      const int back = rtp::seq_diff(last_sent_seq_, r.transport_seq);
      const std::int64_t seq = newest - back;
      if (highest_reported - seq >
          static_cast<std::int64_t>(report.results.size()) / 2) {
        declare_lost(seq, now);
      }
    }
  }

  // Congestion-window adaptation against the queuing-delay target.
  const double off_target =
      (cfg_.qdelay_target_ms - last_qdelay_ms_) / cfg_.qdelay_target_ms;
  if (bytes_newly_acked > 0) {
    const double delta = cfg_.gain * off_target *
                         static_cast<double>(bytes_newly_acked) *
                         static_cast<double>(cfg_.mss_bytes) /
                         static_cast<double>(cwnd_);
    const double new_cwnd = static_cast<double>(cwnd_) + delta;
    cwnd_ = static_cast<std::size_t>(
        std::max(static_cast<double>(cfg_.min_cwnd_bytes), new_cwnd));
  }
  maybe_loss_event(now);

  // The window must keep pace with the minimum media rate, or the encoder's
  // bitrate floor outruns the self-clock permanently.
  const auto cwnd_floor = static_cast<std::size_t>(
      cfg_.min_rate_bps * (srtt_ms_ / 1e3) / 8.0);
  cwnd_ = std::max(cwnd_, std::max(cfg_.min_cwnd_bytes, cwnd_floor));

  update_rate(now);
}

void ScreamController::update_rate(sim::TimePoint now) {
  double dt = 0.1;
  if (!last_rate_update_.is_never()) {
    dt = std::clamp((now - last_rate_update_).sec(), 0.0, 0.5);
  }
  last_rate_update_ = now;

  // The window supports at most cwnd per srtt.
  const double cwnd_rate =
      static_cast<double>(cwnd_) * 8.0 / std::max(srtt_ms_ / 1e3, 1e-3);

  const bool queue_ok = rtp_queue_delay_ms_ < cfg_.queue_hold_ms;
  const bool qdelay_ok = last_qdelay_ms_ < 0.75 * cfg_.qdelay_target_ms;
  if (queue_ok && qdelay_ok) {
    // Ramp-up speed scales with the operating point (RFC 8298's relative
    // rate increase): recovery from a backoff at high bitrate is much
    // faster than the initial conservative ramp.
    const double scale = std::max(1.0, rate_bps_ / 6e6);
    rate_bps_ += cfg_.ramp_up_bps_per_sec * scale * dt;
  } else if (last_qdelay_ms_ > cfg_.qdelay_target_ms) {
    rate_bps_ *= (1.0 - 0.5 * dt);
  }
  rate_bps_ = std::min(rate_bps_, cwnd_rate);
  rate_bps_ = std::clamp(rate_bps_, cfg_.min_rate_bps, cfg_.max_rate_bps);
  publish_target(now, rate_bps_);
}

void ScreamController::on_tick(sim::TimePoint now) {
  // Radio silence recovery: flights older than the timeout free the window.
  while (!flights_.empty()) {
    const auto it = flights_.begin();
    if (now - it->second.send_time < cfg_.flight_timeout) break;
    declare_lost(it->first, now);
  }
}

void ScreamController::on_feedback_timeout(sim::TimePoint now, double factor) {
  // RFC 8888 silence: both the window and the media rate decay so the
  // self-clock restarts gently when acknowledgments resume.
  cwnd_ = std::max(cfg_.min_cwnd_bytes,
                   static_cast<std::size_t>(static_cast<double>(cwnd_) * factor));
  rate_bps_ = std::max(cfg_.min_rate_bps, rate_bps_ * factor);
  last_rate_update_ = now;
  publish_target(now, rate_bps_);
}

void ScreamController::on_queue_discard(sim::TimePoint now) {
  rate_bps_ = std::max(cfg_.min_rate_bps, rate_bps_ * cfg_.queue_discard_rate_factor);
  rtp_queue_delay_ms_ = 0.0;
  (void)now;
}

}  // namespace rpv::cc::scream
