// SCReAM — Self-Clocked Rate Adaptation for Multimedia (Johansson, RFC 8298;
// the Ericsson Research implementation the paper uses).
//
// SCReAM is window-limited: a congestion window over bytes-in-flight is the
// primary control, adjusted against a one-way queuing-delay target, with
// multiplicative decrease on loss. The media target bitrate follows the
// window with a bounded ramp-up speed (the paper measures ~25 s from 2 to
// 25 Mbps) and backs off when the sender-side RTP queue builds.
//
// Feedback is RFC 8888 with a *bounded* acknowledgment window (default 64
// packets, the paper's mitigation raises it to 256). When bursts larger than
// the window arrive between two feedback reports — e.g. a bufferbloat queue
// draining after a handover — packets fall out of the window unacknowledged
// and are misread as lost, needlessly lowering the bitrate (§4.2.1). This
// implementation reproduces that pathology faithfully.
#pragma once

#include <cstdint>
#include <map>

#include "cc/rate_controller.hpp"
#include "rtp/sequence.hpp"

namespace rpv::cc::scream {

struct ScreamConfig {
  double initial_rate_bps = 2e6;
  // The encoder cannot go below the paper's 2 Mbps floor; letting the
  // controller target less than the media source produces would wedge the
  // RTP queue in permanent discard.
  double min_rate_bps = 2e6;
  double max_rate_bps = 30e6;
  std::size_t mss_bytes = 1240;
  std::size_t min_cwnd_bytes = 2 * 1240;
  double qdelay_target_ms = 90.0;
  double gain = 1.0;               // cwnd gain on off-target
  double loss_beta_cwnd = 0.8;     // cwnd factor on a loss event
  double loss_beta_rate = 0.94;    // target-rate factor on a loss event
  double ramp_up_bps_per_sec = 1.0e6;  // calibrated to the ~25 s ramp
  sim::Duration loss_event_guard = sim::Duration::millis(200);
  // RTP-queue coupling: hold the ramp when the send queue builds, back off
  // on a queue discard.
  double queue_hold_ms = 40.0;
  double queue_discard_rate_factor = 0.9;
  // Packets unacked for this long count as lost (radio-silence recovery).
  sim::Duration flight_timeout = sim::Duration::seconds(1.5);
  // Slow base-delay refresh: forgets clock drift / path changes.
  sim::Duration base_refresh = sim::Duration::seconds(30.0);
};

class ScreamController final : public RateController {
 public:
  explicit ScreamController(ScreamConfig cfg = {});

  void on_packet_sent(const SentPacket& p) override;
  void on_feedback(const rtp::FeedbackReport& report, sim::TimePoint now) override;
  void on_feedback_timeout(sim::TimePoint now, double factor) override;

  [[nodiscard]] double target_bitrate_bps() const override { return rate_bps_; }
  [[nodiscard]] bool window_limited() const override { return true; }
  [[nodiscard]] bool can_send(std::size_t bytes) const override {
    return bytes_in_flight_ + bytes <= cwnd_;
  }
  [[nodiscard]] std::string name() const override { return "scream"; }

  // Called by the sender pipeline.
  void on_tick(sim::TimePoint now) override;  // expire stale flights
  void on_send_queue_delay(double ms) override { rtp_queue_delay_ms_ = ms; }
  void on_queue_discard(sim::TimePoint now) override;  // RTP queue flushed

  // Introspection.
  [[nodiscard]] std::size_t cwnd_bytes() const { return cwnd_; }
  [[nodiscard]] std::size_t bytes_in_flight() const { return bytes_in_flight_; }
  [[nodiscard]] double qdelay_ms() const { return last_qdelay_ms_; }
  [[nodiscard]] double srtt_ms() const { return srtt_ms_; }
  [[nodiscard]] std::uint64_t loss_events() const { return loss_events_; }
  [[nodiscard]] std::uint64_t packets_declared_lost() const { return declared_lost_; }

 private:
  struct Flight {
    std::size_t size_bytes = 0;
    sim::TimePoint send_time;
  };

  void declare_lost(std::int64_t seq, sim::TimePoint now);
  void maybe_loss_event(sim::TimePoint now);
  void update_rate(sim::TimePoint now);

  ScreamConfig cfg_;
  double rate_bps_;
  std::size_t cwnd_;
  std::size_t bytes_in_flight_ = 0;

  std::map<std::int64_t, Flight> flights_;  // unwrapped transport seq
  rtp::SeqUnwrapper unwrapper_;
  std::uint16_t last_sent_seq_ = 0;

  double base_owd_ms_ = 1e9;
  double window_min_owd_ms_ = 1e9;
  sim::TimePoint base_window_start_ = sim::TimePoint::origin();
  double last_qdelay_ms_ = 0.0;
  double srtt_ms_ = 50.0;
  double rtp_queue_delay_ms_ = 0.0;

  bool pending_loss_ = false;
  sim::TimePoint last_loss_event_ = sim::TimePoint::never();
  sim::TimePoint last_rate_update_ = sim::TimePoint::never();
  std::uint64_t loss_events_ = 0;
  std::uint64_t declared_lost_ = 0;
};

}  // namespace rpv::cc::scream
