// Constant-bitrate baseline (paper §3.2): the maximum "support-able" bitrate
// found in trial runs — 25 Mbps urban, 8 Mbps rural — with no adaptation.
#pragma once

#include "cc/rate_controller.hpp"

namespace rpv::cc {

class StaticRate final : public RateController {
 public:
  explicit StaticRate(double bitrate_bps) : bitrate_bps_{bitrate_bps} {}

  void on_packet_sent(const SentPacket&) override {}
  void on_feedback(const rtp::FeedbackReport&, sim::TimePoint) override {}
  [[nodiscard]] double target_bitrate_bps() const override { return bitrate_bps_; }
  [[nodiscard]] std::string name() const override { return "static"; }

 private:
  double bitrate_bps_;
};

}  // namespace rpv::cc
