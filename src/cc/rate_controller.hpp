// Congestion-controller interface shared by GCC, SCReAM, and the static
// baseline.
//
// The sender pipeline consults the controller for (a) the encoder target
// bitrate and (b) transmission clocking. Two clocking styles exist in the
// paper's workloads: rate-paced (GCC and static stream packets at a pacing
// rate derived from the target) and window-limited (SCReAM is self-clocked
// against a congestion window over bytes in flight).
#pragma once

#include <cstdint>
#include <string>

#include "obs/event_sink.hpp"
#include "rtp/feedback.hpp"
#include "sim/time.hpp"

namespace rpv::cc {

struct SentPacket {
  std::uint16_t transport_seq = 0;
  std::size_t size_bytes = 0;
  sim::TimePoint send_time;
};

class RateController {
 public:
  virtual ~RateController() = default;

  virtual void on_packet_sent(const SentPacket& p) = 0;
  virtual void on_feedback(const rtp::FeedbackReport& report,
                           sim::TimePoint now) = 0;

  // Encoder target bitrate right now.
  [[nodiscard]] virtual double target_bitrate_bps() const = 0;

  // Transmission clocking.
  [[nodiscard]] virtual bool window_limited() const { return false; }
  // Window-limited controllers: may `bytes` more be put in flight?
  [[nodiscard]] virtual bool can_send(std::size_t bytes) const {
    (void)bytes;
    return true;
  }
  // Rate-paced controllers: current pacing rate.
  [[nodiscard]] virtual double pacing_rate_bps() const {
    return target_bitrate_bps() * 1.25;
  }

  [[nodiscard]] virtual std::string name() const = 0;

  // Periodic sender-pipeline hooks (no-ops unless a controller needs them).
  virtual void on_tick(sim::TimePoint now) { (void)now; }
  // Current sender-side RTP queue delay at the target rate.
  virtual void on_send_queue_delay(double ms) { (void)ms; }
  // The sender flushed its RTP queue (SCReAM-style discard).
  virtual void on_queue_discard(sim::TimePoint now) { (void)now; }
  // The sender's feedback watchdog expired: RTCP has been silent past its
  // timeout, so coasting on stale estimates is unsafe. Controllers should
  // multiplicatively decay their target by `factor`. Called repeatedly
  // (once per decay interval) while the silence lasts.
  virtual void on_feedback_timeout(sim::TimePoint now, double factor) {
    (void)now;
    (void)factor;
  }

  // Publish kTargetRate / kOveruse events onto the session's bus. Controllers
  // call publish_target/publish_signal after their estimators update; both
  // are edge-triggered (only changes are published).
  void attach_observer(obs::EventBus* bus) { bus_ = bus; }

 protected:
  void publish_target(sim::TimePoint now, double bps) {
    if (bus_ == nullptr || !bus_->wants(obs::EventKind::kTargetRate)) return;
    if (bps == last_published_bps_) return;
    last_published_bps_ = bps;
    bus_->publish(obs::Component::kCc, obs::EventKind::kTargetRate, now,
                  obs::RatePayload{bps});
  }
  void publish_signal(sim::TimePoint now, int signal) {
    if (bus_ == nullptr || !bus_->wants(obs::EventKind::kOveruse)) return;
    if (signal == last_published_signal_) return;
    last_published_signal_ = signal;
    bus_->publish(obs::Component::kCc, obs::EventKind::kOveruse, now,
                  obs::SignalPayload{signal});
  }

  obs::EventBus* bus_ = nullptr;

 private:
  double last_published_bps_ = -1.0;
  int last_published_signal_ = 0;
};

}  // namespace rpv::cc
