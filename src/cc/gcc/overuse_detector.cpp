#include "cc/gcc/overuse_detector.hpp"

#include <algorithm>
#include <cmath>

namespace rpv::cc::gcc {

void OveruseDetector::adapt_threshold(double gradient_ms, sim::TimePoint now) {
  if (last_update_.is_never()) {
    last_update_ = now;
    return;
  }
  const double dt_ms = std::min((now - last_update_).ms(), 100.0);
  const double k = std::abs(gradient_ms) > threshold_ ? cfg_.k_up : cfg_.k_down;
  threshold_ += k * dt_ms * (std::abs(gradient_ms) - threshold_);
  threshold_ = std::clamp(threshold_, cfg_.min_threshold_ms, cfg_.max_threshold_ms);
  last_update_ = now;
}

BandwidthSignal OveruseDetector::update(double gradient_ms, sim::TimePoint now) {
  gradient_ms *= cfg_.signal_gain;
  adapt_threshold(gradient_ms, now);

  if (gradient_ms > threshold_) {
    if (overuse_start_.is_never()) overuse_start_ = now;
    const bool sustained = (now - overuse_start_) >= cfg_.overuse_time;
    const bool not_falling = gradient_ms >= prev_gradient_;
    if (sustained && not_falling) {
      signal_ = BandwidthSignal::kOveruse;
    }
  } else if (gradient_ms < -threshold_) {
    overuse_start_ = sim::TimePoint::never();
    signal_ = BandwidthSignal::kUnderuse;
  } else {
    overuse_start_ = sim::TimePoint::never();
    signal_ = BandwidthSignal::kNormal;
  }
  prev_gradient_ = gradient_ms;
  return signal_;
}

}  // namespace rpv::cc::gcc
