// GCC over-use detector: compares the Kalman gradient estimate against an
// adaptive threshold (Carlucci et al. §3.2). Overuse is only signalled when
// the estimate stays above the threshold for a minimum duration and is not
// falling; the threshold itself adapts so that TCP cross-traffic cannot
// starve the flow.
#pragma once

#include "sim/time.hpp"

namespace rpv::cc::gcc {

enum class BandwidthSignal { kNormal, kOveruse, kUnderuse };

struct OveruseDetectorConfig {
  // WebRTC compares an *amplified* slope against the threshold
  // (modified_trend = num_deltas * trend * gain); without the amplification
  // a slowly-filling bufferbloat queue never crosses the 12.5 ms threshold.
  double signal_gain = 40.0;
  double initial_threshold_ms = 12.5;
  double min_threshold_ms = 6.0;
  double max_threshold_ms = 600.0;
  double k_up = 0.0087;    // threshold gain when |m| above it
  double k_down = 0.00018;  // threshold decay when |m| below it
  sim::Duration overuse_time = sim::Duration::millis(10);
};

class OveruseDetector {
 public:
  explicit OveruseDetector(OveruseDetectorConfig cfg = {}) : cfg_{cfg} {}

  BandwidthSignal update(double gradient_ms, sim::TimePoint now);

  [[nodiscard]] double threshold_ms() const { return threshold_; }
  [[nodiscard]] BandwidthSignal last_signal() const { return signal_; }

 private:
  void adapt_threshold(double gradient_ms, sim::TimePoint now);

  OveruseDetectorConfig cfg_;
  double threshold_ = 12.5;
  double prev_gradient_ = 0.0;
  sim::TimePoint overuse_start_ = sim::TimePoint::never();
  sim::TimePoint last_update_ = sim::TimePoint::never();
  BandwidthSignal signal_ = BandwidthSignal::kNormal;
};

}  // namespace rpv::cc::gcc
