#include "cc/gcc/aimd_controller.hpp"

#include <algorithm>
#include <cmath>

namespace rpv::cc::gcc {

double AimdController::update(BandwidthSignal signal, double incoming_rate_bps,
                              sim::TimePoint now) {
  double dt = 0.0;
  if (!last_update_.is_never()) dt = std::min((now - last_update_).sec(), 1.0);
  last_update_ = now;

  // State transitions (Carlucci et al., Fig. 4): overuse always decreases,
  // underuse holds (the bottleneck queue is draining), normal grows again.
  switch (signal) {
    case BandwidthSignal::kOveruse:
      state_ = State::kDecrease;
      break;
    case BandwidthSignal::kUnderuse:
      state_ = State::kHold;
      break;
    case BandwidthSignal::kNormal:
      state_ = (state_ == State::kDecrease) ? State::kHold : State::kIncrease;
      break;
  }

  switch (state_) {
    case State::kIncrease: {
      const bool near_convergence =
          congestion_point_bps_ > 0.0 &&
          rate_bps_ >= (1.0 - cfg_.convergence_band) * congestion_point_bps_;
      if (near_convergence) {
        rate_bps_ += cfg_.additive_bps_per_sec * dt;
      } else {
        rate_bps_ *= std::pow(cfg_.multiplicative_ramp_per_sec, dt);
      }
      // Never run far ahead of what the receiver demonstrably gets.
      if (incoming_rate_bps > 0.0) {
        rate_bps_ = std::min(rate_bps_, 1.5 * incoming_rate_bps + 100e3);
      }
      break;
    }
    case State::kDecrease: {
      if (!last_decrease_.is_never() &&
          now - last_decrease_ < cfg_.decrease_guard) {
        break;  // one decrease per congestion episode window
      }
      last_decrease_ = now;
      // The incoming-rate estimate can be nearly empty right after a radio
      // stall (only the tail of a drain burst in the window); a single
      // decrease never cuts more than half the current rate.
      const double basis = std::max(incoming_rate_bps, 0.5 * rate_bps_ / cfg_.beta);
      rate_bps_ = cfg_.beta * basis;
      if (incoming_rate_bps > 0.0) congestion_point_bps_ = basis;
      break;
    }
    case State::kHold:
      break;
  }

  rate_bps_ = std::clamp(rate_bps_, cfg_.min_rate_bps, cfg_.max_rate_bps);
  return rate_bps_;
}

void AimdController::scale(double factor, sim::TimePoint now) {
  rate_bps_ = std::clamp(rate_bps_ * factor, cfg_.min_rate_bps, cfg_.max_rate_bps);
  congestion_point_bps_ = rate_bps_;
  last_update_ = now;
  last_decrease_ = now;
  state_ = State::kHold;
}

}  // namespace rpv::cc::gcc
