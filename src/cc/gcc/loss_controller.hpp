// GCC loss-based controller (Carlucci et al. §3.1): a second estimate A_s
// driven purely by the fraction of lost packets reported in feedback.
//   p > 10%  -> A_s *= (1 - 0.5 p)
//   p <  2%  -> A_s *= 1.05
//   else     -> hold
// The sender's final target is min(delay-based, loss-based).
#pragma once

#include "sim/time.hpp"

namespace rpv::cc::gcc {

struct LossControllerConfig {
  double high_loss = 0.10;
  double low_loss = 0.02;
  double increase_factor = 1.05;
  double min_rate_bps = 150e3;
  double max_rate_bps = 30e6;
  // Apply at most one multiplicative update per this interval so bursts of
  // feedback do not compound.
  sim::Duration update_interval = sim::Duration::millis(200);
};

class LossController {
 public:
  LossController(LossControllerConfig cfg, double initial_rate_bps)
      : cfg_{cfg}, rate_bps_{initial_rate_bps} {}

  double update(double loss_fraction, sim::TimePoint now);
  // Externally-forced multiplicative decay (feedback watchdog).
  void scale(double factor, sim::TimePoint now);
  [[nodiscard]] double rate_bps() const { return rate_bps_; }

 private:
  LossControllerConfig cfg_;
  double rate_bps_;
  sim::TimePoint last_update_ = sim::TimePoint::never();
};

}  // namespace rpv::cc::gcc
