#include "cc/gcc/gcc_controller.hpp"

#include <algorithm>

namespace rpv::cc::gcc {

GccController::GccController(GccConfig cfg)
    : cfg_{cfg},
      filter_{cfg.filter},
      detector_{cfg.detector},
      aimd_{cfg.aimd, cfg.initial_rate_bps},
      loss_{cfg.loss, cfg.initial_rate_bps},
      target_bps_{cfg.initial_rate_bps} {}

void GccController::history_insert(const SentPacket& p) {
  HistorySlot& s = history_ring_[p.transport_seq & (kHistoryRing - 1)];
  if (s.valid && s.p.transport_seq == p.transport_seq) {
    s.p = p;  // re-sent seq: overwrite in place, size unchanged
    return;
  }
  if (s.valid) {
    // A colliding older seq is still awaiting feedback (likely lost): spill
    // it so a late report can still find it, exactly as the map did.
    history_overflow_[s.p.transport_seq] = s.p;
  }
  // The inserted seq itself may have a stale copy in the overflow (evicted
  // earlier, now wrapped around); replacing it must not grow the history.
  history_size_ += history_overflow_.erase(p.transport_seq) ? 0 : 1;
  s.p = p;
  s.valid = true;
}

const SentPacket* GccController::history_find(std::uint16_t seq) const {
  const HistorySlot& s = history_ring_[seq & (kHistoryRing - 1)];
  if (s.valid && s.p.transport_seq == seq) return &s.p;
  const auto it = history_overflow_.find(seq);
  return it == history_overflow_.end() ? nullptr : &it->second;
}

void GccController::history_erase(std::uint16_t seq) {
  HistorySlot& s = history_ring_[seq & (kHistoryRing - 1)];
  if (s.valid && s.p.transport_seq == seq) {
    s.valid = false;
  } else if (history_overflow_.erase(seq) == 0) {
    return;
  }
  --history_size_;
}

void GccController::history_age(std::uint16_t newest) {
  for (HistorySlot& s : history_ring_) {
    if (!s.valid) continue;
    const auto age = static_cast<std::uint16_t>(newest - s.p.transport_seq);
    if (age > 8192) {
      s.valid = false;
      --history_size_;
    }
  }
  for (auto it = history_overflow_.begin(); it != history_overflow_.end();) {
    const auto age = static_cast<std::uint16_t>(newest - it->first);
    if (age > 8192) {
      it = history_overflow_.erase(it);
      --history_size_;
    } else {
      ++it;
    }
  }
}

void GccController::on_packet_sent(const SentPacket& p) {
  history_insert(p);
  // Bound the history: anything older than a full seq window is stale.
  if (history_size_ > 8192) history_age(p.transport_seq);
}

void GccController::note_acked(std::size_t bytes, sim::TimePoint arrival) {
  acked_bytes_.emplace_back(arrival, bytes);
  acked_window_bytes_ += bytes;
  const auto horizon = arrival - cfg_.incoming_rate_window;
  while (!acked_bytes_.empty() && acked_bytes_.front().first < horizon) {
    acked_window_bytes_ -= acked_bytes_.front().second;
    acked_bytes_.pop_front();
  }
  incoming_rate_bps_ = static_cast<double>(acked_window_bytes_) * 8.0 /
                       cfg_.incoming_rate_window.sec();
}

void GccController::on_feedback(const rtp::FeedbackReport& report,
                                sim::TimePoint now) {
  if (report.results.empty()) return;

  int lost = 0;
  int total = 0;
  BandwidthSignal signal = BandwidthSignal::kNormal;
  bool fresh_signal = false;

  for (const auto& r : report.results) {
    ++total;
    if (!r.received) {
      ++lost;
      continue;
    }
    const SentPacket* sent = history_find(r.transport_seq);
    if (sent == nullptr) continue;
    note_acked(sent->size_bytes, r.arrival);
    if (const auto gradient = filter_.on_packet(sent->send_time, r.arrival)) {
      signal = detector_.update(*gradient, now);
      fresh_signal = true;
    }
    history_erase(r.transport_seq);
  }

  const double report_loss =
      total > 0 ? static_cast<double>(lost) / static_cast<double>(total) : 0.0;
  smoothed_loss_ = 0.8 * smoothed_loss_ + 0.2 * report_loss;

  // A stale overuse signal must not keep decreasing the rate: only signals
  // produced by this report's packet groups count as congestion evidence.
  if (!fresh_signal) signal = BandwidthSignal::kNormal;
  const double delay_rate = aimd_.update(signal, incoming_rate_bps_, now);
  const double loss_rate = loss_.update(smoothed_loss_, now);
  target_bps_ = std::min(delay_rate, loss_rate);
  publish_signal(now, static_cast<int>(signal));
  publish_target(now, target_bps_);
}

void GccController::on_feedback_timeout(sim::TimePoint now, double factor) {
  // Decay both constituent estimators, not just the published target:
  // otherwise the first post-silence on_feedback() would overwrite the
  // decayed target with the stale pre-outage rates.
  aimd_.scale(factor, now);
  loss_.scale(factor, now);
  target_bps_ = std::min(aimd_.rate_bps(), loss_.rate_bps());
  publish_target(now, target_bps_);
}

}  // namespace rpv::cc::gcc
