#include "cc/gcc/gcc_controller.hpp"

#include <algorithm>

namespace rpv::cc::gcc {

GccController::GccController(GccConfig cfg)
    : cfg_{cfg},
      filter_{cfg.filter},
      detector_{cfg.detector},
      aimd_{cfg.aimd, cfg.initial_rate_bps},
      loss_{cfg.loss, cfg.initial_rate_bps},
      target_bps_{cfg.initial_rate_bps} {}

void GccController::on_packet_sent(const SentPacket& p) {
  history_[p.transport_seq] = p;
  // Bound the history: anything older than a full seq window is stale.
  if (history_.size() > 8192) {
    // Cheap aging: drop entries far behind the newest seq.
    const std::uint16_t newest = p.transport_seq;
    for (auto it = history_.begin(); it != history_.end();) {
      const auto age = static_cast<std::uint16_t>(newest - it->first);
      it = (age > 8192) ? history_.erase(it) : std::next(it);
    }
  }
}

void GccController::note_acked(std::size_t bytes, sim::TimePoint arrival) {
  acked_bytes_.emplace_back(arrival, bytes);
  const auto horizon = arrival - cfg_.incoming_rate_window;
  while (!acked_bytes_.empty() && acked_bytes_.front().first < horizon) {
    acked_bytes_.pop_front();
  }
  std::size_t total = 0;
  for (const auto& [t, b] : acked_bytes_) total += b;
  incoming_rate_bps_ =
      static_cast<double>(total) * 8.0 / cfg_.incoming_rate_window.sec();
}

void GccController::on_feedback(const rtp::FeedbackReport& report,
                                sim::TimePoint now) {
  if (report.results.empty()) return;

  int lost = 0;
  int total = 0;
  BandwidthSignal signal = BandwidthSignal::kNormal;
  bool fresh_signal = false;

  for (const auto& r : report.results) {
    ++total;
    if (!r.received) {
      ++lost;
      continue;
    }
    const auto it = history_.find(r.transport_seq);
    if (it == history_.end()) continue;
    note_acked(it->second.size_bytes, r.arrival);
    if (const auto gradient = filter_.on_packet(it->second.send_time, r.arrival)) {
      signal = detector_.update(*gradient, now);
      fresh_signal = true;
    }
    history_.erase(it);
  }

  const double report_loss =
      total > 0 ? static_cast<double>(lost) / static_cast<double>(total) : 0.0;
  smoothed_loss_ = 0.8 * smoothed_loss_ + 0.2 * report_loss;

  // A stale overuse signal must not keep decreasing the rate: only signals
  // produced by this report's packet groups count as congestion evidence.
  if (!fresh_signal) signal = BandwidthSignal::kNormal;
  const double delay_rate = aimd_.update(signal, incoming_rate_bps_, now);
  const double loss_rate = loss_.update(smoothed_loss_, now);
  target_bps_ = std::min(delay_rate, loss_rate);
  publish_signal(now, static_cast<int>(signal));
  publish_target(now, target_bps_);
}

void GccController::on_feedback_timeout(sim::TimePoint now, double factor) {
  // Decay both constituent estimators, not just the published target:
  // otherwise the first post-silence on_feedback() would overwrite the
  // decayed target with the stale pre-outage rates.
  aimd_.scale(factor, now);
  loss_.scale(factor, now);
  target_bps_ = std::min(aimd_.rate_bps(), loss_.rate_bps());
  publish_target(now, target_bps_);
}

}  // namespace rpv::cc::gcc
