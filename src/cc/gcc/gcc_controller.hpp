// Google Congestion Control, send-side, over transport-wide-CC feedback.
//
// Composition (Carlucci et al., MMSys'16): the arrival filter turns acked
// packet timings into a queuing-delay-gradient estimate; the over-use
// detector thresholds it; the AIMD controller maps the signal to a
// delay-based rate; a parallel loss-based controller reacts to reported
// loss; the target handed to the encoder is the minimum of the two.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "cc/gcc/aimd_controller.hpp"
#include "cc/gcc/arrival_filter.hpp"
#include "cc/gcc/loss_controller.hpp"
#include "cc/gcc/overuse_detector.hpp"
#include "cc/rate_controller.hpp"

namespace rpv::cc::gcc {

struct GccConfig {
  double initial_rate_bps = 2e6;  // the paper's lowest encoding rate
  ArrivalFilterConfig filter;
  OveruseDetectorConfig detector;
  AimdConfig aimd;
  LossControllerConfig loss;
  sim::Duration incoming_rate_window = sim::Duration::millis(500);
  double pacing_factor = 1.25;
};

class GccController final : public RateController {
 public:
  explicit GccController(GccConfig cfg = {});

  void on_packet_sent(const SentPacket& p) override;
  void on_feedback(const rtp::FeedbackReport& report, sim::TimePoint now) override;
  void on_feedback_timeout(sim::TimePoint now, double factor) override;

  [[nodiscard]] double target_bitrate_bps() const override { return target_bps_; }
  [[nodiscard]] double pacing_rate_bps() const override {
    return target_bps_ * cfg_.pacing_factor;
  }
  [[nodiscard]] std::string name() const override { return "gcc"; }

  // Introspection for tests and traces.
  [[nodiscard]] double delay_based_rate_bps() const { return aimd_.rate_bps(); }
  [[nodiscard]] double loss_based_rate_bps() const { return loss_.rate_bps(); }
  [[nodiscard]] double incoming_rate_bps() const { return incoming_rate_bps_; }
  [[nodiscard]] double smoothed_loss() const { return smoothed_loss_; }
  [[nodiscard]] BandwidthSignal last_signal() const { return detector_.last_signal(); }

 private:
  void note_acked(std::size_t bytes, sim::TimePoint arrival);
  void history_insert(const SentPacket& p);
  [[nodiscard]] const SentPacket* history_find(std::uint16_t seq) const;
  void history_erase(std::uint16_t seq);
  void history_age(std::uint16_t newest);

  GccConfig cfg_;
  ArrivalFilter filter_;
  OveruseDetector detector_;
  AimdController aimd_;
  LossController loss_;
  double target_bps_;
  double smoothed_loss_ = 0.0;
  double incoming_rate_bps_ = 0.0;

  // Sent-packet history awaiting feedback, keyed by transport seq. The hot
  // path is a direct-mapped ring (in-flight packets are acked within a few
  // hundred ms, far fewer than kHistoryRing outstanding); an entry evicted
  // by a colliding newer seq spills to the overflow map, so lookups behave
  // exactly like the plain map this replaces — losses and multi-second
  // feedback silences included — without per-packet node allocation.
  static constexpr std::size_t kHistoryRing = 1024;  // power of two
  struct HistorySlot {
    SentPacket p;
    bool valid = false;
  };
  std::vector<HistorySlot> history_ring_{kHistoryRing};
  std::unordered_map<std::uint16_t, SentPacket> history_overflow_;
  std::size_t history_size_ = 0;
  // Sliding ack-rate window with a running byte total (exact: integer sum),
  // so note_acked is O(evictions) instead of O(window).
  std::deque<std::pair<sim::TimePoint, std::size_t>> acked_bytes_;
  std::size_t acked_window_bytes_ = 0;
};

}  // namespace rpv::cc::gcc
