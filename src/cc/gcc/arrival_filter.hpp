// GCC arrival-time model: packet grouping and Kalman estimation of the
// one-way queuing-delay gradient (Carlucci et al., MMSys'16 — the design the
// paper's GCC implementation follows).
//
// Acked packets are coalesced into groups of packets sent within a 5 ms
// burst window. For consecutive groups the filter measures
//   d_i = (arrival_i - arrival_{i-1}) - (departure_i - departure_{i-1}),
// the inter-group delay variation, and tracks its underlying trend m_i with
// a scalar Kalman filter whose measurement noise is estimated online. m_i is
// the congestion signal the overuse detector thresholds.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/time.hpp"

namespace rpv::cc::gcc {

struct ArrivalFilterConfig {
  sim::Duration burst_window = sim::Duration::millis(5);
  double process_noise = 1e-3;       // Kalman Q (ms^2)
  double initial_variance = 0.1;     // Kalman P0
  double noise_smoothing = 0.95;     // measurement-noise EWMA coefficient
};

class ArrivalFilter {
 public:
  explicit ArrivalFilter(ArrivalFilterConfig cfg = {}) : cfg_{cfg} {}

  // Feed one acked packet (in arrival order). Returns the updated gradient
  // estimate (ms per group interval) whenever a group completes.
  std::optional<double> on_packet(sim::TimePoint send_time,
                                  sim::TimePoint arrival_time);

  [[nodiscard]] double gradient_ms() const { return m_; }
  [[nodiscard]] int groups_seen() const { return groups_; }

 private:
  struct Group {
    sim::TimePoint first_send;
    sim::TimePoint last_send;
    sim::TimePoint last_arrival;
    bool valid = false;
  };

  void kalman_update(double z_ms);

  ArrivalFilterConfig cfg_;
  Group current_;
  Group previous_;
  double m_ = 0.0;
  double p_ = 0.1;
  double var_noise_ = 5.0;
  int groups_ = 0;
  bool initialized_ = false;
};

}  // namespace rpv::cc::gcc
