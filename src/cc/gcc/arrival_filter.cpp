#include "cc/gcc/arrival_filter.hpp"

#include <algorithm>
#include <cmath>

namespace rpv::cc::gcc {

std::optional<double> ArrivalFilter::on_packet(sim::TimePoint send_time,
                                               sim::TimePoint arrival_time) {
  if (!initialized_) {
    current_ = {send_time, send_time, arrival_time, true};
    initialized_ = true;
    return std::nullopt;
  }

  if (send_time - current_.first_send <= cfg_.burst_window) {
    // Same burst group.
    current_.last_send = std::max(current_.last_send, send_time);
    current_.last_arrival = std::max(current_.last_arrival, arrival_time);
    return std::nullopt;
  }

  // Group boundary: measure against the previous completed group.
  std::optional<double> result;
  if (previous_.valid) {
    const double inter_arrival =
        (current_.last_arrival - previous_.last_arrival).ms();
    const double inter_departure =
        (current_.last_send - previous_.last_send).ms();
    const double d = inter_arrival - inter_departure;
    kalman_update(d);
    ++groups_;
    result = m_;
  }
  previous_ = current_;
  current_ = {send_time, send_time, arrival_time, true};
  return result;
}

void ArrivalFilter::kalman_update(double z_ms) {
  // Online measurement-noise estimate keeps the gain sane under jitter.
  const double residual = z_ms - m_;
  var_noise_ = std::max(
      cfg_.noise_smoothing * var_noise_ +
          (1.0 - cfg_.noise_smoothing) * residual * residual,
      1.0);
  const double pq = p_ + cfg_.process_noise;
  const double k = pq / (pq + var_noise_);
  m_ += k * residual;
  p_ = (1.0 - k) * pq;
}

}  // namespace rpv::cc::gcc
