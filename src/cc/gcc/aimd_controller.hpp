// GCC delay-based rate controller: the Increase / Hold / Decrease state
// machine driven by the over-use detector signal (Carlucci et al. §3.3).
//
// In Increase the rate grows multiplicatively while far from the last known
// congestion point and additively near it; on Decrease it drops to
// beta * R_hat, the measured incoming rate at the receiver. The ramp factor
// is calibrated so a stream reaches 25 Mbps from its starting rate in about
// the 12 s the paper measures for GCC (§4.2.1).
#pragma once

#include "cc/gcc/overuse_detector.hpp"
#include "sim/time.hpp"

namespace rpv::cc::gcc {

struct AimdConfig {
  double beta = 0.85;
  double multiplicative_ramp_per_sec = 1.22;  // calibrated ramp (see above)
  double additive_bps_per_sec = 800e3;
  double min_rate_bps = 150e3;
  double max_rate_bps = 30e6;
  // Near-convergence band around the last congestion point: additive growth
  // inside, multiplicative outside.
  double convergence_band = 0.15;
  // At most one multiplicative decrease per interval: repeated overuse
  // reports within one congestion episode must not compound.
  sim::Duration decrease_guard = sim::Duration::millis(400);
};

class AimdController {
 public:
  AimdController(AimdConfig cfg, double initial_rate_bps)
      : cfg_{cfg}, rate_bps_{initial_rate_bps} {}

  // Advance the state machine with the detector signal, the measured
  // incoming rate R_hat, and the current time. Returns the new target.
  double update(BandwidthSignal signal, double incoming_rate_bps,
                sim::TimePoint now);

  // Externally-forced multiplicative decay (feedback watchdog). Also resets
  // the update clock so the first post-silence update does not integrate a
  // huge dt, and pins the congestion point at the decayed rate so growth
  // resumes additively.
  void scale(double factor, sim::TimePoint now);

  [[nodiscard]] double rate_bps() const { return rate_bps_; }

 private:
  enum class State { kIncrease, kHold, kDecrease };

  AimdConfig cfg_;
  double rate_bps_;
  State state_ = State::kIncrease;
  double congestion_point_bps_ = -1.0;  // R_hat at the last decrease
  sim::TimePoint last_update_ = sim::TimePoint::never();
  sim::TimePoint last_decrease_ = sim::TimePoint::never();
};

}  // namespace rpv::cc::gcc
