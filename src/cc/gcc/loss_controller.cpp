#include "cc/gcc/loss_controller.hpp"

#include <algorithm>

namespace rpv::cc::gcc {

double LossController::update(double loss_fraction, sim::TimePoint now) {
  if (!last_update_.is_never() && now - last_update_ < cfg_.update_interval) {
    return rate_bps_;
  }
  last_update_ = now;
  if (loss_fraction > cfg_.high_loss) {
    rate_bps_ *= (1.0 - 0.5 * loss_fraction);
  } else if (loss_fraction < cfg_.low_loss) {
    rate_bps_ *= cfg_.increase_factor;
  }
  rate_bps_ = std::clamp(rate_bps_, cfg_.min_rate_bps, cfg_.max_rate_bps);
  return rate_bps_;
}

void LossController::scale(double factor, sim::TimePoint now) {
  rate_bps_ = std::clamp(rate_bps_ * factor, cfg_.min_rate_bps, cfg_.max_rate_bps);
  last_update_ = now;
}

}  // namespace rpv::cc::gcc
