#include "uav/planner.hpp"

#include <algorithm>
#include <cmath>

namespace rpv::uav {
namespace {

// A candidate transform of the mission profile: cap altitude, shift east.
struct Candidate {
  double alt_cap_m = 0.0;  // 0 = uncapped
  double dx_m = 0.0;
};

geo::Trajectory transform(const geo::Trajectory& mission, const Candidate& c) {
  std::vector<geo::Waypoint> pts = mission.waypoints();
  for (auto& wp : pts) {
    if (c.alt_cap_m > 0.0) wp.pos.z = std::min(wp.pos.z, c.alt_cap_m);
    wp.pos.x += c.dx_m;
  }
  return geo::Trajectory{std::move(pts)};
}

double sample_cost_ms(const radiomap::RadioMap& map, const geo::Vec3& pos,
                      double ticks, const PlannerConfig& cfg) {
  const radiomap::VoxelStats* v = map.at(pos);
  if (v == nullptr || v->samples == 0) return ticks * cfg.unknown_voxel_cost_ms * cfg.tick_s;
  double per_tick = v->stall_ms_per_tick();
  per_tick += cfg.ho_penalty_ms * v->ho_risk();
  per_tick += cfg.rlf_penalty_ms * v->rlf_risk();
  per_tick += cfg.loss_penalty_ms * v->loss_per_tick();
  const double cap = v->mean_capacity_mbps();
  if (cap < cfg.min_capacity_mbps) {
    per_tick += cfg.capacity_penalty_ms_per_mbps * (cfg.min_capacity_mbps - cap) *
                cfg.tick_s;
  }
  return ticks * per_tick;
}

}  // namespace

double predicted_stall_ms(const geo::Trajectory& path,
                          const radiomap::RadioMap& map,
                          const PlannerConfig& cfg) {
  if (path.empty()) return 0.0;
  const double ticks_per_sample = cfg.sample_interval_s / cfg.tick_s;
  double total = 0.0;
  const sim::TimePoint start = path.start();
  const sim::TimePoint end = path.end();
  for (sim::TimePoint t = start; t <= end;
       t = t + sim::Duration::seconds(cfg.sample_interval_s)) {
    total += sample_cost_ms(map, path.position(t), ticks_per_sample, cfg);
  }
  return total;
}

PlanResult plan_trajectory(const geo::Trajectory& mission,
                           const radiomap::RadioMap& map,
                           const PlannerConfig& cfg) {
  PlanResult r;
  r.trajectory = mission;
  if (mission.empty()) return r;

  std::vector<Candidate> candidates;
  candidates.push_back({});  // identity first: ties keep the mission
  for (const double cap : cfg.altitude_caps_m) {
    candidates.push_back({cap, 0.0});
    for (const double dx : cfg.lateral_offsets_m) {
      if (dx != 0.0) candidates.push_back({cap, dx});
    }
  }

  const double ticks_per_sample = cfg.sample_interval_s / cfg.tick_s;
  double best_cost = 0.0;
  for (std::uint32_t i = 0; i < candidates.size(); ++i) {
    const geo::Trajectory path = transform(mission, candidates[i]);
    double stall_ms = 0.0;
    double deviation_integral_m = 0.0;
    std::uint64_t samples = 0;
    const sim::TimePoint start = path.start();
    const sim::TimePoint end = path.end();
    for (sim::TimePoint t = start; t <= end;
         t = t + sim::Duration::seconds(cfg.sample_interval_s)) {
      const geo::Vec3 pos = path.position(t);
      stall_ms += sample_cost_ms(map, pos, ticks_per_sample, cfg);
      deviation_integral_m += geo::distance(mission.position(t), pos);
      ++samples;
    }
    const double deviation_cost =
        deviation_integral_m * cfg.deviation_cost_per_m;
    const double cost = stall_ms + deviation_cost;
    if (i == 0) {
      r.direct_cost_ms = cost;
      r.predicted_stall_ms_direct = stall_ms;
      best_cost = cost;
      r.selected_cost_ms = cost;
      r.predicted_stall_ms_selected = stall_ms;
    } else if (cost < best_cost) {
      best_cost = cost;
      r.selected = i;
      r.selected_cost_ms = cost;
      r.predicted_stall_ms_selected = stall_ms;
      r.deviation_m =
          samples == 0 ? 0.0
                       : deviation_integral_m / static_cast<double>(samples);
      r.trajectory = path;
    }
  }
  r.candidates = static_cast<std::uint32_t>(candidates.size());
  r.replanned = r.selected != 0;
  return r;
}

}  // namespace rpv::uav
