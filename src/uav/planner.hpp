// rpv::uav — connectivity-aware trajectory planning over a RadioMap.
//
// The paper ties stalls and latency spikes to *where* the UAV flies: urban
// packet loss above ~80 m (§4.2.1), HO churn at cell edges and altitude.
// Given a warm radio map, the planner closes that loop: it generates a
// deterministic family of candidate trajectories from the mission profile
// (altitude caps, lateral offsets), integrates each candidate's predicted
// stall cost through the map, trades it against mission deviation, and
// emits the cheapest as a geo::Trajectory.
//
// Candidate 0 is always the unmodified mission; with no map evidence every
// candidate scores the same mission-deviation-only cost and the tie breaks
// to candidate 0, so planning with a cold map is the identity.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/trajectory.hpp"
#include "radiomap/radio_map.hpp"

namespace rpv::uav {

struct PlannerConfig {
  // Altitude caps tried as candidates (on top of the identity candidate).
  std::vector<double> altitude_caps_m = {100.0, 80.0, 60.0, 40.0};
  // Lateral (east) shifts tried at each cap, metres. 0 is always included.
  std::vector<double> lateral_offsets_m = {};
  // Sampling step when integrating a candidate through the map.
  double sample_interval_s = 1.0;
  // Measurement-tick length the per-voxel rates are normalized to (the
  // modem's RRC tick in the simulator).
  double tick_s = 0.1;
  // Expected stall cost charged per HO trigger / RLF / radio loss the map
  // predicts along the path (ms). HO execution times in the campaign run
  // ~50-250 ms; an RLF costs an RRC re-establishment.
  double ho_penalty_ms = 120.0;
  double rlf_penalty_ms = 1200.0;
  double loss_penalty_ms = 4.0;
  // Capacity deficit: below this floor the encoder starves; each sampled
  // second under the floor charges a deficit-proportional cost.
  double min_capacity_mbps = 4.0;
  double capacity_penalty_ms_per_mbps = 20.0;
  // Unvisited voxels charge a small optimism-damping prior per sample.
  double unknown_voxel_cost_ms = 5.0;
  // Mission-deviation price: ms of stall-equivalent cost per metre of
  // displacement between the mission point and the candidate point,
  // integrated per sampled second. Keeps the planner from flattening the
  // mission to the ground for a marginal link win, while letting a ~30%
  // predicted-stall cut (the urban >80 m loss band) pay for a 40 m altitude
  // cap over a third of the flight.
  double deviation_cost_per_m = 0.3;
};

struct PlanResult {
  geo::Trajectory trajectory;       // selected (replanned or identity) path
  std::uint32_t candidates = 0;     // candidates evaluated
  std::uint32_t selected = 0;       // index of the winner (0 = identity)
  bool replanned = false;           // selected != identity
  double direct_cost_ms = 0.0;      // total cost of the identity candidate
  double selected_cost_ms = 0.0;    // total cost of the winner
  double predicted_stall_ms_direct = 0.0;    // map-predicted stall, identity
  double predicted_stall_ms_selected = 0.0;  // map-predicted stall, winner
  double deviation_m = 0.0;  // mean displacement winner vs mission
};

// Score the mission and its candidates through `map` and return the best.
// Deterministic and RNG-free: same mission + same map -> same plan.
[[nodiscard]] PlanResult plan_trajectory(const geo::Trajectory& mission,
                                         const radiomap::RadioMap& map,
                                         const PlannerConfig& cfg = {});

// Map-predicted stall cost (ms) of flying `path`, the scoring primitive
// plan_trajectory minimizes; exposed for tests and the bench.
[[nodiscard]] double predicted_stall_ms(const geo::Trajectory& path,
                                        const radiomap::RadioMap& map,
                                        const PlannerConfig& cfg = {});

}  // namespace rpv::uav
