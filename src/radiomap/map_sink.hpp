// RadioMapSink — feeds a RadioMap from a session's obs::EventBus.
//
// Events carry time, not position, so the sink holds the session's
// trajectory and samples position(t) at each event: the same deterministic
// interpolation the radio model itself uses, so attribution lands in the
// voxel the UAV actually occupied. Subscribing the sink is purely
// observational — it publishes nothing and draws no randomness, so a run
// with a sink attached is byte-identical to one without.
#pragma once

#include "geo/trajectory.hpp"
#include "obs/event.hpp"
#include "obs/event_sink.hpp"
#include "radiomap/radio_map.hpp"

namespace rpv::radiomap {

class RadioMapSink final : public obs::EventSink {
 public:
  // Both pointers are borrowed and must outlive the sink.
  RadioMapSink(RadioMap* map, const geo::Trajectory* trajectory)
      : map_{map}, trajectory_{trajectory} {}

  [[nodiscard]] std::uint64_t interest_mask() const override {
    return obs::kind_bit(obs::EventKind::kLinkMeasurement) |
           obs::kind_bit(obs::EventKind::kRlf) |
           obs::kind_bit(obs::EventKind::kPacketLost) |
           obs::kind_bit(obs::EventKind::kStall);
  }

  void on_event(const obs::Event& e) override {
    const geo::Vec3 pos = trajectory_->position(e.t);
    switch (e.kind) {
      case obs::EventKind::kLinkMeasurement: {
        // HO triggers ride the measurement tick's ho_triggered flag (not
        // kHandoverStart) so each trigger is attributed exactly once.
        const auto& m = std::get<obs::MeasurementPayload>(e.payload);
        map_->observe_measurement(pos, m.serving_cell, m.serving_rsrp_dbm,
                                  m.capacity_mbps, m.ho_triggered);
        break;
      }
      case obs::EventKind::kRlf:
        map_->observe_rlf(pos);
        break;
      case obs::EventKind::kPacketLost:
        map_->observe_loss(pos);
        break;
      case obs::EventKind::kStall:
        map_->observe_stall(
            pos, std::get<obs::StallPayload>(e.payload).duration_ms);
        break;
      default:
        break;
    }
  }

 private:
  RadioMap* map_;
  const geo::Trajectory* trajectory_;
};

}  // namespace rpv::radiomap
