// Voxel grid geometry for the 3D radio map (ROADMAP item 5).
//
// A GridSpec quantizes the local ENU frame into axis-aligned voxels of
// `voxel_xy_m` horizontal and `voxel_z_m` vertical extent. The "Vertical
// Look" study the map follows characterizes link quality per (x, y,
// altitude) cell; the grid here is the deterministic indexing layer under
// that: pure integer math over double coordinates, no state, so every
// consumer (sink, planner, predictor prior) quantizes identically.
#pragma once

#include <cstdint>
#include <optional>

#include "geo/vec3.hpp"

namespace rpv::radiomap {

struct GridSpec {
  geo::Vec3 origin{};       // minimum corner of the grid (m)
  double voxel_xy_m = 50.0; // horizontal voxel edge
  double voxel_z_m = 30.0;  // vertical voxel edge
  std::uint32_t nx = 1;
  std::uint32_t ny = 1;
  std::uint32_t nz = 1;

  [[nodiscard]] bool operator==(const GridSpec& o) const {
    return origin.x == o.origin.x && origin.y == o.origin.y &&
           origin.z == o.origin.z && voxel_xy_m == o.voxel_xy_m &&
           voxel_z_m == o.voxel_z_m && nx == o.nx && ny == o.ny && nz == o.nz;
  }
  [[nodiscard]] bool operator!=(const GridSpec& o) const {
    return !(*this == o);
  }

  [[nodiscard]] std::uint64_t voxel_count() const {
    return std::uint64_t{nx} * ny * nz;
  }

  [[nodiscard]] bool valid() const {
    return voxel_xy_m > 0.0 && voxel_z_m > 0.0 && nx > 0 && ny > 0 && nz > 0;
  }

  // Axis cell of a coordinate, or nullopt when outside [0, n). The lower
  // face of each voxel is inclusive, the upper face exclusive, so every
  // in-extent point belongs to exactly one voxel.
  [[nodiscard]] std::optional<std::uint32_t> axis_cell(double v, double lo,
                                                       double res,
                                                       std::uint32_t n) const {
    const double f = (v - lo) / res;
    if (f < 0.0) return std::nullopt;
    const auto c = static_cast<std::uint64_t>(f);  // truncation == floor, f >= 0
    if (c >= n) return std::nullopt;
    return static_cast<std::uint32_t>(c);
  }

  // Linear voxel index of a point, or nullopt when the point lies outside
  // the grid extent. Layout: x fastest, then y, then z.
  [[nodiscard]] std::optional<std::uint32_t> index_of(const geo::Vec3& p) const {
    const auto ix = axis_cell(p.x, origin.x, voxel_xy_m, nx);
    const auto iy = axis_cell(p.y, origin.y, voxel_xy_m, ny);
    const auto iz = axis_cell(p.z, origin.z, voxel_z_m, nz);
    if (!ix || !iy || !iz) return std::nullopt;
    return (*iz * ny + *iy) * nx + *ix;
  }

  [[nodiscard]] std::uint32_t x_of(std::uint32_t index) const {
    return index % nx;
  }
  [[nodiscard]] std::uint32_t y_of(std::uint32_t index) const {
    return (index / nx) % ny;
  }
  [[nodiscard]] std::uint32_t z_of(std::uint32_t index) const {
    return index / (std::uint64_t{nx} * ny);
  }

  // Geometric center of a voxel; center_of(index_of(p)) stays inside the
  // same voxel as p (the property tests pin this for random specs).
  [[nodiscard]] geo::Vec3 center_of(std::uint32_t index) const {
    return {origin.x + (x_of(index) + 0.5) * voxel_xy_m,
            origin.y + (y_of(index) + 0.5) * voxel_xy_m,
            origin.z + (z_of(index) + 0.5) * voxel_z_m};
  }

  // Minimum (inclusive) and maximum (exclusive) corners of a voxel.
  [[nodiscard]] geo::Vec3 voxel_min(std::uint32_t index) const {
    return {origin.x + x_of(index) * voxel_xy_m,
            origin.y + y_of(index) * voxel_xy_m,
            origin.z + z_of(index) * voxel_z_m};
  }
  [[nodiscard]] geo::Vec3 voxel_max(std::uint32_t index) const {
    const auto lo = voxel_min(index);
    return {lo.x + voxel_xy_m, lo.y + voxel_xy_m, lo.z + voxel_z_m};
  }
};

}  // namespace rpv::radiomap
