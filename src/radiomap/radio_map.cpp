#include "radiomap/radio_map.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rpv::radiomap {
namespace {

double var_from_sums(std::uint64_t n, std::int64_t milli_sum,
                     std::uint64_t milli_sq_sum) {
  if (n == 0) return 0.0;
  const double nd = static_cast<double>(n);
  const double mean_milli = static_cast<double>(milli_sum) / nd;
  const double mean_sq_milli = static_cast<double>(milli_sq_sum) / nd;
  const double var_milli2 = mean_sq_milli - mean_milli * mean_milli;
  // milli-dBm^2 -> dB^2; clamp the tiny negatives cancellation can produce.
  return std::max(0.0, var_milli2 / 1e6);
}

std::int64_t to_milli(double v) { return std::llround(v * 1000.0); }

void require(bool ok, const char* what) {
  if (!ok) throw std::runtime_error(std::string("radio map: ") + what);
}

const json::Value& field(const json::Value& v, const char* key) {
  const json::Value* f = v.find(key);
  require(f != nullptr, key);
  return *f;
}

}  // namespace

double CellStats::var_rsrp_db2() const {
  return var_from_sums(samples, rsrp_milli_sum, rsrp_milli_sq_sum);
}

double VoxelStats::var_rsrp_db2() const {
  return var_from_sums(samples, rsrp_milli_sum, rsrp_milli_sq_sum);
}

RadioMap::RadioMap(GridSpec spec) : spec_{spec} {
  if (!spec_.valid()) {
    throw std::invalid_argument("RadioMap: invalid grid spec");
  }
  if (spec_.voxel_count() > (1u << 24)) {
    throw std::invalid_argument("RadioMap: grid too large");
  }
  voxels_.resize(spec_.voxel_count());
}

VoxelStats* RadioMap::mutable_at(const geo::Vec3& pos) {
  const auto idx = spec_.index_of(pos);
  return idx ? &voxels_[*idx] : nullptr;
}

const VoxelStats* RadioMap::at(const geo::Vec3& pos) const {
  const auto idx = spec_.index_of(pos);
  return idx ? &voxels_[*idx] : nullptr;
}

void RadioMap::observe_measurement(const geo::Vec3& pos,
                                   std::uint32_t serving_cell, double rsrp_dbm,
                                   double capacity_mbps, bool ho_triggered) {
  VoxelStats* v = mutable_at(pos);
  if (v == nullptr) return;
  const std::int64_t milli = to_milli(rsrp_dbm);
  const auto sq = static_cast<std::uint64_t>(milli * milli);
  v->samples += 1;
  v->rsrp_milli_sum += milli;
  v->rsrp_milli_sq_sum += sq;
  const double kbps = std::max(0.0, capacity_mbps) * 1000.0;
  v->capacity_kbps_sum += static_cast<std::uint64_t>(std::llround(kbps));
  if (ho_triggered) v->ho_triggers += 1;

  auto it = std::lower_bound(
      v->cells.begin(), v->cells.end(), serving_cell,
      [](const CellStats& c, std::uint32_t id) { return c.cell_id < id; });
  if (it == v->cells.end() || it->cell_id != serving_cell) {
    it = v->cells.insert(it, CellStats{serving_cell, 0, 0, 0});
  }
  it->samples += 1;
  it->rsrp_milli_sum += milli;
  it->rsrp_milli_sq_sum += sq;
}

void RadioMap::observe_handover(const geo::Vec3& pos) {
  if (VoxelStats* v = mutable_at(pos)) v->ho_triggers += 1;
}

void RadioMap::observe_rlf(const geo::Vec3& pos) {
  if (VoxelStats* v = mutable_at(pos)) v->rlf_count += 1;
}

void RadioMap::observe_loss(const geo::Vec3& pos) {
  if (VoxelStats* v = mutable_at(pos)) v->losses += 1;
}

void RadioMap::observe_stall(const geo::Vec3& pos, double duration_ms) {
  if (VoxelStats* v = mutable_at(pos)) {
    v->stall_us +=
        static_cast<std::uint64_t>(std::llround(std::max(0.0, duration_ms) * 1000.0));
  }
}

std::uint64_t RadioMap::total_samples() const {
  std::uint64_t n = 0;
  for (const auto& v : voxels_) n += v.samples;
  return n;
}

std::uint64_t RadioMap::observed_voxels() const {
  std::uint64_t n = 0;
  for (const auto& v : voxels_) {
    if (!v.empty()) ++n;
  }
  return n;
}

void RadioMap::merge(const RadioMap& other) {
  if (!(spec_ == other.spec_)) {
    throw std::invalid_argument("RadioMap::merge: grid spec mismatch");
  }
  for (std::size_t i = 0; i < voxels_.size(); ++i) {
    VoxelStats& a = voxels_[i];
    const VoxelStats& b = other.voxels_[i];
    a.samples += b.samples;
    a.rsrp_milli_sum += b.rsrp_milli_sum;
    a.rsrp_milli_sq_sum += b.rsrp_milli_sq_sum;
    a.capacity_kbps_sum += b.capacity_kbps_sum;
    a.ho_triggers += b.ho_triggers;
    a.rlf_count += b.rlf_count;
    a.losses += b.losses;
    a.stall_us += b.stall_us;
    // Sorted set-union on cell id keeps the merged vector sorted, so the
    // result is independent of merge order.
    std::vector<CellStats> merged;
    merged.reserve(a.cells.size() + b.cells.size());
    std::size_t ia = 0, ib = 0;
    while (ia < a.cells.size() || ib < b.cells.size()) {
      if (ib == b.cells.size() ||
          (ia < a.cells.size() && a.cells[ia].cell_id < b.cells[ib].cell_id)) {
        merged.push_back(a.cells[ia++]);
      } else if (ia == a.cells.size() ||
                 b.cells[ib].cell_id < a.cells[ia].cell_id) {
        merged.push_back(b.cells[ib++]);
      } else {
        CellStats c = a.cells[ia++];
        const CellStats& d = b.cells[ib++];
        c.samples += d.samples;
        c.rsrp_milli_sum += d.rsrp_milli_sum;
        c.rsrp_milli_sq_sum += d.rsrp_milli_sq_sum;
        merged.push_back(c);
      }
    }
    a.cells = std::move(merged);
  }
}

json::Value RadioMap::to_json() const {
  json::Value v = json::Value::object();
  v.set("schema", std::int64_t{kRadioMapSchemaVersion});
  json::Value spec = json::Value::object();
  spec.set("origin_x", spec_.origin.x)
      .set("origin_y", spec_.origin.y)
      .set("origin_z", spec_.origin.z)
      .set("voxel_xy_m", spec_.voxel_xy_m)
      .set("voxel_z_m", spec_.voxel_z_m)
      .set("nx", std::uint64_t{spec_.nx})
      .set("ny", std::uint64_t{spec_.ny})
      .set("nz", std::uint64_t{spec_.nz});
  v.set("spec", std::move(spec));
  json::Value voxels = json::Value::array();
  for (std::uint32_t i = 0; i < voxels_.size(); ++i) {
    const VoxelStats& s = voxels_[i];
    if (s.empty()) continue;
    json::Value o = json::Value::object();
    o.set("i", std::uint64_t{i})
        .set("samples", s.samples)
        .set("rsrp_milli_sum", s.rsrp_milli_sum)
        .set("rsrp_milli_sq_sum", s.rsrp_milli_sq_sum)
        .set("capacity_kbps_sum", s.capacity_kbps_sum)
        .set("ho_triggers", s.ho_triggers)
        .set("rlf_count", s.rlf_count)
        .set("losses", s.losses)
        .set("stall_us", s.stall_us);
    json::Value cells = json::Value::array();
    for (const CellStats& c : s.cells) {
      json::Value e = json::Value::object();
      e.set("cell", std::uint64_t{c.cell_id})
          .set("samples", c.samples)
          .set("rsrp_milli_sum", c.rsrp_milli_sum)
          .set("rsrp_milli_sq_sum", c.rsrp_milli_sq_sum);
      cells.push_back(std::move(e));
    }
    o.set("cells", std::move(cells));
    voxels.push_back(std::move(o));
  }
  v.set("voxels", std::move(voxels));
  return v;
}

RadioMap radio_map_from_json(const json::Value& v) {
  require(v.is_object(), "document must be an object");
  require(field(v, "schema").as_i64() == kRadioMapSchemaVersion,
          "unsupported schema version");
  const json::Value& sp = field(v, "spec");
  require(sp.is_object(), "spec must be an object");
  GridSpec spec;
  spec.origin.x = field(sp, "origin_x").as_double();
  spec.origin.y = field(sp, "origin_y").as_double();
  spec.origin.z = field(sp, "origin_z").as_double();
  spec.voxel_xy_m = field(sp, "voxel_xy_m").as_double();
  spec.voxel_z_m = field(sp, "voxel_z_m").as_double();
  const std::uint64_t nx = field(sp, "nx").as_u64();
  const std::uint64_t ny = field(sp, "ny").as_u64();
  const std::uint64_t nz = field(sp, "nz").as_u64();
  require(nx > 0 && ny > 0 && nz > 0, "grid axes must be positive");
  require(nx * ny * nz <= (1u << 24), "grid too large");
  require(std::isfinite(spec.voxel_xy_m) && std::isfinite(spec.voxel_z_m) &&
              spec.voxel_xy_m > 0.0 && spec.voxel_z_m > 0.0,
          "voxel size must be positive and finite");
  spec.nx = static_cast<std::uint32_t>(nx);
  spec.ny = static_cast<std::uint32_t>(ny);
  spec.nz = static_cast<std::uint32_t>(nz);

  RadioMap map{spec};
  std::vector<VoxelStats> voxels(spec.voxel_count());
  const json::Value& vx = field(v, "voxels");
  require(vx.is_array(), "voxels must be an array");
  std::int64_t prev_index = -1;
  for (const json::Value& o : vx.items()) {
    require(o.is_object(), "voxel entry must be an object");
    const std::uint64_t i = field(o, "i").as_u64();
    require(i < voxels.size(), "voxel index out of range");
    require(static_cast<std::int64_t>(i) > prev_index,
            "voxels must be sorted by index");
    prev_index = static_cast<std::int64_t>(i);
    VoxelStats& s = voxels[i];
    s.samples = field(o, "samples").as_u64();
    s.rsrp_milli_sum = field(o, "rsrp_milli_sum").as_i64();
    s.rsrp_milli_sq_sum = field(o, "rsrp_milli_sq_sum").as_u64();
    s.capacity_kbps_sum = field(o, "capacity_kbps_sum").as_u64();
    s.ho_triggers = field(o, "ho_triggers").as_u64();
    s.rlf_count = field(o, "rlf_count").as_u64();
    s.losses = field(o, "losses").as_u64();
    s.stall_us = field(o, "stall_us").as_u64();
    const json::Value& cells = field(o, "cells");
    require(cells.is_array(), "cells must be an array");
    std::int64_t prev_cell = -1;
    for (const json::Value& e : cells.items()) {
      require(e.is_object(), "cell entry must be an object");
      CellStats c;
      const std::uint64_t id = field(e, "cell").as_u64();
      require(id <= 0xFFFFFFFFull, "cell id out of range");
      require(static_cast<std::int64_t>(id) > prev_cell,
              "cells must be sorted by id");
      prev_cell = static_cast<std::int64_t>(id);
      c.cell_id = static_cast<std::uint32_t>(id);
      c.samples = field(e, "samples").as_u64();
      c.rsrp_milli_sum = field(e, "rsrp_milli_sum").as_i64();
      c.rsrp_milli_sq_sum = field(e, "rsrp_milli_sq_sum").as_u64();
      s.cells.push_back(c);
    }
    require(!s.empty(), "voxel entry must be non-empty");
  }
  map.voxels_ = std::move(voxels);
  return map;
}

RadioMap radio_map_from_bytes(std::string_view text) {
  return radio_map_from_json(json::parse(text));
}

}  // namespace rpv::radiomap
