// rpv::radiomap — 3D radio-map memory (ROADMAP item 5).
//
// A RadioMap accumulates per-voxel link statistics — serving RSRP mean/var
// per cell, observed capacity, HO-trigger / RLF / loss counts, stall
// attribution — from flights (or a warm-up survey sweep) and persists as a
// campaign artifact. Two invariants carry everything downstream:
//
//  * Every statistic is an integer sum (RSRP in milli-dBm, capacity in
//    kbps, stalls in µs), so merge() is associative, commutative, and
//    order-independent — the same algebra obs::MetricsRegistry::merge
//    guarantees — and fleet-sharded accumulation is byte-identical for any
//    --jobs value.
//  * to_json() emits canonical bytes (sparse voxels sorted by index, cells
//    sorted by id, insertion-ordered keys), so a map written twice from the
//    same observations is the same file, golden pins hold, and round-trip
//    through radio_map_from_json() is exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "radiomap/grid.hpp"

namespace rpv::radiomap {

inline constexpr int kRadioMapSchemaVersion = 1;

// Per-serving-cell RSRP accumulator inside one voxel. Kept sorted by
// cell_id inside VoxelStats so merge and serialization are order-free.
struct CellStats {
  std::uint32_t cell_id = 0;
  std::uint64_t samples = 0;
  std::int64_t rsrp_milli_sum = 0;      // milli-dBm
  std::uint64_t rsrp_milli_sq_sum = 0;  // (milli-dBm)^2; fits ~1e6 samples

  bool operator==(const CellStats&) const = default;

  [[nodiscard]] double mean_rsrp_dbm() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(rsrp_milli_sum) /
                              (1000.0 * static_cast<double>(samples));
  }
  [[nodiscard]] double var_rsrp_db2() const;
};

struct VoxelStats {
  std::uint64_t samples = 0;  // measurement ticks observed here (~100 ms each)
  std::int64_t rsrp_milli_sum = 0;
  std::uint64_t rsrp_milli_sq_sum = 0;
  std::uint64_t capacity_kbps_sum = 0;
  std::uint64_t ho_triggers = 0;
  std::uint64_t rlf_count = 0;
  std::uint64_t losses = 0;    // radio packet losses attributed here
  std::uint64_t stall_us = 0;  // player stall time attributed here
  std::vector<CellStats> cells;  // sorted by cell_id

  bool operator==(const VoxelStats&) const = default;

  [[nodiscard]] bool empty() const {
    return samples == 0 && ho_triggers == 0 && rlf_count == 0 &&
           losses == 0 && stall_us == 0 && cells.empty();
  }
  [[nodiscard]] double mean_rsrp_dbm() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(rsrp_milli_sum) /
                              (1000.0 * static_cast<double>(samples));
  }
  [[nodiscard]] double var_rsrp_db2() const;
  [[nodiscard]] double mean_capacity_mbps() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(capacity_kbps_sum) /
                              (1000.0 * static_cast<double>(samples));
  }
  // HO triggers per measurement tick — the spatial HO-risk the predictor
  // prior and the planner consume.
  [[nodiscard]] double ho_risk() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(ho_triggers) /
                              static_cast<double>(samples);
  }
  [[nodiscard]] double rlf_risk() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(rlf_count) /
                              static_cast<double>(samples);
  }
  [[nodiscard]] double loss_per_tick() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(losses) /
                              static_cast<double>(samples);
  }
  [[nodiscard]] double stall_ms_per_tick() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(stall_us) /
                              (1000.0 * static_cast<double>(samples));
  }
};

class RadioMap {
 public:
  RadioMap() : voxels_(spec_.voxel_count()) {}
  explicit RadioMap(GridSpec spec);

  [[nodiscard]] const GridSpec& spec() const { return spec_; }

  // --- Observation feeds (positions outside the grid are dropped) ---
  void observe_measurement(const geo::Vec3& pos, std::uint32_t serving_cell,
                           double rsrp_dbm, double capacity_mbps,
                           bool ho_triggered);
  void observe_handover(const geo::Vec3& pos);
  void observe_rlf(const geo::Vec3& pos);
  void observe_loss(const geo::Vec3& pos);
  void observe_stall(const geo::Vec3& pos, double duration_ms);

  // --- Queries ---
  // Stats of the voxel containing `pos`; null when outside the grid.
  [[nodiscard]] const VoxelStats* at(const geo::Vec3& pos) const;
  [[nodiscard]] const VoxelStats& voxel(std::uint32_t index) const {
    return voxels_[index];
  }
  [[nodiscard]] std::uint64_t total_samples() const;
  [[nodiscard]] std::uint64_t observed_voxels() const;
  [[nodiscard]] bool empty() const { return observed_voxels() == 0; }

  // Integer-sum union of two maps over the same GridSpec (throws
  // std::invalid_argument on a spec mismatch). Associative, commutative,
  // order-independent — pinned by the property tests.
  void merge(const RadioMap& other);

  bool operator==(const RadioMap&) const = default;

  // Canonical JSON: schema header + spec + sparse non-empty voxels sorted
  // by index. dump() of the result is byte-stable.
  [[nodiscard]] json::Value to_json() const;
  // Compact canonical bytes (the golden-pin and artifact format).
  [[nodiscard]] std::string canonical_bytes() const { return to_json().dump(); }

 private:
  friend RadioMap radio_map_from_json(const json::Value& v);

  VoxelStats* mutable_at(const geo::Vec3& pos);

  GridSpec spec_{};
  std::vector<VoxelStats> voxels_;
};

// Strict loader: throws std::runtime_error on schema mismatch, malformed
// structure, out-of-range indices, or unsorted voxels/cells (a fuzz target —
// malformed input must throw, never crash).
[[nodiscard]] RadioMap radio_map_from_json(const json::Value& v);
[[nodiscard]] RadioMap radio_map_from_bytes(std::string_view text);

}  // namespace rpv::radiomap
