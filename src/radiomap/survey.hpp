// Warm-up survey sweep: a deterministic boustrophedon (lawnmower) flight
// covering a GridSpec's extent at a ladder of altitudes, so a few warm-up
// flights populate every altitude layer the planner will later score —
// including layers the operational mission itself never visits.
#pragma once

#include <vector>

#include "geo/trajectory.hpp"
#include "radiomap/grid.hpp"

namespace rpv::radiomap {

struct SurveyConfig {
  // Altitude ladder flown bottom-up; each entry is one full lawnmower pass.
  std::vector<double> altitudes_m = {30.0, 60.0, 90.0, 120.0};
  double speed_mps = 18.0;
  // Spacing between adjacent lawnmower rows; defaults to the voxel edge so
  // every horizontal voxel column is visited.
  double row_spacing_m = 0.0;  // 0 -> spec.voxel_xy_m
  double climb_speed_mps = 4.0;
};

// Build the survey trajectory over `spec`'s horizontal extent. Starts at the
// grid's minimum corner at the first altitude; rows run along x, alternating
// direction. Purely geometric and RNG-free.
[[nodiscard]] geo::Trajectory make_survey_trajectory(const GridSpec& spec,
                                                     const SurveyConfig& cfg = {});

}  // namespace rpv::radiomap
