#include "radiomap/survey.hpp"

namespace rpv::radiomap {

geo::Trajectory make_survey_trajectory(const GridSpec& spec,
                                       const SurveyConfig& cfg) {
  const double spacing =
      cfg.row_spacing_m > 0.0 ? cfg.row_spacing_m : spec.voxel_xy_m;
  const double x_lo = spec.origin.x + 0.5 * spec.voxel_xy_m;
  const double x_hi =
      spec.origin.x + (static_cast<double>(spec.nx) - 0.5) * spec.voxel_xy_m;
  const double y_lo = spec.origin.y + 0.5 * spec.voxel_xy_m;
  const double y_hi =
      spec.origin.y + (static_cast<double>(spec.ny) - 0.5) * spec.voxel_xy_m;

  geo::Trajectory t;
  t.move_to({x_lo, y_lo, 0.0}, cfg.speed_mps);
  bool left_to_right = true;
  for (const double alt : cfg.altitudes_m) {
    // Climb in place to the next altitude layer, then mow the extent.
    geo::Vec3 here = t.waypoints().back().pos;
    t.move_to({here.x, here.y, alt}, cfg.climb_speed_mps);
    for (double y = y_lo; y <= y_hi + 1e-9; y += spacing) {
      const double x_from = left_to_right ? x_lo : x_hi;
      const double x_to = left_to_right ? x_hi : x_lo;
      t.move_to({x_from, y, alt}, cfg.speed_mps);
      t.move_to({x_to, y, alt}, cfg.speed_mps);
      left_to_right = !left_to_right;
    }
  }
  return t;
}

}  // namespace rpv::radiomap
