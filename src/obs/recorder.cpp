#include "obs/recorder.hpp"

#include <fstream>
#include <stdexcept>

#include "obs/event_json.hpp"
#include "sim/validate.hpp"

namespace rpv::obs {

RingBufferRecorder::RingBufferRecorder(std::size_t capacity, std::uint64_t mask)
    : capacity_(capacity), mask_(mask) {
  rpv::validate(capacity_ > 0, "RingBufferRecorder capacity must be > 0");
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void RingBufferRecorder::on_event(const Event& e) {
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  // Full: overwrite the oldest slot.
  ring_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<Event> RingBufferRecorder::snapshot() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string to_jsonl(const std::vector<Event>& events) {
  std::string out;
  for (const Event& e : events) {
    out += event_to_json(e).dump(-1);
    out += '\n';
  }
  return out;
}

bool write_jsonl(const std::string& path, const std::vector<Event>& events) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string text = to_jsonl(events);
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  return f.good();
}

std::vector<Event> read_jsonl(const std::string& text) {
  std::vector<Event> out;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    ++line_no;
    const std::string_view line(text.data() + pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    try {
      out.push_back(event_from_json(json::parse(line)));
    } catch (const std::exception& e) {
      throw std::runtime_error("events.jsonl line " + std::to_string(line_no) +
                               ": " + e.what());
    }
  }
  return out;
}

}  // namespace rpv::obs
