// RingBufferRecorder — the bounded timeline sink behind Scenario::observe.
//
// Keeps the most recent `capacity` events (drop-oldest), so a long run
// degrades into "the last N events" instead of unbounded memory. The default
// interest mask is kTimelineKinds: everything except the per-packet firehose,
// which would dominate both memory and the exported JSONL without adding
// timeline value (the MetricsRegistry still counts those kinds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "obs/event_sink.hpp"

namespace rpv::obs {

class RingBufferRecorder final : public EventSink {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 17;

  explicit RingBufferRecorder(std::size_t capacity = kDefaultCapacity,
                              std::uint64_t mask = kTimelineKinds);

  void on_event(const Event& e) override;
  [[nodiscard]] std::uint64_t interest_mask() const override { return mask_; }

  // Events in arrival order, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const;
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  // Total accepted, including those since overwritten.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  // How many were overwritten by newer events.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  std::size_t capacity_;
  std::uint64_t mask_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  // index of the oldest event once the ring is full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

// --- JSONL timeline format --------------------------------------------------
// One compact canonical-JSON object per line; byte-identical for identical
// event streams, so `cmp` across --jobs values is a valid determinism check.

[[nodiscard]] std::string to_jsonl(const std::vector<Event>& events);
[[nodiscard]] bool write_jsonl(const std::string& path,
                               const std::vector<Event>& events);
// Throws std::runtime_error (with a line number) on malformed input.
[[nodiscard]] std::vector<Event> read_jsonl(const std::string& text);

}  // namespace rpv::obs
