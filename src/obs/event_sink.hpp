// EventSink + EventBus — the subscription side of rpv::obs.
//
// The bus keeps an aggregated interest mask (OR of every subscriber's
// interest_mask()), so when nothing wants a kind, publish() is one load,
// one test, and a branch — publishers additionally guard payload
// construction with bus->wants(kind) to keep the disabled path near-free.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "obs/event.hpp"

namespace rpv::obs {

class EventSink {
 public:
  virtual ~EventSink() = default;

  virtual void on_event(const Event& e) = 0;

  // Bitmask of EventKind bits this sink wants (kind_bit OR'ed together).
  // Sampled once at subscribe time; default is everything.
  [[nodiscard]] virtual std::uint64_t interest_mask() const { return kAllKinds; }
};

// Explicit "observe nothing" sink: subscribing it adds no interest bits, so
// the bus stays on the single-branch fast path.
class NullSink final : public EventSink {
 public:
  void on_event(const Event&) override {}
  [[nodiscard]] std::uint64_t interest_mask() const override { return 0; }
};

// Adapter sink wrapping a callback; used e.g. by Session to relay
// link-measurement events into rpv::predict without a bespoke class.
class FunctionSink final : public EventSink {
 public:
  FunctionSink(std::uint64_t mask, std::function<void(const Event&)> fn)
      : mask_(mask), fn_(std::move(fn)) {}

  void on_event(const Event& e) override { fn_(e); }
  [[nodiscard]] std::uint64_t interest_mask() const override { return mask_; }

 private:
  std::uint64_t mask_;
  std::function<void(const Event&)> fn_;
};

// One bus per session. Single-threaded (the simulation is a DES); sequence
// numbers are assigned in publish order, which the deterministic event loop
// makes reproducible for any --jobs value.
class EventBus {
 public:
  // Sinks are borrowed, not owned; they must outlive the bus's publishers.
  // The sink's interest mask is sampled here, once: wants() already assumes
  // masks are fixed after subscription, and caching it makes the per-event
  // fan-out loop branch on a local array instead of a virtual call.
  void subscribe(EventSink* sink) {
    sinks_.push_back(sink);
    sink_masks_.push_back(sink->interest_mask());
    mask_ |= sink_masks_.back();
  }

  // True when at least one subscriber wants this kind. Publishers use this
  // to skip payload construction entirely on the disabled path.
  [[nodiscard]] bool wants(EventKind k) const {
    return (mask_ & kind_bit(k)) != 0;
  }

  void publish(Component c, EventKind k, sim::TimePoint t, Payload payload = {}) {
    const std::uint64_t bit = kind_bit(k);
    if ((mask_ & bit) == 0) return;
    Event e{t, next_seq_++, c, k, std::move(payload)};
    for (std::size_t i = 0; i < sinks_.size(); ++i) {
      if (sink_masks_[i] & bit) sinks_[i]->on_event(e);
    }
  }

  [[nodiscard]] std::uint64_t published() const { return next_seq_; }

 private:
  std::vector<EventSink*> sinks_;
  std::vector<std::uint64_t> sink_masks_;
  std::uint64_t mask_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace rpv::obs
