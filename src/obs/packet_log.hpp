// PacketLog — obs-layer replacement for the old net::PacketCapture side
// channel. Instead of Session threading a capture object through the radio
// and WAN paths, this sink subscribes to the packet-level events those
// components already publish and rebuilds the same per-packet ledger.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/event.hpp"
#include "obs/event_sink.hpp"

namespace rpv::obs {

struct PacketRecord {
  std::uint64_t id = 0;
  std::uint8_t kind = 0;  // net::PacketKind as int
  std::uint32_t size_bytes = 0;
  std::uint32_t frame_id = 0;
  std::uint16_t transport_seq = 0;
  sim::TimePoint t;       // delivery (or loss) time
  double owd_ms = 0.0;    // deliveries only
  bool lost = false;
};

class PacketLog final : public EventSink {
 public:
  static constexpr std::size_t kDefaultMaxRecords = 2'000'000;

  explicit PacketLog(std::size_t max_records = kDefaultMaxRecords)
      : max_records_(max_records) {}

  void on_event(const Event& e) override {
    const auto* p = std::get_if<PacketPayload>(&e.payload);
    if (p == nullptr) return;
    const bool lost = e.kind != EventKind::kPacketReceived;
    if (e.kind == EventKind::kPacketLost) ++lost_count_;
    if (e.kind == EventKind::kWanDrop) ++wan_drop_count_;
    if (records_.size() >= max_records_) {
      ++dropped_records_;
      return;
    }
    records_.push_back({p->id, p->kind, p->size_bytes, p->frame_id,
                        p->transport_seq, e.t, p->owd_ms, lost});
  }

  [[nodiscard]] std::uint64_t interest_mask() const override {
    return kind_bit(EventKind::kPacketReceived) |
           kind_bit(EventKind::kPacketLost) | kind_bit(EventKind::kWanDrop);
  }

  [[nodiscard]] const std::vector<PacketRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t count() const { return records_.size(); }
  // Radio/buffer losses (kPacketLost); WAN-leg drops are counted apart so the
  // ledger reconciles against SessionReport's radio_losses + buffer_drops.
  [[nodiscard]] std::uint64_t lost_count() const { return lost_count_; }
  [[nodiscard]] std::uint64_t wan_drop_count() const { return wan_drop_count_; }
  // Records not retained because the ledger hit max_records.
  [[nodiscard]] std::uint64_t dropped_records() const {
    return dropped_records_;
  }

 private:
  std::size_t max_records_;
  std::vector<PacketRecord> records_;
  std::uint64_t lost_count_ = 0;
  std::uint64_t wan_drop_count_ = 0;
  std::uint64_t dropped_records_ = 0;
};

}  // namespace rpv::obs
