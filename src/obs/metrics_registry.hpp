// MetricsRegistry — the aggregate sink: per-(component, kind) counters and a
// fixed set of histograms summarized into SessionReport (schema v3).
//
// Counters and histogram layouts are fixed at compile time so summaries are
// deterministic: the same event stream always yields the same counter order
// and the same bucket counts, and the JSON round-trips byte-identically.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "obs/event_sink.hpp"

namespace rpv::obs {

struct Counter {
  std::string name;  // "component/kind", e.g. "cellular/handover-start"
  std::uint64_t value = 0;
  bool operator==(const Counter&) const = default;
};

// Fixed-bucket histogram. Bucket i counts samples with x < edges[i] (a sample
// exactly on an edge falls into the next bucket); the last bucket counts
// x >= edges.back(). counts.size() == edges.size() + 1.
struct Histogram {
  std::string name;
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;

  Histogram() = default;
  Histogram(std::string name_, std::vector<double> edges_);

  void add(double x);
  // Fold another histogram with identical name and edges into this one
  // (bucket-wise count addition). Merging is commutative and associative,
  // so any fold order over per-shard histograms yields the same result.
  // Throws std::invalid_argument on a layout mismatch.
  void merge(const Histogram& other);
  bool operator==(const Histogram&) const = default;
};

struct MetricsSummary {
  std::vector<Counter> counters;      // nonzero only, component-major order
  std::vector<Histogram> histograms;  // fixed set, always present
  bool operator==(const MetricsSummary&) const = default;
};

class MetricsRegistry final : public EventSink {
 public:
  MetricsRegistry();

  void on_event(const Event& e) override;
  // Counts everything: counters are cheap and the per-packet kinds are
  // exactly what the rate histograms need.
  [[nodiscard]] std::uint64_t interest_mask() const override { return kAllKinds; }

  [[nodiscard]] std::uint64_t count(Component c, EventKind k) const {
    return counts_[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)];
  }
  [[nodiscard]] MetricsSummary summary() const;

  // Fold another registry into this one: counters and histogram buckets add
  // element-wise. The layouts are fixed at compile time, so merging is
  // total, commutative and associative — fleet shards merge in shard-index
  // order and the result is independent of which worker filled which shard.
  void merge(const MetricsRegistry& other);

 private:
  std::array<std::array<std::uint64_t, kEventKindCount>, kComponentCount>
      counts_{};
  Histogram het_ms_;
  Histogram owd_ms_;
  Histogram stall_ms_;
  Histogram queue_kbytes_;
  Histogram target_rate_mbps_;
};

}  // namespace rpv::obs
