#include "obs/metrics_registry.hpp"

#include "sim/validate.hpp"

namespace rpv::obs {

Histogram::Histogram(std::string name_, std::vector<double> edges_)
    : name(std::move(name_)), edges(std::move(edges_)) {
  rpv::validate(!edges.empty(), "Histogram needs at least one bucket edge");
  for (std::size_t i = 1; i < edges.size(); ++i) {
    rpv::validate(edges[i - 1] < edges[i], "Histogram edges must ascend");
  }
  counts.assign(edges.size() + 1, 0);
}

void Histogram::add(double x) {
  std::size_t i = 0;
  while (i < edges.size() && x >= edges[i]) ++i;
  ++counts[i];
  ++total;
}

void Histogram::merge(const Histogram& other) {
  rpv::validate(name == other.name, "Histogram::merge: name mismatch");
  rpv::validate(edges == other.edges, "Histogram::merge: edge mismatch");
  rpv::validate(counts.size() == other.counts.size(),
                "Histogram::merge: bucket count mismatch");
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  total += other.total;
}

MetricsRegistry::MetricsRegistry()
    : het_ms_("het_ms", {20, 50, 100, 200, 500, 1000, 2000}),
      owd_ms_("owd_ms", {20, 50, 100, 150, 200, 300, 500, 1000, 2000}),
      stall_ms_("stall_ms", {300, 500, 1000, 2000, 5000}),
      queue_kbytes_("queue_kbytes", {16, 64, 256, 1024, 4096}),
      target_rate_mbps_("target_rate_mbps", {2, 4, 8, 12, 16, 24, 32}) {}

void MetricsRegistry::on_event(const Event& e) {
  ++counts_[static_cast<std::size_t>(e.component)]
           [static_cast<std::size_t>(e.kind)];
  switch (e.kind) {
    case EventKind::kHandoverStart:
      if (const auto* h = std::get_if<HandoverPayload>(&e.payload)) {
        het_ms_.add(static_cast<double>(h->het_us) / 1000.0);
      }
      break;
    case EventKind::kPacketReceived:
      if (const auto* p = std::get_if<PacketPayload>(&e.payload)) {
        owd_ms_.add(p->owd_ms);
      }
      break;
    case EventKind::kStall:
      if (const auto* s = std::get_if<StallPayload>(&e.payload)) {
        stall_ms_.add(s->duration_ms);
      }
      break;
    case EventKind::kQueueDepth:
      if (const auto* q = std::get_if<QueuePayload>(&e.payload)) {
        queue_kbytes_.add(static_cast<double>(q->queued_bytes) / 1024.0);
      }
      break;
    case EventKind::kTargetRate:
      if (const auto* r = std::get_if<RatePayload>(&e.payload)) {
        target_rate_mbps_.add(r->bps / 1e6);
      }
      break;
    default:
      break;
  }
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    for (std::size_t k = 0; k < kEventKindCount; ++k) {
      counts_[c][k] += other.counts_[c][k];
    }
  }
  het_ms_.merge(other.het_ms_);
  owd_ms_.merge(other.owd_ms_);
  stall_ms_.merge(other.stall_ms_);
  queue_kbytes_.merge(other.queue_kbytes_);
  target_rate_mbps_.merge(other.target_rate_mbps_);
}

MetricsSummary MetricsRegistry::summary() const {
  MetricsSummary s;
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    for (std::size_t k = 0; k < kEventKindCount; ++k) {
      if (counts_[c][k] == 0) continue;
      std::string name(component_name(static_cast<Component>(c)));
      name += '/';
      name += event_kind_name(static_cast<EventKind>(k));
      s.counters.push_back({std::move(name), counts_[c][k]});
    }
  }
  s.histograms = {het_ms_, owd_ms_, stall_ms_, queue_kbytes_, target_rate_mbps_};
  return s;
}

}  // namespace rpv::obs
