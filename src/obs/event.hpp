// rpv::obs — the unified event-stream observability layer.
//
// The paper's analyses (HO timelines, latency CDFs, per-flight timelines)
// correlate packet traces, RRC logs, and application logs collected on
// separate devices. The simulator's counterpart is one typed event stream:
// every component publishes small, allocation-light Event records onto a
// per-session EventBus, and sinks (ring-buffer recorder, metrics registry,
// packet log) consume what they subscribe to. Events carry the monotonic
// simulation timestamp plus a deterministic sequence number, never wall
// clock, so a recorded timeline is byte-identical for any --jobs value.
//
// Layering: obs sits just above rpv::sim and knows nothing about cellular,
// cc, or pipeline types — publishers convert their domain structs into the
// payload PODs defined here, and consumers (e.g. the rpv::predict relay)
// convert back. This keeps the dependency graph acyclic while every layer
// publishes into the same stream.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "sim/time.hpp"

namespace rpv::obs {

// Who published the event. Kept dense so sinks can index fixed arrays.
enum class Component : std::uint8_t {
  kCellular,   // radio link: measurements, handovers, RLF
  kLinkQueue,  // the deep uplink buffer
  kCc,         // congestion controller
  kSender,     // video sender pipeline
  kReceiver,   // video receiver pipeline
  kWan,        // wide-area path
  kFault,      // fault injector
  kSession,    // session-level bookkeeping
  kBond,       // bonded link manager (rpv::bond)
  kSat,        // LEO satellite / aerial-mesh paths (rpv::sat)
  kPlanner,    // connectivity-aware trajectory planner (rpv::uav)
};
inline constexpr int kComponentCount = 11;

// What happened. At most 64 kinds so a subscription is one uint64 bitmask.
enum class EventKind : std::uint8_t {
  kLinkMeasurement,  // RRC measurement tick (RSRP / capacity snapshot)
  kHandoverStart,    // A3 evaluation triggered a handover
  kHandoverEnd,      // handover execution finished
  kRlf,              // radio link failure -> RRC re-establishment
  kQueueEnqueue,     // packet accepted by the uplink buffer
  kQueueDrop,        // overflow or AQM drop at the uplink buffer
  kQueueDepth,       // periodic uplink-buffer depth snapshot
  kTargetRate,       // CC target bitrate changed
  kOveruse,          // CC bandwidth signal changed (GCC overuse detector)
  kFrameEncoded,     // sender encoded one frame
  kFrameDecoded,     // receiver released one frame from the jitter buffer
  kPacketSent,       // sender put a packet on the wire
  kPacketReceived,   // receiver got a media/parity packet
  kPacketLost,       // packet lost on the radio or in the buffer
  kStall,            // player froze longer than the stall threshold
  kWanDrop,          // packet dropped on the WAN leg
  kFaultInjected,    // scripted fault fired
  kFaultEnded,       // scripted fault window closed
  kPathSwitch,       // bond: traffic moved to another operator link
  kFecRateChange,    // bond: adaptive FEC retuned the parity rate
  kReorderFlush,     // bond: receiver reorder window flushed out of order
  kClassPreempt,     // bond: QoS class diverted around a loaded path
  kSatPassHo,        // sat: satellite-pass handover (short interruption)
  kSatObstructionStart,  // sat: obstruction / rain-fade outage opened
  kSatObstructionEnd,    // sat: obstruction / rain-fade outage closed
  kReplan,           // uav: planner chose a flight path through the radio map
};
inline constexpr int kEventKindCount = 26;

[[nodiscard]] constexpr std::uint64_t kind_bit(EventKind k) {
  return std::uint64_t{1} << static_cast<unsigned>(k);
}
inline constexpr std::uint64_t kAllKinds =
    (std::uint64_t{1} << kEventKindCount) - 1;
// Per-packet kinds: too chatty for a timeline recording, but counted by the
// metrics registry and consumed by the packet log.
inline constexpr std::uint64_t kPacketKinds = kind_bit(EventKind::kQueueEnqueue) |
                                              kind_bit(EventKind::kPacketSent) |
                                              kind_bit(EventKind::kPacketReceived) |
                                              kind_bit(EventKind::kPacketLost) |
                                              kind_bit(EventKind::kWanDrop);
// The Fig.-8-style timeline set: everything except the per-packet firehose
// (losses and WAN drops are rare enough to keep).
inline constexpr std::uint64_t kTimelineKinds =
    kAllKinds & ~(kind_bit(EventKind::kQueueEnqueue) |
                  kind_bit(EventKind::kPacketSent) |
                  kind_bit(EventKind::kPacketReceived));

[[nodiscard]] std::string_view component_name(Component c);
[[nodiscard]] std::string_view event_kind_name(EventKind k);
[[nodiscard]] std::optional<Component> component_from_name(std::string_view name);
[[nodiscard]] std::optional<EventKind> event_kind_from_name(std::string_view name);

// --- Payloads ---------------------------------------------------------------
// Small PODs mirroring the publishing component's domain structs. All
// payloads round-trip through JSONL losslessly (see event_json).

// kLinkMeasurement — the modem's per-tick snapshot (cellular::LinkMeasurement).
struct MeasurementPayload {
  std::uint32_t serving_cell = 0;
  double serving_rsrp_dbm = 0.0;
  std::uint32_t neighbor_cell = 0;
  double neighbor_rsrp_dbm = -200.0;
  double capacity_mbps = 0.0;
  double queuing_delay_ms = 0.0;
  bool in_handover = false;
  bool ho_triggered = false;
  std::int64_t het_us = 0;
  bool operator==(const MeasurementPayload&) const = default;
};

// kHandoverStart / kHandoverEnd / kRlf.
struct HandoverPayload {
  std::uint32_t source_cell = 0;
  std::uint32_t target_cell = 0;
  std::int64_t het_us = 0;  // execution/outage time
  bool operator==(const HandoverPayload&) const = default;
};

// kQueueEnqueue / kQueueDrop / kQueueDepth.
struct QueuePayload {
  std::uint64_t packet_id = 0;
  std::uint32_t size_bytes = 0;
  std::uint64_t queued_bytes = 0;  // depth after the operation
  std::uint32_t queued_packets = 0;
  // kQueueDrop: 0 = buffer overflow, 1 = AQM (CoDel) drop.
  std::uint8_t reason = 0;
  bool operator==(const QueuePayload&) const = default;
};

// kTargetRate.
struct RatePayload {
  double bps = 0.0;
  bool operator==(const RatePayload&) const = default;
};

// kOveruse — the detector's BandwidthSignal as an int (0 normal, 1 overuse,
// 2 underuse), kept numeric so obs does not depend on rpv::cc.
struct SignalPayload {
  std::int32_t signal = 0;
  bool operator==(const SignalPayload&) const = default;
};

// kFrameEncoded / kFrameDecoded.
struct FramePayload {
  std::uint32_t frame_id = 0;
  std::uint32_t bytes = 0;
  bool keyframe = false;
  bool damaged = false;  // decode side only
  bool operator==(const FramePayload&) const = default;
};

// kPacketSent / kPacketReceived / kPacketLost / kWanDrop.
struct PacketPayload {
  std::uint64_t id = 0;
  std::uint8_t kind = 0;  // net::PacketKind as int
  std::uint32_t size_bytes = 0;
  std::uint32_t frame_id = 0;
  std::uint16_t transport_seq = 0;
  double owd_ms = 0.0;  // receive side only
  bool operator==(const PacketPayload&) const = default;
};

// kStall.
struct StallPayload {
  double duration_ms = 0.0;
  bool operator==(const StallPayload&) const = default;
};

// kFaultInjected / kFaultEnded.
struct FaultPayload {
  std::uint8_t kind = 0;  // fault::FaultKind as int
  std::int64_t duration_us = 0;
  double magnitude = 0.0;
  bool operator==(const FaultPayload&) const = default;
};

// kPathSwitch — the bonded LinkManager moved a traffic class to another path.
// `reason`: 0 = path down (reactive failover), 1 = predicted HO (proactive),
// 2 = faster path available, 3 = probation ended (path re-admitted).
struct PathSwitchPayload {
  std::uint8_t from_path = 0;
  std::uint8_t to_path = 0;
  std::uint8_t reason = 0;
  std::uint8_t traffic_class = 0;  // bond::TrafficClass as int
  bool operator==(const PathSwitchPayload&) const = default;
};

// kFecRateChange — the adaptive FEC controller retuned the parity group size
// (smaller group = more parity overhead = more protection).
struct FecRatePayload {
  std::int32_t group_size = 0;
  std::int32_t prev_group_size = 0;
  double loss_ewma = 0.0;
  bool ho_armed = false;
  bool operator==(const FecRatePayload&) const = default;
};

// kReorderFlush — the receive-side reorder window released packets without
// waiting for the gap to fill. `reason`: 0 = hold timeout, 1 = overflow,
// 2 = end-of-run drain.
struct ReorderFlushPayload {
  std::uint32_t released = 0;
  std::uint8_t reason = 0;
  double hold_ms = 0.0;
  bool operator==(const ReorderFlushPayload&) const = default;
};

// kClassPreempt — a high-priority class (C2/telemetry) was diverted off the
// video-loaded path; published on diversion state changes, not per packet.
struct PreemptPayload {
  std::uint8_t traffic_class = 0;
  std::uint8_t from_path = 0;
  std::uint8_t to_path = 0;
  double queue_delay_ms = 0.0;  // standing delay of the path vacated
  bool operator==(const PreemptPayload&) const = default;
};

// kSatPassHo — the serving LEO satellite set, traffic re-routes to the next
// pass; a short, deterministic interruption (the Starlink "15-second
// reconfiguration" cadence).
struct SatPassPayload {
  std::uint32_t pass_index = 0;
  std::int64_t interruption_us = 0;
  bool operator==(const SatPassPayload&) const = default;
};

// kSatObstructionStart / kSatObstructionEnd — an obstruction or rain-fade
// window. `kind`: 0 = obstruction, 1 = rain fade. `magnitude` is the
// capacity multiplier in effect during the window (0 = hard outage).
struct SatOutagePayload {
  std::uint8_t kind = 0;
  std::int64_t duration_us = 0;
  double magnitude = 0.0;
  bool operator==(const SatOutagePayload&) const = default;
};

// kReplan — the connectivity-aware planner (rpv::uav) selected the flight
// path for a kPlanned mission: how many candidates it scored, which won,
// and the map-predicted stall cost of the mission vs. the chosen path.
struct ReplanPayload {
  std::uint32_t candidates = 0;
  std::uint32_t selected = 0;  // 0 = the unmodified mission
  double predicted_stall_ms_direct = 0.0;
  double predicted_stall_ms_selected = 0.0;
  double deviation_m = 0.0;  // mean displacement of the chosen path
  bool operator==(const ReplanPayload&) const = default;
};

using Payload =
    std::variant<std::monostate, MeasurementPayload, HandoverPayload,
                 QueuePayload, RatePayload, SignalPayload, FramePayload,
                 PacketPayload, StallPayload, FaultPayload, PathSwitchPayload,
                 FecRatePayload, ReorderFlushPayload, PreemptPayload,
                 SatPassPayload, SatOutagePayload, ReplanPayload>;

// One record on the stream. `seq` is assigned by the bus in publish order;
// inside one (single-threaded, deterministic) simulation, sorting by
// (t, seq) totally orders the stream, and the order is reproducible for any
// worker count because each run owns its bus.
struct Event {
  sim::TimePoint t;
  std::uint64_t seq = 0;
  Component component = Component::kSession;
  EventKind kind = EventKind::kLinkMeasurement;
  Payload payload;
  bool operator==(const Event&) const = default;
};

// Human-readable one-line rendering, e.g.
//   "t=12.345s [cellular] handover-start cell 3 -> 5 (het 120.0 ms)".
[[nodiscard]] std::string describe(const Event& e);

}  // namespace rpv::obs
