// Event <-> canonical JSON. One event dumps to one compact object — the unit
// of the events.jsonl timeline format. Field order is fixed, so identical
// event streams serialize to identical bytes.
#pragma once

#include "json/json.hpp"
#include "obs/event.hpp"

namespace rpv::obs {

// {"t_us": ..., "seq": ..., "component": "...", "kind": "...", "p": {...}}.
// The "p" member is omitted for payload-less events.
[[nodiscard]] json::Value event_to_json(const Event& e);

// Inverse; throws std::runtime_error on unknown names or a payload that does
// not match the kind.
[[nodiscard]] Event event_from_json(const json::Value& v);

}  // namespace rpv::obs
