#include "obs/event.hpp"

#include <array>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

#include "obs/event_json.hpp"

namespace rpv::obs {

namespace {

constexpr std::array<std::string_view, kComponentCount> kComponentNames = {
    "cellular", "link-queue", "cc",  "sender",
    "receiver", "wan",        "fault", "session", "bond", "sat", "planner",
};

constexpr std::array<std::string_view, kEventKindCount> kKindNames = {
    "link-measurement", "handover-start", "handover-end", "rlf",
    "queue-enqueue",    "queue-drop",     "queue-depth",  "target-rate",
    "overuse",          "frame-encoded",  "frame-decoded", "packet-sent",
    "packet-received",  "packet-lost",    "stall",        "wan-drop",
    "fault-injected",   "fault-ended",    "path-switch",  "fec-rate-change",
    "reorder-flush",    "class-preempt",  "sat-pass-ho",
    "sat-obstruction-start", "sat-obstruction-end", "replan",
};

std::string fmt(const char* format, ...) {
  char buf[160];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string_view component_name(Component c) {
  return kComponentNames[static_cast<std::size_t>(c)];
}

std::string_view event_kind_name(EventKind k) {
  return kKindNames[static_cast<std::size_t>(k)];
}

std::optional<Component> component_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kComponentNames.size(); ++i) {
    if (kComponentNames[i] == name) return static_cast<Component>(i);
  }
  return std::nullopt;
}

std::optional<EventKind> event_kind_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (kKindNames[i] == name) return static_cast<EventKind>(i);
  }
  return std::nullopt;
}

// --- JSON -------------------------------------------------------------------

namespace {

json::Value payload_to_json(const Payload& p) {
  json::Value v = json::Value::object();
  if (const auto* m = std::get_if<MeasurementPayload>(&p)) {
    v.set("serving_cell", std::uint64_t{m->serving_cell})
        .set("serving_rsrp_dbm", m->serving_rsrp_dbm)
        .set("neighbor_cell", std::uint64_t{m->neighbor_cell})
        .set("neighbor_rsrp_dbm", m->neighbor_rsrp_dbm)
        .set("capacity_mbps", m->capacity_mbps)
        .set("queuing_delay_ms", m->queuing_delay_ms)
        .set("in_handover", m->in_handover)
        .set("ho_triggered", m->ho_triggered)
        .set("het_us", m->het_us);
  } else if (const auto* h = std::get_if<HandoverPayload>(&p)) {
    v.set("source_cell", std::uint64_t{h->source_cell})
        .set("target_cell", std::uint64_t{h->target_cell})
        .set("het_us", h->het_us);
  } else if (const auto* q = std::get_if<QueuePayload>(&p)) {
    v.set("packet_id", q->packet_id)
        .set("size_bytes", std::uint64_t{q->size_bytes})
        .set("queued_bytes", q->queued_bytes)
        .set("queued_packets", std::uint64_t{q->queued_packets})
        .set("reason", std::uint64_t{q->reason});
  } else if (const auto* r = std::get_if<RatePayload>(&p)) {
    v.set("bps", r->bps);
  } else if (const auto* s = std::get_if<SignalPayload>(&p)) {
    v.set("signal", std::int64_t{s->signal});
  } else if (const auto* f = std::get_if<FramePayload>(&p)) {
    v.set("frame_id", std::uint64_t{f->frame_id})
        .set("bytes", std::uint64_t{f->bytes})
        .set("keyframe", f->keyframe)
        .set("damaged", f->damaged);
  } else if (const auto* pk = std::get_if<PacketPayload>(&p)) {
    v.set("id", pk->id)
        .set("kind", std::uint64_t{pk->kind})
        .set("size_bytes", std::uint64_t{pk->size_bytes})
        .set("frame_id", std::uint64_t{pk->frame_id})
        .set("transport_seq", std::uint64_t{pk->transport_seq})
        .set("owd_ms", pk->owd_ms);
  } else if (const auto* st = std::get_if<StallPayload>(&p)) {
    v.set("duration_ms", st->duration_ms);
  } else if (const auto* fa = std::get_if<FaultPayload>(&p)) {
    v.set("kind", std::uint64_t{fa->kind})
        .set("duration_us", fa->duration_us)
        .set("magnitude", fa->magnitude);
  } else if (const auto* ps = std::get_if<PathSwitchPayload>(&p)) {
    v.set("from_path", std::uint64_t{ps->from_path})
        .set("to_path", std::uint64_t{ps->to_path})
        .set("reason", std::uint64_t{ps->reason})
        .set("traffic_class", std::uint64_t{ps->traffic_class});
  } else if (const auto* fr = std::get_if<FecRatePayload>(&p)) {
    v.set("group_size", std::int64_t{fr->group_size})
        .set("prev_group_size", std::int64_t{fr->prev_group_size})
        .set("loss_ewma", fr->loss_ewma)
        .set("ho_armed", fr->ho_armed);
  } else if (const auto* rf = std::get_if<ReorderFlushPayload>(&p)) {
    v.set("released", std::uint64_t{rf->released})
        .set("reason", std::uint64_t{rf->reason})
        .set("hold_ms", rf->hold_ms);
  } else if (const auto* pr = std::get_if<PreemptPayload>(&p)) {
    v.set("traffic_class", std::uint64_t{pr->traffic_class})
        .set("from_path", std::uint64_t{pr->from_path})
        .set("to_path", std::uint64_t{pr->to_path})
        .set("queue_delay_ms", pr->queue_delay_ms);
  } else if (const auto* sp = std::get_if<SatPassPayload>(&p)) {
    v.set("pass_index", std::uint64_t{sp->pass_index})
        .set("interruption_us", sp->interruption_us);
  } else if (const auto* so = std::get_if<SatOutagePayload>(&p)) {
    v.set("kind", std::uint64_t{so->kind})
        .set("duration_us", so->duration_us)
        .set("magnitude", so->magnitude);
  } else if (const auto* rp = std::get_if<ReplanPayload>(&p)) {
    v.set("candidates", std::uint64_t{rp->candidates})
        .set("selected", std::uint64_t{rp->selected})
        .set("predicted_stall_ms_direct", rp->predicted_stall_ms_direct)
        .set("predicted_stall_ms_selected", rp->predicted_stall_ms_selected)
        .set("deviation_m", rp->deviation_m);
  }
  return v;
}

MeasurementPayload measurement_from_json(const json::Value& v) {
  MeasurementPayload m;
  m.serving_cell = static_cast<std::uint32_t>(v.at("serving_cell").as_u64());
  m.serving_rsrp_dbm = v.at("serving_rsrp_dbm").as_double();
  m.neighbor_cell = static_cast<std::uint32_t>(v.at("neighbor_cell").as_u64());
  m.neighbor_rsrp_dbm = v.at("neighbor_rsrp_dbm").as_double();
  m.capacity_mbps = v.at("capacity_mbps").as_double();
  m.queuing_delay_ms = v.at("queuing_delay_ms").as_double();
  m.in_handover = v.at("in_handover").as_bool();
  m.ho_triggered = v.at("ho_triggered").as_bool();
  m.het_us = v.at("het_us").as_i64();
  return m;
}

HandoverPayload handover_from_json(const json::Value& v) {
  HandoverPayload h;
  h.source_cell = static_cast<std::uint32_t>(v.at("source_cell").as_u64());
  h.target_cell = static_cast<std::uint32_t>(v.at("target_cell").as_u64());
  h.het_us = v.at("het_us").as_i64();
  return h;
}

QueuePayload queue_from_json(const json::Value& v) {
  QueuePayload q;
  q.packet_id = v.at("packet_id").as_u64();
  q.size_bytes = static_cast<std::uint32_t>(v.at("size_bytes").as_u64());
  q.queued_bytes = v.at("queued_bytes").as_u64();
  q.queued_packets = static_cast<std::uint32_t>(v.at("queued_packets").as_u64());
  q.reason = static_cast<std::uint8_t>(v.at("reason").as_u64());
  return q;
}

FramePayload frame_from_json(const json::Value& v) {
  FramePayload f;
  f.frame_id = static_cast<std::uint32_t>(v.at("frame_id").as_u64());
  f.bytes = static_cast<std::uint32_t>(v.at("bytes").as_u64());
  f.keyframe = v.at("keyframe").as_bool();
  f.damaged = v.at("damaged").as_bool();
  return f;
}

PacketPayload packet_from_json(const json::Value& v) {
  PacketPayload p;
  p.id = v.at("id").as_u64();
  p.kind = static_cast<std::uint8_t>(v.at("kind").as_u64());
  p.size_bytes = static_cast<std::uint32_t>(v.at("size_bytes").as_u64());
  p.frame_id = static_cast<std::uint32_t>(v.at("frame_id").as_u64());
  p.transport_seq = static_cast<std::uint16_t>(v.at("transport_seq").as_u64());
  p.owd_ms = v.at("owd_ms").as_double();
  return p;
}

FaultPayload fault_from_json(const json::Value& v) {
  FaultPayload f;
  f.kind = static_cast<std::uint8_t>(v.at("kind").as_u64());
  f.duration_us = v.at("duration_us").as_i64();
  f.magnitude = v.at("magnitude").as_double();
  return f;
}

Payload payload_from_json(EventKind k, const json::Value* p) {
  if (p == nullptr) return {};
  switch (k) {
    case EventKind::kLinkMeasurement:
      return measurement_from_json(*p);
    case EventKind::kHandoverStart:
    case EventKind::kHandoverEnd:
    case EventKind::kRlf:
      return handover_from_json(*p);
    case EventKind::kQueueEnqueue:
    case EventKind::kQueueDrop:
    case EventKind::kQueueDepth:
      return queue_from_json(*p);
    case EventKind::kTargetRate:
      return RatePayload{p->at("bps").as_double()};
    case EventKind::kOveruse:
      return SignalPayload{static_cast<std::int32_t>(p->at("signal").as_i64())};
    case EventKind::kFrameEncoded:
    case EventKind::kFrameDecoded:
      return frame_from_json(*p);
    case EventKind::kPacketSent:
    case EventKind::kPacketReceived:
    case EventKind::kPacketLost:
    case EventKind::kWanDrop:
      return packet_from_json(*p);
    case EventKind::kStall:
      return StallPayload{p->at("duration_ms").as_double()};
    case EventKind::kFaultInjected:
    case EventKind::kFaultEnded:
      return fault_from_json(*p);
    case EventKind::kPathSwitch: {
      PathSwitchPayload ps;
      ps.from_path = static_cast<std::uint8_t>(p->at("from_path").as_u64());
      ps.to_path = static_cast<std::uint8_t>(p->at("to_path").as_u64());
      ps.reason = static_cast<std::uint8_t>(p->at("reason").as_u64());
      ps.traffic_class =
          static_cast<std::uint8_t>(p->at("traffic_class").as_u64());
      return ps;
    }
    case EventKind::kFecRateChange: {
      FecRatePayload fr;
      fr.group_size = static_cast<std::int32_t>(p->at("group_size").as_i64());
      fr.prev_group_size =
          static_cast<std::int32_t>(p->at("prev_group_size").as_i64());
      fr.loss_ewma = p->at("loss_ewma").as_double();
      fr.ho_armed = p->at("ho_armed").as_bool();
      return fr;
    }
    case EventKind::kReorderFlush: {
      ReorderFlushPayload rf;
      rf.released = static_cast<std::uint32_t>(p->at("released").as_u64());
      rf.reason = static_cast<std::uint8_t>(p->at("reason").as_u64());
      rf.hold_ms = p->at("hold_ms").as_double();
      return rf;
    }
    case EventKind::kClassPreempt: {
      PreemptPayload pr;
      pr.traffic_class =
          static_cast<std::uint8_t>(p->at("traffic_class").as_u64());
      pr.from_path = static_cast<std::uint8_t>(p->at("from_path").as_u64());
      pr.to_path = static_cast<std::uint8_t>(p->at("to_path").as_u64());
      pr.queue_delay_ms = p->at("queue_delay_ms").as_double();
      return pr;
    }
    case EventKind::kSatPassHo: {
      SatPassPayload sp;
      sp.pass_index = static_cast<std::uint32_t>(p->at("pass_index").as_u64());
      sp.interruption_us = p->at("interruption_us").as_i64();
      return sp;
    }
    case EventKind::kSatObstructionStart:
    case EventKind::kSatObstructionEnd: {
      SatOutagePayload so;
      so.kind = static_cast<std::uint8_t>(p->at("kind").as_u64());
      so.duration_us = p->at("duration_us").as_i64();
      so.magnitude = p->at("magnitude").as_double();
      return so;
    }
    case EventKind::kReplan: {
      ReplanPayload rp;
      rp.candidates = static_cast<std::uint32_t>(p->at("candidates").as_u64());
      rp.selected = static_cast<std::uint32_t>(p->at("selected").as_u64());
      rp.predicted_stall_ms_direct =
          p->at("predicted_stall_ms_direct").as_double();
      rp.predicted_stall_ms_selected =
          p->at("predicted_stall_ms_selected").as_double();
      rp.deviation_m = p->at("deviation_m").as_double();
      return rp;
    }
  }
  throw std::runtime_error("obs: unknown event kind in payload");
}

}  // namespace

json::Value event_to_json(const Event& e) {
  json::Value v = json::Value::object();
  v.set("t_us", e.t.us())
      .set("seq", e.seq)
      .set("component", std::string(component_name(e.component)))
      .set("kind", std::string(event_kind_name(e.kind)));
  if (!std::holds_alternative<std::monostate>(e.payload)) {
    v.set("p", payload_to_json(e.payload));
  }
  return v;
}

Event event_from_json(const json::Value& v) {
  Event e;
  e.t = sim::TimePoint::from_us(v.at("t_us").as_i64());
  e.seq = v.at("seq").as_u64();
  const auto c = component_from_name(v.at("component").as_string());
  if (!c) {
    throw std::runtime_error("obs: unknown component '" +
                             v.at("component").as_string() + "'");
  }
  e.component = *c;
  const auto k = event_kind_from_name(v.at("kind").as_string());
  if (!k) {
    throw std::runtime_error("obs: unknown event kind '" +
                             v.at("kind").as_string() + "'");
  }
  e.kind = *k;
  e.payload = payload_from_json(e.kind, v.find("p"));
  return e;
}

// --- Pretty printing --------------------------------------------------------

std::string describe(const Event& e) {
  std::string out = fmt("t=%.3fs [%.*s] %.*s", e.t.sec(),
                        static_cast<int>(component_name(e.component).size()),
                        component_name(e.component).data(),
                        static_cast<int>(event_kind_name(e.kind).size()),
                        event_kind_name(e.kind).data());
  if (const auto* m = std::get_if<MeasurementPayload>(&e.payload)) {
    out += fmt(" cell %u rsrp %.1f dBm (nbr %u: %.1f) cap %.2f Mbps queue %.1f ms%s",
               m->serving_cell, m->serving_rsrp_dbm, m->neighbor_cell,
               m->neighbor_rsrp_dbm, m->capacity_mbps, m->queuing_delay_ms,
               m->in_handover ? " [in-HO]" : "");
  } else if (const auto* h = std::get_if<HandoverPayload>(&e.payload)) {
    out += fmt(" cell %u -> %u (het %.1f ms)", h->source_cell, h->target_cell,
               static_cast<double>(h->het_us) / 1000.0);
  } else if (const auto* q = std::get_if<QueuePayload>(&e.payload)) {
    if (e.kind == EventKind::kQueueDrop) {
      out += fmt(" pkt %llu (%u B) %s, depth %llu B / %u pkts",
                 static_cast<unsigned long long>(q->packet_id), q->size_bytes,
                 q->reason == 1 ? "aqm" : "overflow",
                 static_cast<unsigned long long>(q->queued_bytes),
                 q->queued_packets);
    } else if (e.kind == EventKind::kQueueDepth) {
      out += fmt(" depth %llu B / %u pkts",
                 static_cast<unsigned long long>(q->queued_bytes),
                 q->queued_packets);
    } else {
      out += fmt(" pkt %llu (%u B), depth %llu B / %u pkts",
                 static_cast<unsigned long long>(q->packet_id), q->size_bytes,
                 static_cast<unsigned long long>(q->queued_bytes),
                 q->queued_packets);
    }
  } else if (const auto* r = std::get_if<RatePayload>(&e.payload)) {
    out += fmt(" %.3f Mbps", r->bps / 1e6);
  } else if (const auto* s = std::get_if<SignalPayload>(&e.payload)) {
    const char* name = s->signal == 1   ? "overuse"
                       : s->signal == 2 ? "underuse"
                                        : "normal";
    out += fmt(" signal=%s", name);
  } else if (const auto* f = std::get_if<FramePayload>(&e.payload)) {
    out += fmt(" frame %u (%u B)%s%s", f->frame_id, f->bytes,
               f->keyframe ? " [key]" : "", f->damaged ? " [damaged]" : "");
  } else if (const auto* pk = std::get_if<PacketPayload>(&e.payload)) {
    out += fmt(" pkt %llu (%u B) frame %u seq %u",
               static_cast<unsigned long long>(pk->id), pk->size_bytes,
               pk->frame_id, pk->transport_seq);
    if (e.kind == EventKind::kPacketReceived) {
      out += fmt(" owd %.1f ms", pk->owd_ms);
    }
  } else if (const auto* st = std::get_if<StallPayload>(&e.payload)) {
    out += fmt(" %.1f ms", st->duration_ms);
  } else if (const auto* fa = std::get_if<FaultPayload>(&e.payload)) {
    out += fmt(" kind=%u duration %.1f ms magnitude %.2f", fa->kind,
               static_cast<double>(fa->duration_us) / 1000.0, fa->magnitude);
  } else if (const auto* ps = std::get_if<PathSwitchPayload>(&e.payload)) {
    const char* why = ps->reason == 0   ? "path-down"
                      : ps->reason == 1 ? "predicted-ho"
                      : ps->reason == 2 ? "faster-path"
                                        : "probation-end";
    out += fmt(" class %u path %u -> %u (%s)", ps->traffic_class, ps->from_path,
               ps->to_path, why);
  } else if (const auto* fr = std::get_if<FecRatePayload>(&e.payload)) {
    out += fmt(" group %d -> %d (loss ewma %.3f%s)", fr->prev_group_size,
               fr->group_size, fr->loss_ewma, fr->ho_armed ? ", HO armed" : "");
  } else if (const auto* rf = std::get_if<ReorderFlushPayload>(&e.payload)) {
    const char* why = rf->reason == 0   ? "timeout"
                      : rf->reason == 1 ? "overflow"
                                        : "drain";
    out += fmt(" released %u (%s, held %.1f ms)", rf->released, why, rf->hold_ms);
  } else if (const auto* pr = std::get_if<PreemptPayload>(&e.payload)) {
    out += fmt(" class %u path %u -> %u (queue %.1f ms)", pr->traffic_class,
               pr->from_path, pr->to_path, pr->queue_delay_ms);
  } else if (const auto* sp = std::get_if<SatPassPayload>(&e.payload)) {
    out += fmt(" pass %u (interruption %.1f ms)", sp->pass_index,
               static_cast<double>(sp->interruption_us) / 1000.0);
  } else if (const auto* so = std::get_if<SatOutagePayload>(&e.payload)) {
    out += fmt(" %s %.1f ms (capacity x%.2f)",
               so->kind == 1 ? "rain-fade" : "obstruction",
               static_cast<double>(so->duration_us) / 1000.0, so->magnitude);
  } else if (const auto* rp = std::get_if<ReplanPayload>(&e.payload)) {
    out += fmt(" candidate %u/%u (stall %.0f -> %.0f ms, deviation %.1f m)",
               rp->selected, rp->candidates, rp->predicted_stall_ms_direct,
               rp->predicted_stall_ms_selected, rp->deviation_m);
  }
  return out;
}

}  // namespace rpv::obs
