// Receiver half of the video pipeline (the remote-pilot side on AWS).
//
// Packets arriving from the network enter the RTP jitter buffer (150 ms,
// paper §3.2); released frames are scored by the SSIM model and displayed by
// the player model. In parallel the receiver generates the congestion
// feedback the sender's CC consumes: transport-wide-CC reports for GCC or
// RFC 8888 reports (10 ms clock, bounded ack window) for SCReAM.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "fault/backoff.hpp"
#include "metrics/time_series.hpp"
#include "net/packet.hpp"
#include "obs/event_sink.hpp"
#include "pipeline/frame_table.hpp"
#include "rtp/fec.hpp"
#include "rtp/feedback.hpp"
#include "rtp/jitter_buffer.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "video/player_model.hpp"
#include "video/ssim_model.hpp"

namespace rpv::pipeline {

enum class FeedbackKind { kNone, kTwcc, kRfc8888 };

struct ReceiverConfig {
  rtp::JitterBufferConfig jitter;
  video::PlayerConfig player;
  video::SsimConfig ssim;
  FeedbackKind feedback = FeedbackKind::kTwcc;
  sim::Duration twcc_interval = sim::Duration::millis(50);
  sim::Duration rfc8888_interval = sim::Duration::millis(10);
  int rfc8888_ack_window = 64;  // the paper raises this to 256
  std::size_t feedback_base_bytes = 60;
  std::size_t feedback_per_result_bytes = 2;

  // Model H.264 reference dependency at the decoder: a corrupted or fully
  // lost frame breaks the prediction chain, and every frame decodes damaged
  // until the next clean IDR. Off by default (the seed pipeline scored only
  // per-frame packet loss); chaos benches enable it in BOTH arms so the
  // fault/no-resilience comparison is fair.
  bool model_reference_loss = false;

  // PLI-style keyframe recovery: on a damaged frame, request an IDR from the
  // sender, backing off exponentially (base, 2x, 4x, ... capped at
  // base * pli_max_backoff_factor) until a clean keyframe arrives. The cap
  // bounds the *interval*, not the retry count — a capped interval is what
  // guarantees a request lands shortly after a long outage heals.
  struct ResilienceConfig {
    bool enabled = false;
    sim::Duration pli_backoff_base = sim::Duration::millis(250);
    std::uint32_t pli_max_backoff_factor = 8;
  } resilience;
};

class VideoReceiver {
 public:
  // Sends a feedback report back to the sender over the return path.
  using FeedbackFn = std::function<void(const rtp::FeedbackReport&, std::size_t)>;

  VideoReceiver(sim::Simulator& simulator, ReceiverConfig cfg,
                const FrameTable& table, FeedbackFn send_feedback, sim::Rng rng,
                std::shared_ptr<rtp::FecGroupTable> fec_table = nullptr);

  // Run the feedback clock from `start` until `end`.
  void start(sim::TimePoint start, sim::TimePoint end);

  void on_packet(const net::Packet& p);

  // Call after the simulation drains to finalize windowed stats.
  void finish();

  // Observation taps for rpv::predict: every OWD sample (per media packet)
  // and every 1-second goodput window, as they are recorded.
  using SampleFn = std::function<void(sim::TimePoint, double)>;
  void set_owd_hook(SampleFn fn) { owd_hook_ = std::move(fn); }
  void set_goodput_hook(SampleFn fn) { goodput_hook_ = std::move(fn); }

  // Publish kPacketReceived / kFrameDecoded / kStall onto the session's bus.
  void attach_observer(obs::EventBus* bus);

  [[nodiscard]] video::PlayerModel& player() { return *player_; }
  [[nodiscard]] const video::PlayerModel& player() const { return *player_; }
  [[nodiscard]] const rtp::JitterBuffer& jitter_buffer() const { return *jb_; }
  [[nodiscard]] const metrics::TimeSeries& owd_ms() const { return owd_ms_; }
  [[nodiscard]] const metrics::TimeSeries& goodput_mbps() const {
    return goodput_mbps_;
  }
  [[nodiscard]] std::uint64_t packets_received() const { return packets_received_; }
  [[nodiscard]] std::uint64_t media_bytes() const { return media_bytes_; }
  [[nodiscard]] std::uint32_t corrupted_frames() const { return corrupted_frames_; }
  [[nodiscard]] std::uint64_t fec_recovered() const {
    return fec_ ? fec_->recovered_packets() : 0;
  }

  // Resilience introspection.
  [[nodiscard]] std::uint64_t pli_sent() const { return pli_sent_; }
  [[nodiscard]] const std::vector<sim::TimePoint>& pli_times() const {
    return pli_times_;
  }
  // Decode times of undamaged frames (recovery attribution input).
  [[nodiscard]] const std::vector<sim::TimePoint>& clean_frame_times() const {
    return clean_frame_times_;
  }

 private:
  void feedback_tick();
  void goodput_tick();
  void on_frame_release(const rtp::FrameReleaseEvent& ev);
  void maybe_request_keyframe();

  sim::Simulator& sim_;
  ReceiverConfig cfg_;
  obs::EventBus* bus_ = nullptr;
  const FrameTable& table_;
  FeedbackFn send_feedback_;
  std::unique_ptr<rtp::JitterBuffer> jb_;
  std::unique_ptr<video::PlayerModel> player_;
  video::SsimModel ssim_;
  rtp::TwccCollector twcc_;
  rtp::Rfc8888Collector rfc8888_;
  std::unique_ptr<rtp::FecDecoder> fec_;

  sim::TimePoint end_time_;
  metrics::TimeSeries owd_ms_;
  metrics::TimeSeries goodput_mbps_;
  SampleFn owd_hook_;
  SampleFn goodput_hook_;
  std::uint64_t window_bytes_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t media_bytes_ = 0;
  std::uint32_t corrupted_frames_ = 0;

  // Reference-loss / PLI state.
  fault::Backoff pli_backoff_{sim::Duration::millis(250), 8};
  sim::TimePoint next_pli_allowed_ = sim::TimePoint::origin();
  std::uint32_t last_decoded_id_ = 0;
  bool decoded_any_ = false;
  bool reference_broken_ = false;
  std::vector<sim::TimePoint> clean_frame_times_;
  std::vector<sim::TimePoint> pli_times_;
  std::uint64_t pli_sent_ = 0;
};

}  // namespace rpv::pipeline
