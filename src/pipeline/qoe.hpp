// Remote-piloting Quality-of-Experience score.
//
// The paper's related work ([48]) assesses pilot QoE subjectively; for
// automated comparisons the library provides a deterministic composite on a
// 1..5 MOS-like scale built from the paper's own requirement thresholds:
//  * visual quality: fraction of frames at SSIM >= 0.5 (safe to maneuver)
//    and >= 0.9 (comfortable detail);
//  * responsiveness: fraction of playback under the 300 ms RP budget;
//  * smoothness: stall rate (inter-frame gaps > 300 ms).
// The mapping is intentionally simple and fully documented so downstream
// studies can substitute their own model.
#pragma once

#include "pipeline/report.hpp"

namespace rpv::pipeline {

struct QoeBreakdown {
  double visual = 0.0;          // 0..1
  double responsiveness = 0.0;  // 0..1
  double smoothness = 0.0;      // 0..1
  double mos = 1.0;             // 1..5 composite
};

QoeBreakdown score_qoe(const SessionReport& report);

}  // namespace rpv::pipeline
