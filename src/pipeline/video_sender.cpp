#include "pipeline/video_sender.hpp"

#include <algorithm>

namespace rpv::pipeline {

VideoSender::VideoSender(sim::Simulator& simulator, SenderConfig cfg,
                         std::unique_ptr<cc::RateController> controller,
                         FrameTable& table, TransmitFn transmit, sim::Rng rng,
                         std::shared_ptr<rtp::FecGroupTable> fec_table)
    : sim_{simulator},
      cfg_{cfg},
      cc_{std::move(controller)},
      table_{table},
      transmit_{std::move(transmit)},
      source_{cfg.source, rng.fork()},
      encoder_{cfg.encoder, rng.fork()},
      packetizer_{cfg.packetizer} {
  if (cfg_.fec_group_size > 0 && fec_table) {
    fec_ = std::make_unique<rtp::FecEncoder>(
        rtp::FecConfig{cfg_.fec_group_size}, std::move(fec_table));
  }
}

void VideoSender::start(sim::TimePoint start, sim::TimePoint end) {
  end_time_ = end;
  sim_.schedule_at(start, [this] { frame_tick(); });
}

double VideoSender::queue_delay_ms() const {
  const double rate = std::max(cc_->target_bitrate_bps(), 1e5);
  return static_cast<double>(queue_bytes_) * 8.0 / rate * 1e3;
}

void VideoSender::frame_tick() {
  const auto now = sim_.now();
  if (now > end_time_) return;

  cc_->on_tick(now);
  cc_->on_send_queue_delay(queue_delay_ms());

  // SCReAM-style queue discard: flush everything older than the threshold.
  if (cfg_.discard_queue_ms > 0.0 && queue_delay_ms() > cfg_.discard_queue_ms) {
    discarded_ += queue_.size();
    ++discard_events_;
    queue_.clear();
    queue_bytes_ = 0;
    cc_->on_queue_discard(now);
  }

  encoder_.set_target_bitrate(cc_->target_bitrate_bps());
  target_trace_.add(now, cc_->target_bitrate_bps());

  const double complexity = source_.next_complexity();
  const video::Frame frame = encoder_.encode(frames_encoded_, now, complexity,
                                             source_.at_shot_cut());
  ++frames_encoded_;
  table_.put(frame);

  for (auto& p : packetizer_.packetize(frame)) {
    std::optional<net::Packet> parity;
    if (fec_) {
      // Transport-wide sequence numbers must follow the wire order or the
      // feedback reports misread in-flight parity gaps as losses; with FEC
      // active the sender numbers every packet (media + parity) itself.
      p.transport_seq = fec_transport_seq_++;
      parity = fec_->on_media_packet(p);
    }
    queue_bytes_ += p.size_bytes;
    queue_.push_back(std::move(p));
    if (parity) {
      parity->transport_seq = fec_transport_seq_++;
      queue_bytes_ += parity->size_bytes;
      queue_.push_back(std::move(*parity));
    }
  }
  pump();

  sim_.schedule_in(cfg_.frame_interval, [this] { frame_tick(); });
}

void VideoSender::schedule_pump(sim::Duration in) {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  sim_.schedule_in(in, [this] {
    pump_scheduled_ = false;
    pump();
  });
}

void VideoSender::pump() {
  const auto now = sim_.now();
  if (queue_.empty()) return;
  if (now < next_send_allowed_) {
    schedule_pump(next_send_allowed_ - now);
    return;
  }
  net::Packet& head = queue_.front();
  if (cc_->window_limited() && !cc_->can_send(head.size_bytes)) {
    // Self-clocked: wait for acknowledgments (or the blocked poll).
    schedule_pump(cfg_.blocked_poll);
    return;
  }

  net::Packet p = std::move(head);
  queue_.pop_front();
  queue_bytes_ -= p.size_bytes;
  p.enqueued = now;

  cc_->on_packet_sent({p.transport_seq, p.size_bytes, now});
  ++packets_sent_;
  bytes_sent_ += p.size_bytes;

  // Pacing clock for the next packet.
  const double pacing = std::max(cc_->pacing_rate_bps(), 1e5);
  next_send_allowed_ =
      now + sim::Duration::seconds(static_cast<double>(p.size_bytes) * 8.0 / pacing);

  transmit_(std::move(p));

  if (!queue_.empty()) schedule_pump(next_send_allowed_ - now);
}

void VideoSender::on_feedback(const rtp::FeedbackReport& report) {
  cc_->on_feedback(report, sim_.now());
  // Feedback may have opened the congestion window.
  if (!queue_.empty()) pump();
}

}  // namespace rpv::pipeline
