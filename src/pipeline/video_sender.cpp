#include "pipeline/video_sender.hpp"

#include <algorithm>

#include "net/packet_events.hpp"
#include "predict/proactive_adapter.hpp"

namespace rpv::pipeline {

VideoSender::VideoSender(sim::Simulator& simulator, SenderConfig cfg,
                         std::unique_ptr<cc::RateController> controller,
                         FrameTable& table, TransmitFn transmit, sim::Rng rng,
                         std::shared_ptr<rtp::FecGroupTable> fec_table)
    : sim_{simulator},
      cfg_{cfg},
      cc_{std::move(controller)},
      table_{table},
      transmit_{std::move(transmit)},
      source_{cfg.source, rng.fork()},
      encoder_{cfg.encoder, rng.fork()},
      packetizer_{cfg.packetizer} {
  if (cfg_.fec_group_size > 0 && fec_table) {
    fec_ = std::make_unique<rtp::FecEncoder>(
        rtp::FecConfig{cfg_.fec_group_size}, std::move(fec_table));
  }
}

void VideoSender::start(sim::TimePoint start, sim::TimePoint end) {
  end_time_ = end;
  sim_.schedule_at(start, [this] { frame_tick(); });
}

double VideoSender::queue_delay_ms() const {
  const double rate = std::max(cc_->target_bitrate_bps(), 1e5);
  return static_cast<double>(queue_bytes_) * 8.0 / rate * 1e3;
}

void VideoSender::frame_tick() {
  const auto now = sim_.now();
  if (now > end_time_) return;
  ++tick_count_;

  cc_->on_tick(now);
  cc_->on_send_queue_delay(queue_delay_ms());

  if (cfg_.resilience.enabled) {
    watchdog_tick(now);
    const bool recovering = watchdog_active_ || now < recovery_flush_until_;
    // The loss burst and delay spike in the first post-silence reports are
    // attributable to the outage itself, which the watchdog already decayed
    // for; letting the CC react to them from that decayed base collapses it
    // far below what the encoder can emit, and the mismatch only builds
    // sender queue. Pin the controller at the encoder floor while
    // recovering.
    const double floor = encoder_.min_output_bps();
    const double target = cc_->target_bitrate_bps();
    if (recovering && target < floor) {
      cc_->on_feedback_timeout(now, floor / target);
    }
    // Recovery flush: while silent (and briefly after), stale frames are
    // worthless — a fresh keyframe will replace them anyway.
    if (recovering &&
        queue_delay_ms() > cfg_.resilience.recovery_discard.ms()) {
      discarded_ += queue_.size();
      queue_.clear();
      queue_bytes_ = 0;
    }
  }

  // SCReAM-style queue discard: flush everything older than the threshold.
  if (cfg_.discard_queue > sim::Duration::zero() &&
      queue_delay_ms() > cfg_.discard_queue.ms()) {
    discarded_ += queue_.size();
    ++discard_events_;
    queue_.clear();
    queue_bytes_ = 0;
    cc_->on_queue_discard(now);
  }

  double target = cc_->target_bitrate_bps();
  if (proactive_) {
    // Post-HO recovery flush: the bearer just came back and the queue holds
    // frames encoded before (or during) the interruption — stale by now.
    if (proactive_->should_flush(now, queue_delay_ms()) && !queue_.empty()) {
      discarded_ += queue_.size();
      queue_.clear();
      queue_bytes_ = 0;
    }
    // Pre-HO bitrate dip: during a predicted (or running) handover window,
    // cap the encoder at a fraction of the forecast capacity so the link
    // queue stays shallow through the interruption.
    target = std::min(target, proactive_->bitrate_cap_bps(now));
    // Honor a deferred keyframe as soon as the HO window closes.
    if (keyframe_pending_ && !proactive_->defer_keyframe(now)) {
      encoder_.force_keyframe();
      keyframe_pending_ = false;
    }
  }
  encoder_.set_target_bitrate(target);
  target_trace_.add(now, target);

  // Ladder levels 2/3 shed capture FPS: every 2nd (then 4th) frame only.
  if (ladder_level_ >= 2) {
    const std::uint32_t divisor = ladder_level_ >= 3 ? 4 : 2;
    if (tick_count_ % divisor != 0) {
      pump();
      sim_.schedule_in(cfg_.frame_interval, [this] { frame_tick(); });
      return;
    }
  }

  const double complexity = source_.next_complexity();
  bool shot_cut = source_.at_shot_cut();
  if (shot_cut && proactive_ && proactive_->defer_keyframe(now)) {
    // A keyframe is several times the size of a delta frame; emitting one
    // into the HET window would sit in the paused queue and drain as a
    // latency spike. Defer it past the window.
    proactive_->note_keyframe_deferred();
    keyframe_pending_ = true;
    shot_cut = false;
  }
  const video::Frame frame =
      encoder_.encode(frames_encoded_, now, complexity, shot_cut);
  ++frames_encoded_;
  table_.put(frame);
  if (bus_ && bus_->wants(obs::EventKind::kFrameEncoded)) {
    bus_->publish(obs::Component::kSender, obs::EventKind::kFrameEncoded, now,
                  obs::FramePayload{frame.id,
                                    static_cast<std::uint32_t>(frame.size_bytes),
                                    frame.keyframe, false});
  }

  packetizer_.packetize(frame, packetize_scratch_);
  for (auto& p : packetize_scratch_) {
    std::optional<net::Packet> parity;
    if (fec_) {
      // Transport-wide sequence numbers must follow the wire order or the
      // feedback reports misread in-flight parity gaps as losses; with FEC
      // active the sender numbers every packet (media + parity) itself.
      p.transport_seq = fec_transport_seq_++;
      parity = fec_->on_media_packet(p);
    }
    queue_bytes_ += p.size_bytes;
    queue_.push_back(std::move(p));
    if (parity) {
      parity->transport_seq = fec_transport_seq_++;
      queue_bytes_ += parity->size_bytes;
      queue_.push_back(std::move(*parity));
    }
  }
  pump();

  sim_.schedule_in(cfg_.frame_interval, [this] { frame_tick(); });
}

void VideoSender::schedule_pump(sim::Duration in) {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  sim_.schedule_in(in, [this] {
    pump_scheduled_ = false;
    pump();
  });
}

void VideoSender::pump() {
  const auto now = sim_.now();
  if (queue_.empty()) return;
  if (now < next_send_allowed_) {
    schedule_pump(next_send_allowed_ - now);
    return;
  }
  net::Packet& head = queue_.front();
  if (cc_->window_limited() && !cc_->can_send(head.size_bytes)) {
    // Self-clocked: wait for acknowledgments (or the blocked poll).
    schedule_pump(cfg_.blocked_poll);
    return;
  }

  net::Packet p = std::move(head);
  queue_.pop_front();
  queue_bytes_ -= p.size_bytes;
  p.enqueued = now;

  cc_->on_packet_sent({p.transport_seq, p.size_bytes, now});
  ++packets_sent_;
  bytes_sent_ += p.size_bytes;
  if (bus_ && bus_->wants(obs::EventKind::kPacketSent)) {
    bus_->publish(obs::Component::kSender, obs::EventKind::kPacketSent, now,
                  net::packet_payload(p));
  }

  // Pacing clock for the next packet.
  const double pacing = std::max(cc_->pacing_rate_bps(), 1e5);
  next_send_allowed_ =
      now + sim::Duration::seconds(static_cast<double>(p.size_bytes) * 8.0 / pacing);

  transmit_(std::move(p));

  if (!queue_.empty()) schedule_pump(next_send_allowed_ - now);
}

void VideoSender::watchdog_tick(sim::TimePoint now) {
  if (!feedback_expected_) return;  // nothing to miss (static baseline)
  const auto& rc = cfg_.resilience;
  const auto silence = now - last_feedback_at_;
  if (silence <= rc.feedback_timeout) return;

  if (!watchdog_active_) {
    // Watchdog fires once per silence episode. Flush the RTP queue: frames
    // packetized before the silence began are stale by the time the link
    // heals, and draining them first only delays recovery.
    watchdog_active_ = true;
    ++watchdog_events_;
    if (!queue_.empty()) {
      discarded_ += queue_.size();
      queue_.clear();
      queue_bytes_ = 0;
    }
    next_decay_at_ = now;
  }
  if (now >= next_decay_at_) {
    // Never decay below what the encoder can actually emit: pacing under the
    // encoder floor doesn't reduce load, it just grows the sender queue (and
    // playback latency with it) until the CC ramps back past the floor.
    if (cc_->target_bitrate_bps() * rc.decay_factor >=
        encoder_.min_output_bps()) {
      cc_->on_feedback_timeout(now, rc.decay_factor);
    }
    next_decay_at_ = now + rc.decay_interval;
  }
  int level = 1;
  if (silence > rc.fps_half_after) level = 2;
  if (silence > rc.resolution_after) level = 3;
  set_ladder(level);
}

void VideoSender::set_ladder(int level) {
  if (level == ladder_level_) return;
  ladder_level_ = level;
  max_ladder_level_ = std::max(max_ladder_level_, level);
  encoder_.set_resolution_scale(
      level >= 3 ? cfg_.resilience.resolution_scale : 1.0);
}

void VideoSender::on_feedback(const rtp::FeedbackReport& report) {
  const auto now = sim_.now();
  if (report.keyframe_request &&
      (last_keyframe_honored_.is_never() ||
       now - last_keyframe_honored_ >= cfg_.resilience.min_keyframe_interval)) {
    if (proactive_ && proactive_->defer_keyframe(now)) {
      // Request acknowledged but held out of the predicted HO window; the
      // frame tick emits it once the window closes.
      proactive_->note_keyframe_deferred();
      keyframe_pending_ = true;
    } else {
      encoder_.force_keyframe();
      ++keyframes_forced_;
    }
    last_keyframe_honored_ = now;
  }
  if (!report.results.empty()) {
    // Only CC feedback feeds the watchdog; a bare keyframe request proves
    // the return path works but carries no rate information.
    last_feedback_at_ = now;
    feedback_expected_ = true;
    if (watchdog_active_) {
      watchdog_active_ = false;
      recovery_flush_until_ = now + cfg_.resilience.recovery_flush_window;
      set_ladder(0);
    }
  }
  cc_->on_feedback(report, now);
  // Feedback may have opened the congestion window.
  if (!queue_.empty()) pump();
}

}  // namespace rpv::pipeline
