// Sender half of the video pipeline (the drone side).
//
// Drives the 30 FPS capture clock, re-encodes the source at the congestion
// controller's target bitrate, packetizes frames into RTP, and transmits
// from a sender-side RTP queue — rate-paced for GCC/static, window-limited
// (self-clocked) for SCReAM. The queue is where the paper's FPS-dip
// mechanism lives: after a sharp target decrease, frames encoded at the old
// (higher) bitrate still drain at the new (lower) pace. An optional discard
// threshold reproduces SCReAM's flush of queues older than 100 ms.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "cc/rate_controller.hpp"
#include "metrics/time_series.hpp"
#include "net/packet.hpp"
#include "pipeline/frame_table.hpp"
#include "rtp/fec.hpp"
#include "rtp/packetizer.hpp"
#include "sim/simulator.hpp"
#include "video/encoder_model.hpp"
#include "video/frame_source.hpp"

namespace rpv::predict {
class ProactiveAdapter;
}

namespace rpv::pipeline {

struct SenderConfig {
  sim::Duration frame_interval = sim::Duration::micros(33333);
  // SCReAM flushes its RTP queue when it exceeds this delay; <= zero
  // disables (GCC and static never discard).
  sim::Duration discard_queue = sim::Duration::millis(-1);
  // Re-check interval when the window blocks transmission.
  sim::Duration blocked_poll = sim::Duration::millis(5);
  // XOR FEC: one parity packet per this many media packets; 0 disables.
  int fec_group_size = 0;
  video::EncoderConfig encoder;
  video::FrameSourceConfig source;
  rtp::PacketizerConfig packetizer;

  // Feedback watchdog + graceful-degradation ladder. With RTCP silent past
  // the timeout, coasting on a stale rate estimate floods a link that has
  // just failed; instead the sender flushes its RTP queue once, then decays
  // the CC target multiplicatively, and — as the silence persists — climbs
  // the degradation ladder: bitrate floor, then FPS, then resolution.
  struct ResilienceConfig {
    bool enabled = false;
    sim::Duration feedback_timeout = sim::Duration::millis(500);
    sim::Duration decay_interval = sim::Duration::millis(200);
    double decay_factor = 0.8;
    sim::Duration fps_half_after = sim::Duration::seconds(1.5);
    sim::Duration resolution_after = sim::Duration::seconds(3.0);
    double resolution_scale = 0.5;
    // Honor at most one keyframe request per interval (PLI-storm guard).
    sim::Duration min_keyframe_interval = sim::Duration::millis(250);
    // During a silence episode and for a window after it ends, flush the RTP
    // queue whenever it exceeds this delay: the CC may sit below the
    // encoder's floor while it re-ramps, and stale backlog would otherwise
    // turn into seconds of playback latency.
    sim::Duration recovery_discard = sim::Duration::millis(400);
    sim::Duration recovery_flush_window = sim::Duration::seconds(10.0);
  } resilience;
};

class VideoSender {
 public:
  using TransmitFn = std::function<void(net::Packet)>;

  VideoSender(sim::Simulator& simulator, SenderConfig cfg,
              std::unique_ptr<cc::RateController> controller,
              FrameTable& table, TransmitFn transmit, sim::Rng rng,
              std::shared_ptr<rtp::FecGroupTable> fec_table = nullptr);

  // Capture/encode frames from `start` until `end`.
  void start(sim::TimePoint start, sim::TimePoint end);

  void on_feedback(const rtp::FeedbackReport& report);

  // Optional HO-aware policy layer (rpv::predict). The adapter itself gates
  // every action on its `proactive` flag, so attaching it is always safe.
  void set_proactive_adapter(predict::ProactiveAdapter* adapter) {
    proactive_ = adapter;
  }

  // Publish kFrameEncoded / kPacketSent (and the controller's rate events)
  // onto the session's event bus.
  void attach_observer(obs::EventBus* bus) {
    bus_ = bus;
    cc_->attach_observer(bus);
  }

  // Retune the FEC parity rate mid-stream (bonded sessions drive this from
  // the adaptive controller). No-op when FEC is disabled; takes effect as
  // interleave slots reach the new group size.
  void set_fec_group_size(int n) {
    if (fec_) fec_->set_group_size(n);
  }
  [[nodiscard]] int fec_group_size() const {
    return fec_ ? fec_->group_size() : 0;
  }

  [[nodiscard]] cc::RateController& controller() { return *cc_; }
  [[nodiscard]] const cc::RateController& controller() const { return *cc_; }
  [[nodiscard]] std::uint32_t frames_encoded() const { return frames_encoded_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t packets_discarded() const { return discarded_; }
  [[nodiscard]] std::uint64_t queue_discard_events() const { return discard_events_; }
  [[nodiscard]] double queue_delay_ms() const;
  [[nodiscard]] const metrics::TimeSeries& target_bitrate_trace() const {
    return target_trace_;
  }

  // Resilience introspection.
  [[nodiscard]] std::uint64_t watchdog_events() const { return watchdog_events_; }
  [[nodiscard]] bool watchdog_active() const { return watchdog_active_; }
  [[nodiscard]] std::uint32_t keyframes_forced() const { return keyframes_forced_; }
  [[nodiscard]] int ladder_level() const { return ladder_level_; }
  [[nodiscard]] int max_ladder_level() const { return max_ladder_level_; }

 private:
  void frame_tick();
  void watchdog_tick(sim::TimePoint now);
  void set_ladder(int level);
  void pump();
  void schedule_pump(sim::Duration in);

  sim::Simulator& sim_;
  SenderConfig cfg_;
  std::unique_ptr<cc::RateController> cc_;
  FrameTable& table_;
  TransmitFn transmit_;
  video::FrameSource source_;
  video::EncoderModel encoder_;
  rtp::Packetizer packetizer_;
  std::vector<net::Packet> packetize_scratch_;  // reused across frame_tick()s
  std::unique_ptr<rtp::FecEncoder> fec_;
  predict::ProactiveAdapter* proactive_ = nullptr;
  obs::EventBus* bus_ = nullptr;
  bool keyframe_pending_ = false;  // deferred out of a predicted HO window

  sim::TimePoint end_time_;
  std::deque<net::Packet> queue_;
  std::size_t queue_bytes_ = 0;
  bool pump_scheduled_ = false;
  sim::TimePoint next_send_allowed_ = sim::TimePoint::origin();

  // Watchdog / degradation-ladder state.
  sim::TimePoint last_feedback_at_ = sim::TimePoint::never();
  bool feedback_expected_ = false;  // armed by the first CC feedback
  bool watchdog_active_ = false;
  sim::TimePoint next_decay_at_ = sim::TimePoint::never();
  sim::TimePoint recovery_flush_until_ = sim::TimePoint::origin();
  std::uint64_t watchdog_events_ = 0;
  int ladder_level_ = 0;
  int max_ladder_level_ = 0;
  std::uint32_t tick_count_ = 0;
  std::uint32_t keyframes_forced_ = 0;
  sim::TimePoint last_keyframe_honored_ = sim::TimePoint::never();

  std::uint16_t fec_transport_seq_ = 0;  // wire-order seqs when FEC is on
  std::uint32_t frames_encoded_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t discard_events_ = 0;
  metrics::TimeSeries target_trace_;
};

}  // namespace rpv::pipeline
