// Sender half of the video pipeline (the drone side).
//
// Drives the 30 FPS capture clock, re-encodes the source at the congestion
// controller's target bitrate, packetizes frames into RTP, and transmits
// from a sender-side RTP queue — rate-paced for GCC/static, window-limited
// (self-clocked) for SCReAM. The queue is where the paper's FPS-dip
// mechanism lives: after a sharp target decrease, frames encoded at the old
// (higher) bitrate still drain at the new (lower) pace. An optional discard
// threshold reproduces SCReAM's flush of queues older than 100 ms.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "cc/rate_controller.hpp"
#include "metrics/time_series.hpp"
#include "net/packet.hpp"
#include "pipeline/frame_table.hpp"
#include "rtp/fec.hpp"
#include "rtp/packetizer.hpp"
#include "sim/simulator.hpp"
#include "video/encoder_model.hpp"
#include "video/frame_source.hpp"

namespace rpv::pipeline {

struct SenderConfig {
  sim::Duration frame_interval = sim::Duration::micros(33333);
  // SCReAM flushes its RTP queue when it exceeds this delay; <=0 disables
  // (GCC and static never discard).
  double discard_queue_ms = -1.0;
  // Re-check interval when the window blocks transmission.
  sim::Duration blocked_poll = sim::Duration::millis(5);
  // XOR FEC: one parity packet per this many media packets; 0 disables.
  int fec_group_size = 0;
  video::EncoderConfig encoder;
  video::FrameSourceConfig source;
  rtp::PacketizerConfig packetizer;
};

class VideoSender {
 public:
  using TransmitFn = std::function<void(net::Packet)>;

  VideoSender(sim::Simulator& simulator, SenderConfig cfg,
              std::unique_ptr<cc::RateController> controller,
              FrameTable& table, TransmitFn transmit, sim::Rng rng,
              std::shared_ptr<rtp::FecGroupTable> fec_table = nullptr);

  // Capture/encode frames from `start` until `end`.
  void start(sim::TimePoint start, sim::TimePoint end);

  void on_feedback(const rtp::FeedbackReport& report);

  [[nodiscard]] cc::RateController& controller() { return *cc_; }
  [[nodiscard]] const cc::RateController& controller() const { return *cc_; }
  [[nodiscard]] std::uint32_t frames_encoded() const { return frames_encoded_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t packets_discarded() const { return discarded_; }
  [[nodiscard]] std::uint64_t queue_discard_events() const { return discard_events_; }
  [[nodiscard]] double queue_delay_ms() const;
  [[nodiscard]] const metrics::TimeSeries& target_bitrate_trace() const {
    return target_trace_;
  }

 private:
  void frame_tick();
  void pump();
  void schedule_pump(sim::Duration in);

  sim::Simulator& sim_;
  SenderConfig cfg_;
  std::unique_ptr<cc::RateController> cc_;
  FrameTable& table_;
  TransmitFn transmit_;
  video::FrameSource source_;
  video::EncoderModel encoder_;
  rtp::Packetizer packetizer_;
  std::unique_ptr<rtp::FecEncoder> fec_;

  sim::TimePoint end_time_;
  std::deque<net::Packet> queue_;
  std::size_t queue_bytes_ = 0;
  bool pump_scheduled_ = false;
  sim::TimePoint next_send_allowed_ = sim::TimePoint::origin();

  std::uint16_t fec_transport_seq_ = 0;  // wire-order seqs when FEC is on
  std::uint32_t frames_encoded_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t discard_events_ = 0;
  metrics::TimeSeries target_trace_;
};

}  // namespace rpv::pipeline
