#include "pipeline/session.hpp"

#include <algorithm>

#include "cc/static_rate.hpp"
#include "sim/validate.hpp"

namespace rpv::pipeline {

std::string cc_name(CcKind kind) {
  switch (kind) {
    case CcKind::kStatic: return "static";
    case CcKind::kGcc: return "gcc";
    case CcKind::kScream: return "scream";
    case CcKind::kNone: return "probe";
  }
  return "?";
}

void SessionConfig::validate() const {
  rpv::validate(sender.frame_interval > sim::Duration::zero(),
                "SessionConfig: sender.frame_interval must be positive");
  rpv::validate(static_bitrate_bps > 0.0,
                "SessionConfig: static_bitrate_bps must be positive");
  rpv::validate(probe_interval >= sim::Duration::zero(),
                "SessionConfig: probe_interval must not be negative");
  rpv::validate(fec_group_size >= 0,
                "SessionConfig: fec_group_size must not be negative");
  rpv::validate(obs.ring_capacity > 0,
                "SessionConfig: obs.ring_capacity must be positive");
  if (c2.enabled) {
    rpv::validate(c2.command_interval > sim::Duration::zero(),
                  "SessionConfig: c2.command_interval must be positive");
    rpv::validate(c2.telemetry_interval > sim::Duration::zero(),
                  "SessionConfig: c2.telemetry_interval must be positive");
  }
}

Session::Session(SessionConfig cfg, cellular::CellLayout layout,
                 const geo::Trajectory* trajectory, std::string environment_name)
    : cfg_{cfg},
      trajectory_{trajectory},
      environment_{std::move(environment_name)},
      rng_{cfg.seed} {
  validate(trajectory_ != nullptr, "Session: trajectory must not be null");
  cfg_.validate();
  if (cfg_.obs.enabled) {
    recorder_ = std::make_unique<obs::RingBufferRecorder>(cfg_.obs.ring_capacity);
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    bus_.subscribe(recorder_.get());
    bus_.subscribe(metrics_.get());
  }
  if (cfg_.obs.capture_packets) {
    packet_log_ = std::make_unique<obs::PacketLog>();
    bus_.subscribe(packet_log_.get());
  }
  link_ = std::make_unique<cellular::CellularLink>(
      sim_, std::move(layout), cfg_.link, trajectory_, rng_.fork());
  // The predictors mirror the link's A3 hysteresis and run on every session
  // (instrumentation is free and RNG-less); policy actions are gated inside
  // the adapter on cfg_.predict.proactive.
  cfg_.predict.ho.hysteresis_db = cfg_.link.handover.hysteresis_db;
  adapter_ = std::make_unique<predict::ProactiveAdapter>(cfg_.predict);
  if (cfg_.predict.map_prior != nullptr) {
    adapter_->set_map_prior(cfg_.predict.map_prior, trajectory_);
  }
  // rpv::predict consumes link measurements off the event bus — the sole
  // always-on subscription; every measurement consumer goes through an
  // obs::FunctionSink relay like this one.
  measurement_relay_ = std::make_unique<obs::FunctionSink>(
      obs::kind_bit(obs::EventKind::kLinkMeasurement),
      [this](const obs::Event& e) {
        adapter_->on_link_measurement(cellular::measurement_from_event(e));
      });
  bus_.subscribe(measurement_relay_.get());
  link_->attach_observer(&bus_);
  link_->set_loss_callback([this](const net::Packet& p) {
    ++radio_losses_;
    loss_times_.push_back(sim_.now());
    if (p.kind == net::PacketKind::kRtpVideo ||
        p.kind == net::PacketKind::kFecParity) {
      ++media_losses_;
    }
  });
  wan_up_ = std::make_unique<net::WanPath>(cfg_.wan, rng_.fork());
  wan_down_ = std::make_unique<net::WanPath>(cfg_.wan, rng_.fork());
  wan_up_->attach_observer(&bus_);
  wan_down_->attach_observer(&bus_);

  if (!cfg_.faults.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(sim_, cfg_.faults);
    injector_->attach_cellular(link_.get());
    injector_->attach_wan(wan_up_.get(), wan_down_.get());
    injector_->attach_observer(&bus_);
  }
  if (cfg_.resilience) {
    cfg_.sender.resilience.enabled = true;
    cfg_.receiver.resilience.enabled = true;
  }

  if (cfg_.cc != CcKind::kNone) {
    // Receiver feedback kind and sender queue discard follow the CC choice.
    switch (cfg_.cc) {
      case CcKind::kGcc:
        cfg_.receiver.feedback = FeedbackKind::kTwcc;
        cfg_.sender.discard_queue = sim::Duration::millis(-1);
        break;
      case CcKind::kScream:
        cfg_.receiver.feedback = FeedbackKind::kRfc8888;
        cfg_.sender.discard_queue = sim::Duration::millis(100);  // the Ericsson library's flush
        break;
      case CcKind::kStatic:
        cfg_.receiver.feedback = FeedbackKind::kNone;
        cfg_.sender.discard_queue = sim::Duration::millis(-1);
        break;
      case CcKind::kNone:
        break;
    }

    std::shared_ptr<rtp::FecGroupTable> fec_table;
    if (cfg_.fec_group_size > 0) {
      cfg_.sender.fec_group_size = cfg_.fec_group_size;
      fec_table = std::make_shared<rtp::FecGroupTable>();
    }
    receiver_ = std::make_unique<VideoReceiver>(
        sim_, cfg_.receiver, table_,
        [this](const rtp::FeedbackReport& report, std::size_t size) {
          // Feedback: WAN back-haul then the cellular downlink.
          net::Packet p;
          p.id = next_probe_id_++;
          p.kind = net::PacketKind::kRtcpFeedback;
          p.size_bytes = size;
          const auto wan_delay = wan_down_->sample_delay();
          if (wan_down_->drops_packet(sim_.now(), p.id,
                                      static_cast<std::uint32_t>(p.size_bytes))) {
            return;
          }
          sim_.schedule_in(wan_delay, [this, p, report] {
            link_->send_downlink(p, [this, report](net::Packet) {
              if (sender_) sender_->on_feedback(report);
            });
          });
        },
        rng_.fork(), fec_table);
    receiver_->set_owd_hook([this](sim::TimePoint t, double owd_ms) {
      adapter_->on_owd_sample(t, owd_ms);
    });
    receiver_->set_goodput_hook([this](sim::TimePoint t, double mbps) {
      adapter_->on_goodput_sample(t, mbps);
    });

    sender_ = std::make_unique<VideoSender>(
        sim_, cfg_.sender, make_controller(), table_,
        [this](net::Packet p) {
          link_->send_uplink(std::move(p), [this](net::Packet q) {
            // Radio done; WAN leg to the server.
            const auto wan_delay = wan_up_->sample_delay();
            if (wan_up_->drops_packet(sim_.now(), q.id,
                                      static_cast<std::uint32_t>(q.size_bytes))) {
              ++wan_drops_;
              return;
            }
            sim_.schedule_in(wan_delay, [this, q]() mutable {
              q.received = sim_.now();
              receiver_->on_packet(q);
            });
          });
        },
        rng_.fork(), fec_table);
    sender_->set_proactive_adapter(adapter_.get());
    sender_->attach_observer(&bus_);
    receiver_->attach_observer(&bus_);
  }
}

std::unique_ptr<cc::RateController> Session::make_controller() {
  switch (cfg_.cc) {
    case CcKind::kStatic:
      return std::make_unique<cc::StaticRate>(cfg_.static_bitrate_bps);
    case CcKind::kGcc:
      return std::make_unique<cc::gcc::GccController>(cfg_.gcc);
    case CcKind::kScream: {
      auto ctrl = std::make_unique<cc::scream::ScreamController>(cfg_.scream);
      return ctrl;
    }
    case CcKind::kNone:
      break;
  }
  return std::make_unique<cc::StaticRate>(cfg_.static_bitrate_bps);
}

void Session::send_probe() {
  const auto now = sim_.now();
  if (now > trajectory_->end()) return;
  net::Packet p;
  p.id = next_probe_id_++;
  p.kind = net::PacketKind::kProbe;
  p.size_bytes = 98;  // 64-byte ICMP payload + headers
  const double altitude = trajectory_->position(now).z;
  const auto sent_at = now;
  link_->send_uplink(p, [this, altitude, sent_at](net::Packet) {
    // Server echoes immediately; pong takes WAN + downlink.
    const auto wan = wan_up_->sample_delay() + wan_down_->sample_delay();
    sim_.schedule_in(wan, [this, altitude, sent_at] {
      net::Packet pong;
      pong.id = next_probe_id_++;
      pong.kind = net::PacketKind::kProbe;
      pong.size_bytes = 98;
      link_->send_downlink(pong, [this, altitude, sent_at](net::Packet) {
        rtt_by_altitude_.emplace_back(altitude, (sim_.now() - sent_at).ms());
      });
    });
  });
  sim_.schedule_in(cfg_.probe_interval, [this] { send_probe(); });
}

void Session::send_command() {
  const auto now = sim_.now();
  if (now > trajectory_->end()) return;
  // Pilot-side: WAN first, then the cellular downlink to the UAV.
  net::Packet p;
  p.id = next_probe_id_++;
  p.kind = net::PacketKind::kProbe;
  p.size_bytes = cfg_.c2.command_bytes + 40;
  ++commands_sent_;
  const auto sent_at = now;
  const auto wan = wan_down_->sample_delay();
  sim_.schedule_in(wan, [this, p, sent_at] {
    link_->send_downlink(p, [this, sent_at](net::Packet) {
      command_latency_ms_.add(sim_.now(), (sim_.now() - sent_at).ms());
    });
  });
  sim_.schedule_in(cfg_.c2.command_interval, [this] { send_command(); });
}

void Session::send_telemetry() {
  const auto now = sim_.now();
  if (now > trajectory_->end()) return;
  // UAV-side: the telemetry packet enters the same uplink queue as the
  // video stream, then crosses the WAN.
  net::Packet p;
  p.id = next_probe_id_++;
  p.kind = net::PacketKind::kProbe;
  p.size_bytes = cfg_.c2.telemetry_bytes + 40;
  ++telemetry_sent_;
  const auto sent_at = now;
  link_->send_uplink(p, [this, sent_at](net::Packet) {
    const auto wan = wan_up_->sample_delay();
    sim_.schedule_in(wan, [this, sent_at] {
      telemetry_latency_ms_.add(sim_.now(), (sim_.now() - sent_at).ms());
    });
  });
  sim_.schedule_in(cfg_.c2.telemetry_interval, [this] { send_telemetry(); });
}

SessionReport Session::run() {
  begin();
  sim_.run_until(drain_end());
  return collect();
}

void Session::begin() {
  link_->start();
  if (injector_) injector_->arm();
  const auto start = trajectory_->start();
  const auto end = trajectory_->end();
  if (sender_) sender_->start(start, end);
  if (receiver_) receiver_->start(start, end);
  if (cfg_.probe_interval > sim::Duration::zero()) {
    sim_.schedule_at(start, [this] { send_probe(); });
  }
  if (cfg_.c2.enabled) {
    sim_.schedule_at(start, [this] { send_command(); });
    sim_.schedule_at(start, [this] { send_telemetry(); });
  }
}

SessionReport Session::collect() {
  if (receiver_) receiver_->finish();
  adapter_->finish();

  SessionReport r;
  r.cc_name = cc_name(cfg_.cc);
  r.environment = environment_;
  r.duration = trajectory_->duration();

  if (receiver_) {
    const auto& player = receiver_->player();
    r.goodput_mbps_windows = receiver_->goodput_mbps().values();
    r.fps_windows = player.fps_windows();
    r.playback_latency_ms = player.playback_latency_ms().values();
    r.ssim_samples = player.played_ssim();
    r.stall_count = player.stall_count();
    r.stall_duration_ms = player.stall_durations_ms();
    r.stalls_per_minute = player.stalls_per_minute();
    r.frames_played = player.frames_played();
    r.frames_corrupted = receiver_->corrupted_frames();
    r.owd_ms = receiver_->owd_ms().values();
    r.owd_trace_ms = receiver_->owd_ms();
    r.playback_latency_trace_ms = player.playback_latency_ms();
    r.packets_received = receiver_->packets_received();
    r.jitter_resyncs = receiver_->jitter_buffer().resyncs();
    double total = 0.0;
    for (const double g : r.goodput_mbps_windows) total += g;
    r.avg_goodput_mbps = r.goodput_mbps_windows.empty()
                             ? 0.0
                             : total / static_cast<double>(
                                           r.goodput_mbps_windows.size());
  }
  if (sender_) {
    r.frames_encoded = sender_->frames_encoded();
    r.packets_sent = sender_->packets_sent();
    r.queue_discard_events = sender_->queue_discard_events();
    r.target_bitrate_trace_bps = sender_->target_bitrate_trace();
    if (const auto* scream = dynamic_cast<const cc::scream::ScreamController*>(
            &sender_->controller())) {
      r.scream_misloss_packets = scream->packets_declared_lost();
    }
    // Unplayed frames score SSIM 0 (the paper's convention); exclude a small
    // in-flight tail at the end of the run.
    const std::uint32_t tail_allowance = 15;
    if (r.frames_encoded > r.frames_played + tail_allowance) {
      const std::uint32_t unplayed =
          r.frames_encoded - r.frames_played - tail_allowance;
      r.ssim_samples.insert(r.ssim_samples.end(), unplayed, 0.0);
    }
  }

  r.radio_losses = radio_losses_;
  r.buffer_drops = link_->buffer_drops();
  if (r.packets_sent > 0) {
    r.per = static_cast<double>(r.radio_losses + r.buffer_drops) /
            static_cast<double>(r.packets_sent);
  }
  r.loss_times = loss_times_;

  const auto& log = link_->handover_log();
  r.handovers = log;
  r.ho_frequency_per_s = log.frequency(r.duration);
  r.het_ms = log.het_ms();
  r.ping_pong_handovers = log.ping_pong_count();
  r.cells_seen = link_->distinct_cells_seen();
  r.capacity_trace_mbps = link_->capacity_trace();
  if (receiver_) {
    r.ho_latency_ratios = log.latency_ratios(receiver_->owd_ms());
  }
  r.wan_drops = wan_drops_;
  r.media_losses = media_losses_;
  if (sender_ && receiver_) {
    r.packets_in_flight = static_cast<std::int64_t>(r.packets_sent) -
                          static_cast<std::int64_t>(r.packets_received) -
                          static_cast<std::int64_t>(r.media_losses) -
                          static_cast<std::int64_t>(r.wan_drops);
  }
  r.fault_drops = link_->fault_drops();
  if (sender_) {
    r.watchdog_events = sender_->watchdog_events();
    r.keyframes_forced = sender_->keyframes_forced();
    r.max_ladder_level = sender_->max_ladder_level();
  }
  if (receiver_) r.pli_sent = receiver_->pli_sent();
  if (injector_) {
    r.faults_injected = injector_->injected();
    if (receiver_) {
      fault::attribute_recovery(injector_->outcomes(),
                                receiver_->player().playback_latency_ms(),
                                receiver_->clean_frame_times(),
                                receiver_->player().stall_times());
    }
    r.fault_outcomes = injector_->outcomes();
  }

  r.prediction = adapter_->stats();

  r.obs_enabled = cfg_.obs.enabled;
  if (recorder_) {
    r.events = recorder_->snapshot();
    r.obs_events_recorded = recorder_->recorded();
    r.obs_events_dropped = recorder_->dropped();
  }
  if (metrics_) r.obs_metrics = metrics_->summary();

  r.rtt_by_altitude = rtt_by_altitude_;
  r.command_latency_ms = command_latency_ms_.values();
  r.telemetry_latency_ms = telemetry_latency_ms_.values();
  r.commands_sent = commands_sent_;
  r.telemetry_sent = telemetry_sent_;
  r.sim_events = sim_.executed_events();
  return r;
}

}  // namespace rpv::pipeline
