// Multipath extension (paper Section 5 / reference [9]): stream the video
// over TWO cellular operators at once, with the packet-level scheduling
// delegated to a bond::LinkManager.
//
// The manager implements six named policies: the three legacy MultipathModes
// (kDuplicate / kScheduled / kFailover, semantics preserved verbatim for
// campaign comparability) plus the bonded policies — kLowLatency (fastest
// path + adaptive FEC), kBalanced (capacity-weighted spray, keyframe/C2
// duplication), kHighReliability (C2 duplicated everywhere, FEC-bonded video
// at a fraction of kDuplicate's 2x airtime). Bonded receive goes through a
// bounded reorder window with per-path skew estimation; the FEC parity rate
// follows the link-health feed (loss EWMAs, capacity forecast, armed HO
// predictions) via bond::AdaptiveFecController.
//
// The two cellular links run independent radio/handover state over their own
// cell layouts (e.g. rural P1 + rural P2) but share the UAV trajectory. With
// SessionConfig::sat enabled the session grows to 3-way (or 4-way, with the
// aerial mesh) multi-connectivity: the extra paths register with the same
// LinkManager behind bond::BondablePath, the reorder window tracks their
// skew per path, and the report carries the per-path breakdown plus the sat
// outage/stall attribution (schema v6).
#pragma once

#include <memory>
#include <unordered_set>

#include "bond/fec_controller.hpp"
#include "bond/link_manager.hpp"
#include "bond/policy.hpp"
#include "cellular/cellular_link.hpp"
#include "geo/trajectory.hpp"
#include "net/wan_path.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/recorder.hpp"
#include "pipeline/report.hpp"
#include "pipeline/session.hpp"
#include "pipeline/video_receiver.hpp"
#include "pipeline/video_sender.hpp"
#include "bond/reorder_window.hpp"
#include "sim/simulator.hpp"

namespace rpv::pipeline {

// Legacy mode selector, kept for source compatibility; maps 1:1 onto the
// first three bond::Policy values.
enum class MultipathMode { kDuplicate, kScheduled, kFailover };

[[nodiscard]] constexpr bond::Policy policy_from_mode(MultipathMode m) {
  switch (m) {
    case MultipathMode::kScheduled: return bond::Policy::kScheduled;
    case MultipathMode::kFailover: return bond::Policy::kFailover;
    case MultipathMode::kDuplicate: break;
  }
  return bond::Policy::kDuplicate;
}

class MultipathSession {
 public:
  MultipathSession(SessionConfig cfg, cellular::CellLayout layout_a,
                   cellular::CellLayout layout_b,
                   const geo::Trajectory* trajectory,
                   std::string environment_name, bond::Policy policy);

  MultipathSession(SessionConfig cfg, cellular::CellLayout layout_a,
                   cellular::CellLayout layout_b,
                   const geo::Trajectory* trajectory,
                   std::string environment_name,
                   MultipathMode mode = MultipathMode::kDuplicate)
      : MultipathSession(std::move(cfg), std::move(layout_a),
                         std::move(layout_b), trajectory,
                         std::move(environment_name), policy_from_mode(mode)) {}

  SessionReport run();

  // Subscribe an extra sink to both operator buses before run(). Every
  // event is published on exactly one of the two buses, so the sink sees
  // the union of both paths' streams exactly once per event.
  void subscribe(obs::EventSink* sink) {
    bus_a_.subscribe(sink);
    bus_b_.subscribe(sink);
  }

  // The session-level stream (operator A's bus also carries bond/session
  // events); drivers publish session-scoped events like kReplan here.
  [[nodiscard]] obs::EventBus& observer() { return bus_a_; }

  [[nodiscard]] bond::Policy policy() const { return policy_; }
  [[nodiscard]] cellular::CellularLink& link_a() { return *link_a_; }
  [[nodiscard]] cellular::CellularLink& link_b() { return *link_b_; }
  // Non-null iff cfg.sat.enabled / cfg.sat.mesh_enabled.
  [[nodiscard]] sat::SatelliteLink* sat_link() { return sat_link_.get(); }
  [[nodiscard]] sat::MeshHopLink* mesh_link() { return mesh_link_.get(); }
  [[nodiscard]] bond::LinkManager& link_manager() { return *lm_; }
  // Null for legacy policies (they keep the first-copy-wins direct path).
  [[nodiscard]] const bond::ReorderWindow* reorder_window() const {
    return window_.get();
  }
  // Packets whose accepted copy arrived via the secondary link: how often the
  // redundancy actually rescued delivery.
  [[nodiscard]] std::uint64_t rescued_by_b() const { return rescued_by_b_; }
  [[nodiscard]] std::uint64_t duplicates_discarded() const {
    return window_ ? window_->duplicates_suppressed() : duplicates_discarded_;
  }
  // kFailover: number of active-link switches (either direction). Bonded
  // policies: video-anchor switches.
  [[nodiscard]] std::uint64_t failover_events() const {
    return lm_->failover_events();
  }

 private:
  [[nodiscard]] bond::BondablePath& path_link(int i) { return lm_->path(i); }
  void transmit_media(net::Packet p);
  void send_on_path(int path, net::Packet p);
  void deliver_to_receiver(net::Packet p, int path);
  void send_feedback(const rtp::FeedbackReport& report, std::size_t size);
  void send_command();
  void send_telemetry();
  void fec_tick(sim::TimePoint end);

  SessionConfig cfg_;
  bond::Policy policy_;
  const geo::Trajectory* trajectory_;
  std::string environment_;
  sim::Simulator sim_;
  sim::Rng rng_;
  // Per-operator event buses: each link publishes onto its own stream, and a
  // relay sink feeds that operator's predictor (no cross-talk between
  // modems). Bond-layer events (path switches, FEC retunes, reorder flushes,
  // class preemptions) ride bus A, the session-level stream.
  obs::EventBus bus_a_;
  obs::EventBus bus_b_;
  std::unique_ptr<obs::RingBufferRecorder> recorder_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::FunctionSink> relay_a_;
  std::unique_ptr<obs::FunctionSink> relay_b_;
  std::unique_ptr<cellular::CellularLink> link_a_;
  std::unique_ptr<cellular::CellularLink> link_b_;
  // Predictor per operator; adapter A also drives the sender's dip/deferral
  // and (via the LinkManager) predictive switching away from the primary.
  std::unique_ptr<predict::ProactiveAdapter> adapter_a_;
  std::unique_ptr<predict::ProactiveAdapter> adapter_b_;
  // Extra bonded paths (3-way multi-connectivity); constructed after every
  // pre-existing RNG fork so 2-path runs stay byte-identical.
  std::unique_ptr<sat::SatelliteLink> sat_link_;
  std::unique_ptr<sat::MeshHopLink> mesh_link_;
  std::unique_ptr<bond::LinkManager> lm_;
  std::unique_ptr<bond::ReorderWindow> window_;       // bonded policies only
  std::unique_ptr<bond::AdaptiveFecController> fec_ctrl_;  // FEC policies only
  std::unique_ptr<net::WanPath> wan_up_;
  std::unique_ptr<net::WanPath> wan_down_;
  FrameTable table_;
  std::unique_ptr<VideoSender> sender_;
  std::unique_ptr<VideoReceiver> receiver_;

  std::unique_ptr<fault::FaultInjector> injector_;    // owns link A + WAN
  std::unique_ptr<fault::FaultInjector> injector_b_;  // faults_on_link_b only
  std::unordered_set<std::uint64_t> delivered_ids_;  // legacy first-copy-wins
  sim::TimePoint last_feedback_forwarded_ = sim::TimePoint::never();
  std::uint64_t last_command_done_ = 0;
  metrics::TimeSeries command_latency_ms_;
  metrics::TimeSeries telemetry_latency_ms_;
  std::uint64_t commands_sent_ = 0;
  std::uint64_t telemetry_sent_ = 0;
  std::uint64_t fec_rate_changes_ = 0;
  std::uint64_t rescued_by_b_ = 0;
  std::uint64_t duplicates_discarded_ = 0;
  std::uint64_t radio_losses_ = 0;
  std::uint64_t next_id_ = 1ULL << 52;
};

}  // namespace rpv::pipeline
