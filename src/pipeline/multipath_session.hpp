// Multipath extension (paper Section 5 / reference [9]): stream the video
// redundantly over TWO cellular operators at once. Each RTP packet is
// duplicated onto both uplinks and the receiver forwards the first copy to
// arrive, so an outage (handover stall, deep fade) on one operator is masked
// whenever the other is healthy — the mechanism the paper proposes for
// meeting the 99.999% availability requirement.
//
// The two links run independent radio/handover state over their own cell
// layouts (e.g. rural P1 + rural P2) but share the UAV trajectory.
#pragma once

#include <memory>
#include <unordered_set>

#include "cellular/cellular_link.hpp"
#include "geo/trajectory.hpp"
#include "net/wan_path.hpp"
#include "obs/event_sink.hpp"
#include "pipeline/report.hpp"
#include "pipeline/session.hpp"
#include "pipeline/video_receiver.hpp"
#include "pipeline/video_sender.hpp"
#include "sim/simulator.hpp"

namespace rpv::pipeline {

// How the two uplinks are used:
//  * kDuplicate — every packet on both links, first copy wins (reliability;
//    the paper's reference [9]);
//  * kScheduled — each packet on the link with the currently shorter uplink
//    queue (capacity aggregation, MPTCP/MP-QUIC style per Section 5);
//  * kFailover — primary-only until the primary radio goes down (handover
//    gap, RLF, injected blackout), then the secondary carries the stream
//    until the primary heals. Half the airtime cost of kDuplicate.
enum class MultipathMode { kDuplicate, kScheduled, kFailover };

class MultipathSession {
 public:
  MultipathSession(SessionConfig cfg, cellular::CellLayout layout_a,
                   cellular::CellLayout layout_b,
                   const geo::Trajectory* trajectory,
                   std::string environment_name,
                   MultipathMode mode = MultipathMode::kDuplicate);

  SessionReport run();

  [[nodiscard]] cellular::CellularLink& link_a() { return *link_a_; }
  [[nodiscard]] cellular::CellularLink& link_b() { return *link_b_; }
  // Packets whose first copy arrived via the secondary link: how often the
  // redundancy actually rescued delivery.
  [[nodiscard]] std::uint64_t rescued_by_b() const { return rescued_by_b_; }
  [[nodiscard]] std::uint64_t duplicates_discarded() const {
    return duplicates_discarded_;
  }
  // kFailover: number of active-link switches (either direction).
  [[nodiscard]] std::uint64_t failover_events() const { return failover_events_; }

 private:
  void deliver_to_receiver(net::Packet p, bool via_b);
  void send_feedback(const rtp::FeedbackReport& report, std::size_t size);

  SessionConfig cfg_;
  MultipathMode mode_;
  const geo::Trajectory* trajectory_;
  std::string environment_;
  sim::Simulator sim_;
  sim::Rng rng_;
  // Per-operator event buses: each link publishes onto its own stream, and a
  // relay sink feeds that operator's predictor (no cross-talk between modems).
  obs::EventBus bus_a_;
  obs::EventBus bus_b_;
  std::unique_ptr<obs::FunctionSink> relay_a_;
  std::unique_ptr<obs::FunctionSink> relay_b_;
  std::unique_ptr<cellular::CellularLink> link_a_;
  std::unique_ptr<cellular::CellularLink> link_b_;
  // Predictor per operator; adapter A also drives the sender's dip/deferral
  // and (in kFailover mode) predictive switching away from the primary.
  std::unique_ptr<predict::ProactiveAdapter> adapter_a_;
  std::unique_ptr<predict::ProactiveAdapter> adapter_b_;
  std::unique_ptr<net::WanPath> wan_up_;
  std::unique_ptr<net::WanPath> wan_down_;
  FrameTable table_;
  std::unique_ptr<VideoSender> sender_;
  std::unique_ptr<VideoReceiver> receiver_;

  std::unique_ptr<fault::FaultInjector> injector_;  // faults hit link A only
  std::unordered_set<std::uint64_t> delivered_ids_;
  sim::TimePoint last_feedback_forwarded_ = sim::TimePoint::never();
  bool failover_on_b_ = false;
  std::uint64_t failover_events_ = 0;
  std::uint64_t rescued_by_b_ = 0;
  std::uint64_t duplicates_discarded_ = 0;
  std::uint64_t radio_losses_ = 0;
  std::uint64_t next_id_ = 1ULL << 52;
};

}  // namespace rpv::pipeline
