// SessionReport <-> JSON.
//
// Every field of a SessionReport — sample vectors, time-series traces, the
// handover log, fault outcomes — is persisted so a stored run is a full
// substitute for re-simulating it: the figure benches and `rpv_campaign
// --load` re-aggregate from these files alone. Serialization is canonical
// (fixed member order, shortest-round-trip doubles, integer counters stay
// integers), so two byte-identical reports dump to byte-identical JSON; the
// parallel-determinism tests rely on exactly this.
#pragma once

#include "json/json.hpp"
#include "obs/metrics_registry.hpp"
#include "pipeline/report.hpp"

namespace rpv::pipeline {

// Version 2 added stall_duration_ms and the prediction block; version 3 the
// observability block (enabled flag, recorder totals, counters, histograms);
// version 4 the bond block (policy name + bonded-scheduler counters);
// version 5 the fleet report family (rpv::fleet documents carrying a `fleet`
// block of merged metrics instead of N per-session reports); version 6 the
// per-path breakdown inside the bond block, the sat block (LEO pass
// handovers, outage totals, stall attribution), and sim_events.
inline constexpr int kReportSchemaVersion = 7;

[[nodiscard]] json::Value report_to_json(const SessionReport& r);

// Inverse of report_to_json; throws std::runtime_error (missing key / type
// mismatch) on documents that do not match the schema.
[[nodiscard]] SessionReport report_from_json(const json::Value& v);

// Canonical encoding of one obs::Histogram / a whole MetricsSummary, shared
// between the session report's obs block and the fleet report. Layouts
// round-trip exactly (integer counts stay integers).
[[nodiscard]] json::Value histogram_to_json(const obs::Histogram& h);
[[nodiscard]] obs::Histogram histogram_from_json(const json::Value& v);
[[nodiscard]] json::Value metrics_summary_to_json(const obs::MetricsSummary& m);
[[nodiscard]] obs::MetricsSummary metrics_summary_from_json(const json::Value& v);

}  // namespace rpv::pipeline
