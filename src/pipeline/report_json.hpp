// SessionReport <-> JSON.
//
// Every field of a SessionReport — sample vectors, time-series traces, the
// handover log, fault outcomes — is persisted so a stored run is a full
// substitute for re-simulating it: the figure benches and `rpv_campaign
// --load` re-aggregate from these files alone. Serialization is canonical
// (fixed member order, shortest-round-trip doubles, integer counters stay
// integers), so two byte-identical reports dump to byte-identical JSON; the
// parallel-determinism tests rely on exactly this.
#pragma once

#include "json/json.hpp"
#include "pipeline/report.hpp"

namespace rpv::pipeline {

// Version 2 added stall_duration_ms and the prediction block; version 3 the
// observability block (enabled flag, recorder totals, counters, histograms);
// version 4 the bond block (policy name + bonded-scheduler counters).
inline constexpr int kReportSchemaVersion = 4;

[[nodiscard]] json::Value report_to_json(const SessionReport& r);

// Inverse of report_to_json; throws std::runtime_error (missing key / type
// mismatch) on documents that do not match the schema.
[[nodiscard]] SessionReport report_from_json(const json::Value& v);

}  // namespace rpv::pipeline
