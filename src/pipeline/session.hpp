// One measurement run: UAV (or ground vehicle) trajectory + cellular link +
// WAN + video sender/receiver, wired into a single discrete-event simulation.
//
// This mirrors the paper's setup (Fig. 2): the sender re-encodes the source
// video at the CC's target bitrate and streams RTP/UDP over LTE to the
// remote server; feedback (RTCP) flows back over the same bearer. Probe mode
// replaces the video workload with ICMP-style pings for the latency-vs-
// altitude analyses.
#pragma once

#include <memory>
#include <optional>

#include "cc/gcc/gcc_controller.hpp"
#include "cc/scream/scream_controller.hpp"
#include "cellular/cellular_link.hpp"
#include "fault/fault_injector.hpp"
#include "geo/trajectory.hpp"
#include "net/wan_path.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/packet_log.hpp"
#include "obs/recorder.hpp"
#include "pipeline/report.hpp"
#include "predict/proactive_adapter.hpp"
#include "sat/mesh_link.hpp"
#include "sat/satellite_link.hpp"
#include "pipeline/video_receiver.hpp"
#include "pipeline/video_sender.hpp"
#include "sim/simulator.hpp"

namespace rpv::pipeline {

enum class CcKind { kStatic, kGcc, kScream, kNone /* probe-only */ };

[[nodiscard]] std::string cc_name(CcKind kind);

struct SessionConfig {
  CcKind cc = CcKind::kGcc;
  double static_bitrate_bps = 8e6;  // used when cc == kStatic

  SenderConfig sender;
  ReceiverConfig receiver;
  cc::gcc::GccConfig gcc;
  cc::scream::ScreamConfig scream;
  cellular::CellularLinkConfig link;
  net::WanConfig wan;

  // Probe traffic (RTT measurement); zero disables.
  sim::Duration probe_interval = sim::Duration::zero();

  // XOR FEC group size (packets per parity); 0 disables (paper ref [9]).
  int fec_group_size = 0;

  // Observability (rpv::obs). When `enabled`, the session subscribes a
  // bounded ring-buffer recorder plus the metrics registry to its event bus
  // (events + counters/histograms land in the SessionReport);
  // `capture_packets` additionally attaches the per-packet ledger that
  // replaced the old tcpdump-style net::PacketCapture. With everything off
  // the bus carries only the kLinkMeasurement subscription rpv::predict
  // needs, and every other publish site is a single mask test.
  struct ObsConfig {
    bool enabled = false;
    std::size_t ring_capacity = obs::RingBufferRecorder::kDefaultCapacity;
    bool capture_packets = false;
  } obs;

  // Command-and-control channel (the RP scenario of Fig. 1): the pilot sends
  // command packets downlink at a fixed cadence; the UAV returns telemetry
  // uplink, sharing the bearer (and its deep queue) with the video stream.
  struct C2Config {
    bool enabled = false;
    sim::Duration command_interval = sim::Duration::millis(50);   // 20 Hz
    std::size_t command_bytes = 60;
    sim::Duration telemetry_interval = sim::Duration::millis(100);  // 10 Hz
    std::size_t telemetry_bytes = 120;
  } c2;

  // Link-quality prediction (always instrumented) + the HO-aware proactive
  // policy (acts only when predict.proactive is set).
  predict::ProactiveConfig predict;

  // Scripted fault injection; an empty schedule injects nothing.
  fault::FaultSchedule faults;
  // Replay the same schedule on operator B too (MultipathSession only; a
  // single-path Session has no link B). Off by default — the historical
  // behaviour faults link A only, and existing runs stay byte-identical.
  // WAN events are not doubled: the WAN is shared and injector A owns it.
  bool faults_on_link_b = false;

  // 3-way multi-connectivity (rpv::sat): attach a LEO satellite path — and
  // optionally an aerial-mesh relay chain — as extra bonded paths behind the
  // two cellular operators. Consumed by MultipathSession only; a single-path
  // Session ignores it.
  struct SatConfig {
    bool enabled = false;
    sat::SatelliteLinkConfig link;
    bool mesh_enabled = false;
    sat::MeshLinkConfig mesh;
  } sat;

  // Enable the end-to-end resilience stack: sender feedback watchdog +
  // degradation ladder, receiver PLI keyframe recovery.
  bool resilience = false;

  std::uint64_t seed = 1;

  // Pre-flight validation of every config-level invariant (the checks that
  // used to be scattered across components). Throws std::invalid_argument.
  // Called by Session's constructor and by CampaignEngine before sharding.
  void validate() const;
};

class Session {
 public:
  // `layout` is copied; `trajectory` must outlive the session.
  Session(SessionConfig cfg, cellular::CellLayout layout,
          const geo::Trajectory* trajectory, std::string environment_name);

  // Run the full trajectory plus drain time and return the report.
  // Equivalent to begin(); simulator().run_until(drain_end()); collect().
  SessionReport run();

  // Schedule the session's workload (link measurement loop, sender,
  // receiver, probes, C2, faults) without running the simulator. An external
  // driver — rpv::fleet's epoch loop — then advances simulator() in steps;
  // stepping to drain_end() in any increments executes the identical event
  // sequence run() would.
  void begin();
  // Finish the receiver/adapter and build the report. Call exactly once,
  // after the simulator has reached drain_end().
  SessionReport collect();
  // End of the trajectory plus the in-flight drain allowance.
  [[nodiscard]] sim::TimePoint drain_end() const {
    return trajectory_->end() + sim::Duration::seconds(2.0);
  }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] cellular::CellularLink& link() { return *link_; }
  [[nodiscard]] VideoSender* sender() { return sender_.get(); }
  [[nodiscard]] VideoReceiver* receiver() { return receiver_.get(); }
  [[nodiscard]] predict::ProactiveAdapter& adapter() { return *adapter_; }

  // The session's event bus; subscribe extra sinks before run().
  [[nodiscard]] obs::EventBus& observer() { return bus_; }
  [[nodiscard]] const obs::RingBufferRecorder* recorder() const {
    return recorder_.get();
  }
  [[nodiscard]] const obs::MetricsRegistry* metrics() const {
    return metrics_.get();
  }
  // Per-packet ledger (cfg.obs.capture_packets); null when not attached.
  [[nodiscard]] const obs::PacketLog* capture() const {
    return packet_log_.get();
  }

 private:
  void send_probe();
  void send_command();
  void send_telemetry();
  std::unique_ptr<cc::RateController> make_controller();

  SessionConfig cfg_;
  const geo::Trajectory* trajectory_;
  std::string environment_;
  sim::Simulator sim_;
  sim::Rng rng_;
  obs::EventBus bus_;  // outlives every publisher below
  std::unique_ptr<obs::RingBufferRecorder> recorder_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::PacketLog> packet_log_;
  std::unique_ptr<obs::FunctionSink> measurement_relay_;
  std::unique_ptr<cellular::CellularLink> link_;
  std::unique_ptr<predict::ProactiveAdapter> adapter_;
  std::unique_ptr<net::WanPath> wan_up_;
  std::unique_ptr<net::WanPath> wan_down_;
  FrameTable table_;
  std::unique_ptr<VideoSender> sender_;
  std::unique_ptr<VideoReceiver> receiver_;

  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<sim::TimePoint> loss_times_;
  std::uint64_t radio_losses_ = 0;
  std::uint64_t media_losses_ = 0;
  std::uint64_t wan_drops_ = 0;
  std::vector<std::pair<double, double>> rtt_by_altitude_;
  metrics::TimeSeries command_latency_ms_;
  metrics::TimeSeries telemetry_latency_ms_;
  std::uint64_t commands_sent_ = 0;
  std::uint64_t telemetry_sent_ = 0;
  std::uint64_t next_probe_id_ = 1ULL << 48;
};

}  // namespace rpv::pipeline
