// Aggregated outcome of one measurement run (one flight / one ground run):
// every quantity the paper's figures and tables are computed from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "metrics/handover_log.hpp"
#include "metrics/time_series.hpp"
#include "obs/event.hpp"
#include "obs/metrics_registry.hpp"
#include "predict/stats.hpp"
#include "sim/time.hpp"

namespace rpv::pipeline {

// Per-path delivery/airtime attribution for bonded sessions (schema v6):
// one row per registered path, in registration order.
struct PathBreakdown {
  std::string kind;  // "cellular" | "satellite" | "mesh"
  std::uint64_t sent_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t lost_packets = 0;
  std::uint64_t airtime_bytes = 0;
};

struct SessionReport {
  std::string cc_name;
  std::string environment;
  sim::Duration duration;

  // --- Video delivery ---
  std::vector<double> goodput_mbps_windows;   // 1 s windows (Fig. 6)
  std::vector<double> fps_windows;            // 1 s windows (Fig. 7a)
  std::vector<double> playback_latency_ms;    // per played frame (Fig. 7c)
  std::vector<double> ssim_samples;           // per frame incl. unplayed zeros (Fig. 7b)
  double stalls_per_minute = 0.0;             // §4.2.1 table
  std::uint32_t stall_count = 0;
  std::vector<double> stall_duration_ms;      // per frozen gap
  std::uint32_t frames_encoded = 0;
  std::uint32_t frames_played = 0;
  std::uint32_t frames_corrupted = 0;
  double avg_goodput_mbps = 0.0;

  // --- Network ---
  std::vector<double> owd_ms;                 // per packet (Fig. 5)
  double per = 0.0;                           // radio + buffer drops / sent
  double ho_frequency_per_s = 0.0;            // Fig. 4a
  std::vector<double> het_ms;                 // Fig. 4b
  std::vector<metrics::LatencyRatio> ho_latency_ratios;  // Fig. 9
  std::size_t ping_pong_handovers = 0;
  std::size_t cells_seen = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t radio_losses = 0;
  std::uint64_t buffer_drops = 0;

  // --- Fault injection & resilience ---
  std::uint64_t wan_drops = 0;        // media dropped on the uplink WAN leg
  std::uint64_t media_losses = 0;     // radio/queue losses of media packets
  // sent - received - media_losses - wan_drops; >= 0 when accounting closes
  // (the remainder is packets still in flight when the run drained).
  std::int64_t packets_in_flight = 0;
  std::uint64_t fault_drops = 0;      // dropped by injected blackouts
  std::uint64_t faults_injected = 0;
  std::uint64_t watchdog_events = 0;  // sender feedback-silence episodes
  std::uint64_t pli_sent = 0;         // receiver keyframe requests
  std::uint32_t keyframes_forced = 0; // PLIs the sender honored
  int max_ladder_level = 0;           // deepest degradation level reached
  std::uint64_t failover_events = 0;  // multipath active-link switches
  std::vector<fault::FaultOutcome> fault_outcomes;

  // --- Prediction & proactive adaptation (rpv::predict) ---
  predict::PredictionStats prediction;

  // --- Connectivity-aware flight planning (rpv::uav, schema v7) ---
  // Filled by experiment::run_scenario under Policy::kPlanned with a warm
  // radio map; all-zero otherwise.
  bool planned = false;                       // planner ran on this session
  bool plan_replanned = false;                // a non-identity path won
  std::uint32_t plan_candidates = 0;          // candidate paths evaluated
  std::uint32_t plan_selected = 0;            // winner index (0 = mission)
  double plan_predicted_stall_ms_direct = 0;  // map cost of the mission path
  double plan_predicted_stall_ms_selected = 0;  // map cost of the flown path
  double plan_deviation_m = 0;                // mean displacement vs mission

  // --- Bonded link management (rpv::bond) ---
  // Empty/zero for single-path sessions; multipath sessions fill the policy
  // name ("duplicate", ..., "high-reliability") and the scheduler counters.
  std::string bond_policy;
  std::uint64_t bond_path_switches = 0;       // kPathSwitch events
  std::uint64_t bond_class_preemptions = 0;   // C2/telemetry diversions
  std::uint64_t bond_fec_rate_changes = 0;    // adaptive parity retunes
  std::uint64_t bond_reorder_flushes = 0;     // reorder-window releases
  std::uint64_t bond_duplicates_suppressed = 0;  // second copies discarded
  std::uint64_t bond_fec_recovered = 0;       // packets rebuilt from parity
  // Total bytes offered to the radios (every copy + parity) vs the sender's
  // unique media bytes: the airtime-overhead numerator/denominator for the
  // airtime-vs-stall tradeoff tables.
  std::uint64_t bond_airtime_bytes = 0;
  std::uint64_t bond_media_bytes = 0;
  std::vector<PathBreakdown> bond_paths;  // schema v6, empty pre-bond

  // --- LEO satellite / mesh path (rpv::sat, schema v6) ---
  bool sat_enabled = false;
  std::uint64_t sat_pass_handovers = 0;  // satellite-pass interruptions fired
  std::uint64_t sat_obstructions = 0;    // obstruction/rain-fade windows opened
  double sat_outage_ms = 0.0;            // total scheduled outage time
  // Player stall time whose onset fell inside a sat unavailable window —
  // the stall mass the satellite path could not mask (vs. did cause).
  double sat_stall_ms_in_outage = 0.0;

  // Discrete-event count of the run (events/sec denominators for benches).
  std::uint64_t sim_events = 0;

  // --- Observability (rpv::obs) ---
  bool obs_enabled = false;
  std::uint64_t obs_events_recorded = 0;  // accepted by the ring recorder
  std::uint64_t obs_events_dropped = 0;   // overwritten (ring overflow)
  obs::MetricsSummary obs_metrics;
  // Recorder snapshot (oldest first). Exported to events.jsonl by the
  // artifact store; deliberately NOT serialized into the report JSON.
  std::vector<obs::Event> events;

  // --- Pipeline internals ---
  std::uint64_t queue_discard_events = 0;     // SCReAM RTP-queue flushes
  std::uint64_t jitter_resyncs = 0;
  std::uint64_t scream_misloss_packets = 0;   // ack-window mislabelled losses

  // --- Traces (Fig. 8 timeline) ---
  metrics::TimeSeries owd_trace_ms;
  metrics::TimeSeries playback_latency_trace_ms;
  metrics::TimeSeries target_bitrate_trace_bps;
  metrics::TimeSeries capacity_trace_mbps;
  std::vector<sim::TimePoint> loss_times;
  metrics::HandoverLog handovers;

  // --- Probes (Fig. 13) ---
  std::vector<std::pair<double, double>> rtt_by_altitude;  // (altitude m, RTT ms)

  // --- Command & control channel ---
  std::vector<double> command_latency_ms;    // pilot -> UAV (downlink)
  std::vector<double> telemetry_latency_ms;  // UAV -> pilot (uplink, shares
                                             // the video bearer queue)
  std::uint64_t commands_sent = 0;
  std::uint64_t telemetry_sent = 0;

  // Seconds until the target bitrate first reached `bps` (ramp-up); negative
  // if never reached.
  [[nodiscard]] double ramp_up_seconds(double bps) const {
    for (const auto& s : target_bitrate_trace_bps.samples()) {
      if (s.value >= bps) return s.t.sec();
    }
    return -1.0;
  }
};

}  // namespace rpv::pipeline
