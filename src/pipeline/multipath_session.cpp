#include "pipeline/multipath_session.hpp"

#include "cc/static_rate.hpp"
#include "cc/gcc/gcc_controller.hpp"
#include "cc/scream/scream_controller.hpp"
#include "pipeline/session.hpp"

namespace rpv::pipeline {
namespace {

std::unique_ptr<cc::RateController> make_controller(const SessionConfig& cfg) {
  switch (cfg.cc) {
    case CcKind::kStatic:
      return std::make_unique<cc::StaticRate>(cfg.static_bitrate_bps);
    case CcKind::kGcc:
      return std::make_unique<cc::gcc::GccController>(cfg.gcc);
    case CcKind::kScream:
      return std::make_unique<cc::scream::ScreamController>(cfg.scream);
    case CcKind::kNone:
      break;
  }
  return std::make_unique<cc::StaticRate>(cfg.static_bitrate_bps);
}

}  // namespace

MultipathSession::MultipathSession(SessionConfig cfg,
                                   cellular::CellLayout layout_a,
                                   cellular::CellLayout layout_b,
                                   const geo::Trajectory* trajectory,
                                   std::string environment_name,
                                   MultipathMode mode)
    : cfg_{cfg},
      mode_{mode},
      trajectory_{trajectory},
      environment_{std::move(environment_name)},
      rng_{cfg.seed ^ 0xABCDEF12345ULL} {
  cfg_.validate();
  link_a_ = std::make_unique<cellular::CellularLink>(
      sim_, std::move(layout_a), cfg_.link, trajectory_, rng_.fork());
  link_b_ = std::make_unique<cellular::CellularLink>(
      sim_, std::move(layout_b), cfg_.link, trajectory_, rng_.fork());
  auto count_loss = [this](const net::Packet&) { ++radio_losses_; };
  link_a_->set_loss_callback(count_loss);
  link_b_->set_loss_callback(count_loss);
  cfg_.predict.ho.hysteresis_db = cfg_.link.handover.hysteresis_db;
  adapter_a_ = std::make_unique<predict::ProactiveAdapter>(cfg_.predict);
  adapter_b_ = std::make_unique<predict::ProactiveAdapter>(cfg_.predict);
  relay_a_ = std::make_unique<obs::FunctionSink>(
      obs::kind_bit(obs::EventKind::kLinkMeasurement),
      [this](const obs::Event& e) {
        adapter_a_->on_link_measurement(cellular::measurement_from_event(e));
      });
  relay_b_ = std::make_unique<obs::FunctionSink>(
      obs::kind_bit(obs::EventKind::kLinkMeasurement),
      [this](const obs::Event& e) {
        adapter_b_->on_link_measurement(cellular::measurement_from_event(e));
      });
  bus_a_.subscribe(relay_a_.get());
  bus_b_.subscribe(relay_b_.get());
  link_a_->attach_observer(&bus_a_);
  link_b_->attach_observer(&bus_b_);
  wan_up_ = std::make_unique<net::WanPath>(cfg_.wan, rng_.fork());
  wan_down_ = std::make_unique<net::WanPath>(cfg_.wan, rng_.fork());

  if (!cfg_.faults.empty()) {
    // Faults target the primary operator; the point of the exercise is
    // whether the secondary masks them.
    injector_ = std::make_unique<fault::FaultInjector>(sim_, cfg_.faults);
    injector_->attach_cellular(link_a_.get());
    injector_->attach_wan(wan_up_.get(), wan_down_.get());
  }
  if (cfg_.resilience) {
    cfg_.sender.resilience.enabled = true;
    cfg_.receiver.resilience.enabled = true;
  }

  switch (cfg_.cc) {
    case CcKind::kGcc:
      cfg_.receiver.feedback = FeedbackKind::kTwcc;
      cfg_.sender.discard_queue_ms = -1.0;
      break;
    case CcKind::kScream:
      cfg_.receiver.feedback = FeedbackKind::kRfc8888;
      cfg_.sender.discard_queue_ms = 100.0;
      break;
    default:
      cfg_.receiver.feedback = FeedbackKind::kNone;
      cfg_.sender.discard_queue_ms = -1.0;
      break;
  }

  receiver_ = std::make_unique<VideoReceiver>(
      sim_, cfg_.receiver, table_,
      [this](const rtp::FeedbackReport& report, std::size_t size) {
        send_feedback(report, size);
      },
      rng_.fork());

  sender_ = std::make_unique<VideoSender>(
      sim_, cfg_.sender, make_controller(cfg_), table_,
      [this](net::Packet p) {
        if (mode_ == MultipathMode::kFailover) {
          // Primary unless its radio is down (handover gap, RLF, blackout).
          // In proactive mode also vacate the primary while its predictor
          // says an HO is imminent — switching *before* the break instead of
          // after — provided the secondary is actually usable.
          const bool reactive_b = link_a_->link_down();
          bool use_b = reactive_b;
          if (!use_b && adapter_a_->proactive() &&
              adapter_a_->ho_imminent(sim_.now()) && !link_b_->link_down()) {
            use_b = true;
          }
          if (use_b != failover_on_b_) {
            failover_on_b_ = use_b;
            ++failover_events_;
            if (use_b && !reactive_b) adapter_a_->note_predictive_switch();
          }
          auto& link = use_b ? *link_b_ : *link_a_;
          link.send_uplink(std::move(p), [this, use_b](net::Packet q) {
            deliver_to_receiver(std::move(q), use_b);
          });
          return;
        }
        if (mode_ == MultipathMode::kScheduled) {
          // MPTCP-style: pick the link with the shorter standing queue.
          const bool use_b =
              link_b_->queuing_delay_ms() < link_a_->queuing_delay_ms();
          auto& link = use_b ? *link_b_ : *link_a_;
          link.send_uplink(std::move(p), [this, use_b](net::Packet q) {
            deliver_to_receiver(std::move(q), use_b);
          });
          return;
        }
        // Duplicate onto both uplinks; distinct descriptor ids so the links'
        // bookkeeping stays independent while the RTP metadata is identical.
        net::Packet copy = p;
        copy.id = next_id_++;
        link_a_->send_uplink(std::move(p), [this](net::Packet q) {
          deliver_to_receiver(std::move(q), /*via_b=*/false);
        });
        link_b_->send_uplink(std::move(copy), [this](net::Packet q) {
          deliver_to_receiver(std::move(q), /*via_b=*/true);
        });
      },
      rng_.fork());
  // Dip/deferral follows the primary operator's predictor (faults and the
  // reported handover log are primary-side too).
  sender_->set_proactive_adapter(adapter_a_.get());
  receiver_->set_owd_hook([this](sim::TimePoint t, double owd_ms) {
    adapter_a_->on_owd_sample(t, owd_ms);
  });
  receiver_->set_goodput_hook([this](sim::TimePoint t, double mbps) {
    adapter_a_->on_goodput_sample(t, mbps);
  });
}

void MultipathSession::deliver_to_receiver(net::Packet p, bool via_b) {
  if (wan_up_->drops_packet()) return;
  const auto delay = wan_up_->sample_delay();
  sim_.schedule_in(delay, [this, p, via_b]() mutable {
    // Deduplicate on the RTP identity (transport seq + frame id suffices for
    // a 16-bit window far larger than any realistic reorder span).
    const std::uint64_t key =
        (static_cast<std::uint64_t>(p.frame_id) << 16) | p.transport_seq;
    if (!delivered_ids_.insert(key).second) {
      ++duplicates_discarded_;
      return;
    }
    // Bound the dedup state by discarding entries for long-played frames;
    // frame ids are monotone so anything 200+ frames old cannot recur.
    if (delivered_ids_.size() > 60000) {
      const std::uint64_t keep_from =
          p.frame_id > 200 ? (static_cast<std::uint64_t>(p.frame_id - 200) << 16)
                           : 0;
      for (auto it = delivered_ids_.begin(); it != delivered_ids_.end();) {
        it = (*it < keep_from) ? delivered_ids_.erase(it) : std::next(it);
      }
    }
    if (via_b) ++rescued_by_b_;
    p.received = sim_.now();
    receiver_->on_packet(p);
  });
}

void MultipathSession::send_feedback(const rtp::FeedbackReport& report,
                                     std::size_t size) {
  net::Packet fb;
  fb.kind = net::PacketKind::kRtcpFeedback;
  fb.size_bytes = size;
  const auto generated = report.generated;
  auto forward = [this, report, generated](net::Packet) {
    // First copy wins; the duplicate is ignored.
    if (!last_feedback_forwarded_.is_never() &&
        generated <= last_feedback_forwarded_) {
      return;
    }
    last_feedback_forwarded_ = generated;
    if (sender_) sender_->on_feedback(report);
  };
  const auto delay = wan_down_->sample_delay();
  sim_.schedule_in(delay, [this, fb, forward] {
    net::Packet copy_a = fb;
    net::Packet copy_b = fb;
    copy_a.id = next_id_++;
    copy_b.id = next_id_++;
    link_a_->send_downlink(copy_a, forward);
    link_b_->send_downlink(copy_b, forward);
  });
}

SessionReport MultipathSession::run() {
  link_a_->start();
  link_b_->start();
  if (injector_) injector_->arm();
  const auto start = trajectory_->start();
  const auto end = trajectory_->end();
  sender_->start(start, end);
  receiver_->start(start, end);
  sim_.run_until(end + sim::Duration::seconds(2.0));
  receiver_->finish();
  adapter_a_->finish();
  adapter_b_->finish();

  SessionReport r;
  r.cc_name = cc_name(cfg_.cc) +
              (mode_ == MultipathMode::kDuplicate   ? "+mpdup"
               : mode_ == MultipathMode::kScheduled ? "+mpsched"
                                                    : "+mpfail");
  r.environment = environment_;
  r.duration = trajectory_->duration();

  const auto& player = receiver_->player();
  r.goodput_mbps_windows = receiver_->goodput_mbps().values();
  r.fps_windows = player.fps_windows();
  r.playback_latency_ms = player.playback_latency_ms().values();
  r.ssim_samples = player.played_ssim();
  r.stall_count = player.stall_count();
  r.stall_duration_ms = player.stall_durations_ms();
  r.stalls_per_minute = player.stalls_per_minute();
  r.frames_played = player.frames_played();
  r.frames_corrupted = receiver_->corrupted_frames();
  r.owd_ms = receiver_->owd_ms().values();
  r.owd_trace_ms = receiver_->owd_ms();
  r.playback_latency_trace_ms = player.playback_latency_ms();
  r.packets_received = receiver_->packets_received();
  r.frames_encoded = sender_->frames_encoded();
  r.packets_sent = sender_->packets_sent();
  r.queue_discard_events = sender_->queue_discard_events();
  r.target_bitrate_trace_bps = sender_->target_bitrate_trace();
  double total = 0.0;
  for (const double g : r.goodput_mbps_windows) total += g;
  r.avg_goodput_mbps =
      r.goodput_mbps_windows.empty()
          ? 0.0
          : total / static_cast<double>(r.goodput_mbps_windows.size());
  const std::uint32_t tail_allowance = 15;
  if (r.frames_encoded > r.frames_played + tail_allowance) {
    r.ssim_samples.insert(r.ssim_samples.end(),
                          r.frames_encoded - r.frames_played - tail_allowance,
                          0.0);
  }
  // A packet only counts as lost if BOTH copies died; approximate via the
  // receiver's view: sent vs delivered-unique.
  if (r.packets_sent > 0) {
    const std::uint64_t missing =
        r.packets_sent > r.packets_received ? r.packets_sent - r.packets_received
                                            : 0;
    r.per = static_cast<double>(missing) / static_cast<double>(r.packets_sent);
  }
  r.radio_losses = radio_losses_;
  r.handovers = link_a_->handover_log();
  r.ho_frequency_per_s = r.handovers.frequency(r.duration);
  r.het_ms = r.handovers.het_ms();
  r.cells_seen = link_a_->distinct_cells_seen() + link_b_->distinct_cells_seen();
  r.capacity_trace_mbps = link_a_->capacity_trace();
  r.ho_latency_ratios = r.handovers.latency_ratios(receiver_->owd_ms());

  r.fault_drops = link_a_->fault_drops() + link_b_->fault_drops();
  r.failover_events = failover_events_;
  // Prediction block follows the primary operator (matching the handover log
  // and fault placement above).
  r.prediction = adapter_a_->stats();
  r.watchdog_events = sender_->watchdog_events();
  r.keyframes_forced = sender_->keyframes_forced();
  r.max_ladder_level = sender_->max_ladder_level();
  r.pli_sent = receiver_->pli_sent();
  if (injector_) {
    r.faults_injected = injector_->injected();
    fault::attribute_recovery(injector_->outcomes(),
                              receiver_->player().playback_latency_ms(),
                              receiver_->clean_frame_times(),
                              receiver_->player().stall_times());
    r.fault_outcomes = injector_->outcomes();
  }
  return r;
}

}  // namespace rpv::pipeline
