#include "pipeline/multipath_session.hpp"

#include <algorithm>

#include "cc/static_rate.hpp"
#include "cc/gcc/gcc_controller.hpp"
#include "cc/scream/scream_controller.hpp"
#include "pipeline/session.hpp"

namespace rpv::pipeline {
namespace {

std::unique_ptr<cc::RateController> make_controller(const SessionConfig& cfg) {
  switch (cfg.cc) {
    case CcKind::kStatic:
      return std::make_unique<cc::StaticRate>(cfg.static_bitrate_bps);
    case CcKind::kGcc:
      return std::make_unique<cc::gcc::GccController>(cfg.gcc);
    case CcKind::kScream:
      return std::make_unique<cc::scream::ScreamController>(cfg.scream);
    case CcKind::kNone:
      break;
  }
  return std::make_unique<cc::StaticRate>(cfg.static_bitrate_bps);
}

// FEC controller tick cadence: fast enough to react within a loss burst,
// slow enough that the group size is stable across an interleave set.
constexpr sim::Duration kFecTickInterval = sim::Duration::millis(250);

}  // namespace

MultipathSession::MultipathSession(SessionConfig cfg,
                                   cellular::CellLayout layout_a,
                                   cellular::CellLayout layout_b,
                                   const geo::Trajectory* trajectory,
                                   std::string environment_name,
                                   bond::Policy policy)
    : cfg_{cfg},
      policy_{policy},
      trajectory_{trajectory},
      environment_{std::move(environment_name)},
      rng_{cfg.seed ^ 0xABCDEF12345ULL} {
  cfg_.validate();
  if (cfg_.obs.enabled) {
    // One recorder + registry across both operator streams and the bond
    // layer; events interleave in deterministic publish order.
    recorder_ = std::make_unique<obs::RingBufferRecorder>(cfg_.obs.ring_capacity);
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    bus_a_.subscribe(recorder_.get());
    bus_a_.subscribe(metrics_.get());
    bus_b_.subscribe(recorder_.get());
    bus_b_.subscribe(metrics_.get());
  }
  link_a_ = std::make_unique<cellular::CellularLink>(
      sim_, std::move(layout_a), cfg_.link, trajectory_, rng_.fork());
  link_b_ = std::make_unique<cellular::CellularLink>(
      sim_, std::move(layout_b), cfg_.link, trajectory_, rng_.fork());
  cfg_.predict.ho.hysteresis_db = cfg_.link.handover.hysteresis_db;
  adapter_a_ = std::make_unique<predict::ProactiveAdapter>(cfg_.predict);
  adapter_b_ = std::make_unique<predict::ProactiveAdapter>(cfg_.predict);
  if (cfg_.predict.map_prior != nullptr) {
    // One shared map prior: both operators fly the same trajectory, and the
    // spatial HO risk the map encodes (altitude, cell-edge zones) is not
    // operator-specific.
    adapter_a_->set_map_prior(cfg_.predict.map_prior, trajectory_);
    adapter_b_->set_map_prior(cfg_.predict.map_prior, trajectory_);
  }
  relay_a_ = std::make_unique<obs::FunctionSink>(
      obs::kind_bit(obs::EventKind::kLinkMeasurement),
      [this](const obs::Event& e) {
        adapter_a_->on_link_measurement(cellular::measurement_from_event(e));
      });
  relay_b_ = std::make_unique<obs::FunctionSink>(
      obs::kind_bit(obs::EventKind::kLinkMeasurement),
      [this](const obs::Event& e) {
        adapter_b_->on_link_measurement(cellular::measurement_from_event(e));
      });
  bus_a_.subscribe(relay_a_.get());
  bus_b_.subscribe(relay_b_.get());
  link_a_->attach_observer(&bus_a_);
  link_b_->attach_observer(&bus_b_);

  bond::LinkManagerConfig lm_cfg;
  lm_cfg.policy = policy_;
  lm_ = std::make_unique<bond::LinkManager>(sim_, lm_cfg);
  lm_->add_path(link_a_.get(), adapter_a_.get());
  lm_->add_path(link_b_.get(), adapter_b_.get());
  lm_->attach_observer(&bus_a_);

  link_a_->set_loss_callback([this](const net::Packet&) {
    ++radio_losses_;
    lm_->note_lost(0);
  });
  link_b_->set_loss_callback([this](const net::Packet&) {
    ++radio_losses_;
    lm_->note_lost(1);
  });
  wan_up_ = std::make_unique<net::WanPath>(cfg_.wan, rng_.fork());
  wan_down_ = std::make_unique<net::WanPath>(cfg_.wan, rng_.fork());

  if (!cfg_.faults.empty()) {
    // Faults target the primary operator; the point of the exercise is
    // whether the secondary masks them.
    injector_ = std::make_unique<fault::FaultInjector>(sim_, cfg_.faults);
    injector_->attach_cellular(link_a_.get());
    injector_->attach_wan(wan_up_.get(), wan_down_.get());
    injector_->attach_observer(&bus_a_);
    if (cfg_.faults_on_link_b) {
      // Simultaneous-degradation mode: the same schedule hits operator B.
      // The shared WAN stays owned by injector A so outages aren't doubled.
      injector_b_ = std::make_unique<fault::FaultInjector>(sim_, cfg_.faults);
      injector_b_->attach_cellular(link_b_.get());
      injector_b_->attach_observer(&bus_b_);
    }
  }
  if (cfg_.resilience) {
    cfg_.sender.resilience.enabled = true;
    cfg_.receiver.resilience.enabled = true;
  }

  switch (cfg_.cc) {
    case CcKind::kGcc:
      cfg_.receiver.feedback = FeedbackKind::kTwcc;
      cfg_.sender.discard_queue = sim::Duration::millis(-1);
      break;
    case CcKind::kScream:
      cfg_.receiver.feedback = FeedbackKind::kRfc8888;
      cfg_.sender.discard_queue = sim::Duration::millis(100);
      break;
    default:
      cfg_.receiver.feedback = FeedbackKind::kNone;
      cfg_.sender.discard_queue = sim::Duration::millis(-1);
      break;
  }

  // Bonded receive path: reorder window + duplicate suppression. FEC-backed
  // policies additionally share a group table between sender and receiver
  // and start from the controller's base parity rate.
  std::shared_ptr<rtp::FecGroupTable> fec_table;
  if (bond::is_bonded(policy_)) {
    if (bond::uses_fec(policy_)) {
      bond::FecControllerConfig fc;
      if (cfg_.fec_group_size > 0) {
        // An explicit base group size re-bases the whole ladder. Rungs are
        // floored at group 4 (25% parity) — denser parity under sustained
        // loss just overloads the bearer and feeds the loss it is trying to
        // repair.
        const int floor = std::max(2, std::min(cfg_.fec_group_size, 4));
        fc.ladder = {cfg_.fec_group_size,
                     std::max(cfg_.fec_group_size * 3 / 4, floor),
                     std::max(cfg_.fec_group_size / 2, floor),
                     std::max(cfg_.fec_group_size / 4, floor)};
      }
      if (policy_ == bond::Policy::kHighReliability) {
        // Elevated parity floor: never run fully unprotected.
        fc.ladder[0] = std::min(fc.ladder[0], 12);
      }
      fec_ctrl_ = std::make_unique<bond::AdaptiveFecController>(fc);
      cfg_.sender.fec_group_size = fec_ctrl_->group_size();
      fec_table = std::make_shared<rtp::FecGroupTable>();
    }
    window_ = std::make_unique<bond::ReorderWindow>(
        sim_, bond::ReorderWindowConfig{},
        [this](net::Packet p, int path) {
          if (path != 0) ++rescued_by_b_;
          p.received = sim_.now();
          receiver_->on_packet(p);
        });
    window_->attach_observer(&bus_a_);
  }

  receiver_ = std::make_unique<VideoReceiver>(
      sim_, cfg_.receiver, table_,
      [this](const rtp::FeedbackReport& report, std::size_t size) {
        send_feedback(report, size);
      },
      rng_.fork(), fec_table);

  sender_ = std::make_unique<VideoSender>(
      sim_, cfg_.sender, make_controller(cfg_), table_,
      [this](net::Packet p) { transmit_media(std::move(p)); }, rng_.fork(),
      fec_table);
  // Dip/deferral follows the primary operator's predictor (faults and the
  // reported handover log are primary-side too).
  sender_->set_proactive_adapter(adapter_a_.get());
  receiver_->set_owd_hook([this](sim::TimePoint t, double owd_ms) {
    adapter_a_->on_owd_sample(t, owd_ms);
  });
  receiver_->set_goodput_hook([this](sim::TimePoint t, double mbps) {
    adapter_a_->on_goodput_sample(t, mbps);
  });
  if (cfg_.obs.enabled) {
    sender_->attach_observer(&bus_a_);
    receiver_->attach_observer(&bus_a_);
  }

  // 3-way multi-connectivity: the satellite (and optional mesh) paths fork
  // their RNG streams LAST, after every stream the 2-path session already
  // forks, so enabling them never perturbs the cellular/WAN/receiver/sender
  // draws — 2-path runs replicate byte-identically.
  if (cfg_.sat.enabled) {
    sat_link_ = std::make_unique<sat::SatelliteLink>(sim_, cfg_.sat.link,
                                                     rng_.fork());
    sat_link_->attach_observer(&bus_a_);
    const int idx = lm_->add_path(sat_link_.get());
    sat_link_->set_loss_callback([this, idx](const net::Packet&) {
      ++radio_losses_;
      lm_->note_lost(idx);
    });
    if (cfg_.sat.mesh_enabled) {
      mesh_link_ = std::make_unique<sat::MeshHopLink>(sim_, cfg_.sat.mesh,
                                                      rng_.fork());
      const int midx = lm_->add_path(mesh_link_.get());
      mesh_link_->set_loss_callback([this, midx](const net::Packet&) {
        ++radio_losses_;
        lm_->note_lost(midx);
      });
    }
  }
}

void MultipathSession::send_on_path(int path, net::Packet p) {
  lm_->note_sent(path, p.size_bytes);
  path_link(path).send_uplink(std::move(p), [this, path](net::Packet q) {
    lm_->note_delivered(path);
    deliver_to_receiver(std::move(q), path);
  });
}

void MultipathSession::transmit_media(net::Packet p) {
  const auto d = lm_->route(bond::TrafficClass::kVideo, p);
  if (d.duplicate >= 0) {
    // Distinct descriptor ids so the links' bookkeeping stays independent
    // while the RTP identity is shared (dedup happens at the receiver edge).
    net::Packet copy = p;
    copy.id = next_id_++;
    copy.origin_id = p.id;
    send_on_path(d.primary, std::move(p));
    send_on_path(d.duplicate, std::move(copy));
    return;
  }
  send_on_path(d.primary, std::move(p));
}

void MultipathSession::deliver_to_receiver(net::Packet p, int path) {
  if (wan_up_->drops_packet()) return;
  const auto delay = wan_up_->sample_delay();
  sim_.schedule_in(delay, [this, p, path]() mutable {
    if (window_) {
      // Bonded path: duplicate suppression and in-order release live in the
      // reorder window; it invokes the receiver callback set at construction
      // and tracks skew for every registered path index.
      window_->on_packet(std::move(p), path);
      return;
    }
    // Legacy path: first copy wins, deduplicated on the RTP identity
    // (transport seq + frame id suffices for a 16-bit window far larger than
    // any realistic reorder span).
    const std::uint64_t key =
        (static_cast<std::uint64_t>(p.frame_id) << 16) | p.transport_seq;
    if (!delivered_ids_.insert(key).second) {
      ++duplicates_discarded_;
      return;
    }
    // Bound the dedup state by discarding entries for long-played frames;
    // frame ids are monotone so anything 200+ frames old cannot recur.
    if (delivered_ids_.size() > 60000) {
      const std::uint64_t keep_from =
          p.frame_id > 200 ? (static_cast<std::uint64_t>(p.frame_id - 200) << 16)
                           : 0;
      for (auto it = delivered_ids_.begin(); it != delivered_ids_.end();) {
        it = (*it < keep_from) ? delivered_ids_.erase(it) : std::next(it);
      }
    }
    if (path != 0) ++rescued_by_b_;
    p.received = sim_.now();
    receiver_->on_packet(p);
  });
}

void MultipathSession::send_feedback(const rtp::FeedbackReport& report,
                                     std::size_t size) {
  net::Packet fb;
  fb.kind = net::PacketKind::kRtcpFeedback;
  fb.size_bytes = size;
  const auto generated = report.generated;
  auto forward = [this, report, generated](net::Packet) {
    // First copy wins; the duplicate is ignored.
    if (!last_feedback_forwarded_.is_never() &&
        generated <= last_feedback_forwarded_) {
      return;
    }
    last_feedback_forwarded_ = generated;
    if (sender_) sender_->on_feedback(report);
  };
  const auto delay = wan_down_->sample_delay();
  sim_.schedule_in(delay, [this, fb, forward] {
    // Feedback rides every path; first copy wins above. With two cellular
    // paths this is id-for-id the historical copy_a/copy_b sequence.
    for (int i = 0; i < static_cast<int>(lm_->path_count()); ++i) {
      net::Packet copy = fb;
      copy.id = next_id_++;
      path_link(i).send_downlink(copy, forward);
    }
  });
}

void MultipathSession::send_command() {
  const auto now = sim_.now();
  if (now > trajectory_->end()) return;
  // Pilot-side C2: WAN back-haul once, then the chosen cellular downlink(s).
  // The reliability policies duplicate the command across operators; the
  // first copy to reach the UAV wins.
  net::Packet p;
  p.id = next_id_++;
  p.kind = net::PacketKind::kProbe;
  p.size_bytes = cfg_.c2.command_bytes + 40;
  ++commands_sent_;
  const std::uint64_t cseq = commands_sent_;
  const auto sent_at = now;
  const auto d = lm_->route(bond::TrafficClass::kC2, p);
  const auto wan = wan_down_->sample_delay();
  sim_.schedule_in(wan, [this, p, d, cseq, sent_at] {
    auto done = [this, cseq, sent_at](net::Packet) {
      if (cseq <= last_command_done_) return;  // duplicate copy: suppress
      last_command_done_ = cseq;
      command_latency_ms_.add(sim_.now(), (sim_.now() - sent_at).ms());
    };
    path_link(d.primary).send_downlink(p, done);
    if (d.duplicate >= 0) {
      net::Packet copy = p;
      copy.id = next_id_++;
      copy.origin_id = p.id;
      path_link(d.duplicate).send_downlink(copy, done);
    }
  });
  sim_.schedule_in(cfg_.c2.command_interval, [this] { send_command(); });
}

void MultipathSession::send_telemetry() {
  const auto now = sim_.now();
  if (now > trajectory_->end()) return;
  // UAV-side telemetry shares the uplink bearer (and its deep queue) with the
  // video stream; the class scheduler steers it around a congested path.
  net::Packet p;
  p.id = next_id_++;
  p.kind = net::PacketKind::kProbe;
  p.size_bytes = cfg_.c2.telemetry_bytes + 40;
  ++telemetry_sent_;
  const auto sent_at = now;
  const auto d = lm_->route(bond::TrafficClass::kTelemetry, p);
  lm_->note_sent(d.primary, p.size_bytes);
  path_link(d.primary).send_uplink(
      p, [this, sent_at, path = d.primary](net::Packet) {
        lm_->note_delivered(path);
        const auto wan = wan_up_->sample_delay();
        sim_.schedule_in(wan, [this, sent_at] {
          telemetry_latency_ms_.add(sim_.now(), (sim_.now() - sent_at).ms());
        });
      });
  sim_.schedule_in(cfg_.c2.telemetry_interval, [this] { send_telemetry(); });
}

void MultipathSession::fec_tick(sim::TimePoint end) {
  bond::FecInputs in;
  in.max_loss_ewma = lm_->max_loss_ewma();
  in.capacity_mbps = lm_->best_capacity_mbps();
  in.forecast_mbps = lm_->anchor_forecast_mbps();
  in.ho_armed = lm_->any_ho_armed();
  if (const auto change = fec_ctrl_->update(sim_.now(), in)) {
    sender_->set_fec_group_size(change->group_size);
    ++fec_rate_changes_;
    if (bus_a_.wants(obs::EventKind::kFecRateChange)) {
      bus_a_.publish(obs::Component::kBond, obs::EventKind::kFecRateChange,
                     sim_.now(),
                     obs::FecRatePayload{change->group_size,
                                         change->prev_group_size,
                                         in.max_loss_ewma, in.ho_armed});
    }
  }
  if (sim_.now() < end) {
    sim_.schedule_in(kFecTickInterval, [this, end] { fec_tick(end); });
  }
}

SessionReport MultipathSession::run() {
  link_a_->start();
  link_b_->start();
  if (injector_) injector_->arm();
  if (injector_b_) injector_b_->arm();
  const auto start = trajectory_->start();
  const auto end = trajectory_->end();
  if (sat_link_) {
    // Cover the whole run including the drain tail below.
    sat_link_->start((end - sim_.now()) + sim::Duration::seconds(2.0));
  }
  sender_->start(start, end);
  receiver_->start(start, end);
  if (cfg_.c2.enabled) {
    sim_.schedule_at(start, [this] { send_command(); });
    sim_.schedule_at(start, [this] { send_telemetry(); });
  }
  if (fec_ctrl_) {
    sim_.schedule_at(start + kFecTickInterval, [this, end] { fec_tick(end); });
  }
  sim_.run_until(end + sim::Duration::seconds(2.0));
  if (window_) window_->flush_all();
  receiver_->finish();
  adapter_a_->finish();
  adapter_b_->finish();

  SessionReport r;
  r.cc_name = cc_name(cfg_.cc) + bond::policy_suffix(policy_);
  r.environment = environment_;
  r.duration = trajectory_->duration();

  const auto& player = receiver_->player();
  r.goodput_mbps_windows = receiver_->goodput_mbps().values();
  r.fps_windows = player.fps_windows();
  r.playback_latency_ms = player.playback_latency_ms().values();
  r.ssim_samples = player.played_ssim();
  r.stall_count = player.stall_count();
  r.stall_duration_ms = player.stall_durations_ms();
  r.stalls_per_minute = player.stalls_per_minute();
  r.frames_played = player.frames_played();
  r.frames_corrupted = receiver_->corrupted_frames();
  r.owd_ms = receiver_->owd_ms().values();
  r.owd_trace_ms = receiver_->owd_ms();
  r.playback_latency_trace_ms = player.playback_latency_ms();
  r.packets_received = receiver_->packets_received();
  r.frames_encoded = sender_->frames_encoded();
  r.packets_sent = sender_->packets_sent();
  r.queue_discard_events = sender_->queue_discard_events();
  r.target_bitrate_trace_bps = sender_->target_bitrate_trace();
  double total = 0.0;
  for (const double g : r.goodput_mbps_windows) total += g;
  r.avg_goodput_mbps =
      r.goodput_mbps_windows.empty()
          ? 0.0
          : total / static_cast<double>(r.goodput_mbps_windows.size());
  const std::uint32_t tail_allowance = 15;
  if (r.frames_encoded > r.frames_played + tail_allowance) {
    r.ssim_samples.insert(r.ssim_samples.end(),
                          r.frames_encoded - r.frames_played - tail_allowance,
                          0.0);
  }
  // A packet only counts as lost if BOTH copies died; approximate via the
  // receiver's view: sent vs delivered-unique.
  if (r.packets_sent > 0) {
    const std::uint64_t missing =
        r.packets_sent > r.packets_received ? r.packets_sent - r.packets_received
                                            : 0;
    r.per = static_cast<double>(missing) / static_cast<double>(r.packets_sent);
  }
  r.radio_losses = radio_losses_;
  r.handovers = link_a_->handover_log();
  r.ho_frequency_per_s = r.handovers.frequency(r.duration);
  r.het_ms = r.handovers.het_ms();
  r.cells_seen = link_a_->distinct_cells_seen() + link_b_->distinct_cells_seen();
  r.capacity_trace_mbps = link_a_->capacity_trace();
  r.ho_latency_ratios = r.handovers.latency_ratios(receiver_->owd_ms());

  r.fault_drops = link_a_->fault_drops() + link_b_->fault_drops();
  r.failover_events = lm_->failover_events();
  // Prediction block follows the primary operator (matching the handover log
  // and fault placement above).
  r.prediction = adapter_a_->stats();
  r.watchdog_events = sender_->watchdog_events();
  r.keyframes_forced = sender_->keyframes_forced();
  r.max_ladder_level = sender_->max_ladder_level();
  r.pli_sent = receiver_->pli_sent();
  if (injector_) {
    r.faults_injected = injector_->injected();
    if (injector_b_) r.faults_injected += injector_b_->injected();
    fault::attribute_recovery(injector_->outcomes(),
                              receiver_->player().playback_latency_ms(),
                              receiver_->clean_frame_times(),
                              receiver_->player().stall_times());
    r.fault_outcomes = injector_->outcomes();
  }

  // Bonded link management.
  r.bond_policy = bond::policy_name(policy_);
  r.bond_path_switches = lm_->path_switches();
  r.bond_class_preemptions = lm_->class_preemptions();
  r.bond_fec_rate_changes = fec_rate_changes_;
  r.bond_reorder_flushes = window_ ? window_->flushes() : 0;
  r.bond_duplicates_suppressed = duplicates_discarded();
  r.bond_fec_recovered = receiver_->fec_recovered();
  r.bond_airtime_bytes = lm_->airtime_bytes();
  r.bond_media_bytes = sender_->bytes_sent();
  for (int i = 0; i < static_cast<int>(lm_->path_count()); ++i) {
    const auto c = lm_->path_counters(i);
    PathBreakdown pb;
    pb.kind = std::string(bond::path_kind_name(c.kind));
    pb.sent_packets = c.sent_packets;
    pb.delivered_packets = c.delivered_packets;
    pb.lost_packets = c.lost_packets;
    pb.airtime_bytes = c.airtime_bytes;
    r.bond_paths.push_back(std::move(pb));
  }

  if (sat_link_) {
    r.sat_enabled = true;
    r.sat_pass_handovers = sat_link_->pass_handovers();
    r.sat_obstructions = sat_link_->obstructions();
    r.sat_outage_ms = sat_link_->outage_ms();
    // Stall mass whose onset overlapped a sat unavailable window: the part
    // of the stall budget the satellite path was in no position to mask.
    const auto& stall_times = player.stall_times();
    const auto& stall_durs = player.stall_durations_ms();
    const std::size_t n = std::min(stall_times.size(), stall_durs.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (sat_link_->in_unavailable_window(stall_times[i])) {
        r.sat_stall_ms_in_outage += stall_durs[i];
      }
    }
  }

  r.obs_enabled = cfg_.obs.enabled;
  if (recorder_) {
    r.events = recorder_->snapshot();
    r.obs_events_recorded = recorder_->recorded();
    r.obs_events_dropped = recorder_->dropped();
  }
  if (metrics_) r.obs_metrics = metrics_->summary();

  r.command_latency_ms = command_latency_ms_.values();
  r.telemetry_latency_ms = telemetry_latency_ms_.values();
  r.commands_sent = commands_sent_;
  r.telemetry_sent = telemetry_sent_;
  r.sim_events = sim_.executed_events();
  return r;
}

}  // namespace rpv::pipeline
