#include "pipeline/qoe.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/cdf.hpp"

namespace rpv::pipeline {

QoeBreakdown score_qoe(const SessionReport& report) {
  QoeBreakdown q;

  metrics::Cdf ssim;
  ssim.add_all(report.ssim_samples);
  metrics::Cdf latency;
  latency.add_all(report.playback_latency_ms);
  if (ssim.empty() || latency.empty()) return q;

  // Visual: being above the RP threshold is necessary; detail above 0.9 is
  // the comfortable regime, weighted half.
  const double safe = ssim.fraction_at_least(0.5);
  const double sharp = ssim.fraction_at_least(0.9);
  q.visual = 0.5 * safe + 0.5 * sharp;

  // Responsiveness: the paper's 300 ms playback budget.
  q.responsiveness = latency.fraction_below(300.0);

  // Smoothness: exponential penalty per stall; 1 stall/min ~ 0.61.
  q.smoothness = std::exp(-0.5 * report.stalls_per_minute);

  // Geometric blend keeps any single failing dimension dominant (a pilot
  // cannot trade a frozen picture for a sharp one), mapped onto MOS 1..5.
  const double blend =
      std::cbrt(std::max(q.visual, 1e-6) * std::max(q.responsiveness, 1e-6) *
                std::max(q.smoothness, 1e-6));
  q.mos = 1.0 + 4.0 * blend;
  return q;
}

}  // namespace rpv::pipeline
