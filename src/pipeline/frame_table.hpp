// Shared frame-metadata registry.
//
// In the real pipeline the per-frame information the receiver needs (frame
// number, encode timestamp) travels inside the picture as QR/barcodes and in
// RTP headers. The simulation keeps payloads virtual, so sender and receiver
// share this table instead; it carries exactly the data that would have been
// recovered from the decoded frames.
//
// Frame ids are assigned monotonically from 0 by the sender, so the table is
// an id-indexed slab (one vector, no hashing, no per-frame node allocation);
// sparse test ids simply leave unoccupied slots.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "video/frame.hpp"

namespace rpv::pipeline {

class FrameTable {
 public:
  void put(const video::Frame& f) {
    if (f.id >= frames_.size()) frames_.resize(f.id + 1);
    Slot& s = frames_[f.id];
    if (!s.occupied) ++size_;
    s.frame = f;
    s.occupied = true;
  }

  [[nodiscard]] std::optional<video::Frame> get(std::uint32_t id) const {
    if (id >= frames_.size() || !frames_[id].occupied) return std::nullopt;
    return frames_[id].frame;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  struct Slot {
    video::Frame frame;
    bool occupied = false;
  };
  std::vector<Slot> frames_;
  std::size_t size_ = 0;
};

}  // namespace rpv::pipeline
