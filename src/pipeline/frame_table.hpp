// Shared frame-metadata registry.
//
// In the real pipeline the per-frame information the receiver needs (frame
// number, encode timestamp) travels inside the picture as QR/barcodes and in
// RTP headers. The simulation keeps payloads virtual, so sender and receiver
// share this table instead; it carries exactly the data that would have been
// recovered from the decoded frames.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "video/frame.hpp"

namespace rpv::pipeline {

class FrameTable {
 public:
  void put(const video::Frame& f) { frames_[f.id] = f; }

  [[nodiscard]] std::optional<video::Frame> get(std::uint32_t id) const {
    const auto it = frames_.find(id);
    if (it == frames_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::size_t size() const { return frames_.size(); }

 private:
  std::unordered_map<std::uint32_t, video::Frame> frames_;
};

}  // namespace rpv::pipeline
