#include "pipeline/report_json.hpp"

namespace rpv::pipeline {

namespace {

json::Value doubles_to_json(const std::vector<double>& xs) {
  json::Value a = json::Value::array();
  for (const double x : xs) a.push_back(x);
  return a;
}

std::vector<double> doubles_from_json(const json::Value& v) {
  std::vector<double> out;
  out.reserve(v.items().size());
  for (const auto& x : v.items()) out.push_back(x.as_double());
  return out;
}

// A time series is stored as two parallel arrays ("t_us", "values") — more
// compact than an array of pairs at the row counts traces reach (~1e5).
json::Value series_to_json(const metrics::TimeSeries& ts) {
  json::Value t = json::Value::array();
  json::Value vals = json::Value::array();
  for (const auto& s : ts.samples()) {
    t.push_back(s.t.us());
    vals.push_back(s.value);
  }
  json::Value obj = json::Value::object();
  obj.set("t_us", std::move(t)).set("values", std::move(vals));
  return obj;
}

metrics::TimeSeries series_from_json(const json::Value& v) {
  const auto& t = v.at("t_us").items();
  const auto& vals = v.at("values").items();
  if (t.size() != vals.size()) {
    throw std::runtime_error("report_json: time-series arrays disagree");
  }
  metrics::TimeSeries ts;
  for (std::size_t i = 0; i < t.size(); ++i) {
    ts.add(sim::TimePoint::from_us(t[i].as_i64()), vals[i].as_double());
  }
  return ts;
}

json::Value handovers_to_json(const metrics::HandoverLog& log) {
  json::Value a = json::Value::array();
  for (const auto& e : log.events()) {
    json::Value o = json::Value::object();
    o.set("start_us", e.start.us())
        .set("het_us", e.het.us())
        .set("source_cell", static_cast<std::int64_t>(e.source_cell))
        .set("target_cell", static_cast<std::int64_t>(e.target_cell))
        .set("ping_pong", e.ping_pong);
    a.push_back(std::move(o));
  }
  return a;
}

metrics::HandoverLog handovers_from_json(const json::Value& v) {
  metrics::HandoverLog log;
  for (const auto& o : v.items()) {
    metrics::HandoverEvent e;
    e.start = sim::TimePoint::from_us(o.at("start_us").as_i64());
    e.het = sim::Duration::micros(o.at("het_us").as_i64());
    e.source_cell = static_cast<std::uint32_t>(o.at("source_cell").as_u64());
    e.target_cell = static_cast<std::uint32_t>(o.at("target_cell").as_u64());
    e.ping_pong = o.at("ping_pong").as_bool();
    log.record(e);
  }
  return log;
}

json::Value outcomes_to_json(const std::vector<fault::FaultOutcome>& os) {
  json::Value a = json::Value::array();
  for (const auto& o : os) {
    json::Value j = json::Value::object();
    j.set("at_us", o.event.at.us())
        .set("duration_us", o.event.duration.us())
        .set("kind", static_cast<std::int64_t>(o.event.kind))
        .set("magnitude", o.event.magnitude)
        .set("effective_us", o.effective_duration.us())
        .set("recovery_ms", o.recovery_ms)
        .set("stalls_attributed", static_cast<std::int64_t>(o.stalls_attributed));
    a.push_back(std::move(j));
  }
  return a;
}

std::vector<fault::FaultOutcome> outcomes_from_json(const json::Value& v) {
  std::vector<fault::FaultOutcome> out;
  for (const auto& j : v.items()) {
    fault::FaultOutcome o;
    o.event.at = sim::TimePoint::from_us(j.at("at_us").as_i64());
    o.event.duration = sim::Duration::micros(j.at("duration_us").as_i64());
    o.event.kind = static_cast<fault::FaultKind>(j.at("kind").as_i64());
    o.event.magnitude = j.at("magnitude").as_double();
    o.effective_duration = sim::Duration::micros(j.at("effective_us").as_i64());
    o.recovery_ms = j.at("recovery_ms").as_double();
    o.stalls_attributed = static_cast<int>(j.at("stalls_attributed").as_i64());
    out.push_back(o);
  }
  return out;
}

json::Value pairs_to_json(const std::vector<std::pair<double, double>>& ps) {
  json::Value a = json::Value::array();
  for (const auto& [x, y] : ps) {
    json::Value p = json::Value::array();
    p.push_back(x).push_back(y);
    a.push_back(std::move(p));
  }
  return a;
}

std::vector<std::pair<double, double>> pairs_from_json(const json::Value& v) {
  std::vector<std::pair<double, double>> out;
  for (const auto& p : v.items()) {
    out.emplace_back(p.items().at(0).as_double(), p.items().at(1).as_double());
  }
  return out;
}

}  // namespace

json::Value histogram_to_json(const obs::Histogram& h) {
  json::Value e = json::Value::object();
  e.set("name", h.name).set("edges", doubles_to_json(h.edges));
  json::Value counts = json::Value::array();
  for (const auto c : h.counts) counts.push_back(c);
  e.set("counts", std::move(counts));
  e.set("total", h.total);
  return e;
}

obs::Histogram histogram_from_json(const json::Value& v) {
  obs::Histogram h;
  h.name = v.at("name").as_string();
  h.edges = doubles_from_json(v.at("edges"));
  for (const auto& c : v.at("counts").items()) {
    h.counts.push_back(c.as_u64());
  }
  h.total = v.at("total").as_u64();
  return h;
}

json::Value metrics_summary_to_json(const obs::MetricsSummary& m) {
  json::Value o = json::Value::object();
  json::Value counters = json::Value::array();
  for (const auto& c : m.counters) {
    json::Value e = json::Value::object();
    e.set("name", c.name).set("value", c.value);
    counters.push_back(std::move(e));
  }
  o.set("counters", std::move(counters));
  json::Value hists = json::Value::array();
  for (const auto& h : m.histograms) {
    hists.push_back(histogram_to_json(h));
  }
  o.set("histograms", std::move(hists));
  return o;
}

obs::MetricsSummary metrics_summary_from_json(const json::Value& v) {
  obs::MetricsSummary m;
  for (const auto& e : v.at("counters").items()) {
    obs::Counter c;
    c.name = e.at("name").as_string();
    c.value = e.at("value").as_u64();
    m.counters.push_back(std::move(c));
  }
  for (const auto& e : v.at("histograms").items()) {
    m.histograms.push_back(histogram_from_json(e));
  }
  return m;
}

json::Value report_to_json(const SessionReport& r) {
  json::Value v = json::Value::object();
  v.set("schema", std::int64_t{kReportSchemaVersion});
  v.set("cc_name", r.cc_name);
  v.set("environment", r.environment);
  v.set("duration_us", r.duration.us());

  // Video delivery.
  v.set("goodput_mbps_windows", doubles_to_json(r.goodput_mbps_windows));
  v.set("fps_windows", doubles_to_json(r.fps_windows));
  v.set("playback_latency_ms", doubles_to_json(r.playback_latency_ms));
  v.set("ssim_samples", doubles_to_json(r.ssim_samples));
  v.set("stalls_per_minute", r.stalls_per_minute);
  v.set("stall_count", std::uint64_t{r.stall_count});
  v.set("stall_duration_ms", doubles_to_json(r.stall_duration_ms));
  v.set("frames_encoded", std::uint64_t{r.frames_encoded});
  v.set("frames_played", std::uint64_t{r.frames_played});
  v.set("frames_corrupted", std::uint64_t{r.frames_corrupted});
  v.set("avg_goodput_mbps", r.avg_goodput_mbps);

  // Network.
  v.set("owd_ms", doubles_to_json(r.owd_ms));
  v.set("per", r.per);
  v.set("ho_frequency_per_s", r.ho_frequency_per_s);
  v.set("het_ms", doubles_to_json(r.het_ms));
  {
    json::Value ratios = json::Value::array();
    for (const auto& lr : r.ho_latency_ratios) {
      json::Value p = json::Value::array();
      p.push_back(lr.before).push_back(lr.after);
      ratios.push_back(std::move(p));
    }
    v.set("ho_latency_ratios", std::move(ratios));
  }
  v.set("ping_pong_handovers", std::uint64_t{r.ping_pong_handovers});
  v.set("cells_seen", std::uint64_t{r.cells_seen});
  v.set("packets_sent", r.packets_sent);
  v.set("packets_received", r.packets_received);
  v.set("radio_losses", r.radio_losses);
  v.set("buffer_drops", r.buffer_drops);

  // Fault injection & resilience.
  v.set("wan_drops", r.wan_drops);
  v.set("media_losses", r.media_losses);
  v.set("packets_in_flight", r.packets_in_flight);
  v.set("fault_drops", r.fault_drops);
  v.set("faults_injected", r.faults_injected);
  v.set("watchdog_events", r.watchdog_events);
  v.set("pli_sent", r.pli_sent);
  v.set("keyframes_forced", std::uint64_t{r.keyframes_forced});
  v.set("max_ladder_level", std::int64_t{r.max_ladder_level});
  v.set("failover_events", r.failover_events);
  v.set("fault_outcomes", outcomes_to_json(r.fault_outcomes));

  // Prediction & proactive adaptation.
  {
    const auto& p = r.prediction;
    json::Value o = json::Value::object();
    o.set("enabled", p.enabled)
        .set("proactive", p.proactive)
        .set("ho_predicted", p.ho_predicted)
        .set("ho_true_positives", p.ho_true_positives)
        .set("ho_false_positives", p.ho_false_positives)
        .set("ho_missed", p.ho_missed)
        .set("ho_lead_time_ms", doubles_to_json(p.ho_lead_time_ms))
        .set("capacity_mae_mbps", p.capacity_mae_mbps)
        .set("capacity_samples", p.capacity_samples)
        .set("dip_windows", p.dip_windows)
        .set("keyframes_deferred", p.keyframes_deferred)
        .set("proactive_flushes", p.proactive_flushes)
        .set("predictive_switches", p.predictive_switches)
        .set("map_prior", p.map_prior)
        .set("map_prior_arms", p.map_prior_arms);
    v.set("prediction", std::move(o));
  }

  // Connectivity-aware flight planning (rpv::uav, schema v7).
  {
    json::Value o = json::Value::object();
    o.set("planned", r.planned)
        .set("replanned", r.plan_replanned)
        .set("candidates", std::uint64_t{r.plan_candidates})
        .set("selected", std::uint64_t{r.plan_selected})
        .set("predicted_stall_ms_direct", r.plan_predicted_stall_ms_direct)
        .set("predicted_stall_ms_selected", r.plan_predicted_stall_ms_selected)
        .set("deviation_m", r.plan_deviation_m);
    v.set("planning", std::move(o));
  }

  // Bonded link management (schema v4; per-path breakdown since v6).
  {
    json::Value o = json::Value::object();
    o.set("policy", r.bond_policy)
        .set("path_switches", r.bond_path_switches)
        .set("class_preemptions", r.bond_class_preemptions)
        .set("fec_rate_changes", r.bond_fec_rate_changes)
        .set("reorder_flushes", r.bond_reorder_flushes)
        .set("duplicates_suppressed", r.bond_duplicates_suppressed)
        .set("fec_recovered", r.bond_fec_recovered)
        .set("airtime_bytes", r.bond_airtime_bytes)
        .set("media_bytes", r.bond_media_bytes);
    json::Value paths = json::Value::array();
    for (const auto& p : r.bond_paths) {
      json::Value e = json::Value::object();
      e.set("kind", p.kind)
          .set("sent_packets", p.sent_packets)
          .set("delivered_packets", p.delivered_packets)
          .set("lost_packets", p.lost_packets)
          .set("airtime_bytes", p.airtime_bytes);
      paths.push_back(std::move(e));
    }
    o.set("paths", std::move(paths));
    v.set("bond", std::move(o));
  }

  // LEO satellite / mesh path (schema v6).
  {
    json::Value o = json::Value::object();
    o.set("enabled", r.sat_enabled)
        .set("pass_handovers", r.sat_pass_handovers)
        .set("obstructions", r.sat_obstructions)
        .set("outage_ms", r.sat_outage_ms)
        .set("stall_ms_in_outage", r.sat_stall_ms_in_outage);
    v.set("sat", std::move(o));
  }
  v.set("sim_events", r.sim_events);

  // Observability. Counters and histograms are small and round-trip here;
  // the recorder's event snapshot is exported as a sibling events.jsonl by
  // the artifact store, never inlined into the report document.
  {
    json::Value o = metrics_summary_to_json(r.obs_metrics);
    o.set("enabled", r.obs_enabled)
        .set("events_recorded", r.obs_events_recorded)
        .set("events_dropped", r.obs_events_dropped);
    v.set("obs", std::move(o));
  }

  // Pipeline internals.
  v.set("queue_discard_events", r.queue_discard_events);
  v.set("jitter_resyncs", r.jitter_resyncs);
  v.set("scream_misloss_packets", r.scream_misloss_packets);

  // Traces.
  v.set("owd_trace_ms", series_to_json(r.owd_trace_ms));
  v.set("playback_latency_trace_ms", series_to_json(r.playback_latency_trace_ms));
  v.set("target_bitrate_trace_bps", series_to_json(r.target_bitrate_trace_bps));
  v.set("capacity_trace_mbps", series_to_json(r.capacity_trace_mbps));
  {
    json::Value times = json::Value::array();
    for (const auto& t : r.loss_times) times.push_back(t.us());
    v.set("loss_times_us", std::move(times));
  }
  v.set("handovers", handovers_to_json(r.handovers));

  // Probes.
  v.set("rtt_by_altitude", pairs_to_json(r.rtt_by_altitude));

  // Command & control.
  v.set("command_latency_ms", doubles_to_json(r.command_latency_ms));
  v.set("telemetry_latency_ms", doubles_to_json(r.telemetry_latency_ms));
  v.set("commands_sent", r.commands_sent);
  v.set("telemetry_sent", r.telemetry_sent);
  return v;
}

SessionReport report_from_json(const json::Value& v) {
  const auto schema = v.at("schema").as_i64();
  if (schema != kReportSchemaVersion) {
    throw std::runtime_error("report_json: unsupported schema version " +
                             std::to_string(schema));
  }
  SessionReport r;
  r.cc_name = v.at("cc_name").as_string();
  r.environment = v.at("environment").as_string();
  r.duration = sim::Duration::micros(v.at("duration_us").as_i64());

  r.goodput_mbps_windows = doubles_from_json(v.at("goodput_mbps_windows"));
  r.fps_windows = doubles_from_json(v.at("fps_windows"));
  r.playback_latency_ms = doubles_from_json(v.at("playback_latency_ms"));
  r.ssim_samples = doubles_from_json(v.at("ssim_samples"));
  r.stalls_per_minute = v.at("stalls_per_minute").as_double();
  r.stall_count = static_cast<std::uint32_t>(v.at("stall_count").as_u64());
  r.stall_duration_ms = doubles_from_json(v.at("stall_duration_ms"));
  r.frames_encoded = static_cast<std::uint32_t>(v.at("frames_encoded").as_u64());
  r.frames_played = static_cast<std::uint32_t>(v.at("frames_played").as_u64());
  r.frames_corrupted =
      static_cast<std::uint32_t>(v.at("frames_corrupted").as_u64());
  r.avg_goodput_mbps = v.at("avg_goodput_mbps").as_double();

  r.owd_ms = doubles_from_json(v.at("owd_ms"));
  r.per = v.at("per").as_double();
  r.ho_frequency_per_s = v.at("ho_frequency_per_s").as_double();
  r.het_ms = doubles_from_json(v.at("het_ms"));
  for (const auto& p : v.at("ho_latency_ratios").items()) {
    metrics::LatencyRatio lr;
    lr.before = p.items().at(0).as_double();
    lr.after = p.items().at(1).as_double();
    r.ho_latency_ratios.push_back(lr);
  }
  r.ping_pong_handovers =
      static_cast<std::size_t>(v.at("ping_pong_handovers").as_u64());
  r.cells_seen = static_cast<std::size_t>(v.at("cells_seen").as_u64());
  r.packets_sent = v.at("packets_sent").as_u64();
  r.packets_received = v.at("packets_received").as_u64();
  r.radio_losses = v.at("radio_losses").as_u64();
  r.buffer_drops = v.at("buffer_drops").as_u64();

  r.wan_drops = v.at("wan_drops").as_u64();
  r.media_losses = v.at("media_losses").as_u64();
  r.packets_in_flight = v.at("packets_in_flight").as_i64();
  r.fault_drops = v.at("fault_drops").as_u64();
  r.faults_injected = v.at("faults_injected").as_u64();
  r.watchdog_events = v.at("watchdog_events").as_u64();
  r.pli_sent = v.at("pli_sent").as_u64();
  r.keyframes_forced = static_cast<std::uint32_t>(v.at("keyframes_forced").as_u64());
  r.max_ladder_level = static_cast<int>(v.at("max_ladder_level").as_i64());
  r.failover_events = v.at("failover_events").as_u64();
  r.fault_outcomes = outcomes_from_json(v.at("fault_outcomes"));

  {
    const auto& o = v.at("prediction");
    auto& p = r.prediction;
    p.enabled = o.at("enabled").as_bool();
    p.proactive = o.at("proactive").as_bool();
    p.ho_predicted = o.at("ho_predicted").as_u64();
    p.ho_true_positives = o.at("ho_true_positives").as_u64();
    p.ho_false_positives = o.at("ho_false_positives").as_u64();
    p.ho_missed = o.at("ho_missed").as_u64();
    p.ho_lead_time_ms = doubles_from_json(o.at("ho_lead_time_ms"));
    p.capacity_mae_mbps = o.at("capacity_mae_mbps").as_double();
    p.capacity_samples = o.at("capacity_samples").as_u64();
    p.dip_windows = o.at("dip_windows").as_u64();
    p.keyframes_deferred = o.at("keyframes_deferred").as_u64();
    p.proactive_flushes = o.at("proactive_flushes").as_u64();
    p.predictive_switches = o.at("predictive_switches").as_u64();
    p.map_prior = o.at("map_prior").as_bool();
    p.map_prior_arms = o.at("map_prior_arms").as_u64();
  }

  {
    const auto& o = v.at("planning");
    r.planned = o.at("planned").as_bool();
    r.plan_replanned = o.at("replanned").as_bool();
    r.plan_candidates = static_cast<std::uint32_t>(o.at("candidates").as_u64());
    r.plan_selected = static_cast<std::uint32_t>(o.at("selected").as_u64());
    r.plan_predicted_stall_ms_direct =
        o.at("predicted_stall_ms_direct").as_double();
    r.plan_predicted_stall_ms_selected =
        o.at("predicted_stall_ms_selected").as_double();
    r.plan_deviation_m = o.at("deviation_m").as_double();
  }

  {
    const auto& o = v.at("bond");
    r.bond_policy = o.at("policy").as_string();
    r.bond_path_switches = o.at("path_switches").as_u64();
    r.bond_class_preemptions = o.at("class_preemptions").as_u64();
    r.bond_fec_rate_changes = o.at("fec_rate_changes").as_u64();
    r.bond_reorder_flushes = o.at("reorder_flushes").as_u64();
    r.bond_duplicates_suppressed = o.at("duplicates_suppressed").as_u64();
    r.bond_fec_recovered = o.at("fec_recovered").as_u64();
    r.bond_airtime_bytes = o.at("airtime_bytes").as_u64();
    r.bond_media_bytes = o.at("media_bytes").as_u64();
    for (const auto& e : o.at("paths").items()) {
      PathBreakdown p;
      p.kind = e.at("kind").as_string();
      p.sent_packets = e.at("sent_packets").as_u64();
      p.delivered_packets = e.at("delivered_packets").as_u64();
      p.lost_packets = e.at("lost_packets").as_u64();
      p.airtime_bytes = e.at("airtime_bytes").as_u64();
      r.bond_paths.push_back(std::move(p));
    }
  }

  {
    const auto& o = v.at("sat");
    r.sat_enabled = o.at("enabled").as_bool();
    r.sat_pass_handovers = o.at("pass_handovers").as_u64();
    r.sat_obstructions = o.at("obstructions").as_u64();
    r.sat_outage_ms = o.at("outage_ms").as_double();
    r.sat_stall_ms_in_outage = o.at("stall_ms_in_outage").as_double();
  }
  r.sim_events = v.at("sim_events").as_u64();

  {
    const auto& o = v.at("obs");
    r.obs_enabled = o.at("enabled").as_bool();
    r.obs_events_recorded = o.at("events_recorded").as_u64();
    r.obs_events_dropped = o.at("events_dropped").as_u64();
    for (const auto& e : o.at("counters").items()) {
      obs::Counter c;
      c.name = e.at("name").as_string();
      c.value = e.at("value").as_u64();
      r.obs_metrics.counters.push_back(std::move(c));
    }
    for (const auto& e : o.at("histograms").items()) {
      obs::Histogram h;
      h.name = e.at("name").as_string();
      h.edges = doubles_from_json(e.at("edges"));
      for (const auto& c : e.at("counts").items()) {
        h.counts.push_back(c.as_u64());
      }
      h.total = e.at("total").as_u64();
      r.obs_metrics.histograms.push_back(std::move(h));
    }
  }

  r.queue_discard_events = v.at("queue_discard_events").as_u64();
  r.jitter_resyncs = v.at("jitter_resyncs").as_u64();
  r.scream_misloss_packets = v.at("scream_misloss_packets").as_u64();

  r.owd_trace_ms = series_from_json(v.at("owd_trace_ms"));
  r.playback_latency_trace_ms =
      series_from_json(v.at("playback_latency_trace_ms"));
  r.target_bitrate_trace_bps = series_from_json(v.at("target_bitrate_trace_bps"));
  r.capacity_trace_mbps = series_from_json(v.at("capacity_trace_mbps"));
  for (const auto& t : v.at("loss_times_us").items()) {
    r.loss_times.push_back(sim::TimePoint::from_us(t.as_i64()));
  }
  r.handovers = handovers_from_json(v.at("handovers"));

  r.rtt_by_altitude = pairs_from_json(v.at("rtt_by_altitude"));

  r.command_latency_ms = doubles_from_json(v.at("command_latency_ms"));
  r.telemetry_latency_ms = doubles_from_json(v.at("telemetry_latency_ms"));
  r.commands_sent = v.at("commands_sent").as_u64();
  r.telemetry_sent = v.at("telemetry_sent").as_u64();
  return r;
}

}  // namespace rpv::pipeline
