#include "pipeline/video_receiver.hpp"

#include "net/packet_events.hpp"

namespace rpv::pipeline {

VideoReceiver::VideoReceiver(sim::Simulator& simulator, ReceiverConfig cfg,
                             const FrameTable& table, FeedbackFn send_feedback,
                             sim::Rng rng,
                             std::shared_ptr<rtp::FecGroupTable> fec_table)
    : sim_{simulator},
      cfg_{cfg},
      table_{table},
      send_feedback_{std::move(send_feedback)},
      ssim_{cfg.ssim, rng.fork()},
      rfc8888_{cfg.rfc8888_ack_window},
      pli_backoff_{cfg.resilience.pli_backoff_base,
                   cfg.resilience.pli_max_backoff_factor} {
  if (fec_table) fec_ = std::make_unique<rtp::FecDecoder>(std::move(fec_table));
  jb_ = std::make_unique<rtp::JitterBuffer>(
      sim_, cfg_.jitter,
      [this](const rtp::FrameReleaseEvent& ev) { on_frame_release(ev); });
  player_ = std::make_unique<video::PlayerModel>(sim_, cfg_.player);
}

void VideoReceiver::start(sim::TimePoint start, sim::TimePoint end) {
  end_time_ = end;
  if (cfg_.feedback != FeedbackKind::kNone) {
    sim_.schedule_at(start, [this] { feedback_tick(); });
  }
  sim_.schedule_at(start + sim::Duration::seconds(1.0), [this] { goodput_tick(); });
}

void VideoReceiver::attach_observer(obs::EventBus* bus) {
  bus_ = bus;
  player_->set_stall_hook([this](sim::TimePoint t, double gap_ms) {
    if (bus_->wants(obs::EventKind::kStall)) {
      bus_->publish(obs::Component::kReceiver, obs::EventKind::kStall, t,
                    obs::StallPayload{gap_ms});
    }
  });
}

void VideoReceiver::on_packet(const net::Packet& p) {
  ++packets_received_;
  if (bus_ && bus_->wants(obs::EventKind::kPacketReceived)) {
    bus_->publish(obs::Component::kReceiver, obs::EventKind::kPacketReceived,
                  sim_.now(), net::packet_payload(p, (p.received - p.enqueued).ms()));
  }

  if (p.kind == net::PacketKind::kFecParity) {
    // Parity is protection overhead: it feeds congestion feedback and the
    // FEC decoder, but carries no media payload for goodput accounting.
    switch (cfg_.feedback) {
      case FeedbackKind::kTwcc:
        twcc_.on_packet(p.transport_seq, p.received);
        break;
      case FeedbackKind::kRfc8888:
        rfc8888_.on_packet(p.transport_seq, p.received);
        break;
      case FeedbackKind::kNone:
        break;
    }
    if (fec_) {
      if (auto rebuilt = fec_->on_parity_packet(p, sim_.now())) {
        jb_->on_packet(*rebuilt);
      }
    }
    return;
  }

  const std::size_t payload =
      p.size_bytes > 40 ? p.size_bytes - 40 : p.size_bytes;  // strip headers
  media_bytes_ += payload;
  window_bytes_ += payload;
  owd_ms_.add(sim_.now(), (p.received - p.enqueued).ms());
  if (owd_hook_) owd_hook_(sim_.now(), (p.received - p.enqueued).ms());

  if (fec_) {
    if (auto rebuilt = fec_->on_media_packet(p, sim_.now())) {
      jb_->on_packet(*rebuilt);
    }
  }

  switch (cfg_.feedback) {
    case FeedbackKind::kTwcc:
      twcc_.on_packet(p.transport_seq, p.received);
      break;
    case FeedbackKind::kRfc8888:
      rfc8888_.on_packet(p.transport_seq, p.received);
      break;
    case FeedbackKind::kNone:
      break;
  }
  jb_->on_packet(p);
}

void VideoReceiver::feedback_tick() {
  const auto now = sim_.now();
  if (now > end_time_) return;

  rtp::FeedbackReport report;
  bool have = false;
  if (cfg_.feedback == FeedbackKind::kTwcc && twcc_.has_data()) {
    report = twcc_.build_report(now);
    have = true;
  } else if (cfg_.feedback == FeedbackKind::kRfc8888 && rfc8888_.has_data()) {
    report = rfc8888_.build_report(now);
    have = true;
  }
  if (have && !report.results.empty()) {
    const std::size_t size = cfg_.feedback_base_bytes +
                             cfg_.feedback_per_result_bytes * report.results.size();
    send_feedback_(report, size);
  }

  const auto interval = cfg_.feedback == FeedbackKind::kTwcc
                            ? cfg_.twcc_interval
                            : cfg_.rfc8888_interval;
  sim_.schedule_in(interval, [this] { feedback_tick(); });
}

void VideoReceiver::goodput_tick() {
  const auto now = sim_.now();
  goodput_mbps_.add(now, static_cast<double>(window_bytes_) * 8.0 / 1e6);
  if (goodput_hook_) {
    goodput_hook_(now, static_cast<double>(window_bytes_) * 8.0 / 1e6);
  }
  window_bytes_ = 0;
  if (now <= end_time_) {
    sim_.schedule_in(sim::Duration::seconds(1.0), [this] { goodput_tick(); });
  }
}

void VideoReceiver::on_frame_release(const rtp::FrameReleaseEvent& ev) {
  const auto meta = table_.get(ev.frame_id);
  if (!meta) return;

  bool damaged = ev.corrupted;
  if (cfg_.model_reference_loss) {
    // A gap in the frame-id sequence means a whole frame vanished: the
    // prediction chain is broken until the next clean keyframe arrives.
    if (decoded_any_ && ev.frame_id > last_decoded_id_ + 1) {
      reference_broken_ = true;
    }
    // A clean IDR repairs the chain *before* this frame is judged.
    if (meta->keyframe && !ev.corrupted) reference_broken_ = false;
    damaged = ev.corrupted || reference_broken_;
    if (ev.corrupted) reference_broken_ = true;
  }
  decoded_any_ = true;
  last_decoded_id_ = ev.frame_id;

  if (damaged) {
    ++corrupted_frames_;
  } else {
    clean_frame_times_.push_back(sim_.now());
  }

  if (bus_ && bus_->wants(obs::EventKind::kFrameDecoded)) {
    bus_->publish(obs::Component::kReceiver, obs::EventKind::kFrameDecoded,
                  sim_.now(),
                  obs::FramePayload{meta->id,
                                    static_cast<std::uint32_t>(meta->size_bytes),
                                    meta->keyframe, damaged});
  }

  if (cfg_.resilience.enabled) {
    if (damaged) {
      maybe_request_keyframe();
    } else if (meta->keyframe) {
      pli_backoff_.reset();
      next_pli_allowed_ = sim_.now();
    }
  }

  const double ssim = ssim_.score_frame(*meta, damaged);
  player_->on_frame_ready(*meta, ssim);
}

void VideoReceiver::maybe_request_keyframe() {
  const auto now = sim_.now();
  if (now < next_pli_allowed_) return;
  // A PLI rides on an otherwise-empty feedback report so keyframe recovery
  // works even for the static baseline (FeedbackKind::kNone runs no CC
  // feedback clock; this message is generated on demand instead).
  rtp::FeedbackReport report;
  report.generated = now;
  report.keyframe_request = true;
  send_feedback_(report, cfg_.feedback_base_bytes);
  ++pli_sent_;
  pli_times_.push_back(now);
  next_pli_allowed_ = now + pli_backoff_.next();
}

void VideoReceiver::finish() { player_->finish(); }

}  // namespace rpv::pipeline
