#include "experiment/scenario.hpp"

#include "pipeline/multipath_session.hpp"

namespace rpv::experiment {

std::string environment_name(Environment env) {
  switch (env) {
    case Environment::kUrban: return "urban";
    case Environment::kRuralP1: return "rural-p1";
    case Environment::kRuralP2: return "rural-p2";
  }
  return "?";
}

std::string mobility_name(Mobility m) {
  switch (m) {
    case Mobility::kAir: return "air";
    case Mobility::kGround: return "ground";
    case Mobility::kStatic: return "static";
  }
  return "?";
}

std::string policy_name(Policy p) {
  switch (p) {
    case Policy::kReactive: return "reactive";
    case Policy::kProactive: return "proactive";
    case Policy::kPlanned: return "planned";
  }
  return "?";
}

std::string multipath_name(Multipath m) {
  switch (m) {
    case Multipath::kNone: return "none";
    case Multipath::kDuplicate: return "duplicate";
    case Multipath::kScheduled: return "scheduled";
    case Multipath::kFailover: return "failover";
    case Multipath::kBondLowLatency: return "bond-low-latency";
    case Multipath::kBondBalanced: return "bond-balanced";
    case Multipath::kBondHighReliability: return "bond-high-reliability";
  }
  return "?";
}

std::string fault_preset_name(FaultPreset p) {
  switch (p) {
    case FaultPreset::kNone: return "none";
    case FaultPreset::kRlfStorm: return "rlf-storm";
    case FaultPreset::kCapacityDips: return "cap-dips";
    case FaultPreset::kWanOutage: return "wan-outage";
    case FaultPreset::kChaos: return "chaos";
  }
  return "?";
}

std::string path_set_name(PathSet p) {
  switch (p) {
    case PathSet::kOperatorPair: return "operator-pair";
    case PathSet::kThreeWay: return "three-way";
    case PathSet::kThreeWayMesh: return "three-way-mesh";
  }
  return "?";
}

bond::Policy bond_policy_of(Multipath m) {
  switch (m) {
    case Multipath::kScheduled: return bond::Policy::kScheduled;
    case Multipath::kFailover: return bond::Policy::kFailover;
    case Multipath::kBondLowLatency: return bond::Policy::kLowLatency;
    case Multipath::kBondBalanced: return bond::Policy::kBalanced;
    case Multipath::kBondHighReliability: return bond::Policy::kHighReliability;
    case Multipath::kNone:
    case Multipath::kDuplicate:
      break;
  }
  return bond::Policy::kDuplicate;
}

fault::FaultSchedule fault_preset_schedule(FaultPreset p) {
  // All presets are fixed data (the chaos preset draws from a pinned seed):
  // the same preset always injects the same faults, keeping campaign cells
  // byte-reproducible. Times sit inside the 360 s flight/static horizon.
  fault::FaultSchedule fs;
  switch (p) {
    case FaultPreset::kNone:
      break;
    case FaultPreset::kRlfStorm:
      fs.rlf(60.0).rlf(150.0).rlf(240.0);
      break;
    case FaultPreset::kCapacityDips:
      fs.capacity_collapse(90.0, 3.0, 0.1)
          .capacity_collapse(180.0, 4.0, 0.05)
          .capacity_collapse(270.0, 3.0, 0.1);
      break;
    case FaultPreset::kWanOutage:
      fs.wan_outage(150.0, 2.0).wan_outage(240.0, 4.0);
      break;
    case FaultPreset::kChaos:
      fs = fault::FaultSchedule::random(0xB0DD5EEDULL,
                                        sim::Duration::seconds(360.0),
                                        /*mean_gap_sec=*/40.0,
                                        /*mean_duration_sec=*/2.0);
      break;
  }
  return fs;
}

double static_bitrate_bps(Environment env) {
  // Paper §3.2: 25 Mbps urban, 8 Mbps rural, from trial runs.
  return env == Environment::kUrban ? 25e6 : 8e6;
}

pipeline::SessionConfig make_session_config(const Scenario& s) {
  pipeline::SessionConfig cfg;
  cfg.cc = s.cc;
  cfg.seed = s.seed;
  cfg.static_bitrate_bps = static_bitrate_bps(s.env);
  cfg.receiver.rfc8888_ack_window = s.rfc8888_ack_window;
  cfg.receiver.jitter.drop_on_latency = s.drop_on_latency;
  cfg.probe_interval = s.probe_interval;
  cfg.fec_group_size = s.fec_group_size;
  cfg.c2.enabled = s.c2;
  cfg.faults = s.faults;
  const auto preset_schedule = fault_preset_schedule(s.fault_preset);
  for (const auto& ev : preset_schedule.events()) {
    cfg.faults.add(ev);
  }
  cfg.faults_on_link_b = s.faults_on_both_operators;
  cfg.resilience = s.resilience;
  cfg.receiver.model_reference_loss = s.model_reference_loss;
  cfg.predict.proactive = (s.policy != Policy::kReactive);
  cfg.predict.map_prior = s.radio_map.get();
  cfg.obs.enabled = s.observe;

  if (s.multipath != Multipath::kNone && s.path_set != PathSet::kOperatorPair) {
    cfg.sat.enabled = true;
    if (s.path_set == PathSet::kThreeWayMesh) {
      cfg.sat.mesh_enabled = true;
      // Hop count from scenario geometry: the sparse rural corridor needs a
      // longer relay chain than the dense urban cell grid.
      cfg.sat.mesh.hops = (s.env == Environment::kUrban) ? 2 : 4;
    }
  }

  auto& radio = cfg.link.radio;
  switch (s.env) {
    case Environment::kUrban:
      // Dense deployment, abundant uplink: up to ~40 Mbps at good SINR.
      radio.peak_capacity_mbps = 44.0;
      radio.exponent_ground = 3.5;   // street-level clutter
      radio.shadowing_stddev_db = 7.0;
      radio.interference_load = 0.008;
      // Packet loss above ~80 m is an urban phenomenon (paper §4.2.1).
      cfg.link.loss.altitude_boost = 0.4;
      cfg.link.loss.stress_boost = 110.0;
      break;
    case Environment::kRuralP1:
      // Sparse sites far away: capacity limited to ~8-12 Mbps, fluctuating.
      radio.peak_capacity_mbps = 15.0;
      radio.exponent_ground = 2.9;   // open space
      radio.shadowing_stddev_db = 6.5;
      radio.interference_load = 0.012;
      break;
    case Environment::kRuralP2:
      // Competing operator: denser rural deployment, more capacity.
      radio.peak_capacity_mbps = 30.0;
      radio.exponent_ground = 2.9;
      radio.shadowing_stddev_db = 5.5;
      radio.interference_load = 0.015;
      break;
  }

  if (s.tech == AccessTech::k5gSa) {
    // 5G stand-alone: shorter scheduling latency, mostly make-before-break
    // mobility (no HO latency spikes per the studies the paper cites), and a
    // substantially larger uplink.
    cfg.link.uplink_access_latency = sim::Duration::millis(4);
    cfg.link.uplink_access_jitter = sim::Duration::millis(1);
    cfg.link.downlink_latency = sim::Duration::millis(3);
    cfg.link.handover.make_before_break = true;
    cfg.link.het.bulk_median_ms = 10.0;
    cfg.link.het.outlier_prob_air = 0.04;
    cfg.link.het.outlier_prob_ground = 0.01;
    radio.peak_capacity_mbps *= 2.2;
    radio.operator_cap_mbps = 120.0;
  }
  return cfg;
}

cellular::CellLayout make_layout(const Scenario& s, sim::Rng& rng) {
  switch (s.env) {
    case Environment::kUrban: return cellular::make_urban_layout(rng);
    case Environment::kRuralP1: return cellular::make_rural_layout_p1(rng);
    case Environment::kRuralP2: return cellular::make_rural_layout_p2(rng);
  }
  return cellular::make_urban_layout(rng);
}

geo::Trajectory make_trajectory(const Scenario& s, sim::Rng& rng) {
  const geo::Vec3 origin{0.0, 0.0, 0.0};
  switch (s.mobility) {
    case Mobility::kAir:
      return geo::make_flight_profile(origin);
    case Mobility::kGround:
      return geo::make_ground_profile(origin, rng);
    case Mobility::kStatic:
      return geo::make_static_profile({30.0, 30.0, 1.5},
                                      sim::Duration::seconds(360.0));
  }
  return geo::make_flight_profile(origin);
}

geo::Trajectory make_trajectory(const Scenario& s, sim::Rng& rng,
                                const geo::Vec3& origin, sim::Duration horizon) {
  const auto fallback = sim::Duration::seconds(360.0);
  switch (s.mobility) {
    case Mobility::kAir:
      return geo::make_flight_profile({origin.x, origin.y, 0.0})
          .truncated(horizon);
    case Mobility::kGround:
      return geo::make_ground_profile({origin.x, origin.y, 1.5}, rng)
          .truncated(horizon);
    case Mobility::kStatic:
      return geo::make_static_profile(
          origin, horizon > sim::Duration::zero() ? horizon : fallback);
  }
  return geo::make_flight_profile({origin.x, origin.y, 0.0}).truncated(horizon);
}

pipeline::SessionReport run_scenario(const Scenario& s) {
  return run_scenario(s, nullptr);
}

namespace {

// Under kPlanned with a warm map, replace the mission trajectory with the
// planner's choice. Returns the plan (identity when planning did not run) so
// the caller can annotate the report and publish the kReplan event.
uav::PlanResult replan_if_planned(const Scenario& s,
                                  geo::Trajectory& trajectory) {
  uav::PlanResult plan;
  if (s.policy == Policy::kPlanned && s.radio_map != nullptr &&
      !s.radio_map->empty()) {
    plan = uav::plan_trajectory(trajectory, *s.radio_map);
    trajectory = plan.trajectory;
  }
  return plan;
}

void annotate_planning(pipeline::SessionReport& r, const Scenario& s,
                       const uav::PlanResult& plan) {
  if (s.policy != Policy::kPlanned) return;
  r.planned = plan.candidates > 0;
  r.plan_replanned = plan.replanned;
  r.plan_candidates = plan.candidates;
  r.plan_selected = plan.selected;
  r.plan_predicted_stall_ms_direct = plan.predicted_stall_ms_direct;
  r.plan_predicted_stall_ms_selected = plan.predicted_stall_ms_selected;
  r.plan_deviation_m = plan.deviation_m;
}

void publish_replan(obs::EventBus& bus, const geo::Trajectory& trajectory,
                    const uav::PlanResult& plan) {
  if (plan.candidates == 0) return;
  bus.publish(obs::Component::kPlanner, obs::EventKind::kReplan,
              trajectory.start(),
              obs::ReplanPayload{plan.candidates, plan.selected,
                                 plan.predicted_stall_ms_direct,
                                 plan.predicted_stall_ms_selected,
                                 plan.deviation_m});
}

}  // namespace

pipeline::SessionReport run_scenario(const Scenario& s,
                                     obs::EventSink* extra_sink) {
  sim::Rng rng{s.seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
  auto layout = make_layout(s, rng);
  if (s.multipath != Multipath::kNone) {
    // Bonded runs pair the scenario's operator with the environment's
    // competitor: rural P1 <-> P2 (the paper's Fig. 10 operator pair), urban
    // with a second independent urban deployment.
    Scenario other = s;
    switch (s.env) {
      case Environment::kRuralP1: other.env = Environment::kRuralP2; break;
      case Environment::kRuralP2: other.env = Environment::kRuralP1; break;
      case Environment::kUrban: break;  // second urban layout, fresh draw
    }
    auto layout_b = make_layout(other, rng);
    auto trajectory = make_trajectory(s, rng);
    const auto plan = replan_if_planned(s, trajectory);
    auto cfg = make_session_config(s);
    std::string env_label =
        environment_name(s.env) + "+" + environment_name(other.env);
    if (s.path_set == PathSet::kThreeWay) env_label += "+sat";
    if (s.path_set == PathSet::kThreeWayMesh) env_label += "+sat+mesh";
    pipeline::MultipathSession session{
        cfg,
        std::move(layout),
        std::move(layout_b),
        &trajectory,
        env_label + "/" + mobility_name(s.mobility),
        bond_policy_of(s.multipath)};
    if (extra_sink != nullptr) session.subscribe(extra_sink);
    publish_replan(session.observer(), trajectory, plan);
    auto r = session.run();
    annotate_planning(r, s, plan);
    return r;
  }
  auto trajectory = make_trajectory(s, rng);
  const auto plan = replan_if_planned(s, trajectory);
  auto cfg = make_session_config(s);
  pipeline::Session session{cfg, std::move(layout), &trajectory,
                            environment_name(s.env) + "/" + mobility_name(s.mobility)};
  if (extra_sink != nullptr) session.observer().subscribe(extra_sink);
  publish_replan(session.observer(), trajectory, plan);
  auto r = session.run();
  annotate_planning(r, s, plan);
  return r;
}

}  // namespace rpv::experiment
