#include "experiment/mapping.hpp"

#include "radiomap/map_sink.hpp"

namespace rpv::experiment {

radiomap::GridSpec default_map_spec() {
  radiomap::GridSpec spec;
  spec.origin = {-100.0, -100.0, 0.0};
  spec.voxel_xy_m = 50.0;
  spec.voxel_z_m = 30.0;
  spec.nx = 8;  // x in [-100, 300): the flight's leap corridor plus margin
  spec.ny = 4;  // y in [-100, 100)
  spec.nz = 5;  // z in [0, 150): separates the 40/80/120 m levels
  return spec;
}

radiomap::RadioMap build_radio_map(const Scenario& base,
                                   const radiomap::GridSpec& spec,
                                   const MapBuildConfig& cfg) {
  radiomap::RadioMap map{spec};
  for (int i = 0; i < cfg.flights; ++i) {
    Scenario s = base;
    s.policy = Policy::kReactive;
    s.radio_map.reset();
    s.multipath = Multipath::kNone;
    s.observe = false;
    s.seed = base.seed + static_cast<std::uint64_t>(i) * 7919;
    sim::Rng rng{s.seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
    auto layout = make_layout(s, rng);
    auto trajectory = radiomap::make_survey_trajectory(spec, cfg.survey);
    auto session_cfg = make_session_config(s);
    pipeline::Session session{session_cfg, std::move(layout), &trajectory,
                              environment_name(s.env) + "/survey"};
    radiomap::RadioMapSink sink{&map, &trajectory};
    session.observer().subscribe(&sink);
    (void)session.run();
  }
  return map;
}

}  // namespace rpv::experiment
