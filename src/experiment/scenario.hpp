// Scenario presets reproducing the paper's measurement campaign matrix:
// {urban, rural} x {air, ground} x {GCC, SCReAM, static} x {operator P1, P2}.
//
// Environment tuning targets (from the paper):
//  * urban (P1/P2 similar): uplink up to ~40 Mbps, dense cells, static
//    baseline at 25 Mbps;
//  * rural P1 (default operator): sparse cells, fluctuating 8-12 Mbps
//    uplink, static baseline at 8 Mbps;
//  * rural P2 (competing operator): denser deployment, more capacity and
//    more handovers (Fig. 10).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "bond/policy.hpp"
#include "cellular/base_station.hpp"
#include "fault/fault_schedule.hpp"
#include "geo/flight_profiles.hpp"
#include "pipeline/session.hpp"
#include "radiomap/radio_map.hpp"
#include "uav/planner.hpp"

namespace rpv::experiment {

enum class Environment { kUrban, kRuralP1, kRuralP2 };
enum class Mobility { kAir, kGround, kStatic };
// Access technology: the campaign ran on LTE; the 5G-SA preset models the
// stand-alone deployments the paper's Section 5 expects to remove the
// HO latency spikes (shorter access latency, make-before-break mobility,
// larger uplink).
enum class AccessTech { kLte, k5gSa };
// Adaptation policy: reactive is the paper's measured pipeline (CC reacts
// after the fact); proactive turns on the rpv::predict HO-aware adapter
// (pre-HO bitrate dip, keyframe deferral, post-HO flush); planned
// additionally replans the flight trajectory through the scenario's radio
// map (rpv::uav) before takeoff — the closed perception→planning loop of
// ROADMAP item 5. kPlanned without a radio_map behaves like kProactive.
enum class Policy { kReactive, kProactive, kPlanned };

// Multi-operator bonding (rpv::bond). kNone runs the single-path Session;
// everything else runs a MultipathSession over the environment's operator
// pair under the named bond::Policy.
enum class Multipath {
  kNone,
  kDuplicate,
  kScheduled,
  kFailover,
  kBondLowLatency,
  kBondBalanced,
  kBondHighReliability,
};

// Canned fault schedules for the robustness campaigns, so grid cells can
// name a fault pattern instead of hand-building a schedule per run.
enum class FaultPreset { kNone, kRlfStorm, kCapacityDips, kWanOutage, kChaos };

// Which bonded paths a multipath scenario attaches (rpv::sat, ROADMAP item
// 4). kOperatorPair is the historical two cellular operators; kThreeWay adds
// the LEO satellite path; kThreeWayMesh additionally chains in the aerial
// mesh relay. Ignored when multipath == kNone.
enum class PathSet { kOperatorPair, kThreeWay, kThreeWayMesh };

[[nodiscard]] std::string environment_name(Environment env);
[[nodiscard]] std::string mobility_name(Mobility m);
[[nodiscard]] std::string policy_name(Policy p);
[[nodiscard]] std::string multipath_name(Multipath m);
[[nodiscard]] std::string fault_preset_name(FaultPreset p);
[[nodiscard]] std::string path_set_name(PathSet p);
// The bond policy a non-kNone Multipath maps onto.
[[nodiscard]] bond::Policy bond_policy_of(Multipath m);
// The schedule a preset expands to (kNone -> empty).
[[nodiscard]] fault::FaultSchedule fault_preset_schedule(FaultPreset p);

// The static-baseline bitrate the paper hand-picked per environment.
[[nodiscard]] double static_bitrate_bps(Environment env);

struct Scenario {
  Environment env = Environment::kUrban;
  Mobility mobility = Mobility::kAir;
  pipeline::CcKind cc = pipeline::CcKind::kGcc;
  std::uint64_t seed = 1;
  // Optional probe traffic; used by the latency/RTT benches.
  sim::Duration probe_interval = sim::Duration::zero();
  // Override the RFC 8888 ack window (paper default 64; mitigation 256).
  int rfc8888_ack_window = 256;
  // Appendix A.4 jitter-buffer variant.
  bool drop_on_latency = false;
  // LTE (the paper's campaign) or 5G stand-alone (its Section 5 outlook).
  AccessTech tech = AccessTech::kLte;
  // XOR FEC group size; 0 disables (Section 5 / reference [9] extension).
  int fec_group_size = 0;
  // Enable the command/telemetry channel of the RP scenario (Fig. 1).
  bool c2 = false;
  // Scripted fault injection (RLF, blackouts, capacity collapse, WAN
  // outages); empty injects nothing. Composable with every scenario above.
  fault::FaultSchedule faults;
  // Named fault pattern appended to `faults` (grid-friendly alternative to
  // hand-building a schedule).
  FaultPreset fault_preset = FaultPreset::kNone;
  // Replay the fault schedule on BOTH operators of a multipath run — the
  // simultaneous-degradation case the sat path is there to mask. Single-path
  // runs ignore it.
  bool faults_on_both_operators = false;
  // Multi-operator bonding; anything but kNone streams over the paired
  // operator layouts through a bond::LinkManager.
  Multipath multipath = Multipath::kNone;
  // Extra bonded paths for multipath runs: LEO satellite (kThreeWay) and
  // aerial mesh (kThreeWayMesh) on top of the operator pair.
  PathSet path_set = PathSet::kOperatorPair;
  // End-to-end resilience stack (sender watchdog + ladder, receiver PLI).
  bool resilience = false;
  // HO-aware proactive adaptation (rpv::predict); reactive reproduces the
  // paper's measured behaviour.
  Policy policy = Policy::kReactive;
  // Learned 3D radio map (rpv::radiomap). When set it always feeds the
  // HandoverPredictor's spatial prior (instrumented under every policy);
  // under kPlanned it additionally drives the rpv::uav trajectory planner.
  // Scenarios without a map are byte-identical to their pre-radiomap runs.
  std::shared_ptr<const radiomap::RadioMap> radio_map;
  // Decoder reference-loss modeling; enable in BOTH arms of a resilience
  // comparison so keyframe recovery is measured fairly.
  bool model_reference_loss = false;
  // Attach the rpv::obs recorder + metrics registry: the run's report grows
  // the schema-v3 obs block and the artifact store writes a sibling
  // events.jsonl next to the report.
  bool observe = false;
};

// Fully wired session config for a scenario (link, radio, video, CC).
[[nodiscard]] pipeline::SessionConfig make_session_config(const Scenario& s);

// The layout of the scenario's environment.
[[nodiscard]] cellular::CellLayout make_layout(const Scenario& s, sim::Rng& rng);

// The motion profile: the Appendix A.2 flight, the motorbike ground run, or
// a static hold.
[[nodiscard]] geo::Trajectory make_trajectory(const Scenario& s, sim::Rng& rng);

// The same profiles launched from an arbitrary origin with a bounded
// mission horizon (zero keeps each profile's native duration). Static
// missions hover at `origin` (including its altitude); air and ground
// missions start there and are truncated to the horizon. rpv::fleet places
// hundreds of UAVs across one deployment with this.
[[nodiscard]] geo::Trajectory make_trajectory(const Scenario& s, sim::Rng& rng,
                                              const geo::Vec3& origin,
                                              sim::Duration horizon);

// Run one scenario end to end.
[[nodiscard]] pipeline::SessionReport run_scenario(const Scenario& s);

// Same, with an extra event sink subscribed to the session's bus(es) before
// the run — the streaming-aggregation path: a campaign folds per-run
// MetricsRegistry sinks without any per-run report JSON. `extra_sink` may be
// null (plain run_scenario behavior).
[[nodiscard]] pipeline::SessionReport run_scenario(const Scenario& s,
                                                   obs::EventSink* extra_sink);

}  // namespace rpv::experiment
