#include "experiment/runner.hpp"

#include "exec/thread_pool.hpp"
#include "sim/validate.hpp"

namespace rpv::experiment {

std::vector<pipeline::SessionReport> run_campaign(const Campaign& c) {
  rpv::validate(c.runs > 0, "Campaign.runs must be > 0");
  // Slot i is written only by task i: identical output for any job count.
  std::vector<pipeline::SessionReport> out(static_cast<std::size_t>(c.runs));
  exec::parallel_for_index(out.size(), c.jobs, [&](std::size_t i) {
    Scenario s = c.scenario;
    s.seed = c.scenario.seed + static_cast<std::uint64_t>(i) * 7919;
    out[i] = run_scenario(s);
  });
  return out;
}

namespace {
template <typename Getter>
metrics::Cdf pool(const std::vector<pipeline::SessionReport>& rs, Getter get) {
  metrics::Cdf cdf;
  for (const auto& r : rs) cdf.add_all(get(r));
  return cdf;
}
}  // namespace

metrics::Cdf pool_owd(const std::vector<pipeline::SessionReport>& rs) {
  return pool(rs, [](const auto& r) { return r.owd_ms; });
}

metrics::Cdf pool_fps(const std::vector<pipeline::SessionReport>& rs) {
  return pool(rs, [](const auto& r) { return r.fps_windows; });
}

metrics::Cdf pool_ssim(const std::vector<pipeline::SessionReport>& rs) {
  return pool(rs, [](const auto& r) { return r.ssim_samples; });
}

metrics::Cdf pool_playback_latency(const std::vector<pipeline::SessionReport>& rs) {
  return pool(rs, [](const auto& r) { return r.playback_latency_ms; });
}

metrics::Cdf pool_goodput(const std::vector<pipeline::SessionReport>& rs) {
  return pool(rs, [](const auto& r) { return r.goodput_mbps_windows; });
}

std::vector<double> pool_het(const std::vector<pipeline::SessionReport>& rs) {
  std::vector<double> out;
  for (const auto& r : rs) out.insert(out.end(), r.het_ms.begin(), r.het_ms.end());
  return out;
}

std::vector<double> pool_ho_frequency(const std::vector<pipeline::SessionReport>& rs) {
  std::vector<double> out;
  out.reserve(rs.size());
  for (const auto& r : rs) out.push_back(r.ho_frequency_per_s);
  return out;
}

std::vector<double> pool_latency_ratio_before(
    const std::vector<pipeline::SessionReport>& rs) {
  std::vector<double> out;
  for (const auto& r : rs) {
    for (const auto& lr : r.ho_latency_ratios) out.push_back(lr.before);
  }
  return out;
}

std::vector<double> pool_latency_ratio_after(
    const std::vector<pipeline::SessionReport>& rs) {
  std::vector<double> out;
  for (const auto& r : rs) {
    for (const auto& lr : r.ho_latency_ratios) out.push_back(lr.after);
  }
  return out;
}

double mean_stalls_per_minute(const std::vector<pipeline::SessionReport>& rs) {
  if (rs.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : rs) total += r.stalls_per_minute;
  return total / static_cast<double>(rs.size());
}

double mean_per(const std::vector<pipeline::SessionReport>& rs) {
  if (rs.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : rs) total += r.per;
  return total / static_cast<double>(rs.size());
}

metrics::Cdf pool_rtt_in_band(const std::vector<pipeline::SessionReport>& rs,
                              double lo, double hi) {
  metrics::Cdf cdf;
  for (const auto& r : rs) {
    for (const auto& [alt, rtt] : r.rtt_by_altitude) {
      if (alt >= lo && alt < hi) cdf.add(rtt);
    }
  }
  return cdf;
}

}  // namespace rpv::experiment
