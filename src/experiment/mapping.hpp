// Warm-up map building: fly deterministic survey sweeps over a scenario's
// environment and accumulate a radiomap::RadioMap from the obs event stream.
//
// Each warm-up flight draws its own cell layout (seed + i*7919, the campaign
// seed ladder), so a map built from several flights captures the
// layout-independent spatial structure — altitude-driven loss and HO churn,
// capacity vs. height — rather than one layout's cell borders. That is
// exactly the signal the planner and the predictor prior can act on for a
// future flight whose layout draw they have never seen.
#pragma once

#include "experiment/scenario.hpp"
#include "radiomap/radio_map.hpp"
#include "radiomap/survey.hpp"

namespace rpv::experiment {

struct MapBuildConfig {
  // Independent warm-up flights accumulated into the map (seed ladder).
  int flights = 3;
  radiomap::SurveyConfig survey;
};

// The default mission-area grid: covers the Appendix A.2 flight box
// (x 0..200 m plus margin, the take-off corridor, altitudes 0..150 m) at
// 50 m x 30 m voxels — 160 voxels, fine enough to separate the paper's
// 40/80/120 m altitude levels.
[[nodiscard]] radiomap::GridSpec default_map_spec();

// Accumulate `cfg.flights` survey sweeps of `base`'s environment into one
// map. `base`'s policy/multipath/map fields are ignored (warm-ups fly
// reactive single-path); env, tech, cc, faults and seed are honoured.
[[nodiscard]] radiomap::RadioMap build_radio_map(
    const Scenario& base, const radiomap::GridSpec& spec,
    const MapBuildConfig& cfg = {});

}  // namespace rpv::experiment
