// Campaign runner: repeats a scenario across seeds (the paper aggregates 130
// measurement runs over ~90 flights) and pools the per-run reports into the
// sample sets the figures plot.
#pragma once

#include <vector>

#include "experiment/scenario.hpp"
#include "metrics/cdf.hpp"
#include "metrics/summary.hpp"
#include "pipeline/report.hpp"

namespace rpv::experiment {

struct Campaign {
  Scenario scenario;       // seed field is the base seed
  int runs = 5;
  // Worker threads for the run shard; <= 0 means one per hardware thread.
  // Reports come back in seed order and are byte-identical for any value.
  int jobs = 0;
};

// Run `campaign.runs` sessions with derived seeds, sharded across
// `campaign.jobs` workers (rpv::exec pool). Every run is an independent
// simulation with its own RNG, so the pooled reports match a serial replay
// exactly. Throws std::invalid_argument when campaign.runs <= 0.
[[nodiscard]] std::vector<pipeline::SessionReport> run_campaign(const Campaign& c);

// --- Pooling helpers: concatenate a per-run sample set across runs. ---
[[nodiscard]] metrics::Cdf pool_owd(const std::vector<pipeline::SessionReport>& rs);
[[nodiscard]] metrics::Cdf pool_fps(const std::vector<pipeline::SessionReport>& rs);
[[nodiscard]] metrics::Cdf pool_ssim(const std::vector<pipeline::SessionReport>& rs);
[[nodiscard]] metrics::Cdf pool_playback_latency(
    const std::vector<pipeline::SessionReport>& rs);
[[nodiscard]] metrics::Cdf pool_goodput(const std::vector<pipeline::SessionReport>& rs);
[[nodiscard]] std::vector<double> pool_het(
    const std::vector<pipeline::SessionReport>& rs);
[[nodiscard]] std::vector<double> pool_ho_frequency(
    const std::vector<pipeline::SessionReport>& rs);
[[nodiscard]] std::vector<double> pool_latency_ratio_before(
    const std::vector<pipeline::SessionReport>& rs);
[[nodiscard]] std::vector<double> pool_latency_ratio_after(
    const std::vector<pipeline::SessionReport>& rs);
[[nodiscard]] double mean_stalls_per_minute(
    const std::vector<pipeline::SessionReport>& rs);
[[nodiscard]] double mean_per(const std::vector<pipeline::SessionReport>& rs);
// RTT samples restricted to an altitude band [lo, hi) in metres (Fig. 13).
[[nodiscard]] metrics::Cdf pool_rtt_in_band(
    const std::vector<pipeline::SessionReport>& rs, double lo, double hi);

}  // namespace rpv::experiment
