// Persistent run artifacts.
//
// Every campaign the engine executes can be written to disk as structured
// JSON — the simulator's counterpart to the paper's released dataset. The
// layout under the store root is:
//
//   <root>/<campaign-name>/
//     manifest.json        campaign metadata: schema, name, git describe,
//                          jobs, runs per cell, wall seconds, and one entry
//                          per cell with its scenario parameters and the
//                          (seed, file) list of its runs
//     runs/NNN_<label>_s<seed>.json
//                          one full SessionReport per measurement run
//
// The loader reads a campaign directory back into GridCellResults, so benches
// and tools re-aggregate figures (pool_* helpers work unchanged) without
// re-simulating anything.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "exec/campaign_engine.hpp"
#include "json/json.hpp"
#include "radiomap/radio_map.hpp"

namespace rpv::exec {

struct CampaignManifest {
  std::string name;          // directory-safe campaign name
  std::string git_describe;  // current_git_describe() or caller-provided
  int runs_per_cell = 0;
  int jobs = 0;
  double wall_seconds = 0.0;
};

struct LoadedCampaign {
  json::Value manifest;  // the raw manifest document
  std::vector<GridCellResult> cells;
};

// Scenario parameters as stored in the manifest (human-readable names for
// the enum axes; fault events expanded).
[[nodiscard]] json::Value scenario_to_json(const experiment::Scenario& s);

// `git describe --always --dirty` of the working tree; "unknown" when git is
// unavailable (artifacts must still be writable from deployed binaries).
[[nodiscard]] std::string current_git_describe();

class RunArtifactStore {
 public:
  explicit RunArtifactStore(std::filesystem::path root) : root_{std::move(root)} {}

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

  // Write manifest + per-run reports; creates directories as needed and
  // returns the campaign directory. Throws std::runtime_error on I/O errors.
  std::filesystem::path write_campaign(const CampaignManifest& manifest,
                                       const GridResult& result) const;

  // Read a campaign directory written by write_campaign.
  [[nodiscard]] static LoadedCampaign load_campaign(
      const std::filesystem::path& campaign_dir);

  // Persist a radio map under <root>/<campaign>/maps/<map_name>.map.json.
  // The file holds the map's canonical bytes verbatim, so byte-comparing two
  // stores (e.g. across --jobs values) is a valid determinism check. Returns
  // the written path; throws std::runtime_error on I/O errors.
  std::filesystem::path write_radio_map(const std::string& campaign_name,
                                        const std::string& map_name,
                                        const radiomap::RadioMap& map) const;

  // Read a map file written by write_radio_map (throws on I/O or schema
  // errors — the loader is the strict radiomap::radio_map_from_bytes).
  [[nodiscard]] static radiomap::RadioMap load_radio_map(
      const std::filesystem::path& file);

 private:
  std::filesystem::path root_;
};

}  // namespace rpv::exec
