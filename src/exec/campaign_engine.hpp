// Parallel campaign execution.
//
// The paper's figures aggregate 130 measurement runs over ~90 flights; every
// run is an independent simulation, so a campaign is embarrassingly parallel.
// The engine shards work at run granularity across a fixed-size ThreadPool:
//
//   * run_scenarios — the core primitive: N fully-specified scenarios in,
//     N reports out, result i always belonging to scenario i;
//   * run           — an experiment::Campaign (same seed derivation as the
//     serial runner, so outputs are byte-identical to the legacy path);
//   * run_grid      — a cross product of scenario axes (environment x
//     mobility x congestion controller x access tech), all cells' runs
//     flattened into one task list so stragglers in one cell overlap with
//     work from the next.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "obs/metrics_registry.hpp"
#include "pipeline/report.hpp"

namespace rpv::exec {

struct EngineConfig {
  int jobs = 0;  // worker threads; <= 0 means one per hardware thread
};

// One point of a scenario grid: a label like "urban-air-gcc" plus the fully
// configured scenario it denotes (seed still unset; the engine derives one
// per run).
struct GridCell {
  std::string label;
  experiment::Scenario scenario;
};

// Cross-product axes. Empty axes collapse to the base scenario's value, so a
// grid over {envs} x {ccs} leaves mobility/tech untouched.
struct GridAxes {
  std::vector<experiment::Environment> envs;
  std::vector<experiment::Mobility> mobilities;
  std::vector<pipeline::CcKind> ccs;
  std::vector<experiment::AccessTech> techs;
  // Reactive vs. proactive (rpv::predict) vs. planned (rpv::uav) adaptation.
  // Labels stay unchanged for kReactive cells; kProactive cells gain a
  // "-proactive" suffix, kPlanned cells "-planned".
  std::vector<experiment::Policy> policies;
  // Multi-operator bonding (rpv::bond). kNone keeps the single-path Session
  // and an unchanged label; every other value gains a policy suffix
  // ("-mpdup", "-bond-hr", ...).
  std::vector<experiment::Multipath> multipaths;
  // Bonded path sets (rpv::sat). kOperatorPair keeps the label; kThreeWay
  // gains "-sat", kThreeWayMesh gains "-sat-mesh". Only meaningful on
  // multipath cells; kNone cells ignore the value.
  std::vector<experiment::PathSet> path_sets;
  // Named fault patterns. kNone cells keep the label; others gain the preset
  // suffix ("-rlf-storm", "-chaos", ...).
  std::vector<experiment::FaultPreset> fault_presets;
};

// Expand axes against a base scenario into labeled cells, in axis-major
// order (env, then mobility, then cc, then tech, then policy, then
// multipath, then path set, then fault preset). Throws std::invalid_argument
// when the expansion is empty.
[[nodiscard]] std::vector<GridCell> expand_grid(
    const GridAxes& axes, const experiment::Scenario& base = {});

struct CampaignResult {
  std::vector<std::uint64_t> seeds;  // seeds[i] produced reports[i]
  std::vector<pipeline::SessionReport> reports;
  double wall_seconds = 0.0;
};

// Streaming aggregation result: one merged metrics summary for a whole
// campaign instead of N retained SessionReports. Per-run counts fold into
// fixed-size counters/histograms, so memory stays O(1) in campaign size.
struct MergedCampaignResult {
  obs::MetricsSummary metrics;  // fold of every run's MetricsRegistry
  std::size_t runs = 0;
  double wall_seconds = 0.0;
};

struct GridCellResult {
  GridCell cell;
  std::vector<std::uint64_t> seeds;
  std::vector<pipeline::SessionReport> reports;
};

struct GridResult {
  std::vector<GridCellResult> cells;
  double wall_seconds = 0.0;
  int jobs = 0;  // resolved worker count used
};

// The per-run seeds a campaign expands to (base seed + i * 7919 — kept
// identical to the historical serial runner so stored artifacts stay
// comparable across engine versions).
[[nodiscard]] std::vector<std::uint64_t> campaign_seeds(
    const experiment::Campaign& c);

class CampaignEngine {
 public:
  explicit CampaignEngine(EngineConfig cfg = {}) : cfg_{cfg} {}

  [[nodiscard]] int jobs() const;

  // Run every scenario; reports[i] is scenario i's, regardless of worker
  // count or completion order.
  [[nodiscard]] std::vector<pipeline::SessionReport> run_scenarios(
      const std::vector<experiment::Scenario>& scenarios) const;

  // Run every scenario with a per-run MetricsRegistry subscribed to its
  // event bus and fold the registries in scenario-index order. Merging is
  // associative and index-ordered, so the summary is byte-identical for any
  // worker count; per-run reports are dropped as soon as each run finishes.
  [[nodiscard]] MergedCampaignResult run_scenarios_merged(
      const std::vector<experiment::Scenario>& scenarios) const;

  // Validates via rpv::validate (runs > 0) and shards the campaign's seeds.
  [[nodiscard]] CampaignResult run(const experiment::Campaign& campaign) const;

  // `runs` seeded repetitions of every cell, flattened into one shard list.
  // Seeds per cell follow the campaign derivation from `base_seed`.
  [[nodiscard]] GridResult run_grid(const std::vector<GridCell>& cells,
                                    int runs, std::uint64_t base_seed) const;

 private:
  EngineConfig cfg_;
};

}  // namespace rpv::exec
