// Fixed-size worker pool for campaign execution.
//
// Header-only on purpose: `experiment::run_campaign` (one layer below the
// CampaignEngine) shards its seeds through parallel_for_index without linking
// against rpv_exec, which would be a dependency cycle (rpv_exec links
// rpv_experiment for Scenario/run_scenario).
//
// Determinism contract: the pool imposes no ordering of its own on results —
// callers write each task's output to a slot chosen by task *index*, so the
// assembled result vector is byte-identical to a serial loop regardless of
// worker count or completion order. Each simulation run owns all of its
// state (Session constructs its own Rng from the scenario seed; the library
// keeps no mutable globals), so tasks never share anything but the output
// vector, and never the same slot.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rpv::exec {

// jobs <= 0 means "one worker per hardware thread" (at least one).
[[nodiscard]] inline int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

class ThreadPool {
 public:
  explicit ThreadPool(int jobs = 0) {
    const int n = resolve_jobs(jobs);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock{mu_};
      stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock{mu_};
      queue_.push_back(std::move(task));
      ++outstanding_;
    }
    task_ready_.notify_one();
  }

  // Block until every submitted task has finished running.
  void wait() {
    std::unique_lock<std::mutex> lock{mu_};
    all_done_.wait(lock, [this] { return outstanding_ == 0; });
  }

 private:
  void worker_loop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock{mu_};
        task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock{mu_};
        if (--outstanding_ == 0) all_done_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t outstanding_ = 0;
  bool stopping_ = false;
};

// Run fn(0) .. fn(n-1) across `jobs` workers and block until all complete.
// With jobs resolved to 1 (or n <= 1) the calls happen inline — the serial
// path stays the reference the parallel one is tested against. The first
// exception thrown by any task is rethrown here after all tasks finish.
inline void parallel_for_index(std::size_t n, int jobs,
                               const std::function<void(std::size_t)>& fn) {
  const int workers = resolve_jobs(jobs);
  if (workers <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool{static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(workers), n))};
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock{err_mu};
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rpv::exec
