#include "exec/run_artifact.hpp"

#include <array>
#include <cstdio>
#include <fstream>

#include "fault/fault_schedule.hpp"
#include "obs/recorder.hpp"
#include "pipeline/report_json.hpp"
#include "sim/validate.hpp"

namespace rpv::exec {

namespace {

constexpr int kManifestSchemaVersion = 1;

std::string run_file_name(std::size_t index, const std::string& label,
                          std::uint64_t seed) {
  char prefix[8];
  std::snprintf(prefix, sizeof prefix, "%03zu", index);
  return std::string{prefix} + "_" + label + "_s" + std::to_string(seed) +
         ".json";
}

json::Value faults_to_json(const fault::FaultSchedule& schedule) {
  json::Value a = json::Value::array();
  for (const auto& ev : schedule.events()) {
    json::Value o = json::Value::object();
    o.set("kind", fault::fault_kind_name(ev.kind))
        .set("at_us", ev.at.us())
        .set("duration_us", ev.duration.us())
        .set("magnitude", ev.magnitude);
    a.push_back(std::move(o));
  }
  return a;
}

}  // namespace

json::Value scenario_to_json(const experiment::Scenario& s) {
  json::Value v = json::Value::object();
  v.set("environment", experiment::environment_name(s.env));
  v.set("mobility", experiment::mobility_name(s.mobility));
  v.set("cc", pipeline::cc_name(s.cc));
  v.set("tech", s.tech == experiment::AccessTech::k5gSa ? "5g-sa" : "lte");
  v.set("seed", s.seed);
  v.set("probe_interval_us", s.probe_interval.us());
  v.set("rfc8888_ack_window", std::int64_t{s.rfc8888_ack_window});
  v.set("drop_on_latency", s.drop_on_latency);
  v.set("fec_group_size", std::int64_t{s.fec_group_size});
  v.set("c2", s.c2);
  v.set("resilience", s.resilience);
  v.set("policy", experiment::policy_name(s.policy));
  v.set("multipath", experiment::multipath_name(s.multipath));
  v.set("path_set", experiment::path_set_name(s.path_set));
  v.set("fault_preset", experiment::fault_preset_name(s.fault_preset));
  v.set("faults_on_both_operators", s.faults_on_both_operators);
  v.set("model_reference_loss", s.model_reference_loss);
  v.set("observe", s.observe);
  v.set("faults", faults_to_json(s.faults));
  return v;
}

std::string current_git_describe() {
  std::FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  std::array<char, 256> buf{};
  std::string out;
  while (std::fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    out += buf.data();
  }
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  if (status != 0 || out.empty()) return "unknown";
  return out;
}

std::filesystem::path RunArtifactStore::write_campaign(
    const CampaignManifest& manifest, const GridResult& result) const {
  rpv::validate(!manifest.name.empty() &&
                    manifest.name.find('/') == std::string::npos,
                "RunArtifactStore: campaign name must be a non-empty "
                "single path component");

  const auto campaign_dir = root_ / manifest.name;
  const auto runs_dir = campaign_dir / "runs";
  std::filesystem::create_directories(runs_dir);

  json::Value doc = json::Value::object();
  doc.set("schema", std::int64_t{kManifestSchemaVersion});
  doc.set("name", manifest.name);
  doc.set("git", manifest.git_describe);
  doc.set("jobs", std::int64_t{manifest.jobs});
  doc.set("runs_per_cell", std::int64_t{manifest.runs_per_cell});
  doc.set("wall_seconds", manifest.wall_seconds);

  json::Value cells = json::Value::array();
  std::size_t run_index = 0;
  for (const auto& cell : result.cells) {
    json::Value cj = json::Value::object();
    cj.set("label", cell.cell.label);
    cj.set("scenario", scenario_to_json(cell.cell.scenario));
    json::Value runs = json::Value::array();
    for (std::size_t i = 0; i < cell.reports.size(); ++i) {
      const std::string file = run_file_name(run_index++, cell.cell.label,
                                             cell.seeds[i]);
      const auto path = runs_dir / file;
      if (!json::write_file(path.string(),
                            pipeline::report_to_json(cell.reports[i]),
                            /*indent=*/-1)) {
        throw std::runtime_error("RunArtifactStore: cannot write " +
                                 path.string());
      }
      json::Value rj = json::Value::object();
      rj.set("seed", cell.seeds[i]);
      rj.set("file", "runs/" + file);
      if (!cell.reports[i].events.empty()) {
        // Recorder timeline: one sibling JSONL per observed run. The writer
        // is canonical, so byte-comparing these across --jobs values is a
        // valid determinism check.
        std::string events_file = file;
        events_file.replace(events_file.size() - 5, 5, ".events.jsonl");
        if (!obs::write_jsonl((runs_dir / events_file).string(),
                              cell.reports[i].events)) {
          throw std::runtime_error("RunArtifactStore: cannot write " +
                                   (runs_dir / events_file).string());
        }
        rj.set("events", "runs/" + events_file);
      }
      runs.push_back(std::move(rj));
    }
    cj.set("runs", std::move(runs));
    cells.push_back(std::move(cj));
  }
  doc.set("cells", std::move(cells));

  const auto manifest_path = campaign_dir / "manifest.json";
  if (!json::write_file(manifest_path.string(), doc, /*indent=*/2)) {
    throw std::runtime_error("RunArtifactStore: cannot write " +
                             manifest_path.string());
  }
  return campaign_dir;
}

std::filesystem::path RunArtifactStore::write_radio_map(
    const std::string& campaign_name, const std::string& map_name,
    const radiomap::RadioMap& map) const {
  rpv::validate(!campaign_name.empty() &&
                    campaign_name.find('/') == std::string::npos,
                "RunArtifactStore: campaign name must be a non-empty "
                "single path component");
  rpv::validate(!map_name.empty() && map_name.find('/') == std::string::npos,
                "RunArtifactStore: map name must be a non-empty "
                "single path component");
  const auto maps_dir = root_ / campaign_name / "maps";
  std::filesystem::create_directories(maps_dir);
  const auto path = maps_dir / (map_name + ".map.json");
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  const auto bytes = map.canonical_bytes();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.put('\n');
  if (!out) {
    throw std::runtime_error("RunArtifactStore: cannot write " + path.string());
  }
  return path;
}

radiomap::RadioMap RunArtifactStore::load_radio_map(
    const std::filesystem::path& file) {
  const auto text = json::read_file(file.string());
  if (!text) {
    throw std::runtime_error("RunArtifactStore: cannot read " + file.string());
  }
  return radiomap::radio_map_from_bytes(*text);
}

LoadedCampaign RunArtifactStore::load_campaign(
    const std::filesystem::path& campaign_dir) {
  const auto manifest_path = campaign_dir / "manifest.json";
  const auto text = json::read_file(manifest_path.string());
  if (!text) {
    throw std::runtime_error("RunArtifactStore: cannot read " +
                             manifest_path.string());
  }
  LoadedCampaign loaded;
  loaded.manifest = json::parse(*text);

  for (const auto& cj : loaded.manifest.at("cells").items()) {
    GridCellResult cell;
    cell.cell.label = cj.at("label").as_string();
    for (const auto& rj : cj.at("runs").items()) {
      const auto path = campaign_dir / rj.at("file").as_string();
      const auto run_text = json::read_file(path.string());
      if (!run_text) {
        throw std::runtime_error("RunArtifactStore: cannot read " +
                                 path.string());
      }
      cell.seeds.push_back(rj.at("seed").as_u64());
      cell.reports.push_back(pipeline::report_from_json(json::parse(*run_text)));
    }
    loaded.cells.push_back(std::move(cell));
  }
  return loaded;
}

}  // namespace rpv::exec
