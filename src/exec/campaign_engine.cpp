#include "exec/campaign_engine.hpp"

#include <chrono>

#include "exec/thread_pool.hpp"
#include "sim/validate.hpp"

namespace rpv::exec {

namespace {

std::string tech_suffix(experiment::AccessTech tech) {
  return tech == experiment::AccessTech::k5gSa ? "-5gsa" : "";
}

std::string policy_suffix(experiment::Policy policy) {
  switch (policy) {
    case experiment::Policy::kReactive: return "";
    case experiment::Policy::kProactive: return "-proactive";
    case experiment::Policy::kPlanned: return "-planned";
  }
  return "";
}

std::string multipath_suffix(experiment::Multipath m) {
  switch (m) {
    case experiment::Multipath::kNone: return "";
    case experiment::Multipath::kDuplicate: return "-mpdup";
    case experiment::Multipath::kScheduled: return "-mpsched";
    case experiment::Multipath::kFailover: return "-mpfail";
    case experiment::Multipath::kBondLowLatency: return "-bond-ll";
    case experiment::Multipath::kBondBalanced: return "-bond-bal";
    case experiment::Multipath::kBondHighReliability: return "-bond-hr";
  }
  return "";
}

std::string path_set_suffix(experiment::PathSet p) {
  switch (p) {
    case experiment::PathSet::kOperatorPair: return "";
    case experiment::PathSet::kThreeWay: return "-sat";
    case experiment::PathSet::kThreeWayMesh: return "-sat-mesh";
  }
  return "";
}

std::string fault_preset_suffix(experiment::FaultPreset p) {
  return p == experiment::FaultPreset::kNone
             ? ""
             : "-" + experiment::fault_preset_name(p);
}

double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

std::vector<GridCell> expand_grid(const GridAxes& axes,
                                  const experiment::Scenario& base) {
  // An empty axis means "keep the base scenario's value".
  const std::vector<experiment::Environment> envs =
      axes.envs.empty() ? std::vector<experiment::Environment>{base.env}
                        : axes.envs;
  const std::vector<experiment::Mobility> mobilities =
      axes.mobilities.empty() ? std::vector<experiment::Mobility>{base.mobility}
                              : axes.mobilities;
  const std::vector<pipeline::CcKind> ccs =
      axes.ccs.empty() ? std::vector<pipeline::CcKind>{base.cc} : axes.ccs;
  const std::vector<experiment::AccessTech> techs =
      axes.techs.empty() ? std::vector<experiment::AccessTech>{base.tech}
                         : axes.techs;
  const std::vector<experiment::Policy> policies =
      axes.policies.empty() ? std::vector<experiment::Policy>{base.policy}
                            : axes.policies;
  const std::vector<experiment::Multipath> multipaths =
      axes.multipaths.empty()
          ? std::vector<experiment::Multipath>{base.multipath}
          : axes.multipaths;
  const std::vector<experiment::PathSet> path_sets =
      axes.path_sets.empty() ? std::vector<experiment::PathSet>{base.path_set}
                             : axes.path_sets;
  const std::vector<experiment::FaultPreset> fault_presets =
      axes.fault_presets.empty()
          ? std::vector<experiment::FaultPreset>{base.fault_preset}
          : axes.fault_presets;

  std::vector<GridCell> cells;
  cells.reserve(envs.size() * mobilities.size() * ccs.size() * techs.size() *
                policies.size() * multipaths.size() * path_sets.size() *
                fault_presets.size());
  for (const auto env : envs) {
    for (const auto mobility : mobilities) {
      for (const auto cc : ccs) {
        for (const auto tech : techs) {
          for (const auto policy : policies) {
            for (const auto multipath : multipaths) {
              for (const auto path_set : path_sets) {
                for (const auto preset : fault_presets) {
                  GridCell cell;
                  cell.scenario = base;
                  cell.scenario.env = env;
                  cell.scenario.mobility = mobility;
                  cell.scenario.cc = cc;
                  cell.scenario.tech = tech;
                  cell.scenario.policy = policy;
                  cell.scenario.multipath = multipath;
                  cell.scenario.path_set = path_set;
                  cell.scenario.fault_preset = preset;
                  cell.label = experiment::environment_name(env) + "-" +
                               experiment::mobility_name(mobility) + "-" +
                               pipeline::cc_name(cell.scenario.cc) +
                               tech_suffix(tech) + policy_suffix(policy) +
                               multipath_suffix(multipath) +
                               path_set_suffix(path_set) +
                               fault_preset_suffix(preset);
                  cells.push_back(std::move(cell));
                }
              }
            }
          }
        }
      }
    }
  }
  rpv::validate(!cells.empty(), "expand_grid: scenario grid is empty");
  return cells;
}

std::vector<std::uint64_t> campaign_seeds(const experiment::Campaign& c) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(c.runs > 0 ? c.runs : 0));
  for (int i = 0; i < c.runs; ++i) {
    seeds.push_back(c.scenario.seed + static_cast<std::uint64_t>(i) * 7919);
  }
  return seeds;
}

int CampaignEngine::jobs() const { return resolve_jobs(cfg_.jobs); }

std::vector<pipeline::SessionReport> CampaignEngine::run_scenarios(
    const std::vector<experiment::Scenario>& scenarios) const {
  // Pre-flight every cell's config on the calling thread: a misconfigured
  // scenario fails the whole campaign up front with a clear message instead
  // of surfacing as an exception on a worker mid-run.
  for (const auto& s : scenarios) {
    experiment::make_session_config(s).validate();
  }
  std::vector<pipeline::SessionReport> reports(scenarios.size());
  parallel_for_index(scenarios.size(), cfg_.jobs, [&](std::size_t i) {
    reports[i] = experiment::run_scenario(scenarios[i]);
  });
  return reports;
}

MergedCampaignResult CampaignEngine::run_scenarios_merged(
    const std::vector<experiment::Scenario>& scenarios) const {
  for (const auto& s : scenarios) {
    experiment::make_session_config(s).validate();
  }
  const auto start = std::chrono::steady_clock::now();
  // One registry per run, indexed like the scenarios; workers only touch
  // their own slot, and the fold below walks the slots in index order.
  std::vector<obs::MetricsRegistry> registries(scenarios.size());
  parallel_for_index(scenarios.size(), cfg_.jobs, [&](std::size_t i) {
    (void)experiment::run_scenario(scenarios[i], &registries[i]);
  });
  MergedCampaignResult result;
  result.runs = scenarios.size();
  obs::MetricsRegistry merged;
  for (const auto& reg : registries) merged.merge(reg);
  result.metrics = merged.summary();
  result.wall_seconds = elapsed_seconds(start);
  return result;
}

CampaignResult CampaignEngine::run(const experiment::Campaign& campaign) const {
  rpv::validate(campaign.runs > 0, "Campaign.runs must be > 0");
  const auto start = std::chrono::steady_clock::now();
  CampaignResult result;
  result.seeds = campaign_seeds(campaign);
  std::vector<experiment::Scenario> scenarios;
  scenarios.reserve(result.seeds.size());
  for (const auto seed : result.seeds) {
    experiment::Scenario s = campaign.scenario;
    s.seed = seed;
    scenarios.push_back(s);
  }
  result.reports = run_scenarios(scenarios);
  result.wall_seconds = elapsed_seconds(start);
  return result;
}

GridResult CampaignEngine::run_grid(const std::vector<GridCell>& cells,
                                    int runs, std::uint64_t base_seed) const {
  rpv::validate(!cells.empty(), "run_grid: scenario grid is empty");
  rpv::validate(runs > 0, "run_grid: runs must be > 0");
  const auto start = std::chrono::steady_clock::now();

  // Flatten cells x runs into one task list so the pool never idles at cell
  // boundaries, then scatter results back by (cell, run) index.
  std::vector<experiment::Scenario> scenarios;
  scenarios.reserve(cells.size() * static_cast<std::size_t>(runs));
  GridResult result;
  result.jobs = jobs();
  result.cells.reserve(cells.size());
  for (const auto& cell : cells) {
    GridCellResult cr;
    cr.cell = cell;
    experiment::Campaign c;
    c.scenario = cell.scenario;
    c.scenario.seed = base_seed;
    c.runs = runs;
    cr.seeds = campaign_seeds(c);
    for (const auto seed : cr.seeds) {
      experiment::Scenario s = cell.scenario;
      s.seed = seed;
      scenarios.push_back(s);
    }
    result.cells.push_back(std::move(cr));
  }

  auto reports = run_scenarios(scenarios);
  std::size_t next = 0;
  for (auto& cr : result.cells) {
    cr.reports.reserve(static_cast<std::size_t>(runs));
    for (int i = 0; i < runs; ++i) {
      cr.reports.push_back(std::move(reports[next++]));
    }
  }
  result.wall_seconds = elapsed_seconds(start);
  return result;
}

}  // namespace rpv::exec
