#include "metrics/handover_log.hpp"

#include <algorithm>

namespace rpv::metrics {

double HandoverLog::frequency(sim::Duration observed) const {
  if (observed <= sim::Duration::zero()) return 0.0;
  return static_cast<double>(events_.size()) / observed.sec();
}

std::vector<double> HandoverLog::het_ms() const {
  std::vector<double> out;
  out.reserve(events_.size());
  for (const auto& e : events_) out.push_back(e.het.ms());
  return out;
}

std::size_t HandoverLog::ping_pong_count() const {
  return static_cast<std::size_t>(std::count_if(
      events_.begin(), events_.end(),
      [](const HandoverEvent& e) { return e.ping_pong; }));
}

std::vector<LatencyRatio> HandoverLog::latency_ratios(const TimeSeries& owd_ms,
                                                      sim::Duration window) const {
  std::vector<LatencyRatio> out;
  for (const auto& e : events_) {
    const auto end = e.start + e.het;
    const auto max_b = owd_ms.max_in(e.start - window, e.start);
    const auto min_b = owd_ms.min_in(e.start - window, e.start);
    const auto max_a = owd_ms.max_in(end, end + window);
    const auto min_a = owd_ms.min_in(end, end + window);
    if (!max_b || !min_b || !max_a || !min_a) continue;
    if (*min_b <= 0.0 || *min_a <= 0.0) continue;
    out.push_back({*max_b / *min_b, *max_a / *min_a});
  }
  return out;
}

}  // namespace rpv::metrics
