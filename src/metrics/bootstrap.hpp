// Bootstrap confidence intervals for campaign aggregates.
//
// A measurement study reporting means over a modest number of flights should
// quote uncertainty; the benches use percentile-bootstrap CIs over the
// per-run statistics to mirror that practice.
#pragma once

#include <vector>

#include "sim/rng.hpp"

namespace rpv::metrics {

struct ConfidenceInterval {
  double mean = 0.0;
  double lo = 0.0;  // lower bound
  double hi = 0.0;  // upper bound
  double level = 0.95;
};

// Percentile bootstrap CI of the mean. Deterministic for a given seed.
ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples,
                                     double level = 0.95, int resamples = 2000,
                                     std::uint64_t seed = 0xB007);

}  // namespace rpv::metrics
