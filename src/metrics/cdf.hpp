// Empirical CDF accumulator.
//
// Collects samples and answers quantile / fraction-below queries, and can
// render the same CDF series the paper plots (Figs. 5, 7, 12, 13).
#pragma once

#include <string>
#include <vector>

namespace rpv::metrics {

class Cdf {
 public:
  void add(double v) { samples_.push_back(v); sorted_ = false; }
  void add_all(const std::vector<double>& vs);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  // Quantile q in [0, 1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }
  [[nodiscard]] double mean() const;

  // Fraction of samples <= x (the CDF value at x).
  [[nodiscard]] double fraction_below(double x) const;
  // Fraction of samples >= x.
  [[nodiscard]] double fraction_at_least(double x) const;

  // Evaluate the CDF at each of `xs`; returns F(x) per point.
  [[nodiscard]] std::vector<double> evaluate(const std::vector<double>& xs) const;

  // Render "x f(x)" rows at `points` evenly spaced quantiles, for plotting.
  [[nodiscard]] std::string to_rows(int points = 20) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace rpv::metrics
