#include "metrics/summary.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace rpv::metrics {
namespace {

double quantile_sorted(const std::vector<double>& s, double q) {
  if (s.empty()) return 0.0;
  const double idx = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  if (lo == hi) return s[lo];
  const double f = idx - static_cast<double>(lo);
  return s[lo] * (1.0 - f) + s[hi] * f;
}

}  // namespace

Summary Summary::of(const std::vector<double>& samples) {
  Summary out;
  if (samples.empty()) return out;
  std::vector<double> s = samples;
  std::sort(s.begin(), s.end());
  out.n = s.size();
  out.min = s.front();
  out.max = s.back();
  out.q1 = quantile_sorted(s, 0.25);
  out.median = quantile_sorted(s, 0.5);
  out.q3 = quantile_sorted(s, 0.75);
  out.mean = std::accumulate(s.begin(), s.end(), 0.0) / static_cast<double>(s.size());
  const double iqr = out.q3 - out.q1;
  const double lo_fence = out.q1 - 1.5 * iqr;
  const double hi_fence = out.q3 + 1.5 * iqr;
  out.whisker_lo = out.min;
  out.whisker_hi = out.max;
  for (const double v : s) {
    if (v >= lo_fence) { out.whisker_lo = v; break; }
  }
  for (auto it = s.rbegin(); it != s.rend(); ++it) {
    if (*it <= hi_fence) { out.whisker_hi = *it; break; }
  }
  out.outliers_hi = static_cast<std::size_t>(
      std::count_if(s.begin(), s.end(), [&](double v) { return v > hi_fence; }));
  return out;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << n << " min=" << min << " q1=" << q1 << " med=" << median
     << " q3=" << q3 << " max=" << max << " mean=" << mean
     << " outliers_hi=" << outliers_hi;
  return os.str();
}

}  // namespace rpv::metrics
