#include "metrics/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace rpv::metrics {

void Cdf::add_all(const std::vector<double>& vs) {
  samples_.insert(samples_.end(), vs.begin(), vs.end());
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double idx = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  if (lo == hi) return samples_[lo];
  const double f = idx - static_cast<double>(lo);
  return samples_[lo] * (1.0 - f) + samples_[hi] * f;
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Cdf::fraction_below(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::fraction_at_least(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::lower_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(samples_.end() - it) /
         static_cast<double>(samples_.size());
}

std::vector<double> Cdf::evaluate(const std::vector<double>& xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (const double x : xs) out.push_back(fraction_below(x));
  return out;
}

std::string Cdf::to_rows(int points) const {
  std::ostringstream os;
  for (int i = 0; i <= points; ++i) {
    const double q = static_cast<double>(i) / points;
    os << quantile(q) << " " << q << "\n";
  }
  return os.str();
}

}  // namespace rpv::metrics
