#include "metrics/bootstrap.hpp"

#include <algorithm>
#include <numeric>

namespace rpv::metrics {

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples,
                                     double level, int resamples,
                                     std::uint64_t seed) {
  ConfidenceInterval ci;
  ci.level = level;
  if (samples.empty()) return ci;
  ci.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
            static_cast<double>(samples.size());
  if (samples.size() == 1) {
    ci.lo = ci.hi = ci.mean;
    return ci;
  }

  sim::Rng rng{seed};
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  const auto n = static_cast<std::int64_t>(samples.size());
  for (int r = 0; r < resamples; ++r) {
    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      total += samples[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    means.push_back(total / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - level) / 2.0;
  const auto lo_idx = static_cast<std::size_t>(alpha * (resamples - 1));
  const auto hi_idx = static_cast<std::size_t>((1.0 - alpha) * (resamples - 1));
  ci.lo = means[lo_idx];
  ci.hi = means[hi_idx];
  return ci;
}

}  // namespace rpv::metrics
