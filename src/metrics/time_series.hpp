// Timestamped sample series.
//
// Used for the trace-style analyses: network/playback latency over flight
// time (Fig. 8), windowed extraction around handovers (Fig. 9), and rate
// computations (goodput over intervals).
#pragma once

#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace rpv::metrics {

struct Sample {
  sim::TimePoint t;
  double value = 0.0;
};

class TimeSeries {
 public:
  void add(sim::TimePoint t, double value) { samples_.push_back({t, value}); }

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  // All values with t in [from, to].
  [[nodiscard]] std::vector<double> values_in(sim::TimePoint from,
                                              sim::TimePoint to) const;
  // Max/min of values in the window; nullopt if the window is empty.
  [[nodiscard]] std::optional<double> max_in(sim::TimePoint from,
                                             sim::TimePoint to) const;
  [[nodiscard]] std::optional<double> min_in(sim::TimePoint from,
                                             sim::TimePoint to) const;
  [[nodiscard]] std::vector<double> values() const;

  // Mean of values in the window; nullopt if empty.
  [[nodiscard]] std::optional<double> mean_in(sim::TimePoint from,
                                              sim::TimePoint to) const;

 private:
  std::vector<Sample> samples_;  // appended in time order by construction
};

}  // namespace rpv::metrics
