// Fixed-width text table renderer for bench/example output. Columns size
// themselves to the widest cell; numeric formatting is the caller's job.
#pragma once

#include <string>
#include <vector>

namespace rpv::metrics {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;

  // Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rpv::metrics
