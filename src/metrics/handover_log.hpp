// Handover event log and the derived statistics the paper reports:
// HO frequency (HO/s), HET distribution (Fig. 4), and the max-to-min
// latency ratio in the 1-second windows before/after each HO (Fig. 9).
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/time_series.hpp"
#include "sim/time.hpp"

namespace rpv::metrics {

struct HandoverEvent {
  sim::TimePoint start;       // RRCConnectionReconfiguration received
  sim::Duration het;          // execution time until ...Complete at target
  std::uint32_t source_cell = 0;
  std::uint32_t target_cell = 0;
  bool ping_pong = false;     // returned to a recently-left cell
};

struct LatencyRatio {
  double before = 1.0;  // max/min one-way latency in [start-1s, start]
  double after = 1.0;   // max/min one-way latency in [end, end+1s]
};

class HandoverLog {
 public:
  void record(const HandoverEvent& e) { events_.push_back(e); }

  [[nodiscard]] const std::vector<HandoverEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t count() const { return events_.size(); }

  // Handovers per second over an observation window.
  [[nodiscard]] double frequency(sim::Duration observed) const;
  [[nodiscard]] std::vector<double> het_ms() const;
  [[nodiscard]] std::size_t ping_pong_count() const;

  // Fig. 9 analysis: ±1 s window latency ratios around each HO, computed
  // against a one-way-latency time series (values in ms).
  [[nodiscard]] std::vector<LatencyRatio> latency_ratios(
      const TimeSeries& owd_ms,
      sim::Duration window = sim::Duration::seconds(1.0)) const;

 private:
  std::vector<HandoverEvent> events_;
};

}  // namespace rpv::metrics
