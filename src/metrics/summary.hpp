// Boxplot-style summary of a sample set: min/q1/median/q3/max/mean plus
// outlier counts — the representation behind the paper's boxplot figures
// (Figs. 4, 6, 9, 10).
#pragma once

#include <string>
#include <vector>

namespace rpv::metrics {

struct Summary {
  std::size_t n = 0;
  double min = 0.0, q1 = 0.0, median = 0.0, q3 = 0.0, max = 0.0, mean = 0.0;
  double whisker_lo = 0.0, whisker_hi = 0.0;  // 1.5 IQR fences clamped to data
  std::size_t outliers_hi = 0;                // samples above the upper fence

  static Summary of(const std::vector<double>& samples);
  [[nodiscard]] std::string to_string() const;
};

}  // namespace rpv::metrics
