#include "metrics/time_series.hpp"

#include <algorithm>
#include <numeric>

namespace rpv::metrics {

std::vector<double> TimeSeries::values_in(sim::TimePoint from,
                                          sim::TimePoint to) const {
  std::vector<double> out;
  const auto lo = std::lower_bound(
      samples_.begin(), samples_.end(), from,
      [](const Sample& s, sim::TimePoint t) { return s.t < t; });
  for (auto it = lo; it != samples_.end() && it->t <= to; ++it) {
    out.push_back(it->value);
  }
  return out;
}

std::optional<double> TimeSeries::max_in(sim::TimePoint from, sim::TimePoint to) const {
  const auto vs = values_in(from, to);
  if (vs.empty()) return std::nullopt;
  return *std::max_element(vs.begin(), vs.end());
}

std::optional<double> TimeSeries::min_in(sim::TimePoint from, sim::TimePoint to) const {
  const auto vs = values_in(from, to);
  if (vs.empty()) return std::nullopt;
  return *std::min_element(vs.begin(), vs.end());
}

std::optional<double> TimeSeries::mean_in(sim::TimePoint from, sim::TimePoint to) const {
  const auto vs = values_in(from, to);
  if (vs.empty()) return std::nullopt;
  return std::accumulate(vs.begin(), vs.end(), 0.0) / static_cast<double>(vs.size());
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.value);
  return out;
}

}  // namespace rpv::metrics
