// Exponential backoff with a capped factor: 1, 2, 4, ... up to max_factor.
//
// Used by the receiver's keyframe-recovery (PLI) retransmission: during an
// outage every request is lost, so the retry interval doubles until it hits
// base * max_factor and stays there — the link eventually comes back and a
// capped interval guarantees a request lands shortly after, whereas a retry
// *count* cap would exhaust itself mid-outage and never recover.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace rpv::fault {

class Backoff {
 public:
  Backoff(sim::Duration base, std::uint32_t max_factor)
      : base_{base}, max_factor_{max_factor} {}

  // The next wait interval; doubles the factor for the following call.
  sim::Duration next() {
    const auto interval = base_ * static_cast<double>(factor_);
    if (factor_ < max_factor_) factor_ *= 2;
    return interval;
  }

  void reset() { factor_ = 1; }

  [[nodiscard]] std::uint32_t factor() const { return factor_; }

 private:
  sim::Duration base_;
  std::uint32_t max_factor_;
  std::uint32_t factor_ = 1;
};

}  // namespace rpv::fault
