#include "fault/fault_schedule.hpp"

#include <algorithm>

#include "sim/validate.hpp"

namespace rpv::fault {

std::string fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRlf: return "rlf";
    case FaultKind::kFeedbackBlackout: return "feedback-blackout";
    case FaultKind::kCapacityCollapse: return "capacity-collapse";
    case FaultKind::kWanOutage: return "wan-outage";
  }
  return "?";
}

FaultSchedule& FaultSchedule::add(const FaultEvent& ev) {
  validate(ev.at >= sim::TimePoint::origin(),
           "FaultEvent.at must not precede the simulation origin");
  if (ev.kind != FaultKind::kRlf) {
    validate(ev.duration > sim::Duration::zero(),
             "FaultEvent.duration must be positive for " +
                 fault_kind_name(ev.kind));
  }
  if (ev.kind == FaultKind::kCapacityCollapse) {
    validate(ev.magnitude >= 0.0 && ev.magnitude < 1.0,
             "capacity-collapse residual must be in [0, 1)");
  }
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), ev,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_.insert(pos, ev);
  return *this;
}

FaultSchedule& FaultSchedule::rlf(double at_sec) {
  return add({sim::TimePoint::origin() + sim::Duration::seconds(at_sec),
              sim::Duration::zero(), FaultKind::kRlf, 0.0});
}

FaultSchedule& FaultSchedule::feedback_blackout(double at_sec,
                                                double duration_sec) {
  return add({sim::TimePoint::origin() + sim::Duration::seconds(at_sec),
              sim::Duration::seconds(duration_sec),
              FaultKind::kFeedbackBlackout, 0.0});
}

FaultSchedule& FaultSchedule::capacity_collapse(double at_sec,
                                                double duration_sec,
                                                double residual) {
  return add({sim::TimePoint::origin() + sim::Duration::seconds(at_sec),
              sim::Duration::seconds(duration_sec),
              FaultKind::kCapacityCollapse, residual});
}

FaultSchedule& FaultSchedule::wan_outage(double at_sec, double duration_sec) {
  return add({sim::TimePoint::origin() + sim::Duration::seconds(at_sec),
              sim::Duration::seconds(duration_sec), FaultKind::kWanOutage,
              0.0});
}

FaultSchedule FaultSchedule::random(std::uint64_t seed, sim::Duration horizon,
                                    double mean_gap_sec,
                                    double mean_duration_sec) {
  validate(horizon > sim::Duration::zero(), "chaos horizon must be positive");
  validate(mean_gap_sec > 0.0 && mean_duration_sec > 0.0,
           "chaos schedule means must be positive");
  sim::Rng rng{seed};
  FaultSchedule schedule;
  // Leave a short quiet lead-in so the pipeline is streaming before the
  // first fault lands.
  double t = 2.0 + rng.exponential(mean_gap_sec);
  while (t < horizon.sec()) {
    FaultEvent ev;
    ev.at = sim::TimePoint::origin() + sim::Duration::seconds(t);
    ev.kind = static_cast<FaultKind>(rng.uniform_int(0, 3));
    // Floor well above zero so every event is a real disturbance.
    ev.duration =
        sim::Duration::seconds(0.25 + rng.exponential(mean_duration_sec));
    if (ev.kind == FaultKind::kCapacityCollapse) {
      ev.magnitude = rng.uniform(0.0, 0.25);
    }
    schedule.add(ev);
    t += rng.exponential(mean_gap_sec);
  }
  return schedule;
}

}  // namespace rpv::fault
