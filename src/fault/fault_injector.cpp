#include "fault/fault_injector.hpp"

#include <algorithm>

namespace rpv::fault {

void FaultInjector::arm() {
  for (const auto& ev : schedule_.events()) {
    sim_.schedule_at(ev.at, [this, ev] { inject(ev); });
  }
}

void FaultInjector::inject(const FaultEvent& ev) {
  FaultOutcome outcome;
  outcome.event = ev;
  outcome.effective_duration = ev.duration;

  switch (ev.kind) {
    case FaultKind::kRlf:
      if (link_ == nullptr) return;
      outcome.effective_duration = link_->inject_rlf();
      break;
    case FaultKind::kFeedbackBlackout:
      if (link_ == nullptr) return;
      link_->inject_downlink_blackout(ev.duration);
      break;
    case FaultKind::kCapacityCollapse:
      if (link_ == nullptr) return;
      link_->inject_capacity_collapse(ev.duration, ev.magnitude);
      break;
    case FaultKind::kWanOutage: {
      if (wan_up_ == nullptr && wan_down_ == nullptr) return;
      ++wan_outages_active_;
      if (wan_up_) wan_up_->set_outage(true);
      if (wan_down_) wan_down_->set_outage(true);
      sim_.schedule_in(ev.duration, [this] {
        if (--wan_outages_active_ > 0) return;
        if (wan_up_) wan_up_->set_outage(false);
        if (wan_down_) wan_down_->set_outage(false);
      });
      break;
    }
  }
  if (bus_ != nullptr) {
    const obs::FaultPayload payload{static_cast<std::uint8_t>(ev.kind),
                                    outcome.effective_duration.us(),
                                    ev.magnitude};
    if (bus_->wants(obs::EventKind::kFaultInjected)) {
      bus_->publish(obs::Component::kFault, obs::EventKind::kFaultInjected,
                    sim_.now(), payload);
    }
    if (bus_->wants(obs::EventKind::kFaultEnded)) {
      sim_.schedule_in(outcome.effective_duration, [this, payload] {
        bus_->publish(obs::Component::kFault, obs::EventKind::kFaultEnded,
                      sim_.now(), payload);
      });
    }
  }
  outcomes_.push_back(outcome);
}

void attribute_recovery(std::vector<FaultOutcome>& outcomes,
                        const metrics::TimeSeries& playback_latency_ms,
                        const std::vector<sim::TimePoint>& clean_frame_times,
                        const std::vector<sim::TimePoint>& stall_times,
                        double recover_below_ms) {
  const auto& latency = playback_latency_ms.samples();
  std::vector<sim::TimePoint> recovered_at(outcomes.size(),
                                           sim::TimePoint::never());

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    auto& o = outcomes[i];
    const auto fault_end = o.event.at + o.effective_duration;

    sim::TimePoint latency_ok = sim::TimePoint::never();
    for (const auto& s : latency) {
      if (s.t >= fault_end && s.value <= recover_below_ms) {
        latency_ok = s.t;
        break;
      }
    }
    sim::TimePoint clean_ok = sim::TimePoint::never();
    const auto it = std::lower_bound(clean_frame_times.begin(),
                                     clean_frame_times.end(), fault_end);
    if (it != clean_frame_times.end()) clean_ok = *it;

    if (!latency_ok.is_never() && !clean_ok.is_never()) {
      recovered_at[i] = std::max(latency_ok, clean_ok);
      o.recovery_ms = (recovered_at[i] - fault_end).ms();
    }
  }

  // Each stall belongs to the most recent fault still in its recovery
  // window (an unrecovered fault keeps its window open to the end).
  for (const auto& t : stall_times) {
    for (std::size_t i = outcomes.size(); i-- > 0;) {
      if (outcomes[i].event.at > t) continue;
      if (recovered_at[i].is_never() || t <= recovered_at[i]) {
        ++outcomes[i].stalls_attributed;
      }
      break;
    }
  }
}

}  // namespace rpv::fault
