// Scriptable fault schedule — the failure modes the paper observed on aerial
// LTE links, as deterministic, seedable injection events.
//
// The measurement campaign saw the benign side of the story; its Section 5
// recommendation is resilience machinery for the malign one: radio link
// failures with multi-second re-establishment, RTCP feedback silence,
// capacity collapses at the cell edge, and transport outages beyond the
// radio. A FaultSchedule is a sorted list of such events that composes with
// any Scenario/SessionConfig; the FaultInjector drives the corresponding
// hooks in rpv::cellular::CellularLink and rpv::net::WanPath at simulation
// time. Schedules are plain data: the same schedule plus the same session
// seed reproduces a byte-identical run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace rpv::fault {

enum class FaultKind : std::uint8_t {
  kRlf,               // radio link failure: T310 expiry -> RRC re-establishment
  kFeedbackBlackout,  // downlink RTCP silence; uplink media keeps flowing
  kCapacityCollapse,  // transient deep fade: capacity x residual fraction
  kWanOutage,         // WAN leg drops every packet, both directions
};

[[nodiscard]] std::string fault_kind_name(FaultKind kind);

struct FaultEvent {
  sim::TimePoint at;
  // Outage length. Ignored for kRlf: the re-establishment time is sampled
  // from the link's HET model (T310 + cell re-selection), like real RLF.
  sim::Duration duration = sim::Duration::zero();
  FaultKind kind = FaultKind::kCapacityCollapse;
  // kCapacityCollapse only: residual capacity fraction in [0, 1).
  double magnitude = 0.0;
};

class FaultSchedule {
 public:
  // Validates and inserts keeping events sorted by injection time.
  FaultSchedule& add(const FaultEvent& ev);

  // Convenience builders (times in simulation seconds).
  FaultSchedule& rlf(double at_sec);
  FaultSchedule& feedback_blackout(double at_sec, double duration_sec);
  FaultSchedule& capacity_collapse(double at_sec, double duration_sec,
                                   double residual = 0.0);
  FaultSchedule& wan_outage(double at_sec, double duration_sec);

  // A random-but-deterministic chaos schedule: fault starts form a Poisson
  // process with the given mean inter-fault gap, kinds drawn uniformly,
  // durations exponential with the given mean. Same seed -> same schedule.
  [[nodiscard]] static FaultSchedule random(std::uint64_t seed,
                                            sim::Duration horizon,
                                            double mean_gap_sec = 45.0,
                                            double mean_duration_sec = 2.0);

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;  // sorted by `at`
};

}  // namespace rpv::fault
