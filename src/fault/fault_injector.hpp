// Arms a FaultSchedule against the live simulation objects.
//
// The injector owns no model state of its own: each scheduled event calls
// the corresponding hook on CellularLink (RLF, feedback blackout, capacity
// collapse) or flips the WAN paths into outage. It records one FaultOutcome
// per injected event; after the run, attribute_recovery() fills in how long
// the pipeline took to recover and which player stalls each fault caused.
#pragma once

#include <vector>

#include "cellular/cellular_link.hpp"
#include "fault/fault_schedule.hpp"
#include "metrics/time_series.hpp"
#include "net/wan_path.hpp"
#include "sim/simulator.hpp"

namespace rpv::fault {

struct FaultOutcome {
  FaultEvent event;
  // Scripted duration, or the HET-sampled re-establishment time for RLF.
  sim::Duration effective_duration = sim::Duration::zero();
  // Time from fault end until the pipeline is healthy again (playback
  // latency back under threshold AND a clean frame decoded); -1 if the run
  // ended first.
  double recovery_ms = -1.0;
  int stalls_attributed = 0;
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& simulator, FaultSchedule schedule)
      : sim_{simulator}, schedule_{std::move(schedule)} {}

  void attach_cellular(cellular::CellularLink* link) { link_ = link; }
  void attach_wan(net::WanPath* up, net::WanPath* down) {
    wan_up_ = up;
    wan_down_ = down;
  }
  // Publish kFaultInjected / kFaultEnded onto the session's event bus.
  void attach_observer(obs::EventBus* bus) { bus_ = bus; }

  // Schedule every event; call once after attaching, before the run.
  void arm();

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }
  [[nodiscard]] std::vector<FaultOutcome>& outcomes() { return outcomes_; }
  [[nodiscard]] const std::vector<FaultOutcome>& outcomes() const {
    return outcomes_;
  }
  [[nodiscard]] std::uint64_t injected() const { return outcomes_.size(); }

 private:
  void inject(const FaultEvent& ev);

  sim::Simulator& sim_;
  FaultSchedule schedule_;
  cellular::CellularLink* link_ = nullptr;
  net::WanPath* wan_up_ = nullptr;
  net::WanPath* wan_down_ = nullptr;
  obs::EventBus* bus_ = nullptr;
  std::vector<FaultOutcome> outcomes_;
  int wan_outages_active_ = 0;  // overlapping outages must not clear early
};

// Post-run recovery attribution. For each outcome, recovery is the later of
// (a) the first playback-latency sample at/after the fault end at or below
// `recover_below_ms` and (b) the first clean (undamaged) decoded frame after
// the fault end. Stalls are attributed to the most recent fault whose
// [injection, recovery] window covers them.
void attribute_recovery(std::vector<FaultOutcome>& outcomes,
                        const metrics::TimeSeries& playback_latency_ms,
                        const std::vector<sim::TimePoint>& clean_frame_times,
                        const std::vector<sim::TimePoint>& stall_times,
                        double recover_below_ms = 400.0);

}  // namespace rpv::fault
