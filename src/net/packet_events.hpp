// Bridge between net::Packet and the obs packet payload. Lives in net (not
// obs) so the obs layer stays ignorant of packet internals.
#pragma once

#include "net/packet.hpp"
#include "obs/event.hpp"

namespace rpv::net {

[[nodiscard]] inline obs::PacketPayload packet_payload(const Packet& p,
                                                       double owd_ms = 0.0) {
  obs::PacketPayload out;
  out.id = p.id;
  out.kind = static_cast<std::uint8_t>(p.kind);
  out.size_bytes = static_cast<std::uint32_t>(p.size_bytes);
  out.frame_id = p.frame_id;
  out.transport_seq = p.transport_seq;
  out.owd_ms = owd_ms;
  return out;
}

}  // namespace rpv::net
