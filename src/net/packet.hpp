// Packet descriptor flowing through the simulated network.
//
// The pipeline never carries real payload bytes — only the metadata the
// receiver, jitter buffer, and congestion controllers act on: sizes, sequence
// numbers, timestamps, and the frame a packet belongs to.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace rpv::net {

enum class PacketKind : std::uint8_t {
  kRtpVideo,    // uplink media
  kRtcpFeedback,  // downlink CC feedback
  kProbe,       // ICMP-style ping used by the latency benches
  kFecParity,   // XOR parity protecting a group of media packets
};

struct Packet {
  std::uint64_t id = 0;             // unique per-session id
  PacketKind kind = PacketKind::kRtpVideo;
  std::size_t size_bytes = 0;

  // RTP metadata (video packets).
  std::uint16_t rtp_seq = 0;          // RTP sequence number (wraps)
  std::uint16_t transport_seq = 0;    // transport-wide CC sequence (wraps)
  std::uint32_t frame_id = 0;         // which video frame this packet carries
  bool frame_last = false;            // marker bit: last packet of the frame
  bool keyframe = false;              // carries part of an IDR frame
  sim::TimePoint rtp_timestamp;       // RTP timestamp: frame capture time
  std::int32_t fec_group = -1;        // FEC group membership; -1 unprotected

  // Logical identity preserved across bonded duplicate copies (each copy gets
  // its own descriptor `id`); 0 means "same as id".
  std::uint64_t origin_id = 0;

  sim::TimePoint enqueued;   // handed to the sender pacer / link
  sim::TimePoint sent;       // began transmission on the radio
  sim::TimePoint received;   // delivered to the far end
};

}  // namespace rpv::net
