#include "net/wan_path.hpp"

#include <cmath>

namespace rpv::net {

sim::Duration WanPath::sample_delay() {
  const double jitter = std::abs(rng_.normal(0.0, cfg_.jitter.ms()));
  return cfg_.base_owd + sim::Duration::seconds(jitter / 1e3);
}

}  // namespace rpv::net
