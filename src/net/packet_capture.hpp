// Packet-level capture — the tcpdump analogue.
//
// The paper collects packet-level data with tcpdump on both ends; sessions
// can attach this sink to record every delivered (and lost) packet with its
// timing metadata, for offline analysis or CSV export via rpv::trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace rpv::net {

struct PacketRecord {
  std::uint64_t id = 0;
  PacketKind kind = PacketKind::kRtpVideo;
  std::size_t size_bytes = 0;
  std::uint16_t transport_seq = 0;
  std::uint32_t frame_id = 0;
  sim::TimePoint enqueued;
  sim::TimePoint received;  // never() for lost packets
  bool lost = false;
};

class PacketCapture {
 public:
  explicit PacketCapture(std::size_t max_records = 2'000'000)
      : max_records_{max_records} {}

  void record_delivery(const Packet& p) {
    if (records_.size() >= max_records_) {
      ++overflow_;
      return;
    }
    records_.push_back({p.id, p.kind, p.size_bytes, p.transport_seq, p.frame_id,
                        p.enqueued, p.received, false});
  }

  void record_loss(const Packet& p) {
    if (records_.size() >= max_records_) {
      ++overflow_;
      return;
    }
    records_.push_back({p.id, p.kind, p.size_bytes, p.transport_seq, p.frame_id,
                        p.enqueued, sim::TimePoint::never(), true});
  }

  [[nodiscard]] const std::vector<PacketRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t count() const { return records_.size(); }
  [[nodiscard]] std::uint64_t dropped_records() const { return overflow_; }

  [[nodiscard]] std::size_t lost_count() const {
    std::size_t n = 0;
    for (const auto& r : records_) n += r.lost ? 1 : 0;
    return n;
  }

 private:
  std::size_t max_records_;
  std::vector<PacketRecord> records_;
  std::uint64_t overflow_ = 0;
};

}  // namespace rpv::net
