// Wide-area path between the cellular core and the remote receiver.
//
// The paper's receiver is an AWS EC2 instance ~1000 km from the measurement
// site with a minimum UE<->server RTT of ~35 ms; the WAN leg contributes a
// nearly-fixed propagation delay plus small jitter and negligible loss.
#pragma once

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace rpv::net {

struct WanConfig {
  sim::Duration base_owd = sim::Duration::millis(9);  // one-way propagation
  double jitter_ms = 0.6;        // half-normal jitter added per packet
  double loss_probability = 1e-6;
};

class WanPath {
 public:
  WanPath(const WanConfig& cfg, sim::Rng rng) : cfg_{cfg}, rng_{rng} {}

  // One-way delay for the next packet; never below base_owd.
  sim::Duration sample_delay();
  bool drops_packet() { return outage_ || rng_.chance(cfg_.loss_probability); }

  // Fault injection: while in outage, every packet offered is dropped.
  void set_outage(bool on) { outage_ = on; }
  [[nodiscard]] bool in_outage() const { return outage_; }

  [[nodiscard]] const WanConfig& config() const { return cfg_; }

 private:
  WanConfig cfg_;
  sim::Rng rng_;
  bool outage_ = false;
};

}  // namespace rpv::net
