// Wide-area path between the cellular core and the remote receiver.
//
// The paper's receiver is an AWS EC2 instance ~1000 km from the measurement
// site with a minimum UE<->server RTT of ~35 ms; the WAN leg contributes a
// nearly-fixed propagation delay plus small jitter and negligible loss.
#pragma once

#include <cstdint>

#include "obs/event_sink.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace rpv::net {

struct WanConfig {
  sim::Duration base_owd = sim::Duration::millis(9);  // one-way propagation
  // Sigma of the half-normal jitter added per packet.
  sim::Duration jitter = sim::Duration::micros(600);
  double loss_probability = 1e-6;
};

class WanPath {
 public:
  WanPath(const WanConfig& cfg, sim::Rng rng) : cfg_{cfg}, rng_{rng} {}

  // One-way delay for the next packet; never below base_owd.
  sim::Duration sample_delay();
  bool drops_packet() { return outage_ || rng_.chance(cfg_.loss_probability); }
  // Observed variant: publishes kWanDrop (with the packet id) when it drops.
  bool drops_packet(sim::TimePoint now, std::uint64_t packet_id,
                    std::uint32_t size_bytes = 0) {
    const bool drop = drops_packet();
    if (drop && bus_ != nullptr && bus_->wants(obs::EventKind::kWanDrop)) {
      obs::PacketPayload p;
      p.id = packet_id;
      p.size_bytes = size_bytes;
      bus_->publish(obs::Component::kWan, obs::EventKind::kWanDrop, now,
                    p);
    }
    return drop;
  }

  void attach_observer(obs::EventBus* bus) { bus_ = bus; }

  // Fault injection: while in outage, every packet offered is dropped.
  void set_outage(bool on) { outage_ = on; }
  [[nodiscard]] bool in_outage() const { return outage_; }

  [[nodiscard]] const WanConfig& config() const { return cfg_; }

 private:
  WanConfig cfg_;
  sim::Rng rng_;
  obs::EventBus* bus_ = nullptr;
  bool outage_ = false;
};

}  // namespace rpv::net
