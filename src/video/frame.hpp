// Video frame descriptor.
//
// The real pipeline embeds a QR code (frame number) and a barcode (encoding
// timestamp) in every frame so the receiver can compute per-frame delivery
// metrics; here the same information travels as plain metadata.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace rpv::video {

struct Frame {
  std::uint32_t id = 0;              // the QR-code frame number
  sim::TimePoint capture_time;       // source timestamp (30 FPS grid)
  sim::TimePoint encode_time;        // the barcode timestamp
  std::size_t size_bytes = 0;        // encoded size
  bool keyframe = false;             // IDR
  double encoded_bitrate_bps = 0.0;  // encoder target when this frame was coded
  double complexity = 1.0;           // scene complexity when captured
};

// Fixed workload parameters (paper §3.2): 30 FPS full-HD H.264.
inline constexpr double kFps = 30.0;
inline constexpr int kWidth = 1920;
inline constexpr int kHeight = 1080;
inline constexpr double kPixelsPerSecond = kWidth * kHeight * kFps;

}  // namespace rpv::video
