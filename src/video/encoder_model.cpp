#include "video/encoder_model.hpp"

#include <algorithm>
#include <cmath>

namespace rpv::video {

void EncoderModel::set_target_bitrate(double bps) {
  target_bps_ = std::clamp(bps, cfg_.min_bitrate_bps * resolution_scale_,
                           cfg_.max_bitrate_bps);
}

void EncoderModel::set_resolution_scale(double scale) {
  resolution_scale_ = std::clamp(scale, 0.25, 1.0);
}

Frame EncoderModel::encode(std::uint32_t frame_id, sim::TimePoint capture,
                           double complexity, bool scene_cut) {
  Frame f;
  f.id = frame_id;
  f.capture_time = capture;
  f.complexity = complexity;
  f.encoded_bitrate_bps = target_bps_;

  const bool idr = scene_cut || frames_since_idr_ >= cfg_.gop_frames;
  f.keyframe = idr;
  frames_since_idr_ = idr ? 0 : frames_since_idr_ + 1;

  // Bits budget per frame. With one IDR of size k*P every G frames the
  // average stays on target when P = budget * G / (G - 1 + k).
  const double budget_bits = target_bps_ / kFps;
  const double g = static_cast<double>(cfg_.gop_frames);
  const double p_bits = budget_bits * g / (g - 1.0 + cfg_.keyframe_ratio);
  double bits = idr ? p_bits * cfg_.keyframe_ratio : p_bits;

  // Complexity scales the bits needed at constant quantizer; ABR rate
  // control claws back accumulated debt.
  bits *= complexity;
  bits -= rate_debt_bits_ * cfg_.rate_tracking_gain;
  bits *= rng_.lognormal(0.0, cfg_.size_jitter);
  bits = std::max(bits, budget_bits * 0.1);

  rate_debt_bits_ += bits - budget_bits;
  // Debt decays: x264 ABR forgets old overshoot.
  rate_debt_bits_ *= 0.995;

  f.size_bytes = static_cast<std::size_t>(bits / 8.0);

  const double lat_ms = cfg_.encode_latency_ms_mean +
                        std::abs(rng_.normal(0.0, cfg_.encode_latency_ms_jitter));
  last_latency_ = sim::Duration::seconds(lat_ms / 1e3);
  f.encode_time = capture + last_latency_;
  return f;
}

}  // namespace rpv::video
