#include "video/frame_source.hpp"

#include <algorithm>

namespace rpv::video {

double FrameSource::next_complexity() {
  shot_cut_ = rng_.chance(cfg_.shot_cut_probability);
  if (shot_cut_) {
    complexity_ = rng_.uniform(cfg_.min_complexity, cfg_.max_complexity);
  } else {
    // Mean-reverting random walk keeps complexity near the clip average.
    complexity_ += rng_.normal(0.0, cfg_.drift_stddev) +
                   0.01 * (cfg_.mean_complexity - complexity_);
    complexity_ = std::clamp(complexity_, cfg_.min_complexity, cfg_.max_complexity);
  }
  ++produced_;
  return complexity_;
}

}  // namespace rpv::video
