// x264-like real-time software encoder model (paper §3.2 uses VideoLAN x264
// in low-latency mode on the Intel NUCs).
//
// The model produces per-frame encoded sizes that track a target bitrate:
//  * GoP structure: an IDR keyframe every `gop_frames` (or on scene cut),
//    several times larger than P-frames;
//  * a rate-control debt loop so the realized bitrate converges on the
//    target even with complexity/jitter noise (x264's ABR behaviour);
//  * bounded per-frame encoding latency (software x264 zerolatency).
// Target bitrate changes apply to frames encoded *after* the change — the
// lag that, combined with the send queue, causes the paper's counter-
// intuitive FPS dips when a CC drops its rate sharply (§4.2.1).
#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "video/frame.hpp"

namespace rpv::video {

struct EncoderConfig {
  int gop_frames = 60;          // 2 s GoP at 30 FPS
  double keyframe_ratio = 2.5;  // IDR vs P-frame; low-latency VBV caps IDR size
  double size_jitter = 0.12;    // lognormal sigma of per-frame size noise
  double rate_tracking_gain = 0.08;  // debt correction per frame
  double min_bitrate_bps = 2e6;      // paper's encoding range: 2..25 Mbps
  double max_bitrate_bps = 25e6;
  double encode_latency_ms_mean = 8.0;
  double encode_latency_ms_jitter = 3.0;
};

class EncoderModel {
 public:
  EncoderModel(EncoderConfig cfg, sim::Rng rng) : cfg_{cfg}, rng_{rng} {}

  // Clamped to the configured [min, max] encoding range.
  void set_target_bitrate(double bps);
  [[nodiscard]] double target_bitrate() const { return target_bps_; }

  // PLI-style recovery request: the next encoded frame is an IDR.
  void force_keyframe() { frames_since_idr_ = 1 << 20; }

  // Graceful-degradation ladder: encoding at a reduced resolution lowers the
  // bitrate floor proportionally (fewer pixels need fewer bits).
  void set_resolution_scale(double scale);
  [[nodiscard]] double resolution_scale() const { return resolution_scale_; }

  // The lowest byte rate the encoder can emit at the current resolution —
  // decaying a CC below this only builds sender-side queue.
  [[nodiscard]] double min_output_bps() const {
    return cfg_.min_bitrate_bps * resolution_scale_;
  }

  // Encode one frame captured at `capture`, with the given complexity and
  // scene-cut flag. Returns the frame with size and encode timestamp set
  // relative to `capture` (capture + encoding latency).
  Frame encode(std::uint32_t frame_id, sim::TimePoint capture, double complexity,
               bool scene_cut);

  [[nodiscard]] sim::Duration last_encode_latency() const { return last_latency_; }

 private:
  EncoderConfig cfg_;
  sim::Rng rng_;
  double target_bps_ = 8e6;
  double resolution_scale_ = 1.0;
  double rate_debt_bits_ = 0.0;  // positive: we have been over budget
  int frames_since_idr_ = 1 << 20;  // force an IDR first
  sim::Duration last_latency_ = sim::Duration::zero();
};

}  // namespace rpv::video
