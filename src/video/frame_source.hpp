// Source video model: a 30 FPS pre-recorded clip "with considerable detail
// and motion" (paper §3.2). Instead of pixels we generate a per-frame scene
// complexity signal: smooth drift within shots plus occasional scene cuts.
// Complexity scales how many bits the encoder needs for a given quality.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace rpv::video {

struct FrameSourceConfig {
  double mean_complexity = 1.0;
  double drift_stddev = 0.02;        // per-frame random walk within a shot
  double shot_cut_probability = 0.004;  // ~one cut every ~8 s
  double min_complexity = 0.55;
  double max_complexity = 1.8;
};

class FrameSource {
 public:
  FrameSource(FrameSourceConfig cfg, sim::Rng rng)
      : cfg_{cfg}, rng_{rng}, complexity_{cfg.mean_complexity} {}

  // Complexity of the next frame; advances the internal state.
  double next_complexity();
  // True if the frame just produced started a new shot (forces a keyframe
  // in encoders configured with scene-cut detection).
  [[nodiscard]] bool at_shot_cut() const { return shot_cut_; }
  [[nodiscard]] std::uint32_t frames_produced() const { return produced_; }

 private:
  FrameSourceConfig cfg_;
  sim::Rng rng_;
  double complexity_;
  bool shot_cut_ = false;
  std::uint32_t produced_ = 0;
};

}  // namespace rpv::video
