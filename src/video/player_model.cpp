#include "video/player_model.hpp"

#include <algorithm>

namespace rpv::video {

PlayerModel::PlayerModel(sim::Simulator& simulator, PlayerConfig cfg)
    : sim_{simulator}, cfg_{cfg} {}

void PlayerModel::on_frame_ready(const Frame& f, double ssim) {
  if (played_any_ && f.id <= last_frame_id_) {
    // Arrived after a newer frame was already displayed — unplayable.
    ++frames_skipped_;
    return;
  }
  queue_.emplace(f.id, std::make_pair(f, ssim));
  try_play();
}

void PlayerModel::adapt_rate(bool starved) {
  const auto backlog = static_cast<int>(queue_.size());
  if (starved) {
    // The display had to wait for data: proactively slow down so the next
    // shortfall does not freeze the picture (GStreamer's behaviour, §A.4).
    rate_ = std::max(cfg_.min_rate, rate_ * cfg_.rate_step_down);
  } else if (backlog > cfg_.high_watermark_frames) {
    // Backlog built up (elevated playback latency): play faster to catch up.
    rate_ = std::min(cfg_.max_rate, rate_ * cfg_.rate_step_up);
  } else if (rate_ < 1.0) {
    rate_ = std::min(1.0, rate_ / cfg_.rate_step_down);
  } else if (rate_ > 1.0) {
    rate_ = std::max(1.0, rate_ / cfg_.rate_step_up);
  }
}

void PlayerModel::try_play() {
  if (queue_.empty()) return;
  const auto now = sim_.now();
  if (now < next_play_at_) {
    if (!wakeup_scheduled_) {
      wakeup_scheduled_ = true;
      sim_.schedule_at(next_play_at_, [this] {
        wakeup_scheduled_ = false;
        try_play();
      });
    }
    return;
  }

  // Starvation: we were ready to display strictly earlier but had no frame.
  const bool starved =
      played_any_ && now > next_play_at_ + sim::Duration::millis(5);

  auto it = queue_.begin();
  const Frame f = it->second.first;
  const double ssim = it->second.second;
  queue_.erase(it);

  // Display the frame now.
  if (played_any_) {
    const auto gap = now - last_play_time_;
    if (gap > cfg_.stall_threshold) {
      ++stall_count_;
      stall_times_.push_back(now);
      stall_durations_ms_.push_back(gap.ms());
      if (stall_hook_) stall_hook_(now, gap.ms());
    }
  }
  last_play_time_ = now;
  if (!played_any_) first_play_time_ = now;
  played_any_ = true;
  last_frame_id_ = f.id;
  ++frames_played_;
  play_times_.push_back(now);
  playback_latency_ms_.add(now, (now - f.capture_time).ms());
  played_ssim_.push_back(ssim);

  adapt_rate(starved);
  next_play_at_ = now + cfg_.nominal_interval * (1.0 / rate_);
  try_play();
}

double PlayerModel::stalls_per_minute() const {
  if (!played_any_ || last_play_time_ <= first_play_time_) return 0.0;
  const double minutes = (last_play_time_ - first_play_time_).sec() / 60.0;
  return minutes > 0.0 ? static_cast<double>(stall_count_) / minutes : 0.0;
}

void PlayerModel::finish() {
  fps_windows_.clear();
  if (play_times_.empty()) return;
  const auto start = play_times_.front();
  const auto end = play_times_.back();
  const auto window = sim::Duration::seconds(1.0);
  std::size_t idx = 0;
  for (auto t = start; t < end; t += window) {
    int count = 0;
    while (idx < play_times_.size() && play_times_[idx] < t + window) {
      ++count;
      ++idx;
    }
    fps_windows_.push_back(static_cast<double>(count));
  }
}

}  // namespace rpv::video
