#include "video/ssim_model.hpp"

#include <algorithm>
#include <cmath>

namespace rpv::video {

double SsimModel::clean_ssim(double bitrate_bps, double complexity) const {
  const double bpp = bitrate_bps / kPixelsPerSecond;
  const double c = std::max(complexity, 0.1);
  const double s = cfg_.ceiling - cfg_.span * std::exp(-cfg_.steepness * bpp / c);
  return std::clamp(s, 0.0, 1.0);
}

double SsimModel::score_frame(const Frame& f, bool corrupted) {
  if (f.keyframe) damage_ = 0.0;  // IDR fully refreshes the picture
  if (corrupted) {
    damage_ = std::min(1.0, damage_ + cfg_.corrupt_penalty);
  } else {
    damage_ *= (1.0 - cfg_.recovery_per_frame);
  }
  double s = clean_ssim(f.encoded_bitrate_bps, f.complexity);
  s *= (1.0 - damage_);
  s += rng_.normal(0.0, cfg_.measurement_noise);
  return std::clamp(s, 0.0, 1.0);
}

}  // namespace rpv::video
