// Structural SIMilarity model.
//
// The paper computes SSIM by comparing received frames against the source in
// post-processing; frames that were never played score 0 and the RP quality
// threshold is 0.5. We model SSIM as a saturating function of bits-per-pixel
// (the dominant effect of the encoder's rate target, §4.2.3), degraded by
// packet-loss artifacts that propagate through the GoP until the next IDR —
// which is exactly how H.264 error concealment behaves visually.
#pragma once

#include "sim/rng.hpp"
#include "video/frame.hpp"

namespace rpv::video {

struct SsimConfig {
  // ssim(bpp) = ceiling - span * exp(-steepness * bpp / complexity).
  double ceiling = 0.985;
  double span = 0.32;
  double steepness = 9.0;
  double measurement_noise = 0.008;
  // Artifact from a loss-corrupted frame, and how much of the damage each
  // subsequent P-frame repairs (intra refresh / concealment).
  double corrupt_penalty = 0.75;     // fraction of SSIM lost on the hit frame
  double recovery_per_frame = 0.20;  // exponential healing toward clean
};

class SsimModel {
 public:
  SsimModel(SsimConfig cfg, sim::Rng rng) : cfg_{cfg}, rng_{rng} {}

  // Clean (loss-free) SSIM from encode parameters only.
  [[nodiscard]] double clean_ssim(double bitrate_bps, double complexity) const;

  // Score one decoded frame. `corrupted` marks a frame whose packets were
  // partially lost this frame; keyframes reset propagated damage.
  double score_frame(const Frame& f, bool corrupted);

  // The RP quality threshold the paper applies.
  static constexpr double kThreshold = 0.5;

 private:
  SsimConfig cfg_;
  sim::Rng rng_;
  double damage_ = 0.0;  // residual artifact level in (0,1)
};

}  // namespace rpv::video
