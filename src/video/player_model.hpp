// Video player model (the GStreamer playback half of the paper's pipeline).
//
// Frames decoded out of the jitter buffer are queued for display. The player
// paces playback at the nominal 30 FPS interval but — like GStreamer's sink
// behaviour the paper describes in §A.4 — proactively *slows down* when its
// queue runs low to avoid a hard freeze, and speeds up when a backlog allows
// it to claw back elevated playback latency. Metrics follow the paper's
// definitions: playback latency (encode start -> display), FPS in one-second
// windows, and stalls (inter-frame display gap > 300 ms).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "metrics/time_series.hpp"
#include "sim/simulator.hpp"
#include "video/frame.hpp"

namespace rpv::video {

struct PlayerConfig {
  sim::Duration nominal_interval = sim::Duration::micros(33333);
  int low_watermark_frames = 1;   // slow down below this backlog
  int high_watermark_frames = 1;  // speed up above this backlog
  double min_rate = 0.55;         // slowest playback factor
  double max_rate = 1.25;         // catch-up factor
  double rate_step_down = 0.90;   // applied per played frame while starving
  double rate_step_up = 1.05;     // applied per played frame while flush
  sim::Duration stall_threshold = sim::Duration::millis(300);  // RP requirement
};

class PlayerModel {
 public:
  PlayerModel(sim::Simulator& simulator, PlayerConfig cfg);

  // A fully decoded frame is ready for display; `ssim` was scored at decode.
  void on_frame_ready(const Frame& f, double ssim);

  // Finalize windowed statistics (call once after the simulation drains).
  void finish();

  // Invoked when a frozen gap ends, with (end time, gap length in ms). The
  // video layer stays observability-agnostic; VideoReceiver relays this into
  // the obs event stream.
  using StallFn = std::function<void(sim::TimePoint, double)>;
  void set_stall_hook(StallFn fn) { stall_hook_ = std::move(fn); }

  // --- Metrics (valid after finish(), traces valid anytime) ---
  [[nodiscard]] const metrics::TimeSeries& playback_latency_ms() const {
    return playback_latency_ms_;
  }
  [[nodiscard]] const std::vector<double>& played_ssim() const { return played_ssim_; }
  [[nodiscard]] const std::vector<double>& fps_windows() const { return fps_windows_; }
  [[nodiscard]] std::uint32_t frames_played() const { return frames_played_; }
  [[nodiscard]] std::uint32_t frames_skipped() const { return frames_skipped_; }
  [[nodiscard]] std::uint32_t stall_count() const { return stall_count_; }
  [[nodiscard]] const std::vector<sim::TimePoint>& stall_times() const {
    return stall_times_;
  }
  // Length of each frozen gap, in ms (parallel to stall_times()).
  [[nodiscard]] const std::vector<double>& stall_durations_ms() const {
    return stall_durations_ms_;
  }
  [[nodiscard]] double stalls_per_minute() const;
  [[nodiscard]] std::uint32_t last_played_frame_id() const { return last_frame_id_; }

 private:
  void try_play();
  void adapt_rate(bool starved);

  sim::Simulator& sim_;
  PlayerConfig cfg_;
  StallFn stall_hook_;
  std::map<std::uint32_t, std::pair<Frame, double>> queue_;  // by frame id
  double rate_ = 1.0;
  sim::TimePoint next_play_at_ = sim::TimePoint::origin();
  sim::TimePoint last_play_time_ = sim::TimePoint::never();
  sim::TimePoint first_play_time_ = sim::TimePoint::never();
  std::uint32_t last_frame_id_ = 0;
  bool played_any_ = false;
  bool wakeup_scheduled_ = false;

  metrics::TimeSeries playback_latency_ms_;
  std::vector<double> played_ssim_;
  std::vector<sim::TimePoint> play_times_;
  std::vector<double> fps_windows_;
  std::uint32_t frames_played_ = 0;
  std::uint32_t frames_skipped_ = 0;
  std::uint32_t stall_count_ = 0;
  std::vector<sim::TimePoint> stall_times_;  // when each frozen gap ended
  std::vector<double> stall_durations_ms_;   // how long each gap lasted
};

}  // namespace rpv::video
