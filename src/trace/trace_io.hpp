// Trace export/import.
//
// The paper releases its collected traces plus parsing scripts; this module
// is the equivalent for the simulator: every SessionReport can be dumped as
// a set of CSV files (one per signal, same shapes an analysis notebook would
// consume) and time series can be loaded back for offline processing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "metrics/time_series.hpp"
#include "pipeline/report.hpp"

namespace rpv::trace {

// Write one "t_sec,value" CSV. Returns false on I/O failure.
bool write_time_series_csv(const std::string& path,
                           const metrics::TimeSeries& series,
                           const std::string& value_name);

// Write a plain vector as "index,value".
bool write_samples_csv(const std::string& path, const std::vector<double>& samples,
                       const std::string& value_name);

// Load a "t_sec,value" CSV written by write_time_series_csv.
std::optional<metrics::TimeSeries> load_time_series_csv(const std::string& path);

// Dump every signal of a session report into `dir` with the given prefix:
//   <prefix>_owd.csv, <prefix>_playback_latency.csv, <prefix>_target_bitrate.csv,
//   <prefix>_capacity.csv, <prefix>_goodput.csv, <prefix>_fps.csv,
//   <prefix>_ssim.csv, <prefix>_handovers.csv, <prefix>_summary.csv
// Returns the list of files written (empty on failure).
std::vector<std::string> export_session(const pipeline::SessionReport& report,
                                        const std::string& dir,
                                        const std::string& prefix);

}  // namespace rpv::trace
