#include "trace/trace_io.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace rpv::trace {
namespace {

bool write_lines(const std::string& path, const std::string& header,
                 const std::vector<std::string>& lines) {
  std::ofstream out{path};
  if (!out) return false;
  out << header << "\n";
  for (const auto& l : lines) out << l << "\n";
  return static_cast<bool>(out);
}

std::string row(double a, double b) {
  std::ostringstream os;
  os << a << "," << b;
  return os.str();
}

}  // namespace

bool write_time_series_csv(const std::string& path,
                           const metrics::TimeSeries& series,
                           const std::string& value_name) {
  std::vector<std::string> lines;
  lines.reserve(series.count());
  for (const auto& s : series.samples()) lines.push_back(row(s.t.sec(), s.value));
  return write_lines(path, "t_sec," + value_name, lines);
}

bool write_samples_csv(const std::string& path, const std::vector<double>& samples,
                       const std::string& value_name) {
  std::vector<std::string> lines;
  lines.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    lines.push_back(row(static_cast<double>(i), samples[i]));
  }
  return write_lines(path, "index," + value_name, lines);
}

std::optional<metrics::TimeSeries> load_time_series_csv(const std::string& path) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;  // header
  metrics::TimeSeries out;
  while (std::getline(in, line)) {
    const auto comma = line.find(',');
    if (comma == std::string::npos) return std::nullopt;
    try {
      const double t = std::stod(line.substr(0, comma));
      const double v = std::stod(line.substr(comma + 1));
      out.add(sim::TimePoint::origin() + sim::Duration::seconds(t), v);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return out;
}

std::vector<std::string> export_session(const pipeline::SessionReport& report,
                                        const std::string& dir,
                                        const std::string& prefix) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  std::vector<std::string> written;
  auto path = [&](const std::string& name) { return dir + "/" + prefix + "_" + name; };
  auto note = [&](const std::string& p, bool ok) {
    if (ok) written.push_back(p);
  };

  note(path("owd.csv"),
       write_time_series_csv(path("owd.csv"), report.owd_trace_ms, "owd_ms"));
  note(path("playback_latency.csv"),
       write_time_series_csv(path("playback_latency.csv"),
                             report.playback_latency_trace_ms, "latency_ms"));
  note(path("target_bitrate.csv"),
       write_time_series_csv(path("target_bitrate.csv"),
                             report.target_bitrate_trace_bps, "bitrate_bps"));
  note(path("capacity.csv"),
       write_time_series_csv(path("capacity.csv"), report.capacity_trace_mbps,
                             "capacity_mbps"));
  note(path("goodput.csv"),
       write_samples_csv(path("goodput.csv"), report.goodput_mbps_windows,
                         "goodput_mbps"));
  note(path("fps.csv"),
       write_samples_csv(path("fps.csv"), report.fps_windows, "fps"));
  note(path("ssim.csv"),
       write_samples_csv(path("ssim.csv"), report.ssim_samples, "ssim"));

  {
    std::vector<std::string> lines;
    for (const auto& e : report.handovers.events()) {
      std::ostringstream os;
      os << e.start.sec() << "," << e.het.ms() << "," << e.source_cell << ","
         << e.target_cell << "," << (e.ping_pong ? 1 : 0);
      lines.push_back(os.str());
    }
    note(path("handovers.csv"),
         write_lines(path("handovers.csv"),
                     "t_sec,het_ms,source_cell,target_cell,ping_pong", lines));
  }
  {
    std::ostringstream os;
    os << report.cc_name << "," << report.environment << ","
       << report.duration.sec() << "," << report.avg_goodput_mbps << ","
       << report.frames_encoded << "," << report.frames_played << ","
       << report.stall_count << "," << report.per << ","
       << report.ho_frequency_per_s << "," << report.cells_seen;
    note(path("summary.csv"),
         write_lines(path("summary.csv"),
                     "cc,environment,duration_s,avg_goodput_mbps,frames_encoded,"
                     "frames_played,stalls,per,ho_per_s,cells_seen",
                     {os.str()}));
  }
  return written;
}

}  // namespace rpv::trace
