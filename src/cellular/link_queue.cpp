#include "cellular/link_queue.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace rpv::cellular {

LinkQueue::LinkQueue(sim::Simulator& simulator, LinkQueueConfig cfg, RateFn rate,
                     DeliverFn deliver, DropFn on_drop)
    : sim_{simulator},
      cfg_{cfg},
      rate_{std::move(rate)},
      deliver_{std::move(deliver)},
      on_drop_{std::move(on_drop)} {}

void LinkQueue::enqueue(net::Packet p, DoneFn done) {
  if (queued_bytes_ + p.size_bytes > cfg_.buffer_bytes) {
    ++drops_;
    if (bus_ && bus_->wants(obs::EventKind::kQueueDrop)) {
      bus_->publish(obs::Component::kLinkQueue, obs::EventKind::kQueueDrop,
                    sim_.now(),
                    obs::QueuePayload{p.id,
                                      static_cast<std::uint32_t>(p.size_bytes),
                                      static_cast<std::uint64_t>(queued_bytes_),
                                      static_cast<std::uint32_t>(count_),
                                      /*reason=*/0});
    }
    if (on_drop_) on_drop_(p);
    return;
  }
  queued_bytes_ += p.size_bytes;
  const std::uint32_t idx =
      pool_.acquire(Item{std::move(p), std::move(done), kNil});
  if (tail_ == kNil) {
    head_ = idx;
  } else {
    pool_[tail_].next = idx;
  }
  tail_ = idx;
  ++count_;
  if (bus_ && bus_->wants(obs::EventKind::kQueueEnqueue)) {
    const net::Packet& q = pool_[idx].p;
    bus_->publish(obs::Component::kLinkQueue, obs::EventKind::kQueueEnqueue,
                  sim_.now(),
                  obs::QueuePayload{q.id,
                                    static_cast<std::uint32_t>(q.size_bytes),
                                    static_cast<std::uint64_t>(queued_bytes_),
                                    static_cast<std::uint32_t>(count_),
                                    /*reason=*/0});
  }
  maybe_start_service();
}

void LinkQueue::pause() {
  // Counted: overlapping interruptions (handover plus an injected RLF) each
  // pair their own pause/resume, and the queue only restarts when the last
  // one ends.
  ++pause_depth_;
  if (paused_) return;
  paused_ = true;
  if (busy_) {
    // Abort the in-flight serialization; the head is re-serialized in full
    // on resume (the radio bearer is torn down mid-transfer during a HO).
    service_timer_.cancel();
    busy_ = false;
  }
}

void LinkQueue::resume() {
  if (!paused_) return;
  if (pause_depth_ > 0 && --pause_depth_ > 0) return;
  paused_ = false;
  maybe_start_service();
}

double LinkQueue::queuing_delay_sec() const {
  const double rate = std::max(rate_(), 1.0);
  return static_cast<double>(queued_bytes_) * 8.0 / rate;
}

void LinkQueue::maybe_start_service() {
  if (busy_ || paused_ || count_ == 0) return;
  busy_ = true;
  const net::Packet& head = pool_[head_].p;
  const double rate = std::max(rate_(), 1e3);  // never fully zero outside pause
  const auto tx_time =
      sim::Duration::seconds(static_cast<double>(head.size_bytes) * 8.0 / rate);
  service_timer_ = sim_.schedule_timer_in(tx_time, [this] { finish_head(); });
}

void LinkQueue::finish_head() {
  busy_ = false;
  if (count_ == 0) return;  // defensive
  Item& item = pool_[head_];
  net::Packet p = std::move(item.p);
  DoneFn done = std::move(item.done);
  const std::uint32_t old_head = head_;
  head_ = item.next;
  if (head_ == kNil) tail_ = kNil;
  pool_.release(old_head);
  --count_;
  queued_bytes_ -= p.size_bytes;
  p.sent = sim_.now();

  if (cfg_.aqm_enabled && aqm_should_drop(p)) {
    ++aqm_drops_;
    if (bus_ && bus_->wants(obs::EventKind::kQueueDrop)) {
      bus_->publish(obs::Component::kLinkQueue, obs::EventKind::kQueueDrop,
                    sim_.now(),
                    obs::QueuePayload{p.id,
                                      static_cast<std::uint32_t>(p.size_bytes),
                                      static_cast<std::uint64_t>(queued_bytes_),
                                      static_cast<std::uint32_t>(count_),
                                      /*reason=*/1});
    }
    if (on_drop_) on_drop_(p);
  } else {
    deliver_(std::move(p), std::move(done));
  }
  maybe_start_service();
}

bool LinkQueue::aqm_should_drop(const net::Packet& p) {
  // Simplified CoDel: track how long the sojourn time has continuously
  // exceeded the target; once above for a full interval, drop at dequeue
  // with an interval that shrinks as sqrt(drop count) while above.
  const auto now = sim_.now();
  const auto sojourn = now - p.enqueued;
  if (sojourn < cfg_.aqm_target) {
    first_above_ = sim::TimePoint::never();
    next_aqm_drop_ = sim::TimePoint::never();
    aqm_drop_count_ = 0;
    return false;
  }
  if (first_above_.is_never()) {
    first_above_ = now;
    return false;
  }
  if (now - first_above_ < cfg_.aqm_interval) return false;
  if (next_aqm_drop_.is_never() || now >= next_aqm_drop_) {
    ++aqm_drop_count_;
    // Linear interval shrink (harsher than classic CoDel's sqrt law): the
    // video sender may be unresponsive (static bitrate), so the drop rate
    // must be able to outgrow the queue input rate.
    next_aqm_drop_ =
        now + cfg_.aqm_interval * (1.0 / static_cast<double>(aqm_drop_count_));
    return true;
  }
  return false;
}

}  // namespace rpv::cellular
