// Cell-load interface between a UE's link and whatever owns the deployment.
//
// An LTE/5G cell schedules its physical resource blocks across every
// attached active UE, so the goodput ceiling the paper measures (§4.1:
// ~40 Mbps urban, ~10 Mbps rural) is a *cell* budget, not a per-UAV
// guarantee. A CellularLink consults its CellLoadProvider — when one is
// attached — for the PRB share its serving cell currently grants it;
// rpv::fleet's SharedDeployment implements the provider over the frozen
// per-epoch load table so shared-cell contention stays deterministic.
//
// No provider attached (every single-UAV session today) means a full share
// of 1.0, which reproduces the unloaded model bit-for-bit.
#pragma once

#include <cstdint>

namespace rpv::cellular {

class CellLoadProvider {
 public:
  virtual ~CellLoadProvider() = default;

  // Fraction of the cell's PRBs granted to one UE, in (0, 1]. Must be safe
  // to call from the link's event loop at any time; implementations backing
  // several concurrent sessions return values frozen for the current epoch.
  [[nodiscard]] virtual double prb_share(std::uint32_t cell_id) const = 0;
};

}  // namespace rpv::cellular
