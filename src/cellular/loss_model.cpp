#include "cellular/loss_model.hpp"

#include <cmath>

namespace rpv::cellular {

bool LossModel::drops_packet(double altitude_m, double queue_fill) {
  ++seen_;
  if (bad_) {
    if (rng_.chance(cfg_.p_bad_to_good)) bad_ = false;
  } else {
    double p = cfg_.p_good_to_bad;
    if (cfg_.altitude_boost > 0.0 && altitude_m > 0.0) {
      const double f = 1.0 - std::exp(-altitude_m / cfg_.boost_altitude_m);
      p *= 1.0 + cfg_.altitude_boost * f;
    }
    if (cfg_.stress_boost > 0.0 && queue_fill > 0.0) {
      p *= 1.0 + cfg_.stress_boost * queue_fill;
    }
    if (rng_.chance(p)) bad_ = true;
  }
  const double p = bad_ ? cfg_.loss_bad : cfg_.loss_good;
  const bool lost = rng_.chance(p);
  if (lost) ++lost_;
  return lost;
}

}  // namespace rpv::cellular
