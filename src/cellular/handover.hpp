// LTE handover machinery: A3-event triggering with hysteresis and
// time-to-trigger, handover execution time (HET) sampling, and ping-pong
// detection.
//
// The paper derives HET from RRC messages: the span between receiving
// RRCConnectionReconfiguration from the source cell and sending
// RRCConnectionReconfigurationComplete at the target (3GPP calls < 49.5 ms a
// successful HO). In the air the paper observes an order of magnitude more
// HOs and a heavy HET tail reaching 4 s; the HetModel reproduces both the
// compliant bulk and the altitude-weighted outlier tail.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "cellular/radio_model.hpp"
#include "metrics/handover_log.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace rpv::cellular {

struct HetConfig {
  // Compliant bulk: lognormal with median ~22 ms, mostly below 49.5 ms.
  double bulk_median_ms = 22.0;
  double bulk_sigma = 0.45;
  // Outlier mixture: probability and lognormal body of the long tail.
  double outlier_prob_ground = 0.03;
  double outlier_prob_air = 0.16;
  double outlier_median_ms = 250.0;
  double outlier_sigma = 1.1;
  double max_het_ms = 4000.0;  // paper: air outliers range up to 4 s

  // Radio link failure (injected, not A3-triggered): the UE rides out T310
  // before declaring RLF, then re-selects a cell and performs RRC connection
  // re-establishment. The re-establishment body is lognormal; the total
  // outage is still bounded by max_het_ms.
  double rlf_t310_ms = 1000.0;  // 3GPP default T310
  double rlf_reestablish_median_ms = 200.0;
  double rlf_reestablish_sigma = 0.8;
};

class HetModel {
 public:
  HetModel(HetConfig cfg, sim::Rng rng) : cfg_{cfg}, rng_{rng} {}

  // `airborne_fraction` in [0,1]: how "in the air" the UE is (scales the
  // outlier probability between the ground and air rates).
  sim::Duration sample(double airborne_fraction);

  // Total RLF outage: T310 expiry plus re-establishment, altitude-weighted
  // like the HET outlier tail and clamped to max_het_ms.
  sim::Duration sample_rlf(double airborne_fraction);

 private:
  HetConfig cfg_;
  sim::Rng rng_;
};

struct HandoverConfig {
  double hysteresis_db = 3.0;
  sim::Duration time_to_trigger = sim::Duration::millis(280);
  sim::Duration measurement_interval = sim::Duration::millis(100);
  // Capacity multiplier applied while the A3 condition is pending — the UE is
  // at the cell edge on degraded MCS, producing the pre-HO latency spike the
  // paper measures (~0.5 s before each HO, Fig. 8/9).
  double edge_capacity_factor = 0.55;
  // Returning to the previous cell within this window counts as ping-pong.
  sim::Duration ping_pong_window = sim::Duration::seconds(5.0);
  // Dual Active Protocol Stack (3GPP R16 DAPS, paper Section 5): make-
  // before-break handover keeps the source link until the target is up, so
  // the bearer is never interrupted (HET is still recorded for statistics).
  bool make_before_break = false;
};

class HandoverController {
 public:
  HandoverController(HandoverConfig cfg, HetModel het,
                     std::uint32_t initial_cell);

  // Feed one measurement snapshot (RSRP-sorted) at time `now` with the UE at
  // `airborne_fraction`. Returns the HET if this tick triggered a handover.
  std::optional<sim::Duration> on_measurement(
      sim::TimePoint now, const std::vector<CellMeasurement>& measurements,
      double airborne_fraction);

  // Injected radio link failure: immediately interrupts the bearer for the
  // sampled T310 + re-establishment time and re-selects `reselect_cell`
  // (which may be the serving cell). Recorded in the handover log like a
  // handover — the paper derives both from the same RRC capture.
  sim::Duration trigger_rlf(sim::TimePoint now, double airborne_fraction,
                            std::uint32_t reselect_cell);

  [[nodiscard]] std::uint32_t serving_cell() const { return serving_; }
  // True while a handover is executing: the radio link is interrupted.
  [[nodiscard]] bool in_handover(sim::TimePoint now) const {
    return now < ho_end_;
  }
  [[nodiscard]] sim::TimePoint handover_end() const { return ho_end_; }
  // 1.0 normally, edge_capacity_factor while an A3 timer is running.
  [[nodiscard]] double capacity_factor(sim::TimePoint now) const;

  [[nodiscard]] const metrics::HandoverLog& log() const { return log_; }

 private:
  HandoverConfig cfg_;
  HetModel het_;
  std::uint32_t serving_;
  std::uint32_t a3_candidate_ = 0;
  sim::TimePoint a3_since_ = sim::TimePoint::never();
  sim::TimePoint ho_end_ = sim::TimePoint::origin();
  std::uint32_t previous_cell_ = 0;
  sim::TimePoint previous_left_at_ = sim::TimePoint::never();
  metrics::HandoverLog log_;
};

}  // namespace rpv::cellular
