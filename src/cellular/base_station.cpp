#include "cellular/base_station.hpp"

namespace rpv::cellular {
namespace {

// Place `n` cells on a jittered grid covering [x0,x1]x[y0,y1].
std::vector<BaseStation> jittered_grid(sim::Rng& rng, int n, double x0, double x1,
                                       double y0, double y1, double jitter,
                                       double mast_height) {
  std::vector<BaseStation> cells;
  cells.reserve(static_cast<std::size_t>(n));
  // Near-square grid with enough sites for n cells.
  int cols = 1;
  while (cols * cols < n) ++cols;
  const int rows = (n + cols - 1) / cols;
  int id = 1;
  for (int r = 0; r < rows && id <= n; ++r) {
    for (int c = 0; c < cols && id <= n; ++c) {
      const double fx = cols > 1 ? static_cast<double>(c) / (cols - 1) : 0.5;
      const double fy = rows > 1 ? static_cast<double>(r) / (rows - 1) : 0.5;
      BaseStation bs;
      bs.cell_id = static_cast<std::uint32_t>(id++);
      bs.pos = {x0 + fx * (x1 - x0) + rng.uniform(-jitter, jitter),
                y0 + fy * (y1 - y0) + rng.uniform(-jitter, jitter),
                mast_height + rng.uniform(-5.0, 10.0)};
      cells.push_back(bs);
    }
  }
  return cells;
}

}  // namespace

CellLayout make_urban_layout(sim::Rng& rng) {
  CellLayout layout;
  layout.name = "urban";
  // 32 cells covering the campus flight area plus surroundings; rooftop
  // masts ~30 m, strong downtilt for dense street-level coverage.
  layout.cells = jittered_grid(rng, 32, -700.0, 700.0, -700.0, 700.0, 60.0, 30.0);
  for (auto& bs : layout.cells) {
    bs.downtilt_deg = 8.0;
    bs.tx_power_dbm = 43.0;  // smaller urban cells transmit less
  }
  return layout;
}

CellLayout make_rural_layout_p1(sim::Rng& rng) {
  CellLayout layout;
  layout.name = "rural-p1";
  // 18 cells spread over a wide open area; tall masts, gentle downtilt,
  // higher power for range. Inter-site distance ~2 km.
  layout.cells = jittered_grid(rng, 18, -4000.0, 4000.0, -4000.0, 4000.0, 400.0, 45.0);
  for (auto& bs : layout.cells) {
    bs.downtilt_deg = 4.0;
    bs.tx_power_dbm = 46.0;
  }
  return layout;
}

CellLayout make_rural_layout_p2(sim::Rng& rng) {
  CellLayout layout;
  layout.name = "rural-p2";
  // Competing operator with a denser rural deployment (~30 cells in the
  // same region), which yields both more capacity and more handovers.
  layout.cells = jittered_grid(rng, 30, -4000.0, 4000.0, -4000.0, 4000.0, 350.0, 45.0);
  for (auto& bs : layout.cells) {
    bs.cell_id += 100;  // distinct id space from P1
    bs.downtilt_deg = 4.0;
    bs.tx_power_dbm = 46.0;
  }
  return layout;
}

}  // namespace rpv::cellular
