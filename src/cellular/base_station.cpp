#include "cellular/base_station.hpp"

#include "sim/validate.hpp"

namespace rpv::cellular {

GridLayoutSpec urban_grid_spec() {
  // 32 cells covering the campus flight area plus surroundings; rooftop
  // masts ~30 m, strong downtilt for dense street-level coverage, smaller
  // urban cells transmit less.
  GridLayoutSpec spec;
  spec.name = "urban";
  spec.cells = 32;
  spec.x0 = -700.0; spec.x1 = 700.0;
  spec.y0 = -700.0; spec.y1 = 700.0;
  spec.jitter_m = 60.0;
  spec.mast_height_m = 30.0;
  spec.downtilt_deg = 8.0;
  spec.tx_power_dbm = 43.0;
  return spec;
}

GridLayoutSpec rural_p1_grid_spec() {
  // 18 cells spread over a wide open area; tall masts, gentle downtilt,
  // higher power for range. Inter-site distance ~2 km.
  GridLayoutSpec spec;
  spec.name = "rural-p1";
  spec.cells = 18;
  spec.x0 = -4000.0; spec.x1 = 4000.0;
  spec.y0 = -4000.0; spec.y1 = 4000.0;
  spec.jitter_m = 400.0;
  spec.mast_height_m = 45.0;
  spec.downtilt_deg = 4.0;
  spec.tx_power_dbm = 46.0;
  return spec;
}

GridLayoutSpec rural_p2_grid_spec() {
  // Competing operator with a denser rural deployment (~30 cells in the
  // same region), which yields both more capacity and more handovers. Its
  // cell ids live 100 above P1's so bonded sessions never alias.
  GridLayoutSpec spec;
  spec.name = "rural-p2";
  spec.cells = 30;
  spec.x0 = -4000.0; spec.x1 = 4000.0;
  spec.y0 = -4000.0; spec.y1 = 4000.0;
  spec.jitter_m = 350.0;
  spec.mast_height_m = 45.0;
  spec.downtilt_deg = 4.0;
  spec.tx_power_dbm = 46.0;
  spec.first_cell_id = 101;
  return spec;
}

CellLayout make_grid_layout(sim::Rng& rng, const GridLayoutSpec& spec) {
  rpv::validate(spec.cells > 0, "GridLayoutSpec: cells must be positive");
  CellLayout layout;
  layout.name = spec.name;
  layout.cells.reserve(static_cast<std::size_t>(spec.cells));
  // Near-square grid with enough sites for the requested cell count.
  const int n = spec.cells;
  int cols = 1;
  while (cols * cols < n) ++cols;
  const int rows = (n + cols - 1) / cols;
  int placed = 0;
  for (int r = 0; r < rows && placed < n; ++r) {
    for (int c = 0; c < cols && placed < n; ++c) {
      const double fx = cols > 1 ? static_cast<double>(c) / (cols - 1) : 0.5;
      const double fy = rows > 1 ? static_cast<double>(r) / (rows - 1) : 0.5;
      BaseStation bs;
      bs.cell_id = spec.first_cell_id + static_cast<std::uint32_t>(placed++);
      bs.pos = {spec.x0 + fx * (spec.x1 - spec.x0) +
                    rng.uniform(-spec.jitter_m, spec.jitter_m),
                spec.y0 + fy * (spec.y1 - spec.y0) +
                    rng.uniform(-spec.jitter_m, spec.jitter_m),
                spec.mast_height_m + rng.uniform(-5.0, 10.0)};
      bs.downtilt_deg = spec.downtilt_deg;
      bs.tx_power_dbm = spec.tx_power_dbm;
      layout.cells.push_back(bs);
    }
  }
  return layout;
}

CellLayout make_urban_layout(sim::Rng& rng) {
  return make_grid_layout(rng, urban_grid_spec());
}

CellLayout make_rural_layout_p1(sim::Rng& rng) {
  return make_grid_layout(rng, rural_p1_grid_spec());
}

CellLayout make_rural_layout_p2(sim::Rng& rng) {
  return make_grid_layout(rng, rural_p2_grid_spec());
}

}  // namespace rpv::cellular
