#include "cellular/handover.hpp"

#include <algorithm>
#include <cmath>

namespace rpv::cellular {

sim::Duration HetModel::sample(double airborne_fraction) {
  airborne_fraction = std::clamp(airborne_fraction, 0.0, 1.0);
  const double p_outlier =
      cfg_.outlier_prob_ground +
      (cfg_.outlier_prob_air - cfg_.outlier_prob_ground) * airborne_fraction;
  double ms = 0.0;
  if (rng_.chance(p_outlier)) {
    ms = rng_.lognormal(std::log(cfg_.outlier_median_ms), cfg_.outlier_sigma);
  } else {
    ms = rng_.lognormal(std::log(cfg_.bulk_median_ms), cfg_.bulk_sigma);
  }
  ms = std::min(ms, cfg_.max_het_ms);
  return sim::Duration::seconds(ms / 1e3);
}

sim::Duration HetModel::sample_rlf(double airborne_fraction) {
  airborne_fraction = std::clamp(airborne_fraction, 0.0, 1.0);
  // Airborne UEs re-establish against farther, weaker cells: scale the
  // re-establishment median up with altitude like the outlier tail.
  const double median =
      cfg_.rlf_reestablish_median_ms * (1.0 + 2.0 * airborne_fraction);
  double ms = cfg_.rlf_t310_ms +
              rng_.lognormal(std::log(median), cfg_.rlf_reestablish_sigma);
  // max_het_ms bounds the RLF path too: the paper's observed outage ceiling
  // applies to any bearer interruption, not just A3 handovers.
  ms = std::min(ms, cfg_.max_het_ms);
  return sim::Duration::seconds(ms / 1e3);
}

HandoverController::HandoverController(HandoverConfig cfg, HetModel het,
                                       std::uint32_t initial_cell)
    : cfg_{cfg}, het_{std::move(het)}, serving_{initial_cell} {}

double HandoverController::capacity_factor(sim::TimePoint now) const {
  if (in_handover(now)) return 0.0;  // link interrupted during execution
  if (!a3_since_.is_never()) return cfg_.edge_capacity_factor;
  return 1.0;
}

sim::Duration HandoverController::trigger_rlf(sim::TimePoint now,
                                              double airborne_fraction,
                                              std::uint32_t reselect_cell) {
  const sim::Duration outage = het_.sample_rlf(airborne_fraction);
  metrics::HandoverEvent ev;
  ev.start = now;
  ev.het = outage;
  ev.source_cell = serving_;
  ev.target_cell = reselect_cell;
  ev.ping_pong = false;
  log_.record(ev);

  previous_cell_ = serving_;
  previous_left_at_ = now;
  serving_ = reselect_cell;
  // An RLF mid-handover extends the interruption rather than shortening it.
  ho_end_ = std::max(ho_end_, now + outage);
  a3_candidate_ = 0;
  a3_since_ = sim::TimePoint::never();
  return outage;
}

std::optional<sim::Duration> HandoverController::on_measurement(
    sim::TimePoint now, const std::vector<CellMeasurement>& measurements,
    double airborne_fraction) {
  if (measurements.empty() || in_handover(now)) return std::nullopt;

  double serving_rsrp = -150.0;
  for (const auto& m : measurements) {
    if (m.cell_id == serving_) {
      serving_rsrp = m.rsrp_dbm;
      break;
    }
  }
  // Strongest neighbour (measurements are sorted strongest-first).
  const CellMeasurement* best = nullptr;
  for (const auto& m : measurements) {
    if (m.cell_id != serving_) {
      best = &m;
      break;
    }
  }
  if (best == nullptr) return std::nullopt;

  const bool a3 = best->rsrp_dbm > serving_rsrp + cfg_.hysteresis_db;
  if (!a3) {
    a3_candidate_ = 0;
    a3_since_ = sim::TimePoint::never();
    return std::nullopt;
  }
  if (best->cell_id != a3_candidate_) {
    // New candidate: restart the time-to-trigger clock.
    a3_candidate_ = best->cell_id;
    a3_since_ = now;
    return std::nullopt;
  }
  if (now - a3_since_ < cfg_.time_to_trigger) return std::nullopt;

  // Trigger the handover.
  const sim::Duration het = het_.sample(airborne_fraction);
  metrics::HandoverEvent ev;
  ev.start = now;
  ev.het = het;
  ev.source_cell = serving_;
  ev.target_cell = a3_candidate_;
  ev.ping_pong = (a3_candidate_ == previous_cell_) &&
                 !previous_left_at_.is_never() &&
                 (now - previous_left_at_ < cfg_.ping_pong_window);
  log_.record(ev);

  previous_cell_ = serving_;
  previous_left_at_ = now;
  serving_ = a3_candidate_;
  ho_end_ = now + het;
  a3_candidate_ = 0;
  a3_since_ = sim::TimePoint::never();
  return het;
}

}  // namespace rpv::cellular
