// Base station (eNodeB cell) description and the deployment layouts used by
// the paper's two measurement areas (Fig. 3): a dense urban grid around the
// Munich city-center campus and a sparse rural deployment in the outskirts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/vec3.hpp"
#include "sim/rng.hpp"

namespace rpv::cellular {

struct BaseStation {
  std::uint32_t cell_id = 0;
  geo::Vec3 pos;                // antenna position; z = mast height (m)
  double tx_power_dbm = 46.0;   // typical macro cell
  double downtilt_deg = 6.0;    // mechanical+electrical downtilt
};

struct CellLayout {
  std::string name;
  std::vector<BaseStation> cells;

  [[nodiscard]] std::size_t size() const { return cells.size(); }
};

// One deployment recipe: `cells` sites on a near-square jittered grid
// covering [x0,x1] x [y0,y1]. Every named layout below is an instance of
// this; rpv::fleet re-stamps layouts from the same specs when it builds a
// shared deployment per fleet scenario.
struct GridLayoutSpec {
  std::string name;
  int cells = 1;
  double x0 = 0.0, x1 = 0.0;    // coverage rectangle (m)
  double y0 = 0.0, y1 = 0.0;
  double jitter_m = 0.0;        // uniform per-site position jitter
  double mast_height_m = 30.0;  // nominal mast height (+/- a few meters)
  double downtilt_deg = 6.0;
  double tx_power_dbm = 46.0;
  std::uint32_t first_cell_id = 1;
};

// The specs behind the three named layouts.
[[nodiscard]] GridLayoutSpec urban_grid_spec();
[[nodiscard]] GridLayoutSpec rural_p1_grid_spec();
[[nodiscard]] GridLayoutSpec rural_p2_grid_spec();

// Stamp a layout from a spec. Per site the generator draws exactly three
// uniforms (x jitter, y jitter, mast-height offset), so a given rng state
// always yields the same deployment.
[[nodiscard]] CellLayout make_grid_layout(sim::Rng& rng, const GridLayoutSpec& spec);

// Urban layout: ~32 reachable cells in a ~1.4 x 0.5 km area with moderately
// high buildings — dense inter-site distance of roughly 250 m.
CellLayout make_urban_layout(sim::Rng& rng);

// Rural layout for the default operator P1: ~18 reachable cells over > 20 km
// of open space — inter-site distances of 1.5-3 km.
CellLayout make_rural_layout_p1(sim::Rng& rng);

// Rural layout for the competing operator P2: denser deployment in the same
// region (the paper observes P2 offers more capacity and more frequent HOs).
CellLayout make_rural_layout_p2(sim::Rng& rng);

}  // namespace rpv::cellular
