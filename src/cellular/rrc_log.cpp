#include "cellular/rrc_log.hpp"

#include <algorithm>

namespace rpv::cellular {

std::string rrc_message_name(RrcMessageType type) {
  switch (type) {
    case RrcMessageType::kMeasurementReport:
      return "MeasurementReport";
    case RrcMessageType::kConnectionReconfiguration:
      return "RRCConnectionReconfiguration";
    case RrcMessageType::kConnectionReconfigurationComplete:
      return "RRCConnectionReconfigurationComplete";
    case RrcMessageType::kConnectionReestablishmentRequest:
      return "RRCConnectionReestablishmentRequest";
    case RrcMessageType::kConnectionReestablishmentComplete:
      return "RRCConnectionReestablishmentComplete";
  }
  return "?";
}

std::size_t RrcLog::count_of(RrcMessageType type) const {
  return static_cast<std::size_t>(
      std::count_if(messages_.begin(), messages_.end(),
                    [type](const RrcMessage& m) { return m.type == type; }));
}

std::vector<double> RrcLog::derive_het_ms() const {
  std::vector<double> out;
  bool in_ho = false;
  sim::TimePoint start;
  for (const auto& m : messages_) {
    if (m.type == RrcMessageType::kConnectionReconfiguration) {
      in_ho = true;
      start = m.t;
    } else if (m.type == RrcMessageType::kConnectionReconfigurationComplete &&
               in_ho) {
      out.push_back((m.t - start).ms());
      in_ho = false;
    }
  }
  return out;
}

bool RrcLog::is_monotonic() const {
  return std::is_sorted(
      messages_.begin(), messages_.end(),
      [](const RrcMessage& a, const RrcMessage& b) { return a.t < b.t; });
}

}  // namespace rpv::cellular
