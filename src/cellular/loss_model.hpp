// Residual packet loss after HARQ: a two-state Gilbert-Elliott process.
//
// The paper measures a PER of only 0.06-0.07% — HARQ and deep buffers absorb
// almost all radio errors — but notes that the drops which do occur happen
// in consecutive bursts. A bursty two-state model reproduces exactly that:
// a long-lived Good state with negligible loss and a short-lived Bad state
// (deep fade / failed HARQ cascade) in which most packets die.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"

namespace rpv::cellular {

struct LossConfig {
  double p_good_to_bad = 4e-5;   // per packet
  double p_bad_to_good = 0.06;   // per packet (mean burst ~17 packets)
  double loss_good = 2e-4;
  double loss_bad = 0.65;
  // The paper observes packet loss at altitudes above ~80 m in the urban
  // environment (interference from many line-of-sight cells defeats HARQ
  // more often). Entry into the Bad state scales up with altitude.
  double altitude_boost = 0.0;      // extra multiplier at full boost altitude
  double boost_altitude_m = 80.0;   // altitude where the boost is ~63% in
  // Sustained transmission at the link's limit (deep standing queue, edge
  // MCS, max UE power) multiplies HARQ-cascade failures. Senders that adapt
  // their rate avoid this state; a constant-bitrate stream does not — the
  // mechanism behind the paper's static-stream SSIM artifacts (§4.2.3).
  double stress_boost = 0.0;        // extra multiplier at 100% queue fill
};

class LossModel {
 public:
  LossModel(LossConfig cfg, sim::Rng rng) : cfg_{cfg}, rng_{rng} {}

  // Returns true if this packet is lost. Advances the channel state.
  // `altitude_m` applies the altitude-dependent Bad-state boost and
  // `queue_fill` (0..1, uplink buffer occupancy) the stress boost.
  bool drops_packet(double altitude_m = 0.0, double queue_fill = 0.0);

  [[nodiscard]] bool in_bad_state() const { return bad_; }
  [[nodiscard]] std::uint64_t total_seen() const { return seen_; }
  [[nodiscard]] std::uint64_t total_lost() const { return lost_; }
  [[nodiscard]] double loss_rate() const {
    return seen_ == 0 ? 0.0 : static_cast<double>(lost_) / static_cast<double>(seen_);
  }

 private:
  LossConfig cfg_;
  sim::Rng rng_;
  bool bad_ = false;
  std::uint64_t seen_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace rpv::cellular
