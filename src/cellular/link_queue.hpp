// Deep-buffered uplink queue ("bufferbloat").
//
// Cellular operators deploy very large per-UE buffers; the paper (citing
// Jiang et al.) attributes the near-zero packet error rate and the large
// latency spikes to them: when the radio slows down (cell edge, handover),
// packets queue for hundreds of milliseconds instead of being dropped.
// This is a FIFO byte queue drained at a time-varying service rate, with
// pause/resume hooks for handover interruptions and overflow-only drops.
//
// Each packet rides with an optional per-packet completion callback that is
// handed to the deliver function when serialization finishes (and silently
// discarded on drop) — the owner never needs a side table keyed by packet
// id. In-flight packets live in a sim::Pool, so a steady-state queue does no
// allocation.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "obs/event_sink.hpp"
#include "sim/pool.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace rpv::cellular {

struct LinkQueueConfig {
  std::size_t buffer_bytes = 6 * 1024 * 1024;  // ~6 MB: seconds at video rates
  // CoDel-style active queue management (paper Section 5 discusses smart
  // queue management as a bufferbloat mitigation). When enabled, packets
  // whose sojourn time persistently exceeds `aqm_target` are dropped at
  // dequeue, signalling the sender's CC before the deep buffer fills.
  bool aqm_enabled = false;
  sim::Duration aqm_target = sim::Duration::millis(20);
  sim::Duration aqm_interval = sim::Duration::millis(100);
};

class LinkQueue {
 public:
  // Per-packet completion, carried through the queue alongside its packet.
  using DoneFn = std::function<void(net::Packet)>;
  // Called when a packet finishes serialization, with its completion (which
  // may be null).
  using DeliverFn = std::function<void(net::Packet, DoneFn)>;
  using RateFn = std::function<double()>;  // current service rate, bits/s
  using DropFn = std::function<void(const net::Packet&)>;

  LinkQueue(sim::Simulator& simulator, LinkQueueConfig cfg, RateFn rate,
            DeliverFn deliver, DropFn on_drop = nullptr);

  // Enqueue for transmission; drops on buffer overflow (the completion is
  // discarded with the packet — on_drop sees the packet itself).
  void enqueue(net::Packet p, DoneFn done = nullptr);

  // Publish kQueueEnqueue / kQueueDrop onto the session's event bus.
  void attach_observer(obs::EventBus* bus) { bus_ = bus; }

  // Handover control: while paused nothing is serialized.
  void pause();
  void resume();

  [[nodiscard]] std::size_t queued_bytes() const { return queued_bytes_; }
  [[nodiscard]] double fill_fraction() const {
    return static_cast<double>(queued_bytes_) /
           static_cast<double>(cfg_.buffer_bytes);
  }
  [[nodiscard]] std::size_t queued_packets() const { return count_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t aqm_drops() const { return aqm_drops_; }
  // Queue sojourn estimate at the current service rate, in seconds.
  [[nodiscard]] double queuing_delay_sec() const;

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Item {
    net::Packet p;
    DoneFn done;
    std::uint32_t next = kNil;
  };

  void maybe_start_service();
  void finish_head();
  bool aqm_should_drop(const net::Packet& p);

  sim::Simulator& sim_;
  LinkQueueConfig cfg_;
  RateFn rate_;
  DeliverFn deliver_;
  DropFn on_drop_;
  obs::EventBus* bus_ = nullptr;
  // Intrusive FIFO over pooled items (head -> ... -> tail via Item::next).
  sim::Pool<Item> pool_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t count_ = 0;
  std::size_t queued_bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t aqm_drops_ = 0;
  bool busy_ = false;
  bool paused_ = false;
  int pause_depth_ = 0;
  sim::Timer service_timer_;

  // CoDel state.
  sim::TimePoint first_above_ = sim::TimePoint::never();
  sim::TimePoint next_aqm_drop_ = sim::TimePoint::never();
  int aqm_drop_count_ = 0;
};

}  // namespace rpv::cellular
