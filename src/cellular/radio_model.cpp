#include "cellular/radio_model.hpp"

#include <algorithm>
#include <cmath>

namespace rpv::cellular {
namespace {

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
double linear_to_db(double lin) { return 10.0 * std::log10(std::max(lin, 1e-30)); }

}  // namespace

RadioModel::RadioModel(RadioConfig cfg, const CellLayout& layout, sim::Rng rng)
    : cfg_{cfg}, layout_{&layout}, rng_{rng}, states_(layout.size()) {
  const double cell_sigma =
      cfg_.shadowing_stddev_db * std::sqrt(1.0 - cfg_.shadowing_common_fraction);
  for (auto& s : states_) {
    s.shadowing_db = rng_.normal(0.0, cell_sigma);
    s.side_lobe_phase = rng_.uniform(0.0, 2.0 * M_PI);
  }
  common_shadowing_db_ = rng_.normal(
      0.0, cfg_.shadowing_stddev_db * std::sqrt(cfg_.shadowing_common_fraction));
  sorted_.resize(layout.size());
}

double RadioModel::path_loss_db(const BaseStation& bs, const geo::Vec3& ue) const {
  const double d = std::max(geo::distance(bs.pos, ue), 10.0);
  // LoS probability rises with altitude; blend the ground (obstructed) and
  // free-space exponents accordingly.
  const double p_los = 1.0 - std::exp(-std::max(ue.z, 0.0) / cfg_.los_altitude_scale_m);
  const double n = cfg_.exponent_ground * (1.0 - p_los) + cfg_.exponent_los * p_los;
  return cfg_.pl_ref_db + 10.0 * n * std::log10(d);
}

double RadioModel::antenna_gain_db(const BaseStation& bs, const geo::Vec3& ue,
                                   CellState& state) {
  // Elevation of the UE as seen from the antenna: negative when below the
  // mast (ground users), positive when the UAV is above it.
  const double horiz = std::max(geo::distance2d(bs.pos, ue), 1.0);
  const double elev_deg = std::atan2(ue.z - bs.pos.z, horiz) * 180.0 / M_PI;
  // Main lobe points `downtilt` below the horizon.
  const double off_axis = elev_deg + bs.downtilt_deg;
  const double hw = cfg_.main_beam_halfwidth_deg;
  // Airborne fast fading: once line-of-sight, ground reflections produce
  // multipath ripple on every cell, shrinking the ranking margins even when
  // the UE is still inside a (distant, rural) main lobe.
  state.side_lobe_phase += rng_.normal(0.0, 0.35);
  const double p_air = 1.0 - std::exp(-std::max(ue.z, 0.0) /
                                      cfg_.los_altitude_scale_m);
  const double ripple = cfg_.side_lobe_ripple_db * std::sin(state.side_lobe_phase);
  if (off_axis <= hw) {
    // Inside (or below) the main lobe: quadratic roll-off, floor at -3 dB.
    const double roll = 3.0 * (off_axis / hw) * (off_axis / hw);
    return cfg_.main_lobe_gain_db - std::min(roll, 3.0) + 0.6 * p_air * ripple;
  }
  // Above the main lobe: fluctuating side-lobe coverage (antenna down-tilt),
  // the dominant urban airborne HO driver.
  return cfg_.side_lobe_gain_db + ripple;
}

void RadioModel::update(const geo::Vec3& ue_pos) {
  const double moved = first_update_ ? 0.0 : geo::distance(last_pos_, ue_pos);
  // Gudmundson correlated shadowing: rho = exp(-d / d_corr).
  const double rho = std::exp(-moved / cfg_.shadowing_corr_distance_m);
  const double decorr = std::sqrt(std::max(0.0, 1.0 - rho * rho));
  const double cell_sigma =
      cfg_.shadowing_stddev_db * std::sqrt(1.0 - cfg_.shadowing_common_fraction);
  const double common_sigma =
      cfg_.shadowing_stddev_db * std::sqrt(cfg_.shadowing_common_fraction);
  if (!first_update_) {
    common_shadowing_db_ =
        rho * common_shadowing_db_ + rng_.normal(0.0, common_sigma * decorr);
  }

  const auto& cells = layout_->cells;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    auto& st = states_[i];
    if (!first_update_) {
      st.shadowing_db = rho * st.shadowing_db + rng_.normal(0.0, cell_sigma * decorr);
    }
    const double gain = antenna_gain_db(cells[i], ue_pos, st);
    st.rsrp_dbm = cells[i].tx_power_dbm + gain - path_loss_db(cells[i], ue_pos) -
                  st.shadowing_db - common_shadowing_db_;
    sorted_[i] = {cells[i].cell_id, st.rsrp_dbm};
  }
  std::sort(sorted_.begin(), sorted_.end(),
            [](const CellMeasurement& a, const CellMeasurement& b) {
              return a.rsrp_dbm > b.rsrp_dbm;
            });
  last_pos_ = ue_pos;
  first_update_ = false;
}

double RadioModel::rsrp_of(std::uint32_t cell_id) const {
  for (const auto& m : sorted_) {
    if (m.cell_id == cell_id) return m.rsrp_dbm;
  }
  return -150.0;
}

double RadioModel::sinr_db(std::uint32_t serving_cell) const {
  const double serving = db_to_linear(rsrp_of(serving_cell));
  double interference = 0.0;
  for (const auto& m : sorted_) {
    if (m.cell_id != serving_cell) interference += db_to_linear(m.rsrp_dbm);
  }
  // With altitude more interferers are line-of-sight *and* unattenuated by
  // clutter; the boost models the extra received interference energy.
  const double p_air =
      1.0 - std::exp(-std::max(last_pos_.z, 0.0) / cfg_.los_altitude_scale_m);
  const double load =
      cfg_.interference_load * (1.0 + (cfg_.interference_air_boost - 1.0) * p_air);
  const double noise = db_to_linear(cfg_.noise_dbm);
  return linear_to_db(serving / (interference * load + noise));
}

double RadioModel::capacity_mbps(std::uint32_t serving_cell) const {
  return capacity_mbps(serving_cell, 1.0);
}

double RadioModel::capacity_mbps(std::uint32_t serving_cell,
                                 double prb_share) const {
  // Even a fully loaded cell keeps granting a starved UE the odd PRB.
  constexpr double kResidualGrantMbps = 0.25;
  const double share = std::clamp(prb_share, 0.0, 1.0);
  const double sinr = db_to_linear(sinr_db(serving_cell));
  const double ref = db_to_linear(cfg_.reference_sinr_db);
  const double eff = std::log2(1.0 + sinr) / std::log2(1.0 + ref);
  const double cap = cfg_.peak_capacity_mbps * std::clamp(eff, 0.0, 1.25) * share;
  const double floor =
      share >= 1.0 ? cfg_.min_capacity_mbps
                   : std::max(cfg_.min_capacity_mbps * share, kResidualGrantMbps);
  return std::clamp(cap, floor, cfg_.operator_cap_mbps);
}

}  // namespace rpv::cellular
