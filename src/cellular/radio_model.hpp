// LTE radio abstraction: per-cell RSRP, serving-cell SINR, and achievable
// uplink capacity as a function of UE position and altitude.
//
// The model encodes the aerial effects the paper identifies (§4.1):
//  * with altitude, more cells become line-of-sight — received power from
//    *all* cells rises, so inter-cell interference grows and the RSRP margin
//    between neighbouring cells shrinks (more A3 handover triggers);
//  * base-station antennas are down-tilted for ground users — an airborne UE
//    sits in fluctuating side-lobe coverage, adding fast gain ripple;
//  * spatially-correlated shadowing makes link quality drift as the UE moves.
#pragma once

#include <cstdint>
#include <vector>

#include "cellular/base_station.hpp"
#include "geo/vec3.hpp"
#include "sim/rng.hpp"

namespace rpv::cellular {

struct RadioConfig {
  // Log-distance path loss: PL(d) = pl_ref_db + 10*n*log10(d / 1 m).
  double pl_ref_db = 38.0;
  double exponent_ground = 3.3;   // NLOS-ish at street level (urban default)
  double exponent_los = 2.1;      // near free-space once airborne LoS
  double los_altitude_scale_m = 45.0;  // altitude where LoS probability ~63%

  // Antenna vertical pattern.
  double main_lobe_gain_db = 15.0;
  double side_lobe_gain_db = 4.0;         // mean gain above the main lobe
  double side_lobe_ripple_db = 6.0;       // amplitude of airborne gain ripple
  double main_beam_halfwidth_deg = 10.0;  // vertical half-power beamwidth

  // Correlated shadowing (Gudmundson model). A fraction of the shadowing
  // variance is common to all cells (obstructions near the UE): it moves the
  // absolute link quality but cancels in the cell *ranking*, so ground UEs
  // see stable serving cells while capacity still fluctuates.
  double shadowing_stddev_db = 6.0;
  double shadowing_corr_distance_m = 60.0;
  double shadowing_common_fraction = 0.65;

  // SINR computation.
  double noise_dbm = -116.0;          // thermal noise over the UL allocation
  double interference_load = 0.02;    // mean activity factor of other cells
  double interference_air_boost = 1.2;  // extra interference fully airborne

  // SINR -> capacity mapping.
  double peak_capacity_mbps = 42.0;  // achievable UL at reference SINR
  double reference_sinr_db = 18.0;
  double min_capacity_mbps = 2.0;
  double operator_cap_mbps = 50.0;   // plan uplink cap (paper: 50 Mbps)
};

struct CellMeasurement {
  std::uint32_t cell_id = 0;
  double rsrp_dbm = -150.0;
};

class RadioModel {
 public:
  RadioModel(RadioConfig cfg, const CellLayout& layout, sim::Rng rng);

  // Advance internal fading state given the UE's new position. Must be
  // called (monotonically in time/position) before reading measurements.
  void update(const geo::Vec3& ue_pos);

  // RSRP of every cell at the last update, strongest first.
  [[nodiscard]] const std::vector<CellMeasurement>& measurements() const {
    return sorted_;
  }
  [[nodiscard]] double rsrp_of(std::uint32_t cell_id) const;

  // Serving-cell SINR (dB) against the aggregate interference of all others.
  [[nodiscard]] double sinr_db(std::uint32_t serving_cell) const;
  // Achievable uplink capacity in Mbps for the given serving cell.
  [[nodiscard]] double capacity_mbps(std::uint32_t serving_cell) const;
  // Capacity when the cell grants this UE only `prb_share` of its resource
  // blocks (N active users sharing a cell each see ~1/N). A share of 1.0 is
  // bit-identical to the unloaded overload; smaller shares scale the
  // SINR-derived capacity and the minimum-capacity floor alike, bounded
  // below by a residual scheduling grant so a starved UE still drains.
  [[nodiscard]] double capacity_mbps(std::uint32_t serving_cell,
                                     double prb_share) const;

  [[nodiscard]] const RadioConfig& config() const { return cfg_; }
  [[nodiscard]] const CellLayout& layout() const { return *layout_; }

 private:
  struct CellState {
    double shadowing_db = 0.0;
    double side_lobe_phase = 0.0;  // smooth ripple state
    double rsrp_dbm = -150.0;
  };

  [[nodiscard]] double path_loss_db(const BaseStation& bs,
                                    const geo::Vec3& ue) const;
  [[nodiscard]] double antenna_gain_db(const BaseStation& bs, const geo::Vec3& ue,
                                       CellState& state);

  RadioConfig cfg_;
  const CellLayout* layout_;
  sim::Rng rng_;
  std::vector<CellState> states_;
  double common_shadowing_db_ = 0.0;
  std::vector<CellMeasurement> sorted_;
  geo::Vec3 last_pos_;
  bool first_update_ = true;
};

}  // namespace rpv::cellular
