// RRC message log — the QCSuper analogue.
//
// The paper records LTE Radio Resource Control messages with QCSuper to
// detect the exact start and end of handover events (HET is the span between
// RRCConnectionReconfiguration at the source cell and
// RRCConnectionReconfigurationComplete at the target, per 3GPP TR 36.881).
// The simulator emits the same message-level log so analyses can be written
// against it exactly as against the real capture.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace rpv::cellular {

enum class RrcMessageType : std::uint8_t {
  kMeasurementReport,                     // UE -> eNB: A3 event fired
  kConnectionReconfiguration,             // source eNB -> UE: HO command
  kConnectionReconfigurationComplete,     // UE -> target eNB: HO done
  kConnectionReestablishmentRequest,      // UE -> eNB after T310 expiry (RLF)
  kConnectionReestablishmentComplete,     // UE -> eNB: bearer restored
};

[[nodiscard]] std::string rrc_message_name(RrcMessageType type);

struct RrcMessage {
  sim::TimePoint t;
  RrcMessageType type = RrcMessageType::kMeasurementReport;
  std::uint32_t cell_id = 0;  // the cell the message concerns
};

class RrcLog {
 public:
  void record(sim::TimePoint t, RrcMessageType type, std::uint32_t cell_id) {
    messages_.push_back({t, type, cell_id});
  }

  [[nodiscard]] const std::vector<RrcMessage>& messages() const { return messages_; }
  [[nodiscard]] std::size_t count() const { return messages_.size(); }
  [[nodiscard]] std::size_t count_of(RrcMessageType type) const;

  // Recompute HET values from the message stream (the paper's method):
  // every Reconfiguration start paired with the next Complete.
  [[nodiscard]] std::vector<double> derive_het_ms() const;

  // The capture must be time-ordered even when faults interleave handover
  // and re-establishment trails.
  [[nodiscard]] bool is_monotonic() const;

 private:
  std::vector<RrcMessage> messages_;
};

}  // namespace rpv::cellular
