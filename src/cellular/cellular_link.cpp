#include "cellular/cellular_link.hpp"

#include <algorithm>
#include <cmath>

#include "net/packet_events.hpp"

namespace rpv::cellular {

CellularLink::CellularLink(sim::Simulator& simulator, CellLayout layout,
                           CellularLinkConfig cfg,
                           const geo::Trajectory* trajectory, sim::Rng rng)
    : sim_{simulator},
      layout_{std::move(layout)},
      cfg_{cfg},
      trajectory_{trajectory},
      rng_{rng},
      loss_{cfg.loss, rng.fork()} {
  radio_ = std::make_unique<RadioModel>(cfg_.radio, layout_, rng_.fork());
  // Attach to the strongest cell at the trajectory start.
  radio_->update(trajectory_->position(trajectory_->start()));
  const auto initial = radio_->measurements().front().cell_id;
  ho_ = std::make_unique<HandoverController>(
      cfg_.handover, HetModel{cfg_.het, rng_.fork()}, initial);
  cells_seen_.push_back(initial);
  queue_ = std::make_unique<LinkQueue>(
      sim_, cfg_.queue, [this] { return capacity_mbps_ * 1e6; },
      [this](net::Packet p, LinkQueue::DoneFn deliver) {
        // Serialization finished: apply radio loss, then access latency.
        if (!deliver) return;
        if (sim_.now() < uplink_blackout_until_) {
          ++fault_drops_;
          publish_packet_lost(p);
          if (on_loss_) on_loss_(p);
          return;
        }
        const double altitude = trajectory_->position(sim_.now()).z;
        // Stress kicks in above the standing queue a delay-based CC would
        // tolerate (~80 ms) and saturates at bufferbloat levels (~300 ms).
        const double qd_ms = queue_->queuing_delay_sec() * 1e3;
        const double stress = std::clamp((qd_ms - 80.0) / 220.0, 0.0, 1.0);
        if (loss_.drops_packet(altitude, stress)) {
          publish_packet_lost(p);
          if (on_loss_) on_loss_(p);
          return;
        }
        const auto jitter = sim::Duration::seconds(
            std::abs(rng_.normal(0.0, cfg_.uplink_access_jitter.ms())) / 1e3);
        // RLC acknowledged mode delivers in order: jitter may stretch the
        // delay but never lets a packet overtake its predecessor.
        auto at = sim_.now() + cfg_.uplink_access_latency + jitter;
        if (at <= last_uplink_delivery_) {
          at = last_uplink_delivery_ + sim::Duration::micros(1);
        }
        last_uplink_delivery_ = at;
        sim_.schedule_at(at, [this, p, deliver = std::move(deliver)]() mutable {
          p.received = sim_.now();
          deliver(std::move(p));
        });
      },
      [this](const net::Packet& p) {
        // Buffer overflow drop.
        publish_packet_lost(p);
        if (on_loss_) on_loss_(p);
      });
  refresh_capacity();
}

void CellularLink::attach_observer(obs::EventBus* bus) {
  bus_ = bus;
  queue_->attach_observer(bus);
}

void CellularLink::publish_packet_lost(const net::Packet& p) {
  if (bus_ && bus_->wants(obs::EventKind::kPacketLost)) {
    bus_->publish(obs::Component::kCellular, obs::EventKind::kPacketLost,
                  sim_.now(), net::packet_payload(p));
  }
}

void CellularLink::start() {
  measurement_tick();
}

double CellularLink::airborne_fraction() const {
  const double z = trajectory_->position(sim_.now()).z;
  return 1.0 - std::exp(-std::max(z, 0.0) / cfg_.radio.los_altitude_scale_m);
}

void CellularLink::refresh_capacity() {
  const bool interrupted =
      !cfg_.handover.make_before_break && ho_->in_handover(sim_.now());
  const double factor =
      interrupted ? 0.0 : ho_->capacity_factor(sim_.now());
  const double share = load_ ? load_->prb_share(ho_->serving_cell()) : 1.0;
  capacity_mbps_ =
      radio_->capacity_mbps(ho_->serving_cell(), share) * std::max(factor, 0.02);
  if (sim_.now() < collapse_until_) capacity_mbps_ *= collapse_residual_;
}

void CellularLink::measurement_tick() {
  const auto now = sim_.now();
  radio_->update(trajectory_->position(now));
  bool ho_triggered = false;
  sim::Duration ho_het = sim::Duration::zero();
  if (const auto het = ho_->on_measurement(now, radio_->measurements(),
                                           airborne_fraction())) {
    ho_triggered = true;
    ho_het = *het;
    // RRC message trail of the handover (the QCSuper capture records these).
    const auto& ev = ho_->log().events().back();
    rrc_.record(now, RrcMessageType::kMeasurementReport, ev.target_cell);
    rrc_.record(now, RrcMessageType::kConnectionReconfiguration, ev.source_cell);
    sim_.schedule_in(*het, [this, target = ev.target_cell] {
      rrc_.record(sim_.now(), RrcMessageType::kConnectionReconfigurationComplete,
                  target);
    });
    if (bus_ && bus_->wants(obs::EventKind::kHandoverStart)) {
      bus_->publish(obs::Component::kCellular, obs::EventKind::kHandoverStart,
                    now,
                    obs::HandoverPayload{ev.source_cell, ev.target_cell,
                                         ho_het.us()});
    }
    if (bus_ && bus_->wants(obs::EventKind::kHandoverEnd)) {
      sim_.schedule_in(*het, [this, source = ev.source_cell,
                              target = ev.target_cell, het_us = ho_het.us()] {
        bus_->publish(obs::Component::kCellular, obs::EventKind::kHandoverEnd,
                      sim_.now(),
                      obs::HandoverPayload{source, target, het_us});
      });
    }
    // Handover triggered. With break-before-make the bearer is interrupted
    // for the execution time; DAPS keeps transmitting on the source stack.
    if (!cfg_.handover.make_before_break) {
      queue_->pause();
      sim_.schedule_in(*het, [this] {
        queue_->resume();
        refresh_capacity();
      });
    }
    const auto serving = ho_->serving_cell();
    if (std::find(cells_seen_.begin(), cells_seen_.end(), serving) ==
        cells_seen_.end()) {
      cells_seen_.push_back(serving);
    }
  }
  refresh_capacity();
  capacity_trace_.add(now, capacity_mbps_);

  const bool bus_wants_meas =
      bus_ != nullptr && bus_->wants(obs::EventKind::kLinkMeasurement);
  if (bus_wants_meas) {
    LinkMeasurement m;
    m.t = now;
    m.serving_cell = ho_->serving_cell();
    m.serving_rsrp_dbm = radio_->rsrp_of(m.serving_cell);
    for (const auto& cell : radio_->measurements()) {
      if (cell.cell_id != m.serving_cell) {
        m.best_neighbor_cell = cell.cell_id;
        m.best_neighbor_rsrp_dbm = cell.rsrp_dbm;
        break;  // measurements are strongest-first
      }
    }
    m.capacity_mbps = capacity_mbps_;
    m.queuing_delay_ms = queuing_delay_ms();
    m.in_handover = ho_->in_handover(now);
    m.ho_triggered = ho_triggered;
    m.het = ho_het;
    bus_->publish(obs::Component::kCellular, obs::EventKind::kLinkMeasurement,
                  now,
                  obs::MeasurementPayload{
                      m.serving_cell, m.serving_rsrp_dbm,
                      m.best_neighbor_cell, m.best_neighbor_rsrp_dbm,
                      m.capacity_mbps, m.queuing_delay_ms, m.in_handover,
                      m.ho_triggered, m.het.us()});
  }
  if (bus_ && bus_->wants(obs::EventKind::kQueueDepth)) {
    // Low-rate depth snapshot riding the RRC tick; the per-packet enqueue
    // stream stays opt-in.
    bus_->publish(obs::Component::kLinkQueue, obs::EventKind::kQueueDepth, now,
                  obs::QueuePayload{
                      0, 0, static_cast<std::uint64_t>(queue_->queued_bytes()),
                      static_cast<std::uint32_t>(queue_->queued_packets()), 0});
  }

  if (now < trajectory_->end()) {
    sim_.schedule_in(cfg_.handover.measurement_interval,
                     [this] { measurement_tick(); });
  }
}

void CellularLink::send_uplink(net::Packet p, DeliverFn deliver) {
  p.enqueued = sim_.now();
  queue_->enqueue(std::move(p), std::move(deliver));
}

void CellularLink::send_downlink(net::Packet p, DeliverFn deliver) {
  if (sim_.now() < downlink_blackout_until_) {
    ++fault_drops_;
    return;
  }
  if (rng_.chance(cfg_.downlink_loss)) return;
  const auto jitter = sim::Duration::seconds(
      std::abs(rng_.normal(0.0, cfg_.downlink_jitter.ms())) / 1e3);
  sim::TimePoint at = sim_.now() + cfg_.downlink_latency + jitter;
  // Downlink shares the radio interruption during handover execution
  // (unless DAPS keeps both stacks active).
  if (!cfg_.handover.make_before_break && ho_->in_handover(at)) {
    at = ho_->handover_end() + jitter;
  }
  sim_.schedule_at(at, [this, p, deliver = std::move(deliver)]() mutable {
    p.received = sim_.now();
    deliver(std::move(p));
  });
}

sim::Duration CellularLink::inject_rlf() {
  const auto now = sim_.now();
  // T310 has expired: re-select the strongest currently measured cell (which
  // may be the serving one) and re-establish the RRC connection.
  radio_->update(trajectory_->position(now));
  const auto& meas = radio_->measurements();
  const std::uint32_t source = ho_->serving_cell();
  const std::uint32_t target =
      meas.empty() ? ho_->serving_cell() : meas.front().cell_id;
  const auto outage = ho_->trigger_rlf(now, airborne_fraction(), target);

  // The QCSuper capture shows the re-establishment pair bracketing the
  // outage the same way Reconfiguration/Complete brackets a handover.
  rrc_.record(now, RrcMessageType::kConnectionReestablishmentRequest, target);
  sim_.schedule_in(outage, [this, target] {
    rrc_.record(sim_.now(), RrcMessageType::kConnectionReestablishmentComplete,
                target);
  });

  queue_->pause();
  sim_.schedule_in(outage, [this] {
    queue_->resume();
    refresh_capacity();
  });

  if (bus_ && bus_->wants(obs::EventKind::kRlf)) {
    bus_->publish(obs::Component::kCellular, obs::EventKind::kRlf, now,
                  obs::HandoverPayload{source, target, outage.us()});
  }

  if (std::find(cells_seen_.begin(), cells_seen_.end(), target) ==
      cells_seen_.end()) {
    cells_seen_.push_back(target);
  }
  refresh_capacity();
  return outage;
}

void CellularLink::inject_downlink_blackout(sim::Duration d) {
  downlink_blackout_until_ = std::max(downlink_blackout_until_, sim_.now() + d);
}

void CellularLink::inject_uplink_blackout(sim::Duration d) {
  uplink_blackout_until_ = std::max(uplink_blackout_until_, sim_.now() + d);
}

void CellularLink::inject_capacity_collapse(sim::Duration d, double residual) {
  const auto now = sim_.now();
  residual = std::clamp(residual, 1e-3, 1.0);
  if (now < collapse_until_) {
    collapse_residual_ = std::min(collapse_residual_, residual);
  } else {
    collapse_residual_ = residual;
  }
  collapse_until_ = std::max(collapse_until_, now + d);
  refresh_capacity();
  sim_.schedule_at(collapse_until_, [this] { refresh_capacity(); });
}

bool CellularLink::link_down() const {
  return (!cfg_.handover.make_before_break && ho_->in_handover(sim_.now())) ||
         sim_.now() < uplink_blackout_until_;
}

std::size_t CellularLink::distinct_cells_seen() const { return cells_seen_.size(); }

}  // namespace rpv::cellular
