// The end-to-end cellular access link of one UE (the UAV's LTE dongle).
//
// Composes the radio model, handover controller, deep-buffered uplink queue
// and residual loss process, and drives them from the UE trajectory inside
// the discrete-event simulator. Exposes an asynchronous send interface for
// uplink (media) and downlink (feedback) packets plus the traces the
// measurement analyses consume: handover log, capacity and queue series.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "cellular/base_station.hpp"
#include "cellular/cell_load.hpp"
#include "cellular/handover.hpp"
#include "cellular/link_queue.hpp"
#include "cellular/loss_model.hpp"
#include "cellular/radio_model.hpp"
#include "cellular/rrc_log.hpp"
#include "geo/trajectory.hpp"
#include "metrics/time_series.hpp"
#include "net/packet.hpp"
#include "obs/event_sink.hpp"
#include "sim/simulator.hpp"

namespace rpv::cellular {

struct CellularLinkConfig {
  RadioConfig radio;
  HandoverConfig handover;
  HetConfig het;
  LinkQueueConfig queue;
  LossConfig loss;

  // Radio access latency (scheduling grant, HARQ round trips) added after
  // serialization, per direction. Jitter values are the sigma of a
  // half-normal delay added per packet.
  sim::Duration uplink_access_latency = sim::Duration::millis(15);
  sim::Duration uplink_access_jitter = sim::Duration::millis(3);
  sim::Duration downlink_latency = sim::Duration::millis(8);
  sim::Duration downlink_jitter = sim::Duration::millis(1);
  double downlink_loss = 1e-5;
};

// Snapshot of one RRC measurement tick, exported to observers (the
// rpv::predict estimators). Everything here is information a real UE modem
// reports to the application processor, so predictors built on it do not
// peek at simulator internals.
struct LinkMeasurement {
  sim::TimePoint t;
  std::uint32_t serving_cell = 0;
  double serving_rsrp_dbm = 0.0;
  std::uint32_t best_neighbor_cell = 0;
  double best_neighbor_rsrp_dbm = -200.0;  // -200 = no neighbor measured
  double capacity_mbps = 0.0;
  double queuing_delay_ms = 0.0;
  bool in_handover = false;
  // Set on the tick whose A3 evaluation triggered a handover; `het` is the
  // sampled execution time of that handover (zero otherwise).
  bool ho_triggered = false;
  sim::Duration het = sim::Duration::zero();
};

// Rebuild the measurement snapshot from its published kLinkMeasurement event
// (the inverse of CellularLink's publish); lets bus subscribers such as
// rpv::predict keep consuming the LinkMeasurement API.
[[nodiscard]] inline LinkMeasurement measurement_from_event(const obs::Event& e) {
  const auto& p = std::get<obs::MeasurementPayload>(e.payload);
  LinkMeasurement m;
  m.t = e.t;
  m.serving_cell = p.serving_cell;
  m.serving_rsrp_dbm = p.serving_rsrp_dbm;
  m.best_neighbor_cell = p.neighbor_cell;
  m.best_neighbor_rsrp_dbm = p.neighbor_rsrp_dbm;
  m.capacity_mbps = p.capacity_mbps;
  m.queuing_delay_ms = p.queuing_delay_ms;
  m.in_handover = p.in_handover;
  m.ho_triggered = p.ho_triggered;
  m.het = sim::Duration::micros(p.het_us);
  return m;
}

class CellularLink {
 public:
  using DeliverFn = std::function<void(net::Packet)>;
  using LossFn = std::function<void(const net::Packet&)>;

  CellularLink(sim::Simulator& simulator, CellLayout layout,
               CellularLinkConfig cfg, const geo::Trajectory* trajectory,
               sim::Rng rng);

  // Begin the RRC measurement loop; runs until the trajectory ends.
  void start();

  // Uplink media path: deep queue -> serialization -> loss -> access latency.
  void send_uplink(net::Packet p, DeliverFn deliver);
  // Downlink feedback path: lightly loaded, but shares HO interruptions.
  void send_downlink(net::Packet p, DeliverFn deliver);

  // Notification for every packet lost on the radio (media loss accounting).
  void set_loss_callback(LossFn fn) { on_loss_ = std::move(fn); }

  // Attach a shared-cell load provider (borrowed; must outlive the link).
  // Every capacity refresh then scales the radio capacity by the provider's
  // PRB share for the serving cell. Without one the link models a private,
  // unloaded cell — today's single-UAV behavior, bit for bit.
  void set_load_provider(const CellLoadProvider* provider) {
    load_ = provider;
    refresh_capacity();
  }

  // Attach the session's event bus. The link publishes kLinkMeasurement,
  // kHandoverStart/End, kRlf, kQueueDepth and kPacketLost; the uplink queue
  // (forwarded here) publishes its enqueue/drop events. Measurement consumers
  // (rpv::predict, rpv::bond) subscribe an EventSink with the
  // kLinkMeasurement bit.
  void attach_observer(obs::EventBus* bus);

  // --- Fault-injection hooks (driven by fault::FaultInjector) ---
  // Radio link failure: T310 expiry, cell re-selection, RRC connection
  // re-establishment. Interrupts the bearer for the sampled outage (which is
  // returned) and records the re-establishment trail in the RRC log.
  sim::Duration inject_rlf();
  // Every downlink (feedback) packet sent inside the window is lost.
  void inject_downlink_blackout(sim::Duration d);
  // Every uplink packet finishing serialization inside the window is lost.
  void inject_uplink_blackout(sim::Duration d);
  // Deep fade: capacity multiplied by `residual` (floored away from zero so
  // the in-service packet still finishes) for the window.
  void inject_capacity_collapse(sim::Duration d, double residual);

  // True while the uplink bearer cannot deliver (handover/RLF interruption
  // or an uplink blackout) — the failover signal for multipath sessions.
  [[nodiscard]] bool link_down() const;
  [[nodiscard]] std::uint64_t fault_drops() const { return fault_drops_; }

  [[nodiscard]] double current_capacity_mbps() const { return capacity_mbps_; }
  [[nodiscard]] std::uint32_t serving_cell() const { return ho_->serving_cell(); }
  [[nodiscard]] bool in_handover() const { return ho_->in_handover(sim_.now()); }
  [[nodiscard]] double queuing_delay_ms() const {
    return queue_->queuing_delay_sec() * 1e3;
  }
  [[nodiscard]] std::size_t queued_bytes() const { return queue_->queued_bytes(); }

  [[nodiscard]] const metrics::HandoverLog& handover_log() const { return ho_->log(); }
  // The QCSuper-style RRC message capture.
  [[nodiscard]] const RrcLog& rrc_log() const { return rrc_; }
  [[nodiscard]] const metrics::TimeSeries& capacity_trace() const {
    return capacity_trace_;
  }
  [[nodiscard]] const LossModel& loss_model() const { return loss_; }
  [[nodiscard]] std::uint64_t buffer_drops() const { return queue_->drops(); }
  [[nodiscard]] std::size_t distinct_cells_seen() const;
  [[nodiscard]] sim::Duration observed_duration() const {
    return trajectory_->duration();
  }

  // How airborne the UE currently is, in [0,1] (0 = ground level).
  [[nodiscard]] double airborne_fraction() const;

 private:
  void measurement_tick();
  void refresh_capacity();
  void publish_packet_lost(const net::Packet& p);

  sim::Simulator& sim_;
  CellLayout layout_;
  CellularLinkConfig cfg_;
  const geo::Trajectory* trajectory_;
  sim::Rng rng_;
  std::unique_ptr<RadioModel> radio_;
  std::unique_ptr<HandoverController> ho_;
  std::unique_ptr<LinkQueue> queue_;
  RrcLog rrc_;
  LossModel loss_;
  LossFn on_loss_;
  obs::EventBus* bus_ = nullptr;
  const CellLoadProvider* load_ = nullptr;
  double capacity_mbps_ = 10.0;
  sim::TimePoint last_uplink_delivery_;  // enforce in-order delivery (RLC)

  // Fault-injection state ("until" at the origin means inactive).
  sim::TimePoint uplink_blackout_until_;
  sim::TimePoint downlink_blackout_until_;
  sim::TimePoint collapse_until_;
  double collapse_residual_ = 1.0;
  std::uint64_t fault_drops_ = 0;
  metrics::TimeSeries capacity_trace_;
  std::vector<std::uint32_t> cells_seen_;
};

}  // namespace rpv::cellular
