// Minimal JSON document model for the run-artifact store.
//
// The campaign engine persists one JSON file per measurement run plus a
// manifest per campaign; loaders re-aggregate figures without re-simulating.
// Requirements that rule out an ad-hoc printf approach: byte-stable output
// (object members keep insertion order, doubles print shortest-round-trip via
// std::to_chars) so "same campaign -> same bytes" holds and the determinism
// tests can compare serialized reports verbatim; and exact integer fidelity
// (64-bit counters are kept as integers, never squeezed through a double).
// No third-party dependency: the toolchain image is frozen.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rpv::json {

class Value;

// One object member; a vector of these preserves insertion order, which keeps
// dumps deterministic and diffs readable (std::map would reorder keys).
struct Member;

class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  Value() = default;  // null
  Value(bool b) : kind_{Kind::kBool}, bool_{b} {}
  Value(int i) : kind_{Kind::kInt}, int_{i} {}
  Value(std::int64_t i) : kind_{Kind::kInt}, int_{i} {}
  Value(std::uint64_t u) : kind_{Kind::kUint}, uint_{u} {}
  Value(double d) : kind_{Kind::kDouble}, double_{d} {}
  Value(std::string s) : kind_{Kind::kString}, string_{std::move(s)} {}
  Value(const char* s) : kind_{Kind::kString}, string_{s} {}

  [[nodiscard]] static Value array();
  [[nodiscard]] static Value object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint || kind_ == Kind::kDouble;
  }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }

  // Typed accessors; numeric ones coerce between the three number kinds and
  // throw std::runtime_error on any other kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_i64() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  // --- Arrays ---
  Value& push_back(Value v);
  [[nodiscard]] const std::vector<Value>& items() const;

  // --- Objects ---
  // Appends (or overwrites) a member; returns *this for chaining.
  Value& set(std::string key, Value v);
  // nullptr when the key is absent (or *this is not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;
  // Throws std::runtime_error naming the missing key.
  [[nodiscard]] const Value& at(std::string_view key) const;
  [[nodiscard]] const std::vector<Member>& members() const;

  [[nodiscard]] std::size_t size() const;

  // Serialize. indent < 0 -> compact single line; indent >= 0 -> pretty
  // printed with that many spaces per level. Non-finite doubles become null.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

struct Member {
  std::string key;
  Value value;
};

// Parse a complete JSON document; throws std::runtime_error with an offset
// on malformed input. Integer tokens without '.'/'e' parse as kInt/kUint.
[[nodiscard]] Value parse(std::string_view text);

// Non-throwing variant for probing possibly-corrupt files.
[[nodiscard]] std::optional<Value> try_parse(std::string_view text);

// Whole-file helpers used by the artifact store.
[[nodiscard]] bool write_file(const std::string& path, const Value& v,
                              int indent = 2);
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

}  // namespace rpv::json
