#include "json/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace rpv::json {

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

namespace {
[[noreturn]] void type_error(const char* want, Value::Kind got) {
  throw std::runtime_error(std::string{"json: expected "} + want +
                           ", got kind " + std::to_string(static_cast<int>(got)));
}
}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) type_error("bool", kind_);
  return bool_;
}

std::int64_t Value::as_i64() const {
  switch (kind_) {
    case Kind::kInt: return int_;
    case Kind::kUint: return static_cast<std::int64_t>(uint_);
    case Kind::kDouble: return static_cast<std::int64_t>(double_);
    default: type_error("number", kind_);
  }
}

std::uint64_t Value::as_u64() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<std::uint64_t>(int_);
    case Kind::kUint: return uint_;
    case Kind::kDouble: return static_cast<std::uint64_t>(double_);
    default: type_error("number", kind_);
  }
}

double Value::as_double() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    case Kind::kDouble: return double_;
    default: type_error("number", kind_);
  }
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) type_error("string", kind_);
  return string_;
}

Value& Value::push_back(Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) type_error("array", kind_);
  array_.push_back(std::move(v));
  return *this;
}

const std::vector<Value>& Value::items() const {
  if (kind_ != Kind::kArray) type_error("array", kind_);
  return array_;
}

Value& Value::set(std::string key, Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) type_error("object", kind_);
  for (auto& m : object_) {
    if (m.key == key) {
      m.value = std::move(v);
      return *this;
    }
  }
  object_.push_back(Member{std::move(key), std::move(v)});
  return *this;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& m : object_) {
    if (m.key == key) return &m.value;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing key '" + std::string{key} + "'");
  }
  return *v;
}

const std::vector<Member>& Value::members() const {
  if (kind_ != Kind::kObject) type_error("object", kind_);
  return object_;
}

std::size_t Value::size() const {
  switch (kind_) {
    case Kind::kArray: return array_.size();
    case Kind::kObject: return object_.size();
    case Kind::kString: return string_.size();
    default: return 0;
  }
}

// --- Serialization ---

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no inf/nan; loaders read null as NaN
    return;
  }
  char buf[32];
  // Shortest representation that round-trips the exact bits.
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, res.ptr);
}

void append_newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kInt: out += std::to_string(int_); return;
    case Kind::kUint: out += std::to_string(uint_); return;
    case Kind::kDouble: append_double(out, double_); return;
    case Kind::kString: append_escaped(out, string_); return;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += indent >= 0 ? ", " : ",";
        array_[i].dump_to(out, indent, depth);
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) {
          append_newline_indent(out, indent, depth + 1);
        }
        append_escaped(out, object_[i].key);
        out += indent >= 0 ? ": " : ":";
        object_[i].value.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0 && !object_.empty()) {
        append_newline_indent(out, indent, depth);
      }
      out += '}';
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --- Parsing ---

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value{parse_string()};
      case 't':
        if (consume_literal("true")) return Value{true};
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value{false};
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value{};
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Value parse_array() {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode the BMP code point as UTF-8 (we never emit surrogates).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_integer = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_integer = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");
    if (is_integer) {
      if (tok[0] == '-') {
        std::int64_t i = 0;
        const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), i);
        if (r.ec == std::errc{} && r.ptr == tok.data() + tok.size()) return Value{i};
      } else {
        std::uint64_t u = 0;
        const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), u);
        if (r.ec == std::errc{} && r.ptr == tok.data() + tok.size()) {
          // Keep small non-negative integers as kInt so round trips are
          // kind-stable for the common case; kUint covers the top bit.
          if (u <= static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max())) {
            return Value{static_cast<std::int64_t>(u)};
          }
          return Value{u};
        }
      }
      // Overflowed 64 bits: fall through to double.
    }
    double d = 0.0;
    const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (r.ec != std::errc{} || r.ptr != tok.data() + tok.size()) fail("bad number");
    return Value{d};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser{text}.parse_document(); }

std::optional<Value> try_parse(std::string_view text) {
  try {
    return parse(text);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

bool write_file(const std::string& path, const Value& v, int indent) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) return false;
  const std::string text = v.dump(indent);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.put('\n');
  return static_cast<bool>(out);
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

}  // namespace rpv::json
