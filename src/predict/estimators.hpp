// Online estimators for per-tick link measurements (RSRP margin, capacity,
// OWD, goodput).
//
// Both filters are O(1) per sample, allocation-free, and purely
// deterministic — feeding the same sample stream always produces the same
// state, which is what lets prediction-instrumented campaign runs stay
// byte-identical across worker counts.
#pragma once

#include "sim/validate.hpp"

namespace rpv::predict {

// Exponentially weighted moving average. alpha in (0, 1]: the weight of the
// newest sample (1.0 degenerates to "latest value").
class Ewma {
 public:
  explicit Ewma(double alpha = 0.3) : alpha_{alpha} {
    validate(alpha > 0.0 && alpha <= 1.0, "Ewma: alpha must be in (0, 1]");
  }

  void update(double x) {
    value_ = initialized_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    initialized_ = true;
  }

  [[nodiscard]] bool initialized() const { return initialized_; }
  // The current estimate; meaningless before the first update().
  [[nodiscard]] double value() const { return value_; }

  void reset() {
    initialized_ = false;
    value_ = 0.0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Holt linear-trend filter (double exponential smoothing): tracks a level
// and a per-step trend, so it can extrapolate `forecast(k)` k steps ahead.
// Samples are assumed equally spaced (the cellular measurement clock).
class HoltFilter {
 public:
  explicit HoltFilter(double alpha = 0.5, double beta = 0.3)
      : alpha_{alpha}, beta_{beta} {
    validate(alpha > 0.0 && alpha <= 1.0, "HoltFilter: alpha must be in (0, 1]");
    validate(beta > 0.0 && beta <= 1.0, "HoltFilter: beta must be in (0, 1]");
  }

  void update(double x) {
    if (count_ == 0) {
      level_ = x;
    } else if (count_ == 1) {
      trend_ = x - level_;
      level_ = x;
    } else {
      const double prev_level = level_;
      level_ = alpha_ * x + (1.0 - alpha_) * (level_ + trend_);
      trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
    }
    if (count_ < 2) ++count_;
  }

  // Initialized once the trend has a basis (two samples seen).
  [[nodiscard]] bool initialized() const { return count_ >= 2; }
  [[nodiscard]] double level() const { return level_; }
  [[nodiscard]] double trend() const { return trend_; }

  // Linear extrapolation `steps` sample intervals ahead.
  [[nodiscard]] double forecast(double steps) const {
    return level_ + trend_ * steps;
  }

  void reset() {
    level_ = 0.0;
    trend_ = 0.0;
    count_ = 0;
  }

 private:
  double alpha_;
  double beta_;
  double level_ = 0.0;
  double trend_ = 0.0;
  int count_ = 0;
};

}  // namespace rpv::predict
