// Prediction-quality counters carried by every SessionReport: how well the
// HandoverPredictor anticipated the A3 handovers that actually happened, how
// accurate the capacity forecast was, and how often the ProactiveAdapter
// acted on a prediction.
#pragma once

#include <cstdint>
#include <vector>

namespace rpv::predict {

struct PredictionStats {
  bool enabled = false;    // estimators ran (instrumentation)
  bool proactive = false;  // predictions drove sender/multipath actions

  // --- Handover prediction quality ---
  std::uint64_t ho_predicted = 0;        // predictions armed
  std::uint64_t ho_true_positives = 0;   // HO arrived inside the horizon
  std::uint64_t ho_false_positives = 0;  // horizon expired without an HO
  std::uint64_t ho_missed = 0;           // HO arrived with no armed prediction
  std::vector<double> ho_lead_time_ms;   // arm -> HO, per true positive

  // --- Radio-map prior (schema v7) ---
  bool map_prior = false;             // a RadioMap prior was attached
  std::uint64_t map_prior_arms = 0;   // arms only the deepened forecast made

  // --- Capacity forecast quality ---
  double capacity_mae_mbps = 0.0;  // one-step-ahead mean absolute error
  std::uint64_t capacity_samples = 0;

  // --- Proactive actions taken ---
  std::uint64_t dip_windows = 0;         // pre-HO bitrate-dip episodes
  std::uint64_t keyframes_deferred = 0;  // IDRs pushed out of the HET window
  std::uint64_t proactive_flushes = 0;   // post-HO sender-queue flushes
  std::uint64_t predictive_switches = 0; // multipath switches before failure

  // Precision/recall with the empty-denominator convention of 1.0 (no
  // predictions made / no handovers observed means nothing was gotten wrong).
  [[nodiscard]] double precision() const {
    const std::uint64_t denom = ho_true_positives + ho_false_positives;
    return denom == 0 ? 1.0
                      : static_cast<double>(ho_true_positives) /
                            static_cast<double>(denom);
  }
  [[nodiscard]] double recall() const {
    const std::uint64_t denom = ho_true_positives + ho_missed;
    return denom == 0 ? 1.0
                      : static_cast<double>(ho_true_positives) /
                            static_cast<double>(denom);
  }
  [[nodiscard]] double mean_lead_time_ms() const {
    if (ho_lead_time_ms.empty()) return 0.0;
    double sum = 0.0;
    for (const double x : ho_lead_time_ms) sum += x;
    return sum / static_cast<double>(ho_lead_time_ms.size());
  }
};

}  // namespace rpv::predict
