#include "predict/proactive_adapter.hpp"

#include <algorithm>

#include "sim/validate.hpp"

namespace rpv::predict {

ProactiveAdapter::ProactiveAdapter(ProactiveConfig cfg)
    : cfg_{cfg},
      predictor_{cfg.ho},
      forecaster_{cfg.capacity},
      owd_{cfg.owd_alpha},
      goodput_{cfg.goodput_alpha} {
  validate(cfg_.dip_factor > 0.0 && cfg_.dip_factor <= 1.0,
           "ProactiveAdapter: dip_factor must be in (0, 1]");
  validate(cfg_.min_rate_bps > 0.0,
           "ProactiveAdapter: min_rate_bps must be > 0");
  validate(cfg_.flush_queue_ms >= 0.0,
           "ProactiveAdapter: flush_queue_ms must be >= 0");
  validate(cfg_.post_ho_guard >= sim::Duration::zero(),
           "ProactiveAdapter: post_ho_guard must be >= 0");
}

void ProactiveAdapter::on_link_measurement(const cellular::LinkMeasurement& m) {
  // Margin = serving - best neighbor. With no neighbor measured the margin is
  // effectively open-ended; feed the predictor a comfortably positive value
  // so the trend filter relaxes instead of extrapolating stale decay.
  const double margin_db =
      m.best_neighbor_rsrp_dbm <= -199.0
          ? 4.0 * cfg_.ho.hysteresis_db
          : m.serving_rsrp_dbm - m.best_neighbor_rsrp_dbm;
  predictor_.on_margin(m.t, margin_db);
  if (m.ho_triggered) {
    predictor_.on_handover(m.t, m.het);
    ho_complete_at_ = m.t + m.het;
    post_guard_until_ = ho_complete_at_ + cfg_.post_ho_guard;
    flush_armed_ = true;
  }
  in_handover_ = m.in_handover;
  forecaster_.on_sample(m.capacity_mbps);

  // Count dip-window entries (rising edges only).
  const bool in_dip = cfg_.proactive && dip_window_active(m.t);
  if (in_dip && !was_in_dip_) ++dip_windows_;
  was_in_dip_ = in_dip;
}

void ProactiveAdapter::on_owd_sample(sim::TimePoint, double owd_ms) {
  owd_.update(owd_ms);
}

void ProactiveAdapter::on_goodput_sample(sim::TimePoint, double mbps) {
  goodput_.update(mbps);
}

bool ProactiveAdapter::dip_window_active(sim::TimePoint now) const {
  return predictor_.armed(now) || in_handover_ || now < post_guard_until_;
}

double ProactiveAdapter::bitrate_cap_bps(sim::TimePoint now) const {
  if (!cfg_.proactive || !dip_window_active(now)) {
    return std::numeric_limits<double>::infinity();
  }
  // While the bearer is actually interrupted (break-before-make) every bit
  // encoded just deepens the backlog that must drain before fresh frames get
  // through, so idle at the floor; before and after the HET window the dip
  // tracks a fraction of the forecast capacity instead.
  if (in_handover_) return cfg_.min_rate_bps;
  const double forecast_bps = forecaster_.forecast_mbps() * 1e6;
  return std::max(cfg_.dip_factor * forecast_bps, cfg_.min_rate_bps);
}

bool ProactiveAdapter::defer_keyframe(sim::TimePoint now) const {
  return cfg_.proactive && dip_window_active(now);
}

bool ProactiveAdapter::should_flush(sim::TimePoint now, double queue_delay_ms) {
  if (!cfg_.proactive || !flush_armed_ || now < ho_complete_at_) return false;
  // The bearer is back: either the backlog warrants a flush or it does not;
  // either way this handover's flush opportunity is spent.
  flush_armed_ = false;
  if (queue_delay_ms > cfg_.flush_queue_ms) {
    ++proactive_flushes_;
    return true;
  }
  return false;
}

bool ProactiveAdapter::ho_imminent(sim::TimePoint now) const {
  return predictor_.armed(now) || in_handover_;
}

void ProactiveAdapter::finish() { predictor_.finish(); }

PredictionStats ProactiveAdapter::stats() const {
  PredictionStats s;
  s.enabled = true;
  s.proactive = cfg_.proactive;
  s.ho_predicted = predictor_.predicted();
  s.ho_true_positives = predictor_.true_positives();
  s.ho_false_positives = predictor_.false_positives();
  s.ho_missed = predictor_.missed();
  s.ho_lead_time_ms = predictor_.lead_times_ms();
  s.map_prior = predictor_.has_map_prior();
  s.map_prior_arms = predictor_.map_prior_arms();
  s.capacity_mae_mbps = forecaster_.mae_mbps();
  s.capacity_samples = forecaster_.samples_scored();
  s.dip_windows = dip_windows_;
  s.keyframes_deferred = keyframes_deferred_;
  s.proactive_flushes = proactive_flushes_;
  s.predictive_switches = predictive_switches_;
  return s;
}

}  // namespace rpv::predict
