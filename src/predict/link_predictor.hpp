// Link-quality forecasting over the cellular measurement clock.
//
// The paper's core operational finding is that handovers and pre-HO signal
// decay cause the latency spikes and stalls the reactive controllers only
// respond to after the damage is done. Both predictors here consume the same
// per-tick radio measurements the A3 machinery sees, so anything they
// anticipate is information a real UE modem already has:
//
//  * HandoverPredictor watches the serving-vs-best-neighbor RSRP margin
//    through a Holt trend filter and arms an "HO imminent" prediction when
//    the extrapolated margin crosses the A3 hysteresis within the forecast
//    horizon — i.e. before the time-to-trigger clock even starts.
//  * CapacityForecaster tracks the achievable uplink through the same filter
//    and extrapolates a short-horizon capacity estimate, scoring its own
//    one-step-ahead MAE as it goes.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/trajectory.hpp"
#include "predict/estimators.hpp"
#include "radiomap/radio_map.hpp"
#include "sim/time.hpp"

namespace rpv::predict {

struct HandoverPredictorConfig {
  // Mirror of the A3 hysteresis the HandoverController triggers on.
  double hysteresis_db = 3.0;
  // Arm when the forecast margin drops within this guard of -hysteresis
  // (predicting slightly early costs a short dip; predicting late costs a
  // stall, so the guard biases toward early).
  double margin_guard_db = 0.5;
  // Holt extrapolation depth, in measurement ticks (~100 ms each).
  double forecast_steps = 8.0;
  // How long an armed prediction stays valid before it scores as a false
  // positive. Covers time-to-trigger plus typical margin-decay time.
  sim::Duration horizon = sim::Duration::millis(2500);
  double holt_alpha = 0.45;
  double holt_beta = 0.25;

  // --- Radio-map prior (ROADMAP item 5; active only via set_map_prior) ---
  // A voxel whose learned HO-trigger rate (per measurement tick) reaches the
  // threshold is "hot": while the UAV's trajectory leads into a hot voxel,
  // the Holt extrapolation looks `map_forecast_boost` times deeper and an
  // armed prediction's horizon stretches by `map_horizon_boost`, so decays
  // the reactive filter would catch late get armed earlier — without the
  // prior ever arming on a flat margin (precision is preserved: the margin
  // still has to cross the trigger line, just at a deeper extrapolation).
  double map_risk_threshold = 0.02;
  double map_forecast_boost = 3.0;
  double map_horizon_boost = 1.5;
  // How far ahead along the trajectory the upcoming voxel is sampled (s).
  double map_lookahead_s = 3.0;
};

// Deterministic online predictor + self-scorer. Feed every measurement tick
// through on_margin(); report actual handovers through on_handover(); call
// finish() once at the end of the run so a still-armed prediction is not
// left unscored.
class HandoverPredictor {
 public:
  explicit HandoverPredictor(HandoverPredictorConfig cfg = {});

  // One measurement tick: margin = serving RSRP - best neighbor RSRP (dB).
  void on_margin(sim::TimePoint now, double margin_db);

  // An A3 handover actually triggered (scores the armed prediction, if any)
  // and will hold the bearer for `het`.
  void on_handover(sim::TimePoint now, sim::Duration het);

  // End of run: drop a still-armed, not-yet-expired prediction (it is
  // neither confirmed nor refuted).
  void finish();

  // Attach a learned radio map + the flight trajectory as a spatial prior
  // (both borrowed; null detaches). Purely deterministic: the prior only
  // deepens the forecast in learned HO zones, it never adds randomness.
  void set_map_prior(const radiomap::RadioMap* map,
                     const geo::Trajectory* trajectory);
  [[nodiscard]] bool has_map_prior() const {
    return map_ != nullptr && trajectory_ != nullptr;
  }
  // Arms that only the deepened (map-boosted) forecast reached — the base
  // filter alone would have armed later or not at all.
  [[nodiscard]] std::uint64_t map_prior_arms() const { return map_prior_arms_; }

  // True while an armed prediction's horizon is open.
  [[nodiscard]] bool armed(sim::TimePoint now) const {
    return armed_ && now <= expires_at_;
  }
  // Heuristic confidence of the armed prediction in [0, 1].
  [[nodiscard]] double confidence() const { return confidence_; }

  [[nodiscard]] std::uint64_t predicted() const { return predicted_; }
  [[nodiscard]] std::uint64_t true_positives() const { return true_positives_; }
  [[nodiscard]] std::uint64_t false_positives() const { return false_positives_; }
  [[nodiscard]] std::uint64_t missed() const { return missed_; }
  [[nodiscard]] const std::vector<double>& lead_times_ms() const {
    return lead_times_ms_;
  }

 private:
  void expire(sim::TimePoint now);

  HandoverPredictorConfig cfg_;
  HoltFilter margin_;
  const radiomap::RadioMap* map_ = nullptr;
  const geo::Trajectory* trajectory_ = nullptr;
  std::uint64_t map_prior_arms_ = 0;
  bool armed_ = false;
  double confidence_ = 0.0;
  sim::TimePoint armed_at_ = sim::TimePoint::never();
  sim::TimePoint expires_at_ = sim::TimePoint::never();
  sim::TimePoint suppress_until_ = sim::TimePoint::origin();  // during HET

  std::uint64_t predicted_ = 0;
  std::uint64_t true_positives_ = 0;
  std::uint64_t false_positives_ = 0;
  std::uint64_t missed_ = 0;
  std::vector<double> lead_times_ms_;
};

struct CapacityForecasterConfig {
  // Holt extrapolation depth for the actionable forecast, in ticks.
  double forecast_steps = 5.0;
  double holt_alpha = 0.4;
  double holt_beta = 0.2;
  // The forecast never drops below this floor (a zero-capacity forecast
  // would starve the bitrate dip entirely).
  double floor_mbps = 0.5;
};

// Short-horizon uplink-capacity forecast with built-in accuracy accounting:
// every sample first scores the previous tick's one-step-ahead forecast,
// then updates the filter.
class CapacityForecaster {
 public:
  explicit CapacityForecaster(CapacityForecasterConfig cfg = {});

  void on_sample(double capacity_mbps);

  // Extrapolated capacity `forecast_steps` ticks ahead, floored.
  [[nodiscard]] double forecast_mbps() const;
  [[nodiscard]] bool ready() const { return filter_.initialized(); }

  [[nodiscard]] double mae_mbps() const {
    return mae_n_ == 0 ? 0.0 : mae_sum_ / static_cast<double>(mae_n_);
  }
  [[nodiscard]] std::uint64_t samples_scored() const { return mae_n_; }

 private:
  CapacityForecasterConfig cfg_;
  HoltFilter filter_;
  bool have_forecast_ = false;
  double next_step_forecast_ = 0.0;
  double mae_sum_ = 0.0;
  std::uint64_t mae_n_ = 0;
};

}  // namespace rpv::predict
