#include "predict/link_predictor.hpp"

#include <algorithm>
#include <cmath>

#include "sim/validate.hpp"

namespace rpv::predict {

HandoverPredictor::HandoverPredictor(HandoverPredictorConfig cfg)
    : cfg_{cfg}, margin_{cfg.holt_alpha, cfg.holt_beta} {
  validate(cfg_.hysteresis_db >= 0.0,
           "HandoverPredictor: hysteresis_db must be >= 0");
  validate(cfg_.margin_guard_db >= 0.0,
           "HandoverPredictor: margin_guard_db must be >= 0");
  validate(cfg_.forecast_steps > 0.0,
           "HandoverPredictor: forecast_steps must be > 0");
  validate(cfg_.horizon > sim::Duration::zero(),
           "HandoverPredictor: horizon must be positive");
}

void HandoverPredictor::expire(sim::TimePoint now) {
  if (armed_ && now > expires_at_) {
    ++false_positives_;
    armed_ = false;
    confidence_ = 0.0;
  }
}

void HandoverPredictor::set_map_prior(const radiomap::RadioMap* map,
                                      const geo::Trajectory* trajectory) {
  map_ = map;
  trajectory_ = trajectory;
}

void HandoverPredictor::on_margin(sim::TimePoint now, double margin_db) {
  expire(now);
  margin_.update(margin_db);
  if (armed_ || !margin_.initialized() || now < suppress_until_) return;

  // Radio-map prior: when the trajectory is about to enter a voxel whose
  // learned HO-trigger rate is hot, extrapolate deeper and keep the armed
  // window open longer. The margin still has to cross the trigger line, so
  // the prior buys lead time in learned HO zones without arming on noise.
  double steps = cfg_.forecast_steps;
  sim::Duration horizon = cfg_.horizon;
  bool hot = false;
  if (has_map_prior()) {
    const geo::Vec3 ahead = trajectory_->position(
        now + sim::Duration::seconds(cfg_.map_lookahead_s));
    const radiomap::VoxelStats* v = map_->at(ahead);
    hot = v != nullptr && v->samples > 0 &&
          v->ho_risk() >= cfg_.map_risk_threshold;
    if (hot) {
      steps *= cfg_.map_forecast_boost;
      horizon = horizon * cfg_.map_horizon_boost;
    }
  }

  // Arm when the extrapolated margin reaches the A3 trigger line (neighbor
  // beats serving by hysteresis) within the forecast window, or already has.
  const double trigger = -(cfg_.hysteresis_db - cfg_.margin_guard_db);
  const double projected = margin_.forecast(steps);
  if (projected > trigger && margin_db > trigger) return;

  if (hot && margin_.forecast(cfg_.forecast_steps) > trigger &&
      margin_db > trigger) {
    // Only the deepened forecast reached the trigger: a prior-driven arm.
    ++map_prior_arms_;
  }
  armed_ = true;
  armed_at_ = now;
  expires_at_ = now + horizon;
  ++predicted_;
  // Deeper projected penetration past the trigger line -> higher confidence.
  const double depth = trigger - std::min(projected, margin_db);
  confidence_ = std::clamp(0.5 + depth / (2.0 * cfg_.hysteresis_db + 1e-9),
                           0.0, 1.0);
}

void HandoverPredictor::on_handover(sim::TimePoint now, sim::Duration het) {
  expire(now);
  if (armed_) {
    ++true_positives_;
    lead_times_ms_.push_back((now - armed_at_).ms());
    armed_ = false;
    confidence_ = 0.0;
  } else {
    ++missed_;
  }
  // The margin is undefined while the bearer moves; hold fire until the HET
  // window (plus one measurement of settling) has passed.
  suppress_until_ = now + het;
  margin_.reset();
}

void HandoverPredictor::finish() {
  // A prediction whose horizon is still open at end-of-run is unresolved:
  // remove it from the armed pool without scoring either way.
  if (armed_) {
    armed_ = false;
    confidence_ = 0.0;
    predicted_ = predicted_ > 0 ? predicted_ - 1 : 0;
  }
}

CapacityForecaster::CapacityForecaster(CapacityForecasterConfig cfg)
    : cfg_{cfg}, filter_{cfg.holt_alpha, cfg.holt_beta} {
  validate(cfg_.forecast_steps > 0.0,
           "CapacityForecaster: forecast_steps must be > 0");
  validate(cfg_.floor_mbps >= 0.0,
           "CapacityForecaster: floor_mbps must be >= 0");
}

void CapacityForecaster::on_sample(double capacity_mbps) {
  if (have_forecast_) {
    mae_sum_ += std::abs(capacity_mbps - next_step_forecast_);
    ++mae_n_;
  }
  filter_.update(capacity_mbps);
  if (filter_.initialized()) {
    next_step_forecast_ = filter_.forecast(1.0);
    have_forecast_ = true;
  }
}

double CapacityForecaster::forecast_mbps() const {
  if (!filter_.initialized()) return cfg_.floor_mbps;
  return std::max(cfg_.floor_mbps, filter_.forecast(cfg_.forecast_steps));
}

}  // namespace rpv::predict
