// ProactiveAdapter — the policy layer that turns predictions into actions.
//
// One adapter observes one cellular link. It is always instrumented (the
// estimators and predictors run on every session so reports carry prediction
// quality), but it only *acts* — bitrate dip, keyframe deferral, post-HO
// flush, predictive path switch — when `proactive` is set. All state is
// deterministic and RNG-free, so enabling it never perturbs the simulation's
// random streams.
#pragma once

#include <cstdint>
#include <limits>

#include "cellular/cellular_link.hpp"
#include "predict/estimators.hpp"
#include "predict/link_predictor.hpp"
#include "predict/stats.hpp"
#include "sim/time.hpp"

namespace rpv::predict {

struct ProactiveConfig {
  // When false the adapter only observes; no policy hooks fire.
  bool proactive = false;

  HandoverPredictorConfig ho;
  CapacityForecasterConfig capacity;

  // Learned radio map attached as the HO predictor's spatial prior
  // (borrowed, may be null; the scenario owner guarantees lifetime). The
  // session pairs it with its trajectory via set_map_prior().
  const radiomap::RadioMap* map_prior = nullptr;

  // During a dip window the encoder target is capped at
  // dip_factor * forecast capacity (but never below min_rate_bps).
  double dip_factor = 0.7;
  double min_rate_bps = 2e6;
  // Keep the dip (and keyframe deferral) up for this long after the HO
  // completes, while the queue drains and capacity recovers from cell edge.
  sim::Duration post_ho_guard = sim::Duration::millis(400);
  // Post-HO recovery flush fires when the sender pacing queue holds more
  // than this much delay once the bearer is back.
  double flush_queue_ms = 120.0;

  // Smoothing for the observational OWD / goodput estimators.
  double owd_alpha = 0.2;
  double goodput_alpha = 0.3;
};

class ProactiveAdapter {
 public:
  explicit ProactiveAdapter(ProactiveConfig cfg = {});

  // --- Sample feeds ---
  void on_link_measurement(const cellular::LinkMeasurement& m);
  void on_owd_sample(sim::TimePoint t, double owd_ms);
  void on_goodput_sample(sim::TimePoint t, double mbps);

  // --- Policy surface (no-ops unless cfg.proactive) ---
  // Cap for the encoder target during a predicted/actual HO window;
  // +infinity when no dip is active.
  [[nodiscard]] double bitrate_cap_bps(sim::TimePoint now) const;
  // True while scheduling a keyframe would land it in the HET window.
  [[nodiscard]] bool defer_keyframe(sim::TimePoint now) const;
  // One-shot: true once per handover, when the bearer is back and the sender
  // queue still holds more than flush_queue_ms of backlog.
  [[nodiscard]] bool should_flush(sim::TimePoint now, double queue_delay_ms);
  // Predictive failover signal for multipath: an HO is predicted or running.
  [[nodiscard]] bool ho_imminent(sim::TimePoint now) const;

  // Called by the actuators when they take the corresponding action.
  void note_keyframe_deferred() { ++keyframes_deferred_; }
  void note_predictive_switch() { ++predictive_switches_; }

  // --- Introspection ---
  [[nodiscard]] bool proactive() const { return cfg_.proactive; }
  [[nodiscard]] double forecast_capacity_mbps() const {
    return forecaster_.forecast_mbps();
  }
  // False until the Holt filter has enough samples to extrapolate (the
  // bonded FEC controller ignores the forecast until then).
  [[nodiscard]] bool forecast_ready() const { return forecaster_.ready(); }
  [[nodiscard]] double owd_ewma_ms() const { return owd_.value(); }
  [[nodiscard]] double goodput_ewma_mbps() const { return goodput_.value(); }
  [[nodiscard]] const HandoverPredictor& ho_predictor() const {
    return predictor_;
  }

  // Attach a learned radio map + flight trajectory as the HO predictor's
  // spatial prior (rpv::radiomap; both borrowed, null detaches). Call before
  // the run starts; instrumentation-only under a reactive policy.
  void set_map_prior(const radiomap::RadioMap* map,
                     const geo::Trajectory* trajectory) {
    predictor_.set_map_prior(map, trajectory);
  }

  // Resolve the still-armed prediction (if any) and return the final stats.
  void finish();
  [[nodiscard]] PredictionStats stats() const;

 private:
  [[nodiscard]] bool dip_window_active(sim::TimePoint now) const;

  ProactiveConfig cfg_;
  HandoverPredictor predictor_;
  CapacityForecaster forecaster_;
  Ewma owd_;
  Ewma goodput_;

  bool in_handover_ = false;
  sim::TimePoint ho_complete_at_ = sim::TimePoint::never();
  sim::TimePoint post_guard_until_ = sim::TimePoint::origin();
  bool flush_armed_ = false;
  bool was_in_dip_ = false;

  std::uint64_t dip_windows_ = 0;
  std::uint64_t keyframes_deferred_ = 0;
  std::uint64_t proactive_flushes_ = 0;
  std::uint64_t predictive_switches_ = 0;
};

}  // namespace rpv::predict
