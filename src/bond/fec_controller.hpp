// AdaptiveFecController — drives the XOR-FEC parity rate from link health.
//
// A fixed parity rate wastes airtime on clean links and under-protects dirty
// ones. The controller walks a ladder of group sizes (larger group = less
// parity): it RAISES protection immediately when per-path loss EWMAs grow,
// when the capacity forecast dips below current capacity, or while a
// handover prediction is armed (the moments the paper shows bursts cluster
// in), and DECAYS one rung at a time only after a sustained clean interval —
// fast attack, slow release, all deterministic and RNG-free.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace rpv::bond {

struct FecControllerConfig {
  // Group-size ladder, least protective first (index 0 = base rate). The
  // defaults step 1/16 -> 1/4 parity overhead.
  std::vector<int> ladder = {16, 12, 8, 4};
  // Loss-EWMA thresholds that force at least rung 1 / 2 / 3.
  double loss_rung1 = 0.01;
  double loss_rung2 = 0.04;
  double loss_rung3 = 0.10;
  // A forecast below this fraction of current capacity counts as a dip and
  // raises protection one rung.
  double dip_fraction = 0.7;
  // An armed handover prediction forces at least this rung.
  int ho_rung = 2;
  // Decay one rung after this long without any raise pressure.
  sim::Duration clean_interval = sim::Duration::seconds(3.0);
};

// The link-health inputs sampled at each controller tick.
struct FecInputs {
  double max_loss_ewma = 0.0;     // worst per-path loss EWMA
  double capacity_mbps = 0.0;     // current serving capacity (best path)
  double forecast_mbps = -1.0;    // capacity forecast; < 0 = not ready
  bool ho_armed = false;          // a handover prediction is armed
};

struct FecChange {
  int group_size = 0;
  int prev_group_size = 0;
};

class AdaptiveFecController {
 public:
  explicit AdaptiveFecController(FecControllerConfig cfg = {});

  // Evaluate one tick; returns the retune to apply, if any.
  std::optional<FecChange> update(sim::TimePoint now, const FecInputs& in);

  [[nodiscard]] int group_size() const { return cfg_.ladder[level_]; }
  [[nodiscard]] int level() const { return level_; }
  [[nodiscard]] std::uint64_t rate_changes() const { return rate_changes_; }

 private:
  [[nodiscard]] int desired_level(const FecInputs& in) const;

  FecControllerConfig cfg_;
  std::size_t level_ = 0;
  sim::TimePoint last_pressure_ = sim::TimePoint::origin();
  std::uint64_t rate_changes_ = 0;
};

}  // namespace rpv::bond
