// rpv::bond — bonded multi-operator link management (ROADMAP item 3).
//
// The paper's multi-MNO measurements show no single operator sustains
// RPV-grade latency through handovers and coverage holes; its Section 5 (and
// AQUILA / vd-link in the related work) argue for per-packet bonding over all
// modems with policy-driven redundancy. A Policy names how the LinkManager
// spreads traffic across the registered operator links:
//
//  * kDuplicate / kScheduled / kFailover — the legacy MultipathModes, kept
//    semantically identical (duplicate everything / shortest-queue spray /
//    primary-with-failover) so existing campaigns stay comparable;
//  * kLowLatency — every packet on the currently fastest eligible path,
//    media FEC-protected so isolated losses do not cost a retransmission;
//  * kBalanced — capacity-weighted spray across eligible paths, with
//    selective duplication of keyframe and C2 packets only;
//  * kHighReliability — C2 duplicated on every path, video sprayed with
//    cross-path FEC at an elevated parity floor: near-kDuplicate robustness
//    at a fraction of its 2x airtime.
#pragma once

#include <cstdint>
#include <string>

namespace rpv::bond {

enum class Policy : std::uint8_t {
  kDuplicate,        // legacy MultipathMode::kDuplicate
  kScheduled,        // legacy MultipathMode::kScheduled
  kFailover,         // legacy MultipathMode::kFailover
  kLowLatency,       // fastest path + FEC
  kBalanced,         // weighted spray + selective duplication
  kHighReliability,  // duplicate C2 + FEC-bonded video
};

// DSCP-style traffic classes, highest priority first (C2 > telemetry >
// video): the scheduler never lets a C2 packet queue behind a video burst.
enum class TrafficClass : std::uint8_t { kC2 = 0, kTelemetry = 1, kVideo = 2 };

// The bonded policies (new scheduler paths); the first three replicate the
// hard-coded legacy modes.
[[nodiscard]] constexpr bool is_bonded(Policy p) {
  return p == Policy::kLowLatency || p == Policy::kBalanced ||
         p == Policy::kHighReliability;
}

// FEC-protected policies: the session enables sender-side FEC with the
// adaptive rate controller attached.
[[nodiscard]] constexpr bool uses_fec(Policy p) {
  return p == Policy::kLowLatency || p == Policy::kHighReliability;
}

[[nodiscard]] inline std::string policy_name(Policy p) {
  switch (p) {
    case Policy::kDuplicate: return "duplicate";
    case Policy::kScheduled: return "scheduled";
    case Policy::kFailover: return "failover";
    case Policy::kLowLatency: return "low-latency";
    case Policy::kBalanced: return "balanced";
    case Policy::kHighReliability: return "high-reliability";
  }
  return "?";
}

// Report suffix appended to cc_name ("gcc+bond-hr"); the legacy spellings
// ("+mpdup", ...) are preserved verbatim for stored-artifact compatibility.
[[nodiscard]] inline std::string policy_suffix(Policy p) {
  switch (p) {
    case Policy::kDuplicate: return "+mpdup";
    case Policy::kScheduled: return "+mpsched";
    case Policy::kFailover: return "+mpfail";
    case Policy::kLowLatency: return "+bond-ll";
    case Policy::kBalanced: return "+bond-bal";
    case Policy::kHighReliability: return "+bond-hr";
  }
  return "?";
}

}  // namespace rpv::bond
