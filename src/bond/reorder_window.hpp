// ReorderWindow — receive-side reassembly for bonded multi-path delivery.
//
// Packets sprayed across operator links arrive interleaved and skewed (each
// path has its own radio access latency, queue depth and WAN leg). The
// window holds out-of-order arrivals for a bounded time — sized from a
// per-path one-way-skew estimate, capped at roughly two frame intervals —
// releasing them in transport-sequence order so the jitter buffer and FEC
// decoder downstream see a near-in-order stream. Duplicates (policy-level
// duplication or FEC cross-delivery) are suppressed here, exactly once per
// logical packet.
//
// All state is deterministic: hold timers run on the simulation clock, and
// identical arrival streams release identical output streams.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

#include "net/packet.hpp"
#include "obs/event_sink.hpp"
#include "rtp/sequence.hpp"
#include "sim/simulator.hpp"

namespace rpv::bond {

struct ReorderWindowConfig {
  // Minimum gap-hold; raised toward max_hold as measured path skew grows.
  sim::Duration base_hold = sim::Duration::millis(30);
  // Hard cap: ~2 frame intervals at 30 FPS. A gap older than this is a loss,
  // not reordering, and stalling longer only adds playback latency.
  sim::Duration max_hold = sim::Duration::millis(66);
  // Overflow bound: a flush releases everything once this many packets wait.
  std::size_t max_packets = 256;
  // EWMA smoothing for the per-path latency estimate behind the skew.
  double skew_alpha = 0.1;
};

class ReorderWindow {
 public:
  // Deliver releases one packet downstream; `path` is the operator link the
  // accepted copy arrived on.
  using DeliverFn = std::function<void(net::Packet, int path)>;

  ReorderWindow(sim::Simulator& simulator, ReorderWindowConfig cfg,
                DeliverFn deliver);

  // Publish kReorderFlush onto the session's bond event stream.
  void attach_observer(obs::EventBus* bus) { bus_ = bus; }

  // Feed one arriving copy. May release zero or more packets downstream.
  void on_packet(net::Packet p, int path);

  // End-of-run drain: release everything still held, in order.
  void flush_all();

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }
  [[nodiscard]] std::uint64_t late_packets() const { return late_; }
  // Current |fastest - slowest| one-way estimate across paths, in ms.
  [[nodiscard]] double skew_ms() const;
  [[nodiscard]] std::size_t held() const { return buffer_.size(); }

 private:
  struct Held {
    net::Packet packet;
    sim::TimePoint arrived;
    int path = 0;
  };

  [[nodiscard]] sim::Duration hold_window() const;
  [[nodiscard]] static std::uint64_t dedup_key(const net::Packet& p);
  void release(std::map<std::int64_t, Held>::iterator end_it);
  void drain_in_order();
  void flush_expired();
  void arm_timer();
  void publish_flush(std::uint32_t released, std::uint8_t reason,
                     double hold_ms);

  sim::Simulator& sim_;
  ReorderWindowConfig cfg_;
  DeliverFn deliver_;
  obs::EventBus* bus_ = nullptr;

  rtp::SeqUnwrapper unwrapper_;
  std::map<std::int64_t, Held> buffer_;  // keyed by unwrapped transport seq
  bool started_ = false;
  std::int64_t next_expected_ = 0;

  // Duplicate suppression: logical identity of every packet released so far,
  // FIFO-bounded (duplicate copies trail the original by at most seconds).
  std::unordered_set<std::uint64_t> seen_;
  std::deque<std::uint64_t> seen_order_;

  // Per-path one-way latency EWMAs feeding the skew estimate.
  std::vector<double> path_latency_ms_;
  std::vector<bool> path_seen_;

  sim::TimePoint timer_deadline_ = sim::TimePoint::never();
  sim::Timer timer_;

  std::uint64_t delivered_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t late_ = 0;
};

}  // namespace rpv::bond
