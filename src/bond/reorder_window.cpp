#include "bond/reorder_window.hpp"

#include <algorithm>
#include <utility>

#include "obs/event.hpp"
#include "sim/validate.hpp"

namespace rpv::bond {
namespace {

// Bound on the duplicate-suppression set; generous versus the few hundred
// packets in flight, tiny versus a full run.
constexpr std::size_t kSeenCap = 60000;
constexpr std::size_t kSeenPrune = 20000;

}  // namespace

ReorderWindow::ReorderWindow(sim::Simulator& simulator, ReorderWindowConfig cfg,
                             DeliverFn deliver)
    : sim_{simulator}, cfg_{cfg}, deliver_{std::move(deliver)} {
  rpv::validate(static_cast<bool>(deliver_),
                "ReorderWindow: deliver callback required");
  rpv::validate(cfg_.max_packets > 0, "ReorderWindow: max_packets must be > 0");
  rpv::validate(cfg_.base_hold <= cfg_.max_hold,
                "ReorderWindow: base_hold must not exceed max_hold");
}

std::uint64_t ReorderWindow::dedup_key(const net::Packet& p) {
  // Parity packets live in their own key space (their frame_id is unset);
  // media keys match the legacy MultipathSession dedup scheme. origin_id
  // ties bonded duplicate copies back to one logical packet, but the
  // (frame, transport_seq) pair is already copy-invariant and cheaper.
  if (p.kind == net::PacketKind::kFecParity) {
    return (1ULL << 48) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.fec_group))
            << 16) |
           p.transport_seq;
  }
  return (static_cast<std::uint64_t>(p.frame_id) << 16) | p.transport_seq;
}

sim::Duration ReorderWindow::hold_window() const {
  // Hold long enough to cover the measured inter-path skew (plus headroom for
  // jitter), but never past the cap — a gap older than ~2 frame intervals is
  // loss, and FEC or concealment handles it better than added latency.
  const auto skew = sim::Duration::seconds(skew_ms() * 1.5 / 1e3);
  return std::clamp(skew, cfg_.base_hold, cfg_.max_hold);
}

double ReorderWindow::skew_ms() const {
  double lo = 0.0;
  double hi = 0.0;
  bool any = false;
  for (std::size_t i = 0; i < path_latency_ms_.size(); ++i) {
    if (!path_seen_[i]) continue;
    if (!any) {
      lo = hi = path_latency_ms_[i];
      any = true;
    } else {
      lo = std::min(lo, path_latency_ms_[i]);
      hi = std::max(hi, path_latency_ms_[i]);
    }
  }
  return any ? hi - lo : 0.0;
}

void ReorderWindow::on_packet(net::Packet p, int path) {
  const auto now = sim_.now();

  // One-way latency estimate for this path: time since the packet started on
  // the radio. Absolute accuracy does not matter — only the *difference*
  // between paths feeds the hold window.
  if (path >= 0) {
    const auto idx = static_cast<std::size_t>(path);
    if (idx >= path_latency_ms_.size()) {
      path_latency_ms_.resize(idx + 1, 0.0);
      path_seen_.resize(idx + 1, false);
    }
    const double owd_ms = (now - p.sent).ms();
    if (!path_seen_[idx]) {
      path_latency_ms_[idx] = owd_ms;
      path_seen_[idx] = true;
    } else {
      path_latency_ms_[idx] +=
          cfg_.skew_alpha * (owd_ms - path_latency_ms_[idx]);
    }
  }

  // Duplicate suppression: exactly one copy of each logical packet passes.
  const std::uint64_t key = dedup_key(p);
  if (!seen_.insert(key).second) {
    ++duplicates_suppressed_;
    return;
  }
  seen_order_.push_back(key);
  if (seen_order_.size() > kSeenCap) {
    for (std::size_t i = 0; i < kSeenPrune; ++i) {
      seen_.erase(seen_order_.front());
      seen_order_.pop_front();
    }
  }

  const std::int64_t seq = unwrapper_.unwrap(p.transport_seq);
  if (!started_) {
    started_ = true;
    next_expected_ = seq;
  }

  if (seq < next_expected_) {
    // Its gap was already flushed past; release immediately rather than
    // re-order backwards (downstream jitter buffering absorbs it).
    ++late_;
    ++delivered_;
    deliver_(std::move(p), path);
    return;
  }

  buffer_.emplace(seq, Held{std::move(p), now, path});
  drain_in_order();
  if (buffer_.size() >= cfg_.max_packets) {
    // Overflow: the missing packet is not coming (or the window is too small
    // for the current skew) — release everything rather than grow unbounded.
    const auto released = static_cast<std::uint32_t>(buffer_.size());
    release(buffer_.end());
    ++flushes_;
    publish_flush(released, 1, hold_window().ms());
  }
  arm_timer();
}

void ReorderWindow::drain_in_order() {
  auto it = buffer_.begin();
  while (it != buffer_.end() && it->first == next_expected_) {
    ++next_expected_;
    ++delivered_;
    deliver_(std::move(it->second.packet), it->second.path);
    it = buffer_.erase(it);
  }
}

void ReorderWindow::release(std::map<std::int64_t, Held>::iterator end_it) {
  // Release buffered packets in sequence order up to (not including) end_it,
  // skipping the gaps that never arrived.
  auto it = buffer_.begin();
  while (it != end_it) {
    next_expected_ = it->first + 1;
    ++delivered_;
    deliver_(std::move(it->second.packet), it->second.path);
    it = buffer_.erase(it);
  }
  drain_in_order();
}

void ReorderWindow::flush_expired() {
  timer_deadline_ = sim::TimePoint::never();
  if (buffer_.empty()) return;
  const auto now = sim_.now();
  const auto hold = hold_window();
  // Everything up to and including the newest expired packet is released:
  // packets with smaller sequence numbers than an expired one must precede it
  // regardless of their own age.
  auto end_it = buffer_.begin();
  std::uint32_t released = 0;
  for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
    if (it->second.arrived + hold <= now) {
      end_it = std::next(it);
      released = static_cast<std::uint32_t>(
          std::distance(buffer_.begin(), end_it));
    }
  }
  if (released > 0) {
    release(end_it);
    ++flushes_;
    publish_flush(released, 0, hold.ms());
  }
  arm_timer();
}

void ReorderWindow::arm_timer() {
  if (buffer_.empty()) {
    timer_.cancel();
    timer_deadline_ = sim::TimePoint::never();
    return;
  }
  // The next deadline is the oldest arrival plus the hold window.
  sim::TimePoint oldest = sim::TimePoint::never();
  for (const auto& [seq, held] : buffer_) {
    oldest = std::min(oldest, held.arrived);
  }
  const auto deadline = oldest + hold_window();
  if (timer_.pending() && deadline >= timer_deadline_) return;
  timer_deadline_ = deadline;
  // Re-arming cancels the previous deadline.
  timer_ = sim_.schedule_timer_at(deadline, [this] { flush_expired(); });
}

void ReorderWindow::flush_all() {
  timer_.cancel();
  timer_deadline_ = sim::TimePoint::never();
  if (buffer_.empty()) return;
  const auto released = static_cast<std::uint32_t>(buffer_.size());
  release(buffer_.end());
  ++flushes_;
  publish_flush(released, 2, hold_window().ms());
}

void ReorderWindow::publish_flush(std::uint32_t released, std::uint8_t reason,
                                  double hold_ms) {
  if (bus_ == nullptr || !bus_->wants(obs::EventKind::kReorderFlush)) return;
  bus_->publish(obs::Component::kBond, obs::EventKind::kReorderFlush,
                sim_.now(), obs::ReorderFlushPayload{released, reason, hold_ms});
}

}  // namespace rpv::bond
