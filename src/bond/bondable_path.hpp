// BondablePath — the common interface every bonded transport implements.
//
// The LinkManager originally scheduled across exactly two cellular operator
// links; 3-way multi-connectivity (cellular + cellular + LEO satellite or
// aerial mesh, ROADMAP item 4) needs one abstraction the scheduler can rank
// heterogeneous paths through. A path exposes exactly what the routing
// policies consume: liveness, capacity, standing queue delay, and a fixed
// propagation floor — plus the async send interface the session drives.
//
// The cellular adapter forwards verbatim (zero behavioural change, so the
// 2-path policies replicate byte-identically); sat::SatelliteLink and
// sat::MeshHopLink implement the interface natively.
#pragma once

#include <functional>
#include <string_view>

#include "cellular/cellular_link.hpp"
#include "net/packet.hpp"

namespace rpv::bond {

enum class PathKind : std::uint8_t { kCellular, kSatellite, kMesh };

[[nodiscard]] constexpr std::string_view path_kind_name(PathKind k) {
  switch (k) {
    case PathKind::kCellular: return "cellular";
    case PathKind::kSatellite: return "satellite";
    case PathKind::kMesh: return "mesh";
  }
  return "?";
}

class BondablePath {
 public:
  using DeliverFn = std::function<void(net::Packet)>;
  using LossFn = std::function<void(const net::Packet&)>;

  virtual ~BondablePath() = default;

  [[nodiscard]] virtual PathKind kind() const = 0;

  // Async send interfaces, matching cellular::CellularLink's contract:
  // `deliver` fires when (and only if) the packet survives the path.
  virtual void send_uplink(net::Packet p, DeliverFn deliver) = 0;
  virtual void send_downlink(net::Packet p, DeliverFn deliver) = 0;

  // Notification for every packet the path loses (loss-EWMA accounting).
  virtual void set_loss_callback(LossFn fn) = 0;

  // True while the path cannot deliver (HO interruption, RLF, satellite
  // pass switch, obstruction) — the failover signal.
  [[nodiscard]] virtual bool link_down() const = 0;
  [[nodiscard]] virtual double current_capacity_mbps() const = 0;
  // Standing queue delay of packets already accepted, in ms.
  [[nodiscard]] virtual double queuing_delay_ms() const = 0;
  // Fixed propagation/access floor beyond the cellular baseline, in ms.
  // Cellular returns 0 (its access latency is modeled inside the link), so
  // every latency ranking over cellular-only path sets is unchanged; a LEO
  // path reports its ~27 ms floor and loses C2 ranking ties accordingly.
  [[nodiscard]] virtual double base_latency_ms() const { return 0.0; }
};

// Exposes a cellular operator link as a BondablePath, forwarding every call
// verbatim.
class CellularPathAdapter final : public BondablePath {
 public:
  explicit CellularPathAdapter(cellular::CellularLink* link) : link_{link} {}

  [[nodiscard]] PathKind kind() const override { return PathKind::kCellular; }
  void send_uplink(net::Packet p, DeliverFn deliver) override {
    link_->send_uplink(std::move(p), std::move(deliver));
  }
  void send_downlink(net::Packet p, DeliverFn deliver) override {
    link_->send_downlink(std::move(p), std::move(deliver));
  }
  void set_loss_callback(LossFn fn) override {
    link_->set_loss_callback(std::move(fn));
  }
  [[nodiscard]] bool link_down() const override { return link_->link_down(); }
  [[nodiscard]] double current_capacity_mbps() const override {
    return link_->current_capacity_mbps();
  }
  [[nodiscard]] double queuing_delay_ms() const override {
    return link_->queuing_delay_ms();
  }

  [[nodiscard]] cellular::CellularLink& link() { return *link_; }

 private:
  cellular::CellularLink* link_;
};

}  // namespace rpv::bond
