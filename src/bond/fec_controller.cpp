#include "bond/fec_controller.hpp"

#include <algorithm>

#include "sim/validate.hpp"

namespace rpv::bond {

AdaptiveFecController::AdaptiveFecController(FecControllerConfig cfg)
    : cfg_{std::move(cfg)} {
  rpv::validate(!cfg_.ladder.empty(),
                "AdaptiveFecController: ladder must not be empty");
  for (const int g : cfg_.ladder) {
    rpv::validate(g >= 2, "AdaptiveFecController: ladder entries must be >= 2");
  }
}

int AdaptiveFecController::desired_level(const FecInputs& in) const {
  int want = 0;
  if (in.max_loss_ewma >= cfg_.loss_rung3) {
    want = 3;
  } else if (in.max_loss_ewma >= cfg_.loss_rung2) {
    want = 2;
  } else if (in.max_loss_ewma >= cfg_.loss_rung1) {
    want = 1;
  }
  if (in.forecast_mbps >= 0.0 && in.capacity_mbps > 0.0 &&
      in.forecast_mbps < cfg_.dip_fraction * in.capacity_mbps) {
    want += 1;
  }
  if (in.ho_armed) want = std::max(want, cfg_.ho_rung);
  return std::min<int>(want, static_cast<int>(cfg_.ladder.size()) - 1);
}

std::optional<FecChange> AdaptiveFecController::update(sim::TimePoint now,
                                                       const FecInputs& in) {
  const auto want = static_cast<std::size_t>(desired_level(in));
  std::size_t next = level_;
  if (want > level_) {
    // Fast attack: jump straight to the pressure level.
    next = want;
    last_pressure_ = now;
  } else if (want == level_ && want > 0) {
    // Still under pressure at the current rung; hold.
    last_pressure_ = now;
  } else if (want < level_ && now - last_pressure_ >= cfg_.clean_interval) {
    // Slow release: one rung per clean interval.
    next = level_ - 1;
    last_pressure_ = now;
  }
  if (next == level_) return std::nullopt;
  FecChange change;
  change.prev_group_size = cfg_.ladder[level_];
  change.group_size = cfg_.ladder[next];
  level_ = next;
  ++rate_changes_;
  return change;
}

}  // namespace rpv::bond
