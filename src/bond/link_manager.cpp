#include "bond/link_manager.hpp"

#include <algorithm>
#include <limits>

#include "obs/event.hpp"
#include "sim/validate.hpp"

namespace rpv::bond {
namespace {

// kPathSwitch reason codes (mirrored in obs::describe()).
constexpr std::uint8_t kReasonPathDown = 0;
constexpr std::uint8_t kReasonPredictedHo = 1;
constexpr std::uint8_t kReasonFasterPath = 2;
constexpr std::uint8_t kReasonProbationEnd = 3;

}  // namespace

LinkManager::LinkManager(sim::Simulator& simulator, LinkManagerConfig cfg)
    : sim_{simulator}, cfg_{cfg} {
  rpv::validate(cfg_.loss_alpha > 0.0 && cfg_.loss_alpha <= 1.0,
                "LinkManager: loss_alpha must be in (0, 1]");
}

int LinkManager::add_path(cellular::CellularLink* link,
                          predict::ProactiveAdapter* adapter) {
  rpv::validate(link != nullptr, "LinkManager: link must not be null");
  owned_adapters_.push_back(std::make_unique<CellularPathAdapter>(link));
  PathState st;
  st.path = owned_adapters_.back().get();
  st.adapter = adapter;
  paths_.push_back(st);
  return static_cast<int>(paths_.size()) - 1;
}

int LinkManager::add_path(BondablePath* path) {
  rpv::validate(path != nullptr, "LinkManager: path must not be null");
  PathState st;
  st.path = path;
  paths_.push_back(st);
  return static_cast<int>(paths_.size()) - 1;
}

void LinkManager::refresh(std::vector<int>& candidates) {
  const auto now = sim_.now();
  for (auto& p : paths_) {
    const bool down = p.path->link_down();
    if (down && !p.down) {
      // Freshly failed: any probation credit is void.
      p.in_probation = false;
    } else if (!down && p.down) {
      // Recovered: hold it out of the candidate set until it stays up.
      p.in_probation = true;
      p.probation_until = now + cfg_.probation;
    }
    p.down = down;
    if (p.in_probation && now >= p.probation_until) {
      p.in_probation = false;
      p.just_readmitted = true;
    }
    const bool ho_flag = p.adapter != nullptr && p.adapter->proactive() &&
                         p.adapter->ho_imminent(now);
    if (ho_flag && !p.ho_flagged && p.adapter != nullptr) {
      // Count the predictive vacate once per armed window.
      p.adapter->note_predictive_switch();
    }
    p.ho_flagged = ho_flag;
  }

  // Candidate set: healthy paths not under predicted-HO vacate; degrade to
  // healthy-but-flagged, then to merely-up-including-probation, then to
  // everything (packets sent into a dead radio are dropped there — honest
  // accounting, no silent stall).
  candidates.clear();
  for (int i = 0; i < static_cast<int>(paths_.size()); ++i) {
    const auto& p = paths_[static_cast<std::size_t>(i)];
    if (!p.down && !p.in_probation && !p.ho_flagged) candidates.push_back(i);
  }
  if (candidates.empty()) {
    for (int i = 0; i < static_cast<int>(paths_.size()); ++i) {
      const auto& p = paths_[static_cast<std::size_t>(i)];
      if (!p.down && !p.in_probation) candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    for (int i = 0; i < static_cast<int>(paths_.size()); ++i) {
      if (!paths_[static_cast<std::size_t>(i)].down) candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    for (int i = 0; i < static_cast<int>(paths_.size()); ++i) {
      candidates.push_back(i);
    }
  }
}

int LinkManager::least_queued(const std::vector<int>& candidates) const {
  // "Queued" is really effective latency: standing queue plus the path's
  // propagation floor, so a LEO path only wins once cellular queues exceed
  // its ~27 ms floor. Cellular floors are 0 — cellular-only rankings are
  // unchanged.
  int best = candidates.front();
  double best_q = std::numeric_limits<double>::infinity();
  for (const int i : candidates) {
    const double q = effective_latency_ms(paths_[static_cast<std::size_t>(i)]);
    if (q < best_q) {
      best_q = q;
      best = i;
    }
  }
  return best;
}

int LinkManager::spray_pick(const std::vector<int>& candidates) {
  if (candidates.size() == 1) return candidates.front();
  // Deficit-style weighted round-robin on current capacity: every pick adds
  // each candidate's capacity share to its credit and charges the winner one
  // full packet. Deterministic, and the long-run split tracks the capacity
  // ratio even as it moves.
  double total = 0.0;
  for (const int i : candidates) {
    total += std::max(
        paths_[static_cast<std::size_t>(i)].path->current_capacity_mbps(),
        0.01);
  }
  int best = candidates.front();
  double best_credit = -std::numeric_limits<double>::infinity();
  for (const int i : candidates) {
    auto& p = paths_[static_cast<std::size_t>(i)];
    p.credit +=
        std::max(p.path->current_capacity_mbps(), 0.01) / std::max(total, 0.01);
    if (p.credit > best_credit) {
      best_credit = p.credit;
      best = i;
    }
  }
  paths_[static_cast<std::size_t>(best)].credit -= 1.0;
  return best;
}

RouteDecision LinkManager::route_legacy(const net::Packet& p) {
  (void)p;
  // Byte-for-byte replication of the MultipathMode branches so existing
  // campaigns and stored artifacts stay comparable. Legacy policies predate
  // bonding and only ever see the first two paths.
  const auto now = sim_.now();
  switch (cfg_.policy) {
    case Policy::kFailover: {
      const bool reactive_b = paths_[0].path->link_down();
      bool use_b = reactive_b;
      if (!use_b && paths_[0].adapter != nullptr &&
          paths_[0].adapter->proactive() && paths_[0].adapter->ho_imminent(now) &&
          !paths_[1].path->link_down()) {
        use_b = true;
      }
      if (use_b != failover_on_b_) {
        failover_on_b_ = use_b;
        ++failover_events_;
        ++path_switches_;
        if (use_b && !reactive_b && paths_[0].adapter != nullptr) {
          paths_[0].adapter->note_predictive_switch();
        }
        if (bus_ != nullptr && bus_->wants(obs::EventKind::kPathSwitch)) {
          bus_->publish(
              obs::Component::kBond, obs::EventKind::kPathSwitch, now,
              obs::PathSwitchPayload{
                  static_cast<std::uint8_t>(use_b ? 0 : 1),
                  static_cast<std::uint8_t>(use_b ? 1 : 0),
                  use_b ? (reactive_b ? kReasonPathDown : kReasonPredictedHo)
                        : kReasonProbationEnd,
                  static_cast<std::uint8_t>(TrafficClass::kVideo)});
        }
      }
      anchor_ = use_b ? 1 : 0;
      return {anchor_, -1};
    }
    case Policy::kScheduled: {
      const bool use_b = paths_[1].path->queuing_delay_ms() <
                         paths_[0].path->queuing_delay_ms();
      return {use_b ? 1 : 0, -1};
    }
    case Policy::kDuplicate:
    default:
      return {0, 1};
  }
}

void LinkManager::switch_anchor(int to, std::uint8_t reason, TrafficClass cls) {
  if (to == anchor_) return;
  ++path_switches_;
  ++failover_events_;
  if (bus_ != nullptr && bus_->wants(obs::EventKind::kPathSwitch)) {
    bus_->publish(obs::Component::kBond, obs::EventKind::kPathSwitch, sim_.now(),
                  obs::PathSwitchPayload{static_cast<std::uint8_t>(anchor_),
                                         static_cast<std::uint8_t>(to), reason,
                                         static_cast<std::uint8_t>(cls)});
  }
  anchor_ = to;
}

RouteDecision LinkManager::route_bonded_video(const std::vector<int>& candidates,
                                              const net::Packet& p) {
  if (cfg_.policy == Policy::kLowLatency) {
    // Anchor everything on the fastest eligible path; re-anchor only when the
    // anchor left the candidate set or another path is decisively faster.
    const auto& cur = paths_[static_cast<std::size_t>(anchor_)];
    const bool anchor_ok =
        std::find(candidates.begin(), candidates.end(), anchor_) !=
        candidates.end();
    const int best = least_queued(candidates);
    if (!anchor_ok) {
      const std::uint8_t reason = cur.down       ? kReasonPathDown
                                  : cur.ho_flagged ? kReasonPredictedHo
                                                   : kReasonFasterPath;
      switch_anchor(best, reason, TrafficClass::kVideo);
    } else if (best != anchor_) {
      const double gain =
          effective_latency_ms(cur) -
          effective_latency_ms(paths_[static_cast<std::size_t>(best)]);
      if (gain > cfg_.switch_hysteresis.ms()) {
        const auto& dst = paths_[static_cast<std::size_t>(best)];
        switch_anchor(best,
                      dst.just_readmitted ? kReasonProbationEnd
                                          : kReasonFasterPath,
                      TrafficClass::kVideo);
      }
    }
    for (auto& st : paths_) st.just_readmitted = false;
    return {anchor_, -1};
  }

  // kBalanced / kHighReliability: capacity-weighted spray. The anchor tracks
  // the highest-capacity candidate (the reference point for preemption and
  // the forecast input), with switches published as the set shifts.
  int heavy = candidates.front();
  double heavy_cap = -1.0;
  for (const int i : candidates) {
    const double c =
        paths_[static_cast<std::size_t>(i)].path->current_capacity_mbps();
    if (c > heavy_cap) {
      heavy_cap = c;
      heavy = i;
    }
  }
  if (heavy != anchor_) {
    const auto& cur = paths_[static_cast<std::size_t>(anchor_)];
    const auto& dst = paths_[static_cast<std::size_t>(heavy)];
    const std::uint8_t reason = cur.down        ? kReasonPathDown
                                : cur.ho_flagged  ? kReasonPredictedHo
                                : dst.just_readmitted ? kReasonProbationEnd
                                                      : kReasonFasterPath;
    switch_anchor(heavy, reason, TrafficClass::kVideo);
  }
  for (auto& st : paths_) st.just_readmitted = false;

  const int primary = spray_pick(candidates);
  int dup = -1;
  if (cfg_.policy == Policy::kBalanced && p.keyframe &&
      p.kind == net::PacketKind::kRtpVideo && candidates.size() > 1) {
    // Selective duplication: keyframe loss costs a PLI round trip plus a
    // whole re-encoded IDR, so those packets ride two paths.
    std::vector<int> others;
    for (const int i : candidates) {
      if (i != primary) others.push_back(i);
    }
    dup = least_queued(others);
    ++duplicates_routed_;
  }
  return {primary, dup};
}

RouteDecision LinkManager::route_priority(TrafficClass cls,
                                          const std::vector<int>& candidates) {
  // C2 and telemetry never wait behind a video-bloated queue: they take the
  // least-queued eligible path, publishing kClassPreempt when that diverts
  // them away from a congested video anchor.
  const int primary = least_queued(candidates);
  const auto& anchor = paths_[static_cast<std::size_t>(anchor_)];
  const double anchor_q = anchor.path->queuing_delay_ms();
  const bool diverting =
      primary != anchor_ && anchor_q > cfg_.preempt_queue.ms();
  auto& flag = diverted_[static_cast<std::size_t>(cls)];
  if (diverting && !flag) {
    ++class_preemptions_;
    publish_preempt(cls, anchor_, primary, anchor_q);
  }
  flag = diverting;

  int dup = -1;
  if (cls == TrafficClass::kC2 &&
      (cfg_.policy == Policy::kHighReliability ||
       cfg_.policy == Policy::kBalanced)) {
    // C2 is the safety-critical stream: duplicate it across operators (the
    // reliability policies pay the few extra bytes; kLowLatency does not).
    std::vector<int> others;
    for (int i = 0; i < static_cast<int>(paths_.size()); ++i) {
      if (i != primary && !paths_[static_cast<std::size_t>(i)].down) {
        others.push_back(i);
      }
    }
    if (!others.empty()) {
      dup = least_queued(others);
      ++duplicates_routed_;
    }
  }
  return {primary, dup};
}

RouteDecision LinkManager::route(TrafficClass cls, const net::Packet& p) {
  rpv::validate(!paths_.empty(), "LinkManager: no paths registered");
  if (paths_.size() == 1) return {0, -1};
  if (!is_bonded(cfg_.policy)) return route_legacy(p);

  std::vector<int> candidates;
  refresh(candidates);
  if (cls == TrafficClass::kVideo) return route_bonded_video(candidates, p);
  return route_priority(cls, candidates);
}

void LinkManager::note_sent(int path, std::size_t bytes) {
  auto& p = paths_[static_cast<std::size_t>(path)];
  ++p.sent_packets;
  p.airtime_bytes += bytes;
  airtime_bytes_ += bytes;
}

void LinkManager::note_lost(int path) {
  auto& p = paths_[static_cast<std::size_t>(path)];
  ++p.lost_packets;
  p.loss_ewma += cfg_.loss_alpha * (1.0 - p.loss_ewma);
}

void LinkManager::note_delivered(int path) {
  auto& p = paths_[static_cast<std::size_t>(path)];
  ++p.delivered_packets;
  p.loss_ewma += cfg_.loss_alpha * (0.0 - p.loss_ewma);
}

PathCounters LinkManager::path_counters(int i) const {
  const auto& p = paths_[static_cast<std::size_t>(i)];
  PathCounters c;
  c.kind = p.path->kind();
  c.sent_packets = p.sent_packets;
  c.lost_packets = p.lost_packets;
  c.delivered_packets = p.delivered_packets;
  c.airtime_bytes = p.airtime_bytes;
  return c;
}

double LinkManager::max_loss_ewma() const {
  double worst = 0.0;
  for (const auto& p : paths_) {
    if (!p.down) worst = std::max(worst, p.loss_ewma);
  }
  return worst;
}

double LinkManager::best_capacity_mbps() const {
  double best = 0.0;
  for (const auto& p : paths_) {
    if (!p.down) best = std::max(best, p.path->current_capacity_mbps());
  }
  return best;
}

bool LinkManager::any_ho_armed() const {
  const auto now = sim_.now();
  for (const auto& p : paths_) {
    if (p.adapter != nullptr && p.adapter->ho_predictor().armed(now)) {
      return true;
    }
  }
  return false;
}

double LinkManager::anchor_forecast_mbps() const {
  const auto& p = paths_[static_cast<std::size_t>(anchor_)];
  if (p.adapter == nullptr || !p.adapter->forecast_ready()) return -1.0;
  return p.adapter->forecast_capacity_mbps();
}

void LinkManager::publish_preempt(TrafficClass cls, int from, int to,
                                  double queue_ms) {
  if (bus_ == nullptr || !bus_->wants(obs::EventKind::kClassPreempt)) return;
  bus_->publish(obs::Component::kBond, obs::EventKind::kClassPreempt, sim_.now(),
                obs::PreemptPayload{static_cast<std::uint8_t>(cls),
                                    static_cast<std::uint8_t>(from),
                                    static_cast<std::uint8_t>(to), queue_ms});
}

}  // namespace rpv::bond
