// LinkManager — owns the set of bonded paths of a session and decides, per
// packet, which path(s) carry it.
//
// Replaces the three hard-coded MultipathMode branches with named policies
// (see policy.hpp). The manager tracks per-path health (radio down/up, loss
// EWMA, queue depth, capacity), degrades gracefully as links fail — a dead
// path simply leaves the candidate set — and re-admits a recovered path only
// after a probation window so a flapping radio cannot drag traffic back and
// forth. Traffic is scheduled in three DSCP-style classes (C2 > telemetry >
// video): priority classes are diverted around a video-congested path, with
// kClassPreempt published on each diversion transition.
//
// Paths are heterogeneous (bond::BondablePath): cellular operator links,
// LEO satellite, aerial mesh. Latency ranking adds each path's fixed
// propagation floor to its standing queue delay, so C2 stays on the lowest-
// latency healthy path (cellular, until its queue exceeds the satellite
// floor) while capacity-weighted video spraying happily includes a
// high-capacity satellite path. Cellular floors are zero, so every
// cellular-only decision is bit-identical to the historical 2-path manager.
//
// Everything is deterministic: capacity-weighted spraying uses integer-free
// credit accounting, not randomness, so byte-identical reruns hold.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bond/bondable_path.hpp"
#include "bond/policy.hpp"
#include "cellular/cellular_link.hpp"
#include "net/packet.hpp"
#include "obs/event_sink.hpp"
#include "predict/proactive_adapter.hpp"
#include "sim/simulator.hpp"

namespace rpv::bond {

struct LinkManagerConfig {
  Policy policy = Policy::kDuplicate;
  // A recovered path carries traffic again only after staying up this long.
  sim::Duration probation = sim::Duration::seconds(1.0);
  // Per-path radio loss EWMA smoothing (feeds the FEC controller).
  double loss_alpha = 0.02;
  // kLowLatency only re-anchors when another path is this much faster.
  sim::Duration switch_hysteresis = sim::Duration::millis(2);
  // C2/telemetry divert around the video anchor once its standing queue
  // exceeds this.
  sim::Duration preempt_queue = sim::Duration::millis(20);
};

// Where to send one packet: the primary path index, plus an optional
// duplicate path (-1 = no duplication).
struct RouteDecision {
  int primary = 0;
  int duplicate = -1;
};

// Per-path outcome counters, exported into the report's path breakdown.
struct PathCounters {
  PathKind kind = PathKind::kCellular;
  std::uint64_t sent_packets = 0;
  std::uint64_t lost_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t airtime_bytes = 0;
};

class LinkManager {
 public:
  LinkManager(sim::Simulator& simulator, LinkManagerConfig cfg);

  // Register one cellular operator link (with its per-operator predictor,
  // may be null); an owned CellularPathAdapter bridges it onto the bonded
  // interface. Returns the path index. Paths are fixed for the session
  // lifetime.
  int add_path(cellular::CellularLink* link, predict::ProactiveAdapter* adapter);
  // Register any bonded path (satellite, mesh, ...). No predictor: only
  // cellular handovers are forecast today.
  int add_path(BondablePath* path);

  // Publish kPathSwitch / kClassPreempt onto the session's event stream.
  void attach_observer(obs::EventBus* bus) { bus_ = bus; }

  // Decide the path(s) for one outgoing packet. Legacy policies replicate
  // the MultipathMode semantics verbatim (over the first two paths); bonded
  // policies use the health-gated candidate machinery over any path count.
  RouteDecision route(TrafficClass cls, const net::Packet& p);

  // --- Outcome accounting (drives loss EWMAs and airtime) ---
  void note_sent(int path, std::size_t bytes);
  void note_lost(int path);       // copy died on the radio
  void note_delivered(int path);  // copy survived the radio

  [[nodiscard]] std::size_t path_count() const { return paths_.size(); }
  [[nodiscard]] BondablePath& path(int i) {
    return *paths_[static_cast<std::size_t>(i)].path;
  }
  [[nodiscard]] PathKind path_kind(int i) const {
    return paths_[static_cast<std::size_t>(i)].path->kind();
  }
  [[nodiscard]] PathCounters path_counters(int i) const;
  [[nodiscard]] double loss_ewma(int path) const {
    return paths_[static_cast<std::size_t>(path)].loss_ewma;
  }
  // Worst per-path loss EWMA among paths currently carrying traffic.
  [[nodiscard]] double max_loss_ewma() const;
  // Capacity of the best currently-usable path (FEC controller input).
  [[nodiscard]] double best_capacity_mbps() const;
  // True while any registered predictor has an armed handover prediction.
  [[nodiscard]] bool any_ho_armed() const;
  // Capacity forecast of the current video anchor path; < 0 if not ready.
  [[nodiscard]] double anchor_forecast_mbps() const;

  [[nodiscard]] std::uint64_t path_switches() const { return path_switches_; }
  [[nodiscard]] std::uint64_t class_preemptions() const {
    return class_preemptions_;
  }
  [[nodiscard]] std::uint64_t duplicates_routed() const {
    return duplicates_routed_;
  }
  [[nodiscard]] std::uint64_t airtime_bytes() const { return airtime_bytes_; }
  // Legacy kFailover switch counter (either direction), kept name-compatible
  // with MultipathSession::failover_events(). For bonded policies this counts
  // video-anchor switches.
  [[nodiscard]] std::uint64_t failover_events() const {
    return failover_events_;
  }
  [[nodiscard]] int active_path() const { return anchor_; }

 private:
  struct PathState {
    BondablePath* path = nullptr;
    predict::ProactiveAdapter* adapter = nullptr;
    bool down = false;
    bool in_probation = false;
    bool just_readmitted = false;  // left probation since the last route()
    bool ho_flagged = false;       // predictor says vacate this path
    sim::TimePoint probation_until = sim::TimePoint::origin();
    double loss_ewma = 0.0;
    double credit = 0.0;  // weighted-round-robin spray credit
    std::uint64_t sent_packets = 0;
    std::uint64_t lost_packets = 0;
    std::uint64_t delivered_packets = 0;
    std::uint64_t airtime_bytes = 0;
  };

  // Standing queue delay plus the path's fixed propagation floor: the
  // quantity latency-sensitive ranking compares across heterogeneous paths.
  [[nodiscard]] double effective_latency_ms(const PathState& p) const {
    return p.path->queuing_delay_ms() + p.path->base_latency_ms();
  }

  // Refresh down/probation/ho flags; fills `candidates` with the indices
  // eligible for new traffic (falls back to usable, then to all paths).
  void refresh(std::vector<int>& candidates);
  [[nodiscard]] int least_queued(const std::vector<int>& candidates) const;
  [[nodiscard]] int spray_pick(const std::vector<int>& candidates);
  RouteDecision route_legacy(const net::Packet& p);
  RouteDecision route_bonded_video(const std::vector<int>& candidates,
                                   const net::Packet& p);
  RouteDecision route_priority(TrafficClass cls,
                               const std::vector<int>& candidates);
  void switch_anchor(int to, std::uint8_t reason, TrafficClass cls);
  void publish_preempt(TrafficClass cls, int from, int to, double queue_ms);

  sim::Simulator& sim_;
  LinkManagerConfig cfg_;
  obs::EventBus* bus_ = nullptr;
  std::vector<PathState> paths_;
  // Adapters created by the cellular add_path overload.
  std::vector<std::unique_ptr<CellularPathAdapter>> owned_adapters_;

  int anchor_ = 0;  // current video path (kLowLatency / legacy kFailover)
  bool failover_on_b_ = false;  // legacy kFailover state
  // Per-class diversion state (kClassPreempt publishes on transitions only).
  bool diverted_[2] = {false, false};  // indexed by TrafficClass kC2/kTelemetry

  std::uint64_t path_switches_ = 0;
  std::uint64_t failover_events_ = 0;
  std::uint64_t class_preemptions_ = 0;
  std::uint64_t duplicates_routed_ = 0;
  std::uint64_t airtime_bytes_ = 0;
};

}  // namespace rpv::bond
