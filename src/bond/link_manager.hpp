// LinkManager — owns the set of operator links of a bonded session and
// decides, per packet, which link(s) carry it.
//
// Replaces the three hard-coded MultipathMode branches with named policies
// (see policy.hpp). The manager tracks per-path health (radio down/up, loss
// EWMA, queue depth, capacity), degrades gracefully as links fail — a dead
// path simply leaves the candidate set — and re-admits a recovered path only
// after a probation window so a flapping radio cannot drag traffic back and
// forth. Traffic is scheduled in three DSCP-style classes (C2 > telemetry >
// video): priority classes are diverted around a video-congested path, with
// kClassPreempt published on each diversion transition.
//
// Everything is deterministic: capacity-weighted spraying uses integer-free
// credit accounting, not randomness, so byte-identical reruns hold.
#pragma once

#include <cstdint>
#include <vector>

#include "bond/policy.hpp"
#include "cellular/cellular_link.hpp"
#include "net/packet.hpp"
#include "obs/event_sink.hpp"
#include "predict/proactive_adapter.hpp"
#include "sim/simulator.hpp"

namespace rpv::bond {

struct LinkManagerConfig {
  Policy policy = Policy::kDuplicate;
  // A recovered path carries traffic again only after staying up this long.
  sim::Duration probation = sim::Duration::seconds(1.0);
  // Per-path radio loss EWMA smoothing (feeds the FEC controller).
  double loss_alpha = 0.02;
  // kLowLatency only re-anchors when another path is this much faster.
  double switch_hysteresis_ms = 2.0;
  // C2/telemetry divert around the video anchor once its standing queue
  // exceeds this.
  double preempt_queue_ms = 20.0;
};

// Where to send one packet: the primary path index, plus an optional
// duplicate path (-1 = no duplication).
struct RouteDecision {
  int primary = 0;
  int duplicate = -1;
};

class LinkManager {
 public:
  LinkManager(sim::Simulator& simulator, LinkManagerConfig cfg);

  // Register one operator link (with its per-operator predictor, may be
  // null). Returns the path index. Paths are fixed for the session lifetime.
  int add_path(cellular::CellularLink* link, predict::ProactiveAdapter* adapter);

  // Publish kPathSwitch / kClassPreempt onto the session's event stream.
  void attach_observer(obs::EventBus* bus) { bus_ = bus; }

  // Decide the path(s) for one outgoing packet. Legacy policies replicate
  // the MultipathMode semantics verbatim (two-path); bonded policies use the
  // health-gated candidate machinery over any path count.
  RouteDecision route(TrafficClass cls, const net::Packet& p);

  // --- Outcome accounting (drives loss EWMAs and airtime) ---
  void note_sent(int path, std::size_t bytes);
  void note_lost(int path);       // copy died on the radio
  void note_delivered(int path);  // copy survived the radio

  [[nodiscard]] std::size_t path_count() const { return paths_.size(); }
  [[nodiscard]] double loss_ewma(int path) const {
    return paths_[static_cast<std::size_t>(path)].loss_ewma;
  }
  // Worst per-path loss EWMA among paths currently carrying traffic.
  [[nodiscard]] double max_loss_ewma() const;
  // Capacity of the best currently-usable path (FEC controller input).
  [[nodiscard]] double best_capacity_mbps() const;
  // True while any registered predictor has an armed handover prediction.
  [[nodiscard]] bool any_ho_armed() const;
  // Capacity forecast of the current video anchor path; < 0 if not ready.
  [[nodiscard]] double anchor_forecast_mbps() const;

  [[nodiscard]] std::uint64_t path_switches() const { return path_switches_; }
  [[nodiscard]] std::uint64_t class_preemptions() const {
    return class_preemptions_;
  }
  [[nodiscard]] std::uint64_t duplicates_routed() const {
    return duplicates_routed_;
  }
  [[nodiscard]] std::uint64_t airtime_bytes() const { return airtime_bytes_; }
  // Legacy kFailover switch counter (either direction), kept name-compatible
  // with MultipathSession::failover_events(). For bonded policies this counts
  // video-anchor switches.
  [[nodiscard]] std::uint64_t failover_events() const {
    return failover_events_;
  }
  [[nodiscard]] int active_path() const { return anchor_; }

 private:
  struct PathState {
    cellular::CellularLink* link = nullptr;
    predict::ProactiveAdapter* adapter = nullptr;
    bool down = false;
    bool in_probation = false;
    bool just_readmitted = false;  // left probation since the last route()
    bool ho_flagged = false;       // predictor says vacate this path
    sim::TimePoint probation_until = sim::TimePoint::origin();
    double loss_ewma = 0.0;
    double credit = 0.0;  // weighted-round-robin spray credit
    std::uint64_t sent_packets = 0;
    std::uint64_t lost_packets = 0;
    std::uint64_t delivered_packets = 0;
  };

  // Refresh down/probation/ho flags; fills `candidates` with the indices
  // eligible for new traffic (falls back to usable, then to all paths).
  void refresh(std::vector<int>& candidates);
  [[nodiscard]] int least_queued(const std::vector<int>& candidates) const;
  [[nodiscard]] int spray_pick(const std::vector<int>& candidates);
  RouteDecision route_legacy(const net::Packet& p);
  RouteDecision route_bonded_video(const std::vector<int>& candidates,
                                   const net::Packet& p);
  RouteDecision route_priority(TrafficClass cls,
                               const std::vector<int>& candidates);
  void switch_anchor(int to, std::uint8_t reason, TrafficClass cls);
  void publish_preempt(TrafficClass cls, int from, int to, double queue_ms);

  sim::Simulator& sim_;
  LinkManagerConfig cfg_;
  obs::EventBus* bus_ = nullptr;
  std::vector<PathState> paths_;

  int anchor_ = 0;  // current video path (kLowLatency / legacy kFailover)
  bool failover_on_b_ = false;  // legacy kFailover state
  // Per-class diversion state (kClassPreempt publishes on transitions only).
  bool diverted_[2] = {false, false};  // indexed by TrafficClass kC2/kTelemetry

  std::uint64_t path_switches_ = 0;
  std::uint64_t failover_events_ = 0;
  std::uint64_t class_preemptions_ = 0;
  std::uint64_t duplicates_routed_ = 0;
  std::uint64_t airtime_bytes_ = 0;
};

}  // namespace rpv::bond
