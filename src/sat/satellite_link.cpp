#include "sat/satellite_link.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/event.hpp"
#include "sim/validate.hpp"

namespace rpv::sat {

SatelliteLink::SatelliteLink(sim::Simulator& simulator, SatelliteLinkConfig cfg,
                             sim::Rng rng)
    : sim_{simulator}, cfg_{cfg}, rng_{rng} {
  rpv::validate(cfg_.capacity_mbps > 0.0,
                "SatelliteLink: capacity_mbps must be positive");
  rpv::validate(cfg_.base_owd >= sim::Duration::zero(),
                "SatelliteLink: base_owd must be non-negative");
  rpv::validate(cfg_.pass_interval > sim::Duration::zero(),
                "SatelliteLink: pass_interval must be positive");
  rpv::validate(cfg_.outage_mean_gap > sim::Duration::zero(),
                "SatelliteLink: outage_mean_gap must be positive");
  rpv::validate(cfg_.outage_mean_duration > sim::Duration::zero(),
                "SatelliteLink: outage_mean_duration must be positive");
}

void SatelliteLink::start(sim::Duration horizon) {
  rpv::validate(!started_, "SatelliteLink: start() called twice");
  started_ = true;
  const auto t0 = sim_.now();
  const auto until = t0 + horizon;

  // Pass handovers first, then outages — one fixed sampling order so the
  // schedule is a pure function of the forked seed (fault::FaultSchedule
  // discipline; byte-identical for any --jobs).
  const double pass_interval_sec = cfg_.pass_interval.sec();
  for (double at = pass_interval_sec;; at += pass_interval_sec) {
    const auto start = t0 + sim::Duration::seconds(at);
    if (start >= until) break;
    double gap_ms = cfg_.pass_interruption.ms();
    if (cfg_.pass_interruption_jitter > sim::Duration::zero()) {
      gap_ms += std::abs(rng_.normal(0.0, cfg_.pass_interruption_jitter.ms()));
    }
    passes_.push_back({start, start + sim::Duration::seconds(gap_ms / 1e3)});
  }
  double at = rng_.exponential(cfg_.outage_mean_gap.sec());
  while (at < horizon.sec()) {
    const double dur = rng_.exponential(cfg_.outage_mean_duration.sec());
    const bool hard = rng_.uniform() < cfg_.obstruction_fraction;
    SatOutageWindow w;
    w.start = t0 + sim::Duration::seconds(at);
    w.end = w.start + sim::Duration::seconds(dur);
    w.hard = hard;
    w.residual = hard ? 0.0 : cfg_.rain_fade_residual;
    outages_.push_back(w);
    at += dur + rng_.exponential(cfg_.outage_mean_gap.sec());
  }

  for (std::size_t i = 0; i < passes_.size(); ++i) {
    const auto& w = passes_[i];
    sim_.schedule_at(w.start, [this, i] {
      ++pass_handovers_;
      const auto& p = passes_[i];
      if (bus_ != nullptr && bus_->wants(obs::EventKind::kSatPassHo)) {
        bus_->publish(obs::Component::kSat, obs::EventKind::kSatPassHo,
                      sim_.now(),
                      obs::SatPassPayload{static_cast<std::uint32_t>(i),
                                          (p.end - p.start).us()});
      }
    });
  }
  for (const auto& w : outages_) {
    const obs::SatOutagePayload payload{
        static_cast<std::uint8_t>(w.hard ? 0 : 1), (w.end - w.start).us(),
        w.residual};
    sim_.schedule_at(w.start, [this, payload] {
      ++obstructions_;
      outage_ms_ += static_cast<double>(payload.duration_us) / 1000.0;
      if (bus_ != nullptr &&
          bus_->wants(obs::EventKind::kSatObstructionStart)) {
        bus_->publish(obs::Component::kSat,
                      obs::EventKind::kSatObstructionStart, sim_.now(),
                      payload);
      }
    });
    sim_.schedule_at(w.end, [this, payload] {
      if (bus_ != nullptr && bus_->wants(obs::EventKind::kSatObstructionEnd)) {
        bus_->publish(obs::Component::kSat, obs::EventKind::kSatObstructionEnd,
                      sim_.now(), payload);
      }
    });
  }
}

bool SatelliteLink::in_unavailable_window(sim::TimePoint t) const {
  for (const auto& w : passes_) {
    if (t >= w.start && t < w.end) return true;
  }
  for (const auto& w : outages_) {
    if (w.hard && t >= w.start && t < w.end) return true;
  }
  return false;
}

double SatelliteLink::capacity_multiplier(sim::TimePoint t) const {
  for (const auto& w : passes_) {
    if (t >= w.start && t < w.end) return 0.0;
  }
  for (const auto& w : outages_) {
    if (t >= w.start && t < w.end) return w.residual;
  }
  return 1.0;
}

bool SatelliteLink::link_down() const {
  return in_unavailable_window(sim_.now());
}

double SatelliteLink::current_capacity_mbps() const {
  return cfg_.capacity_mbps * capacity_multiplier(sim_.now());
}

double SatelliteLink::queuing_delay_ms() const {
  const auto busy = std::max(busy_until_up_, sim_.now());
  return (busy - sim_.now()).sec() * 1e3;
}

void SatelliteLink::lose(const net::Packet& p) {
  ++radio_losses_;
  if (on_loss_) on_loss_(p);
}

void SatelliteLink::send(net::Packet p, DeliverFn deliver, bool uplink) {
  const auto now = sim_.now();
  if (in_unavailable_window(now)) {
    lose(p);
    return;
  }
  if (cfg_.loss_probability > 0.0 && rng_.chance(cfg_.loss_probability)) {
    lose(p);
    return;
  }
  // Serialize at the effective rate (rain fade slows, never stops, the
  // in-service packet — same floor discipline as the cellular fade model).
  const double rate_mbps =
      cfg_.capacity_mbps * std::max(capacity_multiplier(now), 0.05);
  const double ser_sec =
      static_cast<double>(p.size_bytes) * 8.0 / (rate_mbps * 1e6);
  auto& busy = uplink ? busy_until_up_ : busy_until_down_;
  const auto start = std::max(busy, now);
  const auto done = start + sim::Duration::seconds(ser_sec);
  busy = done;
  double extra_ms = cfg_.base_owd.ms();
  if (cfg_.jitter > sim::Duration::zero()) {
    extra_ms += std::abs(rng_.normal(0.0, cfg_.jitter.ms()));
  }
  auto delivery = done + sim::Duration::seconds(extra_ms / 1e3);
  // A copy in flight when the beam drops is gone with it.
  if (in_unavailable_window(delivery)) {
    lose(p);
    return;
  }
  auto& last = uplink ? last_up_delivery_ : last_down_delivery_;
  delivery = std::max(delivery, last);  // in-order delivery per direction
  last = delivery;
  sim_.schedule_at(delivery,
                   [p = std::move(p), deliver = std::move(deliver)]() mutable {
                     deliver(std::move(p));
                   });
}

void SatelliteLink::send_uplink(net::Packet p, DeliverFn deliver) {
  send(std::move(p), std::move(deliver), /*uplink=*/true);
}

void SatelliteLink::send_downlink(net::Packet p, DeliverFn deliver) {
  send(std::move(p), std::move(deliver), /*uplink=*/false);
}

}  // namespace rpv::sat
