#include "sat/mesh_link.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/validate.hpp"

namespace rpv::sat {

MeshHopLink::MeshHopLink(sim::Simulator& simulator, MeshLinkConfig cfg,
                         sim::Rng rng)
    : sim_{simulator}, cfg_{cfg}, rng_{rng} {
  rpv::validate(cfg_.hops >= 1, "MeshHopLink: hops must be >= 1");
  rpv::validate(cfg_.capacity_mbps > 0.0,
                "MeshHopLink: capacity_mbps must be positive");
  rpv::validate(cfg_.per_hop_loss >= 0.0 && cfg_.per_hop_loss < 1.0,
                "MeshHopLink: per_hop_loss must be in [0, 1)");
}

double MeshHopLink::queuing_delay_ms() const {
  const auto busy = std::max(busy_until_up_, sim_.now());
  return (busy - sim_.now()).sec() * 1e3;
}

void MeshHopLink::send(net::Packet p, DeliverFn deliver, bool uplink) {
  // Loss compounds per hop: one independent trial per relay.
  const double e2e_loss = 1.0 - std::pow(1.0 - cfg_.per_hop_loss, cfg_.hops);
  if (e2e_loss > 0.0 && rng_.chance(e2e_loss)) {
    ++radio_losses_;
    if (on_loss_) on_loss_(p);
    return;
  }
  const double ser_sec =
      static_cast<double>(p.size_bytes) * 8.0 / (cfg_.capacity_mbps * 1e6);
  auto& busy = uplink ? busy_until_up_ : busy_until_down_;
  const auto start = std::max(busy, sim_.now());
  const auto done = start + sim::Duration::seconds(ser_sec);
  busy = done;
  // Latency compounds per hop too; jitter accumulates as independent
  // half-normals (store-and-forward queues only ever add delay).
  double extra_ms = base_latency_ms();
  if (cfg_.per_hop_jitter > sim::Duration::zero()) {
    for (int h = 0; h < cfg_.hops; ++h) {
      extra_ms += std::abs(rng_.normal(0.0, cfg_.per_hop_jitter.ms()));
    }
  }
  auto delivery = done + sim::Duration::seconds(extra_ms / 1e3);
  auto& last = uplink ? last_up_delivery_ : last_down_delivery_;
  delivery = std::max(delivery, last);
  last = delivery;
  sim_.schedule_at(delivery,
                   [p = std::move(p), deliver = std::move(deliver)]() mutable {
                     deliver(std::move(p));
                   });
}

void MeshHopLink::send_uplink(net::Packet p, DeliverFn deliver) {
  send(std::move(p), std::move(deliver), /*uplink=*/true);
}

void MeshHopLink::send_downlink(net::Packet p, DeliverFn deliver) {
  send(std::move(p), std::move(deliver), /*uplink=*/false);
}

}  // namespace rpv::sat
