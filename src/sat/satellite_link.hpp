// rpv::sat — LEO satellite path model.
//
// Models the third, orthogonal-failure-mode link of 3-way multi-connectivity
// (ROADMAP item 4): a Starlink-class LEO bearer with high capacity, a fixed
// ~27 ms propagation floor plus per-packet jitter, deterministic
// satellite-pass handovers on a ~15 s cadence (each a short interruption,
// the constellation reconfiguration the "Vertical Look" measurements show),
// and an obstruction / rain-fade outage process. All stochastic structure —
// pass interruption lengths, outage window placement — is pre-sampled at
// start() from the link's own forked Rng in one fixed order, the same
// discipline as fault::FaultSchedule, so a run is byte-identical for any
// --jobs value and the outage windows can be exported for stall attribution.
//
// The link implements bond::BondablePath natively: packets serialize through
// a busy-until queue per direction, ride the propagation floor + jitter, and
// are dropped (with the loss callback fired) when the bearer is down at send
// time or the delivery would land inside a hard outage or pass interruption.
#pragma once

#include <cstdint>
#include <vector>

#include "bond/bondable_path.hpp"
#include "net/packet.hpp"
#include "obs/event_sink.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace rpv::sat {

struct SatelliteLinkConfig {
  // Bearer capacity, shared by both directions (each direction serializes
  // against its own busy-until horizon at the full rate, like the cellular
  // model's independent up/down paths).
  double capacity_mbps = 40.0;
  // One-way propagation + gateway floor (LEO bent-pipe ~25-30 ms).
  sim::Duration base_owd = sim::Duration::millis(27);
  // Per-packet delivery jitter sigma (half-normal, added to the floor).
  sim::Duration jitter = sim::Duration::millis(3);
  // Residual per-packet loss when the bearer is up.
  double loss_probability = 2e-4;

  // Satellite-pass handovers: deterministic cadence, sampled interruption.
  sim::Duration pass_interval = sim::Duration::seconds(15.0);
  sim::Duration pass_interruption = sim::Duration::millis(150);
  sim::Duration pass_interruption_jitter = sim::Duration::millis(60);

  // Obstruction / rain-fade outage process: exponential gaps and durations.
  sim::Duration outage_mean_gap = sim::Duration::seconds(45.0);
  sim::Duration outage_mean_duration = sim::Duration::seconds(2.0);
  // Fraction of outages that are hard obstructions (bearer down); the rest
  // are rain fades (capacity multiplied by rain_fade_residual, bearer up).
  double obstruction_fraction = 0.7;
  double rain_fade_residual = 0.25;
};

// One pre-sampled outage window, exported for stall attribution.
struct SatOutageWindow {
  sim::TimePoint start;
  sim::TimePoint end;
  bool hard = true;  // true = obstruction (down), false = rain fade
  double residual = 0.0;  // capacity multiplier while active
};

// One pre-sampled satellite-pass handover.
struct SatPassWindow {
  sim::TimePoint start;
  sim::TimePoint end;  // start + sampled interruption
};

class SatelliteLink final : public bond::BondablePath {
 public:
  SatelliteLink(sim::Simulator& simulator, SatelliteLinkConfig cfg,
                sim::Rng rng);

  // Pre-sample passes and outages over [now, now + horizon] and schedule
  // their obs events. Call once, before the first packet.
  void start(sim::Duration horizon);

  void attach_observer(obs::EventBus* bus) { bus_ = bus; }

  // --- bond::BondablePath ---
  [[nodiscard]] bond::PathKind kind() const override {
    return bond::PathKind::kSatellite;
  }
  void send_uplink(net::Packet p, DeliverFn deliver) override;
  void send_downlink(net::Packet p, DeliverFn deliver) override;
  void set_loss_callback(LossFn fn) override { on_loss_ = std::move(fn); }
  [[nodiscard]] bool link_down() const override;
  [[nodiscard]] double current_capacity_mbps() const override;
  [[nodiscard]] double queuing_delay_ms() const override;
  [[nodiscard]] double base_latency_ms() const override {
    return cfg_.base_owd.ms();
  }

  // --- Report inputs ---
  [[nodiscard]] std::uint64_t pass_handovers() const { return pass_handovers_; }
  [[nodiscard]] std::uint64_t obstructions() const { return obstructions_; }
  [[nodiscard]] double outage_ms() const { return outage_ms_; }
  [[nodiscard]] std::uint64_t radio_losses() const { return radio_losses_; }
  [[nodiscard]] const std::vector<SatOutageWindow>& outage_windows() const {
    return outages_;
  }
  [[nodiscard]] const std::vector<SatPassWindow>& pass_windows() const {
    return passes_;
  }
  // True if `t` falls inside any hard outage or pass interruption (the
  // windows a satellite-attributed stall overlaps).
  [[nodiscard]] bool in_unavailable_window(sim::TimePoint t) const;

 private:
  void send(net::Packet p, DeliverFn deliver, bool uplink);
  void lose(const net::Packet& p);
  // Capacity multiplier in effect at `t` (0 while hard-down).
  [[nodiscard]] double capacity_multiplier(sim::TimePoint t) const;

  sim::Simulator& sim_;
  SatelliteLinkConfig cfg_;
  sim::Rng rng_;
  obs::EventBus* bus_ = nullptr;
  LossFn on_loss_;
  bool started_ = false;

  std::vector<SatPassWindow> passes_;
  std::vector<SatOutageWindow> outages_;

  sim::TimePoint busy_until_up_;
  sim::TimePoint busy_until_down_;
  sim::TimePoint last_up_delivery_;    // in-order delivery per direction
  sim::TimePoint last_down_delivery_;

  std::uint64_t pass_handovers_ = 0;
  std::uint64_t obstructions_ = 0;
  double outage_ms_ = 0.0;
  std::uint64_t radio_losses_ = 0;
};

}  // namespace rpv::sat
