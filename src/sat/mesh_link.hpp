// Aerial-mesh relay path: a UAV-to-UAV (or UAV-to-ground-relay) multi-hop
// chain. Deliberately lightweight — per-hop latency and loss compound with
// the hop count taken from scenario geometry, capacity is the thin shared
// air-to-air channel — because the interesting dynamics (scheduling around
// it) live in the LinkManager, not in the mesh itself.
#pragma once

#include <cstdint>

#include "bond/bondable_path.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace rpv::sat {

struct MeshLinkConfig {
  // Relay chain length, from scenario geometry (rural corridor: more hops).
  int hops = 3;
  sim::Duration per_hop_latency = sim::Duration::millis(8);
  sim::Duration per_hop_jitter = sim::Duration::millis(2);
  // Per-hop packet loss; end-to-end loss is 1 - (1 - p)^hops.
  double per_hop_loss = 0.004;
  // End-to-end capacity of the chain (half-duplex air-to-air is thin).
  double capacity_mbps = 12.0;
};

class MeshHopLink final : public bond::BondablePath {
 public:
  MeshHopLink(sim::Simulator& simulator, MeshLinkConfig cfg, sim::Rng rng);

  // --- bond::BondablePath ---
  [[nodiscard]] bond::PathKind kind() const override {
    return bond::PathKind::kMesh;
  }
  void send_uplink(net::Packet p, DeliverFn deliver) override;
  void send_downlink(net::Packet p, DeliverFn deliver) override;
  void set_loss_callback(LossFn fn) override { on_loss_ = std::move(fn); }
  [[nodiscard]] bool link_down() const override { return false; }
  [[nodiscard]] double current_capacity_mbps() const override {
    return cfg_.capacity_mbps;
  }
  [[nodiscard]] double queuing_delay_ms() const override;
  [[nodiscard]] double base_latency_ms() const override {
    return cfg_.per_hop_latency.ms() * cfg_.hops;
  }

  [[nodiscard]] std::uint64_t radio_losses() const { return radio_losses_; }

 private:
  void send(net::Packet p, DeliverFn deliver, bool uplink);

  sim::Simulator& sim_;
  MeshLinkConfig cfg_;
  sim::Rng rng_;
  LossFn on_loss_;

  sim::TimePoint busy_until_up_;
  sim::TimePoint busy_until_down_;
  sim::TimePoint last_up_delivery_;
  sim::TimePoint last_down_delivery_;
  std::uint64_t radio_losses_ = 0;
};

}  // namespace rpv::sat
