// Wrap-aware 16-bit RTP sequence number arithmetic (RFC 3550 semantics).
#pragma once

#include <cstdint>

namespace rpv::rtp {

// Signed distance a - b in sequence space, correct across wrap.
inline int seq_diff(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(a - b));
}

inline bool seq_newer(std::uint16_t a, std::uint16_t b) { return seq_diff(a, b) > 0; }

// Extends 16-bit sequence numbers to monotone 64-bit values. Robust against
// reordering around the wrap point: out-of-order packets are mapped relative
// to the highest value seen without perturbing the internal state.
class SeqUnwrapper {
 public:
  std::int64_t unwrap(std::uint16_t seq) {
    if (!any_) {
      any_ = true;
      highest_unwrapped_ = seq;
      highest_seq16_ = seq;
      return highest_unwrapped_;
    }
    const int d = seq_diff(seq, highest_seq16_);
    const std::int64_t v = highest_unwrapped_ + d;
    if (d > 0) {
      highest_unwrapped_ = v;
      highest_seq16_ = seq;
    }
    return v;
  }

  [[nodiscard]] bool started() const { return any_; }
  [[nodiscard]] std::int64_t highest() const { return highest_unwrapped_; }

 private:
  bool any_ = false;
  std::int64_t highest_unwrapped_ = 0;
  std::uint16_t highest_seq16_ = 0;
};

}  // namespace rpv::rtp
