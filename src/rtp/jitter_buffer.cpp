#include <cstdio>
#include "rtp/jitter_buffer.hpp"

#include <algorithm>

#include "rtp/sequence.hpp"

namespace rpv::rtp {

JitterBuffer::JitterBuffer(sim::Simulator& simulator, JitterBufferConfig cfg,
                           ReleaseFn release)
    : sim_{simulator}, cfg_{cfg}, release_{std::move(release)} {}

sim::TimePoint JitterBuffer::deadline_of(const PendingFrame& f) const {
  return f.rtp_timestamp + base_offset_ + extra_offset_ + cfg_.latency;
}

double JitterBuffer::extra_offset_ms() const { return extra_offset_.ms(); }

std::size_t JitterBuffer::find_frame(std::uint32_t frame_id) const {
  const auto it = std::lower_bound(
      frames_.begin(), frames_.end(), frame_id,
      [](const auto& e, std::uint32_t id) { return e.first < id; });
  return static_cast<std::size_t>(it - frames_.begin());
}

void JitterBuffer::destroy_frame(std::uint32_t pool_idx) {
  PendingFrame& f = frame_pool_[pool_idx];
  f.received.clear();
  seq_cache_.push_back(std::move(f.received));
  frame_pool_.release(pool_idx);  // ~PendingFrame cancels its timer
}

void JitterBuffer::on_packet(const net::Packet& p) {
  const auto now = sim_.now();
  const std::int64_t seq = unwrapper_.unwrap(p.rtp_seq);

  // Packets for frames already delivered or abandoned arrive too late.
  if (static_cast<std::int64_t>(p.frame_id) <= last_delivered_frame_) {
    ++late_packets_;
    return;
  }

  if (!offset_valid_) {
    base_offset_ = now - p.rtp_timestamp;
    offset_valid_ = true;
  }

  // Large sequence jump (sender-side queue discard): resync the timeline to
  // the new packet. Whatever delay the stream carries at that moment is
  // folded into extra_offset_, which then only decays slowly — the elevated
  // playback-latency plateau of §4.2.2.
  if (any_seq_ && seq > highest_seq_ + cfg_.resync_gap_packets) {
    const auto fresh = now - p.rtp_timestamp;
    if (fresh > base_offset_ + extra_offset_) {
      // Gap followed by *delayed* packets: a bufferbloat drain after loss.
      // The timeline follows the observed delay.
      extra_offset_ = fresh - base_offset_;
    } else {
      // Gap followed by *prompt* packets: a sender-side queue flush (SCReAM
      // discard). The jitter buffer re-synchronizes its clock mapping and
      // playback holds at an elevated latency for a while — the ~1 s
      // plateaus the paper observes with SCReAM in the urban tests.
      extra_offset_ = std::max(extra_offset_, cfg_.resync_stall);
    }
    ++resyncs_;
  }
  if (!any_seq_ || seq > highest_seq_) highest_seq_ = seq;
  any_seq_ = true;

  const std::size_t fpos = find_frame(p.frame_id);
  if (fpos == frames_.size() || frames_[fpos].first != p.frame_id) {
    const std::uint32_t idx = frame_pool_.acquire();
    PendingFrame& nf = frame_pool_[idx];
    if (!seq_cache_.empty()) {
      nf.received = std::move(seq_cache_.back());
      seq_cache_.pop_back();
    }
    nf.rtp_timestamp = p.rtp_timestamp;
    nf.min_seq = seq;
    nf.max_seq = seq;
    frames_.insert(frames_.begin() + static_cast<std::ptrdiff_t>(fpos),
                   {p.frame_id, idx});
  }
  PendingFrame& f = frame_pool_[frames_[fpos].second];
  f.min_seq = std::min(f.min_seq, seq);
  f.max_seq = std::max(f.max_seq, seq);
  f.last_arrival = now;
  const auto pos = std::lower_bound(f.received.begin(), f.received.end(), seq);
  if (pos == f.received.end() || *pos != seq) f.received.insert(pos, seq);
  if (p.frame_last) {
    f.marker_seq = seq;
    f.has_marker = true;
  }

  if (!f.timer.pending()) {
    const auto fire_at = std::max(deadline_of(f), now);
    const std::uint32_t id = p.frame_id;
    f.timer =
        sim_.schedule_timer_at(fire_at, [this, id] { try_release(id, true); });
  }

  try_release(p.frame_id, false);
  // New packets may be the loss evidence an older pending frame waits for.
  if (!frames_.empty() && frames_.front().first < p.frame_id) {
    try_release(frames_.front().first, false);
  }
}

void JitterBuffer::try_release(std::uint32_t frame_id, bool timer_fired) {
  const std::size_t pos = find_frame(frame_id);
  if (pos == frames_.size() || frames_[pos].first != frame_id) return;
  PendingFrame& f = frame_pool_[frames_[pos].second];
  const auto now = sim_.now();
  const auto deadline = deadline_of(f);

  // Head of the frame: inferred from the previous frame's marker when the
  // frames are contiguous, otherwise the smallest sequence we saw.
  const std::int64_t first_seq =
      (have_expected_next_ && expected_next_seq_ <= f.min_seq &&
       f.min_seq - expected_next_seq_ < cfg_.resync_gap_packets)
          ? expected_next_seq_
          : f.min_seq;

  const bool know_extent = f.has_marker;
  const std::int64_t expected = know_extent ? f.marker_seq - first_seq + 1 : 0;
  const bool complete =
      know_extent && static_cast<std::int64_t>(f.received.size()) >= expected;

  if (complete) {
    if (now < deadline) {
      // The deadline may have moved (resync raised the offset) after the
      // timer was armed: re-arm at the current deadline.
      if (timer_fired) {
        f.timer = sim_.schedule_timer_at(
            deadline, [this, frame_id] { try_release(frame_id, true); });
      }
      return;
    }
    // Strictly in-order release: a complete frame waits for older pending
    // frames to resolve (conceal or time out) first.
    if (!frames_.empty() && frames_.front().first < frame_id) {
      if (timer_fired) {
        f.timer = sim_.schedule_timer_in(
            sim::Duration::millis(5),
            [this, frame_id] { try_release(frame_id, true); });
      }
      return;
    }
    release_frame(frame_id, f, false);
    return;
  }

  // Incomplete. The uplink delivers in order, so packets newer than this
  // frame's highest arriving means the missing ones were genuinely lost;
  // a short grace absorbs residual reordering across the WAN.
  const bool overtaken = highest_seq_ > f.max_seq;
  const bool quiescent = now - f.last_arrival >= cfg_.reorder_wait;
  const bool evidence = overtaken && quiescent &&
                        now >= deadline + cfg_.incomplete_grace;
  const bool timed_out = now >= deadline + cfg_.hard_timeout;
  if (evidence || timed_out) {
    release_frame(frame_id, f, true);
    return;
  }

  if (timer_fired) {
    // Keep polling: next decision point is the grace boundary, then
    // quiescence, then the hard timeout. Packet arrivals re-evaluate earlier.
    auto next = deadline + cfg_.hard_timeout;
    if (now < deadline + cfg_.incomplete_grace) {
      next = deadline + cfg_.incomplete_grace;
    } else if (overtaken && !quiescent) {
      next = f.last_arrival + cfg_.reorder_wait;
    }
    f.timer = sim_.schedule_timer_at(
        std::max(next, now + sim::Duration::millis(1)),
        [this, frame_id] { try_release(frame_id, true); });
  }
}

void JitterBuffer::release_frame(std::uint32_t frame_id, PendingFrame& f,
                                 bool corrupted) {
#ifdef RPV_JB_DEBUG
  static int dbg = 0;
  if (corrupted && dbg < 15 && sim_.now().sec() > 60) {
    ++dbg;
    std::fprintf(stderr,
                 "[jb] corrupt frame=%u recv=%zu min=%lld max=%lld marker=%lld exp_next=%lld "
                 "highest=%lld now=%.1f deadline=%.1f\n",
                 frame_id, f.received.size(), (long long)f.min_seq, (long long)f.max_seq,
                 (long long)f.marker_seq, (long long)expected_next_seq_,
                 (long long)highest_seq_, sim_.now().ms(), deadline_of(f).ms());
  }
#endif
  f.timer.cancel();

  FrameReleaseEvent ev;
  ev.frame_id = frame_id;
  ev.release_time = sim_.now();
  ev.rtp_timestamp = f.rtp_timestamp;
  ev.corrupted = corrupted;
  ev.packets_received = static_cast<int>(f.received.size());
  ev.packets_expected =
      f.has_marker ? static_cast<int>(f.marker_seq - f.min_seq + 1) : 0;
  if (f.has_marker) {
    expected_next_seq_ = f.marker_seq + 1;
    have_expected_next_ = true;
  }
  last_delivered_frame_ =
      std::max<std::int64_t>(last_delivered_frame_, frame_id);

  // Frames older than the one being released can no longer be played in
  // order; flush them. f lives in the pool, so its address survives the
  // index mutations below.
  std::size_t n_older = 0;
  while (n_older < frames_.size() && frames_[n_older].first < frame_id) {
    destroy_frame(frames_[n_older].second);
    ++n_older;
    ++dropped_;
  }
  frames_.erase(frames_.begin(),
                frames_.begin() + static_cast<std::ptrdiff_t>(n_older));

  const bool drop = cfg_.drop_on_latency &&
                    sim_.now() > deadline_of(f) + cfg_.incomplete_grace;
  const std::size_t pos = find_frame(frame_id);
  if (pos < frames_.size() && frames_[pos].first == frame_id) {
    destroy_frame(frames_[pos].second);
    frames_.erase(frames_.begin() + static_cast<std::ptrdiff_t>(pos));
  }

  // On-time deliveries let the resync plateau decay.
  extra_offset_ = extra_offset_ * (1.0 - cfg_.offset_decay);
  if (extra_offset_ < sim::Duration::millis(1)) extra_offset_ = sim::Duration::zero();

  // A newer complete frame may be waiting on this release; poke it.
  if (!frames_.empty()) {
    const std::uint32_t next = frames_.front().first;
    sim_.schedule_in(sim::Duration::micros(1),
                     [this, next] { try_release(next, true); });
  }

  if (drop) {
    ++dropped_;
    return;
  }
  ++released_;
  release_(ev);
}

}  // namespace rpv::rtp
