#include "rtp/packetizer.hpp"

namespace rpv::rtp {

std::vector<net::Packet> Packetizer::packetize(const video::Frame& frame) {
  std::vector<net::Packet> out;
  packetize(frame, out);
  return out;
}

void Packetizer::packetize(const video::Frame& frame,
                           std::vector<net::Packet>& out) {
  out.clear();
  const std::size_t payload = cfg_.mtu_payload_bytes;
  const std::size_t n = frame.size_bytes == 0 ? 1 : (frame.size_bytes + payload - 1) / payload;
  out.reserve(n);
  std::size_t remaining = frame.size_bytes;
  for (std::size_t i = 0; i < n; ++i) {
    net::Packet p;
    p.id = next_id_++;
    p.kind = net::PacketKind::kRtpVideo;
    const std::size_t chunk = remaining > payload ? payload : remaining;
    p.size_bytes = chunk + cfg_.header_overhead_bytes;
    remaining -= chunk;
    p.rtp_seq = rtp_seq_++;
    p.transport_seq = transport_seq_++;
    p.frame_id = frame.id;
    p.frame_last = (i + 1 == n);
    p.keyframe = frame.keyframe;
    p.rtp_timestamp = frame.capture_time;
    out.push_back(p);
  }
}

}  // namespace rpv::rtp
