// RTCP congestion-control feedback formats.
//
// The paper's two CC algorithms use different RTCP extensions:
//  * GCC consumes transport-wide-CC feedback
//    (draft-holmer-rmcat-transport-wide-cc-extensions-01): the receiver
//    reports the arrival time of every transport sequence number since the
//    previous report;
//  * SCReAM consumes RFC 8888 congestion control feedback: reports are
//    generated on a fixed clock (10 ms in the Ericsson library) and cover
//    the packet with the highest received sequence number plus a *bounded
//    window* of preceding packets. At rates above ~7 Mbps more packets
//    arrive between two reports than the default 64-packet window covers,
//    so received packets go unacknowledged and SCReAM misreads them as
//    lost — the pathology of §4.2.1. The window is configurable (64 or the
//    paper's mitigation, 256).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "rtp/sequence.hpp"
#include "sim/time.hpp"

namespace rpv::rtp {

struct PacketResult {
  std::uint16_t transport_seq = 0;
  bool received = false;
  sim::TimePoint arrival;  // valid when received
};

struct FeedbackReport {
  sim::TimePoint generated;
  std::vector<PacketResult> results;  // ascending transport_seq
  // PLI-style keyframe-recovery request (may ride on an otherwise empty
  // report: the static baseline has no CC feedback but still recovers).
  bool keyframe_request = false;
};

// Receiver-side collector for transport-wide-CC feedback (GCC).
class TwccCollector {
 public:
  void on_packet(std::uint16_t transport_seq, sim::TimePoint arrival);

  // Build a report covering everything received since the last report,
  // including explicit "lost" entries for gaps.
  [[nodiscard]] FeedbackReport build_report(sim::TimePoint now);
  [[nodiscard]] bool has_data() const { return !pending_.empty(); }

 private:
  // Arrivals since the last report, in arrival order (the first arrival wins
  // for a duplicated seq). Kept flat — one push_back per packet — and ranged
  // over in build_report via the tracked min/max; this is the receive-side
  // per-packet hot path.
  std::vector<std::pair<std::int64_t, sim::TimePoint>> pending_;
  std::int64_t min_pending_ = 0;
  std::int64_t max_pending_ = -1;
  std::int64_t last_reported_ = -1;
  SeqUnwrapper unwrapper_;
};

// Receiver-side collector for RFC 8888 feedback (SCReAM).
class Rfc8888Collector {
 public:
  explicit Rfc8888Collector(int ack_window = 64) : ack_window_{ack_window} {}

  void on_packet(std::uint16_t transport_seq, sim::TimePoint arrival);

  // Report covering [highest - window + 1, highest]: the bounded window is
  // what loses acknowledgments at high rates (see file comment).
  [[nodiscard]] FeedbackReport build_report(sim::TimePoint now) const;
  [[nodiscard]] bool has_data() const { return any_seen_; }
  [[nodiscard]] int ack_window() const { return ack_window_; }

 private:
  int ack_window_;
  std::map<std::int64_t, sim::TimePoint> arrivals_;  // unwrapped seq -> arrival
  std::int64_t highest_ = -1;
  bool any_seen_ = false;
  SeqUnwrapper unwrapper_;
};

}  // namespace rpv::rtp
