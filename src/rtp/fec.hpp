// XOR forward error correction (ULPFEC-style single-parity groups).
//
// The paper's reference [9] shows real-time UAV video over cellular using
// FEC with multipath to survive losses; Section 5 lists it among the pipeline
// improvements. Every `group_size` media packets the encoder emits one
// parity packet whose XOR covers the group — the decoder can rebuild any
// SINGLE missing packet of a group once the parity and the other members
// have arrived. The cost is a fixed 1/group_size rate overhead.
//
// Payloads are virtual in this simulator, so the rebuilt packet's metadata
// comes from a group table shared between encoder and decoder — the
// information a real decoder recovers from the XOR itself.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace rpv::rtp {

struct FecConfig {
  int group_size = 10;       // media packets per parity packet
  // Number of groups filled round-robin. Radio losses are bursty (the paper:
  // drops occur consecutively), so consecutive packets must land in
  // different groups; with depth >= burst length a whole burst costs each
  // group at most one member — exactly what single-parity XOR can repair.
  int interleave_depth = 24;
};

// Encoder/decoder shared view of what each group protects (the XOR content).
class FecGroupTable {
 public:
  void put(std::int32_t group, std::vector<net::Packet> members) {
    groups_[group] = std::move(members);
    // Bound state: groups far behind can no longer be repaired.
    while (groups_.size() > 512) groups_.erase(groups_.begin());
  }
  [[nodiscard]] const std::vector<net::Packet>* get(std::int32_t group) const {
    const auto it = groups_.find(group);
    return it == groups_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::int32_t, std::vector<net::Packet>> groups_;
};

class FecEncoder {
 public:
  FecEncoder(FecConfig cfg, std::shared_ptr<FecGroupTable> table)
      : cfg_{cfg}, table_{std::move(table)} {}

  // Tag the media packet with its group and, when the group completes,
  // return the parity packet to transmit after it.
  std::optional<net::Packet> on_media_packet(net::Packet& media);

  // Retune the parity rate mid-stream (rpv::bond adaptive FEC). Groups
  // already filling emit as soon as they reach the new size, so lowering the
  // group size takes effect within one interleave round trip. Clamped >= 2.
  void set_group_size(int n);

  [[nodiscard]] int group_size() const { return cfg_.group_size; }
  [[nodiscard]] std::uint64_t parity_packets() const { return parity_count_; }

 private:
  struct Slot {
    std::vector<net::Packet> members;
    std::int32_t group = -1;
    std::size_t max_size = 0;
  };

  FecConfig cfg_;
  std::shared_ptr<FecGroupTable> table_;
  std::vector<Slot> slots_;
  std::size_t next_slot_ = 0;
  std::int32_t next_group_ = 0;
  std::uint64_t parity_count_ = 0;
  std::uint64_t next_id_ = 1ULL << 56;
};

class FecDecoder {
 public:
  explicit FecDecoder(std::shared_ptr<FecGroupTable> table)
      : table_{std::move(table)} {}

  // Feed an arriving media packet. May complete a repair for a group whose
  // parity arrived before this (reordered) member.
  std::optional<net::Packet> on_media_packet(const net::Packet& p,
                                             sim::TimePoint now);
  // Feed an arriving parity packet. Returns a recovered media packet when
  // the parity completes a group with exactly one member missing.
  std::optional<net::Packet> on_parity_packet(const net::Packet& parity,
                                              sim::TimePoint now);

  [[nodiscard]] std::uint64_t recovered_packets() const { return recovered_; }

 private:
  struct GroupState {
    std::vector<std::uint16_t> seen_transport_seqs;
    bool parity_seen = false;
    bool repaired = false;
  };
  std::optional<net::Packet> try_repair(std::int32_t group, sim::TimePoint now);

  std::shared_ptr<FecGroupTable> table_;
  std::map<std::int32_t, GroupState> states_;
  std::uint64_t recovered_ = 0;
};

}  // namespace rpv::rtp
