// RTP jitter buffer (GStreamer rtpjitterbuffer analogue, paper §3.2).
//
// Packets are buffered for a configurable latency (the paper uses 150 ms) to
// cushion variable arrival rates and reorderings. Frames are released at
//   release(frame) = rtp_timestamp + stream_offset + latency,
// where stream_offset is established from the first packet's arrival. Two
// behaviours matter for reproducing the paper:
//  * when packets arrive *later* than their release deadline (network-latency
//    spike beyond the buffer), the buffer re-bases its offset upward — the
//    playback latency stays on an elevated plateau and only decays slowly
//    once packets arrive with headroom again (the SCReAM plateau of §4.2.2);
//  * the optional drop-on-latency mode from Appendix A.4 instead discards
//    frames that missed their deadline so the pilot always sees the newest
//    picture.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "rtp/sequence.hpp"
#include "sim/pool.hpp"
#include "sim/simulator.hpp"

namespace rpv::rtp {

struct JitterBufferConfig {
  sim::Duration latency = sim::Duration::millis(150);
  // Reorder grace past the deadline before loss evidence (newer sequence
  // numbers already arrived) lets an incomplete frame be concealed.
  sim::Duration incomplete_grace = sim::Duration::millis(40);
  // Absolute bound past the deadline after which an incomplete frame is
  // released no matter what (stream silence, tail loss).
  sim::Duration hard_timeout = sim::Duration::millis(2500);
  // Quiescence required before loss evidence counts: while packets of the
  // frame are still streaming in (a post-handover drain burst arrives
  // heavily reordered) the buffer keeps waiting.
  sim::Duration reorder_wait = sim::Duration::millis(25);
  // Appendix A.4: drop frames that missed their deadline instead of playing
  // them late.
  bool drop_on_latency = false;
  // Relative decay of the accumulated extra offset per released frame.
  double offset_decay = 0.012;
  // An RTP sequence jump at least this large (SCReAM queue discard) forces a
  // timing resync on the next packet.
  int resync_gap_packets = 100;
  // Playback-timeline stall applied on a resync: GStreamer's rtpjitterbuffer
  // handles large sequence/timestamp discontinuities by re-synchronizing its
  // clock mapping, during which playback holds at an elevated latency — the
  // ~1 s plateaus the paper observes with SCReAM in the urban tests (§4.2.2).
  sim::Duration resync_stall = sim::Duration::millis(750);
};

struct FrameReleaseEvent {
  std::uint32_t frame_id = 0;
  sim::TimePoint release_time;
  sim::TimePoint rtp_timestamp;
  bool corrupted = false;  // released with missing packets
  int packets_received = 0;
  int packets_expected = 0;  // 0 if unknown (head loss)
};

class JitterBuffer {
 public:
  using ReleaseFn = std::function<void(const FrameReleaseEvent&)>;

  JitterBuffer(sim::Simulator& simulator, JitterBufferConfig cfg, ReleaseFn release);

  void on_packet(const net::Packet& p);

  [[nodiscard]] std::uint64_t frames_released() const { return released_; }
  [[nodiscard]] std::uint64_t frames_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t late_packets() const { return late_packets_; }
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }
  // Extra buffering above the configured latency, in ms (the plateau level).
  [[nodiscard]] double extra_offset_ms() const;
  [[nodiscard]] std::size_t pending_frames() const { return frames_.size(); }

 private:
  struct PendingFrame {
    sim::TimePoint rtp_timestamp;
    sim::TimePoint last_arrival;
    std::vector<std::int64_t> received;  // unwrapped rtp seq, sorted unique
    std::int64_t min_seq = 0;
    std::int64_t max_seq = 0;
    std::int64_t marker_seq = 0;  // unwrapped seq of the frame's last packet
    bool has_marker = false;
    sim::Timer timer;  // release/poll timer; cancelled with the frame
  };

  void try_release(std::uint32_t frame_id, bool timer_fired);
  void release_frame(std::uint32_t frame_id, PendingFrame& f, bool corrupted);
  [[nodiscard]] sim::TimePoint deadline_of(const PendingFrame& f) const;
  // Position of frame_id in frames_ (or where it would be inserted).
  [[nodiscard]] std::size_t find_frame(std::uint32_t frame_id) const;
  // Recycle the seq vector's capacity and return the slot to the pool.
  void destroy_frame(std::uint32_t pool_idx);

  sim::Simulator& sim_;
  JitterBufferConfig cfg_;
  ReleaseFn release_;

  // Frame table: pending frames live in a sim::Pool (stable addresses, LIFO
  // slot reuse, no per-frame node allocation); frames_ is a small flat index
  // sorted by frame id — at most a handful of frames are in flight, so
  // ordered-map semantics cost O(pending) moves instead of a tree node per
  // frame. Released frames donate their `received` vector to seq_cache_ so
  // steady state does no heap allocation at all.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> frames_;  // (frame id, pool idx)
  sim::Pool<PendingFrame> frame_pool_;
  std::vector<std::vector<std::int64_t>> seq_cache_;
  bool offset_valid_ = false;
  sim::Duration base_offset_ = sim::Duration::zero();   // arrival - rtp_ts, nominal
  sim::Duration extra_offset_ = sim::Duration::zero();  // plateau component
  std::int64_t last_delivered_frame_ = -1;
  std::int64_t expected_next_seq_ = 0;  // marker of last frame + 1
  bool have_expected_next_ = false;

  SeqUnwrapper unwrapper_;
  std::int64_t highest_seq_ = 0;
  bool any_seq_ = false;

  std::uint64_t released_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t late_packets_ = 0;
  std::uint64_t resyncs_ = 0;
};

}  // namespace rpv::rtp
