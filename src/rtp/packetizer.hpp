// RTP packetization of encoded frames.
//
// Splits each encoded frame into MTU-sized RTP packets, assigning the RTP
// sequence number, the transport-wide sequence number used by GCC feedback,
// the RTP timestamp (capture time) and the marker bit on the frame's last
// packet — the wire format the paper's GStreamer pipeline produces.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "video/frame.hpp"

namespace rpv::rtp {

struct PacketizerConfig {
  std::size_t mtu_payload_bytes = 1200;
  std::size_t header_overhead_bytes = 40;  // RTP + UDP + IP
};

class Packetizer {
 public:
  explicit Packetizer(PacketizerConfig cfg = {}) : cfg_{cfg} {}

  // Produce the RTP packets of one frame. Sizes include header overhead.
  std::vector<net::Packet> packetize(const video::Frame& frame);

  // As above, into a caller-owned buffer (cleared first) so a steady-state
  // sender reuses one allocation across frames.
  void packetize(const video::Frame& frame, std::vector<net::Packet>& out);

  // Consume one transport-wide sequence number (FEC parity packets share
  // the congestion-control sequence space but not the RTP one).
  std::uint16_t allocate_transport_seq() { return transport_seq_++; }

  [[nodiscard]] std::uint16_t next_rtp_seq() const { return rtp_seq_; }
  [[nodiscard]] std::uint16_t next_transport_seq() const { return transport_seq_; }
  [[nodiscard]] std::uint64_t packets_produced() const { return next_id_; }

 private:
  PacketizerConfig cfg_;
  std::uint16_t rtp_seq_ = 0;
  std::uint16_t transport_seq_ = 0;
  std::uint64_t next_id_ = 1;
};

}  // namespace rpv::rtp
