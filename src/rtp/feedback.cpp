#include "rtp/feedback.hpp"

#include "rtp/sequence.hpp"

namespace rpv::rtp {
namespace {

std::uint16_t rewrap(std::int64_t unwrapped) {
  return static_cast<std::uint16_t>(unwrapped & 0xFFFF);
}

}  // namespace

void TwccCollector::on_packet(std::uint16_t transport_seq, sim::TimePoint arrival) {
  const std::int64_t s = unwrapper_.unwrap(transport_seq);
  if (pending_.empty()) {
    min_pending_ = max_pending_ = s;
  } else {
    min_pending_ = std::min(min_pending_, s);
    max_pending_ = std::max(max_pending_, s);
  }
  pending_.emplace_back(s, arrival);
}

FeedbackReport TwccCollector::build_report(sim::TimePoint now) {
  FeedbackReport report;
  report.generated = now;
  if (pending_.empty()) return report;

  std::int64_t first = last_reported_ >= 0 ? last_reported_ + 1 : min_pending_;
  const std::int64_t last = max_pending_;
  // Defensive: a pathological unwrap (or a very long radio silence) must not
  // produce a giant or negative report range.
  if (first > last || last - first > 20000) first = min_pending_;
  const auto range = static_cast<std::size_t>(last - first + 1);
  report.results.resize(range);
  for (std::size_t i = 0; i < range; ++i) {
    report.results[i].transport_seq = rewrap(first + static_cast<std::int64_t>(i));
  }
  for (const auto& [s, arrival] : pending_) {
    if (s < first || s > last) continue;
    PacketResult& r = report.results[static_cast<std::size_t>(s - first)];
    if (!r.received) {  // first arrival wins for duplicated seqs
      r.received = true;
      r.arrival = arrival;
    }
  }
  last_reported_ = last;
  pending_.clear();
  return report;
}

void Rfc8888Collector::on_packet(std::uint16_t transport_seq, sim::TimePoint arrival) {
  const std::int64_t s = unwrapper_.unwrap(transport_seq);
  arrivals_.emplace(s, arrival);
  any_seen_ = true;
  if (s > highest_) highest_ = s;
  // Trim state well behind any feedback window we could still report.
  const std::int64_t keep_from = highest_ - 4 * ack_window_;
  while (!arrivals_.empty() && arrivals_.begin()->first < keep_from) {
    arrivals_.erase(arrivals_.begin());
  }
}

FeedbackReport Rfc8888Collector::build_report(sim::TimePoint now) const {
  FeedbackReport report;
  report.generated = now;
  if (!any_seen_) return report;
  const std::int64_t first = std::max<std::int64_t>(
      arrivals_.empty() ? highest_ : arrivals_.begin()->first,
      highest_ - ack_window_ + 1);
  report.results.reserve(static_cast<std::size_t>(highest_ - first + 1));
  for (std::int64_t s = first; s <= highest_; ++s) {
    PacketResult r;
    r.transport_seq = rewrap(s);
    const auto it = arrivals_.find(s);
    if (it != arrivals_.end()) {
      r.received = true;
      r.arrival = it->second;
    }
    report.results.push_back(r);
  }
  return report;
}

}  // namespace rpv::rtp
