#include "rtp/fec.hpp"

#include <algorithm>

namespace rpv::rtp {

void FecEncoder::set_group_size(int n) {
  cfg_.group_size = n < 2 ? 2 : n;
}

std::optional<net::Packet> FecEncoder::on_media_packet(net::Packet& media) {
  if (slots_.empty()) slots_.resize(static_cast<std::size_t>(cfg_.interleave_depth));
  Slot& slot = slots_[next_slot_];
  next_slot_ = (next_slot_ + 1) % slots_.size();

  if (slot.group < 0) slot.group = next_group_++;
  media.fec_group = slot.group;
  slot.members.push_back(media);
  slot.max_size = std::max(slot.max_size, media.size_bytes);
  if (static_cast<int>(slot.members.size()) < cfg_.group_size) return std::nullopt;

  net::Packet parity;
  parity.id = next_id_++;
  parity.kind = net::PacketKind::kFecParity;
  parity.size_bytes = slot.max_size;  // the XOR is as big as the largest member
  parity.fec_group = slot.group;
  parity.rtp_timestamp = slot.members.back().rtp_timestamp;
  table_->put(slot.group, std::move(slot.members));
  slot = Slot{};
  ++parity_count_;
  return parity;
}

std::optional<net::Packet> FecDecoder::on_media_packet(const net::Packet& p,
                                                        sim::TimePoint now) {
  if (p.fec_group < 0) return std::nullopt;
  auto& st = states_[p.fec_group];
  st.seen_transport_seqs.push_back(p.transport_seq);
  // Bound state.
  while (states_.size() > 512) states_.erase(states_.begin());
  return try_repair(p.fec_group, now);
}

std::optional<net::Packet> FecDecoder::on_parity_packet(const net::Packet& parity,
                                                        sim::TimePoint now) {
  if (parity.fec_group < 0) return std::nullopt;
  auto& st = states_[parity.fec_group];
  st.parity_seen = true;
  return try_repair(parity.fec_group, now);
}

std::optional<net::Packet> FecDecoder::try_repair(std::int32_t group,
                                                  sim::TimePoint now) {
  auto& st = states_[group];
  if (!st.parity_seen || st.repaired) return std::nullopt;
  const auto* members = table_->get(group);
  if (members == nullptr) return std::nullopt;
  // Exactly one member missing: the XOR yields it.
  const net::Packet* missing = nullptr;
  int missing_count = 0;
  for (const auto& m : *members) {
    const bool seen =
        std::find(st.seen_transport_seqs.begin(), st.seen_transport_seqs.end(),
                  m.transport_seq) != st.seen_transport_seqs.end();
    if (!seen) {
      ++missing_count;
      missing = &m;
    }
  }
  if (missing_count != 1) return std::nullopt;
  st.repaired = true;
  ++recovered_;
  net::Packet rebuilt = *missing;
  rebuilt.received = now;
  return rebuilt;
}

}  // namespace rpv::rtp
