#include "geo/flight_profiles.hpp"

namespace rpv::geo {

Trajectory make_flight_profile(const Vec3& origin, const FlightProfileConfig& cfg) {
  Trajectory t;
  t.move_to(origin, 0.0);
  t.hover(sim::Duration::seconds(5.0));  // pre-takeoff checks

  double dir = 1.0;
  Vec3 pos = origin;
  for (const double alt : {40.0, 80.0, 120.0}) {
    // Vertical climb to the next level.
    pos.z = alt;
    t.move_to(pos, cfg.climb_speed_mps);
    t.hover(cfg.level_hover);
    // Horizontal leap; one leg at max speed to exercise the fast regime.
    const bool fast = cfg.include_fast_leap && alt == 80.0;
    pos.x += dir * cfg.leap_m;
    t.move_to(pos, fast ? cfg.max_speed_mps : cfg.cruise_speed_mps);
    t.hover(cfg.level_hover);
    dir = -dir;
  }
  // Straight descent back to ground level at the final horizontal position.
  pos.z = 0.0;
  t.move_to(pos, cfg.climb_speed_mps);
  return t;
}

Trajectory make_ground_profile(const Vec3& origin, sim::Rng& rng,
                               double leg_m, int legs) {
  Trajectory t;
  Vec3 pos = origin;
  pos.z = 1.5;  // handlebar height
  t.move_to(pos, 0.0);
  double dir = 1.0;
  for (int i = 0; i < legs; ++i) {
    // Riding leg at roughly the UAV's average horizontal speed, with spread.
    const double speed = rng.uniform(3.0, 9.0);
    pos.x += dir * leg_m;
    t.move_to(pos, speed);
    // Stationary stretches (traffic lights etc.) — the paper notes the ground
    // dataset likely includes longer stationary durations than the air one.
    t.hover(sim::Duration::seconds(rng.uniform(10.0, 40.0)));
    dir = -dir;
  }
  return t;
}

Trajectory make_static_profile(const Vec3& pos, sim::Duration duration) {
  Trajectory t;
  t.move_to(pos, 0.0);
  t.hover(duration);
  return t;
}

}  // namespace rpv::geo
