// The measurement campaign's motion profiles (paper §3.1 and Appendix A.2).
//
// The UAV flight: lift off vertically to 40 m, make a ~200 m horizontal leap,
// repeat at 80 m and 120 m, then descend straight down. Air time ≈ 6 min,
// median speed 13 km/h, max 60 km/h. The ground profile mimics the horizontal
// movements on a motorbike at comparable speeds, including the stationary
// stretches the paper notes skew the ground handover rate downwards.
#pragma once

#include "geo/trajectory.hpp"
#include "sim/rng.hpp"

namespace rpv::geo {

struct FlightProfileConfig {
  double leap_m = 200.0;          // horizontal leap length (paper: ~200 m)
  double cruise_speed_mps = 3.6;  // ~13 km/h median
  double climb_speed_mps = 2.0;
  double max_speed_mps = 16.7;    // ~60 km/h, used for one fast leap
  sim::Duration level_hover = sim::Duration::seconds(15.0);
  bool include_fast_leap = true;  // exercise the max recorded speed
};

// UAV trajectory per Appendix A.2. `origin` is the take-off point; the leaps
// alternate direction so the flight stays inside the allowed area.
Trajectory make_flight_profile(const Vec3& origin, const FlightProfileConfig& cfg = {});

// Ground (motorbike) trajectory covering similar horizontal ground at similar
// speeds, at z = 1.5 m. `rng` jitters the stop durations between runs.
Trajectory make_ground_profile(const Vec3& origin, sim::Rng& rng,
                               double leg_m = 400.0, int legs = 6);

// A stationary "hover" profile (used by calibration/unit tests).
Trajectory make_static_profile(const Vec3& pos, sim::Duration duration);

}  // namespace rpv::geo
