// Minimal 3D vector for positions in a local East-North-Up frame (metres).
// z is altitude above ground.
#pragma once

#include <cmath>

namespace rpv::geo {

struct Vec3 {
  double x = 0.0;  // east, m
  double y = 0.0;  // north, m
  double z = 0.0;  // up (altitude above ground), m

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double f) const { return {x * f, y * f, z * f}; }

  [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y + z * z); }
  [[nodiscard]] double norm2d() const { return std::sqrt(x * x + y * y); }
};

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }
// Horizontal (ground-plane) distance, used by path-loss models that treat
// altitude separately.
inline double distance2d(const Vec3& a, const Vec3& b) { return (a - b).norm2d(); }

}  // namespace rpv::geo
