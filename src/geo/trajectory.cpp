#include "geo/trajectory.hpp"

#include <algorithm>

#include "sim/validate.hpp"

namespace rpv::geo {

Trajectory::Trajectory(std::vector<Waypoint> points) : points_{std::move(points)} {
  // Thrown (not asserted) so release builds reject malformed inputs too.
  validate(std::is_sorted(points_.begin(), points_.end(),
                          [](const Waypoint& a, const Waypoint& b) {
                            return a.t < b.t;
                          }),
           "Trajectory: waypoints must be sorted by time");
}

Trajectory& Trajectory::move_to(const Vec3& pos, double speed_mps) {
  if (points_.empty()) {
    points_.push_back({sim::TimePoint::origin(), pos});
    return *this;
  }
  const Waypoint& last = points_.back();
  const double dist = distance(last.pos, pos);
  const auto travel = sim::Duration::seconds(speed_mps > 0 ? dist / speed_mps : 0.0);
  points_.push_back({last.t + travel, pos});
  return *this;
}

Trajectory& Trajectory::hover(sim::Duration d) {
  if (points_.empty()) {
    points_.push_back({sim::TimePoint::origin(), {}});
  }
  const Waypoint& last = points_.back();
  points_.push_back({last.t + d, last.pos});
  return *this;
}

Trajectory Trajectory::truncated(sim::Duration max_duration) const {
  if (points_.empty() || max_duration <= sim::Duration::zero() ||
      duration() <= max_duration) {
    return *this;
  }
  const auto cut = start() + max_duration;
  std::vector<Waypoint> pts;
  for (const auto& w : points_) {
    if (w.t >= cut) break;
    pts.push_back(w);
  }
  pts.push_back({cut, position(cut)});
  return Trajectory{std::move(pts)};
}

Vec3 Trajectory::position(sim::TimePoint t) const {
  if (points_.empty()) return {};
  if (t <= points_.front().t) return points_.front().pos;
  if (t >= points_.back().t) return points_.back().pos;
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](sim::TimePoint tp, const Waypoint& w) { return tp < w.t; });
  const Waypoint& b = *it;
  const Waypoint& a = *(it - 1);
  const auto span = b.t - a.t;
  if (span <= sim::Duration::zero()) return b.pos;
  const double f = (t - a.t) / span;
  return a.pos + (b.pos - a.pos) * f;
}

double Trajectory::speed(sim::TimePoint t) const {
  if (points_.size() < 2 || t <= points_.front().t || t >= points_.back().t) return 0.0;
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](sim::TimePoint tp, const Waypoint& w) { return tp < w.t; });
  const Waypoint& b = *it;
  const Waypoint& a = *(it - 1);
  const auto span = b.t - a.t;
  if (span <= sim::Duration::zero()) return 0.0;
  return distance(a.pos, b.pos) / span.sec();
}

sim::TimePoint Trajectory::start() const {
  return points_.empty() ? sim::TimePoint::origin() : points_.front().t;
}

sim::TimePoint Trajectory::end() const {
  return points_.empty() ? sim::TimePoint::origin() : points_.back().t;
}

}  // namespace rpv::geo
