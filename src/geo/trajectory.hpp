// Piecewise-linear waypoint trajectories.
//
// A Trajectory is a sequence of (time, position) waypoints; position(t)
// interpolates linearly and clamps outside the defined range. This is the
// motion substrate for both the UAV flight profile and the motorbike ground
// profile used for the paper's air-vs-ground comparison.
#pragma once

#include <vector>

#include "geo/vec3.hpp"
#include "sim/time.hpp"

namespace rpv::geo {

struct Waypoint {
  sim::TimePoint t;
  Vec3 pos;
};

class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(std::vector<Waypoint> points);

  // Append a waypoint reached by moving at `speed_mps` from the last one.
  // The first appended point defines t=start.
  Trajectory& move_to(const Vec3& pos, double speed_mps);
  // Append a hold at the current position for `d`.
  Trajectory& hover(sim::Duration d);

  // A copy cut off `max_duration` after start (the final waypoint is the
  // interpolated position at the cut). Durations at or beyond the current
  // one — or non-positive ones — return the trajectory unchanged; fleet
  // scenarios use this to bound mission horizons without new profiles.
  [[nodiscard]] Trajectory truncated(sim::Duration max_duration) const;

  [[nodiscard]] Vec3 position(sim::TimePoint t) const;
  // Instantaneous speed (m/s) on the active segment.
  [[nodiscard]] double speed(sim::TimePoint t) const;
  [[nodiscard]] double altitude(sim::TimePoint t) const { return position(t).z; }

  [[nodiscard]] sim::TimePoint start() const;
  [[nodiscard]] sim::TimePoint end() const;
  [[nodiscard]] sim::Duration duration() const { return end() - start(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] const std::vector<Waypoint>& waypoints() const { return points_; }

 private:
  std::vector<Waypoint> points_;
};

}  // namespace rpv::geo
