// Input validation that survives Release builds.
//
// Constructors across the library used to guard their inputs with bare
// `assert`, which compiles out under NDEBUG and silently accepts invalid
// configs. `rpv::validate` throws std::invalid_argument with a readable
// message instead, so a bad Scenario/SessionConfig fails loudly at setup
// time rather than corrupting a multi-minute simulation.
#pragma once

#include <stdexcept>
#include <string>

namespace rpv {

inline void validate(bool condition, const std::string& message) {
  if (!condition) throw std::invalid_argument(message);
}

}  // namespace rpv
