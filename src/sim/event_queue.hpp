// Calendar event queue for the discrete-event core.
//
// EventQueue is a standalone priority queue of timed callables with these
// documented semantics:
//
//   * pop() always yields the pending event with the smallest timestamp;
//     events with equal timestamps pop in schedule (FIFO) order. The total
//     order is (timestamp, schedule sequence number) — deterministic and
//     independent of the internal container layout.
//   * schedule() is O(1) amortized and performs no per-event heap
//     allocation: callables up to EventFn::kInlineBytes are stored inline in
//     a pooled slot (sim::Pool), larger ones fall back to one heap box.
//   * cancel() is O(1): it releases the slot immediately (generation-checked
//     Handle, so stale handles are harmless no-ops) and leaves a tombstone
//     in the calendar that pop() skips lazily.
//
// Internally this is a two-tier calendar: a 1024-bucket time wheel at 256 µs
// granularity (~262 ms of near future) absorbs the hot short-horizon timers
// (pacing, service, propagation), and a binary min-heap holds the far
// future. When the wheel drains, its window rebases onto the earliest
// overflow event and the in-window prefix of the heap migrates into buckets.
// Events scheduled before the current window (possible after a rebase across
// an idle gap) go to a small "front" staging heap that is always strictly
// earlier than the wheel. Buckets are sorted lazily when the cursor reaches
// them; appends that keep a bucket ordered never trigger a sort.
//
// Timer is the RAII scheduling handle used by Simulator's public API: it
// cancels its event on destruction (unless fired, released, or re-armed)
// and is generation-safe — a Timer held across its event's firing and even
// across slot reuse can never cancel somebody else's event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/pool.hpp"
#include "sim/time.hpp"

namespace rpv::sim {

// Move-only type-erased `void()` callable with a large inline buffer.
// Unlike std::function, captures up to kInlineBytes bytes never touch the
// heap — sized so every hot-path lambda in the simulator (the largest is the
// cellular uplink delivery capture) stays inline.
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 152;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function.
  EventFn(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& o) noexcept { move_from(o); }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); },
  };

  void move_from(EventFn& o) noexcept {
    if (o.ops_ != nullptr) {
      ops_ = o.ops_;
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class EventQueue {
 public:
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

  // Generation-checked reference to a scheduled event. Value type; copies
  // are fine (all become stale together once the event fires or cancels).
  struct Handle {
    std::uint32_t slot = kInvalidSlot;
    std::uint32_t gen = 0;
  };

  EventQueue() : buckets_(kBuckets) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedule `fn` at absolute time `at` (the caller owns any clamping
  // policy). Returns a handle valid until the event fires or is cancelled.
  // Takes an rvalue so the callable relocates exactly once, into its slot.
  Handle schedule(TimePoint at, EventFn&& fn) {
    const std::int64_t at_us = at.us();
    const std::uint32_t slot = pool_.acquire(std::move(fn));
    if (slot >= gens_.size()) gens_.resize(slot + 1, 0);
    const Entry e{at_us, seq_++, slot, gens_[slot]};
    ++live_;
    const std::uint64_t g = granule(at_us);
    if (live_ == 1 && wheel_count_ == 0) {
      // The queue held no live events and the wheel is physically empty:
      // drop any tombstones left in the staging heaps and re-anchor the
      // window, so an idle gap never forces events through the overflow
      // heap.
      front_.clear();
      overflow_.clear();
      base_granule_ = cur_granule_ = g;
    }
    if (g < base_granule_) {
      // Before the wheel window (the window rebased across a gap): the
      // event is strictly earlier than everything in the wheel and
      // overflow.
      push_front_heap(e);
    } else if (g < base_granule_ + kBuckets) {
      push_bucket(e, g);
    } else {
      push_overflow_heap(e);
    }
    return Handle{slot, gens_[slot]};
  }

  // Cancel a pending event in O(1). Returns whether it was still pending;
  // stale handles (fired, already cancelled, default-constructed) are no-ops.
  bool cancel(Handle h) {
    if (!pending(h)) return false;
    // Release the slot now; the calendar entry stays behind as a tombstone
    // (its gen no longer matches) and is skipped when the cursor reaches it.
    pool_.release(h.slot);
    ++gens_[h.slot];
    --live_;
    return true;
  }

  // Whether `h` still refers to a pending event.
  [[nodiscard]] bool pending(Handle h) const {
    return h.slot < gens_.size() && gens_[h.slot] == h.gen;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  // Timestamp of the earliest pending event, or TimePoint::never() if empty.
  // Non-const: advances the wheel cursor past tombstones.
  [[nodiscard]] TimePoint next_time();

  // Pop the earliest pending event ((timestamp, FIFO seq) order) into
  // *at / *fn. Returns false when the queue is empty.
  bool pop(TimePoint* at, EventFn* fn) {
    return pop_until(TimePoint::from_us(std::numeric_limits<std::int64_t>::max()),
                     at, fn);
  }

  // As pop(), but leaves the queue untouched (and returns false) when the
  // earliest pending event is after `limit`. One cursor scan instead of the
  // next_time()-then-pop() pair.
  bool pop_until(TimePoint limit, TimePoint* at, EventFn* fn) {
    std::uint32_t slot;
    std::int64_t at_us;
    if (!extract_fast(limit.us(), &slot, &at_us) &&
        !extract_slow(limit.us(), &slot, &at_us)) {
      return false;
    }
    *at = TimePoint::from_us(at_us);
    *fn = std::move(pool_[slot]);
    pool_.release(slot);
    return true;
  }

  // Pop the earliest pending event due by `limit` and execute it in place
  // from its pool slot — no relocation of the callable. *clock is set to the
  // event's timestamp *before* the handler runs (pass the virtual clock).
  // The event's slot is retired (generation bumped) before invocation, so
  // Handles/Timers to it are already stale while it fires; the slot itself
  // is recycled only after the handler returns, so re-entrant schedule()
  // calls from inside the handler cannot clobber the running callable.
  bool run_one(TimePoint limit, TimePoint* clock) {
    std::uint32_t slot;
    std::int64_t at_us;
    if (!extract_fast(limit.us(), &slot, &at_us) &&
        !extract_slow(limit.us(), &slot, &at_us)) {
      return false;
    }
    *clock = TimePoint::from_us(at_us);
    pool_[slot]();
    pool_.release(slot);
    return true;
  }

 private:
  // 1024 buckets x 256 us granule = ~262 ms near-future window.
  static constexpr int kGranuleShift = 8;
  static constexpr std::uint64_t kBuckets = 1024;
  static constexpr std::uint64_t kMask = kBuckets - 1;

  struct Entry {
    std::int64_t at_us;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct EntryBefore {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at_us != b.at_us) return a.at_us < b.at_us;
      return a.seq < b.seq;
    }
  };
  // Heap comparator for a min-heap via std::push_heap/pop_heap.
  struct EntryAfter {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at_us != b.at_us) return a.at_us > b.at_us;
      return a.seq > b.seq;
    }
  };
  struct Bucket {
    std::vector<Entry> v;
    std::size_t pos = 0;  // entries before pos are consumed
    bool sorted = true;
  };

  static constexpr std::uint64_t granule(std::int64_t at_us) {
    return static_cast<std::uint64_t>(at_us) >> kGranuleShift;
  }

  [[nodiscard]] bool live_entry(const Entry& e) const {
    return gens_[e.slot] == e.gen;
  }
  void push_bucket(const Entry& e, std::uint64_t g) {
    Bucket& b = buckets_[g & kMask];
    if (!b.v.empty() && b.sorted && EntryBefore{}(e, b.v.back())) {
      if (g == cur_granule_) {
        // Out-of-order append into the bucket being drained: keep it sorted
        // by inserting into the unconsumed tail. Correct because e postdates
        // every consumed entry (its time is >= now and its FIFO seq is the
        // newest), and it keeps the pop fast path hot.
        insert_sorted_tail(b, e);
        ++wheel_count_;
        return;
      }
      b.sorted = false;
    }
    b.v.push_back(e);
    ++wheel_count_;
    set_occupied(g);
    // The cursor may already have scanned past this granule (peeking a
    // later event advances it); rewind so the new event is not skipped.
    // Safe: every bucket between g and the old cursor has been drained.
    if (g < cur_granule_) cur_granule_ = g;
  }
  // Outlined pieces of push_bucket/schedule that need <algorithm>.
  void insert_sorted_tail(Bucket& b, const Entry& e);
  void push_front_heap(const Entry& e);
  void push_overflow_heap(const Entry& e);
  // Position the cursor on the earliest live entry (front staging first,
  // then the wheel, rebasing from overflow as needed) and return it;
  // nullptr when the queue is empty.
  Entry* peek_live();
  // Remove `e` (the current peek_live() result) from the calendar and retire
  // its slot; the caller consumes pool_[slot] and then releases it.
  void detach(const Entry* e, std::uint32_t* slot, std::int64_t* at_us);
  // Outlined general extraction path: scans past tombstones, sorts buckets
  // lazily, rebases from the staging heaps. extract_fast() handles the
  // common case.
  bool extract_slow(std::int64_t limit_us, std::uint32_t* slot,
                    std::int64_t* at_us);

  // Occupancy bitmap over bucket indices: bit (g & kMask) is set while the
  // bucket physically holds entries, so advancing the cursor across empty
  // buckets is a find-next-set instead of a walk (most buckets hold at most
  // one event at typical loads).
  void set_occupied(std::uint64_t g) {
    occ_[(g & kMask) >> 6] |= 1ull << (g & 63);
  }
  void clear_occupied(std::uint64_t g) {
    occ_[(g & kMask) >> 6] &= ~(1ull << (g & 63));
  }
  // Move cur_granule_ forward to the next occupied bucket. Pre: some bucket
  // is occupied (wheel_count_ > 0), and all occupied buckets are at
  // granules >= cur_granule_ within the window, so the circular scan's first
  // hit is the right one.
  void advance_cursor() {
    const std::uint64_t start = cur_granule_ & kMask;
    std::size_t w = start >> 6;
    std::uint64_t word = occ_[w] & (~0ull << (start & 63));
    for (;;) {
      if (word != 0) {
        const std::uint64_t bit =
            (static_cast<std::uint64_t>(w) << 6) +
            static_cast<std::uint64_t>(__builtin_ctzll(word));
        cur_granule_ += (bit - start) & kMask;
        return;
      }
      w = (w + 1) & (kWords - 1);
      word = occ_[w];
    }
  }

  // Inline fast path: no pre-window staging, cursor on (or one bitmap hop
  // from) a sorted bucket whose head entry is live. Detaches the entry and
  // retires its slot (generation bump) but does NOT recycle the slot — the
  // caller moves the callable out or runs it in place, then releases.
  // Everything else falls through to extract_slow().
  bool extract_fast(std::int64_t limit_us, std::uint32_t* slot,
                    std::int64_t* at_us) {
    if (!front_.empty() || wheel_count_ == 0) return false;
    Bucket* b = &buckets_[cur_granule_ & kMask];
    if (b->pos >= b->v.size()) {
      // The cursor's bucket is drained: hop straight to the next occupied
      // one via the occupancy bitmap (wheel_count_ > 0 guarantees a hit).
      advance_cursor();
      b = &buckets_[cur_granule_ & kMask];
    }
    if (!b->sorted) return false;
    const Entry& e = b->v[b->pos];
    if (gens_[e.slot] != e.gen) return false;  // tombstone: slow path skips
    if (e.at_us > limit_us) return false;      // also "nothing due yet"
    *slot = e.slot;
    *at_us = e.at_us;
    ++b->pos;
    --wheel_count_;
    if (b->pos == b->v.size()) {
      b->v.clear();
      b->pos = 0;
      b->sorted = true;
      clear_occupied(cur_granule_);
    }
    ++gens_[e.slot];
    --live_;
    return true;
  }

  static constexpr std::size_t kWords = kBuckets / 64;

  Pool<EventFn> pool_;              // slot storage; index == Handle::slot
  std::vector<std::uint32_t> gens_;  // parallel to pool slots; bump on free
  std::vector<Bucket> buckets_;
  std::uint64_t occ_[kWords] = {};  // per-bucket occupancy bits
  std::vector<Entry> overflow_;  // min-heap: events beyond the wheel window
  std::vector<Entry> front_;     // min-heap: events before the wheel window
  std::uint64_t base_granule_ = 0;  // wheel window is [base, base + kBuckets)
  std::uint64_t cur_granule_ = 0;   // scan cursor within the window
  std::size_t wheel_count_ = 0;     // physical entries in buckets (incl. tombstones)
  std::uint64_t seq_ = 0;
  std::size_t live_ = 0;
};

// RAII handle to a scheduled event, returned by Simulator::schedule_timer_*.
// Movable, not copyable; destruction or re-assignment cancels the event if
// it is still pending. Generation-checked: once the event has fired (or been
// cancelled), the Timer is inert even if its slot was reused. A Timer must
// not outlive the queue that issued it.
class Timer {
 public:
  Timer() = default;
  Timer(EventQueue* queue, EventQueue::Handle handle)
      : queue_(queue), handle_(handle) {}

  Timer(Timer&& o) noexcept : queue_(o.queue_), handle_(o.handle_) {
    o.queue_ = nullptr;
    o.handle_ = {};
  }
  Timer& operator=(Timer&& o) noexcept {
    if (this != &o) {
      cancel();
      queue_ = o.queue_;
      handle_ = o.handle_;
      o.queue_ = nullptr;
      o.handle_ = {};
    }
    return *this;
  }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { cancel(); }

  // Cancel the event if still pending; returns whether it was.
  bool cancel() {
    if (queue_ == nullptr) return false;
    const bool was = queue_->cancel(handle_);
    queue_ = nullptr;
    handle_ = {};
    return was;
  }

  // Detach without cancelling (the event fires on schedule).
  void release() {
    queue_ = nullptr;
    handle_ = {};
  }

  // Whether the event is still pending (false once fired/cancelled/moved).
  [[nodiscard]] bool pending() const {
    return queue_ != nullptr && queue_->pending(handle_);
  }

 private:
  EventQueue* queue_ = nullptr;
  EventQueue::Handle handle_{};
};

}  // namespace rpv::sim
