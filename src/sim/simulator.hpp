// Discrete-event simulation engine.
//
// A Simulator is a thin virtual clock over sim::EventQueue (the calendar
// queue in event_queue.hpp): it clamps past timestamps to now, pops events
// in (timestamp, FIFO seq) order, and advances the clock to each event's
// time. Two scheduling flavours:
//
//   * schedule_at / schedule_in — fire-and-forget; nothing to store.
//   * schedule_timer_at / schedule_timer_in — return a sim::Timer, the RAII
//     cancellation handle (moveable, generation-safe; destruction or
//     re-arming cancels a still-pending event). This replaces the old raw
//     EventId + cancel() API.
//
// Components holding Timers must be destroyed before the Simulator (declare
// the Simulator first in owning classes).
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace rpv::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  // Schedule `fn` at absolute virtual time `at`. Times in the past run at
  // the current time (never move the clock backwards).
  void schedule_at(TimePoint at, EventFn fn) {
    (void)schedule_handle(at, std::move(fn));
  }
  // Schedule `fn` after a relative delay.
  void schedule_in(Duration delay, EventFn fn) {
    (void)schedule_handle(now_ + delay, std::move(fn));
  }

  // As above, but return an owning Timer for cancellation / re-arming.
  [[nodiscard]] Timer schedule_timer_at(TimePoint at, EventFn fn) {
    return Timer{&queue_, schedule_handle(at, std::move(fn))};
  }
  [[nodiscard]] Timer schedule_timer_in(Duration delay, EventFn fn) {
    return Timer{&queue_, schedule_handle(now_ + delay, std::move(fn))};
  }

  // Run until the queue drains or the clock passes `until`.
  void run_until(TimePoint until);
  // Run until the queue is empty.
  void run_all();
  // Pop and execute a single event; returns false if the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  [[nodiscard]] EventQueue& queue() { return queue_; }

 private:
  EventQueue::Handle schedule_handle(TimePoint at, EventFn&& fn) {
    if (at < now_) at = now_;
    return queue_.schedule(at, std::move(fn));
  }

  TimePoint now_ = TimePoint::origin();
  std::uint64_t executed_ = 0;
  EventQueue queue_;
};

}  // namespace rpv::sim
