// Discrete-event simulation engine.
//
// A Simulator owns the virtual clock and a priority queue of events. Events
// are arbitrary callables scheduled at absolute or relative virtual times;
// the engine pops them in timestamp order (FIFO among equal timestamps) and
// advances the clock to each event's time. Handles returned by schedule()
// allow cancellation, which the cellular and congestion-control timers use.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace rpv::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  // Schedule `fn` at absolute virtual time `at`. Times in the past run at
  // the current time (never move the clock backwards).
  EventId schedule_at(TimePoint at, EventFn fn);
  // Schedule `fn` after a relative delay.
  EventId schedule_in(Duration delay, EventFn fn);

  // Cancel a pending event. Cancelling an already-fired or unknown id is a
  // no-op; returns whether the event was pending.
  bool cancel(EventId id);

  // Run until the queue drains or the clock passes `until`.
  void run_until(TimePoint until);
  // Run until the queue is empty.
  void run_all();
  // Pop and execute a single event; returns false if the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const {
    return queue_.size() - cancelled_.size();
  }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;  // FIFO tiebreaker for equal timestamps
    EventId id;
    // Ordered as a min-heap via std::greater.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<EventId, EventFn> handlers_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace rpv::sim
