#include "sim/event_queue.hpp"

#include <algorithm>

namespace rpv::sim {

void EventQueue::insert_sorted_tail(Bucket& b, const Entry& e) {
  const auto it = std::upper_bound(
      b.v.begin() + static_cast<std::ptrdiff_t>(b.pos), b.v.end(), e,
      EntryBefore{});
  b.v.insert(it, e);
}

void EventQueue::push_front_heap(const Entry& e) {
  front_.push_back(e);
  std::push_heap(front_.begin(), front_.end(), EntryAfter{});
}

void EventQueue::push_overflow_heap(const Entry& e) {
  overflow_.push_back(e);
  std::push_heap(overflow_.begin(), overflow_.end(), EntryAfter{});
}

EventQueue::Entry* EventQueue::peek_live() {
  for (;;) {
    // Pre-window staging heap: always strictly earlier than the wheel.
    while (!front_.empty()) {
      if (live_entry(front_.front())) return front_.data();
      std::pop_heap(front_.begin(), front_.end(), EntryAfter{});
      front_.pop_back();
    }
    // Scan the wheel from the cursor.
    while (wheel_count_ > 0) {
      Bucket& b = buckets_[cur_granule_ & kMask];
      if (b.pos < b.v.size()) {
        if (!b.sorted) {
          std::sort(b.v.begin() + static_cast<std::ptrdiff_t>(b.pos),
                    b.v.end(), EntryBefore{});
          b.sorted = true;
        }
        while (b.pos < b.v.size() && !live_entry(b.v[b.pos])) {
          ++b.pos;
          --wheel_count_;
        }
        if (b.pos < b.v.size()) return &b.v[b.pos];
      }
      b.v.clear();
      b.pos = 0;
      b.sorted = true;
      clear_occupied(cur_granule_);
      if (wheel_count_ > 0) {
        advance_cursor();
        continue;
      }
      if (++cur_granule_ == base_granule_ + kBuckets) break;
    }
    // Wheel drained: rebase the window onto the earliest overflow event and
    // migrate the in-window prefix of the heap (heap pops ascend in
    // (at, seq), so per-bucket appends arrive in order and stay sorted).
    while (!overflow_.empty() && !live_entry(overflow_.front())) {
      std::pop_heap(overflow_.begin(), overflow_.end(), EntryAfter{});
      overflow_.pop_back();
    }
    if (overflow_.empty()) return nullptr;
    const std::uint64_t nb = granule(overflow_.front().at_us);
    base_granule_ = cur_granule_ = nb;
    while (!overflow_.empty()) {
      const Entry top = overflow_.front();
      if (live_entry(top) && granule(top.at_us) >= nb + kBuckets) break;
      std::pop_heap(overflow_.begin(), overflow_.end(), EntryAfter{});
      overflow_.pop_back();
      if (live_entry(top)) push_bucket(top, granule(top.at_us));
    }
  }
}

TimePoint EventQueue::next_time() {
  const Entry* e = peek_live();
  return e == nullptr ? TimePoint::never() : TimePoint::from_us(e->at_us);
}

void EventQueue::detach(const Entry* e, std::uint32_t* slot,
                        std::int64_t* at_us) {
  *slot = e->slot;
  *at_us = e->at_us;
  if (!front_.empty() && e == front_.data()) {
    std::pop_heap(front_.begin(), front_.end(), EntryAfter{});
    front_.pop_back();
  } else {
    Bucket& b = buckets_[cur_granule_ & kMask];
    ++b.pos;
    --wheel_count_;
    if (b.pos == b.v.size()) {
      b.v.clear();
      b.pos = 0;
      b.sorted = true;
      clear_occupied(cur_granule_);
    }
  }
  ++gens_[*slot];
  --live_;
}

bool EventQueue::extract_slow(std::int64_t limit_us, std::uint32_t* slot,
                              std::int64_t* at_us) {
  const Entry* e = peek_live();
  if (e == nullptr || e->at_us > limit_us) return false;
  detach(e, slot, at_us);
  return true;
}

}  // namespace rpv::sim
