// Chunked free-list object pool.
//
// acquire() constructs a T in place and returns a dense uint32 index;
// release() destroys the object and recycles the index LIFO, so reuse order
// is deterministic. Storage is allocated in fixed 256-object chunks that are
// never reallocated: `&pool[i]` stays valid across later acquires, and a
// steady-state workload performs zero heap traffic. Used by sim::EventQueue
// for event slots and by cellular::LinkQueue for in-flight packets.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace rpv::sim {

template <typename T>
class Pool {
 public:
  using Index = std::uint32_t;
  static constexpr Index kInvalid = 0xffffffffu;

  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
  ~Pool() { clear(); }

  // Construct a T from `args` and return its index.
  template <typename... Args>
  Index acquire(Args&&... args) {
    Index idx;
    if (free_head_ != kInvalid) {
      idx = free_head_;
      free_head_ = next_free_[idx];
    } else {
      idx = static_cast<Index>(size_);
      assert(idx != kInvalid);
      if (idx >= chunks_.size() * kChunk) {
        chunks_.push_back(std::make_unique<Storage[]>(kChunk));
      }
      ++size_;
      next_free_.push_back(kInvalid);
      alive_.push_back(false);
    }
    ::new (static_cast<void*>(slot(idx))) T(std::forward<Args>(args)...);
    alive_[idx] = true;
    ++live_;
    return idx;
  }

  // Destroy the object at `idx` and recycle its slot.
  void release(Index idx) {
    assert(idx < size_ && alive_[idx]);
    (*this)[idx].~T();
    alive_[idx] = false;
    next_free_[idx] = free_head_;
    free_head_ = idx;
    --live_;
  }

  [[nodiscard]] T& operator[](Index idx) {
    assert(idx < size_ && alive_[idx]);
    return *std::launder(reinterpret_cast<T*>(slot(idx)));
  }
  [[nodiscard]] const T& operator[](Index idx) const {
    assert(idx < size_ && alive_[idx]);
    return *std::launder(reinterpret_cast<const T*>(slot(idx)));
  }

  [[nodiscard]] std::size_t live() const { return live_; }
  // Total slots ever created (live + free); indices are always < capacity().
  [[nodiscard]] std::size_t capacity() const { return size_; }

  // Destroy every live object and reset to empty; chunk memory is retained.
  void clear() {
    for (Index i = 0; i < size_; ++i) {
      if (alive_[i]) (*this)[i].~T();
    }
    size_ = 0;
    live_ = 0;
    free_head_ = kInvalid;
    next_free_.clear();
    alive_.clear();
  }

 private:
  static constexpr std::size_t kChunk = 256;
  struct alignas(alignof(T)) Storage {
    unsigned char bytes[sizeof(T)];
  };

  [[nodiscard]] Storage* slot(Index idx) {
    return &chunks_[idx / kChunk][idx % kChunk];
  }
  [[nodiscard]] const Storage* slot(Index idx) const {
    return &chunks_[idx / kChunk][idx % kChunk];
  }

  std::vector<std::unique_ptr<Storage[]>> chunks_;
  std::vector<Index> next_free_;
  std::vector<bool> alive_;
  Index free_head_ = kInvalid;
  Index size_ = 0;  // slots ever created
  std::size_t live_ = 0;
};

}  // namespace rpv::sim
