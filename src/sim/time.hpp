// Strong time types for the discrete-event simulator.
//
// All simulation time is kept as a signed 64-bit count of microseconds.
// Duration is a relative span, TimePoint an absolute instant since the start
// of the simulation. Keeping these distinct prevents the classic bug of
// adding two absolute timestamps.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace rpv::sim {

class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration micros(std::int64_t us) { return Duration{us}; }
  static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1000}; }
  // Converting helper for fractional-millisecond config values (truncates to
  // whole microseconds, matching seconds()). Named (not an overload) so that
  // integer literals keep resolving to the exact millis() path.
  static constexpr Duration millis_f(double ms) {
    return Duration{static_cast<std::int64_t>(ms * 1e3)};
  }
  static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration infinity() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(us_) / 1e6; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{us_ + o.us_}; }
  constexpr Duration operator-(Duration o) const { return Duration{us_ - o.us_}; }
  constexpr Duration operator*(double f) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(us_) * f)};
  }
  constexpr Duration operator/(std::int64_t d) const { return Duration{us_ / d}; }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }
  constexpr Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  constexpr Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }
  constexpr Duration operator-() const { return Duration{-us_}; }

 private:
  explicit constexpr Duration(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint from_us(std::int64_t us) { return TimePoint{us}; }
  static constexpr TimePoint never() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr bool is_never() const { return *this == never(); }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{us_ + d.us()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{us_ - d.us()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::micros(us_ - o.us_); }
  constexpr TimePoint& operator+=(Duration d) { us_ += d.us(); return *this; }

 private:
  explicit constexpr TimePoint(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

constexpr Duration operator*(double f, Duration d) { return d * f; }

}  // namespace rpv::sim
