#include "sim/rng.hpp"

namespace rpv::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_spare_ = false;
}

Rng Rng::fork() {
  Rng child{next_u64() ^ 0xD6E8FEB86659FD93ULL};
  return child;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo + 1);
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do { u1 = uniform(); } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double mean) {
  double u = 0.0;
  do { u = uniform(); } while (u <= 1e-300);
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return uniform() < p; }

}  // namespace rpv::sim
