// Deterministic, seedable random number generation for simulations.
//
// Wraps a splitmix64-seeded xoshiro256** generator. All stochastic models in
// the library draw from an Rng instance owned by the scenario so runs are
// reproducible from a single seed, and independent streams can be forked
// per subsystem without correlation.
#pragma once

#include <cstdint>
#include <cmath>

namespace rpv::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Fork an independent stream; deterministic function of current state.
  [[nodiscard]] Rng fork();

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box-Muller (cached spare).
  double normal();
  double normal(double mean, double stddev);
  // Log-normal with parameters of the underlying normal.
  double lognormal(double mu, double sigma);
  // Exponential with given mean (mean > 0).
  double exponential(double mean);
  // Bernoulli trial.
  bool chance(double p);

 private:
  std::uint64_t s_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace rpv::sim
