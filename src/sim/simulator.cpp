#include "sim/simulator.hpp"

namespace rpv::sim {

bool Simulator::step() {
  if (!queue_.run_one(TimePoint::never(), &now_)) return false;
  ++executed_;
  return true;
}

void Simulator::run_until(TimePoint until) {
  while (queue_.run_one(until, &now_)) ++executed_;
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  while (step()) {
  }
}

}  // namespace rpv::sim
