#include "sim/simulator.hpp"

#include <utility>

namespace rpv::sim {

EventId Simulator::schedule_at(TimePoint at, EventFn fn) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::schedule_in(Duration delay, EventFn fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    queue_.pop();
    if (const auto c = cancelled_.find(top.id); c != cancelled_.end()) {
      cancelled_.erase(c);
      continue;
    }
    const auto h = handlers_.find(top.id);
    if (h == handlers_.end()) continue;  // defensive; should not happen
    EventFn fn = std::move(h->second);
    handlers_.erase(h);
    now_ = top.at;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(TimePoint until) {
  while (!queue_.empty()) {
    if (queue_.top().at > until) break;
    if (!step()) break;
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  while (step()) {
  }
}

}  // namespace rpv::sim
