// FleetEngine — hundreds to tens of thousands of concurrent UAV sessions
// over one SharedDeployment, in one process.
//
// Execution model: sessions are pinned to fixed shards (shard = a contiguous
// slice of kShardSize session indices — a function of fleet size only, never
// of worker count). Each epoch, every shard advances its sessions'
// simulators to the epoch boundary in parallel; at the barrier the
// deployment folds everyone's serving cell into the per-cell load table the
// next epoch reads. Because sessions only observe cell load frozen at the
// last barrier, the event sequence — and thus every metric — is
// byte-identical for any --jobs value.
//
// Aggregation is streaming: each shard owns one MetricsRegistry (plus the
// contention histograms) subscribed to its sessions' event buses; shards
// merge in shard-index order into a single fixed-size FleetReport. No
// per-session artifact exists unless keep_reports asks for one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"
#include "fleet/fleet_report.hpp"
#include "fleet/shared_deployment.hpp"
#include "geo/trajectory.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics_registry.hpp"
#include "pipeline/session.hpp"
#include "radiomap/radio_map.hpp"

namespace rpv::fleet {

// One fleet scenario: `sessions` UAVs flying the base scenario's mission
// family concurrently over one shared deployment of the base environment.
struct FleetScenario {
  // Environment, congestion controller, mobility, policy, seed. The seed
  // seeds both the shared layout draw and the per-session derivation
  // (base.seed + i * 7919, the campaign convention). multipath must be
  // kNone: a fleet session camps on exactly one deployment.
  experiment::Scenario base;
  int sessions = 100;
  // Mission length per UAV; zero keeps each mobility profile's native
  // duration (~360 s). Fleet sweeps default to shorter missions.
  double horizon_sec = 60.0;
  // Cross-shard cell-load exchange tick.
  double epoch_sec = 1.0;
  // Altitude band for static (hover) missions; air/ground missions take
  // their profiles' own altitudes.
  double min_altitude_m = 25.0;
  double max_altitude_m = 90.0;
  // Radio-map accumulation: when set, every session's event stream also
  // feeds a per-shard radiomap::RadioMap over map_spec. Shard partials fold
  // into FleetRunResult::radio_map in shard-index order; the map's
  // integer-sum algebra makes the fold order-independent, so the map's
  // canonical bytes are identical for any --jobs value.
  bool build_map = false;
  radiomap::GridSpec map_spec{};
};

[[nodiscard]] std::string fleet_label(const FleetScenario& s);

struct FleetCell {
  std::string label;
  FleetScenario scenario;
};

// Cross product for fleet sweeps: fleet size x environment x policy. Empty
// axes collapse to the base value, mirroring exec::expand_grid.
struct FleetGridAxes {
  std::vector<int> sizes;
  std::vector<experiment::Environment> envs;
  std::vector<experiment::Policy> policies;
};

[[nodiscard]] std::vector<FleetCell> expand_fleet_grid(
    const FleetGridAxes& axes, const FleetScenario& base);

// Everything a fleet run derives deterministically from its scenario before
// any simulation happens: the shared layout (one rng draw from the base
// seed, the run_scenario derivation), per-session seeds (base + i * 7919),
// fully wired session configs, and per-session trajectories launched from
// origins sampled across the deployment's footprint. Exposed so tests and
// the N=1 baseline check can rebuild session i's exact inputs and run it
// standalone.
struct FleetMission {
  std::string label;
  cellular::CellLayout layout;
  std::string environment;  // Session environment string, shared by all
  std::vector<std::uint64_t> seeds;
  std::vector<pipeline::SessionConfig> configs;
  std::vector<geo::Trajectory> trajectories;
};

[[nodiscard]] FleetMission plan_fleet(const FleetScenario& s);

struct FleetEngineConfig {
  int jobs = 0;  // worker threads; <= 0 means one per hardware thread
  // Retain every session's full SessionReport next to the fleet report.
  // Only sane for small fleets (the N=1 baseline-equality check); the
  // streaming path never materializes them.
  bool keep_reports = false;
};

struct FleetRunResult {
  FleetReport report;
  double wall_seconds = 0.0;  // not serialized — wall clock is host-dependent
  int jobs = 0;               // resolved worker count used
  std::vector<pipeline::SessionReport> session_reports;  // keep_reports only
  radiomap::RadioMap radio_map;  // build_map only; empty map otherwise
};

class FleetEngine {
 public:
  // Sessions per shard. Fixed so the shard partition — and with it the
  // per-shard merge order — depends only on the fleet size.
  static constexpr std::size_t kShardSize = 16;

  explicit FleetEngine(FleetEngineConfig cfg = {}) : cfg_{cfg} {}

  [[nodiscard]] FleetRunResult run(const FleetScenario& scenario) const;

 private:
  FleetEngineConfig cfg_;
};

}  // namespace rpv::fleet
