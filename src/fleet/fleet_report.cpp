#include "fleet/fleet_report.hpp"

#include <stdexcept>

#include "pipeline/report_json.hpp"

namespace rpv::fleet {

obs::Histogram make_owd_histogram(std::string name) {
  return obs::Histogram{std::move(name), {20, 50, 100, 150, 200, 300, 500, 1000, 2000}};
}

obs::Histogram make_stall_histogram(std::string name) {
  return obs::Histogram{std::move(name), {300, 500, 1000, 2000, 5000}};
}

json::Value fleet_report_to_json(const FleetReport& r) {
  json::Value v = json::Value::object();
  v.set("schema", std::int64_t{pipeline::kReportSchemaVersion});
  v.set("kind", std::string{"fleet"});
  v.set("label", r.label);

  json::Value f = json::Value::object();
  f.set("sessions", std::int64_t{r.sessions})
      .set("horizon_sec", r.horizon_sec)
      .set("epoch_sec", r.epoch_sec)
      .set("total_events", r.total_events)
      .set("mean_goodput_mbps", r.mean_goodput_mbps)
      .set("min_goodput_mbps", r.min_goodput_mbps)
      .set("max_goodput_mbps", r.max_goodput_mbps)
      .set("total_stalls", r.total_stalls)
      .set("mean_stall_ms_per_session", r.mean_stall_ms_per_session)
      .set("packets_sent", r.packets_sent)
      .set("packets_received", r.packets_received)
      .set("peak_cell_load", std::uint64_t{r.peak_cell_load});
  json::Value cells = json::Value::array();
  for (const auto& c : r.cell_peak_load) {
    json::Value e = json::Value::object();
    e.set("cell", std::uint64_t{c.cell_id}).set("peak_users", std::uint64_t{c.peak_users});
    cells.push_back(std::move(e));
  }
  f.set("cell_peak_load", std::move(cells));
  v.set("fleet", std::move(f));

  v.set("metrics", pipeline::metrics_summary_to_json(r.metrics));

  json::Value contention = json::Value::object();
  contention.set("owd_contended_ms", pipeline::histogram_to_json(r.owd_contended_ms));
  contention.set("owd_clean_ms", pipeline::histogram_to_json(r.owd_clean_ms));
  contention.set("stall_contended_ms",
                 pipeline::histogram_to_json(r.stall_contended_ms));
  contention.set("stall_clean_ms", pipeline::histogram_to_json(r.stall_clean_ms));
  v.set("contention", std::move(contention));
  return v;
}

FleetReport fleet_report_from_json(const json::Value& v) {
  const auto schema = v.at("schema").as_i64();
  if (schema != pipeline::kReportSchemaVersion) {
    throw std::runtime_error("fleet_report_json: unsupported schema version " +
                             std::to_string(schema));
  }
  if (v.at("kind").as_string() != "fleet") {
    throw std::runtime_error("fleet_report_json: not a fleet report");
  }
  FleetReport r;
  r.label = v.at("label").as_string();

  const auto& f = v.at("fleet");
  r.sessions = static_cast<int>(f.at("sessions").as_i64());
  r.horizon_sec = f.at("horizon_sec").as_double();
  r.epoch_sec = f.at("epoch_sec").as_double();
  r.total_events = f.at("total_events").as_u64();
  r.mean_goodput_mbps = f.at("mean_goodput_mbps").as_double();
  r.min_goodput_mbps = f.at("min_goodput_mbps").as_double();
  r.max_goodput_mbps = f.at("max_goodput_mbps").as_double();
  r.total_stalls = f.at("total_stalls").as_u64();
  r.mean_stall_ms_per_session = f.at("mean_stall_ms_per_session").as_double();
  r.packets_sent = f.at("packets_sent").as_u64();
  r.packets_received = f.at("packets_received").as_u64();
  r.peak_cell_load = static_cast<std::uint32_t>(f.at("peak_cell_load").as_u64());
  for (const auto& e : f.at("cell_peak_load").items()) {
    CellLoadPeak c;
    c.cell_id = static_cast<std::uint32_t>(e.at("cell").as_u64());
    c.peak_users = static_cast<std::uint32_t>(e.at("peak_users").as_u64());
    r.cell_peak_load.push_back(c);
  }

  r.metrics = pipeline::metrics_summary_from_json(v.at("metrics"));

  const auto& contention = v.at("contention");
  r.owd_contended_ms = pipeline::histogram_from_json(contention.at("owd_contended_ms"));
  r.owd_clean_ms = pipeline::histogram_from_json(contention.at("owd_clean_ms"));
  r.stall_contended_ms =
      pipeline::histogram_from_json(contention.at("stall_contended_ms"));
  r.stall_clean_ms = pipeline::histogram_from_json(contention.at("stall_clean_ms"));
  return r;
}

}  // namespace rpv::fleet
