// SharedDeployment — one cellular topology, many UAV sessions.
//
// Every Session historically owned a private copy of the CellLayout, so no
// two runs could contend for the same eNodeB. A SharedDeployment owns the
// layout once and tracks, per cell, how many attached sessions are actively
// camped on it. Attached links read their PRB share through the
// cellular::CellLoadProvider interface: N active users on a cell each get
// ~1/N of its capacity ceiling, and a cell with at most one user keeps the
// full share — which makes a fleet of one bit-identical to a standalone
// Session.
//
// Concurrency/determinism contract (the FleetEngine's epoch barrier):
//  * report(slot, ...) — each worker writes only its own sessions' slots;
//    distinct slots are distinct memory locations, so no synchronization is
//    needed while an epoch runs.
//  * commit_epoch() — called on one thread at the barrier; recomputes the
//    per-cell user counts from the slots (an order-independent integer sum)
//    and freezes them for the next epoch.
//  * prb_share()/active_users() — read only the frozen table, so any worker
//    may call them at any time during an epoch.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cellular/base_station.hpp"
#include "cellular/cell_load.hpp"
#include "geo/vec3.hpp"

namespace rpv::fleet {

class SharedDeployment final : public cellular::CellLoadProvider {
 public:
  explicit SharedDeployment(cellular::CellLayout layout);

  [[nodiscard]] const cellular::CellLayout& layout() const { return layout_; }

  // Register one session; returns its slot index. Attach everything before
  // the first epoch runs — slots are stable for the deployment's lifetime.
  [[nodiscard]] int attach();
  [[nodiscard]] std::size_t attached() const { return slots_.size(); }

  // Record where a session is camped and whether it still generates load
  // (false once its mission ended and it is only draining). Safe to call
  // concurrently for distinct slots.
  void report(int slot, std::uint32_t cell_id, bool active);

  // Epoch barrier: fold the slot states into the per-cell user counts the
  // next epoch will read, updating the per-cell load peaks.
  void commit_epoch();

  // cellular::CellLoadProvider — the share frozen at the last commit.
  [[nodiscard]] double prb_share(std::uint32_t cell_id) const override;

  [[nodiscard]] std::uint32_t active_users(std::uint32_t cell_id) const;
  [[nodiscard]] std::uint32_t peak_users(std::uint32_t cell_id) const;
  // The busiest any cell has ever been.
  [[nodiscard]] std::uint32_t peak_cell_load() const;
  // Peaks in layout order, parallel to layout().cells.
  [[nodiscard]] const std::vector<std::uint32_t>& peaks() const { return peak_; }

  // Bounding box of the cell sites (z ignored) — the placement area for
  // fleet missions.
  [[nodiscard]] geo::Vec3 area_min() const { return area_min_; }
  [[nodiscard]] geo::Vec3 area_max() const { return area_max_; }

 private:
  struct Slot {
    std::uint32_t cell_id = 0;
    bool active = false;
  };

  cellular::CellLayout layout_;
  std::unordered_map<std::uint32_t, std::size_t> index_;  // cell_id -> idx
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> users_;  // frozen at the last commit_epoch
  std::vector<std::uint32_t> peak_;
  geo::Vec3 area_min_;
  geo::Vec3 area_max_;
};

}  // namespace rpv::fleet
