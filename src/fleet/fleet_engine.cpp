#include "fleet/fleet_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "exec/thread_pool.hpp"
#include "radiomap/map_sink.hpp"
#include "sim/validate.hpp"

namespace rpv::fleet {

namespace {

void validate_scenario(const FleetScenario& s) {
  rpv::validate(s.sessions > 0, "FleetScenario: sessions must be positive");
  rpv::validate(s.epoch_sec > 0.0, "FleetScenario: epoch_sec must be positive");
  rpv::validate(s.horizon_sec >= 0.0,
                "FleetScenario: horizon_sec must not be negative");
  rpv::validate(s.min_altitude_m <= s.max_altitude_m,
                "FleetScenario: altitude band is inverted");
  rpv::validate(s.base.multipath == experiment::Multipath::kNone,
                "FleetScenario: fleet sessions are single-path (multipath "
                "must be kNone)");
  if (s.build_map) {
    rpv::validate(s.map_spec.valid(),
                  "FleetScenario: build_map requires a valid map_spec");
  }
}

// The run_scenario seed whitening, reused so a fleet with the same base
// seed shares its layout draw with the equivalent standalone scenario.
sim::Rng scenario_rng(std::uint64_t seed) {
  return sim::Rng{seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
}

}  // namespace

std::string fleet_label(const FleetScenario& s) {
  std::string label = experiment::environment_name(s.base.env) + "-" +
                      experiment::mobility_name(s.base.mobility) + "-" +
                      pipeline::cc_name(s.base.cc);
  if (s.base.tech == experiment::AccessTech::k5gSa) label += "-5gsa";
  if (s.base.policy == experiment::Policy::kProactive) label += "-proactive";
  label += "-n" + std::to_string(s.sessions);
  return label;
}

std::vector<FleetCell> expand_fleet_grid(const FleetGridAxes& axes,
                                         const FleetScenario& base) {
  const std::vector<int> sizes =
      axes.sizes.empty() ? std::vector<int>{base.sessions} : axes.sizes;
  const std::vector<experiment::Environment> envs =
      axes.envs.empty() ? std::vector<experiment::Environment>{base.base.env}
                        : axes.envs;
  const std::vector<experiment::Policy> policies =
      axes.policies.empty()
          ? std::vector<experiment::Policy>{base.base.policy}
          : axes.policies;
  std::vector<FleetCell> cells;
  cells.reserve(sizes.size() * envs.size() * policies.size());
  for (const auto env : envs) {
    for (const auto policy : policies) {
      for (const auto size : sizes) {
        FleetCell cell;
        cell.scenario = base;
        cell.scenario.base.env = env;
        cell.scenario.base.policy = policy;
        cell.scenario.sessions = size;
        cell.label = fleet_label(cell.scenario);
        cells.push_back(std::move(cell));
      }
    }
  }
  rpv::validate(!cells.empty(), "expand_fleet_grid: fleet grid is empty");
  return cells;
}

FleetMission plan_fleet(const FleetScenario& s) {
  validate_scenario(s);
  FleetMission m;
  m.label = fleet_label(s);
  m.environment = experiment::environment_name(s.base.env) + "/fleet-" +
                  experiment::mobility_name(s.base.mobility);

  // One rng stream drives the shared layout and then every placement draw,
  // all keyed off the base seed alone.
  auto rng = scenario_rng(s.base.seed);
  m.layout = experiment::make_layout(s.base, rng);

  // Place missions inside the deployment footprint, pulled 10% toward the
  // center so edge UAVs still have a serving candidate behind them.
  double min_x = std::numeric_limits<double>::max();
  double min_y = std::numeric_limits<double>::max();
  double max_x = std::numeric_limits<double>::lowest();
  double max_y = std::numeric_limits<double>::lowest();
  for (const auto& bs : m.layout.cells) {
    min_x = std::min(min_x, bs.pos.x);
    min_y = std::min(min_y, bs.pos.y);
    max_x = std::max(max_x, bs.pos.x);
    max_y = std::max(max_y, bs.pos.y);
  }
  const double cx = 0.5 * (min_x + max_x), cy = 0.5 * (min_y + max_y);
  const double hx = 0.45 * (max_x - min_x), hy = 0.45 * (max_y - min_y);

  const auto horizon = sim::Duration::seconds(s.horizon_sec);
  const auto n = static_cast<std::size_t>(s.sessions);
  m.seeds.reserve(n);
  m.configs.reserve(n);
  m.trajectories.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t seed = s.base.seed + static_cast<std::uint64_t>(i) * 7919;
    const geo::Vec3 origin{cx + rng.uniform(-hx, hx), cy + rng.uniform(-hy, hy),
                           rng.uniform(s.min_altitude_m, s.max_altitude_m)};
    experiment::Scenario scn = s.base;
    scn.seed = seed;
    // The fleet aggregates through its own shard registries; per-session
    // ring recorders would cost memory per UAV for nothing.
    scn.observe = false;
    auto session_rng = scenario_rng(seed);
    m.seeds.push_back(seed);
    m.trajectories.push_back(
        experiment::make_trajectory(scn, session_rng, origin, horizon));
    m.configs.push_back(experiment::make_session_config(scn));
  }
  return m;
}

FleetRunResult FleetEngine::run(const FleetScenario& scenario) const {
  const auto wall_start = std::chrono::steady_clock::now();
  auto mission = plan_fleet(scenario);
  const std::size_t n = mission.seeds.size();
  const std::size_t num_shards = (n + kShardSize - 1) / kShardSize;

  SharedDeployment dep{mission.layout};

  struct SessionState {
    std::unique_ptr<pipeline::Session> session;
    std::unique_ptr<obs::FunctionSink> tap;
    std::unique_ptr<radiomap::RadioMapSink> map_sink;
    int slot = 0;
    sim::TimePoint end;
  };
  struct ShardAgg {
    obs::MetricsRegistry registry;
    obs::Histogram owd_contended = make_owd_histogram("owd_contended_ms");
    obs::Histogram owd_clean = make_owd_histogram("owd_clean_ms");
    obs::Histogram stall_contended = make_stall_histogram("stall_contended_ms");
    obs::Histogram stall_clean = make_stall_histogram("stall_clean_ms");
    // Shard-local map partial; a shard's sessions advance on one worker at a
    // time, so accumulation needs no synchronization.
    radiomap::RadioMap map;
  };
  std::vector<SessionState> states(n);
  std::vector<ShardAgg> shards(num_shards);
  if (scenario.build_map) {
    for (auto& agg : shards) agg.map = radiomap::RadioMap{scenario.map_spec};
  }

  // Serial construction keeps every rng draw and t=0 event publication in
  // session-index order. No load provider has committed anything yet, so
  // each session's initial capacity refresh sees a full share.
  for (std::size_t i = 0; i < n; ++i) {
    auto& st = states[i];
    st.session = std::make_unique<pipeline::Session>(
        mission.configs[i], mission.layout, &mission.trajectories[i],
        mission.environment);
    st.end = st.session->drain_end();
    st.slot = dep.attach();
    auto& agg = shards[i / kShardSize];
    auto* link = &st.session->link();
    st.tap = std::make_unique<obs::FunctionSink>(
        obs::kind_bit(obs::EventKind::kStall) |
            obs::kind_bit(obs::EventKind::kPacketReceived),
        [&dep, &agg, link](const obs::Event& e) {
          const bool contended = dep.active_users(link->serving_cell()) > 1;
          if (e.kind == obs::EventKind::kStall) {
            if (const auto* p = std::get_if<obs::StallPayload>(&e.payload)) {
              (contended ? agg.stall_contended : agg.stall_clean)
                  .add(p->duration_ms);
            }
          } else if (const auto* p =
                         std::get_if<obs::PacketPayload>(&e.payload)) {
            (contended ? agg.owd_contended : agg.owd_clean).add(p->owd_ms);
          }
        });
    st.session->observer().subscribe(&agg.registry);
    st.session->observer().subscribe(st.tap.get());
    if (scenario.build_map) {
      st.map_sink = std::make_unique<radiomap::RadioMapSink>(
          &agg.map, &mission.trajectories[i]);
      st.session->observer().subscribe(st.map_sink.get());
    }
    st.session->link().set_load_provider(&dep);
    st.session->begin();
    dep.report(st.slot, st.session->link().serving_cell(), /*active=*/true);
  }
  // Everyone camps somewhere before the first epoch: a 1000-UAV fleet is
  // contended from its first scheduled bit, not after a grace epoch.
  dep.commit_epoch();

  sim::TimePoint global_end = sim::TimePoint::origin();
  for (const auto& st : states) global_end = std::max(global_end, st.end);
  const auto epoch = sim::Duration::seconds(scenario.epoch_sec);

  // The sharded epoch loop. Within an epoch every shard only touches its
  // own sessions, its own aggregation state, and its own deployment slots;
  // cross-session state (the load table) is frozen. The barrier then
  // recomputes the table with an order-independent integer fold.
  sim::TimePoint t = sim::TimePoint::origin();
  bool final_epoch = false;
  while (!final_epoch) {
    t = t + epoch;
    final_epoch = t >= global_end;
    exec::parallel_for_index(num_shards, cfg_.jobs, [&](std::size_t si) {
      const std::size_t lo = si * kShardSize;
      const std::size_t hi = std::min(lo + kShardSize, n);
      for (std::size_t i = lo; i < hi; ++i) {
        auto& st = states[i];
        st.session->simulator().run_until(std::min(t, st.end));
        dep.report(st.slot, st.session->link().serving_cell(),
                   t < mission.trajectories[i].end());
      }
    });
    dep.commit_epoch();
  }

  FleetRunResult result;
  result.jobs = exec::resolve_jobs(cfg_.jobs);
  auto& rep = result.report;
  rep.label = mission.label;
  rep.sessions = scenario.sessions;
  rep.horizon_sec = scenario.horizon_sec;
  rep.epoch_sec = scenario.epoch_sec;

  // Fold shards in shard-index order (merge is associative, so the result
  // is independent of which worker ran which shard).
  obs::MetricsRegistry merged;
  if (scenario.build_map) {
    result.radio_map = radiomap::RadioMap{scenario.map_spec};
  }
  for (const auto& agg : shards) {
    merged.merge(agg.registry);
    rep.owd_contended_ms.merge(agg.owd_contended);
    rep.owd_clean_ms.merge(agg.owd_clean);
    rep.stall_contended_ms.merge(agg.stall_contended);
    rep.stall_clean_ms.merge(agg.stall_clean);
    if (scenario.build_map) result.radio_map.merge(agg.map);
  }
  rep.metrics = merged.summary();

  double goodput_sum = 0.0;
  double goodput_min = std::numeric_limits<double>::max();
  double goodput_max = std::numeric_limits<double>::lowest();
  double stall_ms_sum = 0.0;
  if (cfg_.keep_reports) result.session_reports.reserve(n);
  for (auto& st : states) {
    auto r = st.session->collect();
    rep.total_events += st.session->simulator().executed_events();
    goodput_sum += r.avg_goodput_mbps;
    goodput_min = std::min(goodput_min, r.avg_goodput_mbps);
    goodput_max = std::max(goodput_max, r.avg_goodput_mbps);
    rep.total_stalls += r.stall_count;
    for (const double d : r.stall_duration_ms) stall_ms_sum += d;
    rep.packets_sent += r.packets_sent;
    rep.packets_received += r.packets_received;
    if (cfg_.keep_reports) result.session_reports.push_back(std::move(r));
    st.session.reset();
    st.tap.reset();
    st.map_sink.reset();
  }
  rep.mean_goodput_mbps = goodput_sum / static_cast<double>(n);
  rep.min_goodput_mbps = goodput_min;
  rep.max_goodput_mbps = goodput_max;
  rep.mean_stall_ms_per_session = stall_ms_sum / static_cast<double>(n);

  rep.cell_peak_load.reserve(dep.layout().cells.size());
  for (std::size_t i = 0; i < dep.layout().cells.size(); ++i) {
    rep.cell_peak_load.push_back(
        {dep.layout().cells[i].cell_id, dep.peaks()[i]});
  }
  rep.peak_cell_load = dep.peak_cell_load();

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

}  // namespace rpv::fleet
