#include "fleet/shared_deployment.hpp"

#include <algorithm>
#include <limits>

#include "sim/validate.hpp"

namespace rpv::fleet {

SharedDeployment::SharedDeployment(cellular::CellLayout layout)
    : layout_{std::move(layout)} {
  rpv::validate(!layout_.cells.empty(),
                "SharedDeployment: layout must have at least one cell");
  users_.assign(layout_.cells.size(), 0);
  peak_.assign(layout_.cells.size(), 0);
  double min_x = std::numeric_limits<double>::max();
  double min_y = std::numeric_limits<double>::max();
  double max_x = std::numeric_limits<double>::lowest();
  double max_y = std::numeric_limits<double>::lowest();
  for (std::size_t i = 0; i < layout_.cells.size(); ++i) {
    const auto& bs = layout_.cells[i];
    rpv::validate(index_.emplace(bs.cell_id, i).second,
                  "SharedDeployment: duplicate cell_id in layout");
    min_x = std::min(min_x, bs.pos.x);
    min_y = std::min(min_y, bs.pos.y);
    max_x = std::max(max_x, bs.pos.x);
    max_y = std::max(max_y, bs.pos.y);
  }
  area_min_ = {min_x, min_y, 0.0};
  area_max_ = {max_x, max_y, 0.0};
}

int SharedDeployment::attach() {
  slots_.push_back({});
  return static_cast<int>(slots_.size()) - 1;
}

void SharedDeployment::report(int slot, std::uint32_t cell_id, bool active) {
  auto& s = slots_[static_cast<std::size_t>(slot)];
  s.cell_id = cell_id;
  s.active = active;
}

void SharedDeployment::commit_epoch() {
  std::fill(users_.begin(), users_.end(), 0);
  for (const auto& s : slots_) {
    if (!s.active) continue;
    const auto it = index_.find(s.cell_id);
    if (it == index_.end()) continue;
    ++users_[it->second];
  }
  for (std::size_t i = 0; i < users_.size(); ++i) {
    peak_[i] = std::max(peak_[i], users_[i]);
  }
}

double SharedDeployment::prb_share(std::uint32_t cell_id) const {
  const auto users = active_users(cell_id);
  return users <= 1 ? 1.0 : 1.0 / static_cast<double>(users);
}

std::uint32_t SharedDeployment::active_users(std::uint32_t cell_id) const {
  const auto it = index_.find(cell_id);
  return it == index_.end() ? 0 : users_[it->second];
}

std::uint32_t SharedDeployment::peak_users(std::uint32_t cell_id) const {
  const auto it = index_.find(cell_id);
  return it == index_.end() ? 0 : peak_[it->second];
}

std::uint32_t SharedDeployment::peak_cell_load() const {
  std::uint32_t peak = 0;
  for (const auto p : peak_) peak = std::max(peak, p);
  return peak;
}

}  // namespace rpv::fleet
