// FleetReport — the streaming-aggregated result of a multi-UAV run.
//
// At fleet scale, keeping (or serializing) one SessionReport per UAV stops
// working: 10k sessions would mean 10k trace-laden documents per run. The
// fleet report is fixed-size instead — scalar aggregates folded in session
// order, one merged obs::MetricsSummary, the per-cell load peaks, and the
// contention-attributed histograms (samples split by whether the serving
// cell hosted more than one active user when they were observed).
//
// Serialized under the session-report schema version (v5) with
// "kind": "fleet"; nothing host- or wall-clock-dependent is written, so two
// runs of the same fleet scenario dump byte-identical JSON for any --jobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "obs/metrics_registry.hpp"

namespace rpv::fleet {

// The histogram layouts the contention attribution uses — identical edges
// to the MetricsRegistry owd_ms / stall_ms histograms so the clean and
// contended splits stay comparable to the merged totals.
[[nodiscard]] obs::Histogram make_owd_histogram(std::string name);
[[nodiscard]] obs::Histogram make_stall_histogram(std::string name);

struct CellLoadPeak {
  std::uint32_t cell_id = 0;
  std::uint32_t peak_users = 0;
  bool operator==(const CellLoadPeak&) const = default;
};

struct FleetReport {
  std::string label;
  int sessions = 0;
  double horizon_sec = 0.0;
  double epoch_sec = 0.0;
  std::uint64_t total_events = 0;  // simulator events across every session

  // Per-UAV goodput/stall aggregates (folded in session-index order).
  double mean_goodput_mbps = 0.0;
  double min_goodput_mbps = 0.0;
  double max_goodput_mbps = 0.0;
  std::uint64_t total_stalls = 0;
  double mean_stall_ms_per_session = 0.0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;

  // Shared-cell load: peaks in layout order plus the fleet-wide maximum.
  std::vector<CellLoadPeak> cell_peak_load;
  std::uint32_t peak_cell_load = 0;

  // Every session's event stream folded through MetricsRegistry::merge.
  obs::MetricsSummary metrics;

  // Contention attribution: OWD and stall samples observed while the
  // session's serving cell hosted >1 active user vs. while it was alone.
  obs::Histogram owd_contended_ms = make_owd_histogram("owd_contended_ms");
  obs::Histogram owd_clean_ms = make_owd_histogram("owd_clean_ms");
  obs::Histogram stall_contended_ms = make_stall_histogram("stall_contended_ms");
  obs::Histogram stall_clean_ms = make_stall_histogram("stall_clean_ms");

  bool operator==(const FleetReport&) const = default;
};

[[nodiscard]] json::Value fleet_report_to_json(const FleetReport& r);
// Throws std::runtime_error on schema/kind mismatch.
[[nodiscard]] FleetReport fleet_report_from_json(const json::Value& v);

}  // namespace rpv::fleet
