#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rpv::sim {
namespace {

TEST(Simulator, StartsAtOrigin) {
  Simulator s;
  EXPECT_EQ(s.now(), TimePoint::origin());
}

TEST(Simulator, ExecutesInTimestampOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(TimePoint::from_us(300), [&] { order.push_back(3); });
  s.schedule_at(TimePoint::from_us(100), [&] { order.push_back(1); });
  s.schedule_at(TimePoint::from_us(200), [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator s;
  TimePoint seen;
  s.schedule_at(TimePoint::from_us(12345), [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen.us(), 12345);
}

TEST(Simulator, FifoAmongEqualTimestamps) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(TimePoint::from_us(50), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  std::vector<std::int64_t> times;
  s.schedule_in(Duration::millis(10), [&] {
    times.push_back(s.now().us());
    s.schedule_in(Duration::millis(10), [&] { times.push_back(s.now().us()); });
  });
  s.run_all();
  EXPECT_EQ(times, (std::vector<std::int64_t>{10'000, 20'000}));
}

TEST(Simulator, PastEventsRunAtCurrentTime) {
  Simulator s;
  s.schedule_at(TimePoint::from_us(1000), [&] {
    s.schedule_at(TimePoint::from_us(1), [&] {
      EXPECT_EQ(s.now().us(), 1000);  // never goes backwards
    });
  });
  s.run_all();
  EXPECT_EQ(s.executed_events(), 2u);
}

TEST(Simulator, TimerCancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  auto t = s.schedule_timer_at(TimePoint::from_us(10), [&] { ran = true; });
  EXPECT_TRUE(t.cancel());
  s.run_all();
  EXPECT_FALSE(ran);
}

TEST(Simulator, DefaultTimerCancelIsNoop) {
  Timer t;
  EXPECT_FALSE(t.pending());
  EXPECT_FALSE(t.cancel());
}

TEST(Simulator, TimerCancelTwiceSecondFails) {
  Simulator s;
  auto t = s.schedule_timer_at(TimePoint::from_us(10), [] {});
  EXPECT_TRUE(t.cancel());
  EXPECT_FALSE(t.cancel());
}

TEST(Simulator, TimerDestructionCancels) {
  Simulator s;
  bool ran = false;
  {
    auto t = s.schedule_timer_at(TimePoint::from_us(10), [&] { ran = true; });
    EXPECT_TRUE(t.pending());
  }
  s.run_all();
  EXPECT_FALSE(ran);
}

TEST(Simulator, TimerReleaseLetsEventFire) {
  Simulator s;
  bool ran = false;
  {
    auto t = s.schedule_timer_at(TimePoint::from_us(10), [&] { ran = true; });
    t.release();
  }
  s.run_all();
  EXPECT_TRUE(ran);
}

TEST(Simulator, TimerInertAfterFire) {
  Simulator s;
  int runs = 0;
  auto t = s.schedule_timer_at(TimePoint::from_us(10), [&] { ++runs; });
  s.run_all();
  EXPECT_FALSE(t.pending());
  EXPECT_FALSE(t.cancel());
  // The slot may be reused by a new event; the stale timer must not touch it.
  bool second = false;
  auto t2 = s.schedule_timer_at(TimePoint::from_us(20), [&] { second = true; });
  EXPECT_FALSE(t.cancel());
  s.run_all();
  EXPECT_TRUE(second);
  EXPECT_EQ(runs, 1);
}

TEST(Simulator, TimerReassignmentCancelsPrevious) {
  Simulator s;
  bool first = false;
  bool second = false;
  auto t = s.schedule_timer_at(TimePoint::from_us(10), [&] { first = true; });
  t = s.schedule_timer_at(TimePoint::from_us(20), [&] { second = true; });
  s.run_all();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(TimePoint::from_us(i * 100), [&] { ++count; });
  }
  s.run_until(TimePoint::from_us(500));
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now().us(), 500);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.run_until(TimePoint::from_us(777));
  EXPECT_EQ(s.now().us(), 777);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule_at(TimePoint::from_us(5), [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ReentrantSchedulingFromHandler) {
  Simulator s;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 100) s.schedule_in(Duration::micros(1), recur);
  };
  s.schedule_at(TimePoint::origin(), recur);
  s.run_all();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now().us(), 99);
}

TEST(Simulator, PendingEventsAccountsForCancellation) {
  Simulator s;
  auto a = s.schedule_timer_at(TimePoint::from_us(1), [] {});
  s.schedule_at(TimePoint::from_us(2), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  a.cancel();
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator s;
  std::vector<std::int64_t> times;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t t = (i * 7919) % 1000;
    s.schedule_at(TimePoint::from_us(t), [&times, &s] { times.push_back(s.now().us()); });
  }
  s.run_all();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(times.size(), 1000u);
}

}  // namespace
}  // namespace rpv::sim
