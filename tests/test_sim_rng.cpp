#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rpv::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r{99};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r{5};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    if (v == 1) saw_lo = true;
    if (v == 6) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng r{11};
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalParameterized) {
  Rng r{13};
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng r{17};
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(r.lognormal(std::log(20.0), 0.5));
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], 20.0, 1.0);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng r{19};
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(3.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ChanceFrequency) {
  Rng r{23};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng r{29};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{31};
  Rng child = parent.fork();
  // The child stream should not equal the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a{37}, b{37};
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, ReseedResetsStream) {
  Rng r{41};
  const auto first = r.next_u64();
  r.next_u64();
  r.reseed(41);
  EXPECT_EQ(r.next_u64(), first);
}

}  // namespace
}  // namespace rpv::sim
