#include "cc/gcc/gcc_controller.hpp"

#include <gtest/gtest.h>

namespace rpv::cc::gcc {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_ms(double ms) {
  return TimePoint::from_us(static_cast<std::int64_t>(ms * 1000));
}

// --- ArrivalFilter ---

TEST(ArrivalFilter, NoSignalUntilTwoGroups) {
  ArrivalFilter f;
  EXPECT_FALSE(f.on_packet(at_ms(0), at_ms(30)).has_value());
  // Same burst (within 5 ms) extends the group.
  EXPECT_FALSE(f.on_packet(at_ms(2), at_ms(31)).has_value());
}

TEST(ArrivalFilter, StableDelayYieldsNearZeroGradient) {
  ArrivalFilter f;
  for (int i = 0; i < 200; ++i) {
    f.on_packet(at_ms(i * 10), at_ms(i * 10 + 30));
  }
  EXPECT_NEAR(f.gradient_ms(), 0.0, 0.3);
  EXPECT_GT(f.groups_seen(), 100);
}

TEST(ArrivalFilter, GrowingDelayYieldsPositiveGradient) {
  ArrivalFilter f;
  // Delay grows 2 ms per 10 ms group: queue building.
  for (int i = 0; i < 200; ++i) {
    f.on_packet(at_ms(i * 10), at_ms(i * 10 + 30 + i * 2));
  }
  EXPECT_GT(f.gradient_ms(), 0.5);
}

TEST(ArrivalFilter, DrainingQueueYieldsNegativeGradient) {
  ArrivalFilter f;
  // Continuously draining queue: delay falls 2 ms per group throughout.
  for (int i = 0; i < 200; ++i) {
    f.on_packet(at_ms(i * 10), at_ms(i * 10 + 500.0 - i * 2.0));
  }
  EXPECT_LT(f.gradient_ms(), -0.05);
}

TEST(ArrivalFilter, BurstPacketsGroupTogether) {
  ArrivalFilter f;
  int signals = 0;
  // Ten packets per 5 ms burst, bursts every 20 ms.
  for (int burst = 0; burst < 50; ++burst) {
    for (int k = 0; k < 10; ++k) {
      if (f.on_packet(at_ms(burst * 20 + k * 0.4),
                      at_ms(burst * 20 + k * 0.4 + 30))) {
        ++signals;
      }
    }
  }
  // One gradient per group boundary, not per packet.
  EXPECT_LE(signals, 50);
  EXPECT_GT(signals, 30);
}

// --- OveruseDetector ---

TEST(OveruseDetector, NormalForSmallGradient) {
  OveruseDetector d;
  EXPECT_EQ(d.update(0.05, at_ms(0)), BandwidthSignal::kNormal);
}

TEST(OveruseDetector, OveruseForSustainedLargeGradient) {
  OveruseDetector d;
  BandwidthSignal sig = BandwidthSignal::kNormal;
  for (int i = 0; i < 10; ++i) {
    sig = d.update(2.0, at_ms(i * 50));  // amplified well above threshold
  }
  EXPECT_EQ(sig, BandwidthSignal::kOveruse);
}

TEST(OveruseDetector, UnderuseForNegativeGradient) {
  OveruseDetector d;
  EXPECT_EQ(d.update(-2.0, at_ms(0)), BandwidthSignal::kUnderuse);
}

TEST(OveruseDetector, MomentaryBlipDoesNotTrigger) {
  OveruseDetector d;
  d.update(0.0, at_ms(0));
  // A single large sample at the very first over-threshold instant: the
  // 10 ms sustain requirement prevents an immediate overuse signal.
  const auto sig = d.update(2.0, at_ms(1));
  EXPECT_NE(sig, BandwidthSignal::kOveruse);
}

TEST(OveruseDetector, ThresholdAdaptsUpUnderNoise) {
  OveruseDetectorConfig cfg;
  OveruseDetector d{cfg};
  const double t0 = d.threshold_ms();
  for (int i = 0; i < 100; ++i) {
    d.update((i % 2 == 0 ? 1.0 : -1.0), at_ms(i * 50));
  }
  EXPECT_GT(d.threshold_ms(), t0);
}

TEST(OveruseDetector, ThresholdBounded) {
  OveruseDetectorConfig cfg;
  OveruseDetector d{cfg};
  for (int i = 0; i < 2000; ++i) d.update(100.0, at_ms(i * 50));
  EXPECT_LE(d.threshold_ms(), cfg.max_threshold_ms);
}

// --- AimdController ---

TEST(Aimd, IncreasesUnderNormalSignal) {
  AimdController a{AimdConfig{}, 2e6};
  double rate = 0.0;
  for (int i = 0; i < 100; ++i) {
    rate = a.update(BandwidthSignal::kNormal, 50e6, at_ms(i * 100));
  }
  EXPECT_GT(rate, 10e6);
}

TEST(Aimd, DecreaseSetsBetaTimesIncomingRate) {
  AimdController a{AimdConfig{}, 20e6};
  a.update(BandwidthSignal::kNormal, 20e6, at_ms(0));
  const double rate = a.update(BandwidthSignal::kOveruse, 16e6, at_ms(100));
  EXPECT_NEAR(rate, 0.85 * 16e6, 1e4);
}

TEST(Aimd, HoldKeepsRateOnUnderuse) {
  AimdController a{AimdConfig{}, 10e6};
  const double before = a.update(BandwidthSignal::kNormal, 20e6, at_ms(0));
  const double held = a.update(BandwidthSignal::kUnderuse, 20e6, at_ms(100));
  EXPECT_DOUBLE_EQ(held, before);
}

TEST(Aimd, RampReachesPaperTargetInTime) {
  // The paper measures GCC taking ~12 s from 2 to 25 Mbps.
  AimdController a{AimdConfig{}, 2e6};
  double t_reach = -1.0;
  for (int i = 0; i < 600; ++i) {
    const double t = i * 0.1;
    const double rate = a.update(BandwidthSignal::kNormal, 40e6, at_ms(t * 1000));
    if (rate >= 25e6 && t_reach < 0) t_reach = t;
  }
  ASSERT_GT(t_reach, 0.0);
  EXPECT_GT(t_reach, 6.0);
  EXPECT_LT(t_reach, 25.0);
}

TEST(Aimd, RateBounded) {
  AimdConfig cfg;
  AimdController a{cfg, 2e6};
  for (int i = 0; i < 2000; ++i) {
    a.update(BandwidthSignal::kNormal, 1e9, at_ms(i * 100));
  }
  EXPECT_LE(a.rate_bps(), cfg.max_rate_bps);
  AimdController b{cfg, 2e6};
  for (int i = 0; i < 200; ++i) {
    b.update(BandwidthSignal::kOveruse, 1e3, at_ms(i * 100));
  }
  EXPECT_GE(b.rate_bps(), cfg.min_rate_bps);
}

TEST(Aimd, AdditiveNearConvergence) {
  AimdConfig cfg;
  AimdController a{cfg, 20e6};
  // Establish a congestion point at ~20 Mbps.
  a.update(BandwidthSignal::kNormal, 20e6, at_ms(0));
  a.update(BandwidthSignal::kOveruse, 20e6, at_ms(100));
  a.update(BandwidthSignal::kNormal, 20e6, at_ms(200));
  const double r0 = a.rate_bps();
  const double r1 = a.update(BandwidthSignal::kNormal, 20e6, at_ms(1200));
  // Near the congestion point growth is additive: bounded by the configured
  // slope, far below multiplicative growth.
  EXPECT_LE(r1 - r0, cfg.additive_bps_per_sec * 1.1);
}

// --- LossController ---

TEST(LossController, HighLossCutsRate) {
  LossController l{LossControllerConfig{}, 10e6};
  const double rate = l.update(0.2, at_ms(0));
  EXPECT_NEAR(rate, 10e6 * 0.9, 1e4);  // 1 - 0.5*0.2
}

TEST(LossController, LowLossGrowsRate) {
  LossController l{LossControllerConfig{}, 10e6};
  const double rate = l.update(0.001, at_ms(0));
  EXPECT_NEAR(rate, 10.5e6, 1e4);
}

TEST(LossController, MidBandHolds) {
  LossController l{LossControllerConfig{}, 10e6};
  const double rate = l.update(0.05, at_ms(0));
  EXPECT_DOUBLE_EQ(rate, 10e6);
}

TEST(LossController, UpdateIntervalThrottles) {
  LossController l{LossControllerConfig{}, 10e6};
  l.update(0.001, at_ms(0));
  const double r1 = l.rate_bps();
  l.update(0.001, at_ms(10));  // within the 200 ms guard
  EXPECT_DOUBLE_EQ(l.rate_bps(), r1);
}

// --- GccController integration ---

// Drive the full controller over a synthetic bottleneck: packets sent at the
// target rate, arrivals delayed by a queue of fixed capacity.
double run_gcc_over_bottleneck(double capacity_bps, double seconds) {
  GccController gcc;
  double queue_bits = 0.0;
  std::uint16_t seq = 0;
  double t_ms = 0.0;
  double last_feedback_ms = 0.0;
  std::vector<rtp::PacketResult> results;
  while (t_ms < seconds * 1000) {
    // One packet per iteration at the current rate.
    const double bits = 1200 * 8;
    const double interval_ms = bits / gcc.target_bitrate_bps() * 1000;
    t_ms += interval_ms;
    gcc.on_packet_sent({seq, 1200, at_ms(t_ms)});
    queue_bits = std::max(0.0, queue_bits - capacity_bps * interval_ms / 1000);
    queue_bits += bits;
    const double delay_ms = 30.0 + queue_bits / capacity_bps * 1000;
    results.push_back({seq, true, at_ms(t_ms + delay_ms)});
    ++seq;
    if (t_ms - last_feedback_ms >= 50.0) {
      rtp::FeedbackReport report;
      report.generated = at_ms(t_ms);
      report.results = results;
      results.clear();
      gcc.on_feedback(report, at_ms(t_ms));
      last_feedback_ms = t_ms;
    }
  }
  return gcc.target_bitrate_bps();
}

TEST(GccController, ConvergesBelowBottleneck) {
  const double rate = run_gcc_over_bottleneck(10e6, 30.0);
  EXPECT_LT(rate, 13e6);
  EXPECT_GT(rate, 4e6);
}

TEST(GccController, RampsOnWideLink) {
  const double rate = run_gcc_over_bottleneck(100e6, 30.0);
  EXPECT_GT(rate, 25e6);
}

TEST(GccController, LossFeedbackDrivesLossController) {
  GccController gcc;
  std::uint16_t seq = 0;
  const double loss_rate_start = gcc.loss_based_rate_bps();
  // Sustained 50% loss: the loss-based controller must cut its estimate and
  // the smoothed loss must reflect the reports.
  for (int r = 0; r < 40; ++r) {
    rtp::FeedbackReport report;
    report.generated = at_ms(r * 50);
    for (int k = 0; k < 10; ++k) {
      gcc.on_packet_sent({seq, 1200, at_ms(r * 50 + k * 5)});
      report.results.push_back({seq, k % 2 == 0, at_ms(r * 50 + k * 5 + 30)});
      ++seq;
    }
    gcc.on_feedback(report, at_ms(r * 50 + 40));
  }
  EXPECT_GT(gcc.smoothed_loss(), 0.2);
  EXPECT_LT(gcc.loss_based_rate_bps(), loss_rate_start);
  // The combined target honours the loss-based bound.
  EXPECT_LE(gcc.target_bitrate_bps(), gcc.loss_based_rate_bps() + 1.0);
}

TEST(GccController, EmptyFeedbackIgnored) {
  GccController gcc;
  const double before = gcc.target_bitrate_bps();
  gcc.on_feedback(rtp::FeedbackReport{}, at_ms(100));
  EXPECT_DOUBLE_EQ(gcc.target_bitrate_bps(), before);
}

TEST(GccController, IncomingRateEstimated) {
  GccController gcc;
  std::uint16_t seq = 0;
  // 1200 B per 1 ms = 9.6 Mbps.
  for (int r = 0; r < 20; ++r) {
    rtp::FeedbackReport report;
    for (int k = 0; k < 50; ++k) {
      const double t = r * 50 + k;
      gcc.on_packet_sent({seq, 1200, at_ms(t)});
      report.results.push_back({seq, true, at_ms(t + 30)});
      ++seq;
    }
    gcc.on_feedback(report, at_ms(r * 50 + 80));
  }
  EXPECT_NEAR(gcc.incoming_rate_bps(), 9.6e6, 1.5e6);
}

TEST(GccController, PacingRateAboveTarget) {
  GccController gcc;
  EXPECT_GT(gcc.pacing_rate_bps(), gcc.target_bitrate_bps());
}

}  // namespace
}  // namespace rpv::cc::gcc
