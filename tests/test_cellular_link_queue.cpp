#include "cellular/link_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rpv::cellular {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::TimePoint;

net::Packet make_packet(std::uint64_t id, std::size_t bytes) {
  net::Packet p;
  p.id = id;
  p.size_bytes = bytes;
  return p;
}

struct Fixture {
  Simulator sim;
  double rate_bps = 8e6;
  std::vector<net::Packet> delivered;
  std::vector<std::uint64_t> dropped;
  LinkQueue queue;

  explicit Fixture(LinkQueueConfig cfg = {})
      : queue{sim, cfg, [this] { return rate_bps; },
              [this](net::Packet p, LinkQueue::DoneFn done) {
                delivered.push_back(p);
                if (done) done(std::move(p));
              },
              [this](const net::Packet& p) { dropped.push_back(p.id); }} {}
};

TEST(LinkQueue, DeliversInFifoOrder) {
  Fixture f;
  for (std::uint64_t i = 1; i <= 5; ++i) f.queue.enqueue(make_packet(i, 1000));
  f.sim.run_all();
  ASSERT_EQ(f.delivered.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(f.delivered[i].id, i + 1);
}

TEST(LinkQueue, SerializationTimeMatchesRate) {
  Fixture f;
  f.rate_bps = 1e6;  // 1000-byte packet -> 8 ms
  f.queue.enqueue(make_packet(1, 1000));
  f.sim.run_all();
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_NEAR(f.delivered[0].sent.ms(), 8.0, 1e-6);
}

TEST(LinkQueue, BackToBackPacketsQueueBehindEachOther) {
  Fixture f;
  f.rate_bps = 1e6;
  f.queue.enqueue(make_packet(1, 1000));
  f.queue.enqueue(make_packet(2, 1000));
  f.sim.run_all();
  ASSERT_EQ(f.delivered.size(), 2u);
  EXPECT_NEAR(f.delivered[1].sent.ms(), 16.0, 1e-6);
}

TEST(LinkQueue, OverflowDropsAndReports) {
  LinkQueueConfig cfg;
  cfg.buffer_bytes = 2500;
  Fixture f{cfg};
  f.queue.enqueue(make_packet(1, 1000));
  f.queue.enqueue(make_packet(2, 1000));
  f.queue.enqueue(make_packet(3, 1000));  // 3000 > 2500: dropped
  EXPECT_EQ(f.queue.drops(), 1u);
  ASSERT_EQ(f.dropped.size(), 1u);
  EXPECT_EQ(f.dropped[0], 3u);
  f.sim.run_all();
  EXPECT_EQ(f.delivered.size(), 2u);
}

TEST(LinkQueue, PauseHaltsService) {
  Fixture f;
  f.queue.enqueue(make_packet(1, 1000));
  f.queue.pause();
  f.sim.run_until(TimePoint::from_us(1'000'000));
  EXPECT_TRUE(f.delivered.empty());
  EXPECT_EQ(f.queue.queued_packets(), 1u);
}

TEST(LinkQueue, ResumeRestartsService) {
  Fixture f;
  f.queue.enqueue(make_packet(1, 1000));
  f.queue.pause();
  f.sim.run_until(TimePoint::from_us(500'000));
  f.queue.resume();
  f.sim.run_all();
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_GT(f.delivered[0].sent, TimePoint::from_us(500'000));
}

TEST(LinkQueue, PauseMidServiceReserializesHead) {
  Fixture f;
  f.rate_bps = 1e6;  // 8 ms per 1000 B
  f.queue.enqueue(make_packet(1, 1000));
  f.sim.run_until(TimePoint::from_us(4000));  // half-way through
  f.queue.pause();
  f.queue.resume();
  f.sim.run_all();
  ASSERT_EQ(f.delivered.size(), 1u);
  // Full serialization restarts after the pause: 4 ms + 8 ms = 12 ms.
  EXPECT_NEAR(f.delivered[0].sent.ms(), 12.0, 0.01);
}

TEST(LinkQueue, EnqueueWhilePausedAccumulates) {
  Fixture f;
  f.queue.pause();
  for (std::uint64_t i = 1; i <= 3; ++i) f.queue.enqueue(make_packet(i, 500));
  EXPECT_EQ(f.queue.queued_packets(), 3u);
  EXPECT_EQ(f.queue.queued_bytes(), 1500u);
  f.queue.resume();
  f.sim.run_all();
  EXPECT_EQ(f.delivered.size(), 3u);
}

TEST(LinkQueue, QueuingDelayEstimate) {
  Fixture f;
  f.rate_bps = 8e6;
  f.queue.pause();
  f.queue.enqueue(make_packet(1, 100000));  // 100 KB at 8 Mbps = 100 ms
  EXPECT_NEAR(f.queue.queuing_delay_sec(), 0.1, 1e-9);
}

TEST(LinkQueue, FillFractionTracksOccupancy) {
  LinkQueueConfig cfg;
  cfg.buffer_bytes = 10000;
  Fixture f{cfg};
  f.queue.pause();
  f.queue.enqueue(make_packet(1, 2500));
  EXPECT_NEAR(f.queue.fill_fraction(), 0.25, 1e-9);
}

TEST(LinkQueue, DoublePauseAndResumeIdempotent) {
  Fixture f;
  f.queue.enqueue(make_packet(1, 1000));
  f.queue.pause();
  f.queue.pause();
  f.queue.resume();
  f.queue.resume();
  f.sim.run_all();
  EXPECT_EQ(f.delivered.size(), 1u);
}

TEST(LinkQueue, CompletionRidesThroughQueue) {
  Fixture f;
  std::vector<std::uint64_t> completed;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    f.queue.enqueue(make_packet(i, 1000),
                    [&completed](net::Packet p) { completed.push_back(p.id); });
  }
  f.queue.enqueue(make_packet(4, 1000));  // no completion: must not crash
  f.sim.run_all();
  EXPECT_EQ(completed, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(f.delivered.size(), 4u);
}

TEST(LinkQueue, DroppedPacketCompletionDiscarded) {
  LinkQueueConfig cfg;
  cfg.buffer_bytes = 1500;
  Fixture f{cfg};
  bool completed = false;
  f.queue.enqueue(make_packet(1, 1000));
  f.queue.enqueue(make_packet(2, 1000),
                  [&completed](net::Packet) { completed = true; });
  f.sim.run_all();
  EXPECT_FALSE(completed);
  ASSERT_EQ(f.dropped.size(), 1u);
  EXPECT_EQ(f.dropped[0], 2u);
}

TEST(LinkQueue, RateChangeAffectsSubsequentPackets) {
  Fixture f;
  f.rate_bps = 1e6;
  f.queue.enqueue(make_packet(1, 1000));
  f.sim.run_all();
  f.rate_bps = 2e6;
  f.queue.enqueue(make_packet(2, 1000));
  f.sim.run_all();
  const double second_tx_ms = (f.delivered[1].sent - f.delivered[0].sent).ms();
  EXPECT_NEAR(second_tx_ms, 4.0, 0.01);
}

}  // namespace
}  // namespace rpv::cellular
