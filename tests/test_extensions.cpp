// Tests for the Section 5 extension features: DAPS make-before-break
// handover, CoDel-style AQM on the uplink queue, and multipath duplication.
#include <gtest/gtest.h>

#include "cellular/link_queue.hpp"
#include "experiment/scenario.hpp"
#include "metrics/cdf.hpp"
#include "pipeline/multipath_session.hpp"

namespace rpv {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::TimePoint;

// --- CoDel AQM ---

struct AqmFixture {
  Simulator sim;
  double rate_bps = 8e6;
  int delivered = 0;
  int dropped = 0;
  cellular::LinkQueue queue;

  explicit AqmFixture(cellular::LinkQueueConfig cfg)
      : queue{sim, cfg, [this] { return rate_bps; },
              [this](net::Packet, cellular::LinkQueue::DoneFn) { ++delivered; },
              [this](const net::Packet&) { ++dropped; }} {}

  void offer(double load_bps, double seconds) {
    const double interval_s = 1240.0 * 8.0 / load_bps;
    int id = 1;
    for (double t = 0.0; t < seconds; t += interval_s) {
      net::Packet p;
      p.id = static_cast<std::uint64_t>(id++);
      p.size_bytes = 1240;
      p.enqueued = TimePoint::origin() + Duration::seconds(t);
      sim.schedule_at(p.enqueued, [this, p] { queue.enqueue(p); });
    }
  }
};

TEST(Aqm, NoDropsBelowTarget) {
  cellular::LinkQueueConfig cfg;
  cfg.aqm_enabled = true;
  AqmFixture f{cfg};
  f.offer(4e6, 10.0);  // half the service rate: sojourn ~0
  f.sim.run_all();
  EXPECT_EQ(f.queue.aqm_drops(), 0u);
  EXPECT_EQ(f.dropped, 0);
}

TEST(Aqm, DropsUnderSustainedOverload) {
  cellular::LinkQueueConfig cfg;
  cfg.aqm_enabled = true;
  AqmFixture f{cfg};
  f.offer(12e6, 10.0);  // 1.5x the service rate: queue builds past target
  f.sim.run_all();
  EXPECT_GT(f.queue.aqm_drops(), 5u);
}

TEST(Aqm, DisabledMeansDeepFifoOnly) {
  cellular::LinkQueueConfig cfg;
  cfg.aqm_enabled = false;
  AqmFixture f{cfg};
  f.offer(12e6, 10.0);
  f.sim.run_all();
  EXPECT_EQ(f.queue.aqm_drops(), 0u);
}

TEST(Aqm, BoundsStandingQueueDelay) {
  // With AQM, the delivered packets' sojourn stays near the target instead
  // of growing toward the deep-buffer limit.
  cellular::LinkQueueConfig cfg;
  cfg.aqm_enabled = true;
  cfg.aqm_target = Duration::millis(20);
  Simulator sim;
  double max_sojourn_ms = 0.0;
  cellular::LinkQueue q{
      sim, cfg, [] { return 8e6; },
      [&](net::Packet p, cellular::LinkQueue::DoneFn) {
        max_sojourn_ms = std::max(max_sojourn_ms, (p.sent - p.enqueued).ms());
      },
      nullptr};
  const double interval_s = 1240.0 * 8.0 / 10e6;  // 10 Mbps offered vs 8 served
  int id = 1;
  for (double t = 0.0; t < 30.0; t += interval_s) {
    net::Packet p;
    p.id = static_cast<std::uint64_t>(id++);
    p.size_bytes = 1240;
    p.enqueued = TimePoint::origin() + Duration::seconds(t);
    sim.schedule_at(p.enqueued, [&q, p] { q.enqueue(p); });
  }
  sim.run_all();
  EXPECT_LT(max_sojourn_ms, 400.0);  // far below the multi-second deep buffer
}

// --- DAPS handover ---

pipeline::SessionReport run_ho_mode(bool daps, std::uint64_t seed) {
  experiment::Scenario s;
  s.env = experiment::Environment::kUrban;
  s.cc = pipeline::CcKind::kGcc;
  s.seed = seed;
  auto cfg = experiment::make_session_config(s);
  cfg.link.handover.make_before_break = daps;
  sim::Rng rng{seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
  auto layout = experiment::make_layout(s, rng);
  auto traj = experiment::make_trajectory(s, rng);
  pipeline::Session session{cfg, std::move(layout), &traj, "daps-test"};
  return session.run();
}

TEST(Daps, StillRecordsHandovers) {
  const auto r = run_ho_mode(true, 91);
  EXPECT_GT(r.handovers.count(), 0u);
}

TEST(Daps, ShortensLatencyTail) {
  metrics::Cdf bbm, daps;
  for (std::uint64_t k = 0; k < 3; ++k) {
    bbm.add_all(run_ho_mode(false, 91 + k).owd_ms);
    daps.add_all(run_ho_mode(true, 91 + k).owd_ms);
  }
  EXPECT_LT(daps.quantile(0.999), bbm.quantile(0.999));
}

// --- Multipath ---

pipeline::SessionReport run_multipath(std::uint64_t seed,
                                      std::uint64_t* rescued = nullptr) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.cc = pipeline::CcKind::kStatic;
  s.seed = seed;
  sim::Rng rng{seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
  auto layout_a = experiment::make_layout(s, rng);
  experiment::Scenario s2 = s;
  s2.env = experiment::Environment::kRuralP2;
  auto layout_b = experiment::make_layout(s2, rng);
  auto traj = experiment::make_trajectory(s, rng);
  auto cfg = experiment::make_session_config(s);
  pipeline::MultipathSession mp{cfg, std::move(layout_a), std::move(layout_b),
                                &traj, "mp-test"};
  auto report = mp.run();
  if (rescued) *rescued = mp.rescued_by_b();
  return report;
}

TEST(Multipath, DeliversWithoutDuplicatesToPlayer) {
  const auto r = run_multipath(17);
  // Unique packets forwarded never exceed the packets sent once.
  EXPECT_LE(r.packets_received, r.packets_sent);
  EXPECT_GT(r.frames_played, r.frames_encoded * 9 / 10);
}

TEST(Multipath, SecondaryLinkRescuesPackets) {
  std::uint64_t rescued = 0;
  run_multipath(18, &rescued);
  EXPECT_GT(rescued, 0u);
}

TEST(Multipath, LowerEffectiveLossThanSinglePath) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.cc = pipeline::CcKind::kStatic;
  double single_per = 0.0, multi_per = 0.0;
  for (std::uint64_t k = 0; k < 3; ++k) {
    s.seed = 50 + k;
    single_per += experiment::run_scenario(s).per;
    multi_per += run_multipath(50 + k).per;
  }
  EXPECT_LT(multi_per, single_per + 1e-9);
}

TEST(Multipath, ReportsCombinedCellCount) {
  const auto r = run_multipath(19);
  EXPECT_GT(r.cells_seen, 2u);
  EXPECT_EQ(r.cc_name, "static+mpdup");
}

}  // namespace
}  // namespace rpv
