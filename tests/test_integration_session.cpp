// End-to-end session invariants: every CC over both environments, checking
// the conservation and sanity properties that must hold regardless of seed.
#include "experiment/scenario.hpp"

#include "metrics/cdf.hpp"
#include <algorithm>

#include <gtest/gtest.h>

namespace rpv::experiment {
namespace {

pipeline::SessionReport run(Environment env, pipeline::CcKind cc,
                            std::uint64_t seed = 5) {
  Scenario s;
  s.env = env;
  s.cc = cc;
  s.seed = seed;
  return run_scenario(s);
}

class SessionCcTest
    : public ::testing::TestWithParam<std::tuple<Environment, pipeline::CcKind>> {};

TEST_P(SessionCcTest, CoreInvariants) {
  const auto [env, cc] = GetParam();
  const auto r = run(env, cc);

  // Frame conservation: played frames never exceed encoded.
  EXPECT_LE(r.frames_played, r.frames_encoded);
  EXPECT_GT(r.frames_encoded, 9000u);  // ~30 fps over the ~5.6 min flight
  EXPECT_GT(r.frames_played, r.frames_encoded * 8 / 10);

  // Packet conservation.
  EXPECT_LE(r.packets_received, r.packets_sent);
  EXPECT_GE(r.per, 0.0);
  EXPECT_LT(r.per, 0.05);

  // One-way delay can never undercut access + WAN propagation.
  for (const double owd : r.owd_ms) EXPECT_GT(owd, 15.0);

  // Playback latency at least the jitter-buffer depth.
  for (const double pl : r.playback_latency_ms) EXPECT_GT(pl, 150.0);

  // SSIM samples in [0, 1].
  for (const double s : r.ssim_samples) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }

  // Goodput below the physical ceiling.
  for (const double g : r.goodput_mbps_windows) {
    EXPECT_GE(g, 0.0);
    EXPECT_LT(g, 51.0);
  }

  // Handovers happened in the air and the log is consistent.
  EXPECT_GT(r.handovers.count(), 0u);
  EXPECT_EQ(r.het_ms.size(), r.handovers.count());
  EXPECT_GT(r.cells_seen, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SessionCcTest,
    ::testing::Combine(::testing::Values(Environment::kUrban,
                                         Environment::kRuralP1,
                                         Environment::kRuralP2),
                       ::testing::Values(pipeline::CcKind::kStatic,
                                         pipeline::CcKind::kGcc,
                                         pipeline::CcKind::kScream)),
    [](const auto& info) {
      std::string name = environment_name(std::get<0>(info.param)) + "_" +
                         pipeline::cc_name(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(Session, DeterministicForSeed) {
  const auto a = run(Environment::kUrban, pipeline::CcKind::kGcc, 33);
  const auto b = run(Environment::kUrban, pipeline::CcKind::kGcc, 33);
  EXPECT_EQ(a.frames_played, b.frames_played);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_DOUBLE_EQ(a.avg_goodput_mbps, b.avg_goodput_mbps);
  EXPECT_EQ(a.handovers.count(), b.handovers.count());
}

TEST(Session, SeedsProduceVariation) {
  const auto a = run(Environment::kUrban, pipeline::CcKind::kGcc, 1);
  const auto b = run(Environment::kUrban, pipeline::CcKind::kGcc, 2);
  EXPECT_NE(a.packets_sent, b.packets_sent);
}

TEST(Session, StaticUsesPaperBitrates) {
  const auto urban = run(Environment::kUrban, pipeline::CcKind::kStatic);
  EXPECT_NEAR(urban.avg_goodput_mbps, 25.0, 3.0);
  const auto rural = run(Environment::kRuralP1, pipeline::CcKind::kStatic);
  EXPECT_NEAR(rural.avg_goodput_mbps, 8.0, 1.5);
}

TEST(Session, AdaptiveRampsFromLowRate) {
  const auto r = run(Environment::kUrban, pipeline::CcKind::kGcc);
  ASSERT_FALSE(r.target_bitrate_trace_bps.empty());
  EXPECT_LT(r.target_bitrate_trace_bps.samples().front().value, 3e6);
  const double ramp = r.ramp_up_seconds(20e6);
  EXPECT_GT(ramp, 2.0);
  EXPECT_LT(ramp, 60.0);
}

TEST(Session, ScreamDiscardsOnlyWithScream) {
  const auto scream = run(Environment::kUrban, pipeline::CcKind::kScream);
  const auto gcc = run(Environment::kUrban, pipeline::CcKind::kGcc);
  EXPECT_EQ(gcc.queue_discard_events, 0u);
  EXPECT_GT(scream.queue_discard_events, 0u);
  EXPECT_GT(scream.scream_misloss_packets, 0u);
}

TEST(Session, ProbeModeMeasuresRtt) {
  Scenario s;
  s.env = Environment::kUrban;
  s.cc = pipeline::CcKind::kNone;
  s.probe_interval = sim::Duration::millis(100);
  s.seed = 9;
  const auto r = run_scenario(s);
  EXPECT_GT(r.rtt_by_altitude.size(), 1000u);
  for (const auto& [alt, rtt] : r.rtt_by_altitude) {
    EXPECT_GE(alt, 0.0);
    EXPECT_LE(alt, 121.0);
    EXPECT_GT(rtt, 30.0);  // paper min RTT ~35 ms
    EXPECT_LT(rtt, 10'000.0);
  }
  EXPECT_EQ(r.frames_encoded, 0u);
}

TEST(Session, GroundRunsSeeFewerHandovers) {
  Scenario air;
  air.env = Environment::kUrban;
  air.cc = pipeline::CcKind::kNone;
  air.probe_interval = sim::Duration::millis(200);
  air.seed = 21;
  Scenario grd = air;
  grd.mobility = Mobility::kGround;
  double air_freq = 0.0, grd_freq = 0.0;
  for (std::uint64_t k = 0; k < 4; ++k) {
    air.seed = 21 + k;
    grd.seed = 21 + k;
    air_freq += run_scenario(air).ho_frequency_per_s;
    grd_freq += run_scenario(grd).ho_frequency_per_s;
  }
  EXPECT_GT(air_freq, 2.0 * grd_freq);
}

TEST(Session, HoLatencyRatiosComputed) {
  const auto r = run(Environment::kUrban, pipeline::CcKind::kGcc);
  EXPECT_FALSE(r.ho_latency_ratios.empty());
  for (const auto& lr : r.ho_latency_ratios) {
    EXPECT_GE(lr.before, 1.0);
    EXPECT_GE(lr.after, 1.0);
  }
}

TEST(Session, DropOnLatencyReducesLatePlayback) {
  Scenario base;
  base.env = Environment::kUrban;
  base.cc = pipeline::CcKind::kScream;
  base.seed = 15;
  const auto normal = run_scenario(base);
  Scenario dol = base;
  dol.drop_on_latency = true;
  const auto dropped = run_scenario(dol);
  metrics::Cdf n, d;
  n.add_all(normal.playback_latency_ms);
  d.add_all(dropped.playback_latency_ms);
  // Appendix A.4: dropping late frames improves the high latency quantiles.
  EXPECT_LT(d.quantile(0.95), n.quantile(0.95) * 1.05);
}

}  // namespace
}  // namespace rpv::experiment
