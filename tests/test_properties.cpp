// Property-style parameterized sweeps across seeds, rates, and module
// configurations: invariants that must hold for any input in the domain.
#include <gtest/gtest.h>

#include "cc/gcc/gcc_controller.hpp"
#include "cc/scream/scream_controller.hpp"
#include "cellular/link_queue.hpp"
#include "cellular/loss_model.hpp"
#include "radiomap/radio_map.hpp"
#include "rtp/jitter_buffer.hpp"
#include "rtp/packetizer.hpp"
#include "rtp/sequence.hpp"
#include "video/encoder_model.hpp"
#include "video/ssim_model.hpp"

namespace rpv {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::TimePoint;

// --- Encoder rate tracking across the paper's full bitrate range ---

class EncoderRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(EncoderRateSweep, RealizedWithinTenPercent) {
  const double target = GetParam();
  video::EncoderModel enc{video::EncoderConfig{}, sim::Rng{99}};
  enc.set_target_bitrate(target);
  std::size_t total = 0;
  const int frames = 1800;  // one minute
  for (int i = 0; i < frames; ++i) {
    total += enc.encode(i, TimePoint::from_us(i * 33'333), 1.0, false).size_bytes;
  }
  const double realized = static_cast<double>(total) * 8.0 * 30.0 / frames;
  EXPECT_NEAR(realized, target, target * 0.10);
}

INSTANTIATE_TEST_SUITE_P(PaperRange, EncoderRateSweep,
                         ::testing::Values(2e6, 4e6, 8e6, 12e6, 16e6, 20e6, 25e6));

// --- SSIM monotonicity across the whole rate sweep ---

class SsimRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(SsimRateSweep, CleanScoreAboveThresholdAndBelowCeiling) {
  const double rate = GetParam();
  video::SsimModel m{video::SsimConfig{}, sim::Rng{1}};
  const double s = m.clean_ssim(rate, 1.0);
  EXPECT_GT(s, video::SsimModel::kThreshold);
  EXPECT_LT(s, 1.0);
}

INSTANTIATE_TEST_SUITE_P(PaperRange, SsimRateSweep,
                         ::testing::Values(2e6, 4e6, 8e6, 12e6, 16e6, 20e6, 25e6));

// --- Packetizer conservation across frame sizes ---

class PacketizerSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PacketizerSweep, BytesAndMarkersConserved) {
  const std::size_t bytes = GetParam();
  rtp::PacketizerConfig cfg;
  rtp::Packetizer pk{cfg};
  video::Frame f;
  f.id = 1;
  f.size_bytes = bytes;
  const auto packets = pk.packetize(f);
  std::size_t payload = 0;
  int markers = 0;
  for (const auto& p : packets) {
    payload += p.size_bytes - cfg.header_overhead_bytes;
    markers += p.frame_last ? 1 : 0;
    EXPECT_LE(p.size_bytes, cfg.mtu_payload_bytes + cfg.header_overhead_bytes);
  }
  EXPECT_EQ(payload, bytes);
  EXPECT_EQ(markers, 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PacketizerSweep,
                         ::testing::Values(1, 100, 1199, 1200, 1201, 5000,
                                           33'000, 104'000, 1'000'000));

// --- Sequence unwrapper: random reorder fuzz across seeds ---

class UnwrapperFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnwrapperFuzz, ValuesConsistentUnderBoundedReorder) {
  sim::Rng rng{GetParam()};
  rtp::SeqUnwrapper u;
  // Generate 50k sequential numbers delivered with bounded reorder (window
  // of 16) and verify every unwrapped value equals the true index.
  const int n = 50'000;
  std::vector<int> pendings;
  int next_emit = 0;
  std::vector<std::pair<std::uint16_t, std::int64_t>> stream;
  for (int i = 0; i < n; ++i) pendings.push_back(i);
  // Bounded shuffle.
  for (int i = 0; i < n; ++i) {
    const int j = std::min<int>(n - 1, i + static_cast<int>(rng.uniform_int(0, 15)));
    std::swap(pendings[i], pendings[j]);
  }
  (void)next_emit;
  for (const int idx : pendings) {
    stream.emplace_back(static_cast<std::uint16_t>(idx & 0xFFFF), idx);
  }
  for (const auto& [seq16, truth] : stream) {
    EXPECT_EQ(u.unwrap(seq16), truth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnwrapperFuzz, ::testing::Values(1, 2, 3, 4, 5));

// --- Link queue work conservation across service rates ---

class LinkQueueRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(LinkQueueRateSweep, AllAcceptedPacketsEventuallyDeliver) {
  const double rate = GetParam();
  Simulator sim;
  int delivered = 0;
  int dropped = 0;
  cellular::LinkQueue q{
      sim, cellular::LinkQueueConfig{}, [rate] { return rate; },
      [&](net::Packet, cellular::LinkQueue::DoneFn) { ++delivered; },
      [&](const net::Packet&) { ++dropped; }};
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    net::Packet p;
    p.id = static_cast<std::uint64_t>(i) + 1;
    p.size_bytes = 1240;
    sim.schedule_at(TimePoint::from_us(i * 1000), [&q, p] { q.enqueue(p); });
  }
  sim.run_all();
  EXPECT_EQ(delivered + dropped, n);
  if (rate > 12e6) EXPECT_EQ(dropped, 0);  // above the offered load
}

INSTANTIATE_TEST_SUITE_P(Rates, LinkQueueRateSweep,
                         ::testing::Values(1e6, 5e6, 15e6, 50e6));

// --- Loss model PER scales sanely across loads ---

class LossSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossSeedSweep, RateStableAcrossSeeds) {
  cellular::LossModel lm{cellular::LossConfig{}, sim::Rng{GetParam()}};
  for (int i = 0; i < 1'000'000; ++i) lm.drops_packet();
  EXPECT_GT(lm.loss_rate(), 1e-4);
  EXPECT_LT(lm.loss_rate(), 3e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossSeedSweep, ::testing::Values(10, 20, 30, 40));

// --- GCC never exceeds configured bounds under arbitrary feedback ---

class GccFeedbackFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GccFeedbackFuzz, TargetStaysInBounds) {
  sim::Rng rng{GetParam()};
  cc::gcc::GccConfig cfg;
  cc::gcc::GccController gcc{cfg};
  std::uint16_t seq = 0;
  double t_ms = 0.0;
  for (int round = 0; round < 300; ++round) {
    rtp::FeedbackReport report;
    const int pkts = static_cast<int>(rng.uniform_int(1, 30));
    for (int k = 0; k < pkts; ++k) {
      t_ms += rng.uniform(0.1, 5.0);
      gcc.on_packet_sent({seq, 1240,
                          TimePoint::from_us(static_cast<std::int64_t>(t_ms * 1000))});
      const bool received = rng.chance(0.9);
      const double arrival = t_ms + rng.uniform(20.0, 400.0);
      report.results.push_back(
          {seq, received,
           TimePoint::from_us(static_cast<std::int64_t>(arrival * 1000))});
      ++seq;
    }
    gcc.on_feedback(report,
                    TimePoint::from_us(static_cast<std::int64_t>((t_ms + 50) * 1000)));
    EXPECT_GE(gcc.target_bitrate_bps(), cfg.aimd.min_rate_bps * 0.99);
    EXPECT_LE(gcc.target_bitrate_bps(), cfg.aimd.max_rate_bps * 1.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GccFeedbackFuzz,
                         ::testing::Values(101, 102, 103, 104, 105));

// --- SCReAM accounting never goes negative under arbitrary feedback ---

class ScreamFeedbackFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScreamFeedbackFuzz, FlightAccountingConsistent) {
  sim::Rng rng{GetParam()};
  cc::scream::ScreamController sc;
  std::uint16_t seq = 0;
  double t_ms = 0.0;
  for (int round = 0; round < 300; ++round) {
    const int pkts = static_cast<int>(rng.uniform_int(0, 20));
    std::uint16_t first = seq;
    for (int k = 0; k < pkts; ++k) {
      t_ms += rng.uniform(0.1, 3.0);
      if (!sc.can_send(1240)) break;
      sc.on_packet_sent({seq++, 1240,
                         TimePoint::from_us(static_cast<std::int64_t>(t_ms * 1000))});
    }
    if (seq != first && rng.chance(0.8)) {
      rtp::FeedbackReport report;
      for (std::uint16_t s = first; s != seq; ++s) {
        report.results.push_back(
            {s, rng.chance(0.95),
             TimePoint::from_us(static_cast<std::int64_t>((t_ms + 40) * 1000))});
      }
      sc.on_feedback(report,
                     TimePoint::from_us(static_cast<std::int64_t>((t_ms + 45) * 1000)));
    }
    sc.on_tick(TimePoint::from_us(static_cast<std::int64_t>(t_ms * 1000)));
    EXPECT_GE(sc.cwnd_bytes(), 2u * 1240u);
    EXPECT_GE(sc.target_bitrate_bps(), 2e6 * 0.99);
    EXPECT_LE(sc.target_bitrate_bps(), 30e6 * 1.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScreamFeedbackFuzz,
                         ::testing::Values(201, 202, 203, 204, 205));

// --- Jitter buffer: releases are always frame-ordered, any loss pattern ---

class JitterBufferFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JitterBufferFuzz, ReleasesMonotoneInFrameId) {
  sim::Rng rng{GetParam()};
  Simulator sim;
  std::vector<std::uint32_t> released;
  rtp::JitterBuffer jb{sim, rtp::JitterBufferConfig{},
                       [&](const rtp::FrameReleaseEvent& ev) {
                         released.push_back(ev.frame_id);
                       }};
  rtp::Packetizer pk;
  for (std::uint32_t i = 0; i < 120; ++i) {
    video::Frame f;
    f.id = i;
    f.size_bytes = 2000 + static_cast<std::size_t>(rng.uniform_int(0, 4000));
    f.capture_time = TimePoint::from_us(i * 33'333);
    for (const auto& p : pk.packetize(f)) {
      if (rng.chance(0.03)) continue;  // random loss
      const auto arrival =
          f.capture_time +
          Duration::millis(static_cast<std::int64_t>(rng.uniform(30.0, 90.0)));
      sim.schedule_at(arrival, [&jb, p] { jb.on_packet(p); });
    }
  }
  sim.run_all();
  EXPECT_TRUE(std::is_sorted(released.begin(), released.end()));
  EXPECT_GT(released.size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitterBufferFuzz,
                         ::testing::Values(301, 302, 303, 304, 305, 306));

// --- RadioMap merge algebra under randomized observation streams ---

namespace {

radiomap::GridSpec random_spec(sim::Rng& rng) {
  radiomap::GridSpec spec;
  spec.origin = {rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0),
                 rng.uniform(-20.0, 20.0)};
  spec.voxel_xy_m = rng.uniform(5.0, 120.0);
  spec.voxel_z_m = rng.uniform(5.0, 60.0);
  spec.nx = static_cast<std::uint32_t>(rng.uniform_int(1, 8));
  spec.ny = static_cast<std::uint32_t>(rng.uniform_int(1, 8));
  spec.nz = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
  return spec;
}

// One random observation applied to a map; the same rng stream applied to
// two maps produces identical mutations.
void random_observation(radiomap::RadioMap& map, const radiomap::GridSpec& spec,
                        sim::Rng& rng) {
  // Mostly in-extent points, occasionally outside (must be dropped).
  const geo::Vec3 p{
      spec.origin.x + rng.uniform(-0.2, 1.2) * spec.voxel_xy_m * spec.nx,
      spec.origin.y + rng.uniform(-0.2, 1.2) * spec.voxel_xy_m * spec.ny,
      spec.origin.z + rng.uniform(-0.2, 1.2) * spec.voxel_z_m * spec.nz};
  switch (rng.uniform_int(0, 4)) {
    case 0:
    case 1:
      map.observe_measurement(p, static_cast<std::uint32_t>(rng.uniform_int(1, 6)),
                              rng.uniform(-120.0, -60.0), rng.uniform(0.0, 40.0),
                              rng.chance(0.1));
      break;
    case 2: map.observe_rlf(p); break;
    case 3: map.observe_loss(p); break;
    default: map.observe_stall(p, rng.uniform(0.0, 500.0)); break;
  }
}

radiomap::RadioMap random_map(const radiomap::GridSpec& spec, sim::Rng& rng,
                              int observations) {
  radiomap::RadioMap map{spec};
  for (int i = 0; i < observations; ++i) random_observation(map, spec, rng);
  return map;
}

}  // namespace

class RadioMapMergeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RadioMapMergeFuzz, MergeIsCommutativeAssociativeAndOrderFree) {
  sim::Rng rng{GetParam()};
  const auto spec = random_spec(rng);
  const auto a = random_map(spec, rng, 200);
  const auto b = random_map(spec, rng, 150);
  const auto c = random_map(spec, rng, 100);

  // Commutative: a+b == b+a.
  auto ab = a;
  ab.merge(b);
  auto ba = b;
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
  EXPECT_EQ(ab.canonical_bytes(), ba.canonical_bytes());

  // Associative: (a+b)+c == a+(b+c).
  auto ab_c = ab;
  ab_c.merge(c);
  auto bc = b;
  bc.merge(c);
  auto a_bc = a;
  a_bc.merge(bc);
  EXPECT_TRUE(ab_c == a_bc);
  EXPECT_EQ(ab_c.canonical_bytes(), a_bc.canonical_bytes());

  // Any fold order over shards gives the shard-merge bytes (the fleet
  // j1-vs-j8 invariant in miniature).
  auto cba = c;
  cba.merge(b);
  cba.merge(a);
  EXPECT_EQ(ab_c.canonical_bytes(), cba.canonical_bytes());

  // Merging an empty map is the identity.
  auto with_empty = ab_c;
  with_empty.merge(radiomap::RadioMap{spec});
  EXPECT_TRUE(with_empty == ab_c);

  // Interleaved single-stream accumulation equals split-and-merge: replay
  // the identical observation stream into one map vs. two alternating maps.
  sim::Rng replay_a{GetParam() + 17};
  sim::Rng replay_b{GetParam() + 17};
  radiomap::RadioMap whole{spec};
  radiomap::RadioMap even{spec}, odd{spec};
  for (int i = 0; i < 300; ++i) random_observation(whole, spec, replay_a);
  for (int i = 0; i < 300; ++i) {
    random_observation(i % 2 == 0 ? even : odd, spec, replay_b);
  }
  even.merge(odd);
  EXPECT_TRUE(whole == even);
  EXPECT_EQ(whole.canonical_bytes(), even.canonical_bytes());

  // And the canonical bytes round-trip exactly through the strict loader.
  EXPECT_EQ(radiomap::radio_map_from_bytes(whole.canonical_bytes())
                .canonical_bytes(),
            whole.canonical_bytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadioMapMergeFuzz,
                         ::testing::Values(401, 402, 403, 404, 405, 406, 407,
                                           408));

// --- Grid quantization round-trip for randomized extents/resolutions ---

class RadioMapQuantizeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RadioMapQuantizeFuzz, QuantizeIndexCenterNeverLeavesTheVoxel) {
  sim::Rng rng{GetParam()};
  for (int trial = 0; trial < 50; ++trial) {
    const auto spec = random_spec(rng);
    for (int i = 0; i < 200; ++i) {
      const geo::Vec3 p{
          spec.origin.x + rng.uniform(-0.5, 1.5) * spec.voxel_xy_m * spec.nx,
          spec.origin.y + rng.uniform(-0.5, 1.5) * spec.voxel_xy_m * spec.ny,
          spec.origin.z + rng.uniform(-0.5, 1.5) * spec.voxel_z_m * spec.nz};
      const auto idx = spec.index_of(p);
      const bool inside =
          p.x >= spec.origin.x &&
          p.x < spec.origin.x + spec.voxel_xy_m * spec.nx &&
          p.y >= spec.origin.y &&
          p.y < spec.origin.y + spec.voxel_xy_m * spec.ny &&
          p.z >= spec.origin.z && p.z < spec.origin.z + spec.voxel_z_m * spec.nz;
      if (!idx.has_value()) {
        // index_of may reject boundary points the naive float test admits
        // (accumulated division error), but never interior ones.
        if (inside) {
          const double fx = (p.x - spec.origin.x) / spec.voxel_xy_m;
          const double fy = (p.y - spec.origin.y) / spec.voxel_xy_m;
          const double fz = (p.z - spec.origin.z) / spec.voxel_z_m;
          ADD_FAILURE() << "in-extent point rejected: fx=" << fx
                        << " fy=" << fy << " fz=" << fz;
        }
        continue;
      }
      ASSERT_LT(*idx, spec.voxel_count());
      // The center maps back to the same voxel...
      EXPECT_EQ(spec.index_of(spec.center_of(*idx)).value(), *idx);
      // ...and the point lies inside [voxel_min, voxel_max).
      const auto lo = spec.voxel_min(*idx);
      const auto hi = spec.voxel_max(*idx);
      EXPECT_GE(p.x, lo.x);
      EXPECT_LT(p.x, hi.x + 1e-9);
      EXPECT_GE(p.y, lo.y);
      EXPECT_LT(p.y, hi.y + 1e-9);
      EXPECT_GE(p.z, lo.z);
      EXPECT_LT(p.z, hi.z + 1e-9);
      // Axis decomposition is consistent with the linear layout.
      EXPECT_EQ((spec.z_of(*idx) * spec.ny + spec.y_of(*idx)) * spec.nx +
                    spec.x_of(*idx),
                *idx);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadioMapQuantizeFuzz,
                         ::testing::Values(501, 502, 503, 504, 505, 506));

}  // namespace
}  // namespace rpv
