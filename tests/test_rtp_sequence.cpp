#include "rtp/sequence.hpp"

#include <gtest/gtest.h>

namespace rpv::rtp {
namespace {

TEST(SeqDiff, Basic) {
  EXPECT_EQ(seq_diff(10, 5), 5);
  EXPECT_EQ(seq_diff(5, 10), -5);
  EXPECT_EQ(seq_diff(7, 7), 0);
}

TEST(SeqDiff, AcrossWrap) {
  EXPECT_EQ(seq_diff(2, 65534), 4);
  EXPECT_EQ(seq_diff(65534, 2), -4);
}

TEST(SeqNewer, Semantics) {
  EXPECT_TRUE(seq_newer(1, 0));
  EXPECT_TRUE(seq_newer(0, 65535));  // wrapped
  EXPECT_FALSE(seq_newer(65535, 0));
}

TEST(SeqUnwrapper, MonotoneWithoutWrap) {
  SeqUnwrapper u;
  for (std::uint16_t s = 0; s < 1000; ++s) {
    EXPECT_EQ(u.unwrap(s), s);
  }
}

TEST(SeqUnwrapper, CrossesWrapForward) {
  SeqUnwrapper u;
  std::int64_t prev = u.unwrap(65530);
  for (int i = 0; i < 20; ++i) {
    const auto s = static_cast<std::uint16_t>(65531 + i);
    const std::int64_t v = u.unwrap(s);
    EXPECT_EQ(v, prev + 1);
    prev = v;
  }
}

TEST(SeqUnwrapper, ReorderedPacketMapsBackwards) {
  SeqUnwrapper u;
  u.unwrap(100);
  u.unwrap(101);
  u.unwrap(102);
  EXPECT_EQ(u.unwrap(99), u.highest() - 3);
  // State untouched by the reorder: next in-order value continues.
  const std::int64_t v103 = u.unwrap(103);
  EXPECT_EQ(v103, 103);
  EXPECT_EQ(u.highest(), v103);
}

TEST(SeqUnwrapper, ReorderAroundWrapDoesNotCorruptState) {
  // Regression: the old implementation shifted its base permanently when an
  // out-of-order pre-wrap packet arrived after the wrap, throwing every
  // subsequent value off by 65536.
  SeqUnwrapper u;
  std::int64_t v = 0;
  for (std::uint16_t s = 65500; s != 0; ++s) v = u.unwrap(s);  // up to 65535
  v = u.unwrap(0);
  v = u.unwrap(1);
  const std::int64_t at_one = v;
  // Late, reordered pre-wrap packet.
  EXPECT_EQ(u.unwrap(65534), at_one - 3);
  // In-order continuation must be exactly +1 from seq 1's value.
  EXPECT_EQ(u.unwrap(2), at_one + 1);
  EXPECT_EQ(u.unwrap(3), at_one + 2);
}

TEST(SeqUnwrapper, MultipleWraps) {
  SeqUnwrapper u;
  std::int64_t expected = 0;
  std::uint16_t s = 0;
  u.unwrap(0);
  for (std::int64_t i = 1; i <= 200000; ++i) {
    ++s;
    ++expected;
    EXPECT_EQ(u.unwrap(s), expected);
  }
}

TEST(SeqUnwrapper, LargeForwardJumpFollowed) {
  SeqUnwrapper u;
  u.unwrap(0);
  // A 1000-packet gap (sender-side discard) still unwraps forward.
  EXPECT_EQ(u.unwrap(1000), 1000);
}

TEST(SeqUnwrapper, StartedFlag) {
  SeqUnwrapper u;
  EXPECT_FALSE(u.started());
  u.unwrap(5);
  EXPECT_TRUE(u.started());
  EXPECT_EQ(u.highest(), 5);
}

}  // namespace
}  // namespace rpv::rtp
