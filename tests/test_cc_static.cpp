#include "cc/static_rate.hpp"

#include <gtest/gtest.h>

namespace rpv::cc {
namespace {

TEST(StaticRate, HoldsConfiguredBitrate) {
  StaticRate s{25e6};
  EXPECT_DOUBLE_EQ(s.target_bitrate_bps(), 25e6);
}

TEST(StaticRate, IgnoresFeedback) {
  StaticRate s{8e6};
  rtp::FeedbackReport report;
  report.results.push_back({0, false, {}});
  s.on_feedback(report, sim::TimePoint::from_us(1000));
  EXPECT_DOUBLE_EQ(s.target_bitrate_bps(), 8e6);
}

TEST(StaticRate, NotWindowLimited) {
  StaticRate s{8e6};
  EXPECT_FALSE(s.window_limited());
  EXPECT_TRUE(s.can_send(1'000'000));
}

TEST(StaticRate, PacingRateHasHeadroom) {
  StaticRate s{8e6};
  EXPECT_GT(s.pacing_rate_bps(), 8e6);
}

TEST(StaticRate, Name) {
  EXPECT_EQ(StaticRate{1e6}.name(), "static");
}

}  // namespace
}  // namespace rpv::cc
