#include "cellular/loss_model.hpp"

#include <gtest/gtest.h>

namespace rpv::cellular {
namespace {

TEST(LossModel, OverallRateNearPaperBand) {
  // The paper reports a PER of 0.06-0.07% on the radio; the default config
  // should land in that neighbourhood.
  LossModel lm{LossConfig{}, sim::Rng{1}};
  const int n = 2'000'000;
  for (int i = 0; i < n; ++i) lm.drops_packet();
  EXPECT_GT(lm.loss_rate(), 2e-4);
  EXPECT_LT(lm.loss_rate(), 1.5e-3);
}

TEST(LossModel, DropsAreBursty) {
  // The paper: "Most of the observed packet drops occurred consecutively."
  LossModel lm{LossConfig{}, sim::Rng{2}};
  int losses = 0, consecutive_pairs = 0;
  bool prev_lost = false;
  for (int i = 0; i < 5'000'000; ++i) {
    const bool lost = lm.drops_packet();
    if (lost) {
      ++losses;
      if (prev_lost) ++consecutive_pairs;
    }
    prev_lost = lost;
  }
  ASSERT_GT(losses, 100);
  // Under independent losses at this rate, consecutive pairs would be
  // essentially zero; burstiness makes them a large fraction.
  EXPECT_GT(static_cast<double>(consecutive_pairs) / losses, 0.2);
}

TEST(LossModel, BadStateLossRateHigher) {
  LossConfig cfg;
  cfg.p_good_to_bad = 1.0;  // enter immediately
  cfg.p_bad_to_good = 0.0;  // stay
  LossModel lm{cfg, sim::Rng{3}};
  int losses = 0;
  for (int i = 0; i < 10000; ++i) losses += lm.drops_packet() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(losses) / 10000, cfg.loss_bad, 0.03);
}

TEST(LossModel, AltitudeBoostRaisesRate) {
  LossConfig cfg;
  cfg.altitude_boost = 5.0;
  LossModel ground{cfg, sim::Rng{4}};
  LossModel air{cfg, sim::Rng{4}};
  const int n = 3'000'000;
  for (int i = 0; i < n; ++i) {
    ground.drops_packet(0.0);
    air.drops_packet(120.0);
  }
  EXPECT_GT(air.loss_rate(), 1.5 * ground.loss_rate());
}

TEST(LossModel, StressBoostRaisesRate) {
  LossConfig cfg;
  cfg.stress_boost = 50.0;
  LossModel calm{cfg, sim::Rng{5}};
  LossModel stressed{cfg, sim::Rng{5}};
  const int n = 3'000'000;
  for (int i = 0; i < n; ++i) {
    calm.drops_packet(0.0, 0.0);
    stressed.drops_packet(0.0, 1.0);
  }
  EXPECT_GT(stressed.loss_rate(), 3.0 * calm.loss_rate());
}

TEST(LossModel, CountersConsistent) {
  LossModel lm{LossConfig{}, sim::Rng{6}};
  for (int i = 0; i < 1000; ++i) lm.drops_packet();
  EXPECT_EQ(lm.total_seen(), 1000u);
  EXPECT_LE(lm.total_lost(), lm.total_seen());
}

TEST(LossModel, ZeroConfigNeverLoses) {
  LossConfig cfg;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 0.0;
  LossModel lm{cfg, sim::Rng{7}};
  for (int i = 0; i < 100000; ++i) EXPECT_FALSE(lm.drops_packet());
}

TEST(LossModel, BurstLengthMatchesTransitionProbability) {
  LossConfig cfg;
  cfg.p_good_to_bad = 0.01;
  cfg.p_bad_to_good = 0.1;  // mean dwell ~10 packets
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  LossModel lm{cfg, sim::Rng{8}};
  std::vector<int> bursts;
  int current = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    if (lm.drops_packet()) {
      ++current;
    } else if (current > 0) {
      bursts.push_back(current);
      current = 0;
    }
  }
  ASSERT_GT(bursts.size(), 100u);
  double mean = 0.0;
  for (const int b : bursts) mean += b;
  mean /= static_cast<double>(bursts.size());
  EXPECT_NEAR(mean, 10.0, 1.5);
}

}  // namespace
}  // namespace rpv::cellular
