#include "pipeline/video_sender.hpp"

#include <gtest/gtest.h>

#include "cc/static_rate.hpp"

namespace rpv::pipeline {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::TimePoint;

struct Fixture {
  Simulator sim;
  FrameTable table;
  std::vector<net::Packet> transmitted;
  std::unique_ptr<VideoSender> sender;

  explicit Fixture(double bitrate = 8e6, SenderConfig cfg = {}) {
    sender = std::make_unique<VideoSender>(
        sim, cfg, std::make_unique<cc::StaticRate>(bitrate), table,
        [this](net::Packet p) { transmitted.push_back(std::move(p)); },
        sim::Rng{1});
  }
};

TEST(VideoSender, EncodesAtThirtyFps) {
  Fixture f;
  f.sender->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(10.0));
  f.sim.run_all();
  EXPECT_NEAR(static_cast<double>(f.sender->frames_encoded()), 300.0, 2.0);
}

TEST(VideoSender, FrameTablePopulated) {
  Fixture f;
  f.sender->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(2.0));
  f.sim.run_all();
  EXPECT_EQ(f.table.size(), f.sender->frames_encoded());
  EXPECT_TRUE(f.table.get(0).has_value());
}

TEST(VideoSender, TransmitsApproximatelyTargetRate) {
  Fixture f{8e6};
  f.sender->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(20.0));
  f.sim.run_all();
  const double realized =
      static_cast<double>(f.sender->bytes_sent()) * 8.0 / 20.0;
  // Media + RTP/UDP/IP overhead sits a few percent above the video rate.
  EXPECT_NEAR(realized, 8e6, 1.5e6);
}

TEST(VideoSender, PacingSpacesPackets) {
  Fixture f{8e6};
  f.sender->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(5.0));
  f.sim.run_all();
  ASSERT_GT(f.transmitted.size(), 100u);
  // No instantaneous bursts: consecutive sends are spaced by at least the
  // serialization time at the pacing rate (1200 B at 10 Mbps = ~0.96 ms),
  // allowing for the pacer's scheduling quantum.
  int zero_gaps = 0;
  for (std::size_t i = 1; i < f.transmitted.size(); ++i) {
    if (f.transmitted[i].enqueued == f.transmitted[i - 1].enqueued) ++zero_gaps;
  }
  EXPECT_EQ(zero_gaps, 0);
}

TEST(VideoSender, PacketsCarryMonotoneTransportSeq) {
  Fixture f;
  f.sender->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(3.0));
  f.sim.run_all();
  for (std::size_t i = 1; i < f.transmitted.size(); ++i) {
    EXPECT_EQ(f.transmitted[i].transport_seq,
              static_cast<std::uint16_t>(f.transmitted[i - 1].transport_seq + 1));
  }
}

TEST(VideoSender, QueueDiscardWhenConfigured) {
  SenderConfig cfg;
  cfg.discard_queue = sim::Duration::millis(100);
  // A choked transmit path: accept only one packet per 10 ms by dropping the
  // rest inside a slow pacer. Easiest: use a window-limited controller that
  // never opens. Instead, emulate by a huge encoder target vs tiny pacing:
  // StaticRate pacing is 1.25x target, so choke with a tiny bitrate and a
  // huge forced encoder floor.
  cfg.encoder.min_bitrate_bps = 20e6;  // encoder pumps 20 Mbps no matter what
  Fixture f{2e6, cfg};                 // pacer drains at 2.5 Mbps
  f.sender->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(10.0));
  f.sim.run_all();
  EXPECT_GT(f.sender->queue_discard_events(), 0u);
  EXPECT_GT(f.sender->packets_discarded(), 0u);
}

TEST(VideoSender, NoDiscardWhenDisabled) {
  SenderConfig cfg;
  cfg.discard_queue = sim::Duration::millis(-1);
  cfg.encoder.min_bitrate_bps = 20e6;
  Fixture f{2e6, cfg};
  f.sender->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(5.0));
  f.sim.run_all();
  EXPECT_EQ(f.sender->queue_discard_events(), 0u);
}

TEST(VideoSender, TargetTraceRecorded) {
  Fixture f{8e6};
  f.sender->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(2.0));
  f.sim.run_all();
  EXPECT_EQ(f.sender->target_bitrate_trace().count(), f.sender->frames_encoded());
  for (const auto& s : f.sender->target_bitrate_trace().samples()) {
    EXPECT_DOUBLE_EQ(s.value, 8e6);
  }
}

TEST(VideoSender, StartOffsetRespected) {
  Fixture f;
  f.sender->start(TimePoint::from_us(5'000'000),
                  TimePoint::from_us(6'000'000));
  f.sim.run_all();
  ASSERT_FALSE(f.transmitted.empty());
  EXPECT_GE(f.transmitted.front().enqueued, TimePoint::from_us(5'000'000));
}

}  // namespace
}  // namespace rpv::pipeline
