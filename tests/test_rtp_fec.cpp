#include "rtp/fec.hpp"

#include <gtest/gtest.h>

namespace rpv::rtp {
namespace {

using sim::TimePoint;

net::Packet media(std::uint16_t tseq, std::size_t bytes = 1240) {
  net::Packet p;
  p.id = tseq + 1;
  p.transport_seq = tseq;
  p.size_bytes = bytes;
  return p;
}

struct Fec {
  std::shared_ptr<FecGroupTable> table = std::make_shared<FecGroupTable>();
  FecEncoder enc;
  FecDecoder dec;
  explicit Fec(FecConfig cfg = {.group_size = 4, .interleave_depth = 1})
      : enc{cfg, table}, dec{table} {}
};

TEST(Fec, ParityEmittedPerGroup) {
  Fec f;
  int parities = 0;
  for (std::uint16_t i = 0; i < 12; ++i) {
    auto m = media(i);
    if (f.enc.on_media_packet(m)) ++parities;
  }
  EXPECT_EQ(parities, 3);
  EXPECT_EQ(f.enc.parity_packets(), 3u);
}

TEST(Fec, MediaTaggedWithGroup) {
  Fec f;
  auto m = media(0);
  f.enc.on_media_packet(m);
  EXPECT_EQ(m.fec_group, 0);
}

TEST(Fec, ParitySizeCoversLargestMember) {
  Fec f;
  std::optional<net::Packet> parity;
  for (std::uint16_t i = 0; i < 4; ++i) {
    auto m = media(i, i == 2 ? 5000 : 1000);
    parity = f.enc.on_media_packet(m);
  }
  ASSERT_TRUE(parity.has_value());
  EXPECT_EQ(parity->size_bytes, 5000u);
  EXPECT_EQ(parity->kind, net::PacketKind::kFecParity);
}

TEST(Fec, RecoversSingleMissingPacket) {
  Fec f;
  std::optional<net::Packet> parity;
  std::vector<net::Packet> sent;
  for (std::uint16_t i = 0; i < 4; ++i) {
    auto m = media(i);
    parity = f.enc.on_media_packet(m);
    sent.push_back(m);  // after encoding: the group tag must be set
    if (parity) break;
  }
  ASSERT_TRUE(parity.has_value());
  // Packet 2 is lost: deliver 0, 1, 3 and the parity.
  for (const std::uint16_t i : {0, 1, 3}) {
    EXPECT_FALSE(f.dec.on_media_packet(sent[i], TimePoint::from_us(i)).has_value());
  }
  const auto rebuilt = f.dec.on_parity_packet(*parity, TimePoint::from_us(100));
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->transport_seq, 2);
  EXPECT_EQ(f.dec.recovered_packets(), 1u);
}

TEST(Fec, NoRepairWithTwoMissing) {
  Fec f;
  std::optional<net::Packet> parity;
  std::vector<net::Packet> sent;
  for (std::uint16_t i = 0; i < 4; ++i) {
    auto m = media(i);
    parity = f.enc.on_media_packet(m);
    sent.push_back(m);  // after encoding: the group tag must be set
  }
  f.dec.on_media_packet(sent[0], TimePoint::from_us(0));
  f.dec.on_media_packet(sent[1], TimePoint::from_us(1));
  EXPECT_FALSE(f.dec.on_parity_packet(*parity, TimePoint::from_us(2)).has_value());
}

TEST(Fec, NoRepairWhenComplete) {
  Fec f;
  std::optional<net::Packet> parity;
  std::vector<net::Packet> sent;
  for (std::uint16_t i = 0; i < 4; ++i) {
    auto m = media(i);
    parity = f.enc.on_media_packet(m);
    sent.push_back(m);  // after encoding: the group tag must be set
  }
  for (const auto& m : sent) f.dec.on_media_packet(m, TimePoint::from_us(1));
  EXPECT_FALSE(f.dec.on_parity_packet(*parity, TimePoint::from_us(2)).has_value());
}

TEST(Fec, LateMemberCompletesRepair) {
  // Parity arrives while two members are missing; the late arrival of one
  // of them makes the group repairable.
  Fec f;
  std::optional<net::Packet> parity;
  std::vector<net::Packet> sent;
  for (std::uint16_t i = 0; i < 4; ++i) {
    auto m = media(i);
    parity = f.enc.on_media_packet(m);
    sent.push_back(m);  // after encoding: the group tag must be set
  }
  f.dec.on_media_packet(sent[0], TimePoint::from_us(0));
  f.dec.on_media_packet(sent[1], TimePoint::from_us(1));
  EXPECT_FALSE(f.dec.on_parity_packet(*parity, TimePoint::from_us(2)).has_value());
  const auto rebuilt = f.dec.on_media_packet(sent[3], TimePoint::from_us(3));
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->transport_seq, 2);
}

TEST(Fec, RepairHappensOnlyOnce) {
  Fec f;
  std::optional<net::Packet> parity;
  std::vector<net::Packet> sent;
  for (std::uint16_t i = 0; i < 4; ++i) {
    auto m = media(i);
    parity = f.enc.on_media_packet(m);
    sent.push_back(m);  // after encoding: the group tag must be set
  }
  for (const std::uint16_t i : {0, 1, 3}) {
    f.dec.on_media_packet(sent[i], TimePoint::from_us(i));
  }
  EXPECT_TRUE(f.dec.on_parity_packet(*parity, TimePoint::from_us(10)).has_value());
  EXPECT_FALSE(f.dec.on_parity_packet(*parity, TimePoint::from_us(11)).has_value());
  EXPECT_EQ(f.dec.recovered_packets(), 1u);
}

TEST(Fec, InterleavingSurvivesBurstLoss) {
  // With depth 8 and groups of 3, a burst of 8 consecutive losses costs each
  // group at most one member — all of them repairable.
  Fec f{FecConfig{.group_size = 3, .interleave_depth = 8}};
  std::vector<net::Packet> sent;
  std::vector<net::Packet> parities;
  for (std::uint16_t i = 0; i < 24; ++i) {
    auto m = media(i);
    if (auto parity = f.enc.on_media_packet(m)) parities.push_back(*parity);
    sent.push_back(m);
  }
  EXPECT_EQ(parities.size(), 8u);
  // Burst: packets 8..15 all lost.
  int recovered = 0;
  for (std::uint16_t i = 0; i < 24; ++i) {
    if (i >= 8 && i < 16) continue;
    if (f.dec.on_media_packet(sent[i], TimePoint::from_us(i))) ++recovered;
  }
  for (const auto& parity : parities) {
    if (f.dec.on_parity_packet(parity, TimePoint::from_us(100))) ++recovered;
  }
  EXPECT_EQ(recovered, 8);
}

TEST(Fec, UnprotectedPacketIgnoredByDecoder) {
  Fec f;
  net::Packet p = media(0);
  p.fec_group = -1;
  EXPECT_FALSE(f.dec.on_media_packet(p, TimePoint::from_us(0)).has_value());
}

}  // namespace
}  // namespace rpv::rtp
