#include "video/ssim_model.hpp"

#include <gtest/gtest.h>

namespace rpv::video {
namespace {

Frame frame_at(double bitrate_bps, bool keyframe = false, double complexity = 1.0) {
  Frame f;
  f.encoded_bitrate_bps = bitrate_bps;
  f.keyframe = keyframe;
  f.complexity = complexity;
  return f;
}

TEST(Ssim, CleanMonotoneInBitrate) {
  SsimModel m{SsimConfig{}, sim::Rng{1}};
  double prev = 0.0;
  for (double rate : {2e6, 4e6, 8e6, 16e6, 25e6}) {
    const double s = m.clean_ssim(rate, 1.0);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(Ssim, CalibratedBands) {
  // The paper's SSIM stays above ~0.9 for 90% of urban (25 Mbps) samples and
  // ~0.8 rural (8 Mbps); the clean curve must support those levels.
  SsimModel m{SsimConfig{}, sim::Rng{1}};
  EXPECT_GT(m.clean_ssim(25e6, 1.0), 0.93);
  EXPECT_GT(m.clean_ssim(8e6, 1.0), 0.85);
  EXPECT_GT(m.clean_ssim(2e6, 1.0), 0.60);
}

TEST(Ssim, HigherComplexityLowersQuality) {
  SsimModel m{SsimConfig{}, sim::Rng{1}};
  EXPECT_GT(m.clean_ssim(8e6, 0.6), m.clean_ssim(8e6, 1.6));
}

TEST(Ssim, ScoreWithinUnitInterval) {
  SsimModel m{SsimConfig{}, sim::Rng{2}};
  for (int i = 0; i < 1000; ++i) {
    const double s = m.score_frame(frame_at(8e6), i % 7 == 0);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Ssim, CorruptionDropsScore) {
  SsimModel m{SsimConfig{}, sim::Rng{3}};
  const double clean = m.score_frame(frame_at(25e6), false);
  const double corrupted = m.score_frame(frame_at(25e6), true);
  EXPECT_LT(corrupted, clean - 0.3);
}

TEST(Ssim, DamagePropagatesAcrossPFrames) {
  SsimModel m{SsimConfig{}, sim::Rng{4}};
  m.score_frame(frame_at(25e6), true);
  // The next frame is intact but inherits concealment damage.
  const double after = m.score_frame(frame_at(25e6), false);
  EXPECT_LT(after, 0.8);
}

TEST(Ssim, DamageHealsOverFrames) {
  SsimModel m{SsimConfig{}, sim::Rng{5}};
  m.score_frame(frame_at(25e6), true);
  double last = 0.0;
  for (int i = 0; i < 40; ++i) last = m.score_frame(frame_at(25e6), false);
  EXPECT_GT(last, 0.9);
}

TEST(Ssim, KeyframeResetsDamage) {
  SsimModel m{SsimConfig{}, sim::Rng{6}};
  m.score_frame(frame_at(25e6), true);
  const double key = m.score_frame(frame_at(25e6, /*keyframe=*/true), false);
  EXPECT_GT(key, 0.9);
}

TEST(Ssim, ThresholdMatchesPaper) {
  EXPECT_DOUBLE_EQ(SsimModel::kThreshold, 0.5);
}

TEST(Ssim, RepeatedCorruptionSaturates) {
  SsimModel m{SsimConfig{}, sim::Rng{7}};
  double s = 1.0;
  for (int i = 0; i < 10; ++i) s = m.score_frame(frame_at(25e6), true);
  EXPECT_LT(s, 0.1);
}

}  // namespace
}  // namespace rpv::video
