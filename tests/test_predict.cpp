// rpv::predict — estimator math, HO predictor scoring edge cases, capacity
// forecaster self-scoring, the proactive adapter's policy surface, the
// prediction block's JSON round trip, and byte-identical proactive campaigns
// across worker counts.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "exec/campaign_engine.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "json/json.hpp"
#include "pipeline/multipath_session.hpp"
#include "pipeline/report_json.hpp"
#include "predict/estimators.hpp"
#include "predict/link_predictor.hpp"
#include "predict/proactive_adapter.hpp"

namespace rpv {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_ms(std::int64_t ms) {
  return TimePoint::origin() + Duration::millis(ms);
}

// --- Ewma ---

TEST(Ewma, FirstSampleSetsValueExactly) {
  predict::Ewma e{0.3};
  EXPECT_FALSE(e.initialized());
  e.update(42.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  predict::Ewma e{0.3};
  for (int i = 0; i < 60; ++i) e.update(5.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-12);
}

TEST(Ewma, StepResponseMovesMonotonicallyTowardNewLevel) {
  predict::Ewma e{0.5};
  for (int i = 0; i < 30; ++i) e.update(0.0);
  double prev = e.value();
  e.update(10.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-9);  // alpha 0.5: halfway in one step
  for (int i = 0; i < 40; ++i) {
    prev = e.value();
    e.update(10.0);
    EXPECT_GE(e.value(), prev);
    EXPECT_LE(e.value(), 10.0);
  }
  EXPECT_NEAR(e.value(), 10.0, 1e-9);
}

TEST(Ewma, RejectsAlphaOutsideUnitInterval) {
  EXPECT_THROW(predict::Ewma{0.0}, std::invalid_argument);
  EXPECT_THROW(predict::Ewma{1.5}, std::invalid_argument);
  EXPECT_NO_THROW(predict::Ewma{1.0});
}

// --- HoltFilter ---

TEST(HoltFilter, TracksPerfectLinearRampExactly) {
  // On a noiseless ramp the level locks to the latest sample and the trend to
  // the per-step slope, so any-horizon forecasts are exact.
  predict::HoltFilter f{0.45, 0.25};
  double x = 3.0;
  for (int i = 0; i < 20; ++i, x += 2.0) f.update(x);
  const double last = x - 2.0;
  EXPECT_TRUE(f.initialized());
  EXPECT_NEAR(f.level(), last, 1e-9);
  EXPECT_NEAR(f.trend(), 2.0, 1e-9);
  EXPECT_NEAR(f.forecast(8.0), last + 16.0, 1e-9);
}

TEST(HoltFilter, ConvergesOnConstantInput) {
  predict::HoltFilter f{0.5, 0.3};
  for (int i = 0; i < 80; ++i) f.update(7.0);
  EXPECT_NEAR(f.level(), 7.0, 1e-9);
  EXPECT_NEAR(f.trend(), 0.0, 1e-9);
  EXPECT_NEAR(f.forecast(10.0), 7.0, 1e-8);
}

TEST(HoltFilter, StepResponseReacquiresNewLevelAndFlatTrend) {
  predict::HoltFilter f{0.5, 0.3};
  for (int i = 0; i < 40; ++i) f.update(0.0);
  for (int i = 0; i < 120; ++i) f.update(10.0);
  EXPECT_NEAR(f.level(), 10.0, 1e-6);
  EXPECT_NEAR(f.trend(), 0.0, 1e-6);
}

TEST(HoltFilter, NotInitializedUntilTrendHasABasis) {
  predict::HoltFilter f;
  EXPECT_FALSE(f.initialized());
  f.update(1.0);
  EXPECT_FALSE(f.initialized());
  f.update(2.0);
  EXPECT_TRUE(f.initialized());
  f.reset();
  EXPECT_FALSE(f.initialized());
}

TEST(HoltFilter, RejectsBadSmoothingFactors) {
  EXPECT_THROW((predict::HoltFilter{0.0, 0.3}), std::invalid_argument);
  EXPECT_THROW((predict::HoltFilter{0.5, 1.0001}), std::invalid_argument);
}

// --- HandoverPredictor ---

// Declining margin at -1 dB per 100 ms tick, starting at `start_db`.
void feed_decline(predict::HandoverPredictor& p, double start_db, int ticks,
                  std::int64_t t0_ms = 0) {
  for (int i = 0; i < ticks; ++i) {
    p.on_margin(at_ms(t0_ms + 100 * i), start_db - i);
  }
}

TEST(HandoverPredictor, ArmsOnDecayAndScoresTruePositiveWithLeadTime) {
  predict::HandoverPredictor p;  // hysteresis 3, guard 0.5, forecast 8 steps
  // Margin 6, 5: at the second tick the trend (-1/step) projects
  // 5 - 8 = -3 past the -2.5 dB trigger line -> armed.
  feed_decline(p, 6.0, 2);
  EXPECT_TRUE(p.armed(at_ms(100)));
  EXPECT_GT(p.confidence(), 0.0);
  p.on_handover(at_ms(500), Duration::millis(300));
  p.finish();
  EXPECT_EQ(p.predicted(), 1u);
  EXPECT_EQ(p.true_positives(), 1u);
  EXPECT_EQ(p.false_positives(), 0u);
  EXPECT_EQ(p.missed(), 0u);
  ASSERT_EQ(p.lead_times_ms().size(), 1u);
  EXPECT_DOUBLE_EQ(p.lead_times_ms()[0], 400.0);  // armed at 100 ms, HO at 500
}

TEST(HandoverPredictor, HorizonExpiryScoresFalsePositive) {
  predict::HandoverPredictor p;
  feed_decline(p, 6.0, 2);  // armed at t=100 ms, horizon 2500 ms
  ASSERT_TRUE(p.armed(at_ms(100)));
  // The margin recovers and the horizon passes without a handover; the next
  // measurement tick retires the armed prediction as a false positive.
  p.on_margin(at_ms(2700), 12.0);
  EXPECT_FALSE(p.armed(at_ms(2700)));
  p.finish();
  EXPECT_EQ(p.true_positives(), 0u);
  EXPECT_EQ(p.false_positives(), 1u);
  EXPECT_EQ(p.missed(), 0u);
}

TEST(HandoverPredictor, UnpredictedHandoverScoresMissed) {
  predict::HandoverPredictor p;
  for (int i = 0; i < 10; ++i) p.on_margin(at_ms(100 * i), 10.0);
  EXPECT_FALSE(p.armed(at_ms(900)));
  p.on_handover(at_ms(1000), Duration::millis(200));
  p.finish();
  EXPECT_EQ(p.predicted(), 0u);
  EXPECT_EQ(p.missed(), 1u);
  EXPECT_TRUE(p.lead_times_ms().empty());
}

TEST(HandoverPredictor, NoHandoverRunStaysClean) {
  predict::HandoverPredictor p;
  for (int i = 0; i < 100; ++i) p.on_margin(at_ms(100 * i), 9.0 + (i % 2));
  p.finish();
  EXPECT_EQ(p.predicted(), 0u);
  EXPECT_EQ(p.true_positives(), 0u);
  EXPECT_EQ(p.false_positives(), 0u);
  EXPECT_EQ(p.missed(), 0u);
}

TEST(HandoverPredictor, FinishDropsUnresolvedArmedPrediction) {
  predict::HandoverPredictor p;
  feed_decline(p, 6.0, 2);
  ASSERT_TRUE(p.armed(at_ms(100)));
  p.finish();  // run ends with the horizon still open: scored neither way
  EXPECT_EQ(p.predicted(), 0u);
  EXPECT_EQ(p.true_positives(), 0u);
  EXPECT_EQ(p.false_positives(), 0u);
}

TEST(HandoverPredictor, BackToBackHandoversSuppressedDuringHet) {
  predict::HandoverPredictor p;
  feed_decline(p, 6.0, 2);
  p.on_handover(at_ms(300), Duration::millis(1000));  // TP; margin undefined
  // Steep decay inside the HET window must not re-arm: the bearer is already
  // moving and the filter was reset.
  feed_decline(p, 2.0, 5, /*t0_ms=*/400);
  EXPECT_FALSE(p.armed(at_ms(800)));
  // A second handover lands before the predictor could re-arm -> missed.
  p.on_handover(at_ms(1000), Duration::millis(300));
  p.finish();
  EXPECT_EQ(p.true_positives(), 1u);
  EXPECT_EQ(p.missed(), 1u);
  EXPECT_EQ(p.false_positives(), 0u);
}

// --- CapacityForecaster ---

TEST(CapacityForecaster, ConstantCapacityForecastsExactlyWithZeroMae) {
  predict::CapacityForecaster f;
  for (int i = 0; i < 30; ++i) f.on_sample(20.0);
  EXPECT_TRUE(f.ready());
  EXPECT_NEAR(f.forecast_mbps(), 20.0, 1e-9);
  // First scorable sample is the third (the filter needs two to initialize).
  EXPECT_EQ(f.samples_scored(), 28u);
  EXPECT_NEAR(f.mae_mbps(), 0.0, 1e-9);
}

TEST(CapacityForecaster, ForecastIsFlooredOnCollapse) {
  predict::CapacityForecaster f;  // floor 0.5 Mbps, forecast 5 steps
  for (double c = 5.0; c >= 1.0; c -= 1.0) f.on_sample(c);
  // Trend -1/step projects 1 - 5 = -4 Mbps; the floor keeps it actionable.
  EXPECT_DOUBLE_EQ(f.forecast_mbps(), 0.5);
}

TEST(CapacityForecaster, NotReadyBeforeTwoSamplesAndReportsFloor) {
  predict::CapacityForecaster f;
  EXPECT_FALSE(f.ready());
  EXPECT_DOUBLE_EQ(f.forecast_mbps(), 0.5);
  EXPECT_EQ(f.samples_scored(), 0u);
  EXPECT_DOUBLE_EQ(f.mae_mbps(), 0.0);
}

// --- ProactiveAdapter ---

cellular::LinkMeasurement measurement(std::int64_t t_ms, double margin_db,
                                      double capacity_mbps = 20.0) {
  cellular::LinkMeasurement m;
  m.t = at_ms(t_ms);
  m.serving_rsrp_dbm = -90.0 + margin_db;
  m.best_neighbor_rsrp_dbm = -90.0;
  m.capacity_mbps = capacity_mbps;
  return m;
}

TEST(ProactiveAdapter, ReactiveModeObservesButNeverActs) {
  predict::ProactiveAdapter a;  // proactive defaults to false
  EXPECT_FALSE(a.proactive());
  for (int i = 0; i < 2; ++i) a.on_link_measurement(measurement(100 * i, 6.0 - i));
  // The predictor armed (observation), but every policy hook stays inert.
  EXPECT_TRUE(a.ho_imminent(at_ms(100)));
  EXPECT_EQ(a.bitrate_cap_bps(at_ms(100)),
            std::numeric_limits<double>::infinity());
  EXPECT_FALSE(a.defer_keyframe(at_ms(100)));
  auto ho = measurement(200, 4.0);
  ho.ho_triggered = true;
  ho.in_handover = true;
  ho.het = Duration::millis(300);
  a.on_link_measurement(ho);
  EXPECT_FALSE(a.should_flush(at_ms(600), 500.0));
  a.finish();
  const auto s = a.stats();
  EXPECT_TRUE(s.enabled);
  EXPECT_FALSE(s.proactive);
  EXPECT_EQ(s.ho_true_positives, 1u);
  EXPECT_EQ(s.dip_windows, 0u);
  EXPECT_EQ(s.proactive_flushes, 0u);
}

TEST(ProactiveAdapter, ProactiveDipCapsBitrateAndDefersKeyframes) {
  predict::ProactiveConfig cfg;
  cfg.proactive = true;
  predict::ProactiveAdapter a{cfg};
  for (int i = 0; i < 2; ++i) a.on_link_measurement(measurement(100 * i, 6.0 - i));
  ASSERT_TRUE(a.ho_imminent(at_ms(100)));
  // Cap = dip_factor (0.7) x forecast (20 Mbps steady capacity), above the
  // 2 Mbps floor.
  EXPECT_NEAR(a.bitrate_cap_bps(at_ms(100)), 0.7 * 20e6, 1e-3);
  EXPECT_TRUE(a.defer_keyframe(at_ms(100)));
  EXPECT_EQ(a.stats().dip_windows, 1u);
}

TEST(ProactiveAdapter, PostHandoverFlushFiresOnceWhenBacklogIsDeep) {
  predict::ProactiveConfig cfg;
  cfg.proactive = true;
  predict::ProactiveAdapter a{cfg};
  for (int i = 0; i < 2; ++i) a.on_link_measurement(measurement(100 * i, 6.0 - i));
  auto ho = measurement(200, -4.0);
  ho.ho_triggered = true;
  ho.in_handover = true;
  ho.het = Duration::millis(400);  // bearer back at t = 600 ms
  a.on_link_measurement(ho);
  // Still interrupted: no flush yet.
  EXPECT_FALSE(a.should_flush(at_ms(500), 300.0));
  // Bearer back with a shallow queue: the opportunity is spent without a flush.
  EXPECT_FALSE(a.should_flush(at_ms(650), 50.0));
  EXPECT_FALSE(a.should_flush(at_ms(700), 500.0));
  EXPECT_EQ(a.stats().proactive_flushes, 0u);

  // Next handover re-arms the flush; a deep queue then flushes exactly once.
  auto ho2 = measurement(2000, -4.0);
  ho2.ho_triggered = true;
  ho2.in_handover = true;
  ho2.het = Duration::millis(200);
  a.on_link_measurement(ho2);
  EXPECT_TRUE(a.should_flush(at_ms(2300), 300.0));
  EXPECT_FALSE(a.should_flush(at_ms(2400), 300.0));
  EXPECT_EQ(a.stats().proactive_flushes, 1u);
}

TEST(ProactiveAdapter, MissingNeighborRelaxesTheMarginFilter) {
  predict::ProactiveConfig cfg;
  cfg.proactive = true;
  predict::ProactiveAdapter a{cfg};
  // Serving RSRP decays but no neighbor is measured (-200 sentinel): the
  // adapter must not arm off a margin against nothing.
  for (int i = 0; i < 10; ++i) {
    cellular::LinkMeasurement m;
    m.t = at_ms(100 * i);
    m.serving_rsrp_dbm = -90.0 - 2.0 * i;
    m.capacity_mbps = 20.0;  // best_neighbor_rsrp_dbm stays at the sentinel
    a.on_link_measurement(m);
  }
  EXPECT_FALSE(a.ho_imminent(at_ms(900)));
  EXPECT_EQ(a.stats().ho_predicted, 0u);
}

// --- Prediction block through report JSON ---

TEST(PredictionJson, PredictionBlockRoundTripsByteStably) {
  pipeline::SessionReport r;
  r.prediction.enabled = true;
  r.prediction.proactive = true;
  r.prediction.ho_predicted = 7;
  r.prediction.ho_true_positives = 5;
  r.prediction.ho_false_positives = 2;
  r.prediction.ho_missed = 1;
  r.prediction.ho_lead_time_ms = {812.5, 1300.0, 400.0};
  r.prediction.capacity_mae_mbps = 1.75;
  r.prediction.capacity_samples = 1234;
  r.prediction.dip_windows = 6;
  r.prediction.keyframes_deferred = 3;
  r.prediction.proactive_flushes = 4;
  r.prediction.predictive_switches = 2;
  r.stall_duration_ms = {120.0, 944.0};

  const std::string bytes = pipeline::report_to_json(r).dump();
  const auto back = pipeline::report_from_json(json::parse(bytes));
  EXPECT_EQ(pipeline::report_to_json(back).dump(), bytes);
  EXPECT_TRUE(back.prediction.proactive);
  EXPECT_EQ(back.prediction.ho_true_positives, 5u);
  EXPECT_EQ(back.prediction.ho_lead_time_ms, r.prediction.ho_lead_time_ms);
  EXPECT_EQ(back.prediction.capacity_samples, 1234u);
  EXPECT_EQ(back.stall_duration_ms, r.stall_duration_ms);
  EXPECT_DOUBLE_EQ(back.prediction.precision(), 5.0 / 7.0);
  EXPECT_DOUBLE_EQ(back.prediction.recall(), 5.0 / 6.0);
}

// --- Predictive failover in multipath kFailover mode ---

TEST(PredictMultipath, ProactiveFailoverSwitchesBeforeLinkDown) {
  experiment::Scenario s;
  s.env = experiment::Environment::kUrban;  // HO-dense: many predicted windows
  s.cc = pipeline::CcKind::kStatic;
  s.seed = 61;
  s.policy = experiment::Policy::kProactive;
  sim::Rng rng{s.seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
  auto layout_a = experiment::make_layout(s, rng);
  experiment::Scenario s2 = s;
  s2.env = experiment::Environment::kRuralP1;
  auto layout_b = experiment::make_layout(s2, rng);
  auto traj = experiment::make_trajectory(s, rng);
  auto cfg = experiment::make_session_config(s);
  pipeline::MultipathSession mp{cfg,        std::move(layout_a),
                                std::move(layout_b), &traj,
                                "predict-failover",  pipeline::MultipathMode::kFailover};
  const auto r = mp.run();
  EXPECT_TRUE(r.prediction.proactive);
  // The primary-side adapter predicted handovers and moved traffic to the
  // secondary before the primary actually went down at least once.
  EXPECT_GT(r.prediction.predictive_switches, 0u);
  EXPECT_GT(mp.failover_events(), 0u);
}

// --- Proactive campaign determinism across worker counts ---

TEST(PredictDeterminism, ProactiveRunsAreByteIdenticalAcrossJobs) {
  experiment::Campaign c;
  c.scenario.env = experiment::Environment::kUrban;
  c.scenario.cc = pipeline::CcKind::kGcc;
  c.scenario.policy = experiment::Policy::kProactive;
  c.scenario.seed = 4242;
  c.runs = 2;

  auto bytes_for = [&](int jobs) {
    c.jobs = jobs;
    std::vector<std::string> out;
    for (const auto& r : experiment::run_campaign(c)) {
      out.push_back(pipeline::report_to_json(r).dump());
    }
    return out;
  };
  const auto serial = bytes_for(1);
  ASSERT_EQ(serial.size(), 2u);
  const auto parallel = bytes_for(8);
  EXPECT_EQ(serial, parallel);
  // The urban flight actually exercises the subsystem: the report must carry
  // predictor activity, not just zeros.
  const auto r = pipeline::report_from_json(json::parse(serial[0]));
  EXPECT_TRUE(r.prediction.enabled);
  EXPECT_TRUE(r.prediction.proactive);
  EXPECT_GT(r.prediction.ho_predicted + r.prediction.ho_missed, 0u);
  EXPECT_GT(r.prediction.capacity_samples, 0u);
}

}  // namespace
}  // namespace rpv
