#include "video/frame_source.hpp"

#include <gtest/gtest.h>

namespace rpv::video {
namespace {

TEST(FrameSource, ComplexityWithinBounds) {
  FrameSourceConfig cfg;
  FrameSource src{cfg, sim::Rng{1}};
  for (int i = 0; i < 100000; ++i) {
    const double c = src.next_complexity();
    EXPECT_GE(c, cfg.min_complexity);
    EXPECT_LE(c, cfg.max_complexity);
  }
}

TEST(FrameSource, MeanRevertsToConfiguredAverage) {
  FrameSourceConfig cfg;
  FrameSource src{cfg, sim::Rng{2}};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += src.next_complexity();
  EXPECT_NEAR(sum / n, cfg.mean_complexity, 0.15);
}

TEST(FrameSource, ShotCutsOccurAtConfiguredRate) {
  FrameSourceConfig cfg;
  cfg.shot_cut_probability = 0.01;
  FrameSource src{cfg, sim::Rng{3}};
  int cuts = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    src.next_complexity();
    if (src.at_shot_cut()) ++cuts;
  }
  EXPECT_NEAR(static_cast<double>(cuts) / n, 0.01, 0.002);
}

TEST(FrameSource, SmoothWithinShots) {
  FrameSourceConfig cfg;
  cfg.shot_cut_probability = 0.0;
  cfg.drift_stddev = 0.01;
  FrameSource src{cfg, sim::Rng{4}};
  double prev = src.next_complexity();
  for (int i = 0; i < 1000; ++i) {
    const double c = src.next_complexity();
    EXPECT_LT(std::abs(c - prev), 0.1);
    prev = c;
  }
}

TEST(FrameSource, CountsFramesProduced) {
  FrameSource src{FrameSourceConfig{}, sim::Rng{5}};
  for (int i = 0; i < 42; ++i) src.next_complexity();
  EXPECT_EQ(src.frames_produced(), 42u);
}

TEST(FrameSource, DeterministicForSeed) {
  FrameSource a{FrameSourceConfig{}, sim::Rng{6}};
  FrameSource b{FrameSourceConfig{}, sim::Rng{6}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.next_complexity(), b.next_complexity());
  }
}

}  // namespace
}  // namespace rpv::video
