// rpv::sat — satellite/mesh path models and 3-way multi-connectivity:
// seed-determinism of the pre-sampled pass/outage schedule, the propagation
// floor, drops across unavailable windows, mesh latency/loss compounding,
// the reorder window under three paths of divergent skew (timeout flush and
// exactly-once dedup across all three), the schema-v6 per-path/sat report
// block, and byte-identical sat-grid campaigns across worker counts.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bond/reorder_window.hpp"
#include "exec/campaign_engine.hpp"
#include "experiment/scenario.hpp"
#include "pipeline/multipath_session.hpp"
#include "pipeline/report_json.hpp"
#include "sat/mesh_link.hpp"
#include "sat/satellite_link.hpp"
#include "sim/simulator.hpp"

namespace rpv {
namespace {

using sim::Duration;
using sim::TimePoint;

net::Packet media(std::uint16_t tseq, std::uint32_t frame, TimePoint sent) {
  net::Packet p;
  p.id = tseq;
  p.kind = net::PacketKind::kRtpVideo;
  p.transport_seq = tseq;
  p.frame_id = frame;
  p.size_bytes = 1200;
  p.sent = sent;
  return p;
}

// --- SatelliteLink ---

TEST(SatelliteLink, PreSampledScheduleIsSeedDeterministic) {
  sim::Simulator sim_a, sim_b;
  sat::SatelliteLinkConfig cfg;
  sat::SatelliteLink a{sim_a, cfg, sim::Rng{77}};
  sat::SatelliteLink b{sim_b, cfg, sim::Rng{77}};
  a.start(Duration::seconds(120.0));
  b.start(Duration::seconds(120.0));

  ASSERT_EQ(a.pass_windows().size(), b.pass_windows().size());
  for (std::size_t i = 0; i < a.pass_windows().size(); ++i) {
    EXPECT_EQ(a.pass_windows()[i].start.us(), b.pass_windows()[i].start.us());
    EXPECT_EQ(a.pass_windows()[i].end.us(), b.pass_windows()[i].end.us());
  }
  ASSERT_EQ(a.outage_windows().size(), b.outage_windows().size());
  for (std::size_t i = 0; i < a.outage_windows().size(); ++i) {
    EXPECT_EQ(a.outage_windows()[i].start.us(),
              b.outage_windows()[i].start.us());
    EXPECT_EQ(a.outage_windows()[i].hard, b.outage_windows()[i].hard);
  }

  sim::Simulator sim_c;
  sat::SatelliteLink c{sim_c, cfg, sim::Rng{78}};
  c.start(Duration::seconds(120.0));
  // Pass *starts* are a fixed cadence; the sampled interruption lengths and
  // outage placement differ under another seed.
  bool differs = a.outage_windows().size() != c.outage_windows().size();
  for (std::size_t i = 0;
       !differs && i < std::min(a.pass_windows().size(),
                                c.pass_windows().size());
       ++i) {
    differs = a.pass_windows()[i].end.us() != c.pass_windows()[i].end.us();
  }
  EXPECT_TRUE(differs);
}

TEST(SatelliteLink, PassCadenceCountsHandoversAndDropsCapacity) {
  sim::Simulator sim;
  sat::SatelliteLinkConfig cfg;
  cfg.outage_mean_gap = sim::Duration::seconds(1e9);  // no outages; isolate the pass process
  sat::SatelliteLink link{sim, cfg, sim::Rng{5}};
  link.start(Duration::seconds(61.0));

  // 15 s cadence over 61 s: passes at 15/30/45/60.
  ASSERT_EQ(link.pass_windows().size(), 4u);
  EXPECT_EQ(link.pass_windows()[0].start.us(),
            (TimePoint::origin() + Duration::seconds(15.0)).us());

  sim.run_until(TimePoint::origin() + Duration::seconds(61.0));
  EXPECT_EQ(link.pass_handovers(), 4u);

  // Inside a pass interruption the bearer is down with zero capacity.
  sim::Simulator sim2;
  sat::SatelliteLink link2{sim2, cfg, sim::Rng{5}};
  link2.start(Duration::seconds(61.0));
  const auto mid = link2.pass_windows()[0].start + Duration::millis(1);
  sim2.run_until(mid);
  EXPECT_TRUE(link2.link_down());
  EXPECT_EQ(link2.current_capacity_mbps(), 0.0);
}

TEST(SatelliteLink, DeliversOnPropagationFloorInOrder) {
  sim::Simulator sim;
  sat::SatelliteLinkConfig cfg;
  cfg.loss_probability = 0.0;
  cfg.jitter = sim::Duration::zero();
  cfg.outage_mean_gap = sim::Duration::seconds(1e9);
  sat::SatelliteLink link{sim, cfg, sim::Rng{9}};
  link.start(Duration::seconds(10.0));

  std::vector<std::pair<std::uint16_t, TimePoint>> got;
  for (std::uint16_t s = 1; s <= 3; ++s) {
    link.send_uplink(media(s, s, sim.now()), [&got, &sim](net::Packet p) {
      got.emplace_back(p.transport_seq, sim.now());
    });
  }
  sim.run_until(TimePoint::origin() + Duration::seconds(1.0));
  ASSERT_EQ(got.size(), 3u);
  // Floor: serialization (1200 B @ 40 Mbps = 0.24 ms) + 27 ms OWD.
  const double first_ms = (got[0].second - TimePoint::origin()).sec() * 1e3;
  EXPECT_GE(first_ms, 27.0);
  EXPECT_LT(first_ms, 29.0);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, got[i - 1].first + 1);
    EXPECT_GE(got[i].second.us(), got[i - 1].second.us());
  }
}

TEST(SatelliteLink, PacketsSentDuringPassInterruptionAreLost) {
  sim::Simulator sim;
  sat::SatelliteLinkConfig cfg;
  cfg.loss_probability = 0.0;
  cfg.outage_mean_gap = sim::Duration::seconds(1e9);
  sat::SatelliteLink link{sim, cfg, sim::Rng{3}};
  link.start(Duration::seconds(31.0));

  std::uint64_t delivered = 0, lost = 0;
  link.set_loss_callback([&lost](const net::Packet&) { ++lost; });

  sim.run_until(link.pass_windows()[0].start + Duration::millis(1));
  link.send_uplink(media(1, 1, sim.now()),
                   [&delivered](net::Packet) { ++delivered; });
  sim.run_until(TimePoint::origin() + Duration::seconds(20.0));
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(lost, 1u);
  EXPECT_EQ(link.radio_losses(), 1u);

  // Clear of the window the same packet sails through.
  link.send_uplink(media(2, 2, sim.now()),
                   [&delivered](net::Packet) { ++delivered; });
  sim.run_until(TimePoint::origin() + Duration::seconds(25.0));
  EXPECT_EQ(delivered, 1u);
}

// --- MeshHopLink ---

TEST(MeshHopLink, LatencyCompoundsWithHopCount) {
  sim::Simulator sim;
  sat::MeshLinkConfig cfg;
  cfg.hops = 4;
  cfg.per_hop_loss = 0.0;
  cfg.per_hop_jitter = sim::Duration::zero();
  sat::MeshHopLink link{sim, cfg, sim::Rng{11}};
  EXPECT_DOUBLE_EQ(link.base_latency_ms(), 32.0);

  TimePoint at = TimePoint::never();
  link.send_uplink(media(1, 1, sim.now()),
                   [&at, &sim](net::Packet) { at = sim.now(); });
  sim.run_until(TimePoint::origin() + Duration::seconds(1.0));
  const double ms = (at - TimePoint::origin()).sec() * 1e3;
  EXPECT_GE(ms, 32.0);  // 4 hops x 8 ms, plus serialization
  EXPECT_LT(ms, 34.0);
}

TEST(MeshHopLink, LossCompoundsWithHopCount) {
  sim::Simulator sim;
  sat::MeshLinkConfig cfg;
  cfg.hops = 6;
  cfg.per_hop_loss = 0.05;  // e2e ~ 1 - 0.95^6 = 26%
  sat::MeshHopLink link{sim, cfg, sim::Rng{13}};

  const int n = 4000;
  int delivered = 0;
  for (int i = 0; i < n; ++i) {
    link.send_uplink(media(static_cast<std::uint16_t>(i), 1, sim.now()),
                     [&delivered](net::Packet) { ++delivered; });
  }
  sim.run_until(TimePoint::origin() + Duration::seconds(30.0));
  const double loss =
      static_cast<double>(link.radio_losses()) / static_cast<double>(n);
  EXPECT_NEAR(loss, 0.265, 0.03);
  EXPECT_EQ(delivered + static_cast<int>(link.radio_losses()), n);
}

// --- ReorderWindow over three paths of divergent skew ---

struct WindowFixture {
  sim::Simulator sim;
  std::vector<std::pair<std::uint16_t, int>> out;  // (transport_seq, path)
  std::unique_ptr<bond::ReorderWindow> window;

  explicit WindowFixture(bond::ReorderWindowConfig cfg = {}) {
    window = std::make_unique<bond::ReorderWindow>(
        sim, cfg, [this](net::Packet p, int path) {
          out.emplace_back(p.transport_seq, path);
        });
  }
};

TEST(ReorderWindowThreePath, DivergentSkewsReleaseInSeqOrder) {
  WindowFixture f;
  // Path 0: fast cellular (~8 ms). Path 2: satellite at its ~30 ms floor.
  // Path 1: loaded cellular (~45 ms). Straggler seq 2 rides the sat path.
  f.window->on_packet(media(1, 1, f.sim.now() - Duration::millis(8)), 0);
  f.window->on_packet(media(3, 3, f.sim.now() - Duration::millis(8)), 0);
  f.window->on_packet(media(5, 5, f.sim.now() - Duration::millis(8)), 0);
  EXPECT_EQ(f.out.size(), 1u);
  EXPECT_EQ(f.window->held(), 2u);

  f.sim.run_until(f.sim.now() + Duration::millis(4));
  f.window->on_packet(media(2, 2, f.sim.now() - Duration::millis(30)), 2);
  // Seqs 1-3 are released; 5 still waits on 4.
  ASSERT_EQ(f.out.size(), 3u);
  EXPECT_EQ(f.out[1], (std::pair<std::uint16_t, int>{2, 2}));
  EXPECT_EQ(f.out[2], (std::pair<std::uint16_t, int>{3, 0}));

  f.sim.run_until(f.sim.now() + Duration::millis(4));
  f.window->on_packet(media(4, 4, f.sim.now() - Duration::millis(45)), 1);
  ASSERT_EQ(f.out.size(), 5u);
  for (std::size_t i = 1; i < f.out.size(); ++i) {
    EXPECT_LT(f.out[i - 1].first, f.out[i].first);
  }
  EXPECT_EQ(f.window->held(), 0u);
  EXPECT_EQ(f.window->flushes(), 0u);
}

TEST(ReorderWindowThreePath, SatFloorSkewTimesOutAndFlushes) {
  WindowFixture f;
  // Prime three divergent per-path estimates: 8 / 45 / 30 ms.
  f.window->on_packet(media(1, 1, f.sim.now() - Duration::millis(8)), 0);
  f.window->on_packet(media(2, 2, f.sim.now() - Duration::millis(45)), 1);
  f.window->on_packet(media(3, 3, f.sim.now() - Duration::millis(30)), 2);
  ASSERT_EQ(f.out.size(), 3u);

  // Seq 4 is lost on the slow path; 5 and 6 arrive on the other two.
  f.window->on_packet(media(5, 5, f.sim.now() - Duration::millis(8)), 0);
  f.window->on_packet(media(6, 6, f.sim.now() - Duration::millis(30)), 2);
  EXPECT_EQ(f.window->held(), 2u);

  // The hold deadline scales with the observed cross-path skew; well past
  // it everything flushes in order and the window drains.
  f.sim.run_until(f.sim.now() + Duration::millis(400));
  ASSERT_EQ(f.out.size(), 5u);
  EXPECT_EQ(f.out[3].first, 5);
  EXPECT_EQ(f.out[4].first, 6);
  EXPECT_EQ(f.window->held(), 0u);
  EXPECT_GE(f.window->flushes(), 1u);

  // The straggler finally limps in over the sat path: delivered, counted
  // late, never re-ordered backwards.
  f.window->on_packet(media(4, 4, f.sim.now() - Duration::millis(200)), 2);
  ASSERT_EQ(f.out.size(), 6u);
  EXPECT_EQ(f.out[5].first, 4);
  EXPECT_EQ(f.window->late_packets(), 1u);
}

TEST(ReorderWindowThreePath, TriplicateCopiesDeliverExactlyOnce) {
  WindowFixture f;
  auto p = media(7, 7, f.sim.now());
  f.window->on_packet(p, 0);
  auto copy_b = p;
  copy_b.id = 900001;  // duplicates ship under fresh descriptor ids
  f.window->on_packet(copy_b, 1);
  auto copy_sat = p;
  copy_sat.id = 900002;
  f.window->on_packet(copy_sat, 2);
  EXPECT_EQ(f.out.size(), 1u);
  EXPECT_EQ(f.out[0], (std::pair<std::uint16_t, int>{7, 0}));
  EXPECT_EQ(f.window->duplicates_suppressed(), 2u);
}

// --- 3-way sessions and the schema-v6 report ---

experiment::Scenario three_way_scenario(std::uint64_t seed) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.cc = pipeline::CcKind::kStatic;
  s.c2 = true;
  s.multipath = experiment::Multipath::kBondHighReliability;
  s.path_set = experiment::PathSet::kThreeWay;
  s.fault_preset = experiment::FaultPreset::kRlfStorm;
  s.faults_on_both_operators = true;
  s.seed = seed;
  return s;
}

TEST(ThreeWaySession, ReportCarriesSatBlockAndPerPathBreakdown) {
  const auto r = experiment::run_scenario(three_way_scenario(901));

  EXPECT_TRUE(r.sat_enabled);
  EXPECT_GT(r.sat_pass_handovers, 0u);
  ASSERT_EQ(r.bond_paths.size(), 3u);
  EXPECT_EQ(r.bond_paths[0].kind, "cellular");
  EXPECT_EQ(r.bond_paths[1].kind, "cellular");
  EXPECT_EQ(r.bond_paths[2].kind, "satellite");
  EXPECT_GT(r.bond_paths[2].sent_packets, 0u);
  EXPECT_GT(r.bond_paths[2].delivered_packets, 0u);
  EXPECT_GT(r.bond_paths[2].airtime_bytes, 0u);
  EXPECT_GT(r.sim_events, 0u);

  // Schema v6 round-trips the new blocks byte-for-byte.
  const auto round =
      pipeline::report_from_json(pipeline::report_to_json(r));
  EXPECT_EQ(pipeline::report_to_json(round).dump(),
            pipeline::report_to_json(r).dump());
}

TEST(ThreeWaySession, MeshPathSetAddsFourthPath) {
  auto s = three_way_scenario(902);
  s.path_set = experiment::PathSet::kThreeWayMesh;
  const auto r = experiment::run_scenario(s);
  ASSERT_EQ(r.bond_paths.size(), 4u);
  EXPECT_EQ(r.bond_paths[3].kind, "mesh");
}

TEST(ThreeWaySession, OperatorPairKeepsTwoCellularPathsAndNoSatBlock) {
  auto s = three_way_scenario(903);
  s.path_set = experiment::PathSet::kOperatorPair;
  const auto r = experiment::run_scenario(s);
  EXPECT_FALSE(r.sat_enabled);
  EXPECT_EQ(r.sat_pass_handovers, 0u);
  ASSERT_EQ(r.bond_paths.size(), 2u);
  EXPECT_EQ(r.bond_paths[0].kind, "cellular");
  EXPECT_EQ(r.bond_paths[1].kind, "cellular");
}

TEST(SatCampaign, GridLabelsAndByteIdentityAcrossWorkerCounts) {
  exec::GridAxes axes;
  axes.envs = {experiment::Environment::kRuralP1};
  axes.multipaths = {experiment::Multipath::kFailover,
                     experiment::Multipath::kBondHighReliability};
  axes.path_sets = {experiment::PathSet::kOperatorPair,
                    experiment::PathSet::kThreeWay};
  axes.fault_presets = {experiment::FaultPreset::kRlfStorm};
  experiment::Scenario base;
  base.mobility = experiment::Mobility::kStatic;
  base.cc = pipeline::CcKind::kStatic;
  base.c2 = true;
  base.faults_on_both_operators = true;
  const auto cells = exec::expand_grid(axes, base);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].label, "rural-p1-static-static-mpfail-rlf-storm");
  EXPECT_EQ(cells[1].label, "rural-p1-static-static-mpfail-sat-rlf-storm");
  EXPECT_EQ(cells[3].label, "rural-p1-static-static-bond-hr-sat-rlf-storm");

  const exec::CampaignEngine serial{{.jobs = 1}};
  const exec::CampaignEngine wide{{.jobs = 8}};
  const auto a = serial.run_grid(cells, 1, 7171);
  const auto b = wide.run_grid(cells, 1, 7171);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    ASSERT_EQ(a.cells[i].reports.size(), b.cells[i].reports.size());
    for (std::size_t j = 0; j < a.cells[i].reports.size(); ++j) {
      EXPECT_EQ(pipeline::report_to_json(a.cells[i].reports[j]).dump(),
                pipeline::report_to_json(b.cells[i].reports[j]).dump())
          << a.cells[i].cell.label;
    }
  }
}

}  // namespace
}  // namespace rpv
